// Figure 10: order-8 B-tree — insert / delete / search, 8 B keys and values,
// across PMDK-like, Libpuddles, and Romulus. Expected shape: Puddles ≥ PMDK
// everywhere, with the largest gap on search (paper: 3.1× from native
// pointers); Romulus competitive.
#include "bench/bench_env.h"
#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/workloads/btree.h"

namespace {

using bench::Timer;

struct Row {
  const char* lib;
  double insert_s;
  double delete_s;
  double search_s;
};

template <typename Adapter>
Row RunBTree(const char* name, Adapter adapter, uint64_t ops) {
  workloads::PersistentBTree<Adapter>::RegisterTypes();
  workloads::PersistentBTree<Adapter> tree(adapter);
  if (!tree.Init().ok()) {
    std::abort();
  }
  // Shuffled key set (deterministic).
  std::vector<uint64_t> keys(ops);
  for (uint64_t i = 0; i < ops; ++i) {
    keys[i] = i * 2654435761u + 1;
  }

  Row row{name, 0, 0, 0};
  Timer timer;
  for (uint64_t key : keys) {
    (void)tree.Insert(key, key);
  }
  row.insert_s = timer.Seconds();

  // Searches: ~2x ops random lookups.
  puddles::Xoshiro256 rng(9);
  timer.Reset();
  uint64_t found = 0;
  for (uint64_t i = 0; i < 2 * ops; ++i) {
    uint64_t value;
    found += tree.Search(keys[rng.Below(ops)], &value) ? 1 : 0;
  }
  row.search_s = timer.Seconds();
  bench::DoNotOptimize(found);

  timer.Reset();
  for (uint64_t key : keys) {
    (void)tree.Delete(key);
  }
  row.delete_s = timer.Seconds();
  return row;
}

}  // namespace

int main() {
  const uint64_t ops = bench::Scaled(100000);
  bench::PrintHeader("Figure 10: order-8 B-tree (insert / delete / search)",
                     "paper Fig. 10, 8B keys+values");
  std::printf("%-12s %14s %14s %14s\n", "library", "insert (s)", "delete (s)", "search (s)");

  auto dir = bench::ScratchDir("fig10");
  std::vector<Row> rows;
  {
    bench::BaselineEnv<fatptr::FatPool> env(dir, "pmdk");
    rows.push_back(RunBTree("PMDK", workloads::FatPtrAdapter(env.pool.get()), ops));
  }
  {
    bench::PuddlesEnv env(dir);
    rows.push_back(RunBTree("Libpuddles", env.adapter(), ops));
  }
  {
    bench::BaselineEnv<romulus::RomulusPool> env(dir, "romulus");
    rows.push_back(RunBTree("Romulus", workloads::RomulusAdapter(env.pool.get()), ops));
  }

  for (const Row& row : rows) {
    std::printf("%-12s %14.3f %14.3f %14.3f\n", row.lib, row.insert_s, row.delete_s,
                row.search_s);
  }
  std::printf("\nPuddles vs PMDK search speedup: %.2fx (paper: 3.1x)\n",
              rows[0].search_s / rows[1].search_s);
  std::printf("keys: %llu, searches: %llu\n", static_cast<unsigned long long>(ops),
              static_cast<unsigned long long>(2 * ops));
  std::filesystem::remove_all(dir);
  return 0;
}
