// Multi-thread malloc/free scaling — per-thread slab arenas vs. the
// global-lock allocator (docs/alloc.md, DESIGN.md §14).
//
// Every thread runs transactions that allocate a batch of small objects and
// free the oldest batch from a thread-local ring: the steady-state
// malloc/free churn of an allocation-heavy workload. The same workload runs
// under both allocators at each thread count:
//   * global — every alloc/free serializes on the pool's allocation mutex
//     and undo-logs the heap metadata it touches;
//   * arena  — allocs pop a lock-free thread-local free list and frees push
//     it back, no lock and no undo log on the path (slab refills from the
//     shared heap are the only synchronized step, amortized over a slab's
//     worth of slots).
// Reported per mode: ns per malloc/free pair and persistence fences per
// pair (pmem persist counters). The arena column is the headline: at 8
// threads it must beat the global lock by >= 4x (the CI gate over
// BENCH_alloc.json rows written with --out=FILE).
#include <thread>
#include <vector>

#include "bench/bench_env.h"
#include "bench/bench_provenance.h"
#include "bench/bench_util.h"
#include "src/pmem/flush.h"
#include "src/tx/tx.h"

#ifndef PUDDLES_GIT_SHA
#define PUDDLES_GIT_SHA "unknown"
#endif
#ifndef PUDDLES_BUILD_FLAGS
#define PUDDLES_BUILD_FLAGS "unknown"
#endif

namespace {

using bench::Timer;

// 48 bytes + 16-byte header = the 64-byte slab class in both allocators.
struct Node {
  uint64_t value;
  uint64_t pad[5];
};

constexpr uint64_t kBatch = 32;      // Malloc/free pairs per transaction.
constexpr uint64_t kRingBatches = 4; // Live batches per thread (the ring).

struct ModeResult {
  double ns_per_pair = 0;
  double fences_per_pair = 0;
};

// Fixed total work per mode: the transaction count divides across threads so
// every cell of the table does the same number of malloc/free pairs.
ModeResult RunThreads(puddles::Pool& pool, int threads, uint64_t total_txs) {
  const uint64_t txs_per_thread = total_txs / static_cast<uint64_t>(threads);
  const uint64_t total_pairs = txs_per_thread * static_cast<uint64_t>(threads) * kBatch;
  const pmem::PersistStats before = pmem::ReadPersistStats();
  Timer timer;
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&pool, txs_per_thread, t] {
      std::vector<Node*> ring;
      ring.reserve(kBatch * kRingBatches);
      size_t oldest = 0;
      for (uint64_t round = 0; round < txs_per_thread; ++round) {
        (void)pool.Run([&](puddles::Tx& tx) -> puddles::Status {
          for (uint64_t i = 0; i < kBatch; ++i) {
            ASSIGN_OR_RETURN(Node * node, tx.Alloc<Node>());
            node->value = static_cast<uint64_t>(t) << 32 | (round * kBatch + i);
            ring.push_back(node);
          }
          if (ring.size() - oldest > kBatch * kRingBatches) {
            for (uint64_t i = 0; i < kBatch; ++i) {
              RETURN_IF_ERROR(tx.Free(ring[oldest + i]));
            }
            oldest += kBatch;
          }
          return puddles::OkStatus();
        });
        if (oldest > 0 && oldest == ring.size()) {
          ring.clear();
          oldest = 0;
        }
      }
      // Drain the ring so each mode leaves the heap as it found it.
      (void)pool.Run([&](puddles::Tx& tx) -> puddles::Status {
        for (size_t i = oldest; i < ring.size(); ++i) {
          RETURN_IF_ERROR(tx.Free(ring[i]));
        }
        return puddles::OkStatus();
      });
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }
  const double seconds = timer.Seconds();
  const pmem::PersistStats after = pmem::ReadPersistStats();
  ModeResult result;
  result.ns_per_pair = seconds * 1e9 / static_cast<double>(total_pairs);
  result.fences_per_pair = static_cast<double>(after.fences - before.fences) /
                           static_cast<double>(total_pairs);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;  // Empty = table only, no JSON artifact.
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::fprintf(stderr, "usage: bench_alloc_scaling [--out=FILE]\n");
      return 2;
    }
  }

  bench::PrintHeader("Allocator scaling: per-thread slab arenas vs. global lock",
                     "malloc/free pairs per second, 1-16 threads");
  auto dir = bench::ScratchDir("alloc_scaling");
  bench::PuddlesEnv env(dir);
  puddles::Pool& pool = *env.pool;
  const uint64_t total_txs = bench::Scaled(4000);

  std::printf("%8s %15s %14s %15s %14s %9s\n", "threads", "global ns/pair",
              "gl fences/pair", "arena ns/pair", "ar fences/pair", "speedup");

  struct Row {
    unsigned threads;
    ModeResult global;
    ModeResult arena;
  };
  std::vector<Row> rows;
  for (unsigned threads : {1u, 2u, 4u, 8u, 16u}) {
    Row row;
    row.threads = threads;
    row.global = RunThreads(pool, static_cast<int>(threads), total_txs);
    if (auto s = pool.SetAllocMode(puddles::AllocMode::kArena); !s.ok()) {
      std::fprintf(stderr, "SetAllocMode(kArena) failed: %s\n", s.ToString().c_str());
      return 1;
    }
    row.arena = RunThreads(pool, static_cast<int>(threads), total_txs);
    // Back to the global allocator (flushes every arena) for the next row.
    if (auto s = pool.SetAllocMode(puddles::AllocMode::kGlobalLock); !s.ok()) {
      std::fprintf(stderr, "SetAllocMode(kGlobalLock) failed: %s\n", s.ToString().c_str());
      return 1;
    }
    rows.push_back(row);
    std::printf("%8u %15.1f %14.3f %15.1f %14.3f %8.2fx\n", threads,
                row.global.ns_per_pair, row.global.fences_per_pair, row.arena.ns_per_pair,
                row.arena.fences_per_pair, row.global.ns_per_pair / row.arena.ns_per_pair);
  }

  if (!out_path.empty()) {
    FILE* out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n");
    std::fputs(bench::ProvenanceJsonLine(PUDDLES_GIT_SHA, PUDDLES_BUILD_FLAGS).c_str(), out);
    std::fprintf(out, "  \"benchmark\": \"alloc_scaling_arena\",\n");
    std::fprintf(out, "  \"rows\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(out,
                   "    {\"threads\": %u, \"global_ns_per_pair\": %.1f, "
                   "\"arena_ns_per_pair\": %.1f, \"global_fences_per_pair\": %.4f, "
                   "\"arena_fences_per_pair\": %.4f}%s\n",
                   r.threads, r.global.ns_per_pair, r.arena.ns_per_pair,
                   r.global.fences_per_pair, r.arena.fences_per_pair,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());
  }
  std::filesystem::remove_all(dir);
  return 0;
}
