// Figure 14 (and Fig. 13's pipeline): sensor-network data aggregation.
//
// A home node distributes a pointer-rich state structure to N independent
// sensor nodes (isolated puddle spaces, modeled as separate daemon roots —
// DESIGN.md §1); each node mutates its copy transactionally and exports it;
// the home node aggregates all copies.
//
//   * Puddles: import each exported copy — fresh UUIDs, conflicting bases are
//     relocated and pointers rewritten on demand; aggregation walks the
//     imported structure in place. Cost = constant import + pointer rewrite
//     that scales with pointer count.
//   * PMDK-like: copies cannot be opened (duplicate UUID / conflicting
//     layout), so the home node must open each copy *sequentially* and
//     deep-copy (reallocate + rebuild) every structure into its own pool —
//     the 4.7×-10.1× penalty of the paper.
#include "bench/bench_env.h"
#include "bench/bench_util.h"
#include "src/workloads/list.h"

namespace {

using bench::Timer;
namespace fs = std::filesystem;

// Sensor state: a linked list of state variables (pointer-rich by design).
template <typename Adapter>
using StateList = workloads::PersistentList<Adapter>;

struct PuddlesBreakdown {
  double total_s = 0;
  double import_s = 0;
  double rewrite_plus_walk_s = 0;
};

// ---- Puddles pipeline ----
PuddlesBreakdown RunPuddles(const fs::path& dir, int nodes, uint64_t vars) {
  PuddlesBreakdown breakdown;

  // Home node publishes the initial state.
  fs::path seed_export = dir / "seed";
  {
    bench::PuddlesEnv home(dir / "home_seed");
    StateList<workloads::PuddlesAdapter>::RegisterTypes();
    StateList<workloads::PuddlesAdapter> state{home.adapter()};
    (void)state.Init();
    for (uint64_t i = 0; i < vars; ++i) {
      (void)state.InsertTail(1);
    }
    (void)home.runtime->ExportPool("bench", seed_export.string());
  }

  // Each sensor node: isolated puddle space (own daemon root), import the
  // state, mutate every variable in transactions, export.
  for (int node = 0; node < nodes; ++node) {
    fs::path node_root = dir / ("node" + std::to_string(node));
    auto daemon = puddled::Daemon::Start({.root_dir = (node_root / "puddled").string()});
    auto runtime = puddles::Runtime::Create(
        std::make_shared<puddled::EmbeddedDaemonClient>(daemon->get()));
    auto pool = (*runtime)->ImportPool(seed_export.string(), "state");
    StateList<workloads::PuddlesAdapter> state{workloads::PuddlesAdapter(*pool)};
    (void)state.Init();
    // Each node contributes its node id+1 to every state variable.
    puddles::Pool& p = **pool;
    using Node = typename StateList<workloads::PuddlesAdapter>::Node;
    auto* head = *p.Root<typename StateList<workloads::PuddlesAdapter>::Head>();
    (void)p.Run([&](puddles::Tx& tx) -> puddles::Status {
      for (auto* n = head->head; n != nullptr; n = n->next) {
        RETURN_IF_ERROR(tx.LogField(n, &Node::value));
        n->value += static_cast<uint64_t>(node) + 1;
      }
      return puddles::OkStatus();
    });
    (void)(*runtime)->ExportPool("state", (dir / ("export" + std::to_string(node))).string());
  }

  // Home node aggregates the N copies: imports (constant-time registration)
  // then walks each imported structure in place; every touched puddle is
  // relocated + pointer-rewritten on first access.
  Timer total;
  bench::PuddlesEnv home(dir / "home_agg");
  StateList<workloads::PuddlesAdapter>::RegisterTypes();
  std::vector<uint64_t> aggregate(vars, 0);
  for (int node = 0; node < nodes; ++node) {
    Timer import_timer;
    auto import = home.runtime->client().ImportPool(
        (dir / ("export" + std::to_string(node))).string(), "copy" + std::to_string(node));
    breakdown.import_s += import_timer.Seconds();

    Timer walk_timer;
    auto pool = home.runtime->OpenPool("copy" + std::to_string(node));
    auto* head = *(*pool)->Root<typename StateList<workloads::PuddlesAdapter>::Head>();
    uint64_t index = 0;
    for (auto* n = head->head; n != nullptr && index < vars; n = n->next, ++index) {
      aggregate[index] += n->value;
    }
    breakdown.rewrite_plus_walk_s += walk_timer.Seconds();
  }
  bench::DoNotOptimize(aggregate[0]);
  breakdown.total_s = total.Seconds();
  return breakdown;
}

// ---- PMDK-like pipeline ----
double RunPmdk(const fs::path& dir, int nodes, uint64_t vars) {
  using Adapter = workloads::FatPtrAdapter;
  // Node phase: each node keeps its own pool file with the state list.
  for (int node = 0; node < nodes; ++node) {
    auto pool = fatptr::FatPool::Create(
        (dir / ("pmdk_node" + std::to_string(node))).string(), 64 << 20);
    StateList<Adapter> state{Adapter(&*pool)};
    (void)state.Init();
    for (uint64_t i = 0; i < vars; ++i) {
      (void)state.InsertTail(static_cast<uint64_t>(node) + 2);
    }
  }

  // Aggregation: PMDK cannot open relocated copies in place — each node pool
  // is opened sequentially and every element is reallocated (deep-copied)
  // into the home pool before aggregating.
  Timer total;
  auto home = fatptr::FatPool::Create((dir / "pmdk_home").string(), 512 << 20);
  StateList<Adapter> home_state{Adapter(&*home)};
  (void)home_state.Init();
  std::vector<uint64_t> aggregate(vars, 0);
  for (int node = 0; node < nodes; ++node) {
    auto pool = fatptr::FatPool::Open((dir / ("pmdk_node" + std::to_string(node))).string());
    StateList<Adapter> state{Adapter(&*pool)};
    (void)state.Init();
    // Deep copy: rebuild the whole structure in the home pool (reallocation
    // + per-element transactions), then aggregate.
    StateList<Adapter> copy{Adapter(&*home)};
    (void)copy.Init();
    uint64_t index = 0;
    auto* head = Adapter(&*pool).Root<typename StateList<Adapter>::Head>().get();
    for (auto cursor = head->head; !cursor.is_null() && index < vars; ++index) {
      auto* n = cursor.get();
      (void)copy.InsertTail(n->value);
      aggregate[index] += n->value;
      cursor = n->next;
    }
  }
  bench::DoNotOptimize(aggregate[0]);
  return total.Seconds();
}

}  // namespace

int main() {
  const int nodes = static_cast<int>(bench::Scaled(20));  // Paper: 200 nodes.
  bench::PrintHeader("Figure 14: sensor-network data aggregation",
                     "paper Fig. 14 (200 nodes, 100-1600 vars; PMDK 4.7x-10.1x slower)");
  std::printf("nodes=%d (paper: 200; PUDDLES_BENCH_SCALE=10 for paper size)\n\n", nodes);
  std::printf("%12s %14s %14s %24s %10s\n", "state vars", "PMDK (s)", "Puddles (s)",
              "Puddles import/walk (s)", "speedup");

  for (uint64_t vars : {100, 200, 400, 800, 1600}) {
    auto dir = bench::ScratchDir("fig14_" + std::to_string(vars));
    PuddlesBreakdown puddles = RunPuddles(dir, nodes, vars);
    double pmdk_s = RunPmdk(dir, nodes, vars);
    std::printf("%12llu %14.3f %14.3f %14.3f/%8.3f %9.1fx\n",
                static_cast<unsigned long long>(vars), pmdk_s, puddles.total_s,
                puddles.import_s, puddles.rewrite_plus_walk_s, pmdk_s / puddles.total_s);
    std::filesystem::remove_all(dir);
  }
  return 0;
}
