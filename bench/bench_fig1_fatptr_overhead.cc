// Figure 1: fat-pointer vs native-pointer overhead on linked-list and binary
// (B+-)tree create/traverse microbenchmarks. Paper setup: list length 2^16,
// tree height 16 — we build a tree with 2^16 keys (equivalent population) and
// report the fat-pointer overhead percentage per phase.
#include "bench/bench_env.h"
#include "bench/bench_util.h"
#include "src/workloads/btree.h"
#include "src/workloads/list.h"

namespace {

using bench::Timer;

struct Phase {
  double create_s;
  double traverse_s;
};

template <typename Adapter>
Phase RunListPhases(Adapter adapter, uint64_t n, uint64_t sweeps) {
  workloads::PersistentList<Adapter>::RegisterTypes();
  workloads::PersistentList<Adapter> list(adapter);
  if (!list.Init().ok()) {
    std::abort();
  }
  Phase phase{};
  Timer timer;
  for (uint64_t i = 0; i < n; ++i) {
    (void)list.InsertTail(i);
  }
  phase.create_s = timer.Seconds();
  timer.Reset();
  for (uint64_t s = 0; s < sweeps; ++s) {
    bench::DoNotOptimize(list.Sum());
  }
  phase.traverse_s = timer.Seconds();
  return phase;
}

template <typename Adapter>
Phase RunTreePhases(Adapter adapter, uint64_t n, uint64_t sweeps) {
  workloads::PersistentBTree<Adapter>::RegisterTypes();
  workloads::PersistentBTree<Adapter> tree(adapter);
  if (!tree.Init().ok()) {
    std::abort();
  }
  Phase phase{};
  Timer timer;
  for (uint64_t i = 0; i < n; ++i) {
    (void)tree.Insert(i * 2654435761u + 1, i);
  }
  phase.create_s = timer.Seconds();
  timer.Reset();
  for (uint64_t s = 0; s < sweeps; ++s) {
    bench::DoNotOptimize(tree.SumDepthFirst());  // Depth-first traversal (DF).
  }
  phase.traverse_s = timer.Seconds();
  return phase;
}

double OverheadPct(double fat, double native) { return (fat / native - 1.0) * 100.0; }

}  // namespace

int main() {
  const uint64_t n = 1 << 16;  // Paper: list length 2^16.
  const uint64_t sweeps = bench::Scaled(50);
  bench::PrintHeader("Figure 1: fat-pointer overhead vs native pointers (%)",
                     "paper Fig. 1 (up to ~16% runtime overhead)");
  auto dir = bench::ScratchDir("fig1");

  // Native pointers = Puddles (same allocator + undo-log substrate as the
  // fat-pointer build); fat pointers = the PMDK-like library. The traverse
  // phases involve no logging at all, isolating pure pointer-format cost.
  Phase native_list, fat_list, native_tree, fat_tree;
  {
    bench::PuddlesEnv env(dir, "native_list");
    native_list = RunListPhases(env.adapter(), n, sweeps);
  }
  {
    bench::BaselineEnv<fatptr::FatPool> env(dir, "fat_list");
    fat_list = RunListPhases(workloads::FatPtrAdapter(env.pool.get()), n, sweeps);
  }
  {
    bench::PuddlesEnv env(dir, "native_tree");
    native_tree = RunTreePhases(env.adapter(), n, sweeps);
  }
  {
    bench::BaselineEnv<fatptr::FatPool> env(dir, "fat_tree");
    fat_tree = RunTreePhases(workloads::FatPtrAdapter(env.pool.get()), n, sweeps);
  }

  std::printf("%-24s %12s %15s\n", "workload", "create", "traverse");
  std::printf("%-24s %11.1f%% %14.1f%%\n", "linked list (2^16)",
              OverheadPct(fat_list.create_s, native_list.create_s),
              OverheadPct(fat_list.traverse_s, native_list.traverse_s));
  std::printf("%-24s %11.1f%% %14.1f%%\n", "binary tree (DF)",
              OverheadPct(fat_tree.create_s, native_tree.create_s),
              OverheadPct(fat_tree.traverse_s, native_tree.traverse_s));
  std::printf("\n(raw: list create %.3f/%.3f s, list traverse %.3f/%.3f s, "
              "tree create %.3f/%.3f s, tree traverse %.3f/%.3f s [fat/native])\n",
              fat_list.create_s, native_list.create_s, fat_list.traverse_s,
              native_list.traverse_s, fat_tree.create_s, native_tree.create_s,
              fat_tree.traverse_s, native_tree.traverse_s);
  std::filesystem::remove_all(dir);
  return 0;
}
