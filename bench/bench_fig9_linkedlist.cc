// Figure 9: singly linked list — insert tail / delete head / traversal (sum)
// across PMDK-like, Libpuddles, and Romulus. The paper runs 10M operations;
// the default here is scaled down (PUDDLES_BENCH_SCALE to raise). Expected
// shape: all libraries comparable on insert; Puddles/Romulus far ahead of
// PMDK on delete and traversal thanks to native pointers (paper: 13.4×
// traversal advantage for Puddles over PMDK).
#include "bench/bench_env.h"
#include "bench/bench_util.h"
#include "src/pmem/flush.h"
#include "src/workloads/list.h"

namespace {

using bench::Timer;

struct Row {
  const char* lib;
  double insert_s;
  double delete_s;
  double traverse_s;
  double insert_fences;  // Ordering points per insert (DESIGN.md §10).
};

template <typename Adapter>
Row RunList(const char* name, Adapter adapter, uint64_t ops) {
  workloads::PersistentList<Adapter>::RegisterTypes();
  workloads::PersistentList<Adapter> list(adapter);
  if (!list.Init().ok()) {
    std::abort();
  }

  Row row{name, 0, 0, 0, 0};
  const uint64_t fences_before = pmem::ReadPersistStats().fences;
  Timer timer;
  for (uint64_t i = 0; i < ops; ++i) {
    (void)list.InsertTail(i);
  }
  row.insert_s = timer.Seconds();
  row.insert_fences = static_cast<double>(pmem::ReadPersistStats().fences - fences_before) /
                      static_cast<double>(ops);

  // Traversal: repeated full-list sums totalling ~10M node visits (the
  // paper's per-op count), so the measurement is noise-free at any scale.
  const uint64_t sweeps = std::max<uint64_t>(1, 10000000 / std::max<uint64_t>(ops, 1));
  timer.Reset();
  for (uint64_t s = 0; s < sweeps; ++s) {
    bench::DoNotOptimize(list.Sum());
  }
  row.traverse_s = timer.Seconds();

  timer.Reset();
  for (uint64_t i = 0; i < ops; ++i) {
    (void)list.DeleteHead();
  }
  row.delete_s = timer.Seconds();
  return row;
}

}  // namespace

int main() {
  const uint64_t ops = bench::Scaled(200000);
  bench::PrintHeader("Figure 9: linked list (insert / delete / traverse)",
                     "paper Fig. 9, 10M ops each on Optane");
  std::printf("%-12s %14s %14s %14s %16s\n", "library", "insert (s)", "delete (s)",
              "traverse (s)", "fences/insert");

  auto dir = bench::ScratchDir("fig9");
  std::vector<Row> rows;
  {
    bench::BaselineEnv<fatptr::FatPool> env(dir, "pmdk");
    rows.push_back(RunList("PMDK", workloads::FatPtrAdapter(env.pool.get()), ops));
  }
  {
    bench::PuddlesEnv env(dir);
    rows.push_back(RunList("Libpuddles", env.adapter(), ops));
  }
  {
    bench::BaselineEnv<romulus::RomulusPool> env(dir, "romulus");
    rows.push_back(RunList("Romulus", workloads::RomulusAdapter(env.pool.get()), ops));
  }

  for (const Row& row : rows) {
    std::printf("%-12s %14.3f %14.3f %14.3f %16.2f\n", row.lib, row.insert_s, row.delete_s,
                row.traverse_s, row.insert_fences);
  }
  const Row& pmdk = rows[0];
  const Row& puddles = rows[1];
  std::printf("\nPuddles vs PMDK speedup: insert %.2fx, delete %.2fx, traverse %.2fx "
              "(paper: traversal 13.4x)\n",
              pmdk.insert_s / puddles.insert_s, pmdk.delete_s / puddles.delete_s,
              pmdk.traverse_s / puddles.traverse_s);
  std::printf("ops per series: %llu\n", static_cast<unsigned long long>(ops));
  std::filesystem::remove_all(dir);
  return 0;
}
