// Table 3: mean latency of Puddles vs PMDK-like API primitives —
// TX NOP, TX_ADD (8 B / 4 KiB), malloc (8 B / 4 KiB), malloc+free.
//
// Puddles appears twice: through the typed transaction-context API
// (pool.Run + Tx — the recommended surface) and through the deprecated
// TX_BEGIN/TX_ADD macros, to demonstrate that the redesign costs ≤~2% on the
// log/store/commit primitives. Strict-API builds drop the legacy column.
#include "bench/bench_env.h"
#include "bench/bench_util.h"
#include "src/pmem/flush.h"
#include "src/tx/tx.h"

namespace {

using bench::Timer;

double NsPerOp(uint64_t iterations, double seconds) {
  return seconds * 1e9 / static_cast<double>(iterations);
}

struct Column {
  double tx_nop;
  double tx_add_8;
  double tx_add_4k;
  double malloc_8;
  double malloc_4k;
  double malloc_free_8;
  double malloc_free_4k;
};

// PM scratch targets for the logging primitives: TX_ADD's target must live
// in mapped puddle space (the typed API validates this).
struct Scratch {
  uint8_t* small;  // 8 B
  uint8_t* big;    // 4 KiB
};

Scratch AllocScratch(puddles::Pool& pool) {
  Scratch scratch;
  scratch.small = static_cast<uint8_t*>(*pool.MallocBytes(8, puddles::kRawBytesTypeId));
  scratch.big = static_cast<uint8_t*>(*pool.MallocBytes(4096, puddles::kRawBytesTypeId));
  return scratch;
}

// ---- Puddles, typed transaction contexts (pool.Run + Tx) ----
Column RunPuddlesTyped(bench::PuddlesEnv& env, uint64_t iters) {
  Column col{};
  puddles::Pool& pool = *env.pool;
  Scratch scratch = AllocScratch(pool);
  Timer timer;

  auto nop = [](puddles::Tx&) { return puddles::OkStatus(); };
  for (uint64_t i = 0; i < iters; ++i) {
    (void)pool.Run(nop);
  }
  col.tx_nop = NsPerOp(iters, timer.Seconds());

  timer.Reset();
  for (uint64_t i = 0; i < iters; ++i) {
    (void)pool.Run([&](puddles::Tx& tx) { return tx.LogRange(scratch.small, 8); });
  }
  col.tx_add_8 = NsPerOp(iters, timer.Seconds());

  timer.Reset();
  for (uint64_t i = 0; i < iters / 4; ++i) {
    (void)pool.Run([&](puddles::Tx& tx) { return tx.LogRange(scratch.big, 4096); });
  }
  col.tx_add_4k = NsPerOp(iters / 4, timer.Seconds());

  const uint64_t alloc_iters = iters / 8;
  timer.Reset();
  for (uint64_t i = 0; i < alloc_iters; ++i) {
    (void)pool.Run([&](puddles::Tx& tx) {
      return tx.AllocBytes(8, puddles::kRawBytesTypeId).status();
    });
  }
  col.malloc_8 = NsPerOp(alloc_iters, timer.Seconds());

  timer.Reset();
  for (uint64_t i = 0; i < alloc_iters; ++i) {
    (void)pool.Run([&](puddles::Tx& tx) {
      return tx.AllocBytes(4096, puddles::kRawBytesTypeId).status();
    });
  }
  col.malloc_4k = NsPerOp(alloc_iters, timer.Seconds());

  timer.Reset();
  for (uint64_t i = 0; i < alloc_iters; ++i) {
    (void)pool.Run([&](puddles::Tx& tx) -> puddles::Status {
      ASSIGN_OR_RETURN(void* p, tx.AllocBytes(8, puddles::kRawBytesTypeId));
      return tx.FreeBytes(p);
    });
  }
  col.malloc_free_8 = NsPerOp(alloc_iters, timer.Seconds());

  timer.Reset();
  for (uint64_t i = 0; i < alloc_iters; ++i) {
    (void)pool.Run([&](puddles::Tx& tx) -> puddles::Status {
      ASSIGN_OR_RETURN(void* p, tx.AllocBytes(4096, puddles::kRawBytesTypeId));
      return tx.FreeBytes(p);
    });
  }
  col.malloc_free_4k = NsPerOp(alloc_iters, timer.Seconds());
  return col;
}

// Persist-ordering cost of each typed primitive: fences per transaction,
// measured on the real instruction stream. The batched-persistence protocol
// (DESIGN.md §10) makes these constants — they no longer scale with the
// number of logged ranges (BENCH_commit.json tracks the trajectory).
struct FenceColumn {
  double tx_nop;
  double tx_add_8;
  double tx_add_4k;
  double malloc_free_8;
};

FenceColumn MeasureTypedFences(bench::PuddlesEnv& env) {
  FenceColumn col{};
  puddles::Pool& pool = *env.pool;
  Scratch scratch = AllocScratch(pool);
  col.tx_nop = bench::FencesPerOp(
      [&] { (void)pool.Run([](puddles::Tx&) { return puddles::OkStatus(); }); });
  col.tx_add_8 = bench::FencesPerOp([&] {
    (void)pool.Run([&](puddles::Tx& tx) { return tx.LogRange(scratch.small, 8); });
  });
  col.tx_add_4k = bench::FencesPerOp([&] {
    (void)pool.Run([&](puddles::Tx& tx) { return tx.LogRange(scratch.big, 4096); });
  });
  col.malloc_free_8 = bench::FencesPerOp([&] {
    (void)pool.Run([&](puddles::Tx& tx) -> puddles::Status {
      ASSIGN_OR_RETURN(void* p, tx.AllocBytes(8, puddles::kRawBytesTypeId));
      return tx.FreeBytes(p);
    });
  });
  return col;
}

#ifndef PUDDLES_STRICT_API
// ---- Puddles, deprecated TX_BEGIN/TX_ADD macro shims ----
Column RunPuddlesLegacy(bench::PuddlesEnv& env, uint64_t iters) {
  Column col{};
  puddles::Pool& pool = *env.pool;
  Scratch scratch = AllocScratch(pool);
  Timer timer;

  for (uint64_t i = 0; i < iters; ++i) {
    TX_BEGIN(pool) {}
    TX_END;
  }
  col.tx_nop = NsPerOp(iters, timer.Seconds());

  timer.Reset();
  for (uint64_t i = 0; i < iters; ++i) {
    TX_BEGIN(pool) { TX_ADD_RANGE(scratch.small, 8); }
    TX_END;
  }
  col.tx_add_8 = NsPerOp(iters, timer.Seconds());

  timer.Reset();
  for (uint64_t i = 0; i < iters / 4; ++i) {
    TX_BEGIN(pool) { TX_ADD_RANGE(scratch.big, 4096); }
    TX_END;
  }
  col.tx_add_4k = NsPerOp(iters / 4, timer.Seconds());

  // malloc-only: allocate without freeing (fresh objects each time).
  const uint64_t alloc_iters = iters / 8;
  timer.Reset();
  for (uint64_t i = 0; i < alloc_iters; ++i) {
    TX_BEGIN(pool) { (void)pool.MallocBytes(8, puddles::kRawBytesTypeId); }
    TX_END;
  }
  col.malloc_8 = NsPerOp(alloc_iters, timer.Seconds());

  timer.Reset();
  for (uint64_t i = 0; i < alloc_iters; ++i) {
    TX_BEGIN(pool) { (void)pool.MallocBytes(4096, puddles::kRawBytesTypeId); }
    TX_END;
  }
  col.malloc_4k = NsPerOp(alloc_iters, timer.Seconds());

  timer.Reset();
  for (uint64_t i = 0; i < alloc_iters; ++i) {
    TX_BEGIN(pool) {
      auto p = pool.MallocBytes(8, puddles::kRawBytesTypeId);
      if (p.ok()) {
        (void)pool.Free(*p);
      }
    }
    TX_END;
  }
  col.malloc_free_8 = NsPerOp(alloc_iters, timer.Seconds());

  timer.Reset();
  for (uint64_t i = 0; i < alloc_iters; ++i) {
    TX_BEGIN(pool) {
      auto p = pool.MallocBytes(4096, puddles::kRawBytesTypeId);
      if (p.ok()) {
        (void)pool.Free(*p);
      }
    }
    TX_END;
  }
  col.malloc_free_4k = NsPerOp(alloc_iters, timer.Seconds());
  return col;
}
#endif  // !PUDDLES_STRICT_API

Column RunFatPtr(fatptr::FatPool& pool, uint64_t iters) {
  Column col{};
  Timer timer;
  for (uint64_t i = 0; i < iters; ++i) {
    (void)pool.TxBegin();
    (void)pool.TxCommit();
  }
  col.tx_nop = NsPerOp(iters, timer.Seconds());

  alignas(64) static uint8_t small[8];
  alignas(64) static uint8_t big[4096];
  timer.Reset();
  for (uint64_t i = 0; i < iters; ++i) {
    (void)pool.TxBegin();
    (void)pool.TxAddRange(small, sizeof(small));
    (void)pool.TxCommit();
  }
  col.tx_add_8 = NsPerOp(iters, timer.Seconds());

  timer.Reset();
  for (uint64_t i = 0; i < iters / 4; ++i) {
    (void)pool.TxBegin();
    (void)pool.TxAddRange(big, sizeof(big));
    (void)pool.TxCommit();
  }
  col.tx_add_4k = NsPerOp(iters / 4, timer.Seconds());

  const uint64_t alloc_iters = iters / 8;
  timer.Reset();
  for (uint64_t i = 0; i < alloc_iters; ++i) {
    (void)pool.TxBegin();
    (void)pool.AllocBytes(8, puddles::kRawBytesTypeId);
    (void)pool.TxCommit();
  }
  col.malloc_8 = NsPerOp(alloc_iters, timer.Seconds());

  timer.Reset();
  for (uint64_t i = 0; i < alloc_iters; ++i) {
    (void)pool.TxBegin();
    (void)pool.AllocBytes(4096, puddles::kRawBytesTypeId);
    (void)pool.TxCommit();
  }
  col.malloc_4k = NsPerOp(alloc_iters, timer.Seconds());

  timer.Reset();
  for (uint64_t i = 0; i < alloc_iters; ++i) {
    (void)pool.TxBegin();
    auto p = pool.AllocBytes(8, puddles::kRawBytesTypeId);
    if (p.ok()) {
      (void)pool.FreeBytes(*p);
    }
    (void)pool.TxCommit();
  }
  col.malloc_free_8 = NsPerOp(alloc_iters, timer.Seconds());

  timer.Reset();
  for (uint64_t i = 0; i < alloc_iters; ++i) {
    (void)pool.TxBegin();
    auto p = pool.AllocBytes(4096, puddles::kRawBytesTypeId);
    if (p.ok()) {
      (void)pool.FreeBytes(*p);
    }
    (void)pool.TxCommit();
  }
  col.malloc_free_4k = NsPerOp(alloc_iters, timer.Seconds());
  return col;
}

}  // namespace

int main() {
  const uint64_t iters = bench::Scaled(100000);
  bench::PrintHeader("Table 3: API primitive latencies (mean ns)",
                     "paper Table 3 (TX NOP 11ns vs 142ns etc.)");
  auto dir = bench::ScratchDir("table3");

  // The two Puddles environments run sequentially (daemons share the global
  // puddle-space reservation).
  Column typed_col{};
  FenceColumn typed_fences{};
  {
    bench::PuddlesEnv typed_env(dir / "typed");
    typed_col = RunPuddlesTyped(typed_env, iters);
    typed_fences = MeasureTypedFences(typed_env);
  }
  Column legacy_col{};  // Stays zero when the legacy surface is disabled.
#ifndef PUDDLES_STRICT_API
  {
    bench::PuddlesEnv legacy_env(dir / "legacy");
    legacy_col = RunPuddlesLegacy(legacy_env, iters);
  }
#endif

  bench::BaselineEnv<fatptr::FatPool> fat_env(dir, "pmdk");
  Column pmdk_col = RunFatPtr(*fat_env.pool, iters);

  std::printf("%-22s %14s %14s %10s %14s\n", "operation", "Puddles (Tx)",
              "Puddles (macros)", "Tx ovhd", "PMDK");
  auto row = [](const char* op, double typed, double legacy, double pmdk) {
    if (legacy > 0) {
      std::printf("%-22s %12.1f ns %12.1f ns %9.1f%% %12.1f ns\n", op, typed, legacy,
                  (typed - legacy) / legacy * 100.0, pmdk);
    } else {
      std::printf("%-22s %12.1f ns %14s %10s %12.1f ns\n", op, typed, "-", "-", pmdk);
    }
  };
  row("TX NOP", typed_col.tx_nop, legacy_col.tx_nop, pmdk_col.tx_nop);
  row("TX_ADD 8B", typed_col.tx_add_8, legacy_col.tx_add_8, pmdk_col.tx_add_8);
  row("TX_ADD 4kB", typed_col.tx_add_4k, legacy_col.tx_add_4k, pmdk_col.tx_add_4k);
  row("malloc 8B", typed_col.malloc_8, legacy_col.malloc_8, pmdk_col.malloc_8);
  row("malloc 4kB", typed_col.malloc_4k, legacy_col.malloc_4k, pmdk_col.malloc_4k);
  row("malloc+free 8B", typed_col.malloc_free_8, legacy_col.malloc_free_8,
      pmdk_col.malloc_free_8);
  row("malloc+free 4kB", typed_col.malloc_free_4k, legacy_col.malloc_free_4k,
      pmdk_col.malloc_free_4k);

  std::printf("\npersist ordering (fences per transaction, typed API; DESIGN.md §10):\n");
  std::printf("%-22s %10.2f\n", "TX NOP", typed_fences.tx_nop);
  std::printf("%-22s %10.2f\n", "TX_ADD 8B", typed_fences.tx_add_8);
  std::printf("%-22s %10.2f\n", "TX_ADD 4kB", typed_fences.tx_add_4k);
  std::printf("%-22s %10.2f\n", "malloc+free 8B", typed_fences.malloc_free_8);
  std::filesystem::remove_all(dir);
  return 0;
}
