// Table 3: mean latency of Puddles vs PMDK-like API primitives —
// TX NOP, TX_ADD (8 B / 4 KiB), malloc (8 B / 4 KiB), malloc+free.
#include "bench/bench_env.h"
#include "bench/bench_util.h"
#include "src/tx/tx.h"

namespace {

using bench::Timer;

double NsPerOp(uint64_t iterations, double seconds) {
  return seconds * 1e9 / static_cast<double>(iterations);
}

struct Column {
  double tx_nop;
  double tx_add_8;
  double tx_add_4k;
  double malloc_8;
  double malloc_4k;
  double malloc_free_8;
  double malloc_free_4k;
};

Column RunPuddles(bench::PuddlesEnv& env, uint64_t iters) {
  Column col{};
  puddles::Pool& pool = *env.pool;
  Timer timer;

  for (uint64_t i = 0; i < iters; ++i) {
    TX_BEGIN(pool) {}
    TX_END;
  }
  col.tx_nop = NsPerOp(iters, timer.Seconds());

  alignas(64) static uint8_t small[8];
  alignas(64) static uint8_t big[4096];
  timer.Reset();
  for (uint64_t i = 0; i < iters; ++i) {
    TX_BEGIN(pool) { TX_ADD_RANGE(small, sizeof(small)); }
    TX_END;
  }
  col.tx_add_8 = NsPerOp(iters, timer.Seconds());

  timer.Reset();
  for (uint64_t i = 0; i < iters / 4; ++i) {
    TX_BEGIN(pool) { TX_ADD_RANGE(big, sizeof(big)); }
    TX_END;
  }
  col.tx_add_4k = NsPerOp(iters / 4, timer.Seconds());

  // malloc-only: allocate without freeing (fresh objects each time).
  const uint64_t alloc_iters = iters / 8;
  timer.Reset();
  for (uint64_t i = 0; i < alloc_iters; ++i) {
    TX_BEGIN(pool) { (void)pool.MallocBytes(8, puddles::kRawBytesTypeId); }
    TX_END;
  }
  col.malloc_8 = NsPerOp(alloc_iters, timer.Seconds());

  timer.Reset();
  for (uint64_t i = 0; i < alloc_iters; ++i) {
    TX_BEGIN(pool) { (void)pool.MallocBytes(4096, puddles::kRawBytesTypeId); }
    TX_END;
  }
  col.malloc_4k = NsPerOp(alloc_iters, timer.Seconds());

  timer.Reset();
  for (uint64_t i = 0; i < alloc_iters; ++i) {
    TX_BEGIN(pool) {
      auto p = pool.MallocBytes(8, puddles::kRawBytesTypeId);
      if (p.ok()) {
        (void)pool.Free(*p);
      }
    }
    TX_END;
  }
  col.malloc_free_8 = NsPerOp(alloc_iters, timer.Seconds());

  timer.Reset();
  for (uint64_t i = 0; i < alloc_iters; ++i) {
    TX_BEGIN(pool) {
      auto p = pool.MallocBytes(4096, puddles::kRawBytesTypeId);
      if (p.ok()) {
        (void)pool.Free(*p);
      }
    }
    TX_END;
  }
  col.malloc_free_4k = NsPerOp(alloc_iters, timer.Seconds());
  return col;
}

Column RunFatPtr(fatptr::FatPool& pool, uint64_t iters) {
  Column col{};
  Timer timer;
  for (uint64_t i = 0; i < iters; ++i) {
    (void)pool.TxBegin();
    (void)pool.TxCommit();
  }
  col.tx_nop = NsPerOp(iters, timer.Seconds());

  alignas(64) static uint8_t small[8];
  alignas(64) static uint8_t big[4096];
  timer.Reset();
  for (uint64_t i = 0; i < iters; ++i) {
    (void)pool.TxBegin();
    (void)pool.TxAddRange(small, sizeof(small));
    (void)pool.TxCommit();
  }
  col.tx_add_8 = NsPerOp(iters, timer.Seconds());

  timer.Reset();
  for (uint64_t i = 0; i < iters / 4; ++i) {
    (void)pool.TxBegin();
    (void)pool.TxAddRange(big, sizeof(big));
    (void)pool.TxCommit();
  }
  col.tx_add_4k = NsPerOp(iters / 4, timer.Seconds());

  const uint64_t alloc_iters = iters / 8;
  timer.Reset();
  for (uint64_t i = 0; i < alloc_iters; ++i) {
    (void)pool.TxBegin();
    (void)pool.AllocBytes(8, puddles::kRawBytesTypeId);
    (void)pool.TxCommit();
  }
  col.malloc_8 = NsPerOp(alloc_iters, timer.Seconds());

  timer.Reset();
  for (uint64_t i = 0; i < alloc_iters; ++i) {
    (void)pool.TxBegin();
    (void)pool.AllocBytes(4096, puddles::kRawBytesTypeId);
    (void)pool.TxCommit();
  }
  col.malloc_4k = NsPerOp(alloc_iters, timer.Seconds());

  timer.Reset();
  for (uint64_t i = 0; i < alloc_iters; ++i) {
    (void)pool.TxBegin();
    auto p = pool.AllocBytes(8, puddles::kRawBytesTypeId);
    if (p.ok()) {
      (void)pool.FreeBytes(*p);
    }
    (void)pool.TxCommit();
  }
  col.malloc_free_8 = NsPerOp(alloc_iters, timer.Seconds());

  timer.Reset();
  for (uint64_t i = 0; i < alloc_iters; ++i) {
    (void)pool.TxBegin();
    auto p = pool.AllocBytes(4096, puddles::kRawBytesTypeId);
    if (p.ok()) {
      (void)pool.FreeBytes(*p);
    }
    (void)pool.TxCommit();
  }
  col.malloc_free_4k = NsPerOp(alloc_iters, timer.Seconds());
  return col;
}

}  // namespace

int main() {
  const uint64_t iters = bench::Scaled(100000);
  bench::PrintHeader("Table 3: API primitive latencies (mean ns)",
                     "paper Table 3 (TX NOP 11ns vs 142ns etc.)");
  auto dir = bench::ScratchDir("table3");

  bench::PuddlesEnv puddles_env(dir);
  Column puddles_col = RunPuddles(puddles_env, iters);

  bench::BaselineEnv<fatptr::FatPool> fat_env(dir, "pmdk");
  Column pmdk_col = RunFatPtr(*fat_env.pool, iters);

  std::printf("%-22s %14s %14s\n", "operation", "Puddles", "PMDK");
  auto row = [](const char* op, double a, double b) {
    std::printf("%-22s %12.1f ns %12.1f ns\n", op, a, b);
  };
  row("TX NOP", puddles_col.tx_nop, pmdk_col.tx_nop);
  row("TX_ADD 8B", puddles_col.tx_add_8, pmdk_col.tx_add_8);
  row("TX_ADD 4kB", puddles_col.tx_add_4k, pmdk_col.tx_add_4k);
  row("malloc 8B", puddles_col.malloc_8, pmdk_col.malloc_8);
  row("malloc 4kB", puddles_col.malloc_4k, pmdk_col.malloc_4k);
  row("malloc+free 8B", puddles_col.malloc_free_8, pmdk_col.malloc_free_8);
  row("malloc+free 4kB", puddles_col.malloc_free_4k, pmdk_col.malloc_free_4k);
  std::filesystem::remove_all(dir);
  return 0;
}
