// §5.1 "Daemon primitives": latency of Puddled operations — no-op round trip
// over the UNIX domain socket, RegLogSpace, GetNewPuddle, GetExistPuddle —
// plus recovery latency for a crashed transaction.
#include <unistd.h>

#include "bench/bench_env.h"
#include "bench/bench_util.h"
#include "src/daemon/server.h"
#include "src/tx/tx.h"

namespace {

using bench::Timer;

double UsPerOp(uint64_t iterations, double seconds) {
  return seconds * 1e6 / static_cast<double>(iterations);
}

}  // namespace

int main() {
  bench::PrintHeader("Daemon primitives (paper §5.1)",
                     "no-op RTT 46.9us; RegLogSpace 134us; GetNewPuddle 1705us; "
                     "GetExistPuddle 125.3us; recovery 110.1us");
  auto dir = bench::ScratchDir("daemonprim");
  const uint64_t iters = bench::Scaled(200);

  auto daemon = puddled::Daemon::Start({.root_dir = (dir / "root").string()});
  std::string socket_path = (dir / "puddled.sock").string();
  auto server = puddled::Server::Start(daemon->get(), socket_path);
  auto client = puddled::SocketDaemonClient::Connect(socket_path);

  // No-op round trip over the socket.
  Timer timer;
  for (uint64_t i = 0; i < iters; ++i) {
    (void)(*client)->Ping();
  }
  std::printf("%-24s %10.1f us   (paper: 46.9 us)\n", "no-op round trip",
              UsPerOp(iters, timer.Seconds()));

  // GetNewPuddle (creates the backing file — the expensive call).
  std::vector<puddles::Uuid> created;
  timer.Reset();
  for (uint64_t i = 0; i < iters; ++i) {
    auto result = (*client)->CreatePuddle(puddles::PuddleKind::kData, 1 << 20,
                                          puddles::Uuid::Nil(), 0600);
    if (result.ok()) {
      created.push_back(result->first.uuid);
      ::close(result->second);
    }
  }
  std::printf("%-24s %10.1f us   (paper: 1705.0 us)\n", "GetNewPuddle",
              UsPerOp(iters, timer.Seconds()));

  // GetExistPuddle.
  timer.Reset();
  for (uint64_t i = 0; i < iters; ++i) {
    auto result = (*client)->GetPuddle(created[i % created.size()], true);
    if (result.ok()) {
      ::close(result->second);
    }
  }
  std::printf("%-24s %10.1f us   (paper: 125.3 us)\n", "GetExistPuddle",
              UsPerOp(iters, timer.Seconds()));

  // RegLogSpace.
  timer.Reset();
  const uint64_t ls_iters = std::max<uint64_t>(iters / 10, 10);
  for (uint64_t i = 0; i < ls_iters; ++i) {
    auto ls = (*client)->CreatePuddle(puddles::PuddleKind::kLogSpace, 1 << 20,
                                      puddles::Uuid::Nil(), 0600);
    if (ls.ok()) {
      // Format it so registration passes validation.
      auto file = pmem::PmemFile::FromFd(ls->second);
      auto base = file->Map();
      auto puddle = puddles::Puddle::Attach(*base, file->size());
      (void)puddles::LogSpaceView::Format(*puddle);
      (void)(*client)->RegisterLogSpace(ls->first.uuid);
    }
  }
  std::printf("%-24s %10.1f us   (incl. puddle alloc; paper: 134.0 us)\n", "RegLogSpace",
              UsPerOp(ls_iters, timer.Seconds()));

  server->reset();

  // Recovery latency: crash one transaction, time the daemon-side replay.
  {
    bench::PuddlesEnv env(dir / "recovery");
    uint64_t* cell = *env.pool->Malloc<uint64_t>();
    *cell = 1;
    pmem::FlushFence(cell, 8);
    puddles::Transaction::SetStageHook(+[](const char* stage) {
      if (std::string_view(stage) == "s1_flushed") {
        throw puddles::SimulatedCrash{stage};
      }
    });
    try {
      (void)env.pool->Run([&](puddles::Tx& tx) -> puddles::Status {
        RETURN_IF_ERROR(tx.Log(cell));
        *cell = 2;
        return puddles::OkStatus();
      });
    } catch (const puddles::SimulatedCrash&) {
    }
    puddles::Transaction::SetStageHook(nullptr);
    puddles::Transaction::AbandonCurrentForTesting();
    env.runtime.reset();
    env.daemon.reset();

    auto recovery_daemon =
        puddled::Daemon::Start({.root_dir = ((dir / "recovery") / "puddled").string(),
                                .run_recovery = false});
    timer.Reset();
    auto report = (*recovery_daemon)->RunRecovery();
    double us = timer.Seconds() * 1e6;
    std::printf("%-24s %10.1f us   (paper: 110.1 us; %llu entries applied)\n",
                "crash recovery", us,
                static_cast<unsigned long long>(report.ok() ? report->entries_applied : 0));
  }

  std::filesystem::remove_all(dir);
  return 0;
}
