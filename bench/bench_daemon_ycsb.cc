// Socket-level YCSB against one live Puddled: N separate client PROCESSES
// (fork+exec of this binary with --client) hammer a single daemon over its
// UNIX domain socket with read (GetPtrMap) / update (RegisterPtrMap) mixes,
// optionally pipelined. The run matrix compares the event-driven server
// (src/daemon/server.cc, Mode::kEventLoop) against the thread-per-connection
// baseline it replaced, and emits BENCH_daemon.json (repo root) with
// throughput + p50/p99 per configuration, the event-vs-baseline speedups,
// and the standard provenance block — same conventions as BENCH_commit.json.
//
// Workload letters follow YCSB: A = 50/50 read/update, B = 95/5, C = 100%
// read, uniform key choice over a preloaded ptr-map keyspace. Latency is
// measured per request at the client (send→matching response, so pipelined
// configs report queue+service time) into mergeable log-bucket histograms
// that children ship back over a pipe for exact cross-process percentiles.
//
// Usage: bench_daemon_ycsb [--out=BENCH_daemon.json] [--ops=N] [--keys=K]
//        (--client + flags is the internal child-process mode)
#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_provenance.h"
#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/daemon/client.h"
#include "src/daemon/protocol.h"
#include "src/daemon/server.h"
#include "src/ipc/wire.h"
#include "src/stats/histogram.h"
#include "src/stats/stats.h"

extern char** environ;

namespace {

using puddles::stats::BucketScale;
using puddles::stats::Histogram;

constexpr uint64_t kResultMagic = 0x7075646479637362ULL;  // "puddycsb"

// Fixed-size binary result a child ships back over its pipe: op totals, wall
// time, and the full latency histogram state for exact bucket-wise merging.
struct ChildResult {
  uint64_t magic = kResultMagic;
  uint64_t ops_done = 0;
  uint64_t failures = 0;
  uint64_t wall_ns = 0;
  uint64_t hist_sum = 0;
  uint64_t hist_max = 0;
  uint64_t buckets[BucketScale::kNumBuckets] = {};
};

bool ReadFull(int fd, void* buf, size_t len) {
  auto* p = static_cast<uint8_t*>(buf);
  while (len > 0) {
    const ssize_t n = ::read(fd, p, len);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

bool WriteFull(int fd, const void* buf, size_t len) {
  const auto* p = static_cast<const uint8_t*>(buf);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

puddled::PtrMapRecord RecordFor(uint64_t type_id) {
  puddled::PtrMapRecord record{};
  record.type_id = type_id;
  record.num_fields = 2;
  record.object_size = 64;
  record.field_offsets[0] = 0;
  record.field_offsets[1] = 8;
  return record;
}

// ---------------------------------------------------------------------------
// Child-process mode: one connection, a read/update stream, results by pipe.
// ---------------------------------------------------------------------------

struct ClientConfig {
  std::string socket_path;
  uint64_t ops = 0;
  uint64_t keys = 0;
  uint64_t depth = 1;      // Pipelining window (1 = synchronous RTTs).
  uint64_t read_pct = 95;  // YCSB mix: % of ops that are reads.
  uint64_t seed = 1;
  int ready_fd = -1;
  int go_fd = -1;
  int result_fd = -1;
};

int RunClient(const ClientConfig& config) {
  auto socket = puddles::UnixSocket::Connect(config.socket_path);
  if (!socket.ok()) {
    std::fprintf(stderr, "client: connect failed: %s\n", socket.status().ToString().c_str());
    return 1;
  }
  puddles::Xoshiro256 rng(config.seed);
  ChildResult result;
  Histogram latency;
  std::deque<uint64_t> send_ticks;  // In-order responses: FIFO matches.
  uint64_t sent = 0, received = 0;

  // Requests for the current window are framed into one buffer and written
  // with one syscall — what a real pipelining client library would do (and
  // the whole point of depth > 1; at depth 1 the batch is a single frame,
  // i.e. the synchronous wire pattern).
  std::vector<uint8_t> batch;
  auto stage_one = [&] {
    puddles::WireWriter writer;
    if (rng.Below(100) < config.read_pct) {
      writer.PutU32(static_cast<uint32_t>(puddled::Op::kGetPtrMap));
      writer.PutU64(1 + rng.Below(config.keys));
    } else {
      writer.PutU32(static_cast<uint32_t>(puddled::Op::kRegisterPtrMap));
      puddled::EncodePtrMap(&writer, RecordFor(1 + rng.Below(config.keys)));
    }
    const uint32_t length = static_cast<uint32_t>(writer.bytes().size());
    const auto* header = reinterpret_cast<const uint8_t*>(&length);
    batch.insert(batch.end(), header, header + 4);
    batch.insert(batch.end(), writer.bytes().begin(), writer.bytes().end());
    send_ticks.push_back(puddles::stats::NowTicks());
    ++sent;
  };
  auto flush_batch = [&]() -> bool {
    if (batch.empty()) {
      return true;
    }
    if (!WriteFull(socket->fd(), batch.data(), batch.size())) {
      return false;
    }
    batch.clear();
    return true;
  };

  // Barrier: tell the parent we are connected, then block until every client
  // is, so the timed window measures steady concurrent load.
  uint8_t byte = 'R';
  if (!WriteFull(config.ready_fd, &byte, 1) || !ReadFull(config.go_fd, &byte, 1)) {
    std::fprintf(stderr, "client: start barrier failed\n");
    return 1;
  }

  bench::Timer timer;
  while (sent < config.ops && sent < config.depth) {
    stage_one();
  }
  if (!flush_batch()) {
    ++result.failures;
  }
  std::vector<uint8_t> inbuf;
  size_t inbuf_off = 0;
  uint8_t chunk[64 * 1024];
  while (received < sent && result.failures == 0) {
    const ssize_t n = ::read(socket->fd(), chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      ++result.failures;
      break;
    }
    inbuf.insert(inbuf.end(), chunk, chunk + n);
    uint64_t completed = 0;
    while (inbuf.size() - inbuf_off >= 4) {
      uint32_t length = 0;
      std::memcpy(&length, inbuf.data() + inbuf_off, 4);
      if (inbuf.size() - inbuf_off - 4 < length) {
        break;
      }
      latency.Record(
          puddles::stats::TicksToNanos(puddles::stats::NowTicks() - send_ticks.front()));
      send_ticks.pop_front();
      puddles::WireReader reader(inbuf.data() + inbuf_off + 4, length);
      puddles::Status status = puddles::OkStatus();
      if (!reader.GetStatus(&status).ok() || !status.ok()) {
        ++result.failures;
      } else {
        ++result.ops_done;
      }
      inbuf_off += 4 + static_cast<size_t>(length);
      ++received;
      ++completed;
    }
    if (inbuf_off > 0) {
      inbuf.erase(inbuf.begin(), inbuf.begin() + static_cast<ptrdiff_t>(inbuf_off));
      inbuf_off = 0;
    }
    // Refill the window by as many requests as just completed.
    while (completed-- > 0 && sent < config.ops) {
      stage_one();
    }
    if (!flush_batch()) {
      ++result.failures;
    }
  }
  result.wall_ns = static_cast<uint64_t>(timer.Nanos());
  result.hist_sum = latency.sum();
  result.hist_max = latency.max();
  for (size_t i = 0; i < BucketScale::kNumBuckets; ++i) {
    result.buckets[i] = latency.bucket(i);
  }
  if (!WriteFull(config.result_fd, &result, sizeof(result))) {
    return 1;
  }
  return result.failures == 0 ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Parent mode: spawn the matrix, merge, gate, emit JSON.
// ---------------------------------------------------------------------------

struct Row {
  std::string mode;  // "event" | "thread"
  std::string workload;
  uint64_t clients = 0;
  uint64_t depth = 0;
  uint64_t read_pct = 0;
  uint64_t total_ops = 0;
  double wall_s = 0;
  double ops_per_sec = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
};

struct RunSpec {
  puddled::Server::Mode mode;
  const char* workload;
  uint64_t clients;
  uint64_t depth;
  uint64_t read_pct;
};

std::string Flag(const char* name, uint64_t value) {
  return std::string(name) + "=" + std::to_string(value);
}

Row RunOne(puddled::Daemon* daemon, const std::string& socket_path, const std::string& exe,
           const RunSpec& spec, uint64_t ops_per_client, uint64_t keys) {
  puddled::Server::Options options;
  options.mode = spec.mode;
  auto server = puddled::Server::Start(daemon, socket_path, options);
  if (!server.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", server.status().ToString().c_str());
    std::abort();
  }

  int ready_pipe[2], go_pipe[2];
  if (::pipe(ready_pipe) != 0 || ::pipe(go_pipe) != 0) {
    std::perror("pipe");
    std::abort();
  }
  std::vector<pid_t> pids;
  std::vector<int> result_fds;
  for (uint64_t c = 0; c < spec.clients; ++c) {
    int result_pipe[2];
    if (::pipe(result_pipe) != 0) {
      std::perror("pipe");
      std::abort();
    }
    std::vector<std::string> args = {
        exe,
        "--client",
        "--socket=" + socket_path,
        Flag("--ops", ops_per_client),
        Flag("--keys", keys),
        Flag("--depth", spec.depth),
        Flag("--read-pct", spec.read_pct),
        Flag("--seed", 0x5eed0000 + c),
        Flag("--ready-fd", ready_pipe[1]),
        Flag("--go-fd", go_pipe[0]),
        Flag("--result-fd", result_pipe[1]),
    };
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& arg : args) {
      argv.push_back(arg.data());
    }
    argv.push_back(nullptr);
    pid_t pid = 0;
    const int rc = ::posix_spawn(&pid, exe.c_str(), nullptr, nullptr, argv.data(), environ);
    if (rc != 0) {
      std::fprintf(stderr, "posix_spawn failed: %s\n", std::strerror(rc));
      std::abort();
    }
    ::close(result_pipe[1]);  // Child's copy stays open in the child.
    pids.push_back(pid);
    result_fds.push_back(result_pipe[0]);
  }

  // Start barrier: one ready byte per connected child, then one go byte each.
  for (uint64_t c = 0; c < spec.clients; ++c) {
    uint8_t byte;
    if (!ReadFull(ready_pipe[0], &byte, 1)) {
      std::fprintf(stderr, "a client died before the barrier\n");
      std::abort();
    }
  }
  bench::Timer wall;
  std::vector<uint8_t> go(spec.clients, 'G');
  if (!WriteFull(go_pipe[1], go.data(), go.size())) {
    std::perror("go write");
    std::abort();
  }

  Histogram latency;
  uint64_t total_ops = 0, failures = 0, slowest_ns = 0;
  for (int fd : result_fds) {
    ChildResult result;
    if (!ReadFull(fd, &result, sizeof(result)) || result.magic != kResultMagic) {
      std::fprintf(stderr, "a client died mid-run\n");
      std::abort();
    }
    ::close(fd);
    total_ops += result.ops_done;
    failures += result.failures;
    slowest_ns = std::max(slowest_ns, result.wall_ns);
    for (size_t i = 0; i < BucketScale::kNumBuckets; ++i) {
      if (result.buckets[i] != 0) {
        latency.AddBucket(i, result.buckets[i]);
      }
    }
    latency.AddSumMax(result.hist_sum, result.hist_max);
  }
  const double wall_s = wall.Seconds();
  for (pid_t pid : pids) {
    int status = 0;
    (void)::waitpid(pid, &status, 0);
  }
  ::close(ready_pipe[0]);
  ::close(ready_pipe[1]);
  ::close(go_pipe[0]);
  ::close(go_pipe[1]);
  (*server)->Stop();
  if (failures != 0 || total_ops != spec.clients * ops_per_client) {
    std::fprintf(stderr, "run failed: %" PRIu64 " failures, %" PRIu64 "/%" PRIu64 " ops\n",
                 failures, total_ops, spec.clients * ops_per_client);
    std::abort();
  }

  Row row;
  row.mode = spec.mode == puddled::Server::Mode::kEventLoop ? "event" : "thread";
  row.workload = spec.workload;
  row.clients = spec.clients;
  row.depth = spec.depth;
  row.read_pct = spec.read_pct;
  row.total_ops = total_ops;
  // Throughput over the slowest client's window (all clients start together),
  // which excludes the parent's result-collection time.
  row.wall_s = static_cast<double>(slowest_ns) / 1e9;
  (void)wall_s;
  row.ops_per_sec = static_cast<double>(total_ops) / row.wall_s;
  row.p50_ns = latency.p50();
  row.p99_ns = latency.p99();
  std::printf("  %-6s %-3s %3" PRIu64 " clients  depth %2" PRIu64 "   %10.0f ops/s   p50 %8" PRIu64
              " ns   p99 %8" PRIu64 " ns\n",
              row.mode.c_str(), row.workload.c_str(), row.clients, row.depth, row.ops_per_sec,
              row.p50_ns, row.p99_ns);
  return row;
}

#ifndef PUDDLES_GIT_SHA
#define PUDDLES_GIT_SHA "unknown"
#endif
#ifndef PUDDLES_BUILD_FLAGS
#define PUDDLES_BUILD_FLAGS "unknown"
#endif

void WriteJson(const std::vector<Row>& rows, double speedup16, double speedup64,
               const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::abort();
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"daemon socket YCSB (multi-process clients)\",\n");
  std::fprintf(out, "  \"generated_by\": \"bench/bench_daemon_ycsb.cc\",\n");
  std::fprintf(out, "  \"protocol\": \"docs/daemon.md (event-driven server, pipelined wire)\",\n");
  std::fprintf(out, "%s",
               bench::ProvenanceJsonLine(PUDDLES_GIT_SHA, PUDDLES_BUILD_FLAGS).c_str());
  std::fprintf(out, "  \"scale\": %.2f,\n", bench::ScaleFactor());
  // Headline gate: pipelined event-mode vs the synchronous thread-per-
  // connection baseline at matched client counts (acceptance: >= 3x at 16+).
  std::fprintf(out, "  \"speedup_event_vs_thread\": {\"clients_16\": %.2f, \"clients_64\": %.2f},\n",
               speedup16, speedup64);
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"mode\": \"%s\", \"workload\": \"%s\", \"clients\": %" PRIu64
                 ", \"depth\": %" PRIu64 ", \"read_pct\": %" PRIu64 ", \"ops\": %" PRIu64
                 ", \"wall_s\": %.4f, \"ops_per_sec\": %.0f, \"p50_ns\": %" PRIu64
                 ", \"p99_ns\": %" PRIu64 "}%s\n",
                 r.mode.c_str(), r.workload.c_str(), r.clients, r.depth, r.read_pct,
                 r.total_ops, r.wall_s, r.ops_per_sec, r.p50_ns, r.p99_ns,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
}

uint64_t FlagValue(const std::string& arg) {
  return std::strtoull(arg.c_str() + arg.find('=') + 1, nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  // Child mode first: spawned copies of this binary re-enter here.
  if (argc > 1 && std::string(argv[1]) == "--client") {
    ClientConfig config;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--socket=", 0) == 0) {
        config.socket_path = arg.substr(9);
      } else if (arg.rfind("--ops=", 0) == 0) {
        config.ops = FlagValue(arg);
      } else if (arg.rfind("--keys=", 0) == 0) {
        config.keys = FlagValue(arg);
      } else if (arg.rfind("--depth=", 0) == 0) {
        config.depth = FlagValue(arg);
      } else if (arg.rfind("--read-pct=", 0) == 0) {
        config.read_pct = FlagValue(arg);
      } else if (arg.rfind("--seed=", 0) == 0) {
        config.seed = FlagValue(arg);
      } else if (arg.rfind("--ready-fd=", 0) == 0) {
        config.ready_fd = static_cast<int>(FlagValue(arg));
      } else if (arg.rfind("--go-fd=", 0) == 0) {
        config.go_fd = static_cast<int>(FlagValue(arg));
      } else if (arg.rfind("--result-fd=", 0) == 0) {
        config.result_fd = static_cast<int>(FlagValue(arg));
      }
    }
    return RunClient(config);
  }

  std::string out_path = "BENCH_daemon.json";
  uint64_t ops_per_client = bench::Scaled(1000);
  uint64_t keys = 1024;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--ops=", 0) == 0) {
      ops_per_client = FlagValue(arg);
    } else if (arg.rfind("--keys=", 0) == 0) {
      keys = FlagValue(arg);
    } else {
      std::fprintf(stderr, "usage: bench_daemon_ycsb [--out=FILE] [--ops=N] [--keys=K]\n");
      return 2;
    }
  }

  bench::PrintHeader("Daemon socket YCSB (event loop vs thread-per-connection)",
                     "multi-client daemon rebuild; acceptance: event >= 3x baseline at 16+ clients");
  auto dir = bench::ScratchDir("daemonycsb");
  puddled::Daemon::Options daemon_options;
  daemon_options.root_dir = (dir / "root").string();
  // Headroom for the preloaded keyspace (the default ptr-map table is sized
  // for type registries, not a bench keyspace).
  daemon_options.ptrmap_table_slots = 4 * keys;
  auto daemon = puddled::Daemon::Start(daemon_options);
  if (!daemon.ok()) {
    std::fprintf(stderr, "daemon start failed: %s\n", daemon.status().ToString().c_str());
    return 1;
  }
  const std::string socket_path = (dir / "puddled.sock").string();
  const std::string exe = "/proc/self/exe";

  // Preload the keyspace so reads always hit.
  puddled::EmbeddedDaemonClient loader(daemon->get());
  for (uint64_t k = 1; k <= keys; ++k) {
    if (!loader.RegisterPtrMap(RecordFor(k)).ok()) {
      std::fprintf(stderr, "keyspace preload failed\n");
      return 1;
    }
  }

  const std::vector<RunSpec> matrix = {
      // Baseline: the synchronous thread-per-connection deployment (depth 1,
      // the old client library never pipelined).
      {puddled::Server::Mode::kThreadPerConnection, "B", 1, 1, 95},
      {puddled::Server::Mode::kThreadPerConnection, "B", 16, 1, 95},
      {puddled::Server::Mode::kThreadPerConnection, "B", 64, 1, 95},
      // Event loop, synchronous clients (like-for-like RTT comparison).
      {puddled::Server::Mode::kEventLoop, "B", 1, 1, 95},
      {puddled::Server::Mode::kEventLoop, "B", 16, 1, 95},
      {puddled::Server::Mode::kEventLoop, "B", 64, 1, 95},
      // Event loop, pipelined (the headline configuration).
      {puddled::Server::Mode::kEventLoop, "B", 16, 16, 95},
      {puddled::Server::Mode::kEventLoop, "B", 64, 16, 95},
      {puddled::Server::Mode::kEventLoop, "A", 64, 16, 50},
      {puddled::Server::Mode::kEventLoop, "C", 64, 16, 100},
  };
  std::vector<Row> rows;
  rows.reserve(matrix.size());
  for (const RunSpec& spec : matrix) {
    rows.push_back(RunOne(daemon->get(), socket_path, exe, spec, ops_per_client, keys));
  }

  auto throughput = [&](const char* mode, uint64_t clients, uint64_t depth) {
    for (const Row& r : rows) {
      if (r.mode == mode && r.clients == clients && r.depth == depth && r.workload == "B") {
        return r.ops_per_sec;
      }
    }
    return 0.0;
  };
  const double speedup16 = throughput("event", 16, 16) / throughput("thread", 16, 1);
  const double speedup64 = throughput("event", 64, 16) / throughput("thread", 64, 1);
  std::printf("speedup (pipelined event vs thread baseline): %.2fx @16 clients, %.2fx @64\n",
              speedup16, speedup64);

  WriteJson(rows, speedup16, speedup64, out_path);
  daemon->reset();
  std::filesystem::remove_all(dir);
  return 0;
}
