// Shared provenance block for the BENCH_*.json emitters (bench_runner,
// bench_daemon_ycsb): a result without the commit, time, host, and flags
// that produced it cannot be compared across PRs. The git sha and build
// flags are baked in at compile time (PUDDLES_GIT_SHA / PUDDLES_BUILD_FLAGS
// target_compile_definitions in CMakeLists.txt).
#ifndef BENCH_BENCH_PROVENANCE_H_
#define BENCH_BENCH_PROVENANCE_H_

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>

namespace bench {

inline std::string TimestampUtc() {
  char buf[32] = "unknown";
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  if (gmtime_r(&now, &utc) != nullptr) {
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &utc);
  }
  return buf;
}

inline std::string Hostname() {
  char buf[256] = "unknown";
  if (::gethostname(buf, sizeof(buf)) != 0) {
    std::strcpy(buf, "unknown");
  }
  buf[sizeof(buf) - 1] = '\0';
  return buf;
}

// The `"provenance": {...},` line (two-space indent, trailing comma +
// newline) every BENCH_*.json carries.
inline std::string ProvenanceJsonLine(const char* git_sha, const char* build_flags,
                                      bool with_hostname = true) {
  std::string out = "  \"provenance\": {\"git_sha\": \"";
  out += git_sha;
  out += "\", \"timestamp\": \"" + TimestampUtc() + "\"";
  if (with_hostname) {
    out += ", \"hostname\": \"" + Hostname() + "\"";
  }
  out += ", \"build_flags\": \"";
  out += build_flags;
  out += "\"},\n";
  return out;
}

}  // namespace bench

#endif  // BENCH_BENCH_PROVENANCE_H_
