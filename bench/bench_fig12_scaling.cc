// Figure 12: multithreaded scaling — an embarrassingly parallel workload
// computing Euler's identity over a float array, 1/n-th per thread, each
// chunk updated in its own transaction. The paper shows linear scaling to 20
// physical cores; the shape here is bounded by this machine's core count
// (reported), demonstrating that Puddles' thread-local transactions add no
// cross-thread serialization.
#include <cmath>
#include <complex>
#include <thread>

#include "bench/bench_env.h"
#include "bench/bench_util.h"
#include "src/tx/tx.h"

namespace {

using bench::Timer;

// The 1M-double array is stored as fixed-size segments (a single allocation
// cannot exceed one puddle's heap); each thread owns a contiguous slice of
// segments and processes it chunk-by-chunk in its own transactions.
constexpr uint64_t kSegmentDoubles = 64 * 1024;  // 512 KiB per segment.

double RunThreads(bench::PuddlesEnv& env, std::vector<double*>& segments, int threads) {
  puddles::Pool& pool = *env.pool;
  Timer timer;
  std::vector<std::thread> workers;
  const size_t per_thread = segments.size() / static_cast<size_t>(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&pool, &segments, per_thread, t, threads] {
      const size_t begin = static_cast<size_t>(t) * per_thread;
      const size_t end = (t == threads - 1) ? segments.size() : begin + per_thread;
      constexpr uint64_t kChunk = 256;
      for (size_t s = begin; s < end; ++s) {
        double* array = segments[s];
        for (uint64_t i = 0; i < kSegmentDoubles; i += kChunk) {
          (void)pool.Run([&](puddles::Tx& tx) -> puddles::Status {
            RETURN_IF_ERROR(tx.LogRange(&array[i], kChunk * sizeof(double)));
            for (uint64_t j = i; j < i + kChunk; ++j) {
              // Euler's identity: e^{i*pi} + 1 (≈ 0), folded into the cell.
              std::complex<double> e = std::exp(std::complex<double>(0.0, M_PI));
              array[j] += e.real() + 1.0;
            }
            return puddles::OkStatus();
          });
        }
      }
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }
  return timer.Seconds();
}

}  // namespace

int main() {
  const uint64_t elements = bench::Scaled(1000000);  // Paper: 1M floats.
  bench::PrintHeader("Figure 12: multithreaded scaling (Euler identity over 1M doubles)",
                     "paper Fig. 12 (linear to 20 physical cores)");
  auto dir = bench::ScratchDir("fig12");
  bench::PuddlesEnv env(dir);

  std::vector<double*> segments;
  for (uint64_t allocated = 0; allocated < elements; allocated += kSegmentDoubles) {
    auto segment = env.pool->Malloc<double>(kSegmentDoubles);
    if (!segment.ok()) {
      std::fprintf(stderr, "alloc failed: %s\n", segment.status().ToString().c_str());
      return 1;
    }
    for (uint64_t i = 0; i < kSegmentDoubles; ++i) {
      (*segment)[i] = 0.0;
    }
    segments.push_back(*segment);
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("hardware threads on this machine: %u (paper testbed: 20 physical / 40 HT)\n\n",
              hw);
  std::printf("%8s %12s %22s\n", "threads", "time (s)", "throughput (norm. to 1)");

  double base = 0;
  for (unsigned threads = 1; threads <= 2 * hw; threads *= 2) {
    double seconds = RunThreads(env, segments, static_cast<int>(threads));
    if (threads == 1) {
      base = seconds;
    }
    std::printf("%8u %12.3f %22.2f\n", threads, seconds, base / seconds * 1.0);
  }
  std::filesystem::remove_all(dir);
  return 0;
}
