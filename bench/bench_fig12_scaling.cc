// Figure 12: multithreaded scaling — an embarrassingly parallel workload
// computing Euler's identity over a float array, 1/n-th per thread, each
// chunk updated in its own transaction. The paper shows linear scaling to 20
// physical cores; the shape here is bounded by this machine's core count
// (reported), demonstrating that Puddles' thread-local transactions add no
// cross-thread serialization.
//
// Extended for epoch-based group commit (docs/epoch.md): every thread count
// runs twice — immediate durability (one fence per commit stage) and epoch
// durability (fences delegated to the advancer, one per epoch close) — and
// reports ns/op plus fences/op from the pmem persist counters. The epoch
// column is the headline number: at 8+ threads fences/op must drop well
// under 1, since one epoch fence retires every thread's batched appends.
// With --out=FILE the table is also written as BENCH_epoch.json rows for the
// perf-trajectory CI gate.
#include <cmath>
#include <complex>
#include <thread>

#include "bench/bench_env.h"
#include "bench/bench_provenance.h"
#include "bench/bench_util.h"
#include "src/pmem/flush.h"
#include "src/tx/tx.h"

#ifndef PUDDLES_GIT_SHA
#define PUDDLES_GIT_SHA "unknown"
#endif
#ifndef PUDDLES_BUILD_FLAGS
#define PUDDLES_BUILD_FLAGS "unknown"
#endif

namespace {

using bench::Timer;

// The 1M-double array is stored as fixed-size segments (a single allocation
// cannot exceed one puddle's heap); each thread owns a contiguous slice of
// segments and processes it chunk-by-chunk in its own transactions.
constexpr uint64_t kSegmentDoubles = 64 * 1024;  // 512 KiB per segment.
constexpr uint64_t kChunk = 256;

struct ModeResult {
  double ns_per_op = 0;
  double fences_per_op = 0;
};

ModeResult RunThreads(bench::PuddlesEnv& env, std::vector<double*>& segments, int threads,
                      bool epoch) {
  puddles::Pool& pool = *env.pool;
  const uint64_t total_ops =
      static_cast<uint64_t>(segments.size()) * (kSegmentDoubles / kChunk);
  const pmem::PersistStats before = pmem::ReadPersistStats();
  Timer timer;
  std::vector<std::thread> workers;
  const size_t per_thread = segments.size() / static_cast<size_t>(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&pool, &segments, per_thread, t, threads] {
      const size_t begin = static_cast<size_t>(t) * per_thread;
      const size_t end = (t == threads - 1) ? segments.size() : begin + per_thread;
      for (size_t s = begin; s < end; ++s) {
        double* array = segments[s];
        for (uint64_t i = 0; i < kSegmentDoubles; i += kChunk) {
          (void)pool.Run([&](puddles::Tx& tx) -> puddles::Status {
            RETURN_IF_ERROR(tx.LogRange(&array[i], kChunk * sizeof(double)));
            for (uint64_t j = i; j < i + kChunk; ++j) {
              // Euler's identity: e^{i*pi} + 1 (≈ 0), folded into the cell.
              std::complex<double> e = std::exp(std::complex<double>(0.0, M_PI));
              array[j] += e.real() + 1.0;
            }
            return puddles::OkStatus();
          });
        }
      }
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }
  if (epoch) {
    // The run is only durable once the last epoch closes; fold that fence
    // into the measured interval so epoch mode pays its full persistence bill.
    pool.Sync();
  }
  const double seconds = timer.Seconds();
  const pmem::PersistStats after = pmem::ReadPersistStats();
  ModeResult result;
  result.ns_per_op = seconds * 1e9 / static_cast<double>(total_ops);
  result.fences_per_op = static_cast<double>(after.fences - before.fences) /
                         static_cast<double>(total_ops);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;  // Empty = table only, no JSON artifact.
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::fprintf(stderr, "usage: bench_fig12_scaling [--out=FILE]\n");
      return 2;
    }
  }

  const uint64_t elements = bench::Scaled(1000000);  // Paper: 1M floats.
  bench::PrintHeader("Figure 12: multithreaded scaling (Euler identity over 1M doubles)",
                     "paper Fig. 12 (linear to 20 physical cores)");
  auto dir = bench::ScratchDir("fig12");
  bench::PuddlesEnv env(dir);

  std::vector<double*> segments;
  for (uint64_t allocated = 0; allocated < elements; allocated += kSegmentDoubles) {
    auto segment = env.pool->Malloc<double>(kSegmentDoubles);
    if (!segment.ok()) {
      std::fprintf(stderr, "alloc failed: %s\n", segment.status().ToString().c_str());
      return 1;
    }
    for (uint64_t i = 0; i < kSegmentDoubles; ++i) {
      (*segment)[i] = 0.0;
    }
    segments.push_back(*segment);
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("hardware threads on this machine: %u (paper testbed: 20 physical / 40 HT)\n\n",
              hw);
  std::printf("%8s %16s %16s %14s %14s %10s\n", "threads", "immediate ns/op", "epoch ns/op",
              "imm fences/op", "ep fences/op", "speedup");

  struct Row {
    unsigned threads;
    ModeResult immediate;
    ModeResult epoch;
  };
  std::vector<Row> rows;
  for (unsigned threads : {1u, 2u, 4u, 8u, 16u}) {
    Row row;
    row.threads = threads;
    row.immediate = RunThreads(env, segments, static_cast<int>(threads), /*epoch=*/false);
    if (auto s = env.pool->SetDurability(puddles::Durability::kEpoch); !s.ok()) {
      std::fprintf(stderr, "SetDurability(kEpoch) failed: %s\n", s.ToString().c_str());
      return 1;
    }
    row.epoch = RunThreads(env, segments, static_cast<int>(threads), /*epoch=*/true);
    (void)env.pool->SetDurability(puddles::Durability::kImmediate);
    rows.push_back(row);
    std::printf("%8u %16.1f %16.1f %14.3f %14.3f %9.2fx\n", threads, row.immediate.ns_per_op,
                row.epoch.ns_per_op, row.immediate.fences_per_op, row.epoch.fences_per_op,
                row.immediate.ns_per_op / row.epoch.ns_per_op);
  }

  if (!out_path.empty()) {
    FILE* out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(out, "{\n");
    std::fputs(bench::ProvenanceJsonLine(PUDDLES_GIT_SHA, PUDDLES_BUILD_FLAGS).c_str(), out);
    std::fprintf(out, "  \"benchmark\": \"fig12_scaling_epoch\",\n");
    std::fprintf(out, "  \"rows\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
      const Row& r = rows[i];
      std::fprintf(out,
                   "    {\"threads\": %u, \"immediate_ns_per_op\": %.1f, "
                   "\"epoch_ns_per_op\": %.1f, \"immediate_fences_per_op\": %.4f, "
                   "\"epoch_fences_per_op\": %.4f}%s\n",
                   r.threads, r.immediate.ns_per_op, r.epoch.ns_per_op,
                   r.immediate.fences_per_op, r.epoch.fences_per_op,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", out_path.c_str());
  }
  std::filesystem::remove_all(dir);
  return 0;
}
