// Shared helpers for the figure/table benchmark binaries. Each binary
// regenerates one table or figure of the paper's evaluation; default sizes
// are scaled down from the paper's testbed runs so the whole suite completes
// in minutes — set PUDDLES_BENCH_SCALE=paper (or a number ≥ 1) for larger
// runs (see EXPERIMENTS.md).
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "src/pmem/flush.h"

namespace bench {

class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }
  double Nanos() const { return Seconds() * 1e9; }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Scale factor: 1 (default quick run) … N. "paper" selects the paper's sizes.
inline double ScaleFactor() {
  const char* env = std::getenv("PUDDLES_BENCH_SCALE");
  if (env == nullptr || *env == '\0') {
    return 1.0;
  }
  if (std::string(env) == "paper") {
    return 10.0;
  }
  return std::atof(env);
}

inline uint64_t Scaled(uint64_t base) {
  return static_cast<uint64_t>(static_cast<double>(base) * ScaleFactor());
}

// A fresh scratch directory for this benchmark run.
inline std::filesystem::path ScratchDir(const std::string& name) {
  auto dir = std::filesystem::temp_directory_path() /
             ("puddles_bench_" + name + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("\n==========================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s   (scale=%.1f; PUDDLES_BENCH_SCALE to adjust)\n", paper_ref,
              ScaleFactor());
  std::printf("==========================================================================\n");
}

// Keeps the optimizer from eliding a computed value.
inline void DoNotOptimize(uint64_t value) {
  asm volatile("" : : "r"(value) : "memory");
}

// Mean ordering points (fences) per run of `op`, from the persist-stats
// delta around `probes` runs after one warm-up call. The shared probe
// harness for the fences-per-transaction columns (DESIGN.md §10) so the
// stdout tables and BENCH_commit.json cannot drift on methodology.
template <typename Op>
inline double FencesPerOp(Op&& op, uint64_t probes = 256) {
  op();  // Warm-up: puddle growth, log formatting, faults.
  const uint64_t before = pmem::ReadPersistStats().fences;
  for (uint64_t i = 0; i < probes; ++i) {
    op();
  }
  return static_cast<double>(pmem::ReadPersistStats().fences - before) /
         static_cast<double>(probes);
}

}  // namespace bench

#endif  // BENCH_BENCH_UTIL_H_
