// Per-library benchmark environments: stand up each PM library over scratch
// storage and hand back workload adapters.
#ifndef BENCH_BENCH_ENV_H_
#define BENCH_BENCH_ENV_H_

#include <filesystem>
#include <memory>

#include "bench/bench_util.h"
#include "src/workloads/adapters.h"

namespace bench {

inline constexpr size_t kBenchHeap = 512 << 20;  // Baseline single-file pools.

struct PuddlesEnv {
  explicit PuddlesEnv(const std::filesystem::path& dir, const char* pool_name = "bench") {
    auto started = puddled::Daemon::Start({.root_dir = (dir / "puddled").string()});
    if (!started.ok()) {
      std::fprintf(stderr, "daemon start failed: %s\n", started.status().ToString().c_str());
      std::abort();
    }
    daemon = std::move(*started);
    auto rt = puddles::Runtime::Create(
        std::make_shared<puddled::EmbeddedDaemonClient>(daemon.get()));
    runtime = std::move(*rt);
    auto created = runtime->CreatePool(pool_name);
    if (!created.ok()) {
      std::fprintf(stderr, "pool create failed: %s\n", created.status().ToString().c_str());
      std::abort();
    }
    pool = *created;
  }
  workloads::PuddlesAdapter adapter() { return workloads::PuddlesAdapter(pool); }

  std::unique_ptr<puddled::Daemon> daemon;
  std::unique_ptr<puddles::Runtime> runtime;
  puddles::Pool* pool = nullptr;
};

template <typename PoolT>
struct BaselineEnv {
  BaselineEnv(const std::filesystem::path& dir, const char* name) {
    auto created = PoolT::Create((dir / name).string(), kBenchHeap);
    if (!created.ok()) {
      std::fprintf(stderr, "%s create failed: %s\n", name,
                   created.status().ToString().c_str());
      std::abort();
    }
    pool = std::make_unique<PoolT>(std::move(*created));
  }
  std::unique_ptr<PoolT> pool;
};

}  // namespace bench

#endif  // BENCH_BENCH_ENV_H_
