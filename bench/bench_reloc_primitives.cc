// §5.1 "Relocatability primitives": export cost vs data size, import cost,
// pointer-rewrite cost vs pointer count, and the translate hot path itself —
// ns/pointer for the sorted interval table (binary search + MRU cache)
// against the linear reference scan, across moved-range counts.
#include "bench/bench_env.h"
#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/libpuddles/relocation.h"
#include "src/workloads/list.h"

namespace {

using bench::Timer;
namespace fs = std::filesystem;

// Rewrite-shaped address stream: mostly hits with pointer locality (runs of
// consecutive addresses inside one range, as a heap walk produces), plus a
// tail of misses (already-new / foreign pointers passing through).
std::vector<uint64_t> TranslateWorkload(const std::vector<std::pair<uint64_t, uint64_t>>& ranges,
                                        size_t count) {
  puddles::Xoshiro256 rng(0xbeef);
  std::vector<uint64_t> addrs;
  addrs.reserve(count);
  while (addrs.size() < count) {
    if (rng.NextDouble() < 0.85) {
      const auto& [lo, size] = ranges[rng.Below(ranges.size())];
      uint64_t addr = lo + rng.Below(size);
      for (int run = 0; run < 16 && addrs.size() < count; ++run) {
        addrs.push_back(addr);
        addr = lo + (addr - lo + 64) % size;
      }
    } else {
      addrs.push_back(0x7f0000000000ULL + rng.Below(1ULL << 30));  // Miss.
    }
  }
  return addrs;
}

void BenchTranslate() {
  std::printf("\n%-16s %16s %16s %10s\n", "moved ranges", "linear (ns/ptr)",
              "indexed (ns/ptr)", "speedup");
  const size_t lookups = bench::Scaled(2'000'000);
  for (size_t num_ranges : {1u, 8u, 64u, 512u}) {
    puddles::Translator translator;
    std::vector<std::pair<uint64_t, uint64_t>> ranges;
    uint64_t cursor = 0x10000000000ULL;
    for (size_t i = 0; i < num_ranges; ++i) {
      const uint64_t size = 2ULL << 20;
      (void)translator.Add(cursor, size, 0x40000000000ULL + i * (4ULL << 20));
      ranges.push_back({cursor, size});
      cursor += size + (4ULL << 20);
    }
    std::vector<uint64_t> addrs = TranslateWorkload(ranges, lookups);

    auto run = [&](auto&& translate) {
      uint64_t checksum = 0;
      Timer timer;
      for (uint64_t addr : addrs) {
        uint64_t out;
        if (translate(addr, &out)) {
          checksum ^= out;
        }
      }
      bench::DoNotOptimize(checksum);
      return timer.Nanos() / static_cast<double>(addrs.size());
    };
    const double linear_ns =
        run([&](uint64_t a, uint64_t* o) { return translator.TranslateLinear(a, o); });
    const double indexed_ns =
        run([&](uint64_t a, uint64_t* o) { return translator.Translate(a, o); });
    std::printf("%-16zu %16.2f %16.2f %9.1fx\n", num_ranges, linear_ns, indexed_ns,
                linear_ns / indexed_ns);
  }
}

}  // namespace

int main() {
  bench::PrintHeader("Relocatability primitives (paper §5.1)",
                     "export 0.3-0.5s; import ~1.5ms; rewrite 0.2ms/20 ptrs "
                     "... 0.5s/2M ptrs");
  auto dir = bench::ScratchDir("relocprim");

  // ---- Export / import vs data size ----
  std::printf("%-28s %12s %12s\n", "pool payload", "export (s)", "import (s)");
  for (uint64_t bytes : {16ULL, 16ULL << 10, 1ULL << 20, 16ULL << 20}) {
    fs::path pool_dir = dir / ("size" + std::to_string(bytes));
    bench::PuddlesEnv env(pool_dir);
    // Fill with raw byte objects.
    uint64_t remaining = bytes;
    while (remaining > 0) {
      uint64_t chunk = std::min<uint64_t>(remaining, 64 << 10);
      auto obj = env.pool->MallocBytes(chunk, puddles::kRawBytesTypeId);
      if (!obj.ok()) {
        break;
      }
      std::memset(*obj, 0x7e, chunk);
      remaining -= chunk;
    }
    fs::path export_dir = pool_dir / "export";
    Timer timer;
    (void)env.runtime->ExportPool("bench", export_dir.string());
    double export_s = timer.Seconds();

    timer.Reset();
    auto import = env.runtime->client().ImportPool(export_dir.string(), "copy");
    double import_s = timer.Seconds();
    if (!import.ok()) {
      std::fprintf(stderr, "import failed: %s\n", import.status().ToString().c_str());
    }
    char label[64];
    if (bytes < (1 << 20)) {
      std::snprintf(label, sizeof(label), "%llu KiB",
                    static_cast<unsigned long long>(bytes >> 10));
    } else {
      std::snprintf(label, sizeof(label), "%llu MiB",
                    static_cast<unsigned long long>(bytes >> 20));
    }
    std::printf("%-28s %12.4f %12.4f\n", bytes == 16 ? "16 B" : label, export_s, import_s);
    fs::remove_all(pool_dir);
  }

  // ---- Pointer rewrite cost vs pointer count ----
  std::printf("\n%-28s %14s %16s\n", "pointers in pool", "rewrite (ms)", "(paper)");
  const uint64_t max_ptrs = bench::Scaled(200000);
  for (uint64_t pointers : std::initializer_list<uint64_t>{20, 2000, max_ptrs}) {
    fs::path pool_dir = dir / ("ptr" + std::to_string(pointers));
    double rewrite_ms = 0;
    {
      bench::PuddlesEnv env(pool_dir);
      workloads::PersistentList<workloads::PuddlesAdapter>::RegisterTypes();
      workloads::PersistentList<workloads::PuddlesAdapter> list(env.adapter());
      (void)list.Init();
      for (uint64_t i = 0; i < pointers; ++i) {
        (void)list.InsertTail(i);
      }
      fs::path export_dir = pool_dir / "export";
      (void)env.runtime->ExportPool("bench", export_dir.string());

      // Import into the same space: conflicts force a full rewrite.
      auto before = env.runtime->stats();
      (void)env.runtime->client().ImportPool(export_dir.string(), "copy");
      Timer timer;
      auto copy = env.runtime->OpenPool("copy");  // Maps + rewrites eagerly/on demand.
      if (copy.ok()) {
        workloads::PuddlesAdapter copy_adapter(*copy);
        workloads::PersistentList<workloads::PuddlesAdapter> copy_list(copy_adapter);
        (void)copy_list.Init();
        bench::DoNotOptimize(copy_list.Sum());  // Touch everything.
      }
      rewrite_ms = timer.Seconds() * 1e3;
      auto after = env.runtime->stats();
      std::printf("%-28llu %14.3f %16s (rewrote %llu ptrs)\n",
                  static_cast<unsigned long long>(pointers), rewrite_ms,
                  pointers == 20      ? "0.2 ms"
                  : pointers == 2000  ? "1.6 ms"
                                      : "0.5 s @2M",
                  static_cast<unsigned long long>(after.pointers_rewritten -
                                                  before.pointers_rewritten));
    }
    fs::remove_all(pool_dir);
  }

  // ---- Translate hot path: linear scan vs interval table ----
  BenchTranslate();

  std::filesystem::remove_all(dir);
  return 0;
}
