// Figure 11: KV store under YCSB A–G across five libraries (PMDK-like,
// Libpuddles, go-pmem-like, Atlas-like, Romulus). The paper loads 1M keys and
// runs 1M operations per workload; defaults here are scaled (see
// EXPERIMENTS.md). Expected shape: Puddles at least as fast as PMDK (up to
// 1.34×), Atlas slowest on write-heavy mixes, Romulus fastest on write-heavy.
#include "bench/bench_env.h"
#include "bench/bench_util.h"
#include "src/workloads/art.h"
#include "src/workloads/btree.h"
#include "src/workloads/kvstore.h"
#include "src/workloads/ycsb.h"

namespace {

using bench::Timer;
using workloads::YcsbOp;
using workloads::YcsbStream;
using workloads::YcsbWorkload;

constexpr YcsbWorkload kWorkloads[] = {YcsbWorkload::kA, YcsbWorkload::kB, YcsbWorkload::kC,
                                       YcsbWorkload::kD, YcsbWorkload::kE, YcsbWorkload::kF,
                                       YcsbWorkload::kG};

template <typename Adapter>
std::vector<double> RunYcsb(Adapter adapter, uint64_t records, uint64_t ops) {
  workloads::KvStore<Adapter>::RegisterTypes();
  workloads::KvStore<Adapter> kv(adapter);
  if (!kv.Init(1 << 16).ok()) {
    std::abort();
  }
  // Load phase.
  char value[workloads::kKvValueSize] = {};
  for (uint64_t i = 0; i < records; ++i) {
    std::snprintf(value, sizeof(value), "v%llu", static_cast<unsigned long long>(i));
    if (!kv.Put(YcsbStream::KeyFor(i), value).ok()) {
      std::abort();
    }
  }

  std::vector<double> seconds;
  char out[workloads::kKvValueSize];
  for (YcsbWorkload workload : kWorkloads) {
    YcsbStream stream(workload, records, 0xC0FFEE + static_cast<uint64_t>(workload));
    uint64_t sink = 0;
    Timer timer;
    for (uint64_t i = 0; i < ops; ++i) {
      workloads::YcsbRequest request = stream.Next();
      const std::string key = YcsbStream::KeyFor(request.key_index);
      switch (request.op) {
        case YcsbOp::kRead:
          sink += kv.Get(key, out) ? 1 : 0;
          break;
        case YcsbOp::kUpdate:
        case YcsbOp::kInsert:
          std::snprintf(value, sizeof(value), "u%llu",
                        static_cast<unsigned long long>(i));
          (void)kv.Put(key, value);
          break;
        case YcsbOp::kScan:
          sink += kv.Scan(key, request.scan_length);
          break;
        case YcsbOp::kReadModifyWrite:
          if (kv.Get(key, out)) {
            out[0] ^= 1;
            (void)kv.Put(key, out);
          }
          break;
      }
    }
    bench::DoNotOptimize(sink);
    seconds.push_back(timer.Seconds());
  }
  return seconds;
}

// YCSB-E (95% short ordered range scan / 5% insert) over the two ordered
// indexes on Libpuddles: the adaptive radix tree vs the order-8 B+-tree.
// Scans are read-only in both (no ordering points); the interesting delta is
// pointer-chasing depth and node fan-out on the scan path.
template <typename Index>
std::pair<double, double> RunOrderedE(Index& index, uint64_t records, uint64_t ops) {
  Timer load_timer;
  for (uint64_t i = 0; i < records; ++i) {
    if (!index.Insert(i, i * 2 + 1).ok()) {
      std::abort();
    }
  }
  const double load_seconds = load_timer.Seconds();

  YcsbStream stream(YcsbWorkload::kE, records, 0xC0FFEE + 'E');
  std::vector<std::pair<uint64_t, uint64_t>> buffer;
  buffer.reserve(128);
  uint64_t sink = 0;
  Timer timer;
  for (uint64_t i = 0; i < ops; ++i) {
    workloads::YcsbRequest request = stream.Next();
    if (request.op == YcsbOp::kScan) {
      buffer.clear();
      sink += index.Scan(request.key_index, request.scan_length, &buffer);
    } else {
      (void)index.Insert(request.key_index, i);
    }
  }
  bench::DoNotOptimize(sink);
  return {load_seconds, timer.Seconds()};
}

}  // namespace

int main() {
  const uint64_t records = bench::Scaled(100000);
  const uint64_t ops = bench::Scaled(100000);
  bench::PrintHeader("Figure 11: KV store, YCSB A-G, five PM libraries",
                     "paper Fig. 11, 1M keys load + 1M ops per workload");

  auto dir = bench::ScratchDir("fig11");
  std::vector<std::pair<const char*, std::vector<double>>> results;
  {
    bench::BaselineEnv<fatptr::FatPool> env(dir, "pmdk");
    results.emplace_back("PMDK", RunYcsb(workloads::FatPtrAdapter(env.pool.get()), records, ops));
  }
  {
    bench::PuddlesEnv env(dir);
    results.emplace_back("Libpuddles", RunYcsb(env.adapter(), records, ops));
  }
  {
    bench::BaselineEnv<gopmem::GoPmemPool> env(dir, "gopmem");
    results.emplace_back("go-pmem",
                         RunYcsb(workloads::GoPmemAdapter(env.pool.get()), records, ops));
  }
  {
    bench::BaselineEnv<atlaspm::AtlasPool> env(dir, "atlas");
    results.emplace_back("Atlas",
                         RunYcsb(workloads::AtlasAdapter(env.pool.get()), records, ops));
  }
  {
    bench::BaselineEnv<romulus::RomulusPool> env(dir, "romulus");
    results.emplace_back("Romulus",
                         RunYcsb(workloads::RomulusAdapter(env.pool.get()), records, ops));
  }

  std::printf("execution time in seconds (lower is better)\n");
  std::printf("%-12s", "library");
  for (YcsbWorkload workload : kWorkloads) {
    std::printf("%9c", static_cast<char>(workload));
  }
  std::printf("\n");
  for (const auto& [name, seconds] : results) {
    std::printf("%-12s", name);
    for (double s : seconds) {
      std::printf("%9.3f", s);
    }
    std::printf("\n");
  }
  // Headline ratio: Puddles vs PMDK per workload.
  std::printf("\nPMDK / Puddles ratio per workload (paper: 1.0x-1.34x): ");
  for (size_t w = 0; w < std::size(kWorkloads); ++w) {
    std::printf("%c=%.2fx ", static_cast<char>(kWorkloads[w]),
                results[0].second[w] / results[1].second[w]);
  }
  std::printf("\nrecords=%llu ops=%llu per workload\n",
              static_cast<unsigned long long>(records), static_cast<unsigned long long>(ops));

  // ---- YCSB-E: ordered indexes (ART vs B+-tree) on Libpuddles ----
  std::pair<double, double> art_e, btree_e;
  {
    bench::PuddlesEnv env(dir, "art");
    workloads::ArtIndex<workloads::PuddlesAdapter>::RegisterTypes();
    workloads::ArtIndex<workloads::PuddlesAdapter> art(env.adapter());
    if (!art.Init().ok()) {
      std::abort();
    }
    art_e = RunOrderedE(art, records, ops);
  }
  {
    bench::PuddlesEnv env(dir, "btree");
    workloads::PersistentBTree<workloads::PuddlesAdapter>::RegisterTypes();
    workloads::PersistentBTree<workloads::PuddlesAdapter> btree(env.adapter());
    if (!btree.Init().ok()) {
      std::abort();
    }
    btree_e = RunOrderedE(btree, records, ops);
  }
  std::printf("\nYCSB-E, ordered indexes on Libpuddles (95%% scan / 5%% insert)\n");
  std::printf("%-12s %10s %10s %14s\n", "index", "load (s)", "E (s)", "E ops/s");
  std::printf("%-12s %10.3f %10.3f %14.0f\n", "ART", art_e.first, art_e.second,
              static_cast<double>(ops) / art_e.second);
  std::printf("%-12s %10.3f %10.3f %14.0f\n", "B+-tree", btree_e.first, btree_e.second,
              static_cast<double>(ops) / btree_e.second);
  std::printf("B+-tree / ART time ratio on E: %.2fx\n", btree_e.second / art_e.second);
  std::filesystem::remove_all(dir);
  return 0;
}
