// google-benchmark microbenchmarks for the persistence substrate and core
// primitives: flush/fence instruction cost, log append, pmhash ops, fat vs
// native pointer dereference. Complements the table/figure binaries with
// statistically robust per-op numbers.
#include <benchmark/benchmark.h>

#include <vector>

#include "src/baselines/fatptr/fatptr.h"
#include "src/common/rng.h"
#include "src/pmem/flush.h"
#include "src/pmhash/pmhash.h"
#include "src/tx/log_format.h"

namespace {

void BM_FlushLine(benchmark::State& state) {
  alignas(64) static uint8_t line[64];
  for (auto _ : state) {
    line[0]++;
    pmem::Flush(line, 64);
  }
}
BENCHMARK(BM_FlushLine);

void BM_FlushFenceLine(benchmark::State& state) {
  alignas(64) static uint8_t line[64];
  for (auto _ : state) {
    line[0]++;
    pmem::FlushFence(line, 64);
  }
}
BENCHMARK(BM_FlushFenceLine);

void BM_LogAppend(benchmark::State& state) {
  const size_t data_size = static_cast<size_t>(state.range(0));
  std::vector<uint8_t> log_buffer(8 << 20);
  (void)puddles::LogRegion::Format(log_buffer.data(), log_buffer.size());
  auto log = puddles::LogRegion::Attach(log_buffer.data(), log_buffer.size());
  std::vector<uint8_t> payload(data_size, 0xab);
  for (auto _ : state) {
    if (!log->Append(0x1000, payload.data(), static_cast<uint32_t>(data_size),
                     puddles::kUndoSeq, puddles::ReplayOrder::kReverse)
             .ok()) {
      log->Reset(0, 2);
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations() * data_size));
}
BENCHMARK(BM_LogAppend)->Arg(8)->Arg(64)->Arg(4096);

void BM_PmHashPut(benchmark::State& state) {
  using Map = puddles::PersistentHashMap<uint64_t, uint64_t>;
  std::vector<uint8_t> buffer(Map::RequiredBytes(1 << 16));
  (void)Map::Format(buffer.data(), buffer.size(), 1 << 16);
  auto map = Map::Attach(buffer.data(), buffer.size());
  uint64_t key = 0;
  for (auto _ : state) {
    (void)map->Put(key++ % 50000, key);
  }
}
BENCHMARK(BM_PmHashPut);

void BM_PmHashGet(benchmark::State& state) {
  using Map = puddles::PersistentHashMap<uint64_t, uint64_t>;
  std::vector<uint8_t> buffer(Map::RequiredBytes(1 << 16));
  (void)Map::Format(buffer.data(), buffer.size(), 1 << 16);
  auto map = Map::Attach(buffer.data(), buffer.size());
  for (uint64_t i = 0; i < 50000; ++i) {
    (void)map->Put(i, i);
  }
  puddles::Xoshiro256 rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(map->Get(rng.Below(50000)));
  }
}
BENCHMARK(BM_PmHashGet);

// Pointer-format microbenchmark: chase a chain of native vs fat pointers
// through the same node layout (the Fig. 1 effect in isolation).
struct NativeNode {
  NativeNode* next;
  uint64_t value;
};

void BM_NativePointerChase(benchmark::State& state) {
  constexpr int kNodes = 1 << 14;
  std::vector<NativeNode> nodes(kNodes);
  puddles::Xoshiro256 rng(1);
  // Random permutation chain (defeats prefetching, like real heaps).
  std::vector<uint32_t> order(kNodes);
  for (int i = 0; i < kNodes; ++i) {
    order[i] = static_cast<uint32_t>(i);
  }
  for (int i = kNodes - 1; i > 0; --i) {
    std::swap(order[i], order[rng.Below(static_cast<uint64_t>(i + 1))]);
  }
  for (int i = 0; i < kNodes - 1; ++i) {
    nodes[order[i]].next = &nodes[order[i + 1]];
    nodes[order[i]].value = i;
  }
  nodes[order[kNodes - 1]].next = nullptr;

  for (auto _ : state) {
    uint64_t sum = 0;
    for (NativeNode* n = &nodes[order[0]]; n != nullptr; n = n->next) {
      sum += n->value;
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kNodes);
}
BENCHMARK(BM_NativePointerChase);

struct FatNode {
  fatptr::FatPtr<FatNode> next;
  uint64_t value;
};

void BM_FatPointerChase(benchmark::State& state) {
  constexpr int kNodes = 1 << 14;
  // Register a fake pool so FatPtr::get() translates through the directory.
  std::vector<FatNode> nodes(kNodes);
  auto pool_id = fatptr::PoolDirectory::Instance().RegisterPool(
      puddles::Uuid::Generate(), reinterpret_cast<uint8_t*>(nodes.data()));
  puddles::Xoshiro256 rng(1);
  std::vector<uint32_t> order(kNodes);
  for (int i = 0; i < kNodes; ++i) {
    order[i] = static_cast<uint32_t>(i);
  }
  for (int i = kNodes - 1; i > 0; --i) {
    std::swap(order[i], order[rng.Below(static_cast<uint64_t>(i + 1))]);
  }
  for (int i = 0; i < kNodes - 1; ++i) {
    nodes[order[i]].next =
        fatptr::FatPtr<FatNode>{*pool_id, order[i + 1] * sizeof(FatNode)};
    nodes[order[i]].value = i;
  }
  nodes[order[kNodes - 1]].next = fatptr::FatPtr<FatNode>::Null();

  for (auto _ : state) {
    uint64_t sum = 0;
    for (FatNode* n = &nodes[order[0]]; n != nullptr;) {
      sum += n->value;
      n = n->next.get();
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kNodes);
  fatptr::PoolDirectory::Instance().UnregisterPool(*pool_id);
}
BENCHMARK(BM_FatPointerChase);

}  // namespace

BENCHMARK_MAIN();
