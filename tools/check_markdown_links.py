#!/usr/bin/env python3
"""Markdown link checker for the repo's front-door docs.

Verifies that every relative link in the given markdown files points at an
existing file (relative to the linking file), and that fragment links
(`file.md#anchor` or `#anchor`) resolve to a heading in the target using
GitHub's slug algorithm. External (http/https/mailto) links are skipped —
CI must not depend on the network.

Usage: check_markdown_links.py FILE.md [FILE.md ...]
Exit status: 0 iff every link resolves.
"""

import re
import sys
import unicodedata
from pathlib import Path

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
IMAGE_RE = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_FENCE_RE = re.compile(r"^\s*(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces to dashes."""
    text = unicodedata.normalize("NFKC", heading)
    # Strip inline code/emphasis markers and links ([text](url) -> text).
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.replace("`", "").replace("*", "")
    out = []
    for ch in text.lower():
        if ch.isalnum() or ch in ("-", "_"):
            out.append(ch)
        elif ch == " ":
            out.append("-")
        # Every other character (punctuation, §, …) is dropped.
    return "".join(out)


def anchors_of(path: Path) -> set:
    anchors = set()
    seen = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(2))
        if slug in seen:
            seen[slug] += 1
            slug = f"{slug}-{seen[slug]}"
        else:
            seen[slug] = 0
        anchors.add(slug)
    return anchors


def links_of(path: Path):
    in_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for regex in (LINK_RE, IMAGE_RE):
            for m in regex.finditer(line):
                yield lineno, m.group(1)


def main(argv):
    if len(argv) < 2:
        print(__doc__)
        return 2
    errors = 0
    checked = 0
    for name in argv[1:]:
        source = Path(name)
        if not source.exists():
            print(f"{name}: file not found")
            errors += 1
            continue
        for lineno, target in links_of(source):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            checked += 1
            if target.startswith("#"):
                frag = target[1:]
                if frag not in anchors_of(source):
                    print(f"{name}:{lineno}: broken in-file anchor '#{frag}'")
                    errors += 1
                continue
            file_part, _, frag = target.partition("#")
            dest = (source.parent / file_part).resolve()
            if not dest.exists():
                print(f"{name}:{lineno}: broken link '{target}' (no such file)")
                errors += 1
                continue
            if frag:
                if dest.suffix.lower() not in (".md", ".markdown"):
                    print(f"{name}:{lineno}: anchor on non-markdown target '{target}'")
                    errors += 1
                elif frag not in anchors_of(dest):
                    print(f"{name}:{lineno}: broken anchor '{target}'")
                    errors += 1
    if errors:
        print(f"link check FAILED: {errors} broken link(s) of {checked} checked")
        return 1
    print(f"link check OK: {checked} relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
