#!/usr/bin/env bash
# CI gate for the telemetry subsystem (DESIGN.md §11). Two invariants:
#
#  1. Hot paths stay cheap. The per-entry append path (LogRegion::AppendStaged)
#     must carry NO stats calls at all, and the FlushBatch staging/publish
#     bodies may carry counter bumps only — no timers, spans, or anything that
#     reads a clock or takes a lock per entry. A stray PUDDLES_SCOPED_TIMER in
#     FlushBatch::Add would put two rdtsc reads on every logged range.
#
#  2. Telemetry is volatile-only. Nothing under src/stats may flush, fence, or
#     otherwise touch persistent memory: instrumentation must be invisible to
#     the persistence ordering that crashsim and the fence-count benches
#     verify. A pmem:: call creeping into src/stats changes the crash-state
#     space of every instrumented path.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

# --- 1a. AppendStaged: zero stats calls (it runs per log entry). ---
file=src/tx/log_format.cc
body=$(awk '/^puddles::Status LogRegion::AppendStaged/,/^}/' "$file")
if [ -z "$body" ]; then
  echo "::error::$file: LogRegion::AppendStaged not found — gate needs updating"
  exit 1
fi
if matches=$(echo "$body" | grep -nE 'PUDDLES_(COUNT|RECORD|SCOPED|TRACE)|stats::'); then
  echo "$matches"
  echo "::error::stats call inside LogRegion::AppendStaged — the per-entry append path carries no telemetry (counting happens once per entry in Transaction::AppendEntry)"
  fail=1
fi

# --- 1b. FlushBatch bodies: counter macros only. ---
file=src/pmem/flush.cc
for fn in 'void FlushBatch::Add' 'void FlushBatch::FlushPending'; do
  body=$(awk "/^${fn}/,/^}/" "$file")
  if [ -z "$body" ]; then
    echo "::error::$file: ${fn} not found — gate needs updating"
    exit 1
  fi
  if matches=$(echo "$body" | grep -nE 'PUDDLES_(SCOPED_TIMER|RECORD_TICKS|TRACE_SPAN)|ScopedTimer|ScopedSpan|NowTicks'); then
    echo "$matches"
    echo "::error::timer/span inside ${fn} — FlushBatch hot paths allow counter bumps only (no per-call clock reads)"
    fail=1
  fi
done

# --- 2. src/stats is volatile-only: no persistence primitives, no PM. ---
# Comments stripped first: counter documentation may legitimately NAME the
# primitives it counts.
if matches=$(find src/stats -type f \( -name '*.h' -o -name '*.cc' \) \
    -exec sed 's://.*$::' {} + | grep -nE 'pmem::(Flush|Fence|FlushFence|PersistStore64|FlushBatch)|clwb|clflush|sfence'); then
  echo "$matches"
  echo "::error::persistence call inside src/stats — telemetry is volatile-only (DESIGN.md §11)"
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "stats-path gate clean: hot paths counter-only, src/stats volatile-only"
