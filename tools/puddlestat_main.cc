// puddlestat: query a live Puddled for its telemetry snapshot (STATS opcode)
// and render it — counters, per-opcode request totals, and latency
// percentiles. The textual output is for humans; --json emits one JSON object
// for dashboards/scripts; --check is the CI smoke gate: exit 0 only if the
// daemon answered and its counters show the daemon actually served requests.
//
// Usage: puddlestat [--socket <path>] [--json] [--check]
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/daemon/client.h"
#include "src/daemon/protocol.h"

namespace {

void PrintHuman(const puddled::StatsReport& report) {
  std::printf("threads: %" PRIu64 " live, %" PRIu64 " retired\n\n",
              report.live_threads, report.retired_threads);
  std::printf("%-24s %12s\n", "counter", "value");
  for (const auto& [name, value] : report.counters) {
    std::printf("%-24s %12" PRIu64 "\n", name.c_str(), value);
  }
  if (!report.daemon_ops.empty()) {
    std::printf("\n%-24s %12s\n", "daemon op", "requests");
    for (const auto& [name, value] : report.daemon_ops) {
      std::printf("%-24s %12" PRIu64 "\n", name.c_str(), value);
    }
  }
  std::printf("\n%-20s %10s %10s %10s %10s %10s %10s\n", "histogram (ns)", "count",
              "p50", "p90", "p99", "p999", "max");
  for (const puddled::StatsHistRow& row : report.hists) {
    std::printf("%-20s %10" PRIu64 " %10" PRIu64 " %10" PRIu64 " %10" PRIu64
                " %10" PRIu64 " %10" PRIu64 "\n",
                row.name.c_str(), row.count, row.p50_ns, row.p90_ns, row.p99_ns,
                row.p999_ns, row.max_ns);
  }
}

void PrintJson(const puddled::StatsReport& report) {
  std::printf("{\n  \"live_threads\": %" PRIu64 ",\n  \"retired_threads\": %" PRIu64
              ",\n  \"counters\": {",
              report.live_threads, report.retired_threads);
  for (size_t i = 0; i < report.counters.size(); ++i) {
    std::printf("%s\n    \"%s\": %" PRIu64, i == 0 ? "" : ",",
                report.counters[i].first.c_str(), report.counters[i].second);
  }
  std::printf("\n  },\n  \"daemon_ops\": {");
  for (size_t i = 0; i < report.daemon_ops.size(); ++i) {
    std::printf("%s\n    \"%s\": %" PRIu64, i == 0 ? "" : ",",
                report.daemon_ops[i].first.c_str(), report.daemon_ops[i].second);
  }
  std::printf("\n  },\n  \"histograms\": {");
  for (size_t i = 0; i < report.hists.size(); ++i) {
    const puddled::StatsHistRow& row = report.hists[i];
    std::printf("%s\n    \"%s\": {\"count\": %" PRIu64 ", \"sum_ns\": %" PRIu64
                ", \"p50_ns\": %" PRIu64 ", \"p90_ns\": %" PRIu64 ", \"p99_ns\": %" PRIu64
                ", \"p999_ns\": %" PRIu64 ", \"max_ns\": %" PRIu64 "}",
                i == 0 ? "" : ",", row.name.c_str(), row.count, row.sum_ns, row.p50_ns,
                row.p90_ns, row.p99_ns, row.p999_ns, row.max_ns);
  }
  std::printf("\n  }\n}\n");
}

// CI gate: the daemon must have served at least one request (the Ping this
// tool just sent guarantees that when telemetry is compiled in) and every
// histogram must be internally consistent (ordered percentiles under max).
int Check(const puddled::StatsReport& report) {
  uint64_t daemon_requests = 0;
  for (const auto& [name, value] : report.counters) {
    if (name == "daemon_request") {
      daemon_requests = value;
    }
  }
  if (daemon_requests == 0) {
    std::fprintf(stderr, "puddlestat --check: daemon_request counter is zero\n");
    return 1;
  }
  for (const puddled::StatsHistRow& row : report.hists) {
    const bool ordered = row.p50_ns <= row.p90_ns && row.p90_ns <= row.p99_ns &&
                         row.p99_ns <= row.p999_ns && row.p999_ns <= row.max_ns;
    if (!ordered || (row.count > 0 && row.max_ns == 0)) {
      std::fprintf(stderr, "puddlestat --check: histogram %s is inconsistent\n",
                   row.name.c_str());
      return 1;
    }
  }
  std::printf("puddlestat --check: ok (%" PRIu64 " requests served)\n", daemon_requests);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path = "/tmp/puddled.sock";
  bool json = false;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else {
      std::fprintf(stderr, "usage: %s [--socket <path>] [--json] [--check]\n", argv[0]);
      return 2;
    }
  }

  auto client = puddled::SocketDaemonClient::Connect(socket_path);
  if (!client.ok()) {
    std::fprintf(stderr, "puddlestat: cannot connect to %s: %s\n", socket_path.c_str(),
                 client.status().message().c_str());
    return 1;
  }
  // The Ping makes "fresh daemon" and "telemetry-off daemon" distinguishable:
  // after it, a stats-enabled daemon always reports daemon_request >= 2.
  if (puddles::Status s = (*client)->Ping(); !s.ok()) {
    std::fprintf(stderr, "puddlestat: ping failed: %s\n", s.message().c_str());
    return 1;
  }
  auto report = (*client)->FetchStats();
  if (!report.ok()) {
    std::fprintf(stderr, "puddlestat: STATS failed: %s\n",
                 report.status().message().c_str());
    return 1;
  }
  if (check) {
    return Check(*report);
  }
  if (json) {
    PrintJson(*report);
  } else {
    PrintHuman(*report);
  }
  return 0;
}
