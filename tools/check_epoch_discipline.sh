#!/usr/bin/env bash
# CI gate for epoch-commit fence discipline (docs/epoch.md): in epoch mode
# every flush and fence is delegated to the epoch advancer, which amortizes
# ONE fence across all threads' staged lines. A pmem::Flush/Fence sneaking
# back onto the epoch commit path silently reverts group commit to
# per-thread fencing — throughput degrades and the fences/op CI number
# drifts, but no functional test fails. Three rules:
#
#   1. Transaction::CommitEpochMode / AbortEpochMode / PublishStagedEpoch
#      (src/tx/transaction.cc) must be persist-call-free: they stage lines
#      and hand them to the port, never flush or fence themselves.
#   2. LogRegion::RearmVolatile (src/tx/log_format.cc) must be
#      persist-call-free: the retired-epoch gate makes its plain stores safe
#      precisely because they are NOT individually persisted.
#   3. In src/epoch/epoch_sys.cc, persist calls may appear only inside
#      ServicePublishLocked and CloseEpochLocked — the two advancer-side
#      publication points that own the epoch's single fence.
#
# Comments are stripped before matching, same as check_persist_discipline.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

strip_comments() {
  sed -e 's://.*$::' -e 's:/\*.*\*/::g'
}

# Prints the body of the function whose definition line matches $2 in file
# $1: from the signature to the first closing brace at column 0. Definitions
# in this tree are never nested, so the column-0 brace is exact.
extract_fn() {
  awk -v sig="$2" '
    index($0, sig) { in_fn = 1 }
    in_fn { print }
    in_fn && /^}/ { exit }
  ' "$1"
}

persist_calls='pmem::(FlushFence|Flush|Fence|PersistStore64)\(|FlushPending\(\)'
fail=0

check_fn_clean() {
  local file="$1" sig="$2"
  local body
  body=$(extract_fn "$file" "$sig")
  if [ -z "$body" ]; then
    echo "::error::$file: function '$sig' not found — update tools/check_epoch_discipline.sh"
    fail=1
    return
  fi
  if matches=$(printf '%s\n' "$body" | strip_comments | grep -nE "$persist_calls"); then
    echo "$file: $sig"
    echo "$matches"
    echo "::error::$file: persist call on the epoch commit path ($sig) — fences belong to the epoch advancer only (docs/epoch.md)"
    fail=1
  fi
}

check_fn_clean src/tx/transaction.cc 'Transaction::CommitEpochMode('
check_fn_clean src/tx/transaction.cc 'Transaction::AbortEpochMode('
check_fn_clean src/tx/transaction.cc 'Transaction::PublishStagedEpoch('
check_fn_clean src/tx/log_format.cc 'LogRegion::RearmVolatile('

# Rule 3: whole-file scan of epoch_sys.cc, excluding the two advancer
# publication functions that legitimately flush and fence.
allowed=$(extract_fn src/epoch/epoch_sys.cc 'EpochSys::ServicePublishLocked(')
allowed+=$'\n'$(extract_fn src/epoch/epoch_sys.cc 'EpochSys::CloseEpochLocked(')
if [ -z "$allowed" ]; then
  echo "::error::src/epoch/epoch_sys.cc: advancer publication functions not found"
  fail=1
fi
outside=$(strip_comments < src/epoch/epoch_sys.cc | grep -E "$persist_calls" || true)
while IFS= read -r line; do
  [ -z "$line" ] && continue
  if ! printf '%s\n' "$allowed" | strip_comments | grep -qF "$line"; then
    echo "src/epoch/epoch_sys.cc: $line"
    echo "::error::src/epoch/epoch_sys.cc: persist call outside ServicePublishLocked/CloseEpochLocked"
    fail=1
  fi
done <<< "$outside"

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "epoch-discipline gate clean: epoch commit path persist-free, fences confined to the advancer"
