// Standalone Puddled daemon binary (paper §3.2): owns the machine's puddles,
// serves clients over a UNIX domain socket, and runs application-independent
// recovery at startup — "Puddled starts before any other process in the
// system and controls access to PM data" (§4.6).
//
// Usage: puddled --root <dir> [--socket <path>] [--no-recovery]
#include <csignal>
#include <cstdio>
#include <cstring>

#include "src/daemon/server.h"

namespace {
volatile std::sig_atomic_t g_shutdown = 0;
void HandleSignal(int) { g_shutdown = 1; }
}  // namespace

int main(int argc, char** argv) {
  std::string root;
  std::string socket_path = "/tmp/puddled.sock";
  bool recovery = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (std::strcmp(argv[i], "--no-recovery") == 0) {
      recovery = false;
    } else {
      std::fprintf(stderr,
                   "usage: %s --root <dir> [--socket <path>] [--no-recovery]\n", argv[0]);
      return 2;
    }
  }
  if (root.empty()) {
    std::fprintf(stderr, "error: --root is required\n");
    return 2;
  }

  auto daemon = puddled::Daemon::Start({.root_dir = root, .run_recovery = recovery});
  if (!daemon.ok()) {
    std::fprintf(stderr, "puddled: %s\n", daemon.status().ToString().c_str());
    return 1;
  }
  auto server = puddled::Server::Start(daemon->get(), socket_path);
  if (!server.ok()) {
    std::fprintf(stderr, "puddled: %s\n", server.status().ToString().c_str());
    return 1;
  }
  std::printf("puddled: serving %s on %s (%llu puddles registered)\n", root.c_str(),
              socket_path.c_str(), static_cast<unsigned long long>((*daemon)->puddle_count()));

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  while (!g_shutdown) {
    ::pause();
  }
  std::printf("puddled: shutting down\n");
  server->get()->Stop();
  return 0;
}
