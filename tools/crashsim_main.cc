// crashsim — systematic crash-state enumeration and recovery verification.
//
// Runs each selected workload once under the persist-trace recorder,
// enumerates the legal post-crash durable images (every fence boundary plus
// seeded eviction subsets of in-flight lines, within a budget), recovers each
// image through the real application-independent recovery path, and prints a
// coverage report.
//
// Usage:
//   crashsim [--workloads=list,btree,art,kvstore,pmhash,import] [--ops=N] [--seed=N]
//            [--max-states=N] [--subsets-per-epoch=N] [--evict-probability=P]
//            [--rewrite-batch=N] [--scratch=DIR] [--log-states] [--verbose]
//
// For the "import" workload, --ops is the exported list's node count and
// --rewrite-batch is the streaming rewrite's frontier batch size (smaller =
// denser crash-state coverage of the relocation protocol).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/crashsim/harness.h"
#include "src/crashsim/workload_drivers.h"

namespace {

struct CliOptions {
  std::vector<std::string> workloads = crashsim::DriverNames();
  crashsim::DriverOptions driver;
  crashsim::HarnessOptions harness;
  bool verbose = false;
};

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    if (comma == std::string::npos) {
      comma = csv.size();
    }
    if (comma > start) {
      parts.push_back(csv.substr(start, comma - start));
    }
    start = comma + 1;
  }
  return parts;
}

bool ParseFlag(const std::string& arg, const char* name, std::string* value) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) {
    return false;
  }
  *value = arg.substr(prefix.size());
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workloads=list,btree,art,kvstore,pmhash,import] [--ops=N]\n"
               "          [--seed=N] [--max-states=N] [--subsets-per-epoch=N]\n"
               "          [--evict-probability=P] [--rewrite-batch=N] [--scratch=DIR]\n"
               "          [--log-states] [--verbose]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "workloads", &value)) {
      options.workloads = SplitCsv(value);
    } else if (ParseFlag(arg, "ops", &value)) {
      options.driver.ops = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "seed", &value)) {
      options.driver.seed = std::strtoull(value.c_str(), nullptr, 10);
      options.harness.enumerate.seed = options.driver.seed;
    } else if (ParseFlag(arg, "max-states", &value)) {
      options.harness.enumerate.max_states = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "subsets-per-epoch", &value)) {
      options.harness.enumerate.eviction_subsets_per_epoch =
          static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "evict-probability", &value)) {
      options.harness.enumerate.eviction_probability = std::atof(value.c_str());
    } else if (ParseFlag(arg, "rewrite-batch", &value)) {
      options.driver.rewrite_batch_objects = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "scratch", &value)) {
      options.harness.scratch_dir = value;
    } else if (arg == "--log-states") {
      options.harness.log_each_state = true;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else {
      return Usage(argv[0]);
    }
  }

  int failures = 0;
  std::printf("crashsim: exploring crash states (max %llu per workload, %u eviction "
              "subsets/epoch, p=%.2f)\n",
              static_cast<unsigned long long>(options.harness.enumerate.max_states),
              options.harness.enumerate.eviction_subsets_per_epoch,
              options.harness.enumerate.eviction_probability);
  std::printf("%-8s %8s %8s %8s %8s %8s %8s %8s %10s\n", "workload", "states", "fence",
              "evict", "ok", "recfail", "invfail", "epochs", "outcomes");
  for (const std::string& name : options.workloads) {
    auto driver = crashsim::MakeDriver(name, options.driver);
    if (driver == nullptr) {
      std::fprintf(stderr, "crashsim: unknown workload '%s'\n", name.c_str());
      return Usage(argv[0]);
    }
    crashsim::Harness harness(*driver, options.harness);
    auto report = harness.Run();
    if (!report.ok()) {
      std::fprintf(stderr, "crashsim: %s: harness error: %s\n", name.c_str(),
                   report.status().ToString().c_str());
      ++failures;
      continue;
    }
    std::printf("%-8s %8llu %8llu %8llu %8llu %8llu %8llu %8llu %10llu\n", name.c_str(),
                static_cast<unsigned long long>(report->states_enumerated),
                static_cast<unsigned long long>(report->fence_boundary_states),
                static_cast<unsigned long long>(report->eviction_states),
                static_cast<unsigned long long>(report->recoveries_ok),
                static_cast<unsigned long long>(report->recovery_failures),
                static_cast<unsigned long long>(report->invariant_failures),
                static_cast<unsigned long long>(report->epochs),
                static_cast<unsigned long long>(report->distinct_outcomes));
    if (options.verbose) {
      std::printf("  %s\n", report->Summary().c_str());
      std::printf("  persist traffic: %llu flush calls, %llu lines, %llu fences\n",
                  static_cast<unsigned long long>(report->persist.flush_calls),
                  static_cast<unsigned long long>(report->persist.flushed_lines),
                  static_cast<unsigned long long>(report->persist.fences));
    }
    for (const std::string& failure : report->failures) {
      std::fprintf(stderr, "  FAILURE %s: %s\n", name.c_str(), failure.c_str());
    }
    if (!report->ok()) {
      ++failures;
    }
  }
  if (failures != 0) {
    std::fprintf(stderr, "crashsim: %d workload(s) failed\n", failures);
    return 1;
  }
  std::printf("crashsim: all workloads recovered from every explored crash state\n");
  return 0;
}
