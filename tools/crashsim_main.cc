// crashsim — systematic crash-state enumeration and recovery verification.
//
// Runs each selected workload once under the persist-trace recorder,
// enumerates the legal post-crash durable images (every fence boundary,
// per-thread in-flight combinations for multi-threaded traces, and seeded
// eviction subsets of in-flight lines, within a budget), recovers each image
// through the real application-independent recovery path, and prints a
// coverage report.
//
// By default exploration is pruned through the persistence graph
// (--prune=graph, DESIGN.md §12): states whose recovery-relevant projected
// images are byte-identical collapse into one equivalence class and only a
// representative is recovered. --prune=none restores brute force;
// --verify-classes explores everything AND checks that every member of a
// class produces the same outcome (the soundness self-test).
//
// Usage:
//   crashsim [--workloads=list,btree,art,kvstore,pmhash,import,mt,epoch] [--ops=N]
//            [--seed=N] [--max-states=N] [--subsets-per-epoch=N]
//            [--evict-probability=P] [--rewrite-batch=N] [--scratch=DIR]
//            [--prune=graph|none] [--verify-classes] [--json=FILE]
//            [--log-states] [--verbose]
//
// For the "import" workload, --ops is the exported list's node count and
// --rewrite-batch is the streaming rewrite's frontier batch size (smaller =
// denser crash-state coverage of the relocation protocol).
//
// Exit status: 0 only when every workload ran, explored at least one crash
// state, and every explored state recovered to a legal op boundary (and, with
// --verify-classes, no class had mixed outcomes). Any failure, harness error,
// or empty exploration exits nonzero, so CI can gate on it directly.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/crashsim/harness.h"
#include "src/crashsim/workload_drivers.h"

namespace {

struct CliOptions {
  std::vector<std::string> workloads = crashsim::DriverNames();
  crashsim::DriverOptions driver;
  crashsim::HarnessOptions harness;
  std::string json_path;
  bool verbose = false;
};

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    if (comma == std::string::npos) {
      comma = csv.size();
    }
    if (comma > start) {
      parts.push_back(csv.substr(start, comma - start));
    }
    start = comma + 1;
  }
  return parts;
}

bool ParseFlag(const std::string& arg, const char* name, std::string* value) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) {
    return false;
  }
  *value = arg.substr(prefix.size());
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--workloads=list,btree,art,kvstore,pmhash,import,mt,epoch] [--ops=N]\n"
               "          [--seed=N] [--max-states=N] [--subsets-per-epoch=N]\n"
               "          [--evict-probability=P] [--rewrite-batch=N] [--scratch=DIR]\n"
               "          [--prune=graph|none] [--verify-classes] [--json=FILE]\n"
               "          [--log-states] [--verbose]\n",
               argv0);
  return 2;
}

std::string JsonEscape(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 8);
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// One machine-readable object per workload; the file is a single JSON array.
void AppendReportJson(std::ostringstream& out, const crashsim::HarnessReport& r) {
  out << "  {\n";
  out << "    \"workload\": \"" << JsonEscape(r.workload) << "\",\n";
  out << "    \"ok\": " << (r.ok() ? "true" : "false") << ",\n";
  out << "    \"ops\": " << r.ops << ",\n";
  out << "    \"epochs\": " << r.epochs << ",\n";
  out << "    \"threads\": " << r.trace_threads << ",\n";
  out << "    \"flush_calls\": " << r.flush_calls << ",\n";
  out << "    \"fences\": " << r.fences << ",\n";
  out << "    \"trace_bytes\": " << r.trace_bytes << ",\n";
  out << "    \"states_enumerated\": " << r.states_enumerated << ",\n";
  out << "    \"fence_boundary_states\": " << r.fence_boundary_states << ",\n";
  out << "    \"eviction_states\": " << r.eviction_states << ",\n";
  out << "    \"thread_mask_states\": " << r.thread_mask_states << ",\n";
  out << "    \"states_explored\": " << r.states_explored << ",\n";
  out << "    \"states_pruned\": " << r.states_pruned << ",\n";
  out << "    \"state_classes\": " << r.state_classes << ",\n";
  out << "    \"fallback_unique\": " << r.fallback_unique << ",\n";
  out << "    \"class_mismatches\": " << r.class_mismatches << ",\n";
  out << "    \"recoveries_ok\": " << r.recoveries_ok << ",\n";
  out << "    \"recovery_failures\": " << r.recovery_failures << ",\n";
  out << "    \"invariant_failures\": " << r.invariant_failures << ",\n";
  out << "    \"distinct_outcomes\": " << r.distinct_outcomes << ",\n";
  out << "    \"graph\": {\n";
  out << "      \"built\": " << (r.graph_built ? "true" : "false") << ",\n";
  out << "      \"nodes\": " << r.graph.nodes << ",\n";
  out << "      \"ordering_edges\": " << r.graph.ordering_edges << ",\n";
  out << "      \"overwrite_edges\": " << r.graph.overwrite_edges << ",\n";
  out << "      \"lines_total\": " << r.graph.lines_total << ",\n";
  out << "      \"lines_touched\": " << r.graph.lines_touched << ",\n";
  out << "      \"lines_never_exercised\": " << r.graph.lines_never_exercised << ",\n";
  out << "      \"log_lines\": " << r.graph.log_lines << "\n";
  out << "    },\n";
  out << "    \"failures\": [";
  for (size_t i = 0; i < r.failures.size(); ++i) {
    out << (i ? ", " : "") << "\"" << JsonEscape(r.failures[i]) << "\"";
  }
  out << "]\n";
  out << "  }";
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  options.harness.prune = crashsim::PruneMode::kGraph;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (ParseFlag(arg, "workloads", &value)) {
      options.workloads = SplitCsv(value);
    } else if (ParseFlag(arg, "ops", &value)) {
      options.driver.ops = std::atoi(value.c_str());
    } else if (ParseFlag(arg, "seed", &value)) {
      options.driver.seed = std::strtoull(value.c_str(), nullptr, 10);
      options.harness.enumerate.seed = options.driver.seed;
    } else if (ParseFlag(arg, "max-states", &value)) {
      options.harness.enumerate.max_states = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "subsets-per-epoch", &value)) {
      options.harness.enumerate.eviction_subsets_per_epoch =
          static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "evict-probability", &value)) {
      options.harness.enumerate.eviction_probability = std::atof(value.c_str());
    } else if (ParseFlag(arg, "rewrite-batch", &value)) {
      options.driver.rewrite_batch_objects = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (ParseFlag(arg, "scratch", &value)) {
      options.harness.scratch_dir = value;
    } else if (ParseFlag(arg, "prune", &value)) {
      if (value == "graph") {
        options.harness.prune = crashsim::PruneMode::kGraph;
      } else if (value == "none") {
        options.harness.prune = crashsim::PruneMode::kNone;
      } else {
        std::fprintf(stderr, "crashsim: unknown prune mode '%s'\n", value.c_str());
        return Usage(argv[0]);
      }
    } else if (ParseFlag(arg, "json", &value)) {
      options.json_path = value;
    } else if (arg == "--verify-classes") {
      options.harness.verify_classes = true;
    } else if (arg == "--log-states") {
      options.harness.log_each_state = true;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else {
      return Usage(argv[0]);
    }
  }

  int failures = 0;
  std::printf("crashsim: exploring crash states (max %llu per workload, %u eviction "
              "subsets/epoch, p=%.2f, prune=%s%s)\n",
              static_cast<unsigned long long>(options.harness.enumerate.max_states),
              options.harness.enumerate.eviction_subsets_per_epoch,
              options.harness.enumerate.eviction_probability,
              options.harness.prune == crashsim::PruneMode::kGraph ? "graph" : "none",
              options.harness.verify_classes ? ", verify-classes" : "");
  std::printf("%-8s %8s %8s %8s %8s %8s %8s %8s %8s %8s %10s\n", "workload", "states",
              "explored", "pruned", "classes", "ok", "recfail", "invfail", "clsmis",
              "epochs", "outcomes");
  std::ostringstream json;
  json << "[\n";
  bool first_json = true;
  for (const std::string& name : options.workloads) {
    auto driver = crashsim::MakeDriver(name, options.driver);
    if (driver == nullptr) {
      std::fprintf(stderr, "crashsim: unknown workload '%s'\n", name.c_str());
      return Usage(argv[0]);
    }
    crashsim::Harness harness(*driver, options.harness);
    auto report = harness.Run();
    if (!report.ok()) {
      std::fprintf(stderr, "crashsim: %s: harness error: %s\n", name.c_str(),
                   report.status().ToString().c_str());
      ++failures;
      continue;
    }
    std::printf("%-8s %8llu %8llu %8llu %8llu %8llu %8llu %8llu %8llu %8llu %10llu\n",
                name.c_str(), static_cast<unsigned long long>(report->states_enumerated),
                static_cast<unsigned long long>(report->states_explored),
                static_cast<unsigned long long>(report->states_pruned),
                static_cast<unsigned long long>(report->state_classes),
                static_cast<unsigned long long>(report->recoveries_ok),
                static_cast<unsigned long long>(report->recovery_failures),
                static_cast<unsigned long long>(report->invariant_failures),
                static_cast<unsigned long long>(report->class_mismatches),
                static_cast<unsigned long long>(report->epochs),
                static_cast<unsigned long long>(report->distinct_outcomes));
    if (options.verbose) {
      std::printf("  %s\n", report->Summary().c_str());
      std::printf("  persist traffic: %llu flush calls, %llu lines, %llu fences\n",
                  static_cast<unsigned long long>(report->persist.flush_calls),
                  static_cast<unsigned long long>(report->persist.flushed_lines),
                  static_cast<unsigned long long>(report->persist.fences));
    }
    for (const std::string& failure : report->failures) {
      std::fprintf(stderr, "  FAILURE %s: %s\n", name.c_str(), failure.c_str());
    }
    if (!first_json) {
      json << ",\n";
    }
    AppendReportJson(json, *report);
    first_json = false;
    if (!report->ok()) {
      ++failures;
    } else if (report->states_explored == 0) {
      // A run that verified nothing must not pass: misconfiguration (ops=0, a
      // filter that matches no states) would otherwise look green.
      std::fprintf(stderr, "crashsim: %s: explored zero crash states\n", name.c_str());
      ++failures;
    }
  }
  json << "\n]\n";
  if (!options.json_path.empty()) {
    std::ofstream out(options.json_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "crashsim: cannot write %s\n", options.json_path.c_str());
      return 1;
    }
    out << json.str();
    std::printf("crashsim: wrote %s\n", options.json_path.c_str());
  }
  if (failures != 0) {
    std::fprintf(stderr, "crashsim: %d workload(s) failed\n", failures);
    return 1;
  }
  std::printf("crashsim: all workloads recovered from every explored crash state\n");
  return 0;
}
