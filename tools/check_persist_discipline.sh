#!/usr/bin/env bash
# CI gate for persistence discipline (DESIGN.md §12): every cache-line flush
# and store fence in the tree must go through the src/pmem wrappers. Raw
# persistence instructions anywhere else bypass the ShadowHeap interposition
# layer, so crashsim's trace recorder never sees them — the enumerated crash
# states silently stop covering those stores and the recovery oracle weakens
# without any test failing. Two rules:
#
#   1. No raw flush/fence intrinsics or mnemonics (clwb / clflushopt /
#      clflush / sfence / mfence, as _mm_* intrinsics, __builtin_ia32_*, or
#      inline asm) outside src/pmem/.
#   2. No persistence calls (pmem::Flush / pmem::Fence / pmem::FlushFence /
#      pmem::PersistStore64) inside src/stats/ — telemetry must never add
#      persist traffic to the paths it observes, or the act of measuring
#      changes the fence counts being measured.
#
# Comments are stripped before matching: prose ("one sfence per commit") is
# documentation, not a violation.
set -euo pipefail
cd "$(dirname "$0")/.."

# Strip // line comments and (single-line) /* */ comments. Block comments in
# this tree do not span lines with code, so line-wise stripping is exact
# enough for a grep gate.
strip_comments() {
  sed -e 's://.*$::' -e 's:/\*.*\*/::g' "$1"
}

fail=0

intrinsics='_mm_(clflush|clflushopt|clwb|sfence|mfence)\b|__builtin_ia32_(clflush|clflushopt|clwb|sfence|mfence)|\basm\b.*\b(clwb|clflushopt|clflush|sfence|mfence)\b'
while IFS= read -r file; do
  if matches=$(strip_comments "$file" | grep -nE "$intrinsics"); then
    echo "$file:"
    echo "$matches"
    echo "::error::$file: raw persistence intrinsic outside src/pmem/ — use the pmem:: wrappers so crashsim traces the store (DESIGN.md §12)"
    fail=1
  fi
done < <(find src -name '*.h' -o -name '*.cc' | grep -v '^src/pmem/')

while IFS= read -r file; do
  if matches=$(strip_comments "$file" | grep -nE 'pmem::(FlushFence|Flush|Fence|PersistStore64)\('); then
    echo "$file:"
    echo "$matches"
    echo "::error::$file: persistence call inside src/stats/ — telemetry must not add persist traffic to the paths it measures"
    fail=1
  fi
done < <(find src/stats -name '*.h' -o -name '*.cc')

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "persist-discipline gate clean: raw intrinsics confined to src/pmem/, src/stats/ persist-free"
