#!/usr/bin/env bash
# CI gate for the batched-persistence protocol (DESIGN.md §10): the per-entry
# append hot path must stay free of persistence calls. LogRegion::AppendStaged
# only stages cache lines into the caller's FlushBatch; publication (the one
# flush pass + one fence) happens at the transaction's ordering points. A
# Flush/Fence reappearing inside AppendStaged silently reverts transactions
# to O(N) fences — this gate turns that regression into a CI failure.
set -euo pipefail
cd "$(dirname "$0")/.."

file=src/tx/log_format.cc
body=$(awk '/^puddles::Status LogRegion::AppendStaged/,/^}/' "$file")
if [ -z "$body" ]; then
  echo "::error::$file: LogRegion::AppendStaged not found — gate needs updating"
  exit 1
fi
if matches=$(echo "$body" | grep -nE 'pmem::(FlushFence|Flush|Fence|PersistStore64)\('); then
  echo "$matches"
  echo "::error::persistence call inside LogRegion::AppendStaged — the per-entry append path must stay fence-free (DESIGN.md §10)"
  exit 1
fi
echo "append-path gate clean: AppendStaged stages only (no Flush/Fence)"
