// bench_runner — machine-readable perf trajectory for the commit path.
//
// Runs the Table-3 transaction/allocation primitives and the Fig-9 linked
// list on the real Puddles stack (embedded daemon + typed Tx API) and emits
// one JSON document, BENCH_commit.json, checked in at the repo root so the
// perf trajectory of the batched-persistence protocol (DESIGN.md §10) is
// recorded per PR. Every row carries two measurements:
//   * ns_per_op   — wall-clock mean over the iteration count, and
//   * fences_per_op — ordering points per operation, counted by a
//     pmem::PersistObserver on the real persistence instruction stream (the
//     protocol's primary figure of merit: O(N) → O(1) per transaction).
//
// Each row also carries p50/p99 latency percentiles, measured by a SECOND,
// separately-timed pass over the same op (per-op rdtsc reads into a
// stats::Histogram) so the mean above stays uncontaminated by clock reads.
//
// It also emits a second document, BENCH_crashsim.json: the crash-state
// exploration trajectory (states enumerated/explored, persistence-graph
// prune ratio, wall time) for the linked-list workload in brute-force and
// pruned mode — the per-PR record of what the §12 pruner buys.
//
// With --daemon-bench it additionally runs the socket-level daemon YCSB
// bench (bench/bench_daemon_ycsb) as a subprocess, producing the third
// artifact, BENCH_daemon.json — one entry point regenerates the full perf
// record for a PR.
//
// With --epoch-bench it runs the scaling bench (bench/bench_fig12_scaling)
// as a subprocess, producing BENCH_epoch.json: immediate-vs-epoch durability
// ns/op and fences/op per thread count — the record behind the fences/op < 1
// group-commit CI gate (docs/epoch.md).
//
// With --alloc-bench it runs the allocator scaling bench
// (bench/bench_alloc_scaling) as a subprocess, producing BENCH_alloc.json:
// per-thread-arena vs. global-lock malloc/free ns and fences per pair at
// 1-16 threads — the record behind the arena >= 4x-at-8-threads CI gate
// (docs/alloc.md).
//
// Usage: bench_runner [--out=BENCH_commit.json]
//                     [--crashsim-out=BENCH_crashsim.json] [--iters=N]
//                     [--daemon-bench=PATH] [--daemon-out=BENCH_daemon.json]
//                     [--epoch-bench=PATH] [--epoch-out=BENCH_epoch.json]
//                     [--alloc-bench=PATH] [--alloc-out=BENCH_alloc.json]
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_env.h"
#include "bench/bench_provenance.h"
#include "bench/bench_util.h"
#include "src/crashsim/harness.h"
#include "src/crashsim/workload_drivers.h"
#include "src/pmem/flush.h"
#include "src/stats/stats.h"
#include "src/workloads/list.h"

namespace {

struct Row {
  std::string section;
  std::string name;
  double ns_per_op = 0;
  double fences_per_op = 0;
  uint64_t iterations = 0;
  uint64_t p50_ns = 0;
  uint64_t p99_ns = 0;
  // Fence attribution (telemetry counters): fences spent on slab refill
  // traffic — carving a fresh 4 KiB slab from the buddy or returning an
  // emptied one — rather than on the op's own commit protocol. Nonzero only
  // for rows given an expected steady-state fence count.
  bool has_steady = false;
  uint64_t stray_fences = 0;
  double fences_per_op_steady = 0;
};

// Counts fences on the real persistence instruction stream — deliberately
// the same observer mechanism crashsim traces with, so the benched number is
// the one the crash-state enumerator sees (ReadPersistStats would agree, but
// the observer is the load-bearing contract under batching; see flush.h).
class FenceCountingObserver : public pmem::PersistObserver {
 public:
  void OnFlushRange(const void*, size_t) override {}
  void OnFence() override { ++fences_; }
  uint64_t fences() const { return fences_; }

 private:
  uint64_t fences_ = 0;
};

class Runner {
 public:
  explicit Runner(bench::PuddlesEnv& env, uint64_t iters) : env_(env), iters_(iters) {}

  // `expected_steady_fences >= 0` turns on exact fence accounting for the
  // row: telemetry counters attribute slab-refill fences (carve/retire), and
  // the remainder is asserted to be exactly expected_steady_fences per op.
  template <typename Op>
  void Measure(const std::string& section, const std::string& name, uint64_t iterations,
               Op&& op, int expected_steady_fences = -1) {
    if (iterations == 0) {
      iterations = 1;  // Tiny --iters values must not divide by zero (inf/nan JSON).
    }
    // Warm-up pass keeps one-time costs (puddle growth, log formatting, page
    // faults) out of the steady-state numbers.
    op();

    FenceCountingObserver observer;
    const puddles::stats::Snapshot before = puddles::stats::Aggregate();
    bench::Timer timer;
    pmem::SetPersistObserver(&observer);
    for (uint64_t i = 0; i < iterations; ++i) {
      op();
    }
    pmem::SetPersistObserver(nullptr);
    Row row;
    row.section = section;
    row.name = name;
    row.iterations = iterations;
    row.ns_per_op = timer.Nanos() / static_cast<double>(iterations);
    row.fences_per_op =
        static_cast<double>(observer.fences()) / static_cast<double>(iterations);

#if PUDDLES_STATS
    if (expected_steady_fences >= 0) {
      // Attribute the drift: every slab carve (refill from the buddy) and
      // slab retire (emptied slab returned) publishes one extra buddy
      // metadata group, i.e. exactly one fence beyond the op's own protocol.
      const puddles::stats::Snapshot delta =
          puddles::stats::Delta(puddles::stats::Aggregate(), before);
      row.has_steady = true;
      row.stray_fences = delta.counter(puddles::stats::Counter::kSlabCarve) +
                         delta.counter(puddles::stats::Counter::kSlabRetire);
      row.fences_per_op_steady =
          static_cast<double>(observer.fences() - row.stray_fences) /
          static_cast<double>(iterations);
      const uint64_t expected =
          static_cast<uint64_t>(expected_steady_fences) * iterations + row.stray_fences;
      if (observer.fences() != expected) {
        std::fprintf(stderr,
                     "%s: fence accounting broken: %" PRIu64 " observed, %" PRIu64
                     " expected (%d/op steady + %" PRIu64 " slab carve/retire)\n",
                     name.c_str(), observer.fences(), expected, expected_steady_fences,
                     row.stray_fences);
        std::abort();
      }
    }
#else
    (void)expected_steady_fences;
#endif

    // Percentile pass: same op, re-run with per-op timestamps into a
    // log-bucket histogram. Kept out of the pass above so ns_per_op never
    // includes the rdtsc reads.
    puddles::stats::Histogram latency;
    for (uint64_t i = 0; i < iterations; ++i) {
      const uint64_t t0 = puddles::stats::NowTicks();
      op();
      latency.Record(puddles::stats::NowTicks() - t0);
    }
    row.p50_ns = puddles::stats::TicksToNanos(latency.p50());
    row.p99_ns = puddles::stats::TicksToNanos(latency.p99());

    rows_.push_back(row);
    std::printf("  %-28s %10.0f ns/op   p50 %8" PRIu64 "  p99 %8" PRIu64
                "   %6.2f fences/op   (%" PRIu64 " iters)\n",
                name.c_str(), row.ns_per_op, row.p50_ns, row.p99_ns, row.fences_per_op,
                iterations);
  }

  const std::vector<Row>& rows() const { return rows_; }
  uint64_t iters() const { return iters_; }
  bench::PuddlesEnv& env() { return env_; }

 private:
  bench::PuddlesEnv& env_;
  uint64_t iters_;
  std::vector<Row> rows_;
};

void RunTable3(Runner& runner) {
  std::printf("table3 primitives (typed Tx API):\n");
  puddles::Pool& pool = *runner.env().pool;
  auto small_alloc = pool.MallocBytes(8, puddles::kRawBytesTypeId);
  auto big_alloc = pool.MallocBytes(4096, puddles::kRawBytesTypeId);
  if (!small_alloc.ok() || !big_alloc.ok()) {
    std::fprintf(stderr, "scratch allocation failed\n");
    std::abort();
  }
  uint8_t* small = static_cast<uint8_t*>(*small_alloc);
  uint8_t* big = static_cast<uint8_t*>(*big_alloc);
  const uint64_t iters = runner.iters();

  runner.Measure("table3", "tx_nop", iters, [&] {
    (void)pool.Run([](puddles::Tx&) { return puddles::OkStatus(); });
  });
  runner.Measure("table3", "tx_add_8B", iters, [&] {
    (void)pool.Run([&](puddles::Tx& tx) {
      RETURN_IF_ERROR(tx.LogRange(small, 8));
      small[0]++;
      return puddles::OkStatus();
    });
  });
  runner.Measure("table3", "tx_add_4KiB", iters / 4, [&] {
    (void)pool.Run([&](puddles::Tx& tx) {
      RETURN_IF_ERROR(tx.LogRange(big, 4096));
      big[0]++;
      return puddles::OkStatus();
    });
  });
  runner.Measure("table3", "tx_set_8B_redo", iters, [&] {
    (void)pool.Run([&](puddles::Tx& tx) { return tx.Set(small, uint8_t{1}); });
  });
  // The acceptance shape: one transaction logging 32 ranges of an object it
  // allocated — batched persistence commits it in a constant fence count.
  runner.Measure("table3", "tx_alloc_log32_ranges", iters / 8, [&] {
    (void)pool.Run([&](puddles::Tx& tx) {
      ASSIGN_OR_RETURN(void* raw, tx.AllocBytes(32 * 64, puddles::kRawBytesTypeId));
      uint8_t* arena = static_cast<uint8_t*>(raw);
      for (int i = 0; i < 32; ++i) {
        RETURN_IF_ERROR(tx.LogRange(arena + i * 64, 64));
        arena[i * 64] = static_cast<uint8_t>(i);
      }
      return tx.FreeBytes(arena);
    });
  });
  runner.Measure("table3", "tx_malloc_8B", iters / 8, [&] {
    (void)pool.Run([&](puddles::Tx& tx) {
      ASSIGN_OR_RETURN(void* p, tx.AllocBytes(8, puddles::kRawBytesTypeId));
      return tx.FreeBytes(p);
    });
  });
  runner.Measure("table3", "tx_malloc_4KiB", iters / 8, [&] {
    (void)pool.Run([&](puddles::Tx& tx) {
      ASSIGN_OR_RETURN(void* p, tx.AllocBytes(4096, puddles::kRawBytesTypeId));
      return tx.FreeBytes(p);
    });
  });
}

void RunFig9(Runner& runner) {
  std::printf("fig9 linked list (Puddles adapter):\n");
  using List = workloads::PersistentList<workloads::PuddlesAdapter>;
  List::RegisterTypes();
  List list(runner.env().adapter());
  if (!list.Init().ok()) {
    std::fprintf(stderr, "list init failed\n");
    std::abort();
  }
  const uint64_t iters = runner.iters() / 4;
  uint64_t next_value = 0;
  // The documented steady-state cost is 5 fences/op; every ~126th op also
  // pays one slab carve (insert) or retire (delete) fence — 32-byte list
  // nodes pack 126 to a slab. Exact accounting (5·iters + carve + retire)
  // is asserted inside Measure, and the JSON reports the steady-state rate
  // with the slab-refill strays split out.
  runner.Measure("fig9_list", "insert_tail", iters,
                 [&] { (void)list.InsertTail(next_value++); }, /*expected_steady_fences=*/5);
  runner.Measure("fig9_list", "delete_head", iters, [&] { (void)list.DeleteHead(); },
                 /*expected_steady_fences=*/5);
  // Rebuild a fixed-size list for the traversal measurement.
  while (list.count() > 0) {
    (void)list.DeleteHead();
  }
  const uint64_t nodes = 4096;
  for (uint64_t i = 0; i < nodes; ++i) {
    (void)list.InsertTail(i);
  }
  runner.Measure("fig9_list", "sum_4096_nodes", 256, [&] { bench::DoNotOptimize(list.Sum()); });
}

// ---- Crashsim trajectory: brute force vs persistence-graph pruning ----

struct CrashsimRow {
  std::string mode;
  crashsim::HarnessReport report;
  double wall_ms = 0;
};

// Small fixed workload: the point is the trajectory of the pruning machinery
// (ratio and wall time per PR), not exhaustive coverage — the test suite owns
// that. Run before PuddlesEnv exists: the harness drivers own their whole
// daemon/runtime lifecycle.
std::vector<CrashsimRow> RunCrashsimTrajectory() {
  std::printf("crashsim trajectory (list workload, brute force vs graph-pruned):\n");
  std::vector<CrashsimRow> rows;
  for (const char* mode : {"none", "graph"}) {
    crashsim::DriverOptions driver_options;
    driver_options.ops = 10;
    auto driver = crashsim::MakeDriver("list", driver_options);
    if (driver == nullptr) {
      std::fprintf(stderr, "crashsim list driver unavailable\n");
      std::abort();
    }
    crashsim::HarnessOptions options;
    options.prune = std::strcmp(mode, "graph") == 0 ? crashsim::PruneMode::kGraph
                                                    : crashsim::PruneMode::kNone;
    options.enumerate.max_states = 150;
    crashsim::Harness harness(*driver, options);
    bench::Timer timer;
    auto report = harness.Run();
    const double wall_ms = timer.Nanos() / 1e6;
    if (!report.ok() || !report->ok()) {
      std::fprintf(stderr, "crashsim trajectory run failed (%s): %s\n", mode,
                   report.ok() ? report->Summary().c_str() : report.status().ToString().c_str());
      std::abort();
    }
    std::printf("  %-8s %6" PRIu64 " enumerated  %6" PRIu64 " explored  %6" PRIu64
                " classes   %8.1f ms\n",
                mode, report->states_enumerated, report->states_explored,
                report->state_classes, wall_ms);
    rows.push_back({mode, *report, wall_ms});
  }
  return rows;
}

#ifndef PUDDLES_GIT_SHA
#define PUDDLES_GIT_SHA "unknown"
#endif
#ifndef PUDDLES_BUILD_FLAGS
#define PUDDLES_BUILD_FLAGS "unknown"
#endif

void WriteCrashsimJson(const std::vector<CrashsimRow>& rows, const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::abort();
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"crashsim persistence-graph pruning\",\n");
  std::fprintf(out, "  \"generated_by\": \"tools/bench_runner.cc\",\n");
  std::fprintf(out, "  \"protocol\": \"DESIGN.md section 12 (crash-state equivalence classes)\",\n");
  std::fprintf(out, "%s",
               bench::ProvenanceJsonLine(PUDDLES_GIT_SHA, PUDDLES_BUILD_FLAGS,
                                         /*with_hostname=*/false)
                   .c_str());
  std::fprintf(out, "  \"workload\": \"list\",\n");
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const crashsim::HarnessReport& r = rows[i].report;
    const double ratio = r.states_explored != 0
                             ? static_cast<double>(r.states_enumerated) /
                                   static_cast<double>(r.states_explored)
                             : 0.0;
    std::fprintf(out,
                 "    {\"mode\": \"%s\", \"states_enumerated\": %" PRIu64
                 ", \"states_explored\": %" PRIu64 ", \"state_classes\": %" PRIu64
                 ", \"prune_ratio\": %.2f, \"wall_ms\": %.1f}%s\n",
                 rows[i].mode.c_str(), r.states_enumerated, r.states_explored,
                 r.state_classes, ratio, rows[i].wall_ms, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
}

void WriteJson(const Runner& runner, const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::abort();
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"commit-path batched persistence\",\n");
  std::fprintf(out, "  \"generated_by\": \"tools/bench_runner.cc\",\n");
  std::fprintf(out, "  \"protocol\": \"DESIGN.md section 10 (fence coalescing)\",\n");
  std::fprintf(out, "%s",
               bench::ProvenanceJsonLine(PUDDLES_GIT_SHA, PUDDLES_BUILD_FLAGS).c_str());
  std::fprintf(out, "  \"flush_instruction\": \"%s\",\n",
               pmem::FlushInstructionName(pmem::ActiveFlushInstruction()));
  std::fprintf(out, "  \"scale\": %.2f,\n", bench::ScaleFactor());
  std::fprintf(out, "  \"results\": [\n");
  const auto& rows = runner.rows();
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out,
                 "    {\"section\": \"%s\", \"name\": \"%s\", \"ns_per_op\": %.1f, "
                 "\"p50_ns\": %" PRIu64 ", \"p99_ns\": %" PRIu64
                 ", \"fences_per_op\": %.3f",
                 rows[i].section.c_str(), rows[i].name.c_str(), rows[i].ns_per_op,
                 rows[i].p50_ns, rows[i].p99_ns, rows[i].fences_per_op);
    if (rows[i].has_steady) {
      std::fprintf(out,
                   ", \"fences_per_op_steady\": %.3f, \"stray_slab_fences\": %" PRIu64,
                   rows[i].fences_per_op_steady, rows[i].stray_fences);
    }
    std::fprintf(out, ", \"iterations\": %" PRIu64 "}%s\n", rows[i].iterations,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_commit.json";
  std::string crashsim_out_path = "BENCH_crashsim.json";
  std::string daemon_bench;  // Path to bench_daemon_ycsb; empty = skip.
  std::string daemon_out_path = "BENCH_daemon.json";
  std::string epoch_bench;  // Path to bench_fig12_scaling; empty = skip.
  std::string epoch_out_path = "BENCH_epoch.json";
  std::string alloc_bench;  // Path to bench_alloc_scaling; empty = skip.
  std::string alloc_out_path = "BENCH_alloc.json";
  uint64_t iters = bench::Scaled(20000);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--crashsim-out=", 0) == 0) {
      crashsim_out_path = arg.substr(15);
    } else if (arg.rfind("--daemon-bench=", 0) == 0) {
      daemon_bench = arg.substr(15);
    } else if (arg.rfind("--daemon-out=", 0) == 0) {
      daemon_out_path = arg.substr(13);
    } else if (arg.rfind("--epoch-bench=", 0) == 0) {
      epoch_bench = arg.substr(14);
    } else if (arg.rfind("--epoch-out=", 0) == 0) {
      epoch_out_path = arg.substr(12);
    } else if (arg.rfind("--alloc-bench=", 0) == 0) {
      alloc_bench = arg.substr(14);
    } else if (arg.rfind("--alloc-out=", 0) == 0) {
      alloc_out_path = arg.substr(12);
    } else if (arg.rfind("--iters=", 0) == 0) {
      iters = std::strtoull(arg.c_str() + 8, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: bench_runner [--out=FILE] [--crashsim-out=FILE] [--iters=N]\n"
                   "                    [--daemon-bench=PATH] [--daemon-out=FILE]\n"
                   "                    [--epoch-bench=PATH] [--epoch-out=FILE]\n"
                   "                    [--alloc-bench=PATH] [--alloc-out=FILE]\n");
      return 2;
    }
  }
  // Crashsim first: its drivers build and tear down their own daemon/runtime,
  // which must not interleave with the live PuddlesEnv below.
  WriteCrashsimJson(RunCrashsimTrajectory(), crashsim_out_path);
  const auto scratch = bench::ScratchDir("bench_runner");
  bench::PuddlesEnv env(scratch);
  Runner runner(env, iters);
  RunTable3(runner);
  RunFig9(runner);
  WriteJson(runner, out_path);
  std::filesystem::remove_all(scratch);
  if (!daemon_bench.empty()) {
    // The daemon YCSB bench forks client processes, so it runs as its own
    // subprocess rather than in this (already puddle-mapped) one.
    const std::string command = "'" + daemon_bench + "' --out='" + daemon_out_path + "'";
    const int rc = std::system(command.c_str());
    if (rc != 0) {
      std::fprintf(stderr, "daemon bench failed (%d): %s\n", rc, command.c_str());
      return 1;
    }
  }
  if (!epoch_bench.empty()) {
    // The scaling bench maps its own pool and spins up the epoch advancer, so
    // it too runs as a subprocess.
    const std::string command = "'" + epoch_bench + "' --out='" + epoch_out_path + "'";
    const int rc = std::system(command.c_str());
    if (rc != 0) {
      std::fprintf(stderr, "epoch bench failed (%d): %s\n", rc, command.c_str());
      return 1;
    }
  }
  if (!alloc_bench.empty()) {
    // The allocator bench maps its own pool and owns its arena lifecycle, so
    // it runs as a subprocess as well.
    const std::string command = "'" + alloc_bench + "' --out='" + alloc_out_path + "'";
    const int rc = std::system(command.c_str());
    if (rc != 0) {
      std::fprintf(stderr, "alloc bench failed (%d): %s\n", rc, command.c_str());
      return 1;
    }
  }
  return 0;
}
