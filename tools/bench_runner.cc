// bench_runner — machine-readable perf trajectory for the commit path.
//
// Runs the Table-3 transaction/allocation primitives and the Fig-9 linked
// list on the real Puddles stack (embedded daemon + typed Tx API) and emits
// one JSON document, BENCH_commit.json, checked in at the repo root so the
// perf trajectory of the batched-persistence protocol (DESIGN.md §10) is
// recorded per PR. Every row carries two measurements:
//   * ns_per_op   — wall-clock mean over the iteration count, and
//   * fences_per_op — ordering points per operation, counted by a
//     pmem::PersistObserver on the real persistence instruction stream (the
//     protocol's primary figure of merit: O(N) → O(1) per transaction).
//
// Usage: bench_runner [--out=BENCH_commit.json] [--iters=N]
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_env.h"
#include "bench/bench_util.h"
#include "src/pmem/flush.h"
#include "src/workloads/list.h"

namespace {

struct Row {
  std::string section;
  std::string name;
  double ns_per_op = 0;
  double fences_per_op = 0;
  uint64_t iterations = 0;
};

// Counts fences on the real persistence instruction stream — deliberately
// the same observer mechanism crashsim traces with, so the benched number is
// the one the crash-state enumerator sees (ReadPersistStats would agree, but
// the observer is the load-bearing contract under batching; see flush.h).
class FenceCountingObserver : public pmem::PersistObserver {
 public:
  void OnFlushRange(const void*, size_t) override {}
  void OnFence() override { ++fences_; }
  uint64_t fences() const { return fences_; }

 private:
  uint64_t fences_ = 0;
};

class Runner {
 public:
  explicit Runner(bench::PuddlesEnv& env, uint64_t iters) : env_(env), iters_(iters) {}

  template <typename Op>
  void Measure(const std::string& section, const std::string& name, uint64_t iterations,
               Op&& op) {
    if (iterations == 0) {
      iterations = 1;  // Tiny --iters values must not divide by zero (inf/nan JSON).
    }
    // Warm-up pass keeps one-time costs (puddle growth, log formatting, page
    // faults) out of the steady-state numbers.
    op();

    FenceCountingObserver observer;
    bench::Timer timer;
    pmem::SetPersistObserver(&observer);
    for (uint64_t i = 0; i < iterations; ++i) {
      op();
    }
    pmem::SetPersistObserver(nullptr);
    Row row;
    row.section = section;
    row.name = name;
    row.iterations = iterations;
    row.ns_per_op = timer.Nanos() / static_cast<double>(iterations);
    row.fences_per_op =
        static_cast<double>(observer.fences()) / static_cast<double>(iterations);
    rows_.push_back(row);
    std::printf("  %-28s %10.0f ns/op   %6.2f fences/op   (%" PRIu64 " iters)\n",
                name.c_str(), row.ns_per_op, row.fences_per_op, iterations);
  }

  const std::vector<Row>& rows() const { return rows_; }
  uint64_t iters() const { return iters_; }
  bench::PuddlesEnv& env() { return env_; }

 private:
  bench::PuddlesEnv& env_;
  uint64_t iters_;
  std::vector<Row> rows_;
};

void RunTable3(Runner& runner) {
  std::printf("table3 primitives (typed Tx API):\n");
  puddles::Pool& pool = *runner.env().pool;
  auto small_alloc = pool.MallocBytes(8, puddles::kRawBytesTypeId);
  auto big_alloc = pool.MallocBytes(4096, puddles::kRawBytesTypeId);
  if (!small_alloc.ok() || !big_alloc.ok()) {
    std::fprintf(stderr, "scratch allocation failed\n");
    std::abort();
  }
  uint8_t* small = static_cast<uint8_t*>(*small_alloc);
  uint8_t* big = static_cast<uint8_t*>(*big_alloc);
  const uint64_t iters = runner.iters();

  runner.Measure("table3", "tx_nop", iters, [&] {
    (void)pool.Run([](puddles::Tx&) { return puddles::OkStatus(); });
  });
  runner.Measure("table3", "tx_add_8B", iters, [&] {
    (void)pool.Run([&](puddles::Tx& tx) {
      RETURN_IF_ERROR(tx.LogRange(small, 8));
      small[0]++;
      return puddles::OkStatus();
    });
  });
  runner.Measure("table3", "tx_add_4KiB", iters / 4, [&] {
    (void)pool.Run([&](puddles::Tx& tx) {
      RETURN_IF_ERROR(tx.LogRange(big, 4096));
      big[0]++;
      return puddles::OkStatus();
    });
  });
  runner.Measure("table3", "tx_set_8B_redo", iters, [&] {
    (void)pool.Run([&](puddles::Tx& tx) { return tx.Set(small, uint8_t{1}); });
  });
  // The acceptance shape: one transaction logging 32 ranges of an object it
  // allocated — batched persistence commits it in a constant fence count.
  runner.Measure("table3", "tx_alloc_log32_ranges", iters / 8, [&] {
    (void)pool.Run([&](puddles::Tx& tx) {
      ASSIGN_OR_RETURN(void* raw, tx.AllocBytes(32 * 64, puddles::kRawBytesTypeId));
      uint8_t* arena = static_cast<uint8_t*>(raw);
      for (int i = 0; i < 32; ++i) {
        RETURN_IF_ERROR(tx.LogRange(arena + i * 64, 64));
        arena[i * 64] = static_cast<uint8_t>(i);
      }
      return tx.FreeBytes(arena);
    });
  });
  runner.Measure("table3", "tx_malloc_8B", iters / 8, [&] {
    (void)pool.Run([&](puddles::Tx& tx) {
      ASSIGN_OR_RETURN(void* p, tx.AllocBytes(8, puddles::kRawBytesTypeId));
      return tx.FreeBytes(p);
    });
  });
  runner.Measure("table3", "tx_malloc_4KiB", iters / 8, [&] {
    (void)pool.Run([&](puddles::Tx& tx) {
      ASSIGN_OR_RETURN(void* p, tx.AllocBytes(4096, puddles::kRawBytesTypeId));
      return tx.FreeBytes(p);
    });
  });
}

void RunFig9(Runner& runner) {
  std::printf("fig9 linked list (Puddles adapter):\n");
  using List = workloads::PersistentList<workloads::PuddlesAdapter>;
  List::RegisterTypes();
  List list(runner.env().adapter());
  if (!list.Init().ok()) {
    std::fprintf(stderr, "list init failed\n");
    std::abort();
  }
  const uint64_t iters = runner.iters() / 4;
  uint64_t next_value = 0;
  runner.Measure("fig9_list", "insert_tail", iters,
                 [&] { (void)list.InsertTail(next_value++); });
  runner.Measure("fig9_list", "delete_head", iters, [&] { (void)list.DeleteHead(); });
  // Rebuild a fixed-size list for the traversal measurement.
  while (list.count() > 0) {
    (void)list.DeleteHead();
  }
  const uint64_t nodes = 4096;
  for (uint64_t i = 0; i < nodes; ++i) {
    (void)list.InsertTail(i);
  }
  runner.Measure("fig9_list", "sum_4096_nodes", 256, [&] { bench::DoNotOptimize(list.Sum()); });
}

void WriteJson(const Runner& runner, const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::abort();
  }
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"bench\": \"commit-path batched persistence\",\n");
  std::fprintf(out, "  \"generated_by\": \"tools/bench_runner.cc\",\n");
  std::fprintf(out, "  \"protocol\": \"DESIGN.md section 10 (fence coalescing)\",\n");
  std::fprintf(out, "  \"flush_instruction\": \"%s\",\n",
               pmem::FlushInstructionName(pmem::ActiveFlushInstruction()));
  std::fprintf(out, "  \"scale\": %.2f,\n", bench::ScaleFactor());
  std::fprintf(out, "  \"results\": [\n");
  const auto& rows = runner.rows();
  for (size_t i = 0; i < rows.size(); ++i) {
    std::fprintf(out,
                 "    {\"section\": \"%s\", \"name\": \"%s\", \"ns_per_op\": %.1f, "
                 "\"fences_per_op\": %.3f, \"iterations\": %" PRIu64 "}%s\n",
                 rows[i].section.c_str(), rows[i].name.c_str(), rows[i].ns_per_op,
                 rows[i].fences_per_op, rows[i].iterations, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_commit.json";
  uint64_t iters = bench::Scaled(20000);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--iters=", 0) == 0) {
      iters = std::strtoull(arg.c_str() + 8, nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: bench_runner [--out=FILE] [--iters=N]\n");
      return 2;
    }
  }
  const auto scratch = bench::ScratchDir("bench_runner");
  bench::PuddlesEnv env(scratch);
  Runner runner(env, iters);
  RunTable3(runner);
  RunFig9(runner);
  WriteJson(runner, out_path);
  std::filesystem::remove_all(scratch);
  return 0;
}
