#!/usr/bin/env bash
# CI gate for the arena allocator's fast-path discipline (docs/alloc.md,
# DESIGN.md §14): the whole point of per-thread slab arenas is that the hot
# malloc/free path takes NO lock, issues NO persistence, and writes NO undo
# log — liveness is decided at recovery time by reachability, so there is no
# metadata worth logging. Any of those sneaking back in silently erodes the
# arena-vs-global-lock speedup (BENCH_alloc.json CI gate) without failing a
# functional test. Two rules:
#
#   1. The fast-path functions must be lock-free, persist-free and
#      undo-log-free:
#        * ThreadArena::TryAllocate / ReleaseSlot / OwnsLocally /
#          TryLocalFree (src/alloc/arena.cc) — the per-thread pop/push and
#          the same-thread ownership probe behind Pool::Free;
#        * Pool::ArenaMalloc (src/libpuddles/pool.cc) — the allocation entry
#          point (its refill fallback ArenaRefill may lock and log; the
#          fast path itself may not).
#   2. src/alloc/arena.cc as a whole must contain no persistence calls: the
#      slab shadow state is volatile by design, and the persistent bitmap is
#      deliberately STALE while a slab is arena-owned.
#
# Comments are stripped before matching, same as check_persist_discipline.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

strip_comments() {
  sed -e 's://.*$::' -e 's:/\*.*\*/::g'
}

# Prints the body of the function whose definition line matches $2 in file
# $1: from the signature to the first closing brace at column 0.
extract_fn() {
  awk -v sig="$2" '
    index($0, sig) { in_fn = 1 }
    in_fn { print }
    in_fn && /^}/ { exit }
  ' "$1"
}

persist_calls='pmem::(FlushFence|Flush|Fence|PersistStore64)\(|FlushPending\(\)'
lock_calls='std::lock_guard|std::unique_lock|std::scoped_lock|std::mutex|\.lock\(\)|->lock\(\)'
undo_calls='AddUndo|WillWrite\(|\.Publish\(\)|->Publish\(\)|PublishStaged'
fail=0

check_fn_clean() {
  local file="$1" sig="$2" pattern="$3" what="$4"
  local body
  body=$(extract_fn "$file" "$sig")
  if [ -z "$body" ]; then
    echo "::error::$file: function '$sig' not found — update tools/check_alloc_discipline.sh"
    fail=1
    return
  fi
  if matches=$(printf '%s\n' "$body" | strip_comments | grep -nE "$pattern"); then
    echo "$file: $sig"
    echo "$matches"
    echo "::error::$file: $what on the arena fast path ($sig) — the hot path must stay lock-free, persist-free and undo-log-free (docs/alloc.md)"
    fail=1
  fi
}

fast_path() {
  local file="$1" sig="$2"
  check_fn_clean "$file" "$sig" "$persist_calls" "persistence call"
  check_fn_clean "$file" "$sig" "$lock_calls" "lock acquisition"
  check_fn_clean "$file" "$sig" "$undo_calls" "undo-log write"
}

fast_path src/alloc/arena.cc 'ThreadArena::TryAllocate('
fast_path src/alloc/arena.cc 'ThreadArena::ReleaseSlot('
fast_path src/alloc/arena.cc 'ThreadArena::OwnsLocally('
fast_path src/alloc/arena.cc 'ThreadArena::TryLocalFree('
fast_path src/libpuddles/pool.cc 'Pool::ArenaMalloc('

# Rule 2: the arena bookkeeping layer never persists anything itself.
if matches=$(strip_comments < src/alloc/arena.cc | grep -nE "$persist_calls"); then
  echo "src/alloc/arena.cc:"
  echo "$matches"
  echo "::error::src/alloc/arena.cc: persistence call in the volatile arena layer — slab shadow state is volatile by design (docs/alloc.md)"
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "alloc-discipline gate clean: arena fast path lock-free, persist-free, undo-log-free"
