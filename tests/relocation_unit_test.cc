// Unit tests for the pieces of the relocation engine: range bookkeeping
// (RangeAllocator), address translation (Translator — the sorted interval
// table, its hardened Add, and its equivalence with the linear reference
// scan), and the streaming pointer-rewrite pass over a puddle heap —
// including frontier resume and byte-stability, the properties crash-resumed
// rewrites rely on (§4.2, DESIGN.md §7).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/range_allocator.h"
#include "src/common/rng.h"
#include "src/libpuddles/relocation.h"
#include "src/libpuddles/type_registry.h"

namespace puddles {

struct RelNode {
  RelNode* next;
  RelNode* prev;
  uint64_t payload;
};

namespace {

TEST(RangeAllocatorTest, AllocateClaimFreeCycle) {
  RangeAllocator alloc(0x1000000, 0x100000);
  auto a = alloc.Allocate(0x10000);
  ASSERT_TRUE(a.ok());
  EXPECT_GE(*a, 0x1000000u);
  auto b = alloc.Allocate(0x10000);
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  EXPECT_FALSE(alloc.IsFree(*a, 0x10000));
  ASSERT_TRUE(alloc.Free(*a).ok());
  EXPECT_TRUE(alloc.IsFree(*a, 0x10000));
  // First-fit reuses the freed hole.
  auto c = alloc.Allocate(0x10000);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, *a);
}

TEST(RangeAllocatorTest, ClaimRejectsOverlap) {
  RangeAllocator alloc(0, 0x100000);
  ASSERT_TRUE(alloc.Claim(0x10000, 0x10000).ok());
  EXPECT_FALSE(alloc.Claim(0x10000, 0x1000).ok());
  EXPECT_FALSE(alloc.Claim(0x18000, 0x10000).ok());
  EXPECT_FALSE(alloc.Claim(0x8000, 0x10000).ok());
  EXPECT_TRUE(alloc.Claim(0x20000, 0x1000).ok());
  EXPECT_FALSE(alloc.Claim(0x200000, 0x1000).ok()) << "outside managed range";
}

TEST(RangeAllocatorTest, ContainingLookup) {
  RangeAllocator alloc(0, 0x100000);
  ASSERT_TRUE(alloc.Claim(0x10000, 0x10000).ok());
  auto hit = alloc.Containing(0x15000);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->first, 0x10000u);
  EXPECT_EQ(hit->second, 0x10000u);
  EXPECT_FALSE(alloc.Containing(0x20000).ok());
  EXPECT_FALSE(alloc.Containing(0xfff).ok());
}

TEST(RangeAllocatorTest, Exhaustion) {
  RangeAllocator alloc(0, 0x3000);
  ASSERT_TRUE(alloc.Allocate(0x1000).ok());
  ASSERT_TRUE(alloc.Allocate(0x1000).ok());
  ASSERT_TRUE(alloc.Allocate(0x1000).ok());
  EXPECT_FALSE(alloc.Allocate(0x1000).ok());
}

TEST(TranslatorTest, TranslatesOnlyOldRanges) {
  Translator translator;
  ASSERT_TRUE(translator.Add(/*old_base=*/0x1000, /*size=*/0x1000, /*new_base=*/0x9000).ok());
  ASSERT_TRUE(translator.Add(0x5000, 0x1000, 0x2000).ok());  // Negative delta.

  uint64_t out = 0;
  EXPECT_TRUE(translator.Translate(0x1000, &out));
  EXPECT_EQ(out, 0x9000u);
  EXPECT_TRUE(translator.Translate(0x1fff, &out));
  EXPECT_EQ(out, 0x9fffu);
  EXPECT_TRUE(translator.Translate(0x5800, &out));
  EXPECT_EQ(out, 0x2800u);
  EXPECT_FALSE(translator.Translate(0x2000, &out)) << "one past end";
  EXPECT_FALSE(translator.Translate(0x9000, &out)) << "new range not translated";
  EXPECT_FALSE(translator.Translate(0, &out));
}

TEST(TranslatorTest, IdentityEntriesElided) {
  Translator translator;
  ASSERT_TRUE(translator.Add(0x1000, 0x1000, 0x1000).ok());
  EXPECT_TRUE(translator.empty());
}

TEST(TranslatorTest, AddRejectsWraparoundAndZeroSize) {
  Translator translator;
  // old_base + size wraps past UINT64_MAX: accepting it would make [old_lo,
  // old_hi) swallow nearly every address (same hazard as the
  // RangeResolver::Resolve overflow fix, §4.6).
  EXPECT_FALSE(translator.Add(~uint64_t{0} - 0x100, 0x1000, 0x9000).ok());
  EXPECT_FALSE(translator.Add(0x1000, 0, 0x9000).ok());
  EXPECT_TRUE(translator.empty());
  uint64_t out = 0;
  EXPECT_FALSE(translator.Translate(0x10, &out));
  EXPECT_FALSE(translator.Translate(~uint64_t{0} - 0x50, &out));
}

TEST(TranslatorTest, AddRejectsOverlappingAndDuplicateRanges) {
  Translator translator;
  ASSERT_TRUE(translator.Add(0x10000, 0x1000, 0x90000).ok());
  EXPECT_FALSE(translator.Add(0x10000, 0x1000, 0xa0000).ok()) << "duplicate";
  EXPECT_FALSE(translator.Add(0x10800, 0x1000, 0xa0000).ok()) << "overlaps tail";
  EXPECT_FALSE(translator.Add(0xf800, 0x1000, 0xa0000).ok()) << "overlaps head";
  EXPECT_FALSE(translator.Add(0xf000, 0x4000, 0xa0000).ok()) << "encloses";
  EXPECT_FALSE(translator.Add(0x10400, 0x100, 0xa0000).ok()) << "contained";
  EXPECT_EQ(translator.size(), 1u);
  // Adjacent, non-overlapping ranges are fine.
  EXPECT_TRUE(translator.Add(0x11000, 0x1000, 0xb0000).ok());
  EXPECT_TRUE(translator.Add(0xf000, 0x1000, 0xc0000).ok());
  uint64_t out = 0;
  EXPECT_TRUE(translator.Translate(0x10500, &out));
  EXPECT_EQ(out, 0x90500u) << "rejected Adds must not disturb the table";
}

TEST(TranslatorTest, BinarySearchMatchesLinearOnRandomizedInputs) {
  // Differential test for the interval table + MRU cache against the O(E)
  // reference scan, across entry counts bracketing the bench configurations.
  for (size_t num_entries : {1u, 8u, 64u, 512u}) {
    Translator translator;
    Xoshiro256 rng(0x5eed + num_entries);
    std::vector<std::pair<uint64_t, uint64_t>> ranges;  // {lo, size}
    uint64_t cursor = 0x100000;
    for (size_t i = 0; i < num_entries; ++i) {
      cursor += 0x1000 + rng.Below(0x40000);  // Random gaps keep ranges disjoint.
      const uint64_t size = 0x1000 * (1 + rng.Below(16));
      ASSERT_TRUE(translator.Add(cursor, size, 0x4000000000ULL + i * 0x1000000).ok());
      ranges.push_back({cursor, size});
      cursor += size;
    }
    for (int probe = 0; probe < 20000; ++probe) {
      uint64_t addr;
      switch (rng.Below(4)) {
        case 0: {  // Inside a range (with locality runs the MRU serves).
          auto& [lo, size] = ranges[rng.Below(ranges.size())];
          addr = lo + rng.Below(size);
          break;
        }
        case 1: {  // Boundary probes: lo-1, lo, hi-1, hi.
          auto& [lo, size] = ranges[rng.Below(ranges.size())];
          const uint64_t edges[4] = {lo - 1, lo, lo + size - 1, lo + size};
          addr = edges[rng.Below(4)];
          break;
        }
        default:
          addr = rng();
          break;
      }
      uint64_t indexed = 0, linear = 0;
      const bool indexed_hit = translator.Translate(addr, &indexed);
      const bool linear_hit = translator.TranslateLinear(addr, &linear);
      ASSERT_EQ(indexed_hit, linear_hit) << "addr=" << std::hex << addr;
      if (indexed_hit) {
        ASSERT_EQ(indexed, linear) << "addr=" << std::hex << addr;
      }
    }
  }
}

class RewriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    (void)TypeRegistry::Instance().Register<RelNode>(
        {offsetof(RelNode, next), offsetof(RelNode, prev)});
    params_.kind = PuddleKind::kData;
    params_.heap_size = 1 << 20;
    params_.uuid = Uuid::Generate();
    params_.base_addr = 0x40000000000ULL;
    size_t file_size = Puddle::FileSizeFor(params_.kind, params_.heap_size);
    file_.resize(file_size);
    EXPECT_TRUE(Puddle::Format(file_.data(), file_size, params_).ok());
    auto puddle = Puddle::Attach(file_.data(), file_size);
    EXPECT_TRUE(puddle.ok());
    puddle_ = *puddle;
  }

  PuddleParams params_;
  std::vector<uint8_t> file_;
  Puddle puddle_;
};

TEST_F(RewriteTest, RewritesRegisteredPointerFields) {
  auto heap = puddle_.object_heap();
  ASSERT_TRUE(heap.ok());
  auto node = heap->AllocateTyped<RelNode>();
  ASSERT_TRUE(node.ok());
  // Pointers into a pretend old range [0x1000, 0x2000); payload must not move.
  (*node)->next = reinterpret_cast<RelNode*>(0x1100);
  (*node)->prev = reinterpret_cast<RelNode*>(0x1f00);
  (*node)->payload = 0x1500;  // Looks like an old-range address but is data.

  Translator translator;
  ASSERT_TRUE(translator.Add(0x1000, 0x1000, 0x100000).ok());
  puddle_.AssignNewBase(puddle_.base_addr() + 0x1000000);  // Mark needs-rewrite.

  auto stats = RewritePuddle(puddle_, translator, TypeRegistry::Instance());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->pointers_rewritten, 2u);
  EXPECT_EQ((*node)->next, reinterpret_cast<RelNode*>(0x100100));
  EXPECT_EQ((*node)->prev, reinterpret_cast<RelNode*>(0x100f00));
  EXPECT_EQ((*node)->payload, 0x1500u) << "non-pointer field untouched (pointer maps!)";
  EXPECT_FALSE(puddle_.needs_rewrite());
}

TEST_F(RewriteTest, RewriteIsIdempotent) {
  auto heap = puddle_.object_heap();
  ASSERT_TRUE(heap.ok());
  auto node = heap->AllocateTyped<RelNode>();
  ASSERT_TRUE(node.ok());
  (*node)->next = reinterpret_cast<RelNode*>(0x1100);
  (*node)->prev = nullptr;

  Translator translator;
  ASSERT_TRUE(translator.Add(0x1000, 0x1000, 0x100000).ok());

  // Run the rewrite twice — as after a crash mid-rewrite. The second pass
  // must not double-translate (new range is outside every old range).
  ASSERT_TRUE(RewritePuddle(puddle_, translator, TypeRegistry::Instance()).ok());
  EXPECT_EQ((*node)->next, reinterpret_cast<RelNode*>(0x100100));
  ASSERT_TRUE(RewritePuddle(puddle_, translator, TypeRegistry::Instance()).ok());
  EXPECT_EQ((*node)->next, reinterpret_cast<RelNode*>(0x100100));
}

TEST_F(RewriteTest, ArraysStrideByElementSize) {
  auto heap = puddle_.object_heap();
  ASSERT_TRUE(heap.ok());
  auto arr = heap->AllocateTyped<RelNode>(8);
  ASSERT_TRUE(arr.ok());
  for (int i = 0; i < 8; ++i) {
    (*arr)[i].next = reinterpret_cast<RelNode*>(0x1000 + i * 8);
    (*arr)[i].prev = nullptr;
    (*arr)[i].payload = static_cast<uint64_t>(i);
  }
  Translator translator;
  ASSERT_TRUE(translator.Add(0x1000, 0x1000, 0x200000).ok());
  auto stats = RewritePuddle(puddle_, translator, TypeRegistry::Instance());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->pointers_rewritten, 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ((*arr)[i].next, reinterpret_cast<RelNode*>(0x200000 + i * 8)) << i;
    EXPECT_EQ((*arr)[i].payload, static_cast<uint64_t>(i));
  }
}

TEST_F(RewriteTest, RawBytesNeverTouched) {
  auto heap = puddle_.object_heap();
  ASSERT_TRUE(heap.ok());
  auto raw = heap->Allocate(64, kRawBytesTypeId);
  ASSERT_TRUE(raw.ok());
  auto* words = static_cast<uint64_t*>(*raw);
  words[0] = 0x1100;  // Would translate if treated as a pointer.

  Translator translator;
  ASSERT_TRUE(translator.Add(0x1000, 0x1000, 0x300000).ok());
  auto stats = RewritePuddle(puddle_, translator, TypeRegistry::Instance());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->pointers_rewritten, 0u);
  EXPECT_EQ(words[0], 0x1100u);
}

TEST_F(RewriteTest, UnknownTypesCountedNotTouched) {
  auto heap = puddle_.object_heap();
  ASSERT_TRUE(heap.ok());
  auto obj = heap->Allocate(32, /*type_id=*/0xdeadbeefcafeULL);  // Unregistered.
  ASSERT_TRUE(obj.ok());
  auto* words = static_cast<uint64_t*>(*obj);
  words[0] = 0x1100;

  Translator translator;
  ASSERT_TRUE(translator.Add(0x1000, 0x1000, 0x300000).ok());
  auto stats = RewritePuddle(puddle_, translator, TypeRegistry::Instance());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->objects_without_map, 1u);
  EXPECT_EQ(words[0], 0x1100u);
}

TEST_F(RewriteTest, ResumesFromPersistedFrontier) {
  auto heap = puddle_.object_heap();
  ASSERT_TRUE(heap.ok());
  // 12 nodes, each pointing into the old range; the walk visits them in
  // address order, so node i has walk index i.
  constexpr int kNodes = 12;
  std::vector<RelNode*> nodes;
  for (int i = 0; i < kNodes; ++i) {
    auto node = heap->AllocateTyped<RelNode>();
    ASSERT_TRUE(node.ok());
    (*node)->next = reinterpret_cast<RelNode*>(0x1000 + i * 16);
    (*node)->prev = nullptr;
    (*node)->payload = static_cast<uint64_t>(i);
    nodes.push_back(*node);
  }

  Translator translator;
  ASSERT_TRUE(translator.Add(0x1000, 0x1000, 0x100000).ok());

  // Simulate a crash mid-rewrite: the frontier says the first 5 objects are
  // durably translated. Reflect that in the heap (they WERE translated before
  // the crash) and run the resume.
  puddle_.AssignNewBase(puddle_.base_addr() + 0x1000000);
  EXPECT_EQ(puddle_.rewrite_frontier(), 0u) << "new assignment restarts the rewrite";
  constexpr uint64_t kFrontier = 5;
  for (uint64_t i = 0; i < kFrontier; ++i) {
    nodes[i]->next = reinterpret_cast<RelNode*>(0x100000 + i * 16);
  }
  puddle_.AdvanceRewriteFrontier(kFrontier);

  RewriteOptions options;
  options.batch_objects = 3;  // Force several frontier advances.
  auto stats = RewritePuddle(puddle_, translator, TypeRegistry::Instance(), options);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->objects_skipped_resume, kFrontier);
  EXPECT_EQ(stats->objects_visited, static_cast<uint64_t>(kNodes) - kFrontier);
  EXPECT_EQ(stats->pointers_rewritten, static_cast<uint64_t>(kNodes) - kFrontier);
  EXPECT_GE(stats->frontier_advances, 2u) << "batch=3 over 7 objects persists progress";
  for (int i = 0; i < kNodes; ++i) {
    EXPECT_EQ(nodes[i]->next, reinterpret_cast<RelNode*>(0x100000 + i * 16)) << i;
  }
  EXPECT_FALSE(puddle_.needs_rewrite());
  EXPECT_EQ(puddle_.rewrite_frontier(), 0u) << "CompleteRewrite resets the frontier";
}

TEST_F(RewriteTest, FrontierMakesHeapFlushToFlagClearGapByteStable) {
  // The satellite-3 crash window: everything is translated and flushed, the
  // final frontier is durable, but the crash hits before the needs-rewrite
  // flag clears. The re-run must leave the heap byte-identical EVEN when a
  // new base coincidentally lands inside another member's old range — the
  // case where re-translation is NOT idempotent: here member A's old range
  // [0x1000,0x2000) maps into [0x5000,0x6000), which is member B's old
  // range, so a second pass would bounce A's pointers on into 0x9xxx.
  auto heap = puddle_.object_heap();
  ASSERT_TRUE(heap.ok());
  auto node = heap->AllocateTyped<RelNode>();
  ASSERT_TRUE(node.ok());
  (*node)->next = reinterpret_cast<RelNode*>(0x1100);
  (*node)->prev = reinterpret_cast<RelNode*>(0x5f00);  // Straight into B's old range.
  (*node)->payload = 7;

  Translator translator;
  ASSERT_TRUE(translator.Add(0x1000, 0x1000, 0x5000).ok());  // A: new == B's old.
  ASSERT_TRUE(translator.Add(0x5000, 0x1000, 0x9000).ok());  // B.

  puddle_.AssignNewBase(puddle_.base_addr() + 0x1000000);
  ASSERT_TRUE(RewritePuddle(puddle_, translator, TypeRegistry::Instance()).ok());
  EXPECT_EQ((*node)->next, reinterpret_cast<RelNode*>(0x5100));
  EXPECT_EQ((*node)->prev, reinterpret_cast<RelNode*>(0x9f00));

  // Crash: the flag-clear did not persist, but the final frontier did.
  // Reconstruct that durable state and re-run recovery's rewrite.
  puddle_.header()->flags |= kPuddleNeedsRewrite;
  puddle_.header()->rewrite_frontier = 1;  // One live object, fully processed.
  std::vector<uint8_t> before(puddle_.heap(), puddle_.heap() + puddle_.heap_size());
  auto stats = RewritePuddle(puddle_, translator, TypeRegistry::Instance());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->objects_skipped_resume, 1u);
  EXPECT_EQ(stats->pointers_rewritten, 0u);
  EXPECT_EQ(std::memcmp(before.data(), puddle_.heap(), before.size()), 0)
      << "re-run must not double-translate 0x5100 into 0x9100";
  EXPECT_EQ((*node)->next, reinterpret_cast<RelNode*>(0x5100));
  EXPECT_FALSE(puddle_.needs_rewrite());
}

TEST_F(RewriteTest, InflatedObjectSizeCannotScanAllocatorSlack) {
  // Regression for the array-stride over-scan: an object whose recorded size
  // exceeds its slab slot's capacity must not have the walk stride into the
  // slot padding / neighboring slot, where garbage that happens to fall in a
  // moved old range would get "translated".
  auto heap = puddle_.object_heap();
  ASSERT_TRUE(heap.ok());
  auto node = heap->AllocateTyped<RelNode>();  // 24 B payload → 48 B slab slot.
  ASSERT_TRUE(node.ok());
  auto neighbor = heap->AllocateTyped<RelNode>();  // Adjacent slot in the slab.
  ASSERT_TRUE(neighbor.ok());
  (*node)->next = reinterpret_cast<RelNode*>(0x1100);
  (*node)->prev = nullptr;
  (*node)->payload = 1;
  (*neighbor)->next = nullptr;
  (*neighbor)->prev = nullptr;
  (*neighbor)->payload = 2;
  // Plant an old-range-looking value in the slot slack right after the
  // payload — exactly where element 1 of a phantom array would sit.
  auto* slack = reinterpret_cast<uint64_t*>(reinterpret_cast<uint8_t*>(*node) +
                                            sizeof(RelNode));
  *slack = 0x1200;
  // Corrupt the header: size now claims two elements (48 B > the slot's
  // payload capacity).
  auto* header = const_cast<ObjectHeader*>(heap->HeaderOf(*node));
  ASSERT_NE(header, nullptr);
  header->size = 2 * sizeof(RelNode);

  Translator translator;
  ASSERT_TRUE(translator.Add(0x1000, 0x1000, 0x700000).ok());
  auto stats = RewritePuddle(puddle_, translator, TypeRegistry::Instance());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ((*node)->next, reinterpret_cast<RelNode*>(0x700100)) << "element 0 rewritten";
  EXPECT_EQ(*slack, 0x1200u) << "slack byte walked as a phantom element";
  EXPECT_EQ((*neighbor)->payload, 2u);
  header->size = sizeof(RelNode);  // Restore before the heap is validated.
}

TEST(TypeRegistryTest, RegistrationAndConflicts) {
  auto& registry = TypeRegistry::Instance();
  struct Fresh {
    Fresh* link;
    uint64_t v;
  };
  ASSERT_TRUE(registry.Register<Fresh>({offsetof(Fresh, link)}).ok());
  EXPECT_TRUE(registry.Contains(TypeIdOf<Fresh>()));
  auto map = registry.Lookup(TypeIdOf<Fresh>());
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map->num_fields, 1u);
  EXPECT_EQ(map->object_size, sizeof(Fresh));

  // Identical re-registration is a no-op; conflicting one is rejected.
  EXPECT_TRUE(registry.Register<Fresh>({offsetof(Fresh, link)}).ok());
  EXPECT_FALSE(registry.Register<Fresh>({offsetof(Fresh, v)}).ok());
  // Offsets out of range rejected.
  struct Tiny {
    uint32_t x;
  };
  EXPECT_FALSE(registry.Register<Tiny>({0}).ok()) << "no room for a pointer";
}

}  // namespace
}  // namespace puddles
