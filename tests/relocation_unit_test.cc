// Unit tests for the pieces of the relocation engine: range bookkeeping
// (RangeAllocator), address translation (Translator), and the pointer-rewrite
// pass over a puddle heap — including idempotence, the property crash-resumed
// rewrites rely on (§4.2).
#include <gtest/gtest.h>

#include <vector>

#include "src/common/range_allocator.h"
#include "src/libpuddles/relocation.h"
#include "src/libpuddles/type_registry.h"

namespace puddles {

struct RelNode {
  RelNode* next;
  RelNode* prev;
  uint64_t payload;
};

namespace {

TEST(RangeAllocatorTest, AllocateClaimFreeCycle) {
  RangeAllocator alloc(0x1000000, 0x100000);
  auto a = alloc.Allocate(0x10000);
  ASSERT_TRUE(a.ok());
  EXPECT_GE(*a, 0x1000000u);
  auto b = alloc.Allocate(0x10000);
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  EXPECT_FALSE(alloc.IsFree(*a, 0x10000));
  ASSERT_TRUE(alloc.Free(*a).ok());
  EXPECT_TRUE(alloc.IsFree(*a, 0x10000));
  // First-fit reuses the freed hole.
  auto c = alloc.Allocate(0x10000);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, *a);
}

TEST(RangeAllocatorTest, ClaimRejectsOverlap) {
  RangeAllocator alloc(0, 0x100000);
  ASSERT_TRUE(alloc.Claim(0x10000, 0x10000).ok());
  EXPECT_FALSE(alloc.Claim(0x10000, 0x1000).ok());
  EXPECT_FALSE(alloc.Claim(0x18000, 0x10000).ok());
  EXPECT_FALSE(alloc.Claim(0x8000, 0x10000).ok());
  EXPECT_TRUE(alloc.Claim(0x20000, 0x1000).ok());
  EXPECT_FALSE(alloc.Claim(0x200000, 0x1000).ok()) << "outside managed range";
}

TEST(RangeAllocatorTest, ContainingLookup) {
  RangeAllocator alloc(0, 0x100000);
  ASSERT_TRUE(alloc.Claim(0x10000, 0x10000).ok());
  auto hit = alloc.Containing(0x15000);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit->first, 0x10000u);
  EXPECT_EQ(hit->second, 0x10000u);
  EXPECT_FALSE(alloc.Containing(0x20000).ok());
  EXPECT_FALSE(alloc.Containing(0xfff).ok());
}

TEST(RangeAllocatorTest, Exhaustion) {
  RangeAllocator alloc(0, 0x3000);
  ASSERT_TRUE(alloc.Allocate(0x1000).ok());
  ASSERT_TRUE(alloc.Allocate(0x1000).ok());
  ASSERT_TRUE(alloc.Allocate(0x1000).ok());
  EXPECT_FALSE(alloc.Allocate(0x1000).ok());
}

TEST(TranslatorTest, TranslatesOnlyOldRanges) {
  Translator translator;
  translator.Add(/*old_base=*/0x1000, /*size=*/0x1000, /*new_base=*/0x9000);
  translator.Add(0x5000, 0x1000, 0x2000);  // Negative delta.

  uint64_t out = 0;
  EXPECT_TRUE(translator.Translate(0x1000, &out));
  EXPECT_EQ(out, 0x9000u);
  EXPECT_TRUE(translator.Translate(0x1fff, &out));
  EXPECT_EQ(out, 0x9fffu);
  EXPECT_TRUE(translator.Translate(0x5800, &out));
  EXPECT_EQ(out, 0x2800u);
  EXPECT_FALSE(translator.Translate(0x2000, &out)) << "one past end";
  EXPECT_FALSE(translator.Translate(0x9000, &out)) << "new range not translated";
  EXPECT_FALSE(translator.Translate(0, &out));
}

TEST(TranslatorTest, IdentityEntriesElided) {
  Translator translator;
  translator.Add(0x1000, 0x1000, 0x1000);
  EXPECT_TRUE(translator.empty());
}

class RewriteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    (void)TypeRegistry::Instance().Register<RelNode>(
        {offsetof(RelNode, next), offsetof(RelNode, prev)});
    params_.kind = PuddleKind::kData;
    params_.heap_size = 1 << 20;
    params_.uuid = Uuid::Generate();
    params_.base_addr = 0x40000000000ULL;
    size_t file_size = Puddle::FileSizeFor(params_.kind, params_.heap_size);
    file_.resize(file_size);
    EXPECT_TRUE(Puddle::Format(file_.data(), file_size, params_).ok());
    auto puddle = Puddle::Attach(file_.data(), file_size);
    EXPECT_TRUE(puddle.ok());
    puddle_ = *puddle;
  }

  PuddleParams params_;
  std::vector<uint8_t> file_;
  Puddle puddle_;
};

TEST_F(RewriteTest, RewritesRegisteredPointerFields) {
  auto heap = puddle_.object_heap();
  ASSERT_TRUE(heap.ok());
  auto node = heap->AllocateTyped<RelNode>();
  ASSERT_TRUE(node.ok());
  // Pointers into a pretend old range [0x1000, 0x2000); payload must not move.
  (*node)->next = reinterpret_cast<RelNode*>(0x1100);
  (*node)->prev = reinterpret_cast<RelNode*>(0x1f00);
  (*node)->payload = 0x1500;  // Looks like an old-range address but is data.

  Translator translator;
  translator.Add(0x1000, 0x1000, 0x100000);
  puddle_.AssignNewBase(puddle_.base_addr() + 0x1000000);  // Mark needs-rewrite.

  auto stats = RewritePuddle(puddle_, translator, TypeRegistry::Instance());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->pointers_rewritten, 2u);
  EXPECT_EQ((*node)->next, reinterpret_cast<RelNode*>(0x100100));
  EXPECT_EQ((*node)->prev, reinterpret_cast<RelNode*>(0x100f00));
  EXPECT_EQ((*node)->payload, 0x1500u) << "non-pointer field untouched (pointer maps!)";
  EXPECT_FALSE(puddle_.needs_rewrite());
}

TEST_F(RewriteTest, RewriteIsIdempotent) {
  auto heap = puddle_.object_heap();
  ASSERT_TRUE(heap.ok());
  auto node = heap->AllocateTyped<RelNode>();
  ASSERT_TRUE(node.ok());
  (*node)->next = reinterpret_cast<RelNode*>(0x1100);
  (*node)->prev = nullptr;

  Translator translator;
  translator.Add(0x1000, 0x1000, 0x100000);

  // Run the rewrite twice — as after a crash mid-rewrite. The second pass
  // must not double-translate (new range is outside every old range).
  ASSERT_TRUE(RewritePuddle(puddle_, translator, TypeRegistry::Instance()).ok());
  EXPECT_EQ((*node)->next, reinterpret_cast<RelNode*>(0x100100));
  ASSERT_TRUE(RewritePuddle(puddle_, translator, TypeRegistry::Instance()).ok());
  EXPECT_EQ((*node)->next, reinterpret_cast<RelNode*>(0x100100));
}

TEST_F(RewriteTest, ArraysStrideByElementSize) {
  auto heap = puddle_.object_heap();
  ASSERT_TRUE(heap.ok());
  auto arr = heap->AllocateTyped<RelNode>(8);
  ASSERT_TRUE(arr.ok());
  for (int i = 0; i < 8; ++i) {
    (*arr)[i].next = reinterpret_cast<RelNode*>(0x1000 + i * 8);
    (*arr)[i].prev = nullptr;
    (*arr)[i].payload = static_cast<uint64_t>(i);
  }
  Translator translator;
  translator.Add(0x1000, 0x1000, 0x200000);
  auto stats = RewritePuddle(puddle_, translator, TypeRegistry::Instance());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->pointers_rewritten, 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ((*arr)[i].next, reinterpret_cast<RelNode*>(0x200000 + i * 8)) << i;
    EXPECT_EQ((*arr)[i].payload, static_cast<uint64_t>(i));
  }
}

TEST_F(RewriteTest, RawBytesNeverTouched) {
  auto heap = puddle_.object_heap();
  ASSERT_TRUE(heap.ok());
  auto raw = heap->Allocate(64, kRawBytesTypeId);
  ASSERT_TRUE(raw.ok());
  auto* words = static_cast<uint64_t*>(*raw);
  words[0] = 0x1100;  // Would translate if treated as a pointer.

  Translator translator;
  translator.Add(0x1000, 0x1000, 0x300000);
  auto stats = RewritePuddle(puddle_, translator, TypeRegistry::Instance());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->pointers_rewritten, 0u);
  EXPECT_EQ(words[0], 0x1100u);
}

TEST_F(RewriteTest, UnknownTypesCountedNotTouched) {
  auto heap = puddle_.object_heap();
  ASSERT_TRUE(heap.ok());
  auto obj = heap->Allocate(32, /*type_id=*/0xdeadbeefcafeULL);  // Unregistered.
  ASSERT_TRUE(obj.ok());
  auto* words = static_cast<uint64_t*>(*obj);
  words[0] = 0x1100;

  Translator translator;
  translator.Add(0x1000, 0x1000, 0x300000);
  auto stats = RewritePuddle(puddle_, translator, TypeRegistry::Instance());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->objects_without_map, 1u);
  EXPECT_EQ(words[0], 0x1100u);
}

TEST(TypeRegistryTest, RegistrationAndConflicts) {
  auto& registry = TypeRegistry::Instance();
  struct Fresh {
    Fresh* link;
    uint64_t v;
  };
  ASSERT_TRUE(registry.Register<Fresh>({offsetof(Fresh, link)}).ok());
  EXPECT_TRUE(registry.Contains(TypeIdOf<Fresh>()));
  auto map = registry.Lookup(TypeIdOf<Fresh>());
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map->num_fields, 1u);
  EXPECT_EQ(map->object_size, sizeof(Fresh));

  // Identical re-registration is a no-op; conflicting one is rejected.
  EXPECT_TRUE(registry.Register<Fresh>({offsetof(Fresh, link)}).ok());
  EXPECT_FALSE(registry.Register<Fresh>({offsetof(Fresh, v)}).ok());
  // Offsets out of range rejected.
  struct Tiny {
    uint32_t x;
  };
  EXPECT_FALSE(registry.Register<Tiny>({0}).ok()) << "no room for a pointer";
}

}  // namespace
}  // namespace puddles
