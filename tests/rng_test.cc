#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace puddles {
namespace {

TEST(XoshiroTest, DeterministicFromSeed) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(XoshiroTest, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

TEST(XoshiroTest, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.Below(bound), bound);
    }
  }
}

TEST(XoshiroTest, BelowIsRoughlyUniform) {
  Xoshiro256 rng(42);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) {
    counts[rng.Below(kBuckets)]++;
  }
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (int b = 0; b < kBuckets; ++b) {
    // 5-sigma band for a binomial with p=0.1.
    EXPECT_NEAR(counts[b], expected, 5 * std::sqrt(expected * 0.9)) << "bucket " << b;
  }
}

TEST(XoshiroTest, NextDoubleInUnitInterval) {
  Xoshiro256 rng(9);
  double sum = 0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(XoshiroTest, WorksWithStdDistributions) {
  Xoshiro256 rng(11);
  std::uniform_int_distribution<int> dist(1, 6);
  int counts[7] = {};
  for (int i = 0; i < 60000; ++i) {
    counts[dist(rng)]++;
  }
  for (int face = 1; face <= 6; ++face) {
    EXPECT_NEAR(counts[face], 10000, 600) << "face " << face;
  }
}

}  // namespace
}  // namespace puddles
