#include "src/tx/replay.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace puddles {
namespace {

class ReplayTest : public ::testing::Test {
 protected:
  static constexpr size_t kLogCapacity = 16 * 1024;

  void SetUp() override {
    log_buffer_.resize(kLogCapacity);
    data_.assign(4096, 0);
    ASSERT_TRUE(LogRegion::Format(log_buffer_.data(), kLogCapacity).ok());
    auto log = LogRegion::Attach(log_buffer_.data(), kLogCapacity);
    ASSERT_TRUE(log.ok());
    log_ = *log;
  }

  uint64_t Addr(size_t offset) { return reinterpret_cast<uint64_t>(data_.data()) + offset; }

  std::vector<uint8_t> log_buffer_;
  std::vector<uint8_t> data_;
  LogRegion log_;
};

class IdentityResolver : public AddressResolver {
 public:
  void* Resolve(uint64_t addr, uint32_t size) override {
    return reinterpret_cast<void*>(addr);
  }
};

TEST_F(ReplayTest, UndoEntriesApplyInReverse) {
  // Same location logged twice: old value 1 (first), then old value 2.
  // Reverse replay must end with 1 (the oldest pre-state) in place.
  uint64_t old1 = 1, old2 = 2;
  ASSERT_TRUE(log_.Append(Addr(0), &old1, 8, kUndoSeq, ReplayOrder::kReverse).ok());
  ASSERT_TRUE(log_.Append(Addr(0), &old2, 8, kUndoSeq, ReplayOrder::kReverse).ok());
  std::memset(data_.data(), 0xff, 8);  // "Current" (post-modification) state.

  IdentityResolver resolver;
  auto stats = ReplayLogChain({log_}, resolver);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->applied, 2u);
  uint64_t result;
  std::memcpy(&result, data_.data(), 8);
  EXPECT_EQ(result, 1u);
}

TEST_F(ReplayTest, RedoEntriesApplyForward) {
  uint64_t new1 = 10, new2 = 20;
  ASSERT_TRUE(log_.Append(Addr(8), &new1, 8, kRedoSeq, ReplayOrder::kForward).ok());
  ASSERT_TRUE(log_.Append(Addr(8), &new2, 8, kRedoSeq, ReplayOrder::kForward).ok());
  log_.SetSeqRange(2, 4);  // Stage 2: redo valid.

  IdentityResolver resolver;
  auto stats = ReplayLogChain({log_}, resolver);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->applied, 2u);
  uint64_t result;
  std::memcpy(&result, data_.data() + 8, 8);
  EXPECT_EQ(result, 20u) << "forward replay ends with the newest redo value";
}

TEST_F(ReplayTest, RangeGatesWhatApplies) {
  uint64_t undo_val = 0xAA, redo_val = 0xBB;
  ASSERT_TRUE(log_.Append(Addr(0), &undo_val, 8, kUndoSeq, ReplayOrder::kReverse).ok());
  ASSERT_TRUE(log_.Append(Addr(8), &redo_val, 8, kRedoSeq, ReplayOrder::kForward).ok());

  IdentityResolver resolver;
  // Stage 1 crash: range (0,2) → only undo applies.
  log_.SetSeqRange(0, 2);
  auto stats = ReplayLogChain({log_}, resolver);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->applied, 1u);
  EXPECT_EQ(stats->skipped_out_of_range, 1u);
  uint64_t at0, at8;
  std::memcpy(&at0, data_.data(), 8);
  std::memcpy(&at8, data_.data() + 8, 8);
  EXPECT_EQ(at0, 0xAAu);
  EXPECT_EQ(at8, 0u) << "redo must not apply in stage 1";

  // Stage 3: range (4,4) → nothing applies.
  std::memset(data_.data(), 0, 16);
  log_.SetSeqRange(4, 4);
  stats = ReplayLogChain({log_}, resolver);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->applied, 0u);
  EXPECT_EQ(stats->skipped_out_of_range, 2u);
}

TEST_F(ReplayTest, VolatileEntriesSkippedByRecovery) {
  uint64_t v = 0x77;
  ASSERT_TRUE(log_.Append(Addr(0), &v, 8, kUndoSeq, ReplayOrder::kReverse,
                          kLogEntryVolatile)
                  .ok());
  IdentityResolver resolver;
  ReplayOptions options;
  options.include_volatile = false;  // Daemon recovery.
  auto stats = ReplayLogChain({log_}, resolver, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->applied, 0u);
  EXPECT_EQ(stats->skipped_volatile, 1u);

  options.include_volatile = true;  // In-process abort.
  stats = ReplayLogChain({log_}, resolver, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->applied, 1u);
}

TEST_F(ReplayTest, CorruptEntrySkipped) {
  uint64_t good = 1, torn = 2;
  ASSERT_TRUE(log_.Append(Addr(0), &good, 8, kUndoSeq, ReplayOrder::kReverse).ok());
  ASSERT_TRUE(log_.Append(Addr(8), &torn, 8, kUndoSeq, ReplayOrder::kReverse).ok());
  // Tear the second entry's payload.
  log_buffer_[sizeof(LogHeader) + LogRegion::EntrySpan(8) + sizeof(LogEntryHeader)] ^= 0xff;

  IdentityResolver resolver;
  auto stats = ReplayLogChain({log_}, resolver);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->applied, 1u);
  EXPECT_EQ(stats->skipped_checksum, 1u);
  uint64_t at8;
  std::memcpy(&at8, data_.data() + 8, 8);
  EXPECT_EQ(at8, 0u) << "torn entry must not be applied";
}

TEST_F(ReplayTest, UnresolvableAddressPoisonsLog) {
  uint64_t inside = 5, outside = 6;
  ASSERT_TRUE(log_.Append(Addr(0), &inside, 8, kUndoSeq, ReplayOrder::kReverse).ok());
  ASSERT_TRUE(log_.Append(0xdead0000, &outside, 8, kUndoSeq, ReplayOrder::kReverse).ok());

  RangeResolver resolver(reinterpret_cast<uint64_t>(data_.data()), data_.size());
  auto stats = ReplayLogChain({log_}, resolver);
  EXPECT_FALSE(stats.ok()) << "a log targeting unwritable memory must be refused";
  uint64_t at0;
  std::memcpy(&at0, data_.data(), 8);
  EXPECT_EQ(at0, 0u) << "nothing may be applied from a poisoned log";
}

TEST_F(ReplayTest, UnresolvableSkippedWhenLenient) {
  uint64_t inside = 5, outside = 6;
  ASSERT_TRUE(log_.Append(Addr(0), &inside, 8, kUndoSeq, ReplayOrder::kReverse).ok());
  ASSERT_TRUE(log_.Append(0xdead0000, &outside, 8, kUndoSeq, ReplayOrder::kReverse).ok());

  RangeResolver resolver(reinterpret_cast<uint64_t>(data_.data()), data_.size());
  ReplayOptions options;
  options.fail_on_unresolvable = false;
  auto stats = ReplayLogChain({log_}, resolver, options);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->applied, 1u);
  EXPECT_EQ(stats->unresolvable, 1u);
}

TEST_F(ReplayTest, ChainedRegionsReplayAsOneLog) {
  // Build a two-region chain; the head's range governs both.
  std::vector<uint8_t> second_buffer(kLogCapacity);
  ASSERT_TRUE(LogRegion::Format(second_buffer.data(), kLogCapacity).ok());
  auto second = LogRegion::Attach(second_buffer.data(), kLogCapacity);
  ASSERT_TRUE(second.ok());

  uint64_t old1 = 1, old2 = 2;
  ASSERT_TRUE(log_.Append(Addr(0), &old1, 8, kUndoSeq, ReplayOrder::kReverse).ok());
  ASSERT_TRUE(second->Append(Addr(0), &old2, 8, kUndoSeq, ReplayOrder::kReverse).ok());
  // The continuation region's own range says (0,2) but is ignored: prove it
  // by closing it — entries must still replay, governed by the head.
  second->SetSeqRange(4, 4);

  std::memset(data_.data(), 0xff, 8);
  IdentityResolver resolver;
  auto stats = ReplayLogChain({log_, *second}, resolver);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->applied, 2u);
  uint64_t result;
  std::memcpy(&result, data_.data(), 8);
  EXPECT_EQ(result, 1u) << "cross-region reverse order: oldest entry wins";
}

TEST_F(ReplayTest, EmptyChainIsNoop) {
  IdentityResolver resolver;
  auto stats = ReplayLogChain({}, resolver);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->applied, 0u);
}

TEST(RangeResolverTest, InRangeResolves) {
  alignas(8) static uint8_t buffer[256];
  const uint64_t base = reinterpret_cast<uint64_t>(buffer);
  RangeResolver resolver(base, sizeof(buffer));
  EXPECT_EQ(resolver.Resolve(base, 1), buffer);
  EXPECT_EQ(resolver.Resolve(base + 128, 128), buffer + 128);
  EXPECT_EQ(resolver.Resolve(base + 255, 1), buffer + 255);
  EXPECT_EQ(resolver.Resolve(base + 256, 1), nullptr);
  EXPECT_EQ(resolver.Resolve(base - 1, 1), nullptr);
  EXPECT_EQ(resolver.Resolve(base + 255, 2), nullptr);
}

TEST(RangeResolverTest, AddrNearUint64MaxDoesNotWrapPastBoundsCheck) {
  // An adversarial/corrupt log entry can carry any addr/size. With the old
  // `addr + size > base + size` check, addr near UINT64_MAX wrapped around
  // and resolved — handing the replayer a wild write target (§4.6).
  alignas(8) static uint8_t buffer[256];
  const uint64_t base = reinterpret_cast<uint64_t>(buffer);
  RangeResolver resolver(base, sizeof(buffer));
  EXPECT_EQ(resolver.Resolve(UINT64_MAX, 1), nullptr);
  EXPECT_EQ(resolver.Resolve(UINT64_MAX - 3, 8), nullptr);
  EXPECT_EQ(resolver.Resolve(UINT64_MAX - 255, UINT32_MAX), nullptr);
  // A resolver spanning the top of the address space must also stay safe.
  RangeResolver top(UINT64_MAX - 1024, 1024);
  EXPECT_EQ(top.Resolve(UINT64_MAX - 512, 1024), nullptr);
}

}  // namespace
}  // namespace puddles
