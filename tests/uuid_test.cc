#include "src/common/uuid.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

namespace puddles {
namespace {

TEST(UuidTest, NilIsNil) {
  EXPECT_TRUE(Uuid::Nil().is_nil());
  EXPECT_FALSE(Uuid::Generate().is_nil());
}

TEST(UuidTest, GenerateIsUnique) {
  std::set<std::pair<uint64_t, uint64_t>> seen;
  for (int i = 0; i < 10000; ++i) {
    Uuid id = Uuid::Generate();
    EXPECT_TRUE(seen.insert({id.hi, id.lo}).second) << "duplicate UUID at iteration " << i;
  }
}

TEST(UuidTest, VersionAndVariantBits) {
  for (int i = 0; i < 100; ++i) {
    Uuid id = Uuid::Generate();
    std::string s = id.ToString();
    EXPECT_EQ(s[14], '4') << s;  // Version nibble.
    EXPECT_TRUE(s[19] == '8' || s[19] == '9' || s[19] == 'a' || s[19] == 'b') << s;
  }
}

TEST(UuidTest, RoundTripsThroughString) {
  for (int i = 0; i < 100; ++i) {
    Uuid id = Uuid::Generate();
    std::string text = id.ToString();
    ASSERT_EQ(text.size(), 36u);
    auto parsed = Uuid::Parse(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(*parsed, id);
  }
}

TEST(UuidTest, ParseRejectsMalformed) {
  EXPECT_FALSE(Uuid::Parse("").has_value());
  EXPECT_FALSE(Uuid::Parse("not-a-uuid").has_value());
  EXPECT_FALSE(Uuid::Parse("00000000-0000-0000-0000-00000000000").has_value());   // Short.
  EXPECT_FALSE(Uuid::Parse("00000000-0000-0000-0000-0000000000000").has_value()); // Long.
  EXPECT_FALSE(Uuid::Parse("00000000x0000-0000-0000-000000000000").has_value());  // Bad dash.
  EXPECT_FALSE(Uuid::Parse("0000000g-0000-0000-0000-000000000000").has_value());  // Bad hex.
}

TEST(UuidTest, ParseAcceptsUppercase) {
  auto parsed = Uuid::Parse("DEADBEEF-CAFE-4001-8002-AABBCCDDEEFF");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ToString(), "deadbeef-cafe-4001-8002-aabbccddeeff");
}

TEST(UuidTest, OrderingIsConsistent) {
  Uuid a{1, 2};
  Uuid b{1, 3};
  Uuid c{2, 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (Uuid{1, 2}));
}

TEST(UuidTest, ConcurrentGenerationStaysUnique) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::vector<Uuid>> results(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&results, t] {
      for (int i = 0; i < kPerThread; ++i) {
        results[t].push_back(Uuid::Generate());
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  std::set<std::pair<uint64_t, uint64_t>> seen;
  for (const auto& batch : results) {
    for (const Uuid& id : batch) {
      EXPECT_TRUE(seen.insert({id.hi, id.lo}).second);
    }
  }
}

TEST(UuidHashTest, DistinctHashes) {
  UuidHash hash;
  std::set<size_t> hashes;
  for (int i = 0; i < 1000; ++i) {
    hashes.insert(hash(Uuid::Generate()));
  }
  // Collisions in 1000 random 64-bit hashes are essentially impossible.
  EXPECT_EQ(hashes.size(), 1000u);
}

}  // namespace
}  // namespace puddles
