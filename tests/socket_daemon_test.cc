// The production transport: Puddled behind a UNIX domain socket, clients
// authenticated via SO_PEERCRED, puddle fds delivered via SCM_RIGHTS.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "src/daemon/server.h"
#include "src/libpuddles/libpuddles.h"

namespace puddles {
namespace {

namespace fs = std::filesystem;

class SocketDaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("socket_daemon_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
    socket_path_ = "/tmp/puddled_test_" + std::to_string(::getpid()) + "_" +
                   ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".sock";

    auto daemon = puddled::Daemon::Start({.root_dir = root_.string()});
    ASSERT_TRUE(daemon.ok());
    daemon_ = std::move(*daemon);
    auto server = puddled::Server::Start(daemon_.get(), socket_path_);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
  }

  void TearDown() override {
    server_.reset();
    daemon_.reset();
    fs::remove_all(root_);
  }

  fs::path root_;
  std::string socket_path_;
  std::unique_ptr<puddled::Daemon> daemon_;
  std::unique_ptr<puddled::Server> server_;
};

TEST_F(SocketDaemonTest, PingRoundTrip) {
  auto client = puddled::SocketDaemonClient::Connect(socket_path_);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE((*client)->Ping().ok());
}

TEST_F(SocketDaemonTest, CreatePuddleDeliversFdOverSocket) {
  auto client = puddled::SocketDaemonClient::Connect(socket_path_);
  ASSERT_TRUE(client.ok());
  auto created = (*client)->CreatePuddle(PuddleKind::kData, 1 << 20, Uuid::Nil(), 0600);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto [info, fd] = *created;
  EXPECT_GE(fd, 0);

  // The fd is a live capability on the puddle file.
  auto file = pmem::PmemFile::FromFd(fd);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->size(), info.file_size);
  auto mapped = file->Map();
  ASSERT_TRUE(mapped.ok());
  auto puddle = Puddle::Attach(*mapped, file->size());
  ASSERT_TRUE(puddle.ok());
  EXPECT_EQ(puddle->uuid(), info.uuid);
}

TEST_F(SocketDaemonTest, ErrorsPropagateOverWire) {
  auto client = puddled::SocketDaemonClient::Connect(socket_path_);
  ASSERT_TRUE(client.ok());
  auto missing = (*client)->GetPuddle(Uuid::Generate(), false);
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  auto pool = (*client)->OpenPool("missing-pool");
  EXPECT_EQ(pool.status().code(), StatusCode::kNotFound);
}

TEST_F(SocketDaemonTest, PtrMapsOverWire) {
  auto client = puddled::SocketDaemonClient::Connect(socket_path_);
  ASSERT_TRUE(client.ok());
  puddled::PtrMapRecord record{};
  record.type_id = 42;
  record.object_size = 16;
  record.num_fields = 1;
  record.field_offsets[0] = 8;
  ASSERT_TRUE((*client)->RegisterPtrMap(record).ok());
  auto fetched = (*client)->GetPtrMap(42);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->field_offsets[0], 8u);
}

TEST_F(SocketDaemonTest, FullRuntimeOverSocketTransport) {
  // The complete Libpuddles stack working over the socket, exactly as a real
  // deployment would: pool, transactions, reopen.
  auto client = puddled::SocketDaemonClient::Connect(socket_path_);
  ASSERT_TRUE(client.ok());
  auto runtime = Runtime::Create(std::move(*client));
  ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();

  auto pool = (*runtime)->CreatePool("over-socket");
  ASSERT_TRUE(pool.ok()) << pool.status().ToString();

  struct Counter {
    uint64_t value;
  };
  Counter* counter = reinterpret_cast<Counter*>(
      *(*pool)->MallocBytes(sizeof(Counter), kRawBytesTypeId));
  counter->value = 0;
  pmem::FlushFence(counter, sizeof(Counter));
  ASSERT_TRUE((*pool)->SetRootBytes(counter).ok());

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*pool)->Run([&](Tx& tx) -> puddles::Status {
      RETURN_IF_ERROR(tx.LogField(counter, &Counter::value));
      counter->value++;
      return OkStatus();
    }).ok());
  }
  EXPECT_EQ(counter->value, 10u);

  // A second client sees the same data.
  auto client2 = puddled::SocketDaemonClient::Connect(socket_path_);
  ASSERT_TRUE(client2.ok());
  auto info = (*client2)->OpenPool("over-socket");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->pool_uuid, (*pool)->info().pool_uuid);
}

TEST_F(SocketDaemonTest, ConcurrentClients) {
  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([this, c, &failures] {
      auto client = puddled::SocketDaemonClient::Connect(socket_path_);
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < 20; ++i) {
        if (!(*client)->Ping().ok()) {
          ++failures;
        }
        auto created = (*client)->CreatePuddle(PuddleKind::kData, 1 << 20, Uuid::Nil(), 0600);
        if (!created.ok()) {
          ++failures;
        } else {
          ::close(created->second);
        }
      }
      (void)c;
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(daemon_->puddle_count(), kClients * 20u);
}

}  // namespace
}  // namespace puddles
