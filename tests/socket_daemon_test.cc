// The production transport: Puddled behind a UNIX domain socket, clients
// authenticated via SO_PEERCRED, puddle fds delivered via SCM_RIGHTS.
//
// Also the lifecycle regression suite for the event-driven server rebuild
// (docs/daemon.md): request pipelining, many-client concurrency with dirty
// disconnects, shutdown under load, accept-loop survival of fd exhaustion,
// and thread-per-connection registry reaping.
#include <gtest/gtest.h>
#include <sys/resource.h>
#include <unistd.h>

#include <fcntl.h>

#include <chrono>
#include <filesystem>

#include "src/daemon/protocol.h"
#include "src/daemon/server.h"
#include "src/ipc/wire.h"
#include "src/libpuddles/libpuddles.h"

namespace puddles {
namespace {

namespace fs = std::filesystem;

class SocketDaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("socket_daemon_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
    socket_path_ = "/tmp/puddled_test_" + std::to_string(::getpid()) + "_" +
                   ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".sock";

    auto daemon = puddled::Daemon::Start({.root_dir = root_.string()});
    ASSERT_TRUE(daemon.ok());
    daemon_ = std::move(*daemon);
    RestartServer(puddled::Server::Options{});
  }

  // Replaces the running server (tests that exercise a specific mode).
  void RestartServer(const puddled::Server::Options& options) {
    server_.reset();
    auto server = puddled::Server::Start(daemon_.get(), socket_path_, options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
  }

  // Spins until `predicate` holds or ~5 s pass (lifecycle counters are
  // updated by server threads, so assertions on them must tolerate a lag).
  template <typename Predicate>
  bool WaitFor(Predicate&& predicate) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!predicate()) {
      if (std::chrono::steady_clock::now() > deadline) {
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return true;
  }

  void TearDown() override {
    server_.reset();
    daemon_.reset();
    fs::remove_all(root_);
  }

  fs::path root_;
  std::string socket_path_;
  std::unique_ptr<puddled::Daemon> daemon_;
  std::unique_ptr<puddled::Server> server_;
};

// One framed request: 4-byte little-endian length + payload.
std::vector<uint8_t> Frame(const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> frame(4 + payload.size());
  const uint32_t length = static_cast<uint32_t>(payload.size());
  std::memcpy(frame.data(), &length, 4);
  std::memcpy(frame.data() + 4, payload.data(), payload.size());
  return frame;
}

std::vector<uint8_t> GetPtrMapRequest(uint64_t type_id) {
  WireWriter writer;
  writer.PutU32(static_cast<uint32_t>(puddled::Op::kGetPtrMap));
  writer.PutU64(type_id);
  return writer.Take();
}

bool WriteAll(int fd, const std::vector<uint8_t>& bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

TEST_F(SocketDaemonTest, PingRoundTrip) {
  auto client = puddled::SocketDaemonClient::Connect(socket_path_);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE((*client)->Ping().ok());
}

TEST_F(SocketDaemonTest, CreatePuddleDeliversFdOverSocket) {
  auto client = puddled::SocketDaemonClient::Connect(socket_path_);
  ASSERT_TRUE(client.ok());
  auto created = (*client)->CreatePuddle(PuddleKind::kData, 1 << 20, Uuid::Nil(), 0600);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto [info, fd] = *created;
  EXPECT_GE(fd, 0);

  // The fd is a live capability on the puddle file.
  auto file = pmem::PmemFile::FromFd(fd);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->size(), info.file_size);
  auto mapped = file->Map();
  ASSERT_TRUE(mapped.ok());
  auto puddle = Puddle::Attach(*mapped, file->size());
  ASSERT_TRUE(puddle.ok());
  EXPECT_EQ(puddle->uuid(), info.uuid);
}

TEST_F(SocketDaemonTest, ErrorsPropagateOverWire) {
  auto client = puddled::SocketDaemonClient::Connect(socket_path_);
  ASSERT_TRUE(client.ok());
  auto missing = (*client)->GetPuddle(Uuid::Generate(), false);
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  auto pool = (*client)->OpenPool("missing-pool");
  EXPECT_EQ(pool.status().code(), StatusCode::kNotFound);
}

TEST_F(SocketDaemonTest, PtrMapsOverWire) {
  auto client = puddled::SocketDaemonClient::Connect(socket_path_);
  ASSERT_TRUE(client.ok());
  puddled::PtrMapRecord record{};
  record.type_id = 42;
  record.object_size = 16;
  record.num_fields = 1;
  record.field_offsets[0] = 8;
  ASSERT_TRUE((*client)->RegisterPtrMap(record).ok());
  auto fetched = (*client)->GetPtrMap(42);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->field_offsets[0], 8u);
}

TEST_F(SocketDaemonTest, FullRuntimeOverSocketTransport) {
  // The complete Libpuddles stack working over the socket, exactly as a real
  // deployment would: pool, transactions, reopen.
  auto client = puddled::SocketDaemonClient::Connect(socket_path_);
  ASSERT_TRUE(client.ok());
  auto runtime = Runtime::Create(std::move(*client));
  ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();

  auto pool = (*runtime)->CreatePool("over-socket");
  ASSERT_TRUE(pool.ok()) << pool.status().ToString();

  struct Counter {
    uint64_t value;
  };
  Counter* counter = reinterpret_cast<Counter*>(
      *(*pool)->MallocBytes(sizeof(Counter), kRawBytesTypeId));
  counter->value = 0;
  pmem::FlushFence(counter, sizeof(Counter));
  ASSERT_TRUE((*pool)->SetRootBytes(counter).ok());

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*pool)->Run([&](Tx& tx) -> puddles::Status {
      RETURN_IF_ERROR(tx.LogField(counter, &Counter::value));
      counter->value++;
      return OkStatus();
    }).ok());
  }
  EXPECT_EQ(counter->value, 10u);

  // A second client sees the same data.
  auto client2 = puddled::SocketDaemonClient::Connect(socket_path_);
  ASSERT_TRUE(client2.ok());
  auto info = (*client2)->OpenPool("over-socket");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->pool_uuid, (*pool)->info().pool_uuid);
}

TEST_F(SocketDaemonTest, ConcurrentClients) {
  constexpr int kClients = 4;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([this, c, &failures] {
      auto client = puddled::SocketDaemonClient::Connect(socket_path_);
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < 20; ++i) {
        if (!(*client)->Ping().ok()) {
          ++failures;
        }
        auto created = (*client)->CreatePuddle(PuddleKind::kData, 1 << 20, Uuid::Nil(), 0600);
        if (!created.ok()) {
          ++failures;
        } else {
          ::close(created->second);
        }
      }
      (void)c;
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(daemon_->puddle_count(), kClients * 20u);
}

TEST_F(SocketDaemonTest, PipelinedRequestsComeBackInOrder) {
  // Pipelining contract (docs/daemon.md): any number of requests may be in
  // flight on one connection; responses arrive in request order.
  constexpr uint64_t kCount = 32;
  auto setup = puddled::SocketDaemonClient::Connect(socket_path_);
  ASSERT_TRUE(setup.ok());
  for (uint64_t i = 0; i < kCount; ++i) {
    puddled::PtrMapRecord record{};
    record.type_id = 100 + i;
    record.num_fields = 1;
    record.object_size = 32;
    record.field_offsets[0] = static_cast<uint32_t>(8 * i);
    ASSERT_TRUE((*setup)->RegisterPtrMap(record).ok());
  }

  auto raw = UnixSocket::Connect(socket_path_);
  ASSERT_TRUE(raw.ok());
  // All requests in one write: the server must parse frame boundaries out of
  // a single buffered read.
  std::vector<uint8_t> burst;
  for (uint64_t i = 0; i < kCount; ++i) {
    const auto frame = Frame(GetPtrMapRequest(100 + (kCount - 1 - i)));  // Reverse order.
    burst.insert(burst.end(), frame.begin(), frame.end());
  }
  ASSERT_TRUE(WriteAll(raw->fd(), burst));
  for (uint64_t i = 0; i < kCount; ++i) {
    auto response = raw->Recv();
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    WireReader reader(response->bytes);
    Status status = OkStatus();
    ASSERT_TRUE(reader.GetStatus(&status).ok());
    ASSERT_TRUE(status.ok()) << status.ToString();
    puddled::PtrMapRecord record{};
    ASSERT_TRUE(puddled::DecodePtrMap(&reader, &record).ok());
    EXPECT_EQ(record.type_id, 100 + (kCount - 1 - i));  // Request order, not id order.
    EXPECT_EQ(record.field_offsets[0], 8 * (kCount - 1 - i));
  }
}

TEST_F(SocketDaemonTest, FramesSplitAcrossArbitraryWriteBoundaries) {
  // The parser must reassemble frames from any packetization: drip the same
  // pipelined burst 7 bytes at a time.
  auto setup = puddled::SocketDaemonClient::Connect(socket_path_);
  ASSERT_TRUE(setup.ok());
  puddled::PtrMapRecord record{};
  record.type_id = 7;
  record.num_fields = 1;
  record.object_size = 16;
  record.field_offsets[0] = 8;
  ASSERT_TRUE((*setup)->RegisterPtrMap(record).ok());

  auto raw = UnixSocket::Connect(socket_path_);
  ASSERT_TRUE(raw.ok());
  std::vector<uint8_t> burst;
  constexpr int kCount = 8;
  for (int i = 0; i < kCount; ++i) {
    const auto frame = Frame(GetPtrMapRequest(7));
    burst.insert(burst.end(), frame.begin(), frame.end());
  }
  for (size_t off = 0; off < burst.size(); off += 7) {
    const size_t len = std::min<size_t>(7, burst.size() - off);
    ASSERT_TRUE(WriteAll(raw->fd(),
                         std::vector<uint8_t>(burst.begin() + off, burst.begin() + off + len)));
  }
  for (int i = 0; i < kCount; ++i) {
    auto response = raw->Recv();
    ASSERT_TRUE(response.ok());
    WireReader reader(response->bytes);
    Status status = OkStatus();
    ASSERT_TRUE(reader.GetStatus(&status).ok());
    EXPECT_TRUE(status.ok());
  }
}

TEST_F(SocketDaemonTest, ManyClientsWithDirtyDisconnects) {
  // 16 concurrent clients: evens run clean request/response traffic, odds
  // pipeline a burst, abandon half their responses, and hang up mid-request
  // (a truncated frame on the wire). The dirty halves must not perturb the
  // clean halves, and every connection must be accounted closed afterwards.
  constexpr int kThreads = 16;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, &failures] {
      if (t % 2 == 0) {
        auto client = puddled::SocketDaemonClient::Connect(socket_path_);
        if (!client.ok()) {
          ++failures;
          return;
        }
        for (int i = 0; i < 25; ++i) {
          puddled::PtrMapRecord record{};
          record.type_id = 1000 + t;
          record.num_fields = 1;
          record.object_size = 8;
          record.field_offsets[0] = 0;
          if (!(*client)->Ping().ok() || !(*client)->RegisterPtrMap(record).ok() ||
              !(*client)->GetPtrMap(1000 + t).ok()) {
            ++failures;
          }
        }
      } else {
        auto raw = UnixSocket::Connect(socket_path_);
        if (!raw.ok()) {
          ++failures;
          return;
        }
        std::vector<uint8_t> burst;
        for (int i = 0; i < 8; ++i) {
          const auto frame = Frame(GetPtrMapRequest(1));
          burst.insert(burst.end(), frame.begin(), frame.end());
        }
        if (!WriteAll(raw->fd(), burst)) {
          ++failures;
          return;
        }
        for (int i = 0; i < 3; ++i) {
          if (!raw->Recv().ok()) {
            ++failures;
          }
        }
        // Truncated trailing request: header promises 64 bytes, send 8.
        std::vector<uint8_t> partial(12, 0);
        const uint32_t lie = 64;
        std::memcpy(partial.data(), &lie, 4);
        (void)WriteAll(raw->fd(), partial);
        // Destructor closes with 5 responses undelivered and a frame cut off.
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(WaitFor([this] { return server_->stats().active == 0; }))
      << "accepted=" << server_->stats().accepted << " closed=" << server_->stats().closed;
  EXPECT_EQ(server_->stats().accepted, server_->stats().closed);
}

TEST_F(SocketDaemonTest, ShutdownUnderLoad) {
  // Stop() while clients are mid-flight: every server thread must unwind
  // without deadlock or crash, and the daemon must remain serviceable.
  std::atomic<bool> go{true};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([this, &go] {
      while (go.load()) {
        auto client = puddled::SocketDaemonClient::Connect(socket_path_);
        if (!client.ok()) {
          break;  // Listener gone: shutdown won the race.
        }
        for (int i = 0; i < 50 && go.load(); ++i) {
          if (!(*client)->Ping().ok()) {
            break;  // Connection torn down mid-request — expected.
          }
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server_->Stop();
  go.store(false);
  for (auto& thread : threads) {
    thread.join();
  }
  const puddled::ServerStats stats = server_->stats();
  EXPECT_EQ(stats.active, 0u) << "accepted=" << stats.accepted << " closed=" << stats.closed;

  // The daemon itself survived: a fresh server on the same socket serves.
  RestartServer(puddled::Server::Options{});
  auto client = puddled::SocketDaemonClient::Connect(socket_path_);
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE((*client)->Ping().ok());
}

// Regression for the accept-loop lifecycle bug: one transient Accept()
// failure (EMFILE here) used to end the loop permanently — the daemon ran
// but never admitted another client. The loop must log, back off, retry,
// and serve the queued connection once descriptors free up.
void ExerciseFdExhaustion(puddled::Server* server, const std::string& socket_path) {
  rlimit old_limit{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &old_limit), 0);
  size_t used = 0;
  for ([[maybe_unused]] const auto& entry : fs::directory_iterator("/proc/self/fd")) {
    ++used;
  }
  rlimit tight = old_limit;
  tight.rlim_cur = used + 16;
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &tight), 0);

  // Hog every remaining descriptor, then free exactly one: the client's
  // socket() consumes it, so the server-side accept4() hits EMFILE.
  std::vector<int> hogs;
  while (true) {
    const int fd = ::open("/dev/null", O_RDONLY);
    if (fd < 0) {
      break;
    }
    hogs.push_back(fd);
  }
  ASSERT_FALSE(hogs.empty());
  ::close(hogs.back());
  hogs.pop_back();

  auto client = puddled::SocketDaemonClient::Connect(socket_path);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server->stats().accept_retries == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(server->stats().accept_retries, 0u);

  for (const int fd : hogs) {
    ::close(fd);
  }
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &old_limit), 0);
  // The queued connection gets accepted on a retry tick and served.
  EXPECT_TRUE((*client)->Ping().ok());
}

TEST_F(SocketDaemonTest, AcceptSurvivesFdExhaustion) {
  ExerciseFdExhaustion(server_.get(), socket_path_);
}

TEST_F(SocketDaemonTest, ThreadModeAcceptSurvivesFdExhaustion) {
  puddled::Server::Options options;
  options.mode = puddled::Server::Mode::kThreadPerConnection;
  RestartServer(options);
  ExerciseFdExhaustion(server_.get(), socket_path_);
}

TEST_F(SocketDaemonTest, ThreadModeRegistryReapsFinishedConnections) {
  // Regression for the two thread-mode lifecycle leaks: connection threads
  // used to accumulate until Stop(), and Stop() used to shutdown() every fd
  // ever accepted — including numbers long since closed and recycled. The
  // finished-set protocol reaps threads as they complete and only touches
  // live descriptors.
  puddled::Server::Options options;
  options.mode = puddled::Server::Mode::kThreadPerConnection;
  RestartServer(options);

  uint64_t total = 0;
  for (int wave = 0; wave < 3; ++wave) {
    for (int c = 0; c < 8; ++c) {
      auto client = puddled::SocketDaemonClient::Connect(socket_path_);
      ASSERT_TRUE(client.ok());
      EXPECT_TRUE((*client)->Ping().ok());
      ++total;
    }  // All 8 disconnect here.
    EXPECT_TRUE(WaitFor([this, total] { return server_->stats().closed == total; }))
        << "wave " << wave << ": closed=" << server_->stats().closed;
    EXPECT_EQ(server_->stats().active, 0u);
  }

  // Stop with a mix of live and long-finished connections: the live one gets
  // shut down, the finished ones' recycled fd numbers are left alone.
  auto live = puddled::SocketDaemonClient::Connect(socket_path_);
  ASSERT_TRUE(live.ok());
  EXPECT_TRUE((*live)->Ping().ok());
  server_->Stop();
  const puddled::ServerStats stats = server_->stats();
  EXPECT_EQ(stats.accepted, total + 1);
  EXPECT_EQ(stats.active, 0u);
}

}  // namespace
}  // namespace puddles
