// Misuse coverage for the typed transaction-context API (DESIGN.md §9):
// every escape the old TLS-singleton surface turned into a segfault or
// silent corruption must surface as a Status here — stale Tx handles, nested
// pool.Run, use-after-free inside a transaction, DRAM pointers in the undo
// log, and pointer-map registrations that disagree with sizeof(T).
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "src/libpuddles/libpuddles.h"
#include "src/pmem/flush.h"

namespace puddles {

struct MisuseNode {
  MisuseNode* next;
  uint64_t value;
};

namespace {

namespace fs = std::filesystem;

class ApiMisuseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    (void)TypeRegistry::Instance().Register<MisuseNode>(&MisuseNode::next);
    root_ = fs::temp_directory_path() /
            ("api_misuse_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
    auto daemon = puddled::Daemon::Start({.root_dir = root_.string()});
    ASSERT_TRUE(daemon.ok()) << daemon.status().ToString();
    daemon_ = std::move(*daemon);
    auto runtime = Runtime::Create(
        std::make_shared<puddled::EmbeddedDaemonClient>(daemon_.get()));
    ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();
    runtime_ = std::move(*runtime);
    auto pool = runtime_->CreatePool("misuse");
    ASSERT_TRUE(pool.ok()) << pool.status().ToString();
    pool_ = *pool;
  }

  void TearDown() override {
    runtime_.reset();
    daemon_.reset();
    fs::remove_all(root_);
  }

  fs::path root_;
  std::unique_ptr<puddled::Daemon> daemon_;
  std::unique_ptr<Runtime> runtime_;
  Pool* pool_ = nullptr;
};

TEST_F(ApiMisuseTest, NestedRunRejected) {
  MisuseNode* node = *pool_->Malloc<MisuseNode>();
  node->value = 1;
  pmem::FlushFence(node, sizeof(*node));

  puddles::Status outer = pool_->Run([&](Tx& tx) -> puddles::Status {
    RETURN_IF_ERROR(tx.LogField(node, &MisuseNode::value));
    node->value = 2;
    puddles::Status inner = pool_->Run(
        [&](Tx&) -> puddles::Status { return OkStatus(); });
    EXPECT_EQ(inner.code(), StatusCode::kFailedPrecondition)
        << "pool.Run must not nest";
    return OkStatus();
  });
  EXPECT_TRUE(outer.ok()) << outer.ToString();
  EXPECT_EQ(node->value, 2u) << "outer transaction unaffected by refused nesting";

  // The refused inner Run must not have corrupted the outer transaction's
  // commit: a fresh transaction still works.
  EXPECT_TRUE(pool_->Run([&](Tx& tx) -> puddles::Status {
    RETURN_IF_ERROR(tx.LogField(node, &MisuseNode::value));
    node->value = 3;
    return OkStatus();
  }).ok());
  EXPECT_EQ(node->value, 3u);
}

TEST_F(ApiMisuseTest, StaleTxHandleRejected) {
  MisuseNode* node = *pool_->Malloc<MisuseNode>();
  node->value = 1;
  pmem::FlushFence(node, sizeof(*node));

  // "Double commit" in the typed API: the callback's return commits; a Tx
  // handle copied out of its Run must fail afterwards, even once a NEW
  // transaction is running on the same thread (epoch check — the stale
  // handle must not silently join it).
  Tx stale;  // Default-constructed handles are dead too.
  EXPECT_FALSE(stale.alive());
  EXPECT_EQ(stale.LogRange(node, sizeof(*node)).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(pool_->Run([&](Tx& tx) -> puddles::Status {
    stale = tx;
    return OkStatus();
  }).ok());
  EXPECT_FALSE(stale.alive());
  EXPECT_EQ(stale.Log(node).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(stale.Set(&node->value, uint64_t{9}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(stale.Alloc<MisuseNode>().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(stale.Free(node).code(), StatusCode::kFailedPrecondition);

  ASSERT_TRUE(pool_->Run([&](Tx& tx) -> puddles::Status {
    EXPECT_EQ(stale.Log(node).code(), StatusCode::kFailedPrecondition)
        << "stale handle must not join the new transaction";
    return tx.Set(&node->value, uint64_t{5});
  }).ok());
  EXPECT_EQ(node->value, 5u);
}

TEST_F(ApiMisuseTest, FreeThenLogSameObjectRejected) {
  MisuseNode* node = *pool_->Malloc<MisuseNode>();
  node->value = 77;
  pmem::FlushFence(node, sizeof(*node));

  puddles::Status run = pool_->Run([&](Tx& tx) -> puddles::Status {
    RETURN_IF_ERROR(tx.Free(node));
    EXPECT_EQ(tx.Log(node).code(), StatusCode::kFailedPrecondition)
        << "logging an object freed earlier in the same transaction";
    EXPECT_EQ(tx.LogField(node, &MisuseNode::value).code(),
              StatusCode::kFailedPrecondition);
    return OkStatus();
  });
  EXPECT_TRUE(run.ok()) << run.ToString();
}

TEST_F(ApiMisuseTest, LoggingDramPointerRejected) {
  alignas(64) static uint64_t dram_cell = 11;
  puddles::Status run = pool_->Run([&](Tx& tx) -> puddles::Status {
    EXPECT_EQ(tx.LogRange(&dram_cell, sizeof(dram_cell)).code(),
              StatusCode::kInvalidArgument)
        << "a stack/heap pointer must not enter the persistent undo log";
    EXPECT_EQ(tx.Set(&dram_cell, uint64_t{12}).code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(tx.LogRange(nullptr, 8).code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(tx.LogVolatile(nullptr, 8).code(), StatusCode::kInvalidArgument);
    // Sizes that would wrap the bounds check or overflow the 32-bit on-media
    // entry size must be rejected, not truncated.
    EXPECT_EQ(tx.LogRange(&dram_cell, ~size_t{0}).code(), StatusCode::kInvalidArgument);
    // DRAM state that should roll back with the transaction goes through the
    // explicit volatile form instead.
    RETURN_IF_ERROR(tx.LogVolatile(&dram_cell, sizeof(dram_cell)));
    dram_cell = 13;
    return AbortedError("roll the volatile store back");
  });
  EXPECT_EQ(run.code(), StatusCode::kAborted);
  EXPECT_EQ(dram_cell, 11u) << "volatile undo restored on abort";
}

TEST_F(ApiMisuseTest, CrossPoolLoggingIsSupported) {
  // Counterpart to the DRAM rejection: an object from a *different pool* of
  // the same runtime is legal to log — Puddles transactions "support writing
  // to any arbitrary PM data and are not limited to a single pool" (§3.6).
  auto other = runtime_->CreatePool("sibling");
  ASSERT_TRUE(other.ok());
  MisuseNode* foreign = *(*other)->Malloc<MisuseNode>();
  foreign->value = 1;
  pmem::FlushFence(foreign, sizeof(*foreign));

  ASSERT_TRUE(pool_->Run([&](Tx& tx) -> puddles::Status {
    RETURN_IF_ERROR(tx.LogField(foreign, &MisuseNode::value));
    foreign->value = 2;
    return OkStatus();
  }).ok());
  EXPECT_EQ(foreign->value, 2u);
}

TEST_F(ApiMisuseTest, RunCallbackExceptionAbortsAndRethrows) {
  MisuseNode* node = *pool_->Malloc<MisuseNode>();
  node->value = 4;
  pmem::FlushFence(node, sizeof(*node));

  bool caught = false;
  try {
    (void)pool_->Run([&](Tx& tx) -> puddles::Status {
      RETURN_IF_ERROR(tx.LogField(node, &MisuseNode::value));
      node->value = 999;
      throw std::runtime_error("boom");
    });
  } catch (const std::runtime_error&) {
    caught = true;
  }
  EXPECT_TRUE(caught);
  EXPECT_EQ(node->value, 4u) << "unwinding aborts via the undo log";
}

// ---- Pointer-map registration mismatches ----

struct ArityMismatch {  // 16 bytes: room for at most two pointer slots.
  ArityMismatch* a;
  uint64_t pad;
};

TEST(TypeRegistryMisuseTest, ArityBeyondSizeofRejected) {
  // A record claiming more pointer fields than sizeof(T) can hold (the
  // "wrong arity vs. sizeof(T)" drift the declarative macro prevents) must
  // be rejected at registration, not discovered during relocation.
  puddled::PtrMapRecord record{};
  record.type_id = TypeIdOf<ArityMismatch>();
  record.object_size = sizeof(ArityMismatch);
  record.num_fields = 3;  // 3 * 8 > 16.
  record.field_offsets[0] = 0;
  record.field_offsets[1] = 0;
  record.field_offsets[2] = 0;
  EXPECT_EQ(TypeRegistry::Instance().Add(record).code(), StatusCode::kInvalidArgument);

  // Out-of-bounds single field.
  record.num_fields = 1;
  record.field_offsets[0] = sizeof(ArityMismatch);  // Starts past the end.
  EXPECT_EQ(TypeRegistry::Instance().Add(record).code(), StatusCode::kInvalidArgument);

  // Repeat region spilling past the object.
  record.num_fields = 0;
  record.repeat_offset = 8;
  record.repeat_count = 2;  // 8 + 16 > 16.
  EXPECT_EQ(TypeRegistry::Instance().Add(record).code(), StatusCode::kInvalidArgument);

  // Zero-size objects carry no pointers to map.
  record = puddled::PtrMapRecord{};
  record.type_id = TypeIdOf<ArityMismatch>();
  record.object_size = 0;
  EXPECT_EQ(TypeRegistry::Instance().Add(record).code(), StatusCode::kInvalidArgument);
}

struct DriftVictim {
  DriftVictim* first;
  DriftVictim* second;
  uint64_t value;
};

TEST(TypeRegistryMisuseTest, ConflictingReRegistrationRejected) {
  ASSERT_TRUE(TypeRegistry::Instance()
                  .Register<DriftVictim>(&DriftVictim::first, &DriftVictim::second)
                  .ok());
  // Same map again: no-op.
  EXPECT_TRUE(TypeRegistry::Instance()
                  .Register<DriftVictim>(&DriftVictim::first, &DriftVictim::second)
                  .ok());
  // A different shape for the same type is the drift bug — reject loudly.
  EXPECT_EQ(
      TypeRegistry::Instance().Register<DriftVictim>(&DriftVictim::first).code(),
      StatusCode::kAlreadyExists);
}

struct WideArray {
  WideArray* slots[6];
  uint64_t tag;
};

TEST(TypeRegistryMisuseTest, ArrayMemberDeducesRepeatRegion) {
  ASSERT_TRUE(TypeRegistry::Instance().Register<WideArray>(&WideArray::slots).ok());
  auto record = TypeRegistry::Instance().Lookup(TypeIdOf<WideArray>());
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->num_fields, 0u);
  EXPECT_EQ(record->repeat_offset, 0u);
  EXPECT_EQ(record->repeat_count, 6u) << "count must come from the array extent";
  EXPECT_EQ(record->object_size, sizeof(WideArray));
}

}  // namespace
}  // namespace puddles
