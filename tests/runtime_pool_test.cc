// End-to-end tests of the Libpuddles runtime over an embedded daemon: pools,
// typed allocation, roots, typed transaction contexts (pool.Run + Tx,
// DESIGN.md §9), persistence across process "restarts", cross-pool
// transactions, on-demand fault mapping, and the deprecated macro shims.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "src/libpuddles/fault_router.h"
#include "src/libpuddles/libpuddles.h"
#include "src/pmem/global_space.h"

namespace puddles {

struct ListNode {
  ListNode* next;
  uint64_t value;
};

struct ListHead {
  ListNode* head;
  ListNode* tail;
  uint64_t count;
};

void RegisterListTypes() {
  static bool done = [] {
    PUDDLES_TYPE(ListNode, &ListNode::next);
    PUDDLES_TYPE(ListHead, &ListHead::head, &ListHead::tail);
    return true;
  }();
  (void)done;
}

namespace {

namespace fs = std::filesystem;

class RuntimePoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterListTypes();
    root_ = fs::temp_directory_path() /
            ("runtime_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
    StartStack();
  }

  void TearDown() override {
    runtime_.reset();
    daemon_.reset();
    fs::remove_all(root_);
  }

  void StartStack() {
    auto daemon = puddled::Daemon::Start({.root_dir = root_.string()});
    ASSERT_TRUE(daemon.ok()) << daemon.status().ToString();
    daemon_ = std::move(*daemon);
    auto runtime = Runtime::Create(
        std::make_shared<puddled::EmbeddedDaemonClient>(daemon_.get()));
    ASSERT_TRUE(runtime.ok()) << runtime.status().ToString();
    runtime_ = std::move(*runtime);
  }

  // Simulates a clean process restart: tear down client state and daemon,
  // then bring both back over the same root.
  void RestartStack() {
    runtime_.reset();
    daemon_.reset();
    StartStack();
  }

  fs::path root_;
  std::unique_ptr<puddled::Daemon> daemon_;
  std::unique_ptr<Runtime> runtime_;
};

TEST_F(RuntimePoolTest, CreatePoolAndAllocate) {
  auto pool = runtime_->CreatePool("p1");
  ASSERT_TRUE(pool.ok()) << pool.status().ToString();

  auto node = (*pool)->Malloc<ListNode>();
  ASSERT_TRUE(node.ok()) << node.status().ToString();
  (*node)->value = 42;
  (*node)->next = nullptr;
  EXPECT_GE(reinterpret_cast<uintptr_t>(*node), pmem::GlobalPuddleSpace().base());
  EXPECT_EQ((*pool)->member_count(), 1u);
}

TEST_F(RuntimePoolTest, RootSurvivesRestart) {
  {
    auto pool = runtime_->CreatePool("p1");
    ASSERT_TRUE(pool.ok());
    auto head = (*pool)->Malloc<ListHead>();
    ASSERT_TRUE(head.ok());
    (*head)->head = nullptr;
    (*head)->tail = nullptr;
    (*head)->count = 7;
    pmem::FlushFence(*head, sizeof(ListHead));
    ASSERT_TRUE((*pool)->SetRoot(*head).ok());
  }
  RestartStack();
  auto pool = runtime_->OpenPool("p1");
  ASSERT_TRUE(pool.ok()) << pool.status().ToString();
  auto root = (*pool)->Root<ListHead>();
  ASSERT_TRUE(root.ok()) << root.status().ToString();
  EXPECT_EQ((*root)->count, 7u);
}

TEST_F(RuntimePoolTest, TransactionalListAppend) {
  auto pool_result = runtime_->CreatePool("list");
  ASSERT_TRUE(pool_result.ok());
  Pool& pool = **pool_result;

  // Build the list head inside a transaction (Fig. 8 pattern, typed form).
  ASSERT_TRUE(pool.Run([&](Tx& tx) -> puddles::Status {
    ASSIGN_OR_RETURN(ListHead * head, tx.Alloc<ListHead>());
    head->head = nullptr;
    head->tail = nullptr;
    head->count = 0;
    return pool.SetRoot(head);
  }).ok());

  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.Run([&](Tx& tx) -> puddles::Status {
      ASSIGN_OR_RETURN(ListHead * head, pool.Root<ListHead>());
      ASSIGN_OR_RETURN(ListNode * node, tx.Alloc<ListNode>());
      node->value = i;
      node->next = nullptr;
      RETURN_IF_ERROR(tx.Log(head));
      if (head->tail == nullptr) {
        head->head = node;
      } else {
        RETURN_IF_ERROR(tx.LogField(head->tail, &ListNode::next));
        head->tail->next = node;
      }
      head->tail = node;
      head->count++;
      return OkStatus();
    }).ok()) << i;
  }

  ListHead* head = *pool.Root<ListHead>();
  EXPECT_EQ(head->count, 100u);
  uint64_t sum = 0, expected = 0, n = 0;
  for (ListNode* node = head->head; node != nullptr; node = node->next) {
    sum += node->value;
    ++n;
  }
  for (uint64_t i = 0; i < 100; ++i) {
    expected += i;
  }
  EXPECT_EQ(n, 100u);
  EXPECT_EQ(sum, expected);
}

TEST_F(RuntimePoolTest, AbortRollsBackListMutation) {
  auto pool_result = runtime_->CreatePool("list");
  ASSERT_TRUE(pool_result.ok());
  Pool& pool = **pool_result;

  ASSERT_TRUE(pool.Run([&](Tx& tx) -> puddles::Status {
    ASSIGN_OR_RETURN(ListHead * head, tx.Alloc<ListHead>());
    head->head = nullptr;
    head->tail = nullptr;
    head->count = 5;
    return pool.SetRoot(head);
  }).ok());

  // A non-OK return aborts: the callback's status comes back verbatim and
  // the undo log rolls the mutation back.
  puddles::Status aborted = pool.Run([&](Tx& tx) -> puddles::Status {
    ASSIGN_OR_RETURN(ListHead * head, pool.Root<ListHead>());
    RETURN_IF_ERROR(tx.Log(head));
    head->count = 999;
    return AbortedError("caller changed its mind");
  });
  EXPECT_EQ(aborted.code(), StatusCode::kAborted);

  EXPECT_EQ((*pool.Root<ListHead>())->count, 5u);
}

TEST_F(RuntimePoolTest, FreeInsideTxIsDeferredAndRollbackSafe) {
  auto pool_result = runtime_->CreatePool("p");
  ASSERT_TRUE(pool_result.ok());
  Pool& pool = **pool_result;

  ListNode* node = *pool.Malloc<ListNode>();
  node->value = 123;
  pmem::FlushFence(node, sizeof(*node));

  // Aborted free: object must survive with contents intact.
  puddles::Status aborted = pool.Run([&](Tx& tx) -> puddles::Status {
    RETURN_IF_ERROR(tx.Free(node));
    EXPECT_EQ(node->value, 123u) << "free is deferred: bytes untouched inside tx";
    return AbortedError("roll the free back");
  });
  EXPECT_EQ(aborted.code(), StatusCode::kAborted);
  EXPECT_EQ(node->value, 123u);

  // Committed free: object is gone; allocation can reuse the slot.
  ASSERT_TRUE(pool.Run([&](Tx& tx) { return tx.Free(node); }).ok());
  ListNode* reused = *pool.Malloc<ListNode>();
  EXPECT_EQ(reused, node) << "slab slot should be reusable after committed free";
}

TEST_F(RuntimePoolTest, PoolGrowsAcrossPuddles) {
  auto pool_result = runtime_->CreatePool("big");
  ASSERT_TRUE(pool_result.ok());
  Pool& pool = **pool_result;

  // Allocate far more than one 2 MiB puddle of 1 KiB objects.
  constexpr int kCount = 4000;
  std::vector<void*> objects;
  for (int i = 0; i < kCount; ++i) {
    auto obj = pool.MallocBytes(1024, kRawBytesTypeId);
    ASSERT_TRUE(obj.ok()) << "allocation " << i << ": " << obj.status().ToString();
    objects.push_back(*obj);
  }
  EXPECT_GT(pool.member_count(), 1u) << "pool must span puddles (§3.1)";

  // All objects distinct and writable.
  std::sort(objects.begin(), objects.end());
  EXPECT_EQ(std::adjacent_find(objects.begin(), objects.end()), objects.end());
  std::memset(objects[kCount / 2], 0xaa, 1024);
}

TEST_F(RuntimePoolTest, OnDemandMappingViaFault) {
  Uuid second_puddle;
  uintptr_t probe_addr = 0;
  {
    auto pool_result = runtime_->CreatePool("lazy");
    ASSERT_TRUE(pool_result.ok());
    Pool& pool = **pool_result;
    // Force a second puddle and remember an address inside it.
    std::vector<void*> objs;
    while (pool.member_count() < 2) {
      auto obj = pool.MallocBytes(64 * 1024, kRawBytesTypeId);
      ASSERT_TRUE(obj.ok());
      objs.push_back(*obj);
    }
    void* last = objs.back();
    std::memset(last, 0x5d, 64 * 1024);
    probe_addr = reinterpret_cast<uintptr_t>(last);
  }

  RestartStack();
  auto pool = runtime_->OpenPool("lazy");
  ASSERT_TRUE(pool.ok());

  auto before = FaultRouter::Instance().stats();
  // Touch the address directly: the puddle is registered but unmapped, so
  // this access faults and the router maps it on demand (§4.2).
  auto* bytes = reinterpret_cast<volatile uint8_t*>(probe_addr);
  EXPECT_EQ(bytes[0], 0x5d);
  EXPECT_EQ(bytes[100], 0x5d);
  auto after = FaultRouter::Instance().stats();
  EXPECT_GT(after.faults_handled, before.faults_handled)
      << "access must have been served by the fault router";
  (void)second_puddle;
}

TEST_F(RuntimePoolTest, CrossPoolTransaction) {
  // "unlike PMDK, they support writing to any arbitrary PM data and are not
  // limited to a single pool" (§3.6).
  auto pool_a = runtime_->CreatePool("a");
  auto pool_b = runtime_->CreatePool("b");
  ASSERT_TRUE(pool_a.ok() && pool_b.ok());

  ListNode* in_a = *(*pool_a)->Malloc<ListNode>();
  ListNode* in_b = *(*pool_b)->Malloc<ListNode>();
  in_a->value = 1;
  in_b->value = 2;
  pmem::FlushFence(in_a, sizeof(*in_a));
  pmem::FlushFence(in_b, sizeof(*in_b));

  ASSERT_TRUE((*pool_a)->Run([&](Tx& tx) -> puddles::Status {
    RETURN_IF_ERROR(tx.Log(in_a));
    RETURN_IF_ERROR(tx.Log(in_b));  // Data from a different pool, same transaction.
    in_a->value = 10;
    in_b->value = 20;
    // Cross-pool pointer (§3.4: single persistent space makes this legal).
    RETURN_IF_ERROR(tx.LogField(in_a, &ListNode::next));
    in_a->next = in_b;
    return OkStatus();
  }).ok());

  EXPECT_EQ(in_a->value, 10u);
  EXPECT_EQ(in_b->value, 20u);
  EXPECT_EQ(in_a->next, in_b);

  // Abort path across pools.
  puddles::Status aborted = (*pool_b)->Run([&](Tx& tx) -> puddles::Status {
    RETURN_IF_ERROR(tx.Log(in_a));
    RETURN_IF_ERROR(tx.Log(in_b));
    in_a->value = 111;
    in_b->value = 222;
    return AbortedError("cross-pool abort");
  });
  EXPECT_EQ(aborted.code(), StatusCode::kAborted);
  EXPECT_EQ(in_a->value, 10u);
  EXPECT_EQ(in_b->value, 20u);
}

TEST_F(RuntimePoolTest, ReadOnlyOpenRejectsWrites) {
  {
    auto pool = runtime_->CreatePool("ro", 0644);
    ASSERT_TRUE(pool.ok());
    ListNode* n = *(*pool)->Malloc<ListNode>();
    n->value = 9;
    pmem::FlushFence(n, sizeof(*n));
    ASSERT_TRUE((*pool)->SetRoot(n).ok());
  }
  RestartStack();
  auto pool = runtime_->OpenPool("ro", /*writable=*/false);
  ASSERT_TRUE(pool.ok()) << pool.status().ToString();
  auto root = (*pool)->Root<ListNode>();
  ASSERT_TRUE(root.ok());
  EXPECT_EQ((*root)->value, 9u);
  EXPECT_FALSE((*pool)->Malloc<ListNode>().ok());
  EXPECT_FALSE((*pool)->BeginTx().ok());
}

TEST_F(RuntimePoolTest, RedoSetAppliesAtCommit) {
  auto pool_result = runtime_->CreatePool("redo");
  ASSERT_TRUE(pool_result.ok());
  Pool& pool = **pool_result;

  ListHead* head = *pool.Malloc<ListHead>();
  head->count = 1;
  pmem::FlushFence(head, sizeof(*head));

  ASSERT_TRUE(pool.Run([&](Tx& tx) -> puddles::Status {
    RETURN_IF_ERROR(tx.Set(&head->count, uint64_t{2}));
    EXPECT_EQ(head->count, 1u) << "redo defers until commit (Fig. 7)";
    return OkStatus();
  }).ok());
  EXPECT_EQ(head->count, 2u);
}

#ifndef PUDDLES_STRICT_API
// Legacy-compat: the deprecated macro surface keeps working over the same
// core — implicit-join allocation inside TX_BEGIN, TX_ADD, TxAbort.
TEST_F(RuntimePoolTest, LegacyMacroShimsStillWork) {
  auto pool_result = runtime_->CreatePool("legacy");
  ASSERT_TRUE(pool_result.ok());
  Pool& pool = **pool_result;

  TX_BEGIN(pool) {
    ListHead* head = *pool.Malloc<ListHead>();
    head->head = nullptr;
    head->tail = nullptr;
    head->count = 41;
    ASSERT_TRUE(pool.SetRoot(head).ok());
  }
  TX_END;
  ASSERT_TRUE(tx_internal::LastLegacyCommitStatus().ok());

  TX_BEGIN(pool) {
    ListHead* head = *pool.Root<ListHead>();
    TX_ADD(head);
    head->count++;
  }
  TX_END;
  EXPECT_EQ((*pool.Root<ListHead>())->count, 42u);

  TX_BEGIN(pool) {
    ListHead* head = *pool.Root<ListHead>();
    TX_ADD(head);
    head->count = 999;
    TxAbort();
  }
  TX_END;
  EXPECT_EQ((*pool.Root<ListHead>())->count, 42u) << "TxAbort must roll back";
}
#endif  // !PUDDLES_STRICT_API

}  // namespace
}  // namespace puddles
