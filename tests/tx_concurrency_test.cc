// Multi-threaded transactions on a shared pool — the Fig. 12 shape promoted
// from a benchmark to a correctness gate. N threads run many small
// transactions concurrently against one pool (thread-local logs created
// lazily on each thread's first pool.Run, commits fully concurrent), then the
// daemon is shut down and restarted: recovery must land every committed
// increment and none of the aborted ones, and the reopened pool must accept
// new concurrent transactions from fresh threads.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <thread>
#include <vector>

#include "src/daemon/client.h"
#include "src/daemon/daemon.h"
#include "src/libpuddles/libpuddles.h"
#include "src/tx/tx.h"

namespace puddles {
namespace {

namespace fs = std::filesystem;

constexpr int kThreads = 4;
constexpr uint64_t kCellsPerThread = 2048;
constexpr uint64_t kChunk = 128;  // Cells undo-logged per transaction.
constexpr int kRoundsPerThread = 24;

struct Shard {
  uint64_t* cells[kThreads];
  uint64_t committed_rounds[kThreads];
};

class TxConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("tx_concurrency_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    // The pointer array registers as one repeat region; its count comes
    // from the member's extent (kThreads), not a hand-maintained list.
    (void)TypeRegistry::Instance().Register<Shard>(&Shard::cells);
    Start(/*create=*/true);
  }

  void TearDown() override {
    runtime_.reset();
    daemon_.reset();
    fs::remove_all(dir_);
  }

  void Start(bool create) {
    auto started = puddled::Daemon::Start({.root_dir = (dir_ / "root").string()});
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    daemon_ = std::move(*started);
    auto rt = Runtime::Create(
        std::make_shared<puddled::EmbeddedDaemonClient>(daemon_.get()));
    ASSERT_TRUE(rt.ok()) << rt.status().ToString();
    runtime_ = std::move(*rt);
    auto pool = create ? runtime_->CreatePool("fig12") : runtime_->OpenPool("fig12");
    ASSERT_TRUE(pool.ok()) << pool.status().ToString();
    pool_ = *pool;
  }

  // Daemon restart: application-independent recovery runs before any remap.
  void Reopen() {
    runtime_.reset();
    daemon_.reset();
    Start(/*create=*/false);
  }

  Shard* InitShard() {
    Shard* shard = nullptr;
    EXPECT_TRUE(pool_->Run([&](Tx& tx) -> puddles::Status {
      ASSIGN_OR_RETURN(shard, tx.Alloc<Shard>());
      for (int t = 0; t < kThreads; ++t) {
        ASSIGN_OR_RETURN(shard->cells[t], tx.Alloc<uint64_t>(kCellsPerThread));
        for (uint64_t i = 0; i < kCellsPerThread; ++i) {
          shard->cells[t][i] = 0;
        }
        shard->committed_rounds[t] = 0;
      }
      return pool_->SetRoot(shard);
    }).ok());
    return shard;
  }

  fs::path dir_;
  std::unique_ptr<puddled::Daemon> daemon_;
  std::unique_ptr<Runtime> runtime_;
  Pool* pool_ = nullptr;
};

// One round for thread t: chunk-sized transactions across its whole slice
// (the Fig. 12 access pattern), each adding (t+1) to every cell.
void RunRound(Pool& pool, Shard* shard, int t) {
  uint64_t* cells = shard->cells[t];
  for (uint64_t at = 0; at < kCellsPerThread; at += kChunk) {
    ASSERT_TRUE(pool.Run([&](Tx& tx) -> puddles::Status {
      RETURN_IF_ERROR(tx.LogRange(&cells[at], kChunk * sizeof(uint64_t)));
      for (uint64_t i = at; i < at + kChunk; ++i) {
        cells[i] += static_cast<uint64_t>(t) + 1;
      }
      return OkStatus();
    }).ok());
  }
  ASSERT_TRUE(pool.Run([&](Tx& tx) -> puddles::Status {
    RETURN_IF_ERROR(tx.LogRange(&shard->committed_rounds[t], sizeof(uint64_t)));
    shard->committed_rounds[t]++;
    return OkStatus();
  }).ok());
}

// An aborted round: same stores, rolled back via the undo log. Nothing from
// it may survive — neither in memory nor across recovery.
void RunAbortedRound(Pool& pool, Shard* shard, int t) {
  uint64_t* cells = shard->cells[t];
  puddles::Status aborted = pool.Run([&](Tx& tx) -> puddles::Status {
    RETURN_IF_ERROR(tx.LogRange(&cells[0], kChunk * sizeof(uint64_t)));
    for (uint64_t i = 0; i < kChunk; ++i) {
      cells[i] += 0xDEAD;
    }
    return AbortedError("aborted round");
  });
  ASSERT_EQ(aborted.code(), StatusCode::kAborted);
}

TEST_F(TxConcurrencyTest, ConcurrentCommitsSurviveReopen) {
  Shard* shard = InitShard();
  ASSERT_NE(shard, nullptr);

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([this, shard, t] {
      for (int round = 0; round < kRoundsPerThread; ++round) {
        RunRound(*pool_, shard, t);
        if (round % 5 == 4) {
          RunAbortedRound(*pool_, shard, t);
        }
      }
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }

  // In-memory result before the restart.
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_EQ(shard->committed_rounds[t], static_cast<uint64_t>(kRoundsPerThread));
    const uint64_t expected = static_cast<uint64_t>(kRoundsPerThread) *
                              (static_cast<uint64_t>(t) + 1);
    for (uint64_t i = 0; i < kCellsPerThread; ++i) {
      ASSERT_EQ(shard->cells[t][i], expected) << "t=" << t << " i=" << i;
    }
  }

  Reopen();

  // Every committed transaction from every thread-local log survived; no
  // aborted stores resurface.
  auto root = pool_->Root<Shard>();
  ASSERT_TRUE(root.ok());
  Shard* recovered = *root;
  ASSERT_NE(recovered, nullptr);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(recovered->committed_rounds[t], static_cast<uint64_t>(kRoundsPerThread));
    const uint64_t expected = static_cast<uint64_t>(kRoundsPerThread) *
                              (static_cast<uint64_t>(t) + 1);
    for (uint64_t i = 0; i < kCellsPerThread; ++i) {
      ASSERT_EQ(recovered->cells[t][i], expected) << "t=" << t << " i=" << i;
    }
  }

  // The reopened pool takes concurrent transactions from brand-new threads
  // (fresh thread-local logs on a recovered daemon).
  std::vector<std::thread> after;
  for (int t = 0; t < kThreads; ++t) {
    after.emplace_back([this, recovered, t] { RunRound(*pool_, recovered, t); });
  }
  for (auto& worker : after) {
    worker.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(recovered->committed_rounds[t], static_cast<uint64_t>(kRoundsPerThread) + 1);
  }
}

}  // namespace
}  // namespace puddles
