#include "src/daemon/daemon.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <thread>

#include "src/pmem/mapped_file.h"
#include "src/puddles/format.h"

namespace puddled {
namespace {

namespace fs = std::filesystem;

class DaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("puddled_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
    auto daemon = Daemon::Start({.root_dir = root_.string()});
    ASSERT_TRUE(daemon.ok()) << daemon.status().ToString();
    daemon_ = std::move(*daemon);
  }

  void TearDown() override {
    daemon_.reset();
    fs::remove_all(root_);
  }

  void Restart() {
    daemon_.reset();
    auto daemon = Daemon::Start({.root_dir = root_.string()});
    ASSERT_TRUE(daemon.ok()) << daemon.status().ToString();
    daemon_ = std::move(*daemon);
  }

  fs::path root_;
  std::unique_ptr<Daemon> daemon_;
  Credentials alice_{1000, 1000};
  Credentials bob_{1001, 1001};
  Credentials carol_same_group_{1002, 1000};
};

TEST_F(DaemonTest, CreatePuddleReturnsUsableFd) {
  auto created = daemon_->CreatePuddle(PuddleKind::kData, 1 << 20, alice_);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  auto [info, fd] = *created;
  EXPECT_FALSE(info.uuid.is_nil());
  EXPECT_GT(info.base_addr, 0u);
  EXPECT_EQ(info.heap_size, 1u << 20);

  auto file = pmem::PmemFile::FromFd(fd);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->size(), info.file_size);
  auto base = file->Map();
  ASSERT_TRUE(base.ok());
  auto puddle = puddles::Puddle::Attach(*base, file->size());
  ASSERT_TRUE(puddle.ok());
  EXPECT_EQ(puddle->uuid(), info.uuid);
  EXPECT_EQ(puddle->base_addr(), info.base_addr);
}

TEST_F(DaemonTest, BaseAddressesDoNotOverlap) {
  uint64_t prev_end = 0;
  std::vector<std::pair<uint64_t, uint64_t>> ranges;
  for (int i = 0; i < 8; ++i) {
    auto created = daemon_->CreatePuddle(PuddleKind::kData, 1 << 20, alice_);
    ASSERT_TRUE(created.ok());
    ranges.push_back({created->first.base_addr, created->first.file_size});
    ::close(created->second);
  }
  std::sort(ranges.begin(), ranges.end());
  for (const auto& [base, size] : ranges) {
    EXPECT_GE(base, prev_end) << "overlapping assignment";
    prev_end = base + size;
  }
}

TEST_F(DaemonTest, AccessControlMatrix) {
  auto created = daemon_->CreatePuddle(PuddleKind::kData, 1 << 20, alice_, Uuid::Nil(), 0640);
  ASSERT_TRUE(created.ok());
  ::close(created->second);
  const Uuid uuid = created->first.uuid;

  // Owner: read and write.
  auto owner_rw = daemon_->GetPuddle(uuid, alice_, /*write=*/true);
  ASSERT_TRUE(owner_rw.ok());
  ::close(owner_rw->second);

  // Same group: read only (mode 0640).
  auto group_read = daemon_->GetPuddle(uuid, carol_same_group_, /*write=*/false);
  ASSERT_TRUE(group_read.ok());
  ::close(group_read->second);
  auto group_write = daemon_->GetPuddle(uuid, carol_same_group_, /*write=*/true);
  EXPECT_EQ(group_write.status().code(), puddles::StatusCode::kPermissionDenied);

  // Other: nothing.
  auto other_read = daemon_->GetPuddle(uuid, bob_, /*write=*/false);
  EXPECT_EQ(other_read.status().code(), puddles::StatusCode::kPermissionDenied);
}

TEST_F(DaemonTest, ReadOnlyFdIsEnforcedByKernel) {
  auto created = daemon_->CreatePuddle(PuddleKind::kData, 1 << 20, alice_, Uuid::Nil(), 0644);
  ASSERT_TRUE(created.ok());
  ::close(created->second);

  auto read_only = daemon_->GetPuddle(created->first.uuid, bob_, /*write=*/false);
  ASSERT_TRUE(read_only.ok());
  auto file = pmem::PmemFile::FromFd(read_only->second, /*writable=*/false);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file->Map().ok());
  // A writable mapping over the read-only capability must fail.
  auto rw_file = pmem::PmemFile::FromFd(::dup(file->fd()), /*writable=*/true);
  ASSERT_TRUE(rw_file.ok());
  EXPECT_FALSE(rw_file->Map().ok()) << "kernel must reject PROT_WRITE on O_RDONLY fd";
}

TEST_F(DaemonTest, GetUnknownPuddleFails) {
  auto result = daemon_->GetPuddle(Uuid::Generate(), alice_, false);
  EXPECT_EQ(result.status().code(), puddles::StatusCode::kNotFound);
}

TEST_F(DaemonTest, RegistryPersistsAcrossRestart) {
  auto created = daemon_->CreatePuddle(PuddleKind::kData, 1 << 20, alice_);
  ASSERT_TRUE(created.ok());
  ::close(created->second);
  const PuddleInfo original = created->first;

  Restart();

  auto reopened = daemon_->GetPuddle(original.uuid, alice_, true);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->first.base_addr, original.base_addr) << "assignments must be stable";
  ::close(reopened->second);

  // New puddles must not collide with pre-restart assignments.
  auto fresh = daemon_->CreatePuddle(PuddleKind::kData, 1 << 20, alice_);
  ASSERT_TRUE(fresh.ok());
  EXPECT_NE(fresh->first.base_addr, original.base_addr);
  ::close(fresh->second);
}

TEST_F(DaemonTest, DeletePuddleRemovesFileAndRecord) {
  auto created = daemon_->CreatePuddle(PuddleKind::kData, 1 << 20, alice_);
  ASSERT_TRUE(created.ok());
  ::close(created->second);
  const Uuid uuid = created->first.uuid;

  EXPECT_EQ(daemon_->DeletePuddle(uuid, bob_).code(),
            puddles::StatusCode::kPermissionDenied);
  ASSERT_TRUE(daemon_->DeletePuddle(uuid, alice_).ok());
  EXPECT_EQ(daemon_->GetPuddle(uuid, alice_, false).status().code(),
            puddles::StatusCode::kNotFound);
  // Address range can be reused.
  auto fresh = daemon_->CreatePuddle(PuddleKind::kData, 1 << 20, alice_);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->first.base_addr, created->first.base_addr);
  ::close(fresh->second);
}

TEST_F(DaemonTest, FindPuddleByAddr) {
  auto created = daemon_->CreatePuddle(PuddleKind::kData, 1 << 20, alice_);
  ASSERT_TRUE(created.ok());
  ::close(created->second);
  const PuddleInfo info = created->first;

  auto found = daemon_->FindPuddleByAddr(info.base_addr + info.file_size / 2, alice_);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->uuid, info.uuid);

  auto missing = daemon_->FindPuddleByAddr(info.base_addr + (64ULL << 30), alice_);
  EXPECT_FALSE(missing.ok());
}

TEST_F(DaemonTest, PoolLifecycle) {
  auto pool = daemon_->CreatePool("accounts", alice_);
  ASSERT_TRUE(pool.ok()) << pool.status().ToString();
  EXPECT_STREQ(pool->name, "accounts");

  EXPECT_EQ(daemon_->CreatePool("accounts", alice_).status().code(),
            puddles::StatusCode::kAlreadyExists);

  auto opened = daemon_->OpenPool("accounts", alice_);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->pool_uuid, pool->pool_uuid);
  EXPECT_EQ(opened->meta_puddle, pool->meta_puddle);

  EXPECT_EQ(daemon_->OpenPool("nope", alice_).status().code(),
            puddles::StatusCode::kNotFound);
  EXPECT_EQ(daemon_->OpenPool("accounts", bob_).status().code(),
            puddles::StatusCode::kPermissionDenied);

  Restart();
  EXPECT_TRUE(daemon_->OpenPool("accounts", alice_).ok());
}

TEST_F(DaemonTest, PtrMapRoundTrip) {
  PtrMapRecord record{};
  record.type_id = 0xabcdef;
  record.object_size = 24;
  record.num_fields = 2;
  record.field_offsets[0] = 0;
  record.field_offsets[1] = 8;
  ASSERT_TRUE(daemon_->RegisterPtrMap(record).ok());

  auto fetched = daemon_->GetPtrMap(0xabcdef);
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->num_fields, 2u);
  EXPECT_EQ(fetched->field_offsets[1], 8u);
  EXPECT_FALSE(daemon_->GetPtrMap(0x123).ok());

  Restart();
  EXPECT_TRUE(daemon_->GetPtrMap(0xabcdef).ok()) << "pointer maps must persist";
}

TEST_F(DaemonTest, RegisterLogSpaceValidatesKind) {
  auto data = daemon_->CreatePuddle(PuddleKind::kData, 1 << 20, alice_);
  ASSERT_TRUE(data.ok());
  ::close(data->second);
  EXPECT_FALSE(daemon_->RegisterLogSpace(data->first.uuid, alice_).ok());

  auto ls = daemon_->CreatePuddle(PuddleKind::kLogSpace, 1 << 20, alice_);
  ASSERT_TRUE(ls.ok());
  ::close(ls->second);
  EXPECT_TRUE(daemon_->RegisterLogSpace(ls->first.uuid, alice_).ok());
  EXPECT_FALSE(daemon_->RegisterLogSpace(ls->first.uuid, bob_).ok())
      << "cannot register someone else's log space";
}

TEST_F(DaemonTest, ShardedRegistriesUnderConcurrentMutation) {
  // The daemon-side registries are sharded by uuid/type-id hash so the event
  // server's worker pool can mutate them in parallel. Hammer creates,
  // registrations, and lookups from several threads, then prove the sharded
  // files reopen as one coherent registry.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 16;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  std::vector<std::vector<Uuid>> created(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t, &failures, &created] {
      Credentials who{static_cast<uint32_t>(2000 + t), 2000};
      for (int i = 0; i < kPerThread; ++i) {
        auto puddle = daemon_->CreatePuddle(PuddleKind::kData, 1 << 16, who);
        if (!puddle.ok()) {
          ++failures;
          continue;
        }
        ::close(puddle->second);
        created[t].push_back(puddle->first.uuid);

        PtrMapRecord record{};
        record.type_id = static_cast<uint64_t>(t) * kPerThread + i + 1;
        record.num_fields = 1;
        record.object_size = 16;
        record.field_offsets[0] = 8;
        if (!daemon_->RegisterPtrMap(record).ok()) {
          ++failures;
        }
        // Read back something another shard likely owns.
        auto looked_up = daemon_->GetPuddle(created[t].front(), who, false);
        if (!looked_up.ok()) {
          ++failures;
        } else {
          ::close(looked_up->second);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  ASSERT_EQ(failures.load(), 0);

  // Every shard file exists on disk (default Options{}.shards == 8).
  for (uint32_t s = 0; s < 8; ++s) {
    EXPECT_TRUE(fs::exists(root_ / ("puddles." + std::to_string(s) + ".tbl")));
    EXPECT_TRUE(fs::exists(root_ / ("ptrmaps." + std::to_string(s) + ".tbl")));
  }

  Restart();
  for (int t = 0; t < kThreads; ++t) {
    Credentials who{static_cast<uint32_t>(2000 + t), 2000};
    ASSERT_EQ(created[t].size(), static_cast<size_t>(kPerThread));
    for (const Uuid& uuid : created[t]) {
      auto got = daemon_->GetPuddle(uuid, who, false);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ::close(got->second);
    }
    for (int i = 0; i < kPerThread; ++i) {
      const uint64_t type_id = static_cast<uint64_t>(t) * kPerThread + i + 1;
      EXPECT_TRUE(daemon_->GetPtrMap(type_id).ok()) << "type_id " << type_id;
    }
  }
}

TEST_F(DaemonTest, ReopenWithDifferentShardCountIsRejected) {
  // Shard count is baked into the on-disk layout; a mismatched reopen would
  // silently hide the records in the missing/extra shard files.
  daemon_.reset();
  for (uint32_t shards : {4u, 16u}) {
    auto reopened = Daemon::Start({.root_dir = root_.string(), .shards = shards});
    EXPECT_EQ(reopened.status().code(), puddles::StatusCode::kFailedPrecondition) << shards;
  }
  auto same = Daemon::Start({.root_dir = root_.string(), .shards = 8});
  EXPECT_TRUE(same.ok()) << same.status().ToString();
}

TEST(DaemonAccessTest, CheckAccessBits) {
  Credentials owner{1, 1}, groupie{2, 1}, other{3, 3};
  // 0600: owner rw, nobody else.
  EXPECT_TRUE(Daemon::CheckAccess(1, 1, 0600, owner, false).ok());
  EXPECT_TRUE(Daemon::CheckAccess(1, 1, 0600, owner, true).ok());
  EXPECT_FALSE(Daemon::CheckAccess(1, 1, 0600, groupie, false).ok());
  EXPECT_FALSE(Daemon::CheckAccess(1, 1, 0600, other, false).ok());
  // 0664.
  EXPECT_TRUE(Daemon::CheckAccess(1, 1, 0664, groupie, true).ok());
  EXPECT_TRUE(Daemon::CheckAccess(1, 1, 0664, other, false).ok());
  EXPECT_FALSE(Daemon::CheckAccess(1, 1, 0664, other, true).ok());
  // 0200: write-only owner.
  EXPECT_TRUE(Daemon::CheckAccess(1, 1, 0200, owner, true).ok());
  EXPECT_FALSE(Daemon::CheckAccess(1, 1, 0200, owner, false).ok());
}

TEST(DaemonStartTest, RejectsEmptyRoot) {
  EXPECT_FALSE(Daemon::Start({.root_dir = ""}).ok());
}

}  // namespace
}  // namespace puddled
