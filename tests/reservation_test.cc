#include "src/pmem/reservation.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <csetjmp>
#include <csignal>
#include <cstring>
#include <filesystem>

#include "src/common/align.h"
#include "src/pmem/mapped_file.h"

namespace pmem {
namespace {

constexpr size_t kSpace = 64ULL << 20;  // 64 MiB reservation for tests.

TEST(ReservationTest, ReserveAndRelease) {
  AddressReservation reservation;
  ASSERT_TRUE(reservation.Reserve(kDefaultPuddleSpaceBase, kSpace).ok());
  EXPECT_TRUE(reservation.reserved());
  EXPECT_EQ(reservation.size(), kSpace);
  EXPECT_TRUE(reservation.Contains(reservation.base()));
  EXPECT_TRUE(reservation.Contains(reservation.base() + kSpace - 1));
  EXPECT_FALSE(reservation.Contains(reservation.base() + kSpace));
  reservation.Release();
  EXPECT_FALSE(reservation.reserved());
}

TEST(ReservationTest, DoubleReserveFails) {
  AddressReservation reservation;
  ASSERT_TRUE(reservation.Reserve(kDefaultPuddleSpaceBase, kSpace).ok());
  EXPECT_FALSE(reservation.Reserve(kDefaultPuddleSpaceBase, kSpace).ok());
}

TEST(ReservationTest, TwoReservationsCoexist) {
  // The second one cannot get the same hint; it must fall back gracefully.
  AddressReservation a;
  AddressReservation b;
  ASSERT_TRUE(a.Reserve(kDefaultPuddleSpaceBase, kSpace).ok());
  ASSERT_TRUE(b.Reserve(kDefaultPuddleSpaceBase, kSpace).ok());
  EXPECT_NE(a.base(), b.base());
}

TEST(ReservationTest, AllocateRangesAreDisjoint) {
  AddressReservation reservation;
  ASSERT_TRUE(reservation.Reserve(kDefaultPuddleSpaceBase, kSpace).ok());
  auto r1 = reservation.AllocateRange(1 << 20);
  auto r2 = reservation.AllocateRange(1 << 20);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_NE(*r1, *r2);
  // Ranges must not overlap.
  uintptr_t lo = std::min(*r1, *r2);
  uintptr_t hi = std::max(*r1, *r2);
  EXPECT_GE(hi, lo + (1 << 20));
}

TEST(ReservationTest, ClaimSpecificRange) {
  AddressReservation reservation;
  ASSERT_TRUE(reservation.Reserve(kDefaultPuddleSpaceBase, kSpace).ok());
  uintptr_t target = reservation.base() + (8 << 20);
  ASSERT_TRUE(reservation.ClaimRange(target, 1 << 20).ok());
  EXPECT_FALSE(reservation.RangeFree(target, 1 << 20));
  // Overlapping claim fails.
  EXPECT_FALSE(reservation.ClaimRange(target + 4096, 4096).ok());
  // AllocateRange must route around it.
  auto r = reservation.AllocateRange(16 << 20);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r + (16 << 20) <= target || *r >= target + (1 << 20));
}

TEST(ReservationTest, FreeRangeAllowsReclaim) {
  AddressReservation reservation;
  ASSERT_TRUE(reservation.Reserve(kDefaultPuddleSpaceBase, kSpace).ok());
  auto r = reservation.AllocateRange(1 << 20);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(reservation.FreeRange(*r).ok());
  EXPECT_TRUE(reservation.RangeFree(*r, 1 << 20));
  ASSERT_TRUE(reservation.ClaimRange(*r, 1 << 20).ok());
}

TEST(ReservationTest, ExhaustionReported) {
  AddressReservation reservation;
  ASSERT_TRUE(reservation.Reserve(kDefaultPuddleSpaceBase, 1 << 20).ok());
  ASSERT_TRUE(reservation.AllocateRange(1 << 20).ok());
  auto r = reservation.AllocateRange(4096);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), puddles::StatusCode::kOutOfMemory);
}

TEST(ReservationTest, MapFileIntoReservation) {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / ("resv_test_" + std::to_string(::getpid()));
  fs::create_directories(dir);

  AddressReservation reservation;
  ASSERT_TRUE(reservation.Reserve(kDefaultPuddleSpaceBase, kSpace).ok());

  constexpr size_t kFileSize = 2 << 20;
  auto file = PmemFile::Create((dir / "pud.bin").string(), kFileSize);
  ASSERT_TRUE(file.ok());

  auto range = reservation.AllocateRange(kFileSize);
  ASSERT_TRUE(range.ok());
  ASSERT_TRUE(reservation.MapFileAt(file->fd(), *range, kFileSize, /*writable=*/true).ok());

  auto* data = reinterpret_cast<uint8_t*>(*range);
  std::memset(data, 0x3c, kFileSize);
  EXPECT_EQ(data[kFileSize - 1], 0x3c);

  // Unmapping returns the range to PROT_NONE but keeps it claimed.
  ASSERT_TRUE(reservation.UnmapToReserved(*range, kFileSize).ok());
  EXPECT_FALSE(reservation.RangeFree(*range, kFileSize));

  // Remap and verify contents survived in the file.
  ASSERT_TRUE(reservation.MapFileAt(file->fd(), *range, kFileSize, /*writable=*/true).ok());
  EXPECT_EQ(data[100], 0x3c);

  fs::remove_all(dir);
}

TEST(ReservationTest, MapOutsideClaimFails) {
  AddressReservation reservation;
  ASSERT_TRUE(reservation.Reserve(kDefaultPuddleSpaceBase, kSpace).ok());
  // No claim at base: mapping must be refused.
  EXPECT_FALSE(reservation.MapFileAt(-1, reservation.base(), 4096, true).ok());
}

}  // namespace
}  // namespace pmem
