#include "src/common/align.h"

#include <gtest/gtest.h>

namespace puddles {
namespace {

TEST(AlignTest, PowerOfTwo) {
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(2));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_TRUE(IsPowerOfTwo(1ULL << 40));
  EXPECT_FALSE(IsPowerOfTwo((1ULL << 40) + 1));
}

TEST(AlignTest, AlignUpDown) {
  EXPECT_EQ(AlignUp(0, 64), 0u);
  EXPECT_EQ(AlignUp(1, 64), 64u);
  EXPECT_EQ(AlignUp(64, 64), 64u);
  EXPECT_EQ(AlignUp(65, 64), 128u);
  EXPECT_EQ(AlignDown(0, 64), 0u);
  EXPECT_EQ(AlignDown(63, 64), 0u);
  EXPECT_EQ(AlignDown(64, 64), 64u);
  EXPECT_EQ(AlignDown(127, 64), 64u);
}

TEST(AlignTest, IsAligned) {
  EXPECT_TRUE(IsAligned(uint64_t{0}, 4096));
  EXPECT_TRUE(IsAligned(uint64_t{8192}, 4096));
  EXPECT_FALSE(IsAligned(uint64_t{8193}, 4096));
  int x;
  alignas(64) char aligned_buf[64];
  EXPECT_TRUE(IsAligned(static_cast<const void*>(aligned_buf), 64));
  (void)x;
}

TEST(AlignTest, Log2) {
  EXPECT_EQ(Log2Floor(1), 0);
  EXPECT_EQ(Log2Floor(2), 1);
  EXPECT_EQ(Log2Floor(3), 1);
  EXPECT_EQ(Log2Floor(1ULL << 35), 35);
  EXPECT_EQ(Log2Ceil(1), 0);
  EXPECT_EQ(Log2Ceil(3), 2);
  EXPECT_EQ(Log2Ceil(4), 2);
  EXPECT_EQ(Log2Ceil(5), 3);
}

TEST(AlignTest, NextPowerOfTwo) {
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(2), 2u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(255), 256u);
  EXPECT_EQ(NextPowerOfTwo(257), 512u);
}

TEST(AlignTest, Constants) {
  EXPECT_EQ(kCacheLineSize, 64u);
  EXPECT_EQ(kPageSize, 4096u);
}

}  // namespace
}  // namespace puddles
