// Telemetry subsystem tests: histogram correctness against a sorted-vector
// oracle, exact multi-threaded counter aggregation (run under TSan in CI's
// concurrency job), trace-ring bounds and Chrome-trace structure, the
// PersistObserver/stats double-hook contract, and the daemon STATS opcode.
#include "src/stats/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "src/daemon/client.h"
#include "src/daemon/daemon.h"
#include "src/daemon/protocol.h"
#include "src/pmem/flush.h"
#include "src/stats/histogram.h"
#include "src/stats/trace_ring.h"

namespace puddles {
namespace stats {
namespace {

// Deterministic 64-bit LCG (MMIX constants): the tests need a value stream,
// not statistical quality.
class Lcg {
 public:
  explicit Lcg(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return state_ >> 16;
  }

 private:
  uint64_t state_;
};

// Mirrors Histogram::ValueAtPercentile's target-rank rule on raw samples.
uint64_t OraclePercentile(std::vector<uint64_t> sorted, double p) {
  const uint64_t count = sorted.size();
  uint64_t target = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count) + 0.5);
  if (target == 0) target = 1;
  if (target > count) target = count;
  return sorted[target - 1];
}

TEST(BucketScale, SmallValuesExactAndBoundsInvert) {
  for (uint64_t v = 0; v < BucketScale::kSubBuckets; ++v) {
    EXPECT_EQ(BucketScale::BucketFor(v), v);
    EXPECT_EQ(BucketScale::BucketLowerBound(v), v);
    EXPECT_EQ(BucketScale::BucketMidpoint(v), v);
  }
  // Every bucket's lower bound maps back to that bucket, and bucket indexes
  // are monotonic in the value.
  for (size_t b = 0; b < BucketScale::kNumBuckets - 1; ++b) {
    const uint64_t lo = BucketScale::BucketLowerBound(b);
    EXPECT_EQ(BucketScale::BucketFor(lo), b) << "bucket " << b;
  }
  EXPECT_LT(BucketScale::BucketFor(999), BucketScale::BucketFor(100000));
  EXPECT_EQ(BucketScale::BucketFor(~0ULL), BucketScale::kNumBuckets - 1);
}

TEST(Histogram, PercentilesMatchSortedVectorOracle) {
  Histogram hist;
  std::vector<uint64_t> values;
  Lcg rng(42);
  for (int i = 0; i < 20000; ++i) {
    // Mix of octaves: ~100ns..10ms-scale latencies plus a heavy tail.
    uint64_t v = 100 + rng.Next() % 1000;
    if (i % 100 == 0) v = 100000 + rng.Next() % 10000000;
    values.push_back(v);
    hist.Record(v);
  }
  ASSERT_EQ(hist.count(), values.size());
  uint64_t sum = 0, max = 0;
  for (uint64_t v : values) {
    sum += v;
    max = std::max(max, v);
  }
  EXPECT_EQ(hist.sum(), sum);
  EXPECT_EQ(hist.max(), max);

  std::sort(values.begin(), values.end());
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    const uint64_t oracle = OraclePercentile(values, p);
    const uint64_t approx = hist.ValueAtPercentile(p);
    // Log-bucket quantization: 1/32 bucket width, halved by the midpoint
    // representative — 4% covers it with margin.
    EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(oracle),
                static_cast<double>(oracle) * 0.04 + 1.0)
        << "p" << p;
  }
}

TEST(Histogram, MergeEqualsRecordingEverythingInOne) {
  Histogram a, b, combined;
  Lcg rng(7);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = 1 + rng.Next() % 1000000;
    (i % 2 == 0 ? a : b).Record(v);
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.max(), combined.max());
  for (double p : {50.0, 90.0, 99.0, 99.9}) {
    EXPECT_EQ(a.ValueAtPercentile(p), combined.ValueAtPercentile(p)) << "p" << p;
  }
}

TEST(Histogram, AtomicMergeIntoIsExact) {
  AtomicHistogram atomic;
  Histogram plain;
  Lcg rng(99);
  for (int i = 0; i < 3000; ++i) {
    const uint64_t v = rng.Next() % 100000;
    atomic.Record(v);
    plain.Record(v);
  }
  Histogram out;
  atomic.MergeInto(&out);
  EXPECT_EQ(out.count(), plain.count());
  EXPECT_EQ(out.sum(), plain.sum());
  EXPECT_EQ(out.max(), plain.max());
  EXPECT_EQ(out.p99(), plain.p99());
}

TEST(Clocks, TicksConvertToPlausibleNanos) {
  const uint64_t t0 = NowTicks();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const uint64_t elapsed_ns = TicksToNanos(NowTicks() - t0);
  EXPECT_GT(elapsed_ns, 10u * 1000 * 1000);   // > 10 ms
  EXPECT_LT(elapsed_ns, 10ULL * 1000 * 1000 * 1000);  // < 10 s
}

// 8 writer threads hammer counters and histograms through the same TLS fast
// path production code uses; after join, Aggregate() must be EXACT (the
// retire-on-thread-exit fold plus live-slot sums lose nothing). This test is
// the TSan witness for the relaxed-atomics design.
TEST(ThreadedAggregation, SnapshotEqualsSumAfterJoin) {
  ResetForTesting();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  const Snapshot before = Aggregate();

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        Add(Counter::kTxBegin, 1);
        Add(Counter::kLogBytes, 64);
        if (i % 3 == 0) {
          Add(Counter::kTxAbort, 1);
        }
        Record(Hist::kTxCommitTicks, 100 + (i % 1000));
        AddDaemonOp(static_cast<uint32_t>(t) % kMaxDaemonOps);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }

  const Snapshot delta = Delta(Aggregate(), before);
  EXPECT_EQ(delta.counter(Counter::kTxBegin), kThreads * kPerThread);
  EXPECT_EQ(delta.counter(Counter::kLogBytes), kThreads * kPerThread * 64);
  // i % 3 == 0 hits for i in {0, 3, ...}: ceil(kPerThread / 3) per thread.
  EXPECT_EQ(delta.counter(Counter::kTxAbort), kThreads * ((kPerThread + 2) / 3));
  const Histogram& hist = delta.hist(Hist::kTxCommitTicks);
  EXPECT_EQ(hist.count(), kThreads * kPerThread);
  uint64_t expected_sum = 0;
  for (uint64_t i = 0; i < kPerThread; ++i) {
    expected_sum += 100 + (i % 1000);
  }
  EXPECT_EQ(hist.sum(), kThreads * expected_sum);
  uint64_t op_total = 0;
  for (size_t i = 0; i < kMaxDaemonOps; ++i) {
    op_total += delta.daemon_ops[i];
  }
  EXPECT_EQ(op_total, kThreads * kPerThread);
  // All 8 writers have exited; their totals live in the retired accumulator.
  EXPECT_GE(Aggregate().retired_threads, static_cast<uint64_t>(kThreads));
}

// A PersistObserver and the stats counters hook the same Flush/Fence stream;
// both must see it, and hooking one must not disturb the other (observer
// callbacks fire once per call, stats counts match ReadPersistStats deltas).
class CountingObserver : public pmem::PersistObserver {
 public:
  void OnFlushRange(const void*, size_t) override { ++flush_ranges_; }
  void OnFence() override { ++fences_; }
  uint64_t flush_ranges_ = 0;
  uint64_t fences_ = 0;
};

TEST(DoubleHook, ObserverAndStatsCountTheSameStream) {
  alignas(64) static uint8_t buffer[1024];
  CountingObserver observer;
  const pmem::PersistStats persist_before = pmem::ReadPersistStats();
  const Snapshot stats_before = Aggregate();

  pmem::SetPersistObserver(&observer);
  for (int i = 0; i < 10; ++i) {
    pmem::Flush(buffer, sizeof(buffer));
    pmem::Fence();
  }
  pmem::SetPersistObserver(nullptr);

  const pmem::PersistStats persist_after = pmem::ReadPersistStats();
  EXPECT_EQ(observer.flush_ranges_, 10u);
  EXPECT_EQ(observer.fences_, 10u);
  EXPECT_EQ(persist_after.flush_calls - persist_before.flush_calls, 10u);
  EXPECT_EQ(persist_after.fences - persist_before.fences, 10u);

#if PUDDLES_STATS
  const Snapshot delta = Delta(Aggregate(), stats_before);
  EXPECT_EQ(delta.counter(Counter::kFlushCalls), 10u);
  EXPECT_EQ(delta.counter(Counter::kFences), 10u);
  EXPECT_EQ(delta.counter(Counter::kFlushLinesPublished), 10u * (sizeof(buffer) / 64));
#else
  (void)stats_before;
#endif
}

TEST(TraceRing, OverwritesOldestAndStaysBounded) {
  ResetTraceForTesting();
  const uint64_t kPushes = kTraceRingCap + 500;
  for (uint64_t i = 0; i < kPushes; ++i) {
    PushSpan("overflow_span", i, 1);
  }
  TraceRing& ring = internal::Ring();
  EXPECT_EQ(ring.pushed() % kTraceRingCap, kPushes % kTraceRingCap);
  EXPECT_EQ(ring.size(), kTraceRingCap);  // Bounded: old events overwritten.
}

TEST(TraceRing, ChromeExportIsStructurallyValid) {
  ResetTraceForTesting();
  {
    PUDDLES_TRACE_SPAN("test_span_a");
    PUDDLES_TRACE_SPAN("test_span_b");
  }
  PushSpan("test_span_c", NowTicks(), 42);

  std::string json;
  const size_t events = WriteChromeTrace(&json);
#if PUDDLES_STATS
  EXPECT_GE(events, 3u);
  EXPECT_NE(json.find("test_span_a"), std::string::npos);
  EXPECT_NE(json.find("test_span_c"), std::string::npos);
#else
  EXPECT_GE(events, 1u);  // PushSpan called directly still lands.
#endif
  // Chrome Trace Event envelope: object with displayTimeUnit and a
  // traceEvents array of "X" (complete) events.
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
  // Balanced braces/brackets (no parser available; structural smoke).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));

  // Events from exited threads survive into the export.
  std::thread([] { PushSpan("retired_thread_span", NowTicks(), 7); }).join();
  WriteChromeTrace(&json);
  EXPECT_NE(json.find("retired_thread_span"), std::string::npos);
}

TEST(TraceRing, WriteChromeTraceFileRoundTrips) {
  ResetTraceForTesting();
  PushSpan("file_span", NowTicks(), 5);
  const std::string path =
      (std::filesystem::temp_directory_path() / "puddles_trace_test.json").string();
  ASSERT_TRUE(WriteChromeTraceFile(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char head[16] = {};
  ASSERT_GT(std::fread(head, 1, sizeof(head) - 1, f), 0u);
  std::fclose(f);
  std::filesystem::remove(path);
  EXPECT_EQ(std::string(head).rfind("{\"display", 0), 0u);
}

class StatsOpcodeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("puddles_stats_test_" + std::to_string(::getpid()));
    std::filesystem::remove_all(root_);
    auto daemon = puddled::Daemon::Start({.root_dir = root_.string()});
    ASSERT_TRUE(daemon.ok()) << daemon.status().ToString();
    daemon_ = std::move(*daemon);
  }
  void TearDown() override {
    daemon_.reset();
    std::filesystem::remove_all(root_);
  }

  std::filesystem::path root_;
  std::unique_ptr<puddled::Daemon> daemon_;
};

TEST_F(StatsOpcodeTest, DispatchReturnsDecodableSelfCountingReport) {
  WireWriter request;
  request.PutU32(static_cast<uint32_t>(puddled::Op::kStats));
  auto out = puddled::DispatchRequest(*daemon_, puddled::Credentials::Self(),
                                      request.bytes());
  EXPECT_EQ(out.fd, -1);

  WireReader reader(out.response);
  Status status;
  ASSERT_TRUE(reader.GetStatus(&status).ok());
  ASSERT_TRUE(status.ok()) << status.ToString();
  puddled::StatsReport report;
  ASSERT_TRUE(puddled::DecodeStatsReport(&reader, &report).ok());

  ASSERT_EQ(report.counters.size(), kNumCounters);
  ASSERT_EQ(report.hists.size(), kNumHists);
  uint64_t daemon_requests = 0;
  for (const auto& [name, value] : report.counters) {
    if (name == "daemon_request") {
      daemon_requests = value;
    }
  }
#if PUDDLES_STATS
  // The dispatch bumps before snapshotting, so the request observes itself.
  EXPECT_GE(daemon_requests, 1u);
  bool found_stats_op = false;
  for (const auto& [name, value] : report.daemon_ops) {
    if (name == "stats") {
      found_stats_op = true;
      EXPECT_GE(value, 1u);
    }
  }
  EXPECT_TRUE(found_stats_op);
#else
  EXPECT_EQ(daemon_requests, 0u);
#endif
  for (const puddled::StatsHistRow& row : report.hists) {
    EXPECT_LE(row.p50_ns, row.p99_ns) << row.name;
    EXPECT_LE(row.p99_ns, row.max_ns) << row.name;
  }
}

TEST_F(StatsOpcodeTest, EmbeddedClientFetchStats) {
  puddled::EmbeddedDaemonClient client(daemon_.get());
  ASSERT_TRUE(client.Ping().ok());
  auto report = client.FetchStats();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->counters.size(), kNumCounters);
  EXPECT_EQ(report->hists.size(), kNumHists);
}

TEST_F(StatsOpcodeTest, UnknownOpStillRejected) {
  WireWriter request;
  request.PutU32(999);
  auto out = puddled::DispatchRequest(*daemon_, puddled::Credentials::Self(),
                                      request.bytes());
  WireReader reader(out.response);
  Status status;
  ASSERT_TRUE(reader.GetStatus(&status).ok());
  EXPECT_FALSE(status.ok());
}

TEST(StatsReportWire, EncodeDecodeRoundTrip) {
  puddled::StatsReport report;
  report.live_threads = 3;
  report.retired_threads = 9;
  report.counters = {{"tx_begin", 17}, {"fences", 0}};
  report.daemon_ops = {{"ping", 2}};
  report.hists = {{"tx_commit_ns", 100, 123456, 10, 20, 30, 40, 50}};

  WireWriter writer;
  puddled::EncodeStatsReport(&writer, report);
  std::vector<uint8_t> bytes = writer.Take();
  WireReader reader(bytes);
  puddled::StatsReport decoded;
  ASSERT_TRUE(puddled::DecodeStatsReport(&reader, &decoded).ok());
  EXPECT_EQ(decoded.live_threads, 3u);
  EXPECT_EQ(decoded.retired_threads, 9u);
  ASSERT_EQ(decoded.counters.size(), 2u);
  EXPECT_EQ(decoded.counters[0].first, "tx_begin");
  EXPECT_EQ(decoded.counters[0].second, 17u);
  ASSERT_EQ(decoded.daemon_ops.size(), 1u);
  EXPECT_EQ(decoded.daemon_ops[0].first, "ping");
  ASSERT_EQ(decoded.hists.size(), 1u);
  EXPECT_EQ(decoded.hists[0].name, "tx_commit_ns");
  EXPECT_EQ(decoded.hists[0].sum_ns, 123456u);
  EXPECT_EQ(decoded.hists[0].max_ns, 50u);
}

TEST(CounterNames, CatalogIsCompleteAndStable) {
  for (size_t i = 0; i < kNumCounters; ++i) {
    const char* name = CounterName(static_cast<Counter>(i));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::string(name).size(), 0u);
  }
  EXPECT_STREQ(CounterName(Counter::kTxCommit), "tx_commit");
  EXPECT_STREQ(CounterName(Counter::kFences), "fences");
  EXPECT_STREQ(HistName(Hist::kTxCommitTicks), "tx_commit_ns");
  EXPECT_STREQ(puddled::OpName(puddled::Op::kStats), "stats");
}

}  // namespace
}  // namespace stats
}  // namespace puddles
