#include "src/puddles/format.h"

#include <gtest/gtest.h>

#include <vector>

namespace puddles {
namespace {

PuddleParams DataParams(size_t heap = 1 << 20) {
  PuddleParams params;
  params.kind = PuddleKind::kData;
  params.heap_size = heap;
  params.uuid = Uuid::Generate();
  params.base_addr = 0x10000000000ULL;
  return params;
}

TEST(PuddleFormatTest, FileSizeIncludesMetaForDataPuddles) {
  size_t data_size = Puddle::FileSizeFor(PuddleKind::kData, 1 << 20);
  size_t log_size = Puddle::FileSizeFor(PuddleKind::kLog, 1 << 20);
  EXPECT_GT(data_size, log_size) << "data puddles carry allocator metadata";
  EXPECT_EQ(log_size, kPuddleHeaderPage + (1 << 20));
}

TEST(PuddleFormatTest, HeaderOverheadIsSmall) {
  // Paper §4.3: ~0.2% metadata overhead; ours is bounded at ~1% (DESIGN.md).
  size_t heap = kDefaultHeapSize;
  size_t file = Puddle::FileSizeFor(PuddleKind::kData, heap);
  EXPECT_LT(file - heap, heap / 100);
}

TEST(PuddleFormatTest, FormatAttachRoundTrip) {
  PuddleParams params = DataParams();
  size_t file_size = Puddle::FileSizeFor(params.kind, params.heap_size);
  std::vector<uint8_t> file(file_size);
  ASSERT_TRUE(Puddle::Format(file.data(), file_size, params).ok());

  auto puddle = Puddle::Attach(file.data(), file_size);
  ASSERT_TRUE(puddle.ok()) << puddle.status().ToString();
  EXPECT_EQ(puddle->uuid(), params.uuid);
  EXPECT_EQ(puddle->kind(), PuddleKind::kData);
  EXPECT_EQ(puddle->heap_size(), params.heap_size);
  EXPECT_EQ(puddle->base_addr(), params.base_addr);
  EXPECT_FALSE(puddle->needs_rewrite());
  EXPECT_EQ(puddle->heap(), file.data() + puddle->header()->heap_offset);
}

TEST(PuddleFormatTest, DataPuddleHasWorkingObjectHeap) {
  PuddleParams params = DataParams();
  size_t file_size = Puddle::FileSizeFor(params.kind, params.heap_size);
  std::vector<uint8_t> file(file_size);
  ASSERT_TRUE(Puddle::Format(file.data(), file_size, params).ok());
  auto puddle = Puddle::Attach(file.data(), file_size);
  ASSERT_TRUE(puddle.ok());

  auto heap = puddle->object_heap();
  ASSERT_TRUE(heap.ok()) << heap.status().ToString();
  auto obj = heap->Allocate(100, kRawBytesTypeId);
  ASSERT_TRUE(obj.ok());
  EXPECT_TRUE(heap->IsLiveObject(*obj));
  EXPECT_EQ(heap->heap_base(), puddle->heap());
}

TEST(PuddleFormatTest, LogPuddleHasNoObjectHeap) {
  PuddleParams params = DataParams();
  params.kind = PuddleKind::kLog;
  size_t file_size = Puddle::FileSizeFor(params.kind, params.heap_size);
  std::vector<uint8_t> file(file_size);
  ASSERT_TRUE(Puddle::Format(file.data(), file_size, params).ok());
  auto puddle = Puddle::Attach(file.data(), file_size);
  ASSERT_TRUE(puddle.ok());
  EXPECT_FALSE(puddle->object_heap().ok());
}

TEST(PuddleFormatTest, AttachRejectsCorruption) {
  PuddleParams params = DataParams();
  size_t file_size = Puddle::FileSizeFor(params.kind, params.heap_size);
  std::vector<uint8_t> file(file_size);
  ASSERT_TRUE(Puddle::Format(file.data(), file_size, params).ok());

  EXPECT_FALSE(Puddle::Attach(file.data(), file_size - 4096).ok());  // Size mismatch.
  file[0] ^= 0x1;                                                    // Magic corruption.
  EXPECT_FALSE(Puddle::Attach(file.data(), file_size).ok());
}

TEST(PuddleFormatTest, FormatRejectsBadGeometry) {
  PuddleParams params = DataParams();
  params.heap_size = (1 << 20) + 4096;  // Not a power of two.
  std::vector<uint8_t> file(4 << 20);
  EXPECT_FALSE(Puddle::Format(file.data(), file.size(), params).ok());

  params = DataParams();
  params.uuid = Uuid::Nil();
  EXPECT_FALSE(
      Puddle::Format(file.data(), Puddle::FileSizeFor(params.kind, params.heap_size), params)
          .ok());
}

TEST(PuddleFormatTest, AssignNewBaseRecordsRelocationState) {
  PuddleParams params = DataParams();
  size_t file_size = Puddle::FileSizeFor(params.kind, params.heap_size);
  std::vector<uint8_t> file(file_size);
  ASSERT_TRUE(Puddle::Format(file.data(), file_size, params).ok());
  auto puddle = Puddle::Attach(file.data(), file_size);
  ASSERT_TRUE(puddle.ok());

  const uint64_t old_base = puddle->base_addr();
  const uint64_t new_base = old_base + (16 << 20);
  puddle->AssignNewBase(new_base);
  EXPECT_TRUE(puddle->needs_rewrite());
  EXPECT_EQ(puddle->base_addr(), new_base);
  EXPECT_EQ(puddle->header()->prev_base_addr, old_base);

  puddle->CompleteRewrite();
  EXPECT_FALSE(puddle->needs_rewrite());
  EXPECT_EQ(puddle->header()->prev_base_addr, 0u);
  EXPECT_EQ(puddle->base_addr(), new_base);
}

TEST(PuddleFormatTest, RewriteFrontierLifecycle) {
  PuddleParams params = DataParams();
  size_t file_size = Puddle::FileSizeFor(params.kind, params.heap_size);
  std::vector<uint8_t> file(file_size);
  ASSERT_TRUE(Puddle::Format(file.data(), file_size, params).ok());
  auto puddle = Puddle::Attach(file.data(), file_size);
  ASSERT_TRUE(puddle.ok());
  EXPECT_EQ(puddle->rewrite_frontier(), 0u) << "fresh puddles start at zero";

  puddle->AssignNewBase(puddle->base_addr() + (16 << 20));
  EXPECT_EQ(puddle->rewrite_frontier(), 0u);
  puddle->AdvanceRewriteFrontier(42);
  EXPECT_EQ(puddle->rewrite_frontier(), 42u);
  EXPECT_TRUE(puddle->needs_rewrite()) << "advancing progress keeps the obligation";

  // A second relocation (re-import of a mid-rewrite export) restarts the walk.
  puddle->AssignNewBase(puddle->base_addr() + (32 << 20));
  EXPECT_EQ(puddle->rewrite_frontier(), 0u);

  puddle->AdvanceRewriteFrontier(7);
  puddle->CompleteRewrite();
  EXPECT_FALSE(puddle->needs_rewrite());
  EXPECT_EQ(puddle->rewrite_frontier(), 0u) << "completion resets the frontier";

  // The frontier survives a detach/attach cycle (it is header state, not
  // process state).
  puddle->AssignNewBase(puddle->base_addr() + (48 << 20));
  puddle->AdvanceRewriteFrontier(9);
  auto reattached = Puddle::Attach(file.data(), file_size);
  ASSERT_TRUE(reattached.ok());
  EXPECT_TRUE(reattached->needs_rewrite());
  EXPECT_EQ(reattached->rewrite_frontier(), 9u);
}

TEST(PuddleFormatTest, AttachRejectsVersionMismatch) {
  PuddleParams params = DataParams();
  size_t file_size = Puddle::FileSizeFor(params.kind, params.heap_size);
  std::vector<uint8_t> file(file_size);
  ASSERT_TRUE(Puddle::Format(file.data(), file_size, params).ok());
  auto* header = reinterpret_cast<PuddleHeader*>(file.data());
  EXPECT_EQ(header->version, kPuddleVersion);
  header->version = 1;  // Pre-frontier layout: no in-place upgrade.
  EXPECT_FALSE(Puddle::Attach(file.data(), file_size).ok());
}

TEST(PuddleFormatTest, HeapAddrAtBaseUsesAssignedBase) {
  PuddleParams params = DataParams();
  size_t file_size = Puddle::FileSizeFor(params.kind, params.heap_size);
  std::vector<uint8_t> file(file_size);
  ASSERT_TRUE(Puddle::Format(file.data(), file_size, params).ok());
  auto puddle = Puddle::Attach(file.data(), file_size);
  ASSERT_TRUE(puddle.ok());
  EXPECT_EQ(puddle->heap_addr_at_base(),
            params.base_addr + puddle->header()->heap_offset);
}

}  // namespace
}  // namespace puddles
