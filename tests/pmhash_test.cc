#include "src/pmhash/pmhash.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/uuid.h"
#include "src/pmem/shadow.h"

namespace puddles {
namespace {

struct Record {
  uint64_t a;
  uint64_t b;
  bool operator==(const Record&) const = default;
};

using Map = PersistentHashMap<uint64_t, Record>;

class PmHashTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kCapacity = 256;

  void SetUp() override {
    buffer_.resize(Map::RequiredBytes(kCapacity));
    ASSERT_TRUE(Map::Format(buffer_.data(), buffer_.size(), kCapacity).ok());
    auto map = Map::Attach(buffer_.data(), buffer_.size());
    ASSERT_TRUE(map.ok());
    map_ = std::make_unique<Map>(std::move(*map));
  }

  void TearDown() override {
    pmhash_internal::g_after_fence_hook = nullptr;
    pmem::ShadowRegistry::Instance().DetachAll();
  }

  Map Reattach() {
    auto map = Map::Attach(buffer_.data(), buffer_.size());
    EXPECT_TRUE(map.ok());
    return std::move(*map);
  }

  std::vector<uint8_t> buffer_;
  std::unique_ptr<Map> map_;
};

TEST_F(PmHashTest, PutGetRoundTrip) {
  ASSERT_TRUE(map_->Put(42, {1, 2}).ok());
  auto got = map_->Get(42);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, (Record{1, 2}));
  EXPECT_FALSE(map_->Get(43).ok());
  EXPECT_EQ(map_->size(), 1u);
}

TEST_F(PmHashTest, PutOverwrites) {
  ASSERT_TRUE(map_->Put(7, {1, 1}).ok());
  ASSERT_TRUE(map_->Put(7, {2, 2}).ok());
  EXPECT_EQ(map_->size(), 1u);
  EXPECT_EQ(map_->Get(7)->a, 2u);
}

TEST_F(PmHashTest, EraseRemoves) {
  ASSERT_TRUE(map_->Put(1, {9, 9}).ok());
  ASSERT_TRUE(map_->Erase(1).ok());
  EXPECT_FALSE(map_->Contains(1));
  EXPECT_EQ(map_->size(), 0u);
  EXPECT_FALSE(map_->Erase(1).ok());
}

TEST_F(PmHashTest, ReuseAfterEraseViaTombstones) {
  // Fill past capacity/2 with interleaved erases; tombstones must be reused.
  for (uint64_t i = 0; i < 180; ++i) {
    ASSERT_TRUE(map_->Put(i, {i, i}).ok()) << i;
  }
  for (uint64_t i = 0; i < 180; i += 2) {
    ASSERT_TRUE(map_->Erase(i).ok());
  }
  for (uint64_t i = 1000; i < 1080; ++i) {
    ASSERT_TRUE(map_->Put(i, {i, i}).ok()) << i;
  }
  for (uint64_t i = 1; i < 180; i += 2) {
    ASSERT_TRUE(map_->Contains(i)) << i;
  }
  for (uint64_t i = 1000; i < 1080; ++i) {
    EXPECT_EQ(map_->Get(i)->a, i);
  }
}

TEST_F(PmHashTest, FullTableReports) {
  uint64_t inserted = 0;
  for (uint64_t i = 0; i < kCapacity; ++i) {
    if (!map_->Put(i, {i, i}).ok()) {
      break;
    }
    ++inserted;
  }
  EXPECT_GE(inserted, kCapacity * 8 / 10);
  EXPECT_LT(inserted, kCapacity);  // Load-factor guard must kick in.
}

TEST_F(PmHashTest, PersistsAcrossReattach) {
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(map_->Put(i * 3, {i, i * 2}).ok());
  }
  Map reattached = Reattach();
  EXPECT_EQ(reattached.size(), 100u);
  for (uint64_t i = 0; i < 100; ++i) {
    auto got = reattached.Get(i * 3);
    ASSERT_TRUE(got.ok()) << i;
    EXPECT_EQ(got->b, i * 2);
  }
}

TEST_F(PmHashTest, ForEachVisitsAll) {
  std::map<uint64_t, uint64_t> expected;
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(map_->Put(i * 7, {i, 0}).ok());
    expected[i * 7] = i;
  }
  std::map<uint64_t, uint64_t> seen;
  map_->ForEach([&](const uint64_t& k, const Record& v) { seen[k] = v.a; });
  EXPECT_EQ(seen, expected);
}

TEST_F(PmHashTest, UuidKeysWork) {
  using UuidMap = PersistentHashMap<Uuid, Record, UuidHash>;
  std::vector<uint8_t> buf(UuidMap::RequiredBytes(128));
  ASSERT_TRUE(UuidMap::Format(buf.data(), buf.size(), 128).ok());
  auto map = UuidMap::Attach(buf.data(), buf.size());
  ASSERT_TRUE(map.ok());
  Uuid id = Uuid::Generate();
  ASSERT_TRUE(map->Put(id, {5, 6}).ok());
  EXPECT_TRUE(map->Contains(id));
  EXPECT_FALSE(map->Contains(Uuid::Generate()));
}

// A table formatted with one value layout must refuse to attach as another:
// the header records sizeof(Slot), so schema drift (a grown record type,
// e.g. PtrMapRecord's repeat region) is an explicit format error rather
// than silent slot misinterpretation or a misleading capacity failure.
TEST_F(PmHashTest, AttachRejectsValueLayoutDrift) {
  struct WideRecord {
    uint64_t a;
    uint64_t b;
    uint64_t c;
  };
  using WideMap = PersistentHashMap<uint64_t, WideRecord>;
  using NarrowMap = PersistentHashMap<uint64_t, uint64_t>;
  std::vector<uint8_t> buf(WideMap::RequiredBytes(64));
  ASSERT_TRUE(NarrowMap::Format(buf.data(), buf.size(), 64).ok());
  ASSERT_TRUE(NarrowMap::Attach(buf.data(), buf.size()).ok());
  auto wide = WideMap::Attach(buf.data(), buf.size());
  ASSERT_FALSE(wide.ok());
  EXPECT_EQ(wide.status().code(), StatusCode::kDataLoss);
}

// ---- Crash atomicity ----
//
// Runs every mutation under the ShadowHeap simulator and injects a crash
// after the N-th fence inside the map. After the crash, Attach must observe
// either the pre-op or the post-op state — never a mix.

struct CrashAtFence {
  static int countdown;
  static void Hook() {
    if (countdown >= 0 && countdown-- == 0) {
      throw pmem::ShadowCrashOptions{};  // Any type works; caught below.
    }
  }
};
int CrashAtFence::countdown = -1;

class PmHashCrashTest : public ::testing::TestWithParam<int> {
 protected:
  void TearDown() override {
    pmhash_internal::g_after_fence_hook = nullptr;
    pmem::ShadowRegistry::Instance().DetachAll();
  }
};

TEST_P(PmHashCrashTest, UpdateIsAtomicUnderCrash) {
  std::vector<uint8_t> buffer(Map::RequiredBytes(64));
  ASSERT_TRUE(Map::Format(buffer.data(), buffer.size(), 64).ok());
  auto map = Map::Attach(buffer.data(), buffer.size());
  ASSERT_TRUE(map.ok());
  ASSERT_TRUE(map->Put(1, {10, 10}).ok());

  pmem::ScopedShadow shadow(buffer.data(), buffer.size());
  CrashAtFence::countdown = GetParam();
  pmhash_internal::g_after_fence_hook = &CrashAtFence::Hook;

  bool crashed = false;
  try {
    ASSERT_TRUE(map->Put(1, {20, 20}).ok());  // In-place update (journaled).
  } catch (const pmem::ShadowCrashOptions&) {
    crashed = true;
  }
  pmhash_internal::g_after_fence_hook = nullptr;
  pmem::ShadowRegistry::Instance().SimulateCrash();

  auto recovered = Map::Attach(buffer.data(), buffer.size());
  ASSERT_TRUE(recovered.ok());
  auto got = recovered->Get(1);
  ASSERT_TRUE(got.ok()) << "key must never disappear during an update";
  EXPECT_TRUE(*got == (Record{10, 10}) || *got == (Record{20, 20}))
      << "torn update: a=" << got->a << " (crashed=" << crashed << ")";
}

TEST_P(PmHashCrashTest, InsertIsAtomicUnderCrash) {
  std::vector<uint8_t> buffer(Map::RequiredBytes(64));
  ASSERT_TRUE(Map::Format(buffer.data(), buffer.size(), 64).ok());
  auto map = Map::Attach(buffer.data(), buffer.size());
  ASSERT_TRUE(map.ok());

  pmem::ScopedShadow shadow(buffer.data(), buffer.size());
  CrashAtFence::countdown = GetParam();
  pmhash_internal::g_after_fence_hook = &CrashAtFence::Hook;
  try {
    ASSERT_TRUE(map->Put(5, {50, 51}).ok());
  } catch (const pmem::ShadowCrashOptions&) {
  }
  pmhash_internal::g_after_fence_hook = nullptr;
  pmem::ShadowRegistry::Instance().SimulateCrash();

  auto recovered = Map::Attach(buffer.data(), buffer.size());
  ASSERT_TRUE(recovered.ok());
  if (recovered->Contains(5)) {
    EXPECT_EQ(*recovered->Get(5), (Record{50, 51})) << "insert must be all-or-nothing";
  }
}

INSTANTIATE_TEST_SUITE_P(FencePoints, PmHashCrashTest, ::testing::Range(0, 6));

// Randomized history test: interleave mutations with crashes; committed
// operations (those that returned) must all survive.
TEST(PmHashCrashHistoryTest, CommittedOpsSurviveRandomCrashes) {
  std::vector<uint8_t> buffer(Map::RequiredBytes(512));
  ASSERT_TRUE(Map::Format(buffer.data(), buffer.size(), 512).ok());
  pmem::ScopedShadow shadow(buffer.data(), buffer.size());

  Xoshiro256 rng(99);
  std::map<uint64_t, Record> model;
  auto map = Map::Attach(buffer.data(), buffer.size());
  ASSERT_TRUE(map.ok());

  for (int round = 0; round < 30; ++round) {
    for (int op = 0; op < 20; ++op) {
      uint64_t key = rng.Below(300);
      if (rng.Below(100) < 70 || model.find(key) == model.end()) {
        Record value{rng(), rng()};
        if (map->Put(key, value).ok()) {
          model[key] = value;
        }
      } else {
        ASSERT_TRUE(map->Erase(key).ok());
        model.erase(key);
      }
    }
    // Crash with adversarial partial eviction and recover.
    pmem::ShadowCrashOptions options;
    options.evict_random_lines = true;
    options.seed = rng();
    pmem::ShadowRegistry::Instance().SimulateCrash(options);
    auto recovered = Map::Attach(buffer.data(), buffer.size());
    ASSERT_TRUE(recovered.ok());
    for (const auto& [key, value] : model) {
      auto got = recovered->Get(key);
      ASSERT_TRUE(got.ok()) << "round " << round << " lost key " << key;
      ASSERT_EQ(*got, value) << "round " << round << " corrupted key " << key;
    }
    map = std::move(*recovered);
  }
  pmem::ShadowRegistry::Instance().DetachAll();
}

}  // namespace
}  // namespace puddles
