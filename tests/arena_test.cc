// Per-thread slab arena tests — the concurrency-era allocator tier.
//
// The arena is the allocator's concurrency story: each thread owns slab
// pages with a lock-free local free list (no lock, no undo log on the hot
// path), refilled in batches from the shared heap and flushed back on
// thread exit or imbalance. These tests drive the full lifecycle (refill,
// flush-back, thread-exit orphan handoff, cross-thread free), prove exact
// leak accounting under an 8-thread malloc/free storm, and exercise the
// recovery-time GC that reclaims leaked in-flight blocks. The CI TSan job
// builds and runs this binary (`ctest -L concurrency`).
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <thread>
#include <vector>

#include "src/alloc/arena.h"
#include "src/daemon/client.h"
#include "src/daemon/daemon.h"
#include "src/libpuddles/libpuddles.h"
#include "src/stats/stats.h"
#include "src/tx/tx.h"

namespace puddles {
namespace {

namespace fs = std::filesystem;

constexpr int kStormThreads = 8;
constexpr int kStormRounds = 6;
constexpr int kStormBatch = 16;  // Allocations per round; all but one freed.

// 40 bytes + 16-byte header = 56 → the 64-byte slab class. No pointer
// fields, so reachability counts it without walking it.
struct Node {
  uint64_t value;
  uint64_t pad[4];
};

// One published slot per (thread, round); the pointer array registers as a
// repeat region so ReachableObjects() walks every slot.
struct ArenaRoot {
  Node* slots[kStormThreads * kStormRounds];
};

class ArenaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("arena_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    (void)TypeRegistry::Instance().Register<ArenaRoot>(&ArenaRoot::slots);
    Start(/*create=*/true);
  }

  void TearDown() override {
    runtime_.reset();
    daemon_.reset();
    fs::remove_all(dir_);
  }

  void Start(bool create) {
    auto started = puddled::Daemon::Start({.root_dir = (dir_ / "root").string()});
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    daemon_ = std::move(*started);
    auto rt = Runtime::Create(
        std::make_shared<puddled::EmbeddedDaemonClient>(daemon_.get()));
    ASSERT_TRUE(rt.ok()) << rt.status().ToString();
    runtime_ = std::move(*rt);
    auto pool = create ? runtime_->CreatePool("arena") : runtime_->OpenPool("arena");
    ASSERT_TRUE(pool.ok()) << pool.status().ToString();
    pool_ = *pool;
  }

  // Drops every in-DRAM handle without flushing arenas: the persistent image
  // is what a crash after the last commit would leave (active directory
  // entries, arena-owned slabs). Reopen gives recovery a cold pool.
  void ReopenWithoutFlush() {
    runtime_.reset();
    daemon_.reset();
    Start(/*create=*/false);
  }

  ArenaRoot* InitRoot() {
    ArenaRoot* root = nullptr;
    EXPECT_TRUE(pool_->Run([&](Tx& tx) -> puddles::Status {
      ASSIGN_OR_RETURN(root, tx.Alloc<ArenaRoot>());
      for (auto& slot : root->slots) {
        slot = nullptr;
      }
      return pool_->SetRoot(root);
    }).ok());
    return root;
  }

  size_t ReachableCount() {
    auto reachable = pool_->ReachableObjects();
    EXPECT_TRUE(reachable.ok()) << reachable.status().ToString();
    return reachable.ok() ? reachable->size() : 0;
  }

  fs::path dir_;
  std::unique_ptr<puddled::Daemon> daemon_;
  std::unique_ptr<Runtime> runtime_;
  Pool* pool_ = nullptr;
};

// Refill: the first small allocation pulls slabs from the shared heap in a
// batch; subsequent allocations in the class are served without touching it.
TEST_F(ArenaTest, RefillServesSmallAllocations) {
  ArenaRoot* root = InitRoot();
  ASSERT_TRUE(pool_->SetAllocMode(AllocMode::kArena, {.refill_slabs = 2}).ok());

  const stats::Snapshot before = stats::Aggregate();
  ASSERT_TRUE(pool_->Run([&](Tx& tx) -> puddles::Status {
    for (int i = 0; i < 8; ++i) {
      ASSIGN_OR_RETURN(Node * n, tx.Alloc<Node>());
      n->value = 100 + i;
      RETURN_IF_ERROR(tx.LogRange(&root->slots[i], sizeof(Node*)));
      root->slots[i] = n;
    }
    return OkStatus();
  }).ok());
  const stats::Snapshot delta = stats::Delta(stats::Aggregate(), before);

  using stats::Counter;
  EXPECT_EQ(delta.counters[static_cast<size_t>(Counter::kArenaAlloc)], 8u);
  EXPECT_GE(delta.counters[static_cast<size_t>(Counter::kArenaRefillSlabs)], 1u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(root->slots[i]->value, 100u + i);
  }
  EXPECT_EQ(ReachableCount(), 1u + 8u);
}

// Free returns the slot to the thread's local list; the next allocation in
// the class reuses it with no further refill from the shared heap.
TEST_F(ArenaTest, FreeFeedsLocalFreeList) {
  ArenaRoot* root = InitRoot();
  ASSERT_TRUE(pool_->SetAllocMode(AllocMode::kArena, {.refill_slabs = 1}).ok());

  Node* scratch = nullptr;
  ASSERT_TRUE(pool_->Run([&](Tx& tx) -> puddles::Status {
    ASSIGN_OR_RETURN(scratch, tx.Alloc<Node>());
    scratch->value = 7;
    return OkStatus();
  }).ok());

  const stats::Snapshot before = stats::Aggregate();
  ASSERT_TRUE(pool_->Run([&](Tx& tx) -> puddles::Status {
    return tx.Free(scratch);
  }).ok());
  ASSERT_TRUE(pool_->Run([&](Tx& tx) -> puddles::Status {
    ASSIGN_OR_RETURN(Node * n, tx.Alloc<Node>());
    n->value = 8;
    RETURN_IF_ERROR(tx.LogRange(&root->slots[0], sizeof(Node*)));
    root->slots[0] = n;
    return OkStatus();
  }).ok());
  const stats::Snapshot delta = stats::Delta(stats::Aggregate(), before);

  using stats::Counter;
  EXPECT_EQ(delta.counters[static_cast<size_t>(Counter::kArenaFree)], 1u);
  EXPECT_EQ(delta.counters[static_cast<size_t>(Counter::kArenaRefillSlabs)], 0u);
  EXPECT_EQ(root->slots[0]->value, 8u);
  EXPECT_EQ(ReachableCount(), 1u + 1u);
}

// An aborted transaction must leave no trace: directory claims, slab
// acquisitions, and slot pops all roll back — persistently via the undo log
// and in DRAM via the arena's abort hook.
TEST_F(ArenaTest, AbortRollsBackArenaState) {
  ArenaRoot* root = InitRoot();
  ASSERT_TRUE(pool_->SetAllocMode(AllocMode::kArena, {.refill_slabs = 2}).ok());
  const size_t baseline = ReachableCount();

  puddles::Status aborted = pool_->Run([&](Tx& tx) -> puddles::Status {
    for (int i = 0; i < 5; ++i) {
      ASSIGN_OR_RETURN(Node * n, tx.Alloc<Node>());
      n->value = 9000 + i;
      RETURN_IF_ERROR(tx.LogRange(&root->slots[i], sizeof(Node*)));
      root->slots[i] = n;
    }
    return InternalError("deliberate abort");
  });
  ASSERT_FALSE(aborted.ok());

  EXPECT_EQ(ReachableCount(), baseline);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(root->slots[i], nullptr);
  }

  // The rolled-back arena still serves allocations afterwards.
  ASSERT_TRUE(pool_->Run([&](Tx& tx) -> puddles::Status {
    ASSIGN_OR_RETURN(Node * n, tx.Alloc<Node>());
    n->value = 42;
    RETURN_IF_ERROR(tx.LogRange(&root->slots[0], sizeof(Node*)));
    root->slots[0] = n;
    return OkStatus();
  }).ok());
  EXPECT_EQ(ReachableCount(), baseline + 1);
  ASSERT_TRUE(pool_->FlushAllArenas().ok());
  EXPECT_EQ(root->slots[0]->value, 42u);
}

// Flush-back hands every arena slab to the shared heap (occupancy from the
// shadow bitmap), clears the directory entry, and leaves the pool fully
// usable under the global-lock allocator.
TEST_F(ArenaTest, FlushBackReturnsSlabsToGlobalHeap) {
  ArenaRoot* root = InitRoot();
  ASSERT_TRUE(pool_->SetAllocMode(AllocMode::kArena, {.refill_slabs = 2}).ok());

  ASSERT_TRUE(pool_->Run([&](Tx& tx) -> puddles::Status {
    for (int i = 0; i < 6; ++i) {
      ASSIGN_OR_RETURN(Node * n, tx.Alloc<Node>());
      n->value = 500 + i;
      RETURN_IF_ERROR(tx.LogRange(&root->slots[i], sizeof(Node*)));
      root->slots[i] = n;
    }
    return OkStatus();
  }).ok());

  const stats::Snapshot before = stats::Aggregate();
  // kGlobalLock flushes all arenas as a side effect.
  ASSERT_TRUE(pool_->SetAllocMode(AllocMode::kGlobalLock).ok());
  const stats::Snapshot delta = stats::Delta(stats::Aggregate(), before);
  EXPECT_GE(delta.counters[static_cast<size_t>(stats::Counter::kArenaFlushSlabs)], 1u);

  // Arena-era survivors are ordinary global objects now: values intact,
  // freeable through the logged global path.
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(root->slots[i]->value, 500u + i);
  }
  EXPECT_EQ(ReachableCount(), 1u + 6u);
  ASSERT_TRUE(pool_->Run([&](Tx& tx) -> puddles::Status {
    RETURN_IF_ERROR(tx.Free(root->slots[5]));
    RETURN_IF_ERROR(tx.LogRange(&root->slots[5], sizeof(Node*)));
    root->slots[5] = nullptr;
    return OkStatus();
  }).ok());
  EXPECT_EQ(ReachableCount(), 1u + 5u);

  // A clean flush leaves nothing for recovery to do.
  ReopenWithoutFlush();
  auto report = pool_->RecoverArenas();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->arenas_recovered, 0u);
  EXPECT_EQ(ReachableCount(), 1u + 5u);
}

// A thread that exits without flushing orphans its arena; the next thread to
// refill adopts it and can serve and free its objects locally.
TEST_F(ArenaTest, ThreadExitOrphanHandoff) {
  ArenaRoot* root = InitRoot();
  ASSERT_TRUE(pool_->SetAllocMode(AllocMode::kArena, {.refill_slabs = 1}).ok());

  std::thread worker([&]() {
    ASSERT_TRUE(pool_->Run([&](Tx& tx) -> puddles::Status {
      for (int i = 0; i < 4; ++i) {
        ASSIGN_OR_RETURN(Node * n, tx.Alloc<Node>());
        n->value = 700 + i;
        RETURN_IF_ERROR(tx.LogRange(&root->slots[i], sizeof(Node*)));
        root->slots[i] = n;
      }
      return OkStatus();
    }).ok());
  });
  worker.join();

  const stats::Snapshot before = stats::Aggregate();
  // The main thread's first refill adopts the orphan.
  ASSERT_TRUE(pool_->Run([&](Tx& tx) -> puddles::Status {
    ASSIGN_OR_RETURN(Node * n, tx.Alloc<Node>());
    n->value = 704;
    RETURN_IF_ERROR(tx.LogRange(&root->slots[4], sizeof(Node*)));
    root->slots[4] = n;
    return OkStatus();
  }).ok());
  const stats::Snapshot delta = stats::Delta(stats::Aggregate(), before);
  EXPECT_GE(delta.counters[static_cast<size_t>(stats::Counter::kArenaOrphanAdopt)], 1u);

  // Adopted objects free through the adopting thread's own arena.
  ASSERT_TRUE(pool_->Run([&](Tx& tx) -> puddles::Status {
    for (int i = 0; i < 4; ++i) {
      RETURN_IF_ERROR(tx.Free(root->slots[i]));
      RETURN_IF_ERROR(tx.LogRange(&root->slots[i], sizeof(Node*)));
      root->slots[i] = nullptr;
    }
    return OkStatus();
  }).ok());
  ASSERT_TRUE(pool_->FlushAllArenas().ok());
  EXPECT_EQ(ReachableCount(), 1u + 1u);
  EXPECT_EQ(root->slots[4]->value, 704u);
}

// A free issued by a thread that does not own the slab queues to the owner;
// housekeeping at the next refill/flush applies it. Nothing is lost even
// when both threads are gone before the drain.
TEST_F(ArenaTest, CrossThreadFreeReachesOwner) {
  ArenaRoot* root = InitRoot();
  ASSERT_TRUE(pool_->SetAllocMode(AllocMode::kArena, {.refill_slabs = 1}).ok());

  std::thread owner([&]() {
    ASSERT_TRUE(pool_->Run([&](Tx& tx) -> puddles::Status {
      for (int i = 0; i < 8; ++i) {
        ASSIGN_OR_RETURN(Node * n, tx.Alloc<Node>());
        n->value = 800 + i;
        RETURN_IF_ERROR(tx.LogRange(&root->slots[i], sizeof(Node*)));
        root->slots[i] = n;
      }
      return OkStatus();
    }).ok());
  });
  owner.join();

  const stats::Snapshot before = stats::Aggregate();
  std::thread freer([&]() {
    ASSERT_TRUE(pool_->Run([&](Tx& tx) -> puddles::Status {
      for (int i = 0; i < 8; ++i) {
        RETURN_IF_ERROR(tx.Free(root->slots[i]));
        RETURN_IF_ERROR(tx.LogRange(&root->slots[i], sizeof(Node*)));
        root->slots[i] = nullptr;
      }
      return OkStatus();
    }).ok());
  });
  freer.join();

  // FlushAllArenas adopts both orphaned arenas and drains the remote queue
  // before handing the slabs back — the 8 frees land before the flush.
  ASSERT_TRUE(pool_->FlushAllArenas().ok());
  const stats::Snapshot delta = stats::Delta(stats::Aggregate(), before);
  EXPECT_GE(delta.counters[static_cast<size_t>(stats::Counter::kArenaRemoteFree)], 8u);
  EXPECT_EQ(ReachableCount(), 1u);

  ReopenWithoutFlush();
  auto report = pool_->RecoverArenas();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(ReachableCount(), 1u);
}

// The 8-thread malloc/free storm with exact leak accounting. Every thread
// runs rounds of batch-allocate + free-all-but-one; after join and flush the
// books must balance to the slot: arena allocations minus arena frees equals
// the published survivors, every acquired slab is flushed back, and the
// reachable set is exactly root + survivors.
TEST_F(ArenaTest, EightThreadStormExactLeakAccounting) {
  ArenaRoot* root = InitRoot();
  ASSERT_TRUE(pool_->SetAllocMode(AllocMode::kArena, {.refill_slabs = 2}).ok());

  const stats::Snapshot before = stats::Aggregate();
  std::vector<std::thread> threads;
  threads.reserve(kStormThreads);
  for (int t = 0; t < kStormThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int r = 0; r < kStormRounds; ++r) {
        ASSERT_TRUE(pool_->Run([&](Tx& tx) -> puddles::Status {
          Node* keep = nullptr;
          for (int i = 0; i < kStormBatch; ++i) {
            ASSIGN_OR_RETURN(Node * n, tx.Alloc<Node>());
            n->value = static_cast<uint64_t>(t) * 1000 + r;
            if (i == 0) {
              keep = n;
            } else {
              RETURN_IF_ERROR(tx.Free(n));
            }
          }
          const int slot = t * kStormRounds + r;
          RETURN_IF_ERROR(tx.LogRange(&root->slots[slot], sizeof(Node*)));
          root->slots[slot] = keep;
          return OkStatus();
        }).ok());
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  ASSERT_TRUE(pool_->FlushAllArenas().ok());

  const stats::Snapshot delta = stats::Delta(stats::Aggregate(), before);
  using stats::Counter;
  const uint64_t allocs = delta.counters[static_cast<size_t>(Counter::kArenaAlloc)];
  const uint64_t frees = delta.counters[static_cast<size_t>(Counter::kArenaFree)];
  const uint64_t refills =
      delta.counters[static_cast<size_t>(Counter::kArenaRefillSlabs)];
  const uint64_t flushes =
      delta.counters[static_cast<size_t>(Counter::kArenaFlushSlabs)];
  constexpr uint64_t kPublished = kStormThreads * kStormRounds;
  constexpr uint64_t kAllocs = kPublished * kStormBatch;

  EXPECT_EQ(allocs, kAllocs);              // Every allocation was arena-served.
  EXPECT_EQ(allocs - frees, kPublished);   // Exact leak accounting.
  EXPECT_EQ(refills, flushes);             // Every acquired slab flushed back.
  EXPECT_EQ(ReachableCount(), 1u + kPublished);
  for (int t = 0; t < kStormThreads; ++t) {
    for (int r = 0; r < kStormRounds; ++r) {
      ASSERT_NE(root->slots[t * kStormRounds + r], nullptr);
      EXPECT_EQ(root->slots[t * kStormRounds + r]->value,
                static_cast<uint64_t>(t) * 1000 + r);
    }
  }

  // Survivors persist across a reopen; the clean flush left recovery idle.
  ReopenWithoutFlush();
  auto report = pool_->RecoverArenas();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->arenas_recovered, 0u);
  EXPECT_EQ(ReachableCount(), 1u + kPublished);
}

// Recovery GC: a pool reopened with active arena directory entries (no
// flush before shutdown) walks the roots, keeps every reachable object, and
// reclaims committed-but-unreachable slots — the post-crash leak story.
TEST_F(ArenaTest, RecoverArenasReclaimsLeakedObjects) {
  ArenaRoot* root = InitRoot();
  ASSERT_TRUE(pool_->SetAllocMode(AllocMode::kArena, {.refill_slabs = 2}).ok());

  constexpr int kKeep = 8;
  constexpr int kLeak = 10;
  ASSERT_TRUE(pool_->Run([&](Tx& tx) -> puddles::Status {
    for (int i = 0; i < kKeep; ++i) {
      ASSIGN_OR_RETURN(Node * n, tx.Alloc<Node>());
      n->value = 600 + i;
      RETURN_IF_ERROR(tx.LogRange(&root->slots[i], sizeof(Node*)));
      root->slots[i] = n;
    }
    // Committed but never published nor freed: unreachable leaks only the
    // recovery GC can reclaim.
    for (int i = 0; i < kLeak; ++i) {
      ASSIGN_OR_RETURN(Node * n, tx.Alloc<Node>());
      n->value = 999;
    }
    return OkStatus();
  }).ok());

  ReopenWithoutFlush();
  const stats::Snapshot before = stats::Aggregate();
  auto report = pool_->RecoverArenas();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->arenas_recovered, 1u);
  EXPECT_GE(report->slabs_scanned, 1u);
  EXPECT_EQ(report->slots_reclaimed, static_cast<uint64_t>(kLeak));
  EXPECT_EQ(report->objects_live, 1u + kKeep);
  const stats::Snapshot delta = stats::Delta(stats::Aggregate(), before);
  EXPECT_EQ(delta.counters[static_cast<size_t>(stats::Counter::kArenaGcReclaimed)],
            static_cast<uint64_t>(kLeak));

  // Recovery is idempotent and leaves an ordinary global heap behind.
  auto again = pool_->RecoverArenas();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->arenas_recovered, 0u);
  EXPECT_EQ(ReachableCount(), 1u + kKeep);
  auto recovered_root = pool_->Root<ArenaRoot>();
  ASSERT_TRUE(recovered_root.ok());
  for (int i = 0; i < kKeep; ++i) {
    EXPECT_EQ((*recovered_root)->slots[i]->value, 600u + i);
  }
  ASSERT_TRUE(pool_->Run([&](Tx& tx) -> puddles::Status {
    ASSIGN_OR_RETURN(Node * n, tx.Alloc<Node>());
    n->value = 1;
    RETURN_IF_ERROR(tx.LogRange(&(*recovered_root)->slots[kKeep], sizeof(Node*)));
    (*recovered_root)->slots[kKeep] = n;
    return OkStatus();
  }).ok());
  EXPECT_EQ(ReachableCount(), 1u + kKeep + 1u);
}

// Differential: the same workload under the arena and under the global-lock
// allocator must converge to identical reachable sets and contents — the
// arena changes performance, never semantics.
TEST_F(ArenaTest, ArenaMatchesGlobalLockSemantics) {
  auto run_workload = [&](const char* name, bool arena,
                          std::vector<uint64_t>* values) -> size_t {
    auto pool_or = runtime_->CreatePool(name);
    EXPECT_TRUE(pool_or.ok());
    Pool* pool = *pool_or;
    if (arena) {
      EXPECT_TRUE(pool->SetAllocMode(AllocMode::kArena, {.refill_slabs = 2}).ok());
    }
    ArenaRoot* root = nullptr;
    EXPECT_TRUE(pool->Run([&](Tx& tx) -> puddles::Status {
      ASSIGN_OR_RETURN(root, tx.Alloc<ArenaRoot>());
      for (auto& slot : root->slots) {
        slot = nullptr;
      }
      return pool->SetRoot(root);
    }).ok());
    for (int r = 0; r < 4; ++r) {
      EXPECT_TRUE(pool->Run([&](Tx& tx) -> puddles::Status {
        for (int i = 0; i < 12; ++i) {
          ASSIGN_OR_RETURN(Node * n, tx.Alloc<Node>());
          n->value = static_cast<uint64_t>(r) * 100 + i;
          if (i % 3 == 0) {
            const int slot = r * 4 + i / 3;
            RETURN_IF_ERROR(tx.LogRange(&root->slots[slot], sizeof(Node*)));
            root->slots[slot] = n;
          } else {
            RETURN_IF_ERROR(tx.Free(n));
          }
        }
        return OkStatus();
      }).ok());
    }
    if (arena) {
      EXPECT_TRUE(pool->FlushAllArenas().ok());
    }
    for (int s = 0; s < 16; ++s) {
      values->push_back(root->slots[s] == nullptr ? ~0ULL : root->slots[s]->value);
    }
    auto reachable = pool->ReachableObjects();
    EXPECT_TRUE(reachable.ok());
    return reachable.ok() ? reachable->size() : 0;
  };

  std::vector<uint64_t> arena_values, global_values;
  const size_t arena_count = run_workload("diff_arena", true, &arena_values);
  const size_t global_count = run_workload("diff_global", false, &global_values);
  EXPECT_EQ(arena_count, global_count);
  EXPECT_EQ(arena_values, global_values);
}

// A second free of an arena-owned slot whose first free has already been
// applied (magic cleared at publication) must fail like the global path's
// double-free check, not silently queue a release against whatever occupies
// the slot next.
TEST_F(ArenaTest, DoubleFreeOfArenaObjectRejected) {
  InitRoot();
  ASSERT_TRUE(pool_->SetAllocMode(AllocMode::kArena, {.refill_slabs = 1}).ok());

  Node* node = nullptr;
  ASSERT_TRUE(pool_->Run([&](Tx& tx) -> puddles::Status {
    ASSIGN_OR_RETURN(node, tx.Alloc<Node>());
    node->value = 11;
    return OkStatus();
  }).ok());
  ASSERT_TRUE(pool_->Run([&](Tx& tx) -> puddles::Status {
    return tx.Free(node);
  }).ok());

  // The first free's publication ran post-commit: the slot is dead but still
  // in an arena-owned slab, so the stale pointer resolves through the locked
  // tag check and must be rejected there.
  puddles::Status dup = pool_->Run([&](Tx& tx) -> puddles::Status {
    return tx.Free(node);
  });
  EXPECT_EQ(dup.code(), StatusCode::kFailedPrecondition) << dup.ToString();

  // The rejection left the arena untouched: the slot is still on the free
  // list exactly once, so reuse works and the pool flushes clean.
  ASSERT_TRUE(pool_->Run([&](Tx& tx) -> puddles::Status {
    ASSIGN_OR_RETURN(Node * n, tx.Alloc<Node>());
    n->value = 12;
    return tx.Free(n);
  }).ok());
  ASSERT_TRUE(pool_->FlushAllArenas().ok());
}

// Builds a two-slab 64-byte-class arena with every slot free and the spill
// hint raised: the next small allocation's slow path will try to spill the
// whole-empty slab back to the buddy.
class ArenaSpillTest : public ArenaTest {
 protected:
  void PrimeSpill(ArenaRoot* root) {
    (void)root;
    ASSERT_TRUE(pool_
                    ->SetAllocMode(AllocMode::kArena,
                                   {.refill_slabs = 1, .flush_watermark = 64})
                    .ok());
    // 70 Nodes overflow one 63-slot slab, forcing a second refill.
    nodes_.resize(70);
    ASSERT_TRUE(pool_->Run([&](Tx& tx) -> puddles::Status {
      for (auto& n : nodes_) {
        ASSIGN_OR_RETURN(n, tx.Alloc<Node>());
        n->value = 1;
      }
      return OkStatus();
    }).ok());
    // Freeing everything publishes 70 releases post-commit: both slabs end
    // whole-empty and the free count crosses the watermark.
    ASSERT_TRUE(pool_->Run([&](Tx& tx) -> puddles::Status {
      for (Node* n : nodes_) {
        RETURN_IF_ERROR(tx.Free(n));
      }
      return OkStatus();
    }).ok());
  }

  std::vector<Node*> nodes_;
};

// Committed spill: the chain unlink is staged in the triggering transaction
// and the buddy release runs at its commit head, so after commit the slab is
// global again and the pool flushes and recovers clean.
TEST_F(ArenaSpillTest, SpillCommitsBuddyReleaseAtCommitHead) {
  ArenaRoot* root = InitRoot();
  PrimeSpill(root);

  const stats::Snapshot before = stats::Aggregate();
  ASSERT_TRUE(pool_->Run([&](Tx& tx) -> puddles::Status {
    ASSIGN_OR_RETURN(Node * n, tx.Alloc<Node>());
    n->value = 77;
    RETURN_IF_ERROR(tx.LogRange(&root->slots[0], sizeof(Node*)));
    root->slots[0] = n;
    return OkStatus();
  }).ok());
  const stats::Snapshot delta = stats::Delta(stats::Aggregate(), before);
  EXPECT_GE(delta.counters[static_cast<size_t>(stats::Counter::kArenaFlushSlabs)], 1u);

  EXPECT_EQ(root->slots[0]->value, 77u);
  ASSERT_TRUE(pool_->FlushAllArenas().ok());
  ReopenWithoutFlush();
  auto report = pool_->RecoverArenas();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->arenas_recovered, 0u);
  EXPECT_EQ(ReachableCount(), 1u + 1u);
}

// Aborted spill: the deferred buddy release never runs, the persistent
// unlink rolls back with the transaction, and the abort hook resurrects the
// slab with its free list rebuilt — so re-allocating both slabs' worth of
// slots needs no fresh refill and the heap stays consistent.
TEST_F(ArenaSpillTest, AbortedSpillResurrectsSlabWithoutBuddyRelease) {
  ArenaRoot* root = InitRoot();
  PrimeSpill(root);
  const size_t baseline = ReachableCount();

  puddles::Status aborted = pool_->Run([&](Tx& tx) -> puddles::Status {
    ASSIGN_OR_RETURN(Node * n, tx.Alloc<Node>());
    n->value = 88;
    return InternalError("deliberate abort");
  });
  ASSERT_FALSE(aborted.ok());
  EXPECT_EQ(ReachableCount(), baseline);

  // Both slabs (126 slots) must still be arena-owned and fully free: if the
  // spill had leaked — buddy release applied under an aborted unlink, or
  // free-list entries lost — this would either refill or corrupt.
  const stats::Snapshot before = stats::Aggregate();
  ASSERT_TRUE(pool_->Run([&](Tx& tx) -> puddles::Status {
    for (int i = 0; i < 70; ++i) {
      ASSIGN_OR_RETURN(Node * n, tx.Alloc<Node>());
      n->value = 100 + i;
      if (i == 0) {
        RETURN_IF_ERROR(tx.LogRange(&root->slots[0], sizeof(Node*)));
        root->slots[0] = n;
      } else {
        RETURN_IF_ERROR(tx.Free(n));
      }
    }
    return OkStatus();
  }).ok());
  const stats::Snapshot delta = stats::Delta(stats::Aggregate(), before);
  EXPECT_EQ(delta.counters[static_cast<size_t>(stats::Counter::kArenaRefillSlabs)], 0u);

  ASSERT_TRUE(pool_->FlushAllArenas().ok());
  ReopenWithoutFlush();
  auto report = pool_->RecoverArenas();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->arenas_recovered, 0u);
  EXPECT_EQ(ReachableCount(), baseline + 1);
  EXPECT_EQ(root->slots[0]->value, 100u);
}

// Unit-level check of the remote-free validation added for recycled-claim
// safety: a record must be dropped on generation mismatch, consumed inertly
// when its offset cannot resolve in the current slab layout, and applied
// only when generation, bounds, and slot alignment all line up.
TEST(ArenaRemoteFreeValidation, GenerationAndBoundsGateShadowWrites) {
  ThreadArena ta{ArenaOptions{}};
  std::vector<uint8_t> heap(kSlabBlockSize, 0);
  const Uuid uuid{1, 2};
  PuddleArena* pa = ta.AddPuddleArena(uuid, heap.data(), heap.size(), /*dir_slot=*/0);
  pa->claim_gen = 7;

  // One slab of the largest class (272 bytes → 14 slots) with slot 3 live.
  const int class_index = static_cast<int>(kNumSlabClasses) - 1;
  const int64_t slot_size = static_cast<int64_t>(kSlabSlotSizes[class_index]);
  const uint16_t num_slots =
      static_cast<uint16_t>((kSlabBlockSize - sizeof(SlabHeader)) / slot_size);
  const uint64_t bitmap[2] = {1ULL << 3, 0};
  ArenaSlab* slab = ta.AddSlab(pa, /*offset=*/0, class_index, num_slots, bitmap,
                               /*used=*/1, /*prev_chain_head=*/-1);
  const size_t free_before = ta.free_slot_count();
  const int64_t slot3 =
      static_cast<int64_t>(sizeof(SlabHeader)) + 3 * slot_size;

  // Published under an earlier claim of this (uuid, tag): not ours to apply.
  EXPECT_FALSE(ta.AcceptRemoteFree(uuid, pa->tag(), /*gen=*/6, slot3, /*epoch=*/0));
  EXPECT_EQ(slab->used, 1);

  // Matching claim but unresolvable offsets — misaligned, past the last
  // slot, inside the slab header — are stale duplicates: consumed without
  // touching shadow state (this is the shape that used to index past the
  // shadow bitmap).
  EXPECT_TRUE(ta.AcceptRemoteFree(uuid, pa->tag(), 7, slot3 + 5, 0));
  EXPECT_TRUE(ta.AcceptRemoteFree(
      uuid, pa->tag(), 7,
      static_cast<int64_t>(sizeof(SlabHeader)) + num_slots * slot_size, 0));
  EXPECT_TRUE(ta.AcceptRemoteFree(uuid, pa->tag(), 7, /*slot_offset=*/8, 0));
  EXPECT_EQ(slab->used, 1);
  EXPECT_EQ(slab->shadow[0], 1ULL << 3);
  EXPECT_EQ(ta.free_slot_count(), free_before);

  // The genuine record applies; a duplicate of it is inert.
  EXPECT_TRUE(ta.AcceptRemoteFree(uuid, pa->tag(), 7, slot3, 0));
  EXPECT_EQ(slab->used, 0);
  EXPECT_EQ(slab->shadow[0], 0u);
  EXPECT_EQ(ta.free_slot_count(), free_before + 1);
  EXPECT_TRUE(ta.AcceptRemoteFree(uuid, pa->tag(), 7, slot3, 0));
  EXPECT_EQ(ta.free_slot_count(), free_before + 1);
}

// Claim generations are monotonic per (uuid, tag): re-claiming a released
// directory slot bumps the generation, which is what invalidates queued
// remote frees published under the earlier claim.
TEST(ArenaManagerClaims, ReclaimBumpsGeneration) {
  auto mgr = std::make_shared<ArenaManager>(ArenaOptions{});
  const Uuid uuid{3, 4};
  EXPECT_EQ(mgr->ClaimGenOf(uuid, /*tag=*/1), 0u);

  const uint64_t first = mgr->RegisterClaim(uuid, 1);
  EXPECT_NE(first, 0u);
  EXPECT_EQ(mgr->ClaimGenOf(uuid, 1), first);

  const uint64_t second = mgr->RegisterClaim(uuid, 1);
  EXPECT_GT(second, first);
  EXPECT_EQ(mgr->ClaimGenOf(uuid, 1), second);

  // Distinct tags and puddles track independently.
  const uint64_t other_tag = mgr->RegisterClaim(uuid, 2);
  EXPECT_GT(other_tag, second);
  EXPECT_EQ(mgr->ClaimGenOf(uuid, 1), second);
  EXPECT_EQ(mgr->ClaimGenOf(Uuid{5, 6}, 1), 0u);
}

}  // namespace
}  // namespace puddles
