// Epoch-based group commit (src/epoch; docs/epoch.md) on the full stack:
// durability modes, sync-before-ack, the bounded buffered window, shutdown
// drain, mode switching, and an 8-thread cross-epoch commit storm. The
// threaded tests run under the CI ThreadSanitizer job (`ctest -L
// concurrency`); the crash-atomicity half of the contract — an epoch torn by
// power failure rolls back whole, never a prefix — is crashsim's job
// (tests/crashsim_test.cc, `epoch` workload).
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <thread>
#include <vector>

#include "src/daemon/client.h"
#include "src/daemon/daemon.h"
#include "src/libpuddles/libpuddles.h"
#include "src/stats/stats.h"
#include "src/tx/tx.h"

namespace puddles {
namespace {

namespace fs = std::filesystem;

constexpr int kThreads = 8;
constexpr uint64_t kCellsPerThread = 512;
constexpr uint64_t kChunk = 64;

struct Shard {
  uint64_t* cells[kThreads];
  uint64_t committed_rounds[kThreads];
};

class EpochTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("epoch_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    (void)TypeRegistry::Instance().Register<Shard>(&Shard::cells);
    Start(/*create=*/true);
  }

  void TearDown() override {
    runtime_.reset();
    daemon_.reset();
    fs::remove_all(dir_);
  }

  void Start(bool create) {
    auto started = puddled::Daemon::Start({.root_dir = (dir_ / "root").string()});
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    daemon_ = std::move(*started);
    auto rt = Runtime::Create(
        std::make_shared<puddled::EmbeddedDaemonClient>(daemon_.get()));
    ASSERT_TRUE(rt.ok()) << rt.status().ToString();
    runtime_ = std::move(*rt);
    auto pool = create ? runtime_->CreatePool("epoch") : runtime_->OpenPool("epoch");
    ASSERT_TRUE(pool.ok()) << pool.status().ToString();
    pool_ = *pool;
  }

  // Daemon restart: recovery runs before any remap. The previous runtime's
  // destructor stops the epoch advancer (draining any open epoch) first.
  void Reopen() {
    runtime_.reset();
    daemon_.reset();
    Start(/*create=*/false);
  }

  Shard* InitShard() {
    Shard* shard = nullptr;
    EXPECT_TRUE(pool_->Run([&](Tx& tx) -> puddles::Status {
      ASSIGN_OR_RETURN(shard, tx.Alloc<Shard>());
      for (int t = 0; t < kThreads; ++t) {
        ASSIGN_OR_RETURN(shard->cells[t], tx.Alloc<uint64_t>(kCellsPerThread));
        for (uint64_t i = 0; i < kCellsPerThread; ++i) {
          shard->cells[t][i] = 0;
        }
        shard->committed_rounds[t] = 0;
      }
      return pool_->SetRoot(shard);
    }).ok());
    return shard;
  }

  Shard* Root() {
    auto root = pool_->Root<Shard>();
    EXPECT_TRUE(root.ok()) << root.status().ToString();
    return root.ok() ? *root : nullptr;
  }

  fs::path dir_;
  std::unique_ptr<puddled::Daemon> daemon_;
  std::unique_ptr<Runtime> runtime_;
  Pool* pool_ = nullptr;
};

// One round for thread t: chunk transactions over its slice, each adding
// (t+1), then a committed-rounds bump — the Fig. 12 shape.
void RunRound(Pool& pool, Shard* shard, int t) {
  uint64_t* cells = shard->cells[t];
  for (uint64_t at = 0; at < kCellsPerThread; at += kChunk) {
    ASSERT_TRUE(pool.Run([&](Tx& tx) -> puddles::Status {
      RETURN_IF_ERROR(tx.LogRange(&cells[at], kChunk * sizeof(uint64_t)));
      for (uint64_t i = at; i < at + kChunk; ++i) {
        cells[i] += static_cast<uint64_t>(t) + 1;
      }
      return OkStatus();
    }).ok());
  }
  ASSERT_TRUE(pool.Run([&](Tx& tx) -> puddles::Status {
    RETURN_IF_ERROR(tx.LogRange(&shard->committed_rounds[t], sizeof(uint64_t)));
    shard->committed_rounds[t]++;
    return OkStatus();
  }).ok());
}

void ExpectRound(Shard* shard, int t, uint64_t rounds) {
  ASSERT_NE(shard, nullptr);
  EXPECT_EQ(shard->committed_rounds[t], rounds) << "thread " << t;
  for (uint64_t i = 0; i < kCellsPerThread; ++i) {
    ASSERT_EQ(shard->cells[t][i], rounds * (static_cast<uint64_t>(t) + 1))
        << "thread " << t << " cell " << i;
  }
}

// Sync() must not return before the open epoch is closed and persistently
// retired: afterwards kEpochAdvanced has moved and a daemon restart recovers
// every synced transaction.
TEST_F(EpochTest, SyncRetiresBeforeReturning) {
  Shard* shard = InitShard();
  // A huge window: nothing closes the epoch except the Sync under test.
  EpochOptions options;
  options.max_epoch_age_us = 60 * 1000 * 1000;
  options.max_staged_bytes = 1ULL << 40;
  options.max_epoch_txs = 1ULL << 40;
  ASSERT_TRUE(pool_->SetDurability(Durability::kEpoch, options).ok());

  const stats::Snapshot before = stats::Aggregate();
  RunRound(*pool_, shard, 0);
  pool_->Sync();
  const stats::Snapshot after = stats::Aggregate();
  EXPECT_GE(after.counter(stats::Counter::kEpochAdvanced),
            before.counter(stats::Counter::kEpochAdvanced) + 1);
  EXPECT_GT(after.counter(stats::Counter::kEpochTxs),
            before.counter(stats::Counter::kEpochTxs));

  Reopen();
  ExpectRound(Root(), 0, 1);
}

// Per-Run sync-on-demand: Run(RunOptions{.sync=true}, fn) is transaction +
// Sync in one call — the "this one must be durable before we ack" idiom.
TEST_F(EpochTest, RunWithSyncOption) {
  Shard* shard = InitShard();
  ASSERT_TRUE(pool_->SetDurability(Durability::kEpoch).ok());
  ASSERT_TRUE(pool_
                  ->Run(RunOptions{.sync = true},
                        [&](Tx& tx) -> puddles::Status {
                          RETURN_IF_ERROR(
                              tx.LogRange(&shard->committed_rounds[1], sizeof(uint64_t)));
                          shard->committed_rounds[1] = 7;
                          return OkStatus();
                        })
                  .ok());
  Reopen();
  Shard* reopened = Root();
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->committed_rounds[1], 7u);
}

// The bounded buffered window: with no Sync at all, the advancer must close
// the epoch on its own once it exceeds max_epoch_age_us.
TEST_F(EpochTest, TimerClosesEpochWithoutSync) {
  Shard* shard = InitShard();
  EpochOptions options;
  options.max_epoch_age_us = 2000;  // 2 ms window.
  ASSERT_TRUE(pool_->SetDurability(Durability::kEpoch, options).ok());

  const stats::Snapshot before = stats::Aggregate();
  RunRound(*pool_, shard, 2);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    const stats::Snapshot now = stats::Aggregate();
    if (now.counter(stats::Counter::kEpochAdvanced) >
        before.counter(stats::Counter::kEpochAdvanced)) {
      return;  // Advancer closed the dirty epoch on the age threshold.
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  FAIL() << "epoch never closed on the age threshold";
}

// Clean shutdown must drain: committed-but-unsynced transactions survive a
// runtime/daemon restart because the advancer closes the dirty epoch on Stop.
TEST_F(EpochTest, ShutdownDrainsOpenEpoch) {
  Shard* shard = InitShard();
  EpochOptions options;
  options.max_epoch_age_us = 60 * 1000 * 1000;
  options.max_staged_bytes = 1ULL << 40;
  options.max_epoch_txs = 1ULL << 40;
  ASSERT_TRUE(pool_->SetDurability(Durability::kEpoch, options).ok());
  RunRound(*pool_, shard, 3);
  // No Sync: the epoch is still open when the runtime is torn down.
  Reopen();
  ExpectRound(Root(), 3, 1);
}

// Switching back to immediate durability quiesces the thread's epoch port
// (waits out the pending epoch, rearms the log) before the next immediate
// transaction; both modes' writes must survive recovery.
TEST_F(EpochTest, DurabilitySwitchQuiesces) {
  Shard* shard = InitShard();
  ASSERT_TRUE(pool_->SetDurability(Durability::kEpoch).ok());
  RunRound(*pool_, shard, 4);
  pool_->Sync();
  ASSERT_TRUE(pool_->SetDurability(Durability::kImmediate).ok());
  RunRound(*pool_, shard, 4);  // Same slice again, immediate mode.
  ExpectRound(shard, 4, 2);
  Reopen();
  ExpectRound(Root(), 4, 2);
}

// Aborts in epoch mode roll back in memory immediately and stay rolled back
// across recovery (their undo entries replay idempotently if the epoch was
// not yet retired — never against post-epoch state).
TEST_F(EpochTest, AbortRollsBackInEpochMode) {
  Shard* shard = InitShard();
  ASSERT_TRUE(pool_->SetDurability(Durability::kEpoch).ok());
  RunRound(*pool_, shard, 5);
  auto status = pool_->Run([&](Tx& tx) -> puddles::Status {
    RETURN_IF_ERROR(tx.LogRange(shard->cells[5], kChunk * sizeof(uint64_t)));
    for (uint64_t i = 0; i < kChunk; ++i) {
      shard->cells[5][i] = 0xdead;
    }
    return InternalError("deliberate abort");
  });
  EXPECT_FALSE(status.ok());
  pool_->Sync();
  ExpectRound(shard, 5, 1);
  Reopen();
  ExpectRound(Root(), 5, 1);
}

// The TSan-tier storm: 8 threads commit across many epochs concurrently —
// ports join/leave epochs, splice batches into the advancer, and block on
// publish tickets while the advancer closes epochs under them. One fence per
// epoch must serve every thread: fences/tx stays far below the >= 2 of
// immediate mode, and a restart recovers every round.
TEST_F(EpochTest, EightThreadsAcrossEpochs) {
  Shard* shard = InitShard();
  EpochOptions options;
  options.max_epoch_age_us = 500;  // Many epoch closes during the storm.
  ASSERT_TRUE(pool_->SetDurability(Durability::kEpoch, options).ok());

  constexpr int kRounds = 6;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([this, shard, t] {
      for (int r = 0; r < kRounds; ++r) {
        RunRound(*pool_, shard, t);
      }
    });
  }
  for (auto& worker : workers) {
    worker.join();
  }
  pool_->Sync();
  for (int t = 0; t < kThreads; ++t) {
    ExpectRound(shard, t, kRounds);
  }
  const stats::Snapshot snap = stats::Aggregate();
  EXPECT_GT(snap.counter(stats::Counter::kEpochAdvanced), 0u);
  EXPECT_GT(snap.counter(stats::Counter::kEpochTxs),
            snap.counter(stats::Counter::kEpochAdvanced))
      << "group commit amortized nothing: fewer txs than epochs";

  Reopen();
  for (int t = 0; t < kThreads; ++t) {
    ExpectRound(Root(), t, kRounds);
  }
}

}  // namespace
}  // namespace puddles
