// Differential fuzzing for the relocation engine (DESIGN.md §7).
//
// The sorted interval table behind Translator::Translate carries two pieces
// of mutable state the O(E) reference scan does not: the sorted entry vector
// (rebuilt insert-by-insert) and a one-entry MRU cache that survives across
// queries — and must be invalidated when Add shifts entry indexes. These
// tests drive randomized interval tables through thousands of pointers with
// Add calls *interleaved* between query batches, asserting Translate ==
// TranslateLinear on every probe, including after rejected (overlapping)
// Adds. A second suite fuzzes the rewrite pass over wide objects registered
// with repeat regions (the PtrMapRecord pointer-array extension that keeps
// ART Node48/Node256 relocatable), with the expected image computed through
// TranslateLinear.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/libpuddles/relocation.h"
#include "src/libpuddles/type_registry.h"

namespace puddles {
namespace {

// Random probe addresses: in-range, boundary, near-miss, and wild.
uint64_t ProbeAddr(Xoshiro256& rng,
                   const std::vector<std::pair<uint64_t, uint64_t>>& ranges) {
  if (ranges.empty()) {
    return rng();
  }
  const auto& [lo, size] = ranges[rng.Below(ranges.size())];
  switch (rng.Below(6)) {
    case 0:
      return lo + rng.Below(size);  // Inside (locality runs hit the MRU).
    case 1:
      return lo;  // First covered byte.
    case 2:
      return lo + size - 1;  // Last covered byte.
    case 3:
      return lo - 1;  // Just below: must pass through.
    case 4:
      return lo + size;  // Just past: must pass through.
    default:
      return rng();  // Wild.
  }
}

void CheckDifferential(const Translator& translator, uint64_t addr) {
  uint64_t indexed = 0, linear = 0;
  const bool indexed_hit = translator.Translate(addr, &indexed);
  const bool linear_hit = translator.TranslateLinear(addr, &linear);
  ASSERT_EQ(indexed_hit, linear_hit) << "addr=" << std::hex << addr;
  if (indexed_hit) {
    ASSERT_EQ(indexed, linear) << "addr=" << std::hex << addr;
  }
}

// The core fuzz loop: grow the table one random entry at a time, probing
// thousands of pointers between Adds, so every query batch runs against a
// table (and MRU cache) that just shifted under it.
TEST(TranslatorFuzz, DifferentialAcrossInterleavedAdds) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    Translator translator;
    Xoshiro256 rng(0xF00D + seed);
    std::vector<std::pair<uint64_t, uint64_t>> ranges;
    // Non-overlapping candidates carved from a shuffled lattice, added in
    // random (not sorted) order so Add's sorted-insert shifts existing
    // entries — exactly the case the MRU cache index must survive.
    std::vector<uint64_t> slots;
    for (uint64_t i = 0; i < 96; ++i) {
      slots.push_back(0x100000 + i * 0x100000);
    }
    for (size_t i = slots.size(); i > 1; --i) {
      std::swap(slots[i - 1], slots[rng.Below(i)]);
    }
    for (size_t entry = 0; entry < slots.size(); ++entry) {
      const uint64_t lo = slots[entry] + rng.Below(0x1000);
      const uint64_t size = 0x100 + rng.Below(0xE0000);
      ASSERT_TRUE(translator.Add(lo, size, 0x7000000000ULL + entry * 0x10000000).ok());
      ranges.push_back({lo, size});
      // Warm the MRU on the freshest entry, then probe everything.
      uint64_t warmed;
      (void)translator.Translate(lo + size / 2, &warmed);
      for (int probe = 0; probe < 200; ++probe) {
        CheckDifferential(translator, ProbeAddr(rng, ranges));
      }
    }
    ASSERT_EQ(translator.size(), ranges.size());
  }
}

// Rejected Adds (overlaps, duplicates, zero-size, wraparound) must leave the
// table — and its cache — exactly as before: the differential keeps holding.
TEST(TranslatorFuzz, RejectedAddsLeaveTableConsistent) {
  Translator translator;
  Xoshiro256 rng(0xBAD5EED);
  std::vector<std::pair<uint64_t, uint64_t>> ranges;
  uint64_t cursor = 0x200000;
  for (int i = 0; i < 64; ++i) {
    cursor += 0x2000 + rng.Below(0x8000);
    const uint64_t size = 0x1000 + rng.Below(0x4000);
    ASSERT_TRUE(translator.Add(cursor, size, 0x9000000000ULL + i * 0x100000).ok());
    ranges.push_back({cursor, size});
    cursor += size;
  }
  for (int round = 0; round < 2000; ++round) {
    // Warm the cache somewhere, then attempt a bad Add, then re-verify.
    CheckDifferential(translator, ProbeAddr(rng, ranges));
    const auto& [lo, size] = ranges[rng.Below(ranges.size())];
    switch (rng.Below(4)) {
      case 0:
        EXPECT_FALSE(translator.Add(lo, size, 0xDEAD0000).ok());  // Duplicate.
        break;
      case 1:
        EXPECT_FALSE(translator.Add(lo + size / 2, size, 0xDEAD0000).ok());  // Overlap.
        break;
      case 2:
        EXPECT_FALSE(translator.Add(lo, 0, 0xDEAD0000).ok());  // Zero size.
        break;
      default:
        EXPECT_FALSE(translator.Add(~uint64_t{0} - 16, 64, 0xDEAD0000).ok());  // Wrap.
        break;
    }
    EXPECT_EQ(translator.size(), ranges.size());
    for (int probe = 0; probe < 8; ++probe) {
      CheckDifferential(translator, ProbeAddr(rng, ranges));
    }
  }
}

// ---- Rewrite over repeat-region (wide-node) pointer maps ----

// A wide node shaped like the ART's Node48/Node256: a couple of explicit
// header fields plus a homogeneous child array past kMaxPtrFields.
struct WideNode {
  uint64_t tag;            // Not a pointer; must never be touched.
  WideNode* header_link;   // Explicit field.
  uint64_t filler;         // Not a pointer.
  WideNode* children[64];  // Repeat region.
};

class RewriteFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    (void)TypeRegistry::Instance().RegisterWithArray<WideNode>(
        {offsetof(WideNode, header_link)}, offsetof(WideNode, children), 64);
    params_.kind = PuddleKind::kData;
    params_.heap_size = 1 << 20;
    params_.uuid = Uuid::Generate();
    params_.base_addr = 0x40000000000ULL;
    size_t file_size = Puddle::FileSizeFor(params_.kind, params_.heap_size);
    file_.resize(file_size);
    ASSERT_TRUE(Puddle::Format(file_.data(), file_size, params_).ok());
    auto puddle = Puddle::Attach(file_.data(), file_size);
    ASSERT_TRUE(puddle.ok());
    puddle_ = *puddle;
  }

  PuddleParams params_;
  std::vector<uint8_t> file_;
  Puddle puddle_;
};

TEST_F(RewriteFuzzTest, RepeatRegionSlotsRewriteDifferentially) {
  auto heap = puddle_.object_heap();
  ASSERT_TRUE(heap.ok());

  Translator translator;
  Xoshiro256 rng(0xA47);
  uint64_t cursor = 0x10000;
  for (int i = 0; i < 24; ++i) {
    cursor += 0x1000 + rng.Below(0x4000);
    const uint64_t size = 0x800 + rng.Below(0x2000);
    ASSERT_TRUE(translator.Add(cursor, size, 0x6000000000ULL + i * 0x1000000).ok());
    cursor += size;
  }

  // Random pointer soup across several wide nodes: ~half the slots land in
  // moved ranges, the rest (nulls, wild addresses, non-pointer fields) must
  // pass through untouched.
  std::vector<WideNode*> nodes;
  std::vector<WideNode> expected;
  for (int n = 0; n < 6; ++n) {
    auto node = heap->AllocateTyped<WideNode>();
    ASSERT_TRUE(node.ok());
    auto fill = [&](uint64_t r) -> WideNode* {
      switch (r % 3) {
        case 0:
          return nullptr;
        case 1:
          return reinterpret_cast<WideNode*>(0x10000 + (r % 0x50000));  // Maybe moved.
        default:
          return reinterpret_cast<WideNode*>(r | 0x8000000000ULL);  // Foreign.
      }
    };
    (*node)->tag = rng();
    (*node)->header_link = fill(rng());
    (*node)->filler = 0x10000 + rng.Below(0x50000);  // Pointer-looking data.
    for (auto& child : (*node)->children) {
      child = fill(rng());
    }
    // Expected image via the reference translator.
    WideNode want = **node;
    auto xlat = [&](WideNode* p) {
      uint64_t out;
      return translator.TranslateLinear(reinterpret_cast<uint64_t>(p), &out)
                 ? reinterpret_cast<WideNode*>(out)
                 : p;
    };
    want.header_link = xlat(want.header_link);
    for (auto& child : want.children) {
      child = xlat(child);
    }
    nodes.push_back(*node);
    expected.push_back(want);
  }

  puddle_.AssignNewBase(puddle_.base_addr() + 0x1000000);
  auto stats = RewritePuddle(puddle_, translator, TypeRegistry::Instance());
  ASSERT_TRUE(stats.ok());
  // 65 slots per node (1 explicit + 64 repeat), all visited.
  EXPECT_EQ(stats->pointers_visited, nodes.size() * 65u);
  EXPECT_GT(stats->pointers_rewritten, 0u);

  for (size_t n = 0; n < nodes.size(); ++n) {
    EXPECT_EQ(nodes[n]->tag, expected[n].tag) << n;
    EXPECT_EQ(nodes[n]->filler, expected[n].filler) << "non-pointer field touched";
    EXPECT_EQ(nodes[n]->header_link, expected[n].header_link) << n;
    for (int c = 0; c < 64; ++c) {
      ASSERT_EQ(nodes[n]->children[c], expected[n].children[c]) << n << "/" << c;
    }
  }
  EXPECT_FALSE(puddle_.needs_rewrite());
}

TEST(TypeRegistryArray, RejectsOutOfBoundsRepeatRegion) {
  struct Small {
    uint64_t a;
    Small* p;
  };
  EXPECT_FALSE(TypeRegistry::Instance()
                   .RegisterWithArray<Small>({}, offsetof(Small, p), 4)
                   .ok());
  ASSERT_TRUE(TypeRegistry::Instance()
                  .RegisterWithArray<Small>({}, offsetof(Small, p), 1)
                  .ok());
  auto record = TypeRegistry::Instance().Lookup(TypeIdOf<Small>());
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->repeat_offset, offsetof(Small, p));
  EXPECT_EQ(record->repeat_count, 1u);
}

}  // namespace
}  // namespace puddles
