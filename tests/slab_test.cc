#include "src/alloc/slab.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <vector>

#include "src/common/rng.h"

namespace puddles {
namespace {

class SlabTest : public ::testing::Test {
 protected:
  static constexpr size_t kHeapSize = 1 << 20;

  void SetUp() override {
    meta_.resize(BuddyAllocator::MetaSize(kHeapSize));
    heap_.resize(kHeapSize);
    ASSERT_TRUE(BuddyAllocator::Format(meta_.data(), heap_.data(), kHeapSize).ok());
    auto attached = BuddyAllocator::Attach(meta_.data(), heap_.data(), kHeapSize);
    ASSERT_TRUE(attached.ok());
    buddy_ = std::move(*attached);
    SlabAllocator::FormatDirectory(&dir_);
    slab_ = std::make_unique<SlabAllocator>(&dir_, &buddy_);
  }

  std::vector<uint8_t> meta_;
  std::vector<uint8_t> heap_;
  BuddyAllocator buddy_;
  SlabDirectory dir_;
  std::unique_ptr<SlabAllocator> slab_;
};

TEST_F(SlabTest, ClassSelection) {
  EXPECT_EQ(SlabAllocator::ClassForSize(1), 0);
  EXPECT_EQ(SlabAllocator::ClassForSize(32), 0);
  EXPECT_EQ(SlabAllocator::ClassForSize(33), 1);
  EXPECT_EQ(SlabAllocator::ClassForSize(272), static_cast<int>(kNumSlabClasses) - 1);
  EXPECT_EQ(SlabAllocator::ClassForSize(273), -1);
}

TEST_F(SlabTest, AllocateCarvesSlabFromBuddy) {
  const uint64_t before = buddy_.free_bytes();
  auto slot = slab_->Allocate(32);
  ASSERT_TRUE(slot.ok());
  EXPECT_EQ(buddy_.free_bytes(), before - kSlabBlockSize);
  // Second allocation reuses the same slab: no new buddy block.
  auto slot2 = slab_->Allocate(32);
  ASSERT_TRUE(slot2.ok());
  EXPECT_EQ(buddy_.free_bytes(), before - kSlabBlockSize);
  EXPECT_NE(*slot, *slot2);
}

TEST_F(SlabTest, SlotsDoNotOverlap) {
  std::set<int64_t> slots;
  for (int i = 0; i < 300; ++i) {
    auto slot = slab_->Allocate(64);
    ASSERT_TRUE(slot.ok());
    EXPECT_TRUE(slots.insert(*slot).second);
  }
  // Slots of the 64-byte class are 64 bytes apart at minimum.
  int64_t prev = -1000;
  for (int64_t s : slots) {
    if (prev >= 0 && s / static_cast<int64_t>(kSlabBlockSize) ==
                         prev / static_cast<int64_t>(kSlabBlockSize)) {
      EXPECT_GE(s - prev, 64);
    }
    prev = s;
  }
}

TEST_F(SlabTest, EmptySlabReturnsToBuddy) {
  const uint64_t before = buddy_.free_bytes();
  std::vector<int64_t> slots;
  for (int i = 0; i < 10; ++i) {
    auto slot = slab_->Allocate(48);
    ASSERT_TRUE(slot.ok());
    slots.push_back(*slot);
  }
  for (int64_t slot : slots) {
    ASSERT_TRUE(slab_->Free(slot).ok());
  }
  EXPECT_EQ(buddy_.free_bytes(), before) << "empty slab must be returned to the buddy";
}

TEST_F(SlabTest, FullSlabLeavesPartialListAndComesBack) {
  const size_t slots_per_slab = (kSlabBlockSize - sizeof(SlabHeader)) / 32;
  std::vector<int64_t> slots;
  for (size_t i = 0; i < slots_per_slab; ++i) {
    auto slot = slab_->Allocate(32);
    ASSERT_TRUE(slot.ok());
    slots.push_back(*slot);
  }
  ASSERT_TRUE(slab_->Validate().ok());
  // Slab is now full; next allocation opens a second slab.
  const uint64_t before = buddy_.free_bytes();
  auto extra = slab_->Allocate(32);
  ASSERT_TRUE(extra.ok());
  EXPECT_EQ(buddy_.free_bytes(), before - kSlabBlockSize);
  // Free one slot from the full slab: it must rejoin the partial list and
  // serve the next allocation.
  ASSERT_TRUE(slab_->Free(slots[0]).ok());
  ASSERT_TRUE(slab_->Validate().ok());
  auto reuse = slab_->Allocate(32);
  ASSERT_TRUE(reuse.ok());
  EXPECT_EQ(*reuse, slots[0]);
}

TEST_F(SlabTest, FreeRejectsBadOffsets) {
  auto slot = slab_->Allocate(96);
  ASSERT_TRUE(slot.ok());
  EXPECT_FALSE(slab_->Free(*slot + 1).ok());   // Misaligned.
  EXPECT_FALSE(slab_->Free(*slot + 96).ok());  // Unallocated slot.
  ASSERT_TRUE(slab_->Free(*slot).ok());
}

TEST_F(SlabTest, IsSlabBlockDistinguishesDirectBlocks) {
  auto slot = slab_->Allocate(32);
  ASSERT_TRUE(slot.ok());
  int64_t slab_block = *slot & ~static_cast<int64_t>(kSlabBlockSize - 1);
  EXPECT_TRUE(slab_->IsSlabBlock(slab_block));

  auto direct = buddy_.Allocate(kSlabBlockSize);
  ASSERT_TRUE(direct.ok());
  EXPECT_FALSE(slab_->IsSlabBlock(*direct));
  auto big = buddy_.Allocate(2 * kSlabBlockSize);
  ASSERT_TRUE(big.ok());
  EXPECT_FALSE(slab_->IsSlabBlock(*big));
}

TEST_F(SlabTest, ForEachSlotEnumeratesLiveSlots) {
  auto a = slab_->Allocate(128);
  auto b = slab_->Allocate(128);
  auto c = slab_->Allocate(128);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(slab_->Free(*b).ok());

  int64_t block = *a & ~static_cast<int64_t>(kSlabBlockSize - 1);
  std::set<int64_t> seen;
  slab_->ForEachSlot(block, [&](int64_t off, size_t size) {
    EXPECT_EQ(size, 128u);
    seen.insert(off);
  });
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_TRUE(seen.count(*a));
  EXPECT_TRUE(seen.count(*c));
  EXPECT_FALSE(seen.count(*b));
}

class SlabPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SlabPropertyTest, MixedSizeTorture) {
  constexpr size_t kHeapSize = 1 << 20;
  std::vector<uint8_t> meta(BuddyAllocator::MetaSize(kHeapSize));
  std::vector<uint8_t> heap(kHeapSize);
  ASSERT_TRUE(BuddyAllocator::Format(meta.data(), heap.data(), kHeapSize).ok());
  auto attached = BuddyAllocator::Attach(meta.data(), heap.data(), kHeapSize);
  ASSERT_TRUE(attached.ok());
  BuddyAllocator buddy = std::move(*attached);
  SlabDirectory dir;
  SlabAllocator::FormatDirectory(&dir);
  SlabAllocator slab(&dir, &buddy);

  Xoshiro256 rng(GetParam());
  std::map<int64_t, size_t> live;  // slot -> requested size
  for (int step = 0; step < 5000; ++step) {
    if (live.empty() || rng.Below(100) < 55) {
      size_t size = 1 + rng.Below(kMaxSlabSlot);
      auto slot = slab.Allocate(size);
      if (!slot.ok()) {
        continue;  // Heap pressure is fine.
      }
      ASSERT_EQ(live.count(*slot), 0u) << "slot handed out twice";
      live[*slot] = size;
      // Scribble over the slot; must not disturb neighbors (checked by
      // Validate below via used counters/bitmaps).
      std::memset(heap.data() + *slot, 0xab, size);
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.Below(live.size())));
      ASSERT_TRUE(slab.Free(it->first).ok());
      live.erase(it);
    }
    if (step % 1000 == 0) {
      ASSERT_TRUE(slab.Validate().ok()) << "step " << step;
      ASSERT_TRUE(buddy.Validate().ok()) << "step " << step;
    }
  }
  for (const auto& [slot, size] : live) {
    ASSERT_TRUE(slab.Free(slot).ok());
  }
  EXPECT_EQ(buddy.free_bytes(), kHeapSize) << "all slabs must return to the buddy";
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlabPropertyTest, ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace puddles
