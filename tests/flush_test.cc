#include "src/pmem/flush.h"

#include <gtest/gtest.h>

#include <vector>

namespace pmem {
namespace {

TEST(FlushTest, InstructionDetected) {
  FlushInstruction instr = ActiveFlushInstruction();
  // On x86-64 at least clflush must be available.
#if defined(__x86_64__)
  EXPECT_NE(instr, FlushInstruction::kNoop);
#endif
  EXPECT_NE(FlushInstructionName(instr), nullptr);
}

TEST(FlushTest, FlushDoesNotCorruptData) {
  std::vector<uint8_t> buffer(4096);
  for (size_t i = 0; i < buffer.size(); ++i) {
    buffer[i] = static_cast<uint8_t>(i * 13);
  }
  Flush(buffer.data(), buffer.size());
  Fence();
  for (size_t i = 0; i < buffer.size(); ++i) {
    EXPECT_EQ(buffer[i], static_cast<uint8_t>(i * 13));
  }
}

TEST(FlushTest, CountersTrackLines) {
  ResetPersistStats();
  alignas(64) char data[256];
  Flush(data, 256);  // Exactly 4 lines, aligned.
  PersistStats stats = ReadPersistStats();
  EXPECT_EQ(stats.flushed_lines, 4u);
  EXPECT_EQ(stats.flush_calls, 1u);
}

TEST(FlushTest, UnalignedRangeCoversAllTouchedLines) {
  ResetPersistStats();
  alignas(64) char data[256];
  // [63, 65) straddles two cache lines.
  Flush(data + 63, 2);
  PersistStats stats = ReadPersistStats();
  EXPECT_EQ(stats.flushed_lines, 2u);
}

TEST(FlushTest, ZeroSizeIsNoop) {
  ResetPersistStats();
  char c;
  Flush(&c, 0);
  PersistStats stats = ReadPersistStats();
  EXPECT_EQ(stats.flush_calls, 0u);
  EXPECT_EQ(stats.flushed_lines, 0u);
}

TEST(FlushTest, FenceCounts) {
  ResetPersistStats();
  Fence();
  Fence();
  EXPECT_EQ(ReadPersistStats().fences, 2u);
}

TEST(FlushTest, FlushFenceDoesBoth) {
  ResetPersistStats();
  alignas(64) char data[64];
  FlushFence(data, 64);
  PersistStats stats = ReadPersistStats();
  EXPECT_EQ(stats.flushed_lines, 1u);
  EXPECT_EQ(stats.fences, 1u);
}

TEST(FlushTest, PersistStore64WritesAndPersists) {
  ResetPersistStats();
  alignas(64) uint64_t slot = 0;
  PersistStore64(&slot, 0xdeadbeefULL);
  EXPECT_EQ(slot, 0xdeadbeefULL);
  PersistStats stats = ReadPersistStats();
  EXPECT_EQ(stats.flushed_lines, 1u);
  EXPECT_EQ(stats.fences, 1u);
}

TEST(FlushBatchTest, DedupsOverlappingRangesAtLineGranularity) {
  alignas(64) static char data[4 * 64];
  FlushBatch batch;
  EXPECT_TRUE(batch.empty());
  batch.Add(data, 64);          // Line 0.
  batch.Add(data + 16, 8);      // Line 0 again.
  batch.Add(data + 60, 8);      // Lines 0 and 1.
  batch.Add(data + 192, 1);     // Line 3.
  EXPECT_EQ(batch.pending_lines(), 3u);
  ResetPersistStats();
  batch.FlushPending();
  EXPECT_EQ(ReadPersistStats().flushed_lines, 3u)
      << "each staged line must be written back exactly once";
  EXPECT_EQ(ReadPersistStats().fences, 0u) << "FlushPending must not fence";
  EXPECT_TRUE(batch.empty()) << "a flushed batch is cleared";
}

TEST(FlushBatchTest, MergesAdjacentLinesIntoSingleFlushCalls) {
  alignas(64) static char data[8 * 64];
  FlushBatch batch;
  batch.Add(data + 64, 64);   // Lines 1..2 contiguous with the next add.
  batch.Add(data + 128, 64);
  batch.Add(data + 320, 64);  // Line 5, separate run.
  ResetPersistStats();
  batch.FlushPending();
  PersistStats stats = ReadPersistStats();
  EXPECT_EQ(stats.flushed_lines, 3u);
  EXPECT_EQ(stats.flush_calls, 2u) << "contiguous lines coalesce into one Flush range";
}

// The observer contract under batching (documented in flush.h): every
// published line is reported through OnFlushRange before the closing fence,
// exactly once — batching coalesces flushes but never hides them from the
// crashsim trace recorder.
TEST(FlushBatchTest, PublicationReportsEveryLineToTheObserver) {
  class Recorder : public PersistObserver {
   public:
    void OnFlushRange(const void* addr, size_t size) override {
      flushed_bytes += size;
      ++flush_ranges;
      EXPECT_EQ(fences, 0) << "all lines must be reported before the batch's fence";
    }
    void OnFence() override { ++fences; }
    size_t flushed_bytes = 0;
    int flush_ranges = 0;
    int fences = 0;
  };
  alignas(64) static char data[4 * 64];
  Recorder recorder;
  SetPersistObserver(&recorder);
  FlushBatch batch;
  batch.Add(data, 64);
  batch.Add(data + 64, 64);
  batch.Add(data, 64);  // Duplicate: must not be double-reported.
  batch.FlushPending();
  Fence();
  SetPersistObserver(nullptr);
  EXPECT_EQ(recorder.flushed_bytes, 128u);
  EXPECT_EQ(recorder.flush_ranges, 1) << "one merged range for two adjacent lines";
  EXPECT_EQ(recorder.fences, 1);
}

}  // namespace
}  // namespace pmem
