#include "src/pmem/flush.h"

#include <gtest/gtest.h>

#include <vector>

namespace pmem {
namespace {

TEST(FlushTest, InstructionDetected) {
  FlushInstruction instr = ActiveFlushInstruction();
  // On x86-64 at least clflush must be available.
#if defined(__x86_64__)
  EXPECT_NE(instr, FlushInstruction::kNoop);
#endif
  EXPECT_NE(FlushInstructionName(instr), nullptr);
}

TEST(FlushTest, FlushDoesNotCorruptData) {
  std::vector<uint8_t> buffer(4096);
  for (size_t i = 0; i < buffer.size(); ++i) {
    buffer[i] = static_cast<uint8_t>(i * 13);
  }
  Flush(buffer.data(), buffer.size());
  Fence();
  for (size_t i = 0; i < buffer.size(); ++i) {
    EXPECT_EQ(buffer[i], static_cast<uint8_t>(i * 13));
  }
}

TEST(FlushTest, CountersTrackLines) {
  ResetPersistStats();
  alignas(64) char data[256];
  Flush(data, 256);  // Exactly 4 lines, aligned.
  PersistStats stats = ReadPersistStats();
  EXPECT_EQ(stats.flushed_lines, 4u);
  EXPECT_EQ(stats.flush_calls, 1u);
}

TEST(FlushTest, UnalignedRangeCoversAllTouchedLines) {
  ResetPersistStats();
  alignas(64) char data[256];
  // [63, 65) straddles two cache lines.
  Flush(data + 63, 2);
  PersistStats stats = ReadPersistStats();
  EXPECT_EQ(stats.flushed_lines, 2u);
}

TEST(FlushTest, ZeroSizeIsNoop) {
  ResetPersistStats();
  char c;
  Flush(&c, 0);
  PersistStats stats = ReadPersistStats();
  EXPECT_EQ(stats.flush_calls, 0u);
  EXPECT_EQ(stats.flushed_lines, 0u);
}

TEST(FlushTest, FenceCounts) {
  ResetPersistStats();
  Fence();
  Fence();
  EXPECT_EQ(ReadPersistStats().fences, 2u);
}

TEST(FlushTest, FlushFenceDoesBoth) {
  ResetPersistStats();
  alignas(64) char data[64];
  FlushFence(data, 64);
  PersistStats stats = ReadPersistStats();
  EXPECT_EQ(stats.flushed_lines, 1u);
  EXPECT_EQ(stats.fences, 1u);
}

TEST(FlushTest, PersistStore64WritesAndPersists) {
  ResetPersistStats();
  alignas(64) uint64_t slot = 0;
  PersistStore64(&slot, 0xdeadbeefULL);
  EXPECT_EQ(slot, 0xdeadbeefULL);
  PersistStats stats = ReadPersistStats();
  EXPECT_EQ(stats.flushed_lines, 1u);
  EXPECT_EQ(stats.fences, 1u);
}

}  // namespace
}  // namespace pmem
