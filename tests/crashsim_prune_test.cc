// Persistence-graph pruning: soundness and equal-bug-finding-power gates.
//
// Three pillars (DESIGN.md §12):
//   1. Soundness self-test — verify_classes explores EVERY enumerated state
//      and asserts that all states of an equivalence class produce the same
//      outcome, on all six single-threaded workloads and the multi-threaded
//      one. A single class mismatch falsifies the classifier.
//   2. Equal bug-finding power — with a seeded real bug re-opened (the PR 1
//      torn-append unbound checksum and the PR 5 buddy free-list capture
//      elision, via src/common/bug_hooks.h), pruned exploration must report
//      exactly the same failure set as brute force while exploring fewer
//      states. Pruning may skip work, never verification coverage.
//   3. Differential state-class gate — across all six workloads at the
//      default budget, pruning must collapse enumerated states at least
//      five-fold in aggregate.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/common/bug_hooks.h"
#include "src/crashsim/harness.h"
#include "src/crashsim/workload_drivers.h"

namespace crashsim {
namespace {

const std::vector<std::string>& SingleThreadedWorkloads() {
  static const std::vector<std::string> kNames = {"list",    "btree",  "art",
                                                  "kvstore", "pmhash", "import"};
  return kNames;
}

HarnessReport RunHarness(const std::string& name, HarnessOptions options,
                  DriverOptions driver_options = {}) {
  auto driver = MakeDriver(name, driver_options);
  EXPECT_NE(driver, nullptr) << name;
  Harness harness(*driver, options);
  auto report = harness.Run();
  EXPECT_TRUE(report.ok()) << name << ": " << report.status().ToString();
  return report.ok() ? *report : HarnessReport{};
}

// The failure set: distinct failing outcomes among explored states. Pruned
// and brute-force runs must agree on this set, not on per-state counts (the
// whole point of pruning is exploring fewer states per outcome).
std::set<std::string> FailureSet(const HarnessReport& report) {
  std::set<std::string> failures;
  for (const HarnessReport::StateOutcome& outcome : report.outcomes) {
    if (outcome.explored && !outcome.ok) {
      failures.insert(outcome.outcome);
    }
  }
  return failures;
}

// Clears every bug hook even when a test fails mid-way: a leaked hook would
// silently poison every later test in the binary.
class BugHookGuard {
 public:
  ~BugHookGuard() {
    puddles::bug_hooks::torn_append_unbound_checksum = false;
    puddles::bug_hooks::buddy_skip_protective_capture = false;
  }
};

// ---- Pillar 1: soundness self-test ----

TEST(CrashsimPruneSoundness, EveryClassIsOutcomeUniformOnAllWorkloads) {
  for (const std::string& name : SingleThreadedWorkloads()) {
    HarnessOptions options;
    options.verify_classes = true;
    options.enumerate.max_states = 120;
    HarnessReport report = RunHarness(name, options);
    EXPECT_TRUE(report.graph_built) << name;
    EXPECT_GT(report.states_explored, 0u) << name;
    EXPECT_EQ(report.class_mismatches, 0u) << name;
    EXPECT_EQ(report.recovery_failures, 0u) << name;
    EXPECT_EQ(report.invariant_failures, 0u) << name;
    for (const std::string& failure : report.failures) {
      ADD_FAILURE() << name << ": " << failure;
    }
    // Classification must actually merge states, or the self-test is vacuous.
    EXPECT_LT(report.state_classes, report.states_explored) << name;
  }
}

// ---- Multi-threaded trace, end to end ----

TEST(CrashsimPruneSoundness, MultiThreadedTraceExploresAndVerifiesCleanly) {
  DriverOptions driver_options;
  driver_options.ops = 4;
  HarnessOptions options;
  options.verify_classes = true;
  options.enumerate.max_states = 120;
  HarnessReport report = RunHarness("mt", options, driver_options);
  EXPECT_EQ(report.trace_threads, 3u);
  EXPECT_GT(report.thread_mask_states, 0u)
      << "multi-threaded trace produced no per-thread in-flight states";
  EXPECT_GT(report.states_explored, 0u);
  EXPECT_EQ(report.class_mismatches, 0u);
  EXPECT_EQ(report.recovery_failures, 0u);
  EXPECT_EQ(report.invariant_failures, 0u);
  for (const std::string& failure : report.failures) {
    ADD_FAILURE() << "mt: " << failure;
  }
  EXPECT_LT(report.state_classes, report.states_explored);
}

// ---- Pillar 2: equal bug-finding power on seeded real bugs ----

void ExpectPrunedMatchesBruteForce(const std::string& workload,
                                   DriverOptions driver_options = {}) {
  HarnessOptions brute;
  brute.prune = PruneMode::kNone;
  brute.record_outcomes = true;
  brute.enumerate.max_states = 200;
  HarnessReport brute_report = RunHarness(workload, brute, driver_options);

  HarnessOptions pruned = brute;
  pruned.prune = PruneMode::kGraph;
  HarnessReport pruned_report = RunHarness(workload, pruned, driver_options);

  // The seeded bug must actually fire under brute force, or this test proves
  // nothing about pruning.
  EXPECT_GT(brute_report.recovery_failures + brute_report.invariant_failures, 0u)
      << workload << ": seeded bug not detected by brute force";
  EXPECT_EQ(FailureSet(brute_report), FailureSet(pruned_report))
      << workload << ": pruned exploration missed or invented failures";
  EXPECT_LT(pruned_report.states_explored, brute_report.states_explored)
      << workload << ": pruning explored as much as brute force";
}

TEST(CrashsimPruneBugFinding, TornAppendUnboundChecksumCaughtEqually) {
  BugHookGuard guard;
  puddles::bug_hooks::torn_append_unbound_checksum = true;
  ExpectPrunedMatchesBruteForce("list");
}

TEST(CrashsimPruneBugFinding, BuddyCaptureElisionCaughtEqually) {
  BugHookGuard guard;
  puddles::bug_hooks::buddy_skip_protective_capture = true;
  // The elision only matters for buddy-path allocations, and only ART's
  // Node48/Node256 exceed the slab cutoff: run the config that crosses the
  // Node48 -> Node256 boundary inside the traced window, so promotions
  // allocate (and crash states roll back) buddy blocks.
  DriverOptions driver_options;
  driver_options.ops = 40;
  driver_options.preload = 44;
  ExpectPrunedMatchesBruteForce("art", driver_options);
}

// The PR 5 buddy capture-elision bug, re-opened against the arena refill
// path: slab carves during ArenaRefill allocate whole blocks from the buddy,
// so eliding the protective free-list capture corrupts crash states taken
// mid-refill. Brute force must catch it (proving the new path still depends
// on the capture), and pruned exploration must report the identical failure
// set while exploring fewer states.
TEST(CrashsimPruneBugFinding, BuddyCaptureElisionCaughtOnArenaRefill) {
  BugHookGuard guard;
  puddles::bug_hooks::buddy_skip_protective_capture = true;
  DriverOptions driver_options;
  driver_options.ops = 18;
  ExpectPrunedMatchesBruteForce("allocgc", driver_options);
}

// ---- Pillar 3: differential state-class gate ----

TEST(CrashsimPruneRatio, AggregateCollapseIsAtLeastFiveFold) {
  uint64_t enumerated = 0;
  uint64_t explored = 0;
  for (const std::string& name : SingleThreadedWorkloads()) {
    HarnessOptions options;
    options.prune = PruneMode::kGraph;
    options.enumerate.max_states = 400;
    HarnessReport report = RunHarness(name, options);
    EXPECT_TRUE(report.ok()) << name << ": " << report.Summary();
    EXPECT_GT(report.states_explored, 0u) << name;
    enumerated += report.states_enumerated;
    explored += report.states_explored;
  }
  ASSERT_GT(explored, 0u);
  EXPECT_GE(enumerated, 5 * explored)
      << "aggregate prune ratio " << (static_cast<double>(enumerated) / explored)
      << "x below the 5x bar (" << enumerated << " enumerated / " << explored
      << " explored)";
}

}  // namespace
}  // namespace crashsim
