// One behavioural test suite instantiated over every PM library adapter:
// proves the shared workload implementations (list, B-tree, KV store) behave
// identically on Puddles, PMDK-like, Romulus, Atlas, and go-pmem — the
// precondition for the Figs. 9–11 comparisons to be apples-to-apples.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <map>

#include "src/common/rng.h"
#include "src/workloads/adapters.h"
#include "src/workloads/art.h"
#include "src/workloads/btree.h"
#include "src/workloads/kvstore.h"
#include "src/workloads/list.h"
#include "src/workloads/ycsb.h"

namespace workloads {
namespace {

namespace fs = std::filesystem;

// Per-library environment: owns pool/daemon state and yields an adapter.
template <typename Adapter>
struct LibEnv;

fs::path TestDir() {
  auto dir = fs::temp_directory_path() /
             ("workloads_test_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name());
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

constexpr size_t kHeap = 64 << 20;

template <>
struct LibEnv<FatPtrAdapter> {
  LibEnv() : dir(TestDir()) {
    auto created = fatptr::FatPool::Create((dir / "pool").string(), kHeap);
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    pool = std::make_unique<fatptr::FatPool>(std::move(*created));
  }
  ~LibEnv() { fs::remove_all(dir); }
  FatPtrAdapter adapter() { return FatPtrAdapter(pool.get()); }
  fs::path dir;
  std::unique_ptr<fatptr::FatPool> pool;
};

template <>
struct LibEnv<RomulusAdapter> {
  LibEnv() : dir(TestDir()) {
    auto created = romulus::RomulusPool::Create((dir / "pool").string(), kHeap);
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    pool = std::make_unique<romulus::RomulusPool>(std::move(*created));
  }
  ~LibEnv() { fs::remove_all(dir); }
  RomulusAdapter adapter() { return RomulusAdapter(pool.get()); }
  fs::path dir;
  std::unique_ptr<romulus::RomulusPool> pool;
};

template <>
struct LibEnv<AtlasAdapter> {
  LibEnv() : dir(TestDir()) {
    auto created = atlaspm::AtlasPool::Create((dir / "pool").string(), kHeap);
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    pool = std::make_unique<atlaspm::AtlasPool>(std::move(*created));
  }
  ~LibEnv() { fs::remove_all(dir); }
  AtlasAdapter adapter() { return AtlasAdapter(pool.get()); }
  fs::path dir;
  std::unique_ptr<atlaspm::AtlasPool> pool;
};

template <>
struct LibEnv<GoPmemAdapter> {
  LibEnv() : dir(TestDir()) {
    auto created = gopmem::GoPmemPool::Create((dir / "pool").string(), kHeap);
    EXPECT_TRUE(created.ok()) << created.status().ToString();
    pool = std::make_unique<gopmem::GoPmemPool>(std::move(*created));
  }
  ~LibEnv() { fs::remove_all(dir); }
  GoPmemAdapter adapter() { return GoPmemAdapter(pool.get()); }
  fs::path dir;
  std::unique_ptr<gopmem::GoPmemPool> pool;
};

template <>
struct LibEnv<PuddlesAdapter> {
  LibEnv() : dir(TestDir()) {
    auto started = puddled::Daemon::Start({.root_dir = (dir / "root").string()});
    EXPECT_TRUE(started.ok());
    daemon = std::move(*started);
    auto rt = puddles::Runtime::Create(
        std::make_shared<puddled::EmbeddedDaemonClient>(daemon.get()));
    EXPECT_TRUE(rt.ok());
    runtime = std::move(*rt);
    auto created = runtime->CreatePool("workload");
    EXPECT_TRUE(created.ok());
    pool = *created;
  }
  ~LibEnv() {
    runtime.reset();
    daemon.reset();
    fs::remove_all(dir);
  }
  PuddlesAdapter adapter() { return PuddlesAdapter(pool); }
  fs::path dir;
  std::unique_ptr<puddled::Daemon> daemon;
  std::unique_ptr<puddles::Runtime> runtime;
  puddles::Pool* pool = nullptr;
};

template <typename Adapter>
class WorkloadTest : public ::testing::Test {
 protected:
  LibEnv<Adapter> env_;
};

using AllAdapters = ::testing::Types<PuddlesAdapter, FatPtrAdapter, RomulusAdapter,
                                     AtlasAdapter, GoPmemAdapter>;

class AdapterNames {
 public:
  template <typename T>
  static std::string GetName(int) {
    return T::kName;
  }
};

TYPED_TEST_SUITE(WorkloadTest, AllAdapters, AdapterNames);

TYPED_TEST(WorkloadTest, ListInsertTraverseDelete) {
  PersistentList<TypeParam>::RegisterTypes();
  PersistentList<TypeParam> list(this->env_.adapter());
  ASSERT_TRUE(list.Init().ok());

  constexpr uint64_t kN = 500;
  uint64_t expected = 0;
  for (uint64_t i = 0; i < kN; ++i) {
    ASSERT_TRUE(list.InsertTail(i).ok());
    expected += i;
  }
  EXPECT_EQ(list.count(), kN);
  EXPECT_EQ(list.Sum(), expected);

  for (uint64_t i = 0; i < kN / 2; ++i) {
    ASSERT_TRUE(list.DeleteHead().ok());
    expected -= i;
  }
  EXPECT_EQ(list.count(), kN / 2);
  EXPECT_EQ(list.Sum(), expected);
}

TYPED_TEST(WorkloadTest, BTreeInsertSearchDelete) {
  PersistentBTree<TypeParam>::RegisterTypes();
  PersistentBTree<TypeParam> tree(this->env_.adapter());
  ASSERT_TRUE(tree.Init().ok());

  // Insert shuffled keys; search everything; delete half; verify.
  constexpr uint64_t kN = 2000;
  std::vector<uint64_t> keys(kN);
  for (uint64_t i = 0; i < kN; ++i) {
    keys[i] = i * 7 + 1;
  }
  puddles::Xoshiro256 rng(42);
  for (size_t i = kN; i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.Below(i)]);
  }
  for (uint64_t key : keys) {
    ASSERT_TRUE(tree.Insert(key, key * 2).ok()) << key;
  }
  EXPECT_EQ(tree.size(), kN);

  uint64_t value = 0;
  for (uint64_t key : keys) {
    ASSERT_TRUE(tree.Search(key, &value)) << key;
    EXPECT_EQ(value, key * 2);
  }
  EXPECT_FALSE(tree.Search(3, nullptr));  // 3 ≡ not of form 7i+1.

  for (size_t i = 0; i < kN / 2; ++i) {
    ASSERT_TRUE(tree.Delete(keys[i]).ok()) << keys[i];
  }
  EXPECT_EQ(tree.size(), kN / 2);
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(tree.Search(keys[i], nullptr), i >= kN / 2) << keys[i];
  }

  EXPECT_FALSE(tree.Delete(999999).ok());
}

TYPED_TEST(WorkloadTest, BTreeUpdateInPlace) {
  PersistentBTree<TypeParam>::RegisterTypes();
  PersistentBTree<TypeParam> tree(this->env_.adapter());
  ASSERT_TRUE(tree.Init().ok());
  ASSERT_TRUE(tree.Insert(5, 50).ok());
  ASSERT_TRUE(tree.Insert(5, 55).ok());
  EXPECT_EQ(tree.size(), 1u);
  uint64_t value;
  ASSERT_TRUE(tree.Search(5, &value));
  EXPECT_EQ(value, 55u);
}

TYPED_TEST(WorkloadTest, KvStorePutGetDelete) {
  KvStore<TypeParam>::RegisterTypes();
  KvStore<TypeParam> kv(this->env_.adapter());
  ASSERT_TRUE(kv.Init(1 << 10).ok());

  char value[kKvValueSize] = {};
  char out[kKvValueSize] = {};
  for (int i = 0; i < 300; ++i) {
    std::snprintf(value, sizeof(value), "value-%d", i);
    ASSERT_TRUE(kv.Put(YcsbStream::KeyFor(i), value).ok());
  }
  EXPECT_EQ(kv.size(), 300u);

  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(kv.Get(YcsbStream::KeyFor(i), out)) << i;
    std::snprintf(value, sizeof(value), "value-%d", i);
    EXPECT_STREQ(out, value);
  }
  EXPECT_FALSE(kv.Get("user-missing", out));

  // Update.
  std::snprintf(value, sizeof(value), "updated");
  ASSERT_TRUE(kv.Put(YcsbStream::KeyFor(7), value).ok());
  ASSERT_TRUE(kv.Get(YcsbStream::KeyFor(7), out));
  EXPECT_STREQ(out, "updated");
  EXPECT_EQ(kv.size(), 300u);

  // Delete.
  ASSERT_TRUE(kv.Delete(YcsbStream::KeyFor(7)).ok());
  EXPECT_FALSE(kv.Get(YcsbStream::KeyFor(7), out));
  EXPECT_FALSE(kv.Delete(YcsbStream::KeyFor(7)).ok());
  EXPECT_EQ(kv.size(), 299u);

  EXPECT_GE(kv.Scan(YcsbStream::KeyFor(1), 10), 0u);
}

// ART behaves identically across libraries: same insert/search/erase results
// and the same ordered scans (the adapter HandleCast + variable-node paths
// are exercised per library).
TYPED_TEST(WorkloadTest, ArtInsertSearchEraseScan) {
  ArtIndex<TypeParam>::RegisterTypes();
  ArtIndex<TypeParam> art(this->env_.adapter());
  ASSERT_TRUE(art.Init().ok());

  // Shuffled keys spanning several radix levels (dense low bytes plus sparse
  // high stems) so every node variant and prefix split occurs.
  constexpr uint64_t kN = 600;
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < kN / 2; ++i) {
    keys.push_back(i);  // Dense: fans one subtree out to Node256.
  }
  for (uint64_t i = 0; i < kN / 2; ++i) {
    keys.push_back(0x0101010101010100ULL * ((i % 5) + 1) + i);  // Sparse stems.
  }
  puddles::Xoshiro256 rng(99);
  for (size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.Below(i)]);
  }
  for (uint64_t key : keys) {
    ASSERT_TRUE(art.Insert(key, key ^ 0xABCD).ok()) << key;
  }
  EXPECT_EQ(art.size(), kN);

  uint64_t value = 0;
  for (uint64_t key : keys) {
    ASSERT_TRUE(art.Search(key, &value)) << key;
    EXPECT_EQ(value, key ^ 0xABCD);
  }
  EXPECT_FALSE(art.Search(kN, nullptr));  // Gap between dense and sparse runs.

  // Ordered full scan returns every key, sorted.
  std::vector<std::pair<uint64_t, uint64_t>> scanned;
  EXPECT_EQ(art.Scan(0, static_cast<int>(kN + 10), &scanned), kN);
  std::vector<uint64_t> sorted_keys = keys;
  std::sort(sorted_keys.begin(), sorted_keys.end());
  ASSERT_EQ(scanned.size(), kN);
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(scanned[i].first, sorted_keys[i]) << i;
  }

  // Erase half; the rest stays intact and scans shrink accordingly.
  for (size_t i = 0; i < kN / 2; ++i) {
    ASSERT_TRUE(art.Erase(keys[i]).ok()) << keys[i];
  }
  EXPECT_EQ(art.size(), kN / 2);
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(art.Search(keys[i], nullptr), i >= kN / 2) << keys[i];
  }
  EXPECT_FALSE(art.Erase(keys[0]).ok());
  scanned.clear();
  EXPECT_EQ(art.Scan(0, static_cast<int>(kN), &scanned), kN / 2);
}

// ---- YCSB generator sanity ----

TEST(YcsbTest, ZipfianIsSkewed) {
  ZipfianGenerator zipf(1000);
  puddles::Xoshiro256 rng(7);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) {
    counts[zipf.Next(rng)]++;
  }
  // The most popular item must dominate (zipfian 0.99 → item 0 gets ~7-10%+).
  int max_count = 0;
  for (const auto& [item, count] : counts) {
    max_count = std::max(max_count, count);
  }
  EXPECT_GT(max_count, 5000) << "distribution not skewed";
  // All draws in range.
  EXPECT_LT(counts.rbegin()->first, 1000u);
}

TEST(YcsbTest, WorkloadMixesMatchSpecs) {
  auto mix_of = [](YcsbWorkload workload) {
    YcsbStream stream(workload, 1000, 3);
    std::map<YcsbOp, int> mix;
    for (int i = 0; i < 20000; ++i) {
      mix[stream.Next().op]++;
    }
    return mix;
  };

  auto a = mix_of(YcsbWorkload::kA);
  EXPECT_NEAR(a[YcsbOp::kRead], 10000, 500);
  EXPECT_NEAR(a[YcsbOp::kUpdate], 10000, 500);

  auto b = mix_of(YcsbWorkload::kB);
  EXPECT_NEAR(b[YcsbOp::kRead], 19000, 400);

  auto c = mix_of(YcsbWorkload::kC);
  EXPECT_EQ(c[YcsbOp::kRead], 20000);

  auto d = mix_of(YcsbWorkload::kD);
  EXPECT_NEAR(d[YcsbOp::kInsert], 1000, 300);

  auto e = mix_of(YcsbWorkload::kE);
  EXPECT_NEAR(e[YcsbOp::kScan], 19000, 400);

  auto f = mix_of(YcsbWorkload::kF);
  EXPECT_NEAR(f[YcsbOp::kReadModifyWrite], 10000, 500);

  auto g = mix_of(YcsbWorkload::kG);
  EXPECT_NEAR(g[YcsbOp::kUpdate], 19000, 400);
}

TEST(YcsbTest, KeysAreStable) {
  EXPECT_EQ(YcsbStream::KeyFor(1), "user0000000000000001");
  EXPECT_EQ(YcsbStream::KeyFor(1), YcsbStream::KeyFor(1));
  EXPECT_NE(YcsbStream::KeyFor(1), YcsbStream::KeyFor(2));
}

// ---- Library-specific behaviours ----

TEST(FatPtrTest, DuplicateUuidOpenRefused) {
  auto dir = TestDir();
  {
    auto pool = fatptr::FatPool::Create((dir / "pool").string(), 1 << 20);
    ASSERT_TRUE(pool.ok());
    // Copy the pool file while open.
    fs::copy_file(dir / "pool", dir / "pool_copy");
    // PMDK restriction: the copy has the same UUID ⇒ refused while open.
    auto copy = fatptr::FatPool::Open((dir / "pool_copy").string());
    EXPECT_EQ(copy.status().code(), puddles::StatusCode::kAlreadyExists)
        << "fat-pointer pools must refuse duplicate-UUID opens (§2.3)";
  }
  // After the original closes, the copy can open (but never both at once).
  auto copy = fatptr::FatPool::Open((dir / "pool_copy").string());
  EXPECT_TRUE(copy.ok());
  fs::remove_all(dir);
}

TEST(RomulusTest, AbortRestoresFromTwin) {
  auto dir = TestDir();
  auto pool = romulus::RomulusPool::Create((dir / "pool").string(), 1 << 20);
  ASSERT_TRUE(pool.ok());
  auto obj = pool->Alloc<uint64_t>();
  ASSERT_TRUE(obj.ok());
  **obj = 10;
  ASSERT_TRUE(pool->TxRun([&] {
    (void)pool->TxAdd(*obj);
    **obj = 11;
  }).ok());
  EXPECT_EQ(**obj, 11u);

  ASSERT_TRUE(pool->TxBegin().ok());
  ASSERT_TRUE(pool->TxAdd(*obj).ok());
  **obj = 99;
  ASSERT_TRUE(pool->TxAbort().ok());
  EXPECT_EQ(**obj, 11u) << "abort must restore from the back region";
  fs::remove_all(dir);
}

TEST(RomulusTest, RecoveryFromMutatingState) {
  auto dir = TestDir();
  {
    auto pool = romulus::RomulusPool::Create((dir / "pool").string(), 1 << 20);
    ASSERT_TRUE(pool.ok());
    auto allocated = pool->Alloc<uint64_t>();
    ASSERT_TRUE(allocated.ok());
    uint64_t* obj = *allocated;
    pool->SetRoot(obj);
    *obj = 7;
    pmem::FlushFence(obj, sizeof(*obj));
    ASSERT_TRUE(pool->TxRun([&] {
      (void)pool->TxAdd(obj);
      *obj = 8;
    }).ok());
    // Crash mid-transaction: leave state = MUTATING with a torn main.
    ASSERT_TRUE(pool->TxBegin().ok());
    ASSERT_TRUE(pool->TxAdd(obj).ok());
    *obj = 1234;  // Never committed.
    pmem::FlushFence(obj, sizeof(*obj));
    // Pool destroyed here without commit: state word stays MUTATING.
  }
  auto reopened = romulus::RomulusPool::Open((dir / "pool").string());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  uint64_t* obj = reopened->Root<uint64_t>();
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(*obj, 8u) << "MUTATING recovery must restore main from back";
  fs::remove_all(dir);
}

}  // namespace
}  // namespace workloads
