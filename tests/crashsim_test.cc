// crashsim: systematic crash-state enumeration and recovery verification.
//
// The acceptance bar for the subsystem: for the btree and kvstore workloads,
// every enumerated crash state (>= 100 per workload at the default budget)
// must recover through the application-independent replay path with all
// invariants holding, with both fence-boundary and eviction-subset states
// explored. Plus unit coverage for the trace recorder, the enumerator's
// determinism and budgeting, and the ShadowHeap's seeded-eviction
// reproducibility (crashsim replayability depends on it).
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "src/crashsim/harness.h"
#include "src/crashsim/state_enumerator.h"
#include "src/crashsim/trace.h"
#include "src/crashsim/workload_drivers.h"
#include "src/pmem/flush.h"
#include "src/pmem/shadow.h"

namespace crashsim {
namespace {

// ---- Full-stack recovery verification per workload ----

HarnessReport RunWorkload(const std::string& name, int ops = 24) {
  DriverOptions driver_options;
  driver_options.ops = ops;
  auto driver = MakeDriver(name, driver_options);
  EXPECT_NE(driver, nullptr) << name;
  HarnessOptions options;
  Harness harness(*driver, options);
  auto report = harness.Run();
  EXPECT_TRUE(report.ok()) << name << ": " << report.status().ToString();
  return report.ok() ? *report : HarnessReport{};
}

void ExpectFullRecovery(const HarnessReport& report, uint64_t min_states) {
  EXPECT_GE(report.states_enumerated, min_states);
  EXPECT_GT(report.fence_boundary_states, 0u);
  EXPECT_GT(report.eviction_states, 0u);
  EXPECT_EQ(report.recovery_failures, 0u);
  for (const std::string& failure : report.failures) {
    ADD_FAILURE() << report.workload << ": " << failure;
  }
  EXPECT_EQ(report.invariant_failures, 0u);
  EXPECT_EQ(report.recoveries_ok, report.states_enumerated);
  // The run must actually traverse distinct committed states, or the
  // membership oracle is vacuous.
  EXPECT_GT(report.distinct_outcomes, 2u);
  EXPECT_GT(report.epochs, 0u);
  EXPECT_GT(report.flush_calls, 0u);
  EXPECT_GT(report.fences, 0u);
}

TEST(CrashsimWorkloads, BtreeRecoversFromEveryEnumeratedState) {
  ExpectFullRecovery(RunWorkload("btree"), 100);
}

TEST(CrashsimWorkloads, KvstoreRecoversFromEveryEnumeratedState) {
  ExpectFullRecovery(RunWorkload("kvstore"), 100);
}

TEST(CrashsimWorkloads, ListRecoversFromEveryEnumeratedState) {
  ExpectFullRecovery(RunWorkload("list"), 100);
}

TEST(CrashsimWorkloads, PmhashRecoversFromEveryEnumeratedState) {
  ExpectFullRecovery(RunWorkload("pmhash", 16), 40);
}

// Epoch-based group commit (docs/epoch.md): the driver pins epoch boundaries
// to Sync points, so the membership oracle proves epoch atomicity — a crash
// inside an epoch must roll back every thread's transactions of that epoch,
// never a prefix (cells from round N with committed markers from N-1 is a
// DATA_LOSS mixture). The acceptance bar for the subsystem is ≥300 explored
// states, zero failures — this is what caught the stale-entry revalidation
// bug that tied the epoch tag into the entry checksum (DESIGN.md §13).
TEST(CrashsimWorkloads, EpochRecoversFromEveryEnumeratedState) {
  ExpectFullRecovery(RunWorkload("epoch", 10), 300);
}

// Adaptive radix tree: the acceptance bar for the index subsystem is ≥300
// explored states with zero recovery failures. The driver preloads to just
// under the Node48 -> Node256 boundary and mixes dense inserts, sparse-stem
// inserts, and erases, so lazy expansion, prefix splits, every promotion and
// demotion, and path collapse all mutate inside the traced window; the
// fingerprint is the ordered scan, so recovery is verified through the
// range-scan path as well as structure membership.
TEST(CrashsimWorkloads, ArtRecoversFromEveryEnumeratedState) {
  DriverOptions driver_options;
  driver_options.ops = 40;
  driver_options.preload = 44;  // 44 dense children: traced ops cross 48.
  auto driver = MakeDriver("art", driver_options);
  ASSERT_NE(driver, nullptr);
  HarnessOptions options;
  Harness harness(*driver, options);
  auto report = harness.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->states_enumerated, 300u);
  EXPECT_GT(report->fence_boundary_states, 0u);
  EXPECT_GT(report->eviction_states, 0u);
  EXPECT_EQ(report->recovery_failures, 0u);
  for (const std::string& failure : report->failures) {
    ADD_FAILURE() << report->workload << ": " << failure;
  }
  EXPECT_EQ(report->invariant_failures, 0u);
  EXPECT_EQ(report->recoveries_ok, report->states_enumerated);
  EXPECT_GT(report->distinct_outcomes, 2u);
}

// Per-thread arena allocator with GC recovery ("allocgc", DESIGN.md §14):
// batched slab refills, unlogged arena frees, and periodic full flush-backs,
// crashed mid-refill and mid-flush-back. The acceptance bar for the arena
// subsystem: ≥300 enumerated crash states, every one recovering through undo
// replay + arena GC with zero failures, and the driver's differential oracle
// (reachable set identical before and after GC, GC idempotent) holding in
// every state.
TEST(CrashsimWorkloads, AllocGcRecoversFromEveryEnumeratedState) {
  ExpectFullRecovery(RunWorkload("allocgc", 18), 300);
}

// The same bar under persistence-graph pruning: the GC-recovery states the
// pruner keeps must still all pass, with the enumerated set uncollapsed at
// ≥300 so pruning is exercised against the full arena window.
TEST(CrashsimWorkloads, AllocGcRecoversUnderGraphPruning) {
  DriverOptions driver_options;
  driver_options.ops = 18;
  auto driver = MakeDriver("allocgc", driver_options);
  ASSERT_NE(driver, nullptr);
  HarnessOptions options;
  options.prune = PruneMode::kGraph;
  Harness harness(*driver, options);
  auto report = harness.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->states_enumerated, 300u);
  EXPECT_GT(report->states_explored, 0u);
  EXPECT_LT(report->states_explored, report->states_enumerated);
  EXPECT_EQ(report->recovery_failures, 0u);
  for (const std::string& failure : report->failures) {
    ADD_FAILURE() << report->workload << ": " << failure;
  }
  EXPECT_EQ(report->invariant_failures, 0u);
}

// Import/relocation path (§4.2, DESIGN.md §7): export → import with base
// conflicts → streaming rewrite under the frontier/flag protocol, recovered
// through the stock rewrite-on-map resume. The acceptance bar for the
// subsystem: ≥300 distinct crash states on this path, all recovering with the
// copy's logical contents intact (the driver's source-mutation tripwire makes
// any stale pointer chased back into source memory a fingerprint mismatch).
TEST(CrashsimWorkloads, ImportRewriteRecoversFromEveryEnumeratedState) {
  DriverOptions driver_options;
  driver_options.ops = 160;               // Exported list nodes.
  driver_options.rewrite_batch_objects = 2;  // Dense frontier persists.
  auto driver = MakeDriver("import", driver_options);
  ASSERT_NE(driver, nullptr);
  HarnessOptions options;
  Harness harness(*driver, options);
  auto report = harness.Run();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->states_enumerated, 300u);
  EXPECT_GT(report->fence_boundary_states, 0u);
  EXPECT_GT(report->eviction_states, 0u);
  EXPECT_EQ(report->recovery_failures, 0u);
  for (const std::string& failure : report->failures) {
    ADD_FAILURE() << report->workload << ": " << failure;
  }
  EXPECT_EQ(report->invariant_failures, 0u);
  EXPECT_EQ(report->recoveries_ok, report->states_enumerated);
  // The rewrite never changes logical content, so every crash state on this
  // path must recover to the ONE legal fingerprint (unlike the mutation
  // workloads, where each op boundary is distinct).
  EXPECT_EQ(report->distinct_outcomes, 1u);
  EXPECT_GT(report->epochs, 100u) << "batched frontier protocol should persist often";
}

// ---- Trace recorder ----

TEST(CrashsimTrace, RecordsEpochsFlushDeltasAndDirtyLines) {
  alignas(64) static uint8_t region[512];
  std::memset(region, 0, sizeof(region));

  TraceRecorder recorder;
  recorder.Start({TracedRegion{reinterpret_cast<uintptr_t>(region), sizeof(region), "", "r"}});

  region[0] = 1;
  pmem::Flush(&region[0], 1);
  pmem::Fence();  // Epoch 0: one delta, no dirty lines.

  region[64] = 2;
  pmem::Flush(&region[64], 1);  // In-flight flush.
  region[128] = 3;              // Dirty, never flushed.
  pmem::Fence();                // Epoch 1: one delta, one dirty line.

  region[256] = 4;  // Dirty when Stop closes the trailing epoch.
  Trace trace = recorder.Stop();

  ASSERT_EQ(trace.epochs.size(), 3u);
  EXPECT_EQ(trace.fences, 2u);
  EXPECT_EQ(trace.flush_calls, 2u);

  ASSERT_EQ(trace.epochs[0].deltas.size(), 1u);
  EXPECT_EQ(trace.epochs[0].deltas[0].offset, 0u);
  EXPECT_EQ(trace.epochs[0].deltas[0].bytes.size(), 64u);
  EXPECT_EQ(trace.epochs[0].deltas[0].bytes[0], 1);
  EXPECT_TRUE(trace.epochs[0].dirty_at_close.empty());

  ASSERT_EQ(trace.epochs[1].deltas.size(), 1u);
  EXPECT_EQ(trace.epochs[1].deltas[0].offset, 64u);
  ASSERT_EQ(trace.epochs[1].dirty_at_close.size(), 1u);
  EXPECT_EQ(trace.epochs[1].dirty_at_close[0].offset, 128u);
  EXPECT_EQ(trace.epochs[1].dirty_at_close[0].live[0], 3);

  // The trailing epoch sees both still-dirty lines (128 stays unflushed).
  ASSERT_EQ(trace.epochs[2].dirty_at_close.size(), 2u);
  EXPECT_EQ(trace.epochs[2].dirty_at_close[0].offset, 128u);
  EXPECT_EQ(trace.epochs[2].dirty_at_close[1].offset, 256u);
}

TEST(CrashsimTrace, IgnoresFlushesOutsideTracedRegions) {
  alignas(64) static uint8_t traced[128];
  alignas(64) static uint8_t untraced[128];
  std::memset(traced, 0, sizeof(traced));
  std::memset(untraced, 0, sizeof(untraced));

  TraceRecorder recorder;
  recorder.Start({TracedRegion{reinterpret_cast<uintptr_t>(traced), sizeof(traced), "", "t"}});
  untraced[0] = 9;
  pmem::FlushFence(&untraced[0], 1);
  Trace trace = recorder.Stop();
  ASSERT_EQ(trace.epochs.size(), 2u);
  EXPECT_TRUE(trace.epochs[0].deltas.empty());
  EXPECT_TRUE(trace.epochs[0].dirty_at_close.empty());
}

// ---- State enumerator ----

Trace MakeSyntheticTrace(size_t num_epochs) {
  Trace trace;
  trace.regions.push_back(TracedRegion{0, 4096, "", "synthetic"});
  for (size_t e = 0; e < num_epochs; ++e) {
    Epoch epoch;
    FlushDelta delta;
    delta.region = 0;
    delta.offset = (e % 8) * 64;
    delta.bytes.assign(64, static_cast<uint8_t>(e + 1));
    epoch.deltas.push_back(std::move(delta));
    DirtyLine dirty;
    dirty.region = 0;
    dirty.offset = 512 + (e % 4) * 64;
    dirty.live.assign(64, static_cast<uint8_t>(0x80 + e));
    epoch.dirty_at_close.push_back(std::move(dirty));
    trace.epochs.push_back(std::move(epoch));
  }
  trace.fences = num_epochs;
  trace.flush_calls = num_epochs;
  return trace;
}

TEST(CrashsimEnumerator, CoversEveryFenceBoundaryPlusEvictionSubsets) {
  Trace trace = MakeSyntheticTrace(10);
  EnumerationOptions options;
  options.eviction_subsets_per_epoch = 3;
  options.max_states = 0;  // Unbounded.
  std::vector<CrashStateSpec> specs = EnumerateCrashStates(trace, options);
  // 10 epochs with in-flight lines: (1 boundary + 3 subsets) each, plus the
  // complete-run state.
  ASSERT_EQ(specs.size(), 10u * 4u + 1u);
  uint64_t boundaries = 0, evictions = 0;
  for (const CrashStateSpec& spec : specs) {
    spec.evict ? ++evictions : ++boundaries;
  }
  EXPECT_EQ(boundaries, 11u);
  EXPECT_EQ(evictions, 30u);
}

TEST(CrashsimEnumerator, BudgetDownsamplesDeterministically) {
  Trace trace = MakeSyntheticTrace(50);
  EnumerationOptions options;
  options.max_states = 40;
  std::vector<CrashStateSpec> a = EnumerateCrashStates(trace, options);
  std::vector<CrashStateSpec> b = EnumerateCrashStates(trace, options);
  ASSERT_EQ(a.size(), 40u);
  ASSERT_EQ(b.size(), 40u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].epoch, b[i].epoch);
    EXPECT_EQ(a[i].evict, b[i].evict);
    EXPECT_EQ(a[i].eviction_seed, b[i].eviction_seed);
  }
  // Sampling spans the whole run, not just a prefix.
  EXPECT_EQ(a.front().epoch, 0u);
  EXPECT_GT(a.back().epoch, 40u);
}

TEST(CrashsimEnumerator, MaterializationIsDeterministicAndOrdered) {
  Trace trace = MakeSyntheticTrace(6);
  EnumerationOptions options;
  options.max_states = 0;
  std::vector<CrashStateSpec> specs = EnumerateCrashStates(trace, options);

  auto materialize = [&](const CrashStateSpec& spec) {
    std::vector<uint8_t> image(4096, 0);
    MaterializeCrashState(trace, spec,
                          [&](uint32_t region, uint64_t offset, const uint8_t* data,
                              size_t size) {
                            ASSERT_EQ(region, 0u);
                            ASSERT_LE(offset + size, image.size());
                            std::memcpy(image.data() + offset, data, size);
                          });
    return image;
  };

  for (const CrashStateSpec& spec : specs) {
    EXPECT_EQ(materialize(spec), materialize(spec)) << spec.ToString();
  }

  // A fence-boundary state at epoch k contains exactly the deltas of epochs
  // < k and nothing from the open epoch.
  CrashStateSpec at3;
  at3.epoch = 3;
  std::vector<uint8_t> image = materialize(at3);
  EXPECT_EQ(image[0 * 64], 1);  // Epoch 0 delta.
  EXPECT_EQ(image[2 * 64], 3);  // Epoch 2 delta.
  EXPECT_EQ(image[3 * 64], 0);  // Epoch 3 delta is in flight: excluded.
  EXPECT_EQ(image[512], 0);     // Dirty lines excluded without eviction.
}

TEST(CrashsimEnumerator, EvictionSubsetsDifferAcrossSeedsAndIncludeDirtyLines) {
  Trace trace = MakeSyntheticTrace(4);
  EnumerationOptions options;
  options.max_states = 0;
  options.eviction_subsets_per_epoch = 8;
  options.eviction_probability = 0.5;
  std::vector<CrashStateSpec> specs = EnumerateCrashStates(trace, options);

  std::map<std::vector<uint8_t>, int> images;
  int dirty_included = 0;
  for (const CrashStateSpec& spec : specs) {
    if (!spec.evict || spec.epoch != 2) {
      continue;
    }
    std::vector<uint8_t> image(4096, 0);
    MaterializeCrashState(trace, spec,
                          [&](uint32_t, uint64_t offset, const uint8_t* data, size_t size) {
                            std::memcpy(image.data() + offset, data, size);
                          });
    if (image[512 + 2 * 64] != 0) {
      ++dirty_included;  // Epoch 2's dirty line made it into this subset.
    }
    images[image]++;
  }
  EXPECT_GT(images.size(), 1u) << "all eviction subsets produced the same image";
  EXPECT_GT(dirty_included, 0) << "dirty lines never included in any subset";
}

// ---- ShadowHeap seeded-eviction determinism (crashsim replayability) ----

TEST(CrashsimShadowDeterminism, SeededEvictionYieldsByteIdenticalDurableImages) {
  auto run = [](uint64_t seed) {
    alignas(64) static uint8_t region[64 * 64];
    for (size_t i = 0; i < sizeof(region); ++i) {
      region[i] = static_cast<uint8_t>(i * 7);
    }
    pmem::ShadowRegistry::Instance().Attach(region, sizeof(region));
    // Dirty a spread of lines with varied content, flush a few.
    for (int line = 0; line < 64; line += 2) {
      region[static_cast<size_t>(line) * 64 + 3] = static_cast<uint8_t>(0xc0 + line);
    }
    for (int line = 0; line < 64; line += 8) {
      pmem::Flush(&region[static_cast<size_t>(line) * 64], 1);
    }
    pmem::Fence();
    pmem::ShadowCrashOptions options;
    options.evict_random_lines = true;
    options.eviction_probability = 0.4;
    options.seed = seed;
    pmem::ShadowRegistry::Instance().SimulateCrash(options);
    std::vector<uint8_t> image(region, region + sizeof(region));
    pmem::ShadowRegistry::Instance().Detach(region);
    return image;
  };

  // Byte-identical across runs for a fixed seed; different across seeds.
  EXPECT_EQ(run(7), run(7));
  EXPECT_EQ(run(1234), run(1234));
  EXPECT_NE(run(7), run(8));
}

}  // namespace
}  // namespace crashsim
