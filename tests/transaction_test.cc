// Transaction runtime tests, including the paper's §5.1 correctness check:
// "we inject crashes into Puddles' runtime and run system-supported recovery
// ... for undo and redo logging and find that Puddles recover application
// data to a consistent and correct state every time."
#include "src/tx/transaction.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/pmem/shadow.h"
#include "src/tx/replay.h"
#include "src/tx/tx.h"

namespace puddles {
namespace {

// Buffer-backed transaction environment standing in for a Pool.
class TxEnv {
 public:
  explicit TxEnv(size_t log_capacity = 64 * 1024) : log_buffer_(log_capacity) {
    EXPECT_TRUE(LogRegion::Format(log_buffer_.data(), log_buffer_.size()).ok());
    auto log = LogRegion::Attach(log_buffer_.data(), log_buffer_.size());
    EXPECT_TRUE(log.ok());
    log_ = *log;
  }

  puddles::Result<Transaction*> BeginTx() {
    TxTarget target;
    target.log = &log_;
    target.grow = [this]() -> puddles::Result<std::pair<LogRegion*, Uuid>> {
      grown_buffers_.push_back(std::make_unique<std::vector<uint8_t>>(log_buffer_.size()));
      auto& buf = *grown_buffers_.back();
      RETURN_IF_ERROR(LogRegion::Format(buf.data(), buf.size()));
      auto region = LogRegion::Attach(buf.data(), buf.size());
      RETURN_IF_ERROR(region.status());
      grown_regions_.push_back(std::make_unique<LogRegion>(*region));
      return std::make_pair(grown_regions_.back().get(), Uuid::Generate());
    };
    target.release = [this](LogRegion* region) { ++released_; };
    return Transaction::Begin(target);
  }

  LogRegion& log() { return log_; }
  std::vector<LogRegion> Chain() {
    std::vector<LogRegion> chain{log_};
    for (auto& region : grown_regions_) {
      chain.push_back(*region);
    }
    return chain;
  }
  int released() const { return released_; }

 private:
  std::vector<uint8_t> log_buffer_;
  LogRegion log_;
  std::vector<std::unique_ptr<std::vector<uint8_t>>> grown_buffers_;
  std::vector<std::unique_ptr<LogRegion>> grown_regions_;
  int released_ = 0;
};

class IdentityResolver : public AddressResolver {
 public:
  void* Resolve(uint64_t addr, uint32_t size) override {
    return reinterpret_cast<void*>(addr);
  }
};

class TransactionTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Transaction::SetStageHook(nullptr);
    pmem::SetPersistObserver(nullptr);
    pmem::ShadowRegistry::Instance().DetachAll();
    // Drop any transaction a failed test left open. The TxEnv (and its log
    // buffer) is already gone, so state is abandoned, not aborted.
    Transaction::AbandonCurrentForTesting();
  }
};

// Counts ordering points (fences) on the persistence instruction stream —
// the observable the batched-persistence protocol (DESIGN.md §10) minimizes.
class FenceCounter : public pmem::PersistObserver {
 public:
  void OnFlushRange(const void*, size_t) override { ++flush_ranges_; }
  void OnFence() override { ++fences_; }
  int fences() const { return fences_; }
  int flush_ranges() const { return flush_ranges_; }

 private:
  int fences_ = 0;
  int flush_ranges_ = 0;
};

TEST_F(TransactionTest, CommitMakesUndoChangesStick) {
  TxEnv env;
  alignas(64) uint64_t slot = 1;

  auto tx = env.BeginTx();
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE((*tx)->AddUndo(&slot, sizeof(slot)).ok());
  slot = 2;
  ASSERT_TRUE((*tx)->Commit().ok());

  EXPECT_EQ(slot, 2u);
  EXPECT_TRUE(env.log().empty()) << "log must be reset after commit";
  EXPECT_EQ(env.log().seq_range(), (std::pair<uint32_t, uint32_t>{0, 2}));
}

TEST_F(TransactionTest, AbortRollsBackUndoChanges) {
  TxEnv env;
  alignas(64) uint64_t slot = 1;

  auto tx = env.BeginTx();
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE((*tx)->AddUndo(&slot, sizeof(slot)).ok());
  slot = 2;
  ASSERT_TRUE((*tx)->Abort().ok());
  EXPECT_EQ(slot, 1u);
  EXPECT_FALSE((*tx)->active());
}

TEST_F(TransactionTest, RedoDefersUntilCommit) {
  TxEnv env;
  alignas(64) uint64_t slot = 1;

  auto tx = env.BeginTx();
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE((*tx)->RedoSet(&slot, uint64_t{99}).ok());
  EXPECT_EQ(slot, 1u) << "redo writes must not be visible before commit";
  ASSERT_TRUE((*tx)->Commit().ok());
  EXPECT_EQ(slot, 99u);
}

TEST_F(TransactionTest, RedoDiscardedOnAbort) {
  TxEnv env;
  alignas(64) uint64_t slot = 1;
  auto tx = env.BeginTx();
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE((*tx)->RedoSet(&slot, uint64_t{99}).ok());
  ASSERT_TRUE((*tx)->Abort().ok());
  EXPECT_EQ(slot, 1u);
}

TEST_F(TransactionTest, HybridUndoThenRedoOnSameTx) {
  TxEnv env;
  alignas(64) uint64_t a = 1, b = 2;
  auto tx = env.BeginTx();
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE((*tx)->AddUndo(&a, sizeof(a)).ok());
  a = 10;
  ASSERT_TRUE((*tx)->RedoSet(&b, uint64_t{20}).ok());
  ASSERT_TRUE((*tx)->Commit().ok());
  EXPECT_EQ(a, 10u);
  EXPECT_EQ(b, 20u);
}

TEST_F(TransactionTest, VolatileUndoRestoredOnAbort) {
  TxEnv env;
  uint64_t dram = 5;  // Conceptually volatile state.
  auto tx = env.BeginTx();
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE((*tx)->AddVolatileUndo(&dram, sizeof(dram)).ok());
  dram = 6;
  ASSERT_TRUE((*tx)->Abort().ok());
  EXPECT_EQ(dram, 5u);
}

TEST_F(TransactionTest, FlatNesting) {
  TxEnv env;
  alignas(64) uint64_t slot = 1;
  auto outer = env.BeginTx();
  ASSERT_TRUE(outer.ok());
  EXPECT_EQ((*outer)->depth(), 1);
  auto inner = env.BeginTx();
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(*inner, *outer) << "flat nesting joins the outer transaction";
  EXPECT_EQ((*inner)->depth(), 2);
  ASSERT_TRUE((*inner)->AddUndo(&slot, sizeof(slot)).ok());
  slot = 3;
  ASSERT_TRUE((*inner)->Commit().ok());
  EXPECT_EQ(slot, 3u) << "inner commit must not publish yet";
  EXPECT_TRUE((*outer)->active()) << "outer level still open";
  ASSERT_TRUE((*outer)->Commit().ok());
  EXPECT_FALSE((*outer)->active());
}

TEST_F(TransactionTest, DeferredFreeRunsAtCommitOnly) {
  TxEnv env;
  int ran = 0;
  {
    auto tx = env.BeginTx();
    ASSERT_TRUE(tx.ok());
    (*tx)->DeferFree([&]() {
      ++ran;
      return OkStatus();
    });
    EXPECT_EQ(ran, 0);
    ASSERT_TRUE((*tx)->Commit().ok());
    EXPECT_EQ(ran, 1);
  }
  {
    auto tx = env.BeginTx();
    ASSERT_TRUE(tx.ok());
    (*tx)->DeferFree([&]() {
      ++ran;
      return OkStatus();
    });
    ASSERT_TRUE((*tx)->Abort().ok());
    EXPECT_EQ(ran, 1) << "aborted transaction must drop deferred frees";
  }
}

TEST_F(TransactionTest, LogGrowsIntoChain) {
  TxEnv env(4096);  // Tiny head log.
  std::vector<uint8_t> blob(1024, 0x5c);
  alignas(64) uint8_t targets[8][1024] = {};

  auto tx = env.BeginTx();
  ASSERT_TRUE(tx.ok());
  for (int i = 0; i < 8; ++i) {
    std::memcpy(targets[i], blob.data(), blob.size());
    ASSERT_TRUE((*tx)->AddUndo(targets[i], 1024).ok()) << "append " << i;
  }
  EXPECT_FALSE(env.log().next_log().is_nil()) << "head must link a continuation";
  ASSERT_TRUE((*tx)->Commit().ok());
  EXPECT_GT(env.released(), 0) << "grown regions returned after commit";
}

#ifndef PUDDLES_STRICT_API

// ---- Legacy macro shims (deprecated TX_BEGIN surface). ----
//
// These stay as regression coverage for out-of-tree code; strict-API builds
// poison the macros, so the whole section compiles away.

TEST_F(TransactionTest, TxMacrosCommitAndAbort) {
  TxEnv env;
  alignas(64) uint64_t slot = 1;

  TX_BEGIN(env) {
    TX_ADD(&slot);
    slot = 42;
  }
  TX_END;
  EXPECT_EQ(slot, 42u);

  TX_BEGIN(env) {
    TX_ADD(&slot);
    slot = 77;
    TxAbort();
  }
  TX_END;
  EXPECT_EQ(slot, 42u) << "TxAbort must roll back";
  EXPECT_EQ(tx_internal::LastLegacyCommitStatus().code(), StatusCode::kAborted)
      << "an unwound scope must not leave the previous commit status standing";

  // A user exception aborts and propagates.
  bool caught = false;
  try {
    TX_BEGIN(env) {
      TX_ADD(&slot);
      slot = 99;
      throw std::string("boom");
    }
    TX_END;
  } catch (const std::string&) {
    caught = true;
  }
  EXPECT_TRUE(caught);
  EXPECT_EQ(slot, 42u);
}

// Regression (issue 4 satellite): the old macros dereferenced the null
// thread-local when used outside TX_BEGIN — a guaranteed segfault. The shims
// must return FailedPrecondition instead.
TEST_F(TransactionTest, MacroTargetsOutsideTransactionFailCleanly) {
  alignas(64) uint64_t slot = 7;
  puddles::Status added = tx_internal::LegacyAddUndo(&slot, sizeof(slot));
  EXPECT_EQ(added.code(), StatusCode::kFailedPrecondition);
  const uint64_t next = 9;
  puddles::Status redone = tx_internal::LegacyRedoSet(&slot, next);
  EXPECT_EQ(redone.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(slot, 7u) << "failed logging must not touch the target";
  // The statement forms are safe no-ops as well (this used to crash).
  TX_ADD(&slot);
  TX_ADD_RANGE(&slot, sizeof(slot));
  TX_REDO_SET(&slot, next);
  EXPECT_EQ(slot, 7u);
}

// Regression (issue 4 satellite): a commit failure in the macro path used to
// throw std::runtime_error out of ~TxScope — terminate() territory when the
// scope unwinds for any other reason. It must abort and record the status.
TEST_F(TransactionTest, TxScopeCommitFailureDoesNotThrow) {
  TxEnv env;
  alignas(64) uint64_t slot = 1;
  EXPECT_NO_THROW({
    TX_BEGIN(env) {
      if (Transaction* tx = tx_internal::ImplicitTransaction()) {
        tx->DeferFree([] { return InternalError("deferred free exploded"); });
      }
      TX_ADD(&slot);
      slot = 2;
    }
    TX_END;
  });
  EXPECT_EQ(tx_internal::LastLegacyCommitStatus().code(), StatusCode::kInternal);
  EXPECT_EQ(slot, 1u) << "failed commit must roll back via the undo log";

  // A clean commit resets the recorded status.
  TX_BEGIN(env) {
    TX_ADD(&slot);
    slot = 3;
  }
  TX_END;
  EXPECT_TRUE(tx_internal::LastLegacyCommitStatus().ok());
  EXPECT_EQ(slot, 3u);
}

#endif  // !PUDDLES_STRICT_API

// ---- Fence accounting under batched group persistence (DESIGN.md §10). ----

// Acceptance gate: a transaction that undo-logs N=32 ranges inside a fresh
// allocation commits with a CONSTANT number of fences (≤3) — the appends are
// coverage-elided, the targets persist under the single stage-1 fence, and
// the undo-only commit point is the one-line log rearm.
TEST_F(TransactionTest, FreshRangeUndoTransactionCommitsInConstantFences) {
  TxEnv env;
  alignas(64) static uint8_t arena[32 * 64];
  std::memset(arena, 0, sizeof(arena));

  auto tx = env.BeginTx();
  ASSERT_TRUE(tx.ok());
  (*tx)->NoteFreshRange(arena, sizeof(arena));  // As Tx::Alloc would.

  FenceCounter counter;
  pmem::SetPersistObserver(&counter);
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE((*tx)->AddUndo(&arena[i * 64], 64).ok());
    arena[i * 64] = static_cast<uint8_t>(i + 1);
  }
  EXPECT_EQ(counter.fences(), 0) << "fresh-covered undo logging must not fence";
  ASSERT_TRUE((*tx)->Commit().ok());
  pmem::SetPersistObserver(nullptr);

  EXPECT_LE(counter.fences(), 3) << "N=32 logged ranges must commit in O(1) fences";
  EXPECT_EQ(counter.fences(), 2) << "stage-1 group fence + one-line log rearm";
}

// Redo-heavy transactions: staged appends cost zero fences during the body;
// the hybrid commit pays the same five ordering points whether it carries 4
// or 32 entries.
TEST_F(TransactionTest, RedoTransactionFenceCountIndependentOfEntryCount) {
  alignas(64) static uint64_t slots[32];
  auto run = [&](int n) {
    TxEnv env;
    std::memset(slots, 0, sizeof(slots));
    auto tx = env.BeginTx();
    EXPECT_TRUE(tx.ok());
    FenceCounter counter;
    pmem::SetPersistObserver(&counter);
    for (int i = 0; i < n; ++i) {
      EXPECT_TRUE((*tx)->RedoSet(&slots[i], uint64_t{1000} + i).ok());
    }
    const int body_fences = counter.fences();
    EXPECT_TRUE((*tx)->Commit().ok());
    pmem::SetPersistObserver(nullptr);
    EXPECT_EQ(body_fences, 0) << "redo staging must not fence";
    return counter.fences();
  };
  const int small = run(4);
  const int large = run(32);
  EXPECT_EQ(small, large) << "commit fences must not scale with redo entry count";
  EXPECT_EQ(large, 5) << "stage1 + (2,4) flip + stage2 + retire + reopen";
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(slots[i], 1000u + i);
  }
}

// The pre-mutation publication coalesces: everything staged since the last
// ordering point (redo entries here) rides the undo append's single fence.
TEST_F(TransactionTest, UndoPublicationCoalescesPendingStagedAppends) {
  TxEnv env;
  alignas(64) static uint64_t redo_a, redo_b, undo_target;
  redo_a = redo_b = 0;
  undo_target = 7;

  auto tx = env.BeginTx();
  ASSERT_TRUE(tx.ok());
  FenceCounter counter;
  pmem::SetPersistObserver(&counter);
  ASSERT_TRUE((*tx)->RedoSet(&redo_a, uint64_t{1}).ok());
  ASSERT_TRUE((*tx)->RedoSet(&redo_b, uint64_t{2}).ok());
  EXPECT_EQ(counter.fences(), 0);
  // Live-target undo logging must fence before returning (the caller stores
  // immediately) — and that one fence publishes the pending redo batch too.
  ASSERT_TRUE((*tx)->AddUndo(&undo_target, sizeof(undo_target)).ok());
  EXPECT_EQ(counter.fences(), 1);
  undo_target = 8;
  // A second log of the same range is coverage-elided: zero further fences.
  ASSERT_TRUE((*tx)->AddUndo(&undo_target, sizeof(undo_target)).ok());
  EXPECT_EQ(counter.fences(), 1);
  pmem::SetPersistObserver(nullptr);
  ASSERT_TRUE((*tx)->Commit().ok());
  EXPECT_EQ(undo_target, 8u);
  EXPECT_EQ(redo_a, 1u);
  EXPECT_EQ(redo_b, 2u);
}

// The rollback paths must see staged-but-unpublished entries: an abort right
// after staging still restores every logged range.
TEST_F(TransactionTest, AbortAppliesStagedUnpublishedEntries) {
  TxEnv env;
  alignas(64) uint64_t fresh_backed = 5;
  auto tx = env.BeginTx();
  ASSERT_TRUE(tx.ok());
  (*tx)->NoteFreshRange(&fresh_backed, sizeof(fresh_backed));
  ASSERT_TRUE((*tx)->RedoSet(&fresh_backed, uint64_t{9}).ok());  // Staged only.
  ASSERT_TRUE((*tx)->Abort().ok());
  EXPECT_EQ(fresh_backed, 5u) << "unapplied redo must vanish on abort";
  EXPECT_TRUE(env.log().empty());
}

TEST_F(TransactionTest, BeginRequiresArmedLog) {
  TxEnv env;
  env.log().SetSeqRange(2, 4);
  auto tx = env.BeginTx();
  EXPECT_FALSE(tx.ok());
}

TEST_F(TransactionTest, DoubleCommitRejected) {
  TxEnv env;
  alignas(64) uint64_t slot = 1;
  auto tx = env.BeginTx();
  ASSERT_TRUE(tx.ok());
  ASSERT_TRUE((*tx)->AddUndo(&slot, sizeof(slot)).ok());
  slot = 2;
  ASSERT_TRUE((*tx)->Commit().ok());
  EXPECT_EQ((*tx)->Commit().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ((*tx)->Abort().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(slot, 2u);
}

// ---- Crash injection at every commit stage (paper §5.1 correctness). ----
//
// The scenario mirrors Fig. 7: location A is undo-logged and modified in
// place; location B is redo-logged. Atomicity demands the post-crash state
// after recovery is either (A=old, B=old) or (A=new, B=new).

struct CrashPlan {
  const char* stage;   // Stage hook at which to crash.
  int countdown;       // Crash at the n-th occurrence of that stage.
};

class CommitCrashTest : public ::testing::TestWithParam<CrashPlan> {
 protected:
  void TearDown() override {
    Transaction::SetStageHook(nullptr);
    pmem::ShadowRegistry::Instance().DetachAll();
    // The crashed transaction state is abandoned, as after a real crash.
    Transaction::AbandonCurrentForTesting();
  }
};

const char* g_crash_stage = nullptr;
int g_crash_countdown = 0;

void CrashingHook(const char* stage) {
  if (g_crash_stage != nullptr && std::strcmp(stage, g_crash_stage) == 0 &&
      g_crash_countdown-- == 0) {
    throw SimulatedCrash{stage};
  }
}

TEST_P(CommitCrashTest, RecoveryRestoresAtomicity) {
  // PM state: one log region + one data region, both shadowed.
  std::vector<uint8_t> log_buffer(32 * 1024, 0);
  alignas(64) uint64_t data[8] = {};
  data[0] = 100;  // A: undo-logged.
  data[1] = 200;  // B: redo-logged.

  ASSERT_TRUE(LogRegion::Format(log_buffer.data(), log_buffer.size()).ok());
  auto log = LogRegion::Attach(log_buffer.data(), log_buffer.size());
  ASSERT_TRUE(log.ok());

  pmem::ScopedShadow log_shadow(log_buffer.data(), log_buffer.size());
  pmem::ScopedShadow data_shadow(data, sizeof(data));

  g_crash_stage = GetParam().stage;
  g_crash_countdown = GetParam().countdown;
  Transaction::SetStageHook(&CrashingHook);

  TxTarget target;
  target.log = &*log;
  auto tx = Transaction::Begin(target);
  ASSERT_TRUE(tx.ok());

  bool crashed = false;
  try {
    ASSERT_TRUE((*tx)->AddUndo(&data[0], 8).ok());
    data[0] = 101;
    ASSERT_TRUE((*tx)->RedoSet(&data[1], uint64_t{201}).ok());
    ASSERT_TRUE((*tx)->Commit().ok());
  } catch (const SimulatedCrash&) {
    crashed = true;
  }
  Transaction::SetStageHook(nullptr);

  // Power failure: unflushed lines are lost.
  pmem::ShadowRegistry::Instance().SimulateCrash();

  // System-supported recovery, exactly what Puddled does on reboot.
  auto recovered_log = LogRegion::Attach(log_buffer.data(), log_buffer.size());
  ASSERT_TRUE(recovered_log.ok());
  IdentityResolver resolver;
  auto stats = ReplayLogChain({*recovered_log}, resolver);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  recovered_log->Reset(0, 2);

  const bool old_state = data[0] == 100 && data[1] == 200;
  const bool new_state = data[0] == 101 && data[1] == 201;
  EXPECT_TRUE(old_state || new_state)
      << "atomicity violated at stage " << GetParam().stage << ": A=" << data[0]
      << " B=" << data[1] << " crashed=" << crashed;
  if (!crashed) {
    EXPECT_TRUE(new_state) << "committed transaction must survive the crash";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Stages, CommitCrashTest,
    ::testing::Values(CrashPlan{"s1_flushed", 0}, CrashPlan{"range_24", 0},
                      CrashPlan{"redo_applied_one", 0}, CrashPlan{"s2_applied", 0},
                      CrashPlan{"s3_marked", 0}, CrashPlan{"reset_done", 0}),
    [](const ::testing::TestParamInfo<CrashPlan>& info) {
      return std::string(info.param.stage) + "_" + std::to_string(info.param.countdown);
    });

// Randomized multi-transaction crash torture with adversarial cache eviction:
// a linked-list-like structure of counters must stay consistent (sum
// invariant) across random crash points.
class CrashTortureTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void TearDown() override {
    Transaction::SetStageHook(nullptr);
    pmem::ShadowRegistry::Instance().DetachAll();
    Transaction::AbandonCurrentForTesting();
  }
};

int g_fence_crash_countdown = -1;

void CountdownHook(const char* stage) {
  if (g_fence_crash_countdown >= 0 && g_fence_crash_countdown-- == 0) {
    throw SimulatedCrash{stage};
  }
}

TEST_P(CrashTortureTest, TransferInvariantHolds) {
  // Two accounts; every transaction moves a random amount between them with
  // undo logging (and occasionally redo for the second account). Total must
  // stay constant no matter where the crash lands.
  constexpr uint64_t kTotal = 1000;
  std::vector<uint8_t> log_buffer(32 * 1024, 0);
  alignas(64) uint64_t accounts[2] = {kTotal, 0};

  ASSERT_TRUE(LogRegion::Format(log_buffer.data(), log_buffer.size()).ok());

  pmem::ScopedShadow log_shadow(log_buffer.data(), log_buffer.size());
  pmem::ScopedShadow data_shadow(accounts, sizeof(accounts));

  Xoshiro256 rng(GetParam());
  Transaction::SetStageHook(&CountdownHook);

  for (int round = 0; round < 40; ++round) {
    auto log = LogRegion::Attach(log_buffer.data(), log_buffer.size());
    ASSERT_TRUE(log.ok());

    g_fence_crash_countdown = static_cast<int>(rng.Below(8));  // Crash point.
    TxTarget target;
    target.log = &*log;
    auto tx = Transaction::Begin(target);
    ASSERT_TRUE(tx.ok());
    try {
      uint64_t amount = rng.Below(accounts[0] + 1);
      ASSERT_TRUE((*tx)->AddUndo(&accounts[0], 8).ok());
      accounts[0] -= amount;
      if (rng.Below(2) == 0) {
        ASSERT_TRUE((*tx)->AddUndo(&accounts[1], 8).ok());
        accounts[1] += amount;
      } else {
        ASSERT_TRUE((*tx)->RedoSet(&accounts[1], accounts[1] + amount).ok());
      }
      ASSERT_TRUE((*tx)->Commit().ok());
    } catch (const SimulatedCrash&) {
      // Crash: lose unflushed lines (with random eviction), then recover.
      pmem::ShadowCrashOptions options;
      options.evict_random_lines = true;
      options.seed = rng();
      pmem::ShadowRegistry::Instance().SimulateCrash(options);

      auto recovered = LogRegion::Attach(log_buffer.data(), log_buffer.size());
      ASSERT_TRUE(recovered.ok()) << "log header must survive any crash";
      IdentityResolver resolver;
      auto stats = ReplayLogChain({*recovered}, resolver);
      ASSERT_TRUE(stats.ok());
      recovered->Reset(0, 2);
      // Abandon the in-flight transaction state (the process "died").
      Transaction::AbandonCurrentForTesting();
    }
    // The invariant must hold after every round, crashed or not.
    ASSERT_EQ(accounts[0] + accounts[1], kTotal)
        << "round " << round << ": " << accounts[0] << " + " << accounts[1];
    g_fence_crash_countdown = -1;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashTortureTest,
                         ::testing::Values(1, 7, 42, 1337, 9999));

}  // namespace
}  // namespace puddles
