#include "src/common/type_name.h"

#include <gtest/gtest.h>

#include <string>

namespace puddles {

struct ListNode {
  ListNode* next;
  int64_t value;
};

namespace testing_inner {
struct ListNode {  // Same short name, different namespace: must get its own ID.
  int x;
};
}  // namespace testing_inner

namespace {

TEST(TypeNameTest, SimpleTypes) {
  EXPECT_EQ(TypeName<int>(), "int");
  EXPECT_EQ(TypeName<double>(), "double");
}

TEST(TypeNameTest, QualifiedNames) {
  EXPECT_EQ(TypeName<ListNode>(), "puddles::ListNode");
  EXPECT_EQ(TypeName<testing_inner::ListNode>(), "puddles::testing_inner::ListNode");
}

TEST(TypeIdTest, StableAndConstexpr) {
  constexpr TypeId id1 = TypeIdOf<ListNode>();
  constexpr TypeId id2 = TypeIdOf<ListNode>();
  static_assert(id1 == id2, "type IDs must be compile-time stable");
  EXPECT_EQ(id1, id2);
}

TEST(TypeIdTest, DistinctTypesDistinctIds) {
  EXPECT_NE(TypeIdOf<int>(), TypeIdOf<long>());
  EXPECT_NE(TypeIdOf<ListNode>(), TypeIdOf<testing_inner::ListNode>());
  EXPECT_NE(TypeIdOf<ListNode>(), TypeIdOf<ListNode*>());
}

TEST(TypeIdTest, AvoidsReservedSentinels) {
  EXPECT_NE(TypeIdOf<int>(), kInvalidTypeId);
  EXPECT_NE(TypeIdOf<int>(), kRawBytesTypeId);
  EXPECT_NE(TypeIdOf<ListNode>(), kInvalidTypeId);
}

TEST(TypeIdTest, MatchesDirectHashOfName) {
  // The ID must be exactly the FNV-1a of the rendered name (the on-PM format
  // contract: a reader on another machine can recompute IDs from names).
  constexpr std::string_view name = TypeName<ListNode>();
  EXPECT_EQ(TypeIdOf<ListNode>(), Fnv1a64(name.data(), name.size()));
}

}  // namespace
}  // namespace puddles
