#include "src/pmem/mapped_file.h"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <string>

namespace pmem {
namespace {

class MappedFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pmemfile_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(MappedFileTest, CreateMapWriteReopen) {
  constexpr size_t kSize = 64 * 1024;
  {
    auto file = PmemFile::Create(Path("a.pud"), kSize);
    ASSERT_TRUE(file.ok()) << file.status().ToString();
    auto base = file->Map();
    ASSERT_TRUE(base.ok()) << base.status().ToString();
    std::memset(*base, 0x5a, kSize);
    ASSERT_TRUE(file->Sync().ok());
  }
  auto reopened = PmemFile::Open(Path("a.pud"));
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->size(), kSize);
  auto base = reopened->Map();
  ASSERT_TRUE(base.ok());
  auto* bytes = static_cast<uint8_t*>(*base);
  for (size_t i = 0; i < kSize; i += 997) {
    EXPECT_EQ(bytes[i], 0x5a);
  }
}

TEST_F(MappedFileTest, CreateFailsIfExists) {
  ASSERT_TRUE(PmemFile::Create(Path("dup.pud"), 4096).ok());
  auto second = PmemFile::Create(Path("dup.pud"), 4096);
  EXPECT_FALSE(second.ok());
}

TEST_F(MappedFileTest, OpenMissingFails) {
  auto missing = PmemFile::Open(Path("missing.pud"));
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), puddles::StatusCode::kIoError);
}

TEST_F(MappedFileTest, ReadOnlyMappingIsReadable) {
  {
    auto file = PmemFile::Create(Path("ro.pud"), 4096);
    ASSERT_TRUE(file.ok());
    auto base = file->Map();
    ASSERT_TRUE(base.ok());
    static_cast<uint8_t*>(*base)[0] = 0x77;
    ASSERT_TRUE(file->Sync().ok());
  }
  auto file = PmemFile::Open(Path("ro.pud"), /*writable=*/false);
  ASSERT_TRUE(file.ok());
  EXPECT_FALSE(file->writable());
  auto base = file->Map();
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(static_cast<const uint8_t*>(*base)[0], 0x77);
}

TEST_F(MappedFileTest, FromFdAdoptsDescriptor) {
  ASSERT_TRUE(PmemFile::Create(Path("fd.pud"), 8192).ok());
  int fd = ::open(Path("fd.pud").c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  auto file = PmemFile::FromFd(fd);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->size(), 8192u);
  auto base = file->Map();
  ASSERT_TRUE(base.ok());
  static_cast<uint8_t*>(*base)[100] = 1;  // Must be writable through the fd.
}

TEST_F(MappedFileTest, ReleaseFdTransfersOwnership) {
  auto file = PmemFile::Create(Path("rel.pud"), 4096);
  ASSERT_TRUE(file.ok());
  int fd = file->ReleaseFd();
  ASSERT_GE(fd, 0);
  // The PmemFile destructor must not close it; prove by using it afterwards.
  {
    PmemFile discard = std::move(*file);
  }
  EXPECT_EQ(::write(fd, "x", 1), 1);
  ::close(fd);
}

TEST_F(MappedFileTest, DoubleMapFails) {
  auto file = PmemFile::Create(Path("dm.pud"), 4096);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file->Map().ok());
  EXPECT_FALSE(file->Map().ok());
}

TEST_F(MappedFileTest, MoveTransfersMapping) {
  auto file = PmemFile::Create(Path("mv.pud"), 4096);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(file->Map().ok());
  void* base = file->data();
  PmemFile moved = std::move(*file);
  EXPECT_EQ(moved.data(), base);
  EXPECT_TRUE(moved.mapped());
}

}  // namespace
}  // namespace pmem
