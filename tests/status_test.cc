#include "src/common/status.h"

#include <gtest/gtest.h>

namespace puddles {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("puddle 42");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "puddle 42");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: puddle 42");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(InvalidArgumentError("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(PermissionDeniedError("").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(OutOfMemoryError("").code(), StatusCode::kOutOfMemory);
  EXPECT_EQ(FailedPreconditionError("").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(InternalError("").code(), StatusCode::kInternal);
  EXPECT_EQ(UnavailableError("").code(), StatusCode::kUnavailable);
  EXPECT_EQ(DataLossError("").code(), StatusCode::kDataLoss);
  EXPECT_EQ(IoError("").code(), StatusCode::kIoError);
  EXPECT_EQ(AbortedError("").code(), StatusCode::kAborted);
  EXPECT_EQ(OutOfRangeError("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, ErrnoErrorIncludesStrerror) {
  Status s = ErrnoError("open /tmp/x", ENOENT);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_NE(s.message().find("open /tmp/x"), std::string::npos);
  EXPECT_NE(s.message().find("No such file"), std::string::npos);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = InvalidArgumentError("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) {
    return InvalidArgumentError("odd");
  }
  return x / 2;
}

Result<int> Quarter(int x) {
  ASSIGN_OR_RETURN(int half, Half(x));
  ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);

  Result<int> bad = Quarter(6);  // 6/2=3 is odd.
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

Status FailIfNegative(int x) {
  if (x < 0) {
    return OutOfRangeError("negative");
  }
  return OkStatus();
}

Status CheckAll(int a, int b) {
  RETURN_IF_ERROR(FailIfNegative(a));
  RETURN_IF_ERROR(FailIfNegative(b));
  return OkStatus();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(CheckAll(1, 2).ok());
  EXPECT_EQ(CheckAll(1, -2).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(CheckAll(-1, 2).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace puddles
