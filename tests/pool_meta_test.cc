#include "src/puddles/pool_meta.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/tx/log_space.h"

namespace puddles {
namespace {

class PoolMetaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    params_.kind = PuddleKind::kPoolMeta;
    params_.heap_size = 1 << 20;
    params_.uuid = Uuid::Generate();
    params_.base_addr = 0x20000000000ULL;
    size_t file_size = Puddle::FileSizeFor(params_.kind, params_.heap_size);
    file_.resize(file_size);
    ASSERT_TRUE(Puddle::Format(file_.data(), file_size, params_).ok());
    auto puddle = Puddle::Attach(file_.data(), file_size);
    ASSERT_TRUE(puddle.ok());
    puddle_ = *puddle;
  }

  PuddleParams params_;
  std::vector<uint8_t> file_;
  Puddle puddle_;
};

TEST_F(PoolMetaTest, FormatAttachRoundTrip) {
  Uuid pool_uuid = Uuid::Generate();
  ASSERT_TRUE(PoolMetaView::Format(puddle_, pool_uuid, "accounts").ok());
  auto meta = PoolMetaView::Attach(puddle_);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->pool_uuid(), pool_uuid);
  EXPECT_STREQ(meta->name(), "accounts");
  EXPECT_EQ(meta->num_members(), 0u);
  EXPECT_FALSE(meta->has_root());
  EXPECT_GT(meta->capacity(), 1000u);
}

TEST_F(PoolMetaTest, RejectsWrongKind) {
  PuddleParams data_params = params_;
  data_params.kind = PuddleKind::kData;
  data_params.uuid = Uuid::Generate();
  size_t file_size = Puddle::FileSizeFor(data_params.kind, data_params.heap_size);
  std::vector<uint8_t> data_file(file_size);
  ASSERT_TRUE(Puddle::Format(data_file.data(), file_size, data_params).ok());
  auto puddle = Puddle::Attach(data_file.data(), file_size);
  ASSERT_TRUE(puddle.ok());
  EXPECT_FALSE(PoolMetaView::Format(*puddle, Uuid::Generate(), "x").ok());
  EXPECT_FALSE(PoolMetaView::Attach(*puddle).ok());
}

TEST_F(PoolMetaTest, RejectsOverlongName) {
  std::string long_name(kPoolNameMax + 10, 'x');
  EXPECT_FALSE(PoolMetaView::Format(puddle_, Uuid::Generate(), long_name.c_str()).ok());
}

TEST_F(PoolMetaTest, MembersAppendAndReplace) {
  ASSERT_TRUE(PoolMetaView::Format(puddle_, Uuid::Generate(), "p").ok());
  auto meta = PoolMetaView::Attach(puddle_);
  ASSERT_TRUE(meta.ok());

  std::vector<Uuid> members;
  for (int i = 0; i < 10; ++i) {
    members.push_back(Uuid::Generate());
    ASSERT_TRUE(meta->AddMember(members.back()).ok());
  }
  EXPECT_EQ(meta->num_members(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(meta->member(i), members[i]);
    EXPECT_TRUE(meta->HasMember(members[i]));
    EXPECT_EQ(meta->member_old_base(i), 0u);
  }
  EXPECT_FALSE(meta->HasMember(Uuid::Generate()));

  Uuid replacement = Uuid::Generate();
  ASSERT_TRUE(meta->ReplaceMember(3, replacement).ok());
  EXPECT_EQ(meta->member(3), replacement);
  EXPECT_FALSE(meta->HasMember(members[3]));
  EXPECT_FALSE(meta->ReplaceMember(99, replacement).ok());
}

TEST_F(PoolMetaTest, RootDesignation) {
  ASSERT_TRUE(PoolMetaView::Format(puddle_, Uuid::Generate(), "p").ok());
  auto meta = PoolMetaView::Attach(puddle_);
  ASSERT_TRUE(meta.ok());
  Uuid root_puddle = Uuid::Generate();
  meta->SetRoot(root_puddle, 4096);
  EXPECT_TRUE(meta->has_root());
  EXPECT_EQ(meta->root_puddle(), root_puddle);
  EXPECT_EQ(meta->root_offset(), 4096u);

  // Persists across reattach.
  auto reattached = PoolMetaView::Attach(puddle_);
  ASSERT_TRUE(reattached.ok());
  EXPECT_EQ(reattached->root_puddle(), root_puddle);
}

TEST_F(PoolMetaTest, TranslationTable) {
  ASSERT_TRUE(PoolMetaView::Format(puddle_, Uuid::Generate(), "p").ok());
  auto meta = PoolMetaView::Attach(puddle_);
  ASSERT_TRUE(meta.ok());
  ASSERT_TRUE(meta->AddMember(Uuid::Generate()).ok());
  ASSERT_TRUE(meta->AddMember(Uuid::Generate()).ok());

  EXPECT_FALSE(meta->HasTranslations());
  meta->SetMemberOldBase(1, 0x30000000000ULL);
  EXPECT_TRUE(meta->HasTranslations());
  EXPECT_EQ(meta->member_old_base(0), 0u);
  EXPECT_EQ(meta->member_old_base(1), 0x30000000000ULL);

  meta->ClearTranslationTable();
  EXPECT_FALSE(meta->HasTranslations());
}

// ---- Log space (Fig. 5 directory) ----

class LogSpaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PuddleParams params;
    params.kind = PuddleKind::kLogSpace;
    params.heap_size = 1 << 20;
    params.uuid = Uuid::Generate();
    size_t file_size = Puddle::FileSizeFor(params.kind, params.heap_size);
    file_.resize(file_size);
    ASSERT_TRUE(Puddle::Format(file_.data(), file_size, params).ok());
    auto puddle = Puddle::Attach(file_.data(), file_size);
    ASSERT_TRUE(puddle.ok());
    puddle_ = *puddle;
  }

  std::vector<uint8_t> file_;
  Puddle puddle_;
};

TEST_F(LogSpaceTest, FormatAndAddLogs) {
  ASSERT_TRUE(LogSpaceView::Format(puddle_).ok());
  auto view = LogSpaceView::Attach(puddle_);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->num_entries(), 0u);

  std::vector<Uuid> logs;
  for (int i = 0; i < 16; ++i) {
    logs.push_back(Uuid::Generate());
    ASSERT_TRUE(view->AddLog(logs.back()).ok());
  }
  EXPECT_EQ(view->num_entries(), 16u);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(view->entry(i), logs[i]);
    EXPECT_TRUE(view->Contains(logs[i]));
  }
  EXPECT_FALSE(view->Contains(Uuid::Generate()));

  // Reattach preserves entries (the directory the daemon reads at recovery).
  auto reattached = LogSpaceView::Attach(puddle_);
  ASSERT_TRUE(reattached.ok());
  EXPECT_EQ(reattached->num_entries(), 16u);
}

TEST_F(LogSpaceTest, AttachRejectsUnformatted) {
  EXPECT_FALSE(LogSpaceView::Attach(puddle_).ok());
}

}  // namespace
}  // namespace puddles
