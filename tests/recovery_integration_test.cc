// Application-independent recovery, end to end (paper §3.3, §4.1, §4.6):
// a client crashes mid-transaction; the *daemon* — not the application —
// replays the logs on the next start, before any application maps the data.
// The application that wrote the data never runs again.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "src/libpuddles/libpuddles.h"
#include "src/pmem/shadow.h"

namespace puddles {

struct Account {
  uint64_t balance;
  uint64_t version;
};

namespace {

namespace fs = std::filesystem;

class RecoveryIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() /
            ("recovery_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(root_);
  }

  void TearDown() override {
    Transaction::SetStageHook(nullptr);
    Transaction::AbandonCurrentForTesting();
    pmem::ShadowRegistry::Instance().DetachAll();
    fs::remove_all(root_);
  }

  fs::path root_;
};

const char* g_stage = nullptr;

void CrashAtStage(const char* stage) {
  if (g_stage != nullptr && std::strcmp(stage, g_stage) == 0) {
    throw SimulatedCrash{stage};
  }
}

// Drives one crash scenario: writer transaction crashes at `stage`; then the
// daemon restarts and recovers with NO writer application present. Returns
// the recovered (balance, version).
std::pair<uint64_t, uint64_t> RunCrashScenario(const fs::path& root, const char* stage,
                                               puddled::RecoveryReport* report) {
  // ---- Phase 1: the writer application ----
  Account* account = nullptr;
  {
    auto daemon = puddled::Daemon::Start({.root_dir = root.string()});
    EXPECT_TRUE(daemon.ok());
    auto runtime =
        Runtime::Create(std::make_shared<puddled::EmbeddedDaemonClient>(daemon->get()));
    EXPECT_TRUE(runtime.ok());
    auto pool = (*runtime)->CreatePool("bank");
    EXPECT_TRUE(pool.ok());

    account = *(*pool)->Malloc<Account>();
    account->balance = 100;
    account->version = 1;
    pmem::FlushFence(account, sizeof(Account));
    EXPECT_TRUE((*pool)->SetRoot(account).ok());

    // Shadow the data + log puddles so unflushed stores die with the crash.
    Runtime::Entry* data_entry =
        (*runtime)->FindEntryByAddr(reinterpret_cast<uintptr_t>(account));
    EXPECT_NE(data_entry, nullptr);
    pmem::ShadowRegistry::Instance().Attach(
        reinterpret_cast<void*>(data_entry->info.base_addr), data_entry->info.file_size);

    g_stage = stage;
    Transaction::SetStageHook(&CrashAtStage);
    bool crashed = false;
    try {
      EXPECT_TRUE((*pool)->Run([&](Tx& tx) -> puddles::Status {
        RETURN_IF_ERROR(tx.LogField(account, &Account::balance));
        account->balance = 250;
        return tx.Set(&account->version, uint64_t{2});
      }).ok());
    } catch (const SimulatedCrash&) {
      crashed = true;
    }
    Transaction::SetStageHook(nullptr);
    g_stage = nullptr;

    if (crashed) {
      // Power failure: everything unflushed is lost, then the "machine" goes
      // down — runtime and daemon are destroyed with no cleanup of the tx.
      pmem::ShadowRegistry::Instance().SimulateCrash();
      Transaction::AbandonCurrentForTesting();
    }
    pmem::ShadowRegistry::Instance().DetachAll();
    // runtime + daemon destroyed here ("machine off").
  }

  // ---- Phase 2: reboot. Puddled recovers before anyone maps data. ----
  auto daemon = puddled::Daemon::Start({.root_dir = root.string(), .run_recovery = false});
  EXPECT_TRUE(daemon.ok()) << daemon.status().ToString();
  auto recovery = (*daemon)->RunRecovery();
  EXPECT_TRUE(recovery.ok()) << recovery.status().ToString();
  if (report != nullptr) {
    *report = *recovery;
  }

  // ---- Phase 3: a *different* application reads the data. ----
  auto runtime =
      Runtime::Create(std::make_shared<puddled::EmbeddedDaemonClient>(daemon->get()));
  EXPECT_TRUE(runtime.ok());
  auto pool = (*runtime)->OpenPool("bank");
  EXPECT_TRUE(pool.ok()) << pool.status().ToString();
  Account* recovered = *(*pool)->Root<Account>();
  return {recovered->balance, recovered->version};
}

struct StageCase {
  const char* stage;
  bool expect_committed;  // Crash after the commit point ⇒ new values.
};

class RecoveryStageTest : public RecoveryIntegrationTest,
                          public ::testing::WithParamInterface<StageCase> {};

TEST_P(RecoveryStageTest, DaemonRecoversWithoutTheApplication) {
  puddled::RecoveryReport report;
  auto [balance, version] = RunCrashScenario(root_, GetParam().stage, &report);
  if (GetParam().expect_committed) {
    EXPECT_EQ(balance, 250u) << "crash at " << GetParam().stage;
    EXPECT_EQ(version, 2u);
  } else {
    EXPECT_EQ(balance, 100u) << "crash at " << GetParam().stage;
    EXPECT_EQ(version, 1u);
  }
  EXPECT_GE(report.log_spaces_scanned, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Stages, RecoveryStageTest,
    ::testing::Values(StageCase{"s1_flushed", false},    // Before range (2,4): roll back.
                      StageCase{"range_24", true},       // Redo log armed: roll forward.
                      StageCase{"redo_applied_one", true},
                      StageCase{"s2_applied", true},
                      StageCase{"s3_marked", true},      // Committed, log dropped.
                      StageCase{"reset_done", true}),
    [](const ::testing::TestParamInfo<StageCase>& info) { return info.param.stage; });

TEST_F(RecoveryIntegrationTest, NoCrashMeansNothingToRecover) {
  puddled::RecoveryReport report;
  auto [balance, version] = RunCrashScenario(root_, "never_matches", &report);
  EXPECT_EQ(balance, 250u);
  EXPECT_EQ(version, 2u);
  EXPECT_EQ(report.entries_applied, 0u) << "clean shutdown leaves no valid log entries";
  EXPECT_EQ(report.logs_marked_invalid, 0u);
}

TEST_F(RecoveryIntegrationTest, RecoveryConfinedByPermissions) {
  // A log that targets a puddle its owner cannot write must be marked invalid
  // and not replayed (§4.6) — modeled by deleting the data puddle between
  // crash and recovery (the paper's freed-puddle scenario).
  Uuid data_uuid;
  {
    auto daemon = puddled::Daemon::Start({.root_dir = root_.string()});
    ASSERT_TRUE(daemon.ok());
    auto runtime =
        Runtime::Create(std::make_shared<puddled::EmbeddedDaemonClient>(daemon->get()));
    ASSERT_TRUE(runtime.ok());
    auto pool = (*runtime)->CreatePool("bank");
    ASSERT_TRUE(pool.ok());
    Account* account = *(*pool)->Malloc<Account>();
    account->balance = 1;
    pmem::FlushFence(account, sizeof(Account));

    Runtime::Entry* entry =
        (*runtime)->FindEntryByAddr(reinterpret_cast<uintptr_t>(account));
    data_uuid = entry->info.uuid;

    g_stage = "s1_flushed";
    Transaction::SetStageHook(&CrashAtStage);
    try {
      EXPECT_TRUE((*pool)->Run([&](Tx& tx) -> puddles::Status {
        RETURN_IF_ERROR(tx.LogField(account, &Account::balance));
        account->balance = 2;
        return puddles::OkStatus();
      }).ok());
    } catch (const SimulatedCrash&) {
    }
    Transaction::SetStageHook(nullptr);
    g_stage = nullptr;
    Transaction::AbandonCurrentForTesting();
  }

  // The puddle is freed before recovery runs.
  {
    auto daemon = puddled::Daemon::Start({.root_dir = root_.string(), .run_recovery = false});
    ASSERT_TRUE(daemon.ok());
    ASSERT_TRUE((*daemon)->DeletePuddle(data_uuid, puddled::Credentials::Self()).ok());
    auto report = (*daemon)->RunRecovery();
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report->entries_applied, 0u);
    EXPECT_GE(report->logs_marked_invalid, 1u)
        << "log targeting a freed puddle must be marked invalid, not replayed";
  }
}

TEST_F(RecoveryIntegrationTest, RepeatedCrashesStayConsistent) {
  // Several crashed transactions in sequence, each recovered by a fresh
  // daemon: the account must always be in some committed state.
  const char* stages[] = {"s1_flushed", "range_24", "s2_applied", "s1_flushed"};
  uint64_t last_balance = 100;
  bool first = true;
  for (const char* stage : stages) {
    if (first) {
      auto [balance, version] = RunCrashScenario(root_, stage, nullptr);
      EXPECT_TRUE(balance == 100 || balance == 250) << stage;
      last_balance = balance;
      first = false;
      continue;
    }
    // Subsequent rounds: mutate again with a crash, over the existing pool.
    auto daemon = puddled::Daemon::Start({.root_dir = root_.string()});
    ASSERT_TRUE(daemon.ok());
    auto runtime =
        Runtime::Create(std::make_shared<puddled::EmbeddedDaemonClient>(daemon->get()));
    ASSERT_TRUE(runtime.ok());
    auto pool = (*runtime)->OpenPool("bank");
    ASSERT_TRUE(pool.ok());
    Account* account = *(*pool)->Root<Account>();
    const uint64_t before = account->balance;

    Runtime::Entry* entry = (*runtime)->FindEntryByAddr(reinterpret_cast<uintptr_t>(account));
    pmem::ShadowRegistry::Instance().Attach(reinterpret_cast<void*>(entry->info.base_addr),
                                            entry->info.file_size);
    g_stage = stage;
    Transaction::SetStageHook(&CrashAtStage);
    bool crashed = false;
    try {
      EXPECT_TRUE((*pool)->Run([&](Tx& tx) -> puddles::Status {
        RETURN_IF_ERROR(tx.LogField(account, &Account::balance));
        account->balance = before + 1000;
        return puddles::OkStatus();
      }).ok());
    } catch (const SimulatedCrash&) {
      crashed = true;
    }
    Transaction::SetStageHook(nullptr);
    g_stage = nullptr;
    if (crashed) {
      pmem::ShadowRegistry::Instance().SimulateCrash();
      Transaction::AbandonCurrentForTesting();
    }
    pmem::ShadowRegistry::Instance().DetachAll();
    runtime->reset();
    daemon->reset();

    auto recovered_daemon = puddled::Daemon::Start({.root_dir = root_.string()});
    ASSERT_TRUE(recovered_daemon.ok());
    auto recovered_runtime = Runtime::Create(
        std::make_shared<puddled::EmbeddedDaemonClient>(recovered_daemon->get()));
    ASSERT_TRUE(recovered_runtime.ok());
    auto recovered_pool = (*recovered_runtime)->OpenPool("bank");
    ASSERT_TRUE(recovered_pool.ok());
    uint64_t after = (*(*recovered_pool)->Root<Account>())->balance;
    EXPECT_TRUE(after == before || after == before + 1000)
        << "stage " << stage << ": " << before << " -> " << after;
    last_balance = after;
  }
  (void)last_balance;
}

}  // namespace
}  // namespace puddles
