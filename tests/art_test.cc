// Persistent adaptive radix tree over the full Puddles stack: node
// promotions (4 -> 16 -> 48 -> 256) and demotions back down, path
// compression (lazy expansion, prefix splits, collapse on erase), ordered
// range/prefix scans, and durability of all of it across a daemon restart
// through the application-independent recovery path.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <optional>
#include <vector>

#include "src/common/rng.h"
#include "src/workloads/adapters.h"
#include "src/workloads/art.h"

namespace workloads {
namespace {

namespace fs = std::filesystem;

using Art = ArtIndex<PuddlesAdapter>;

class ArtTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("art_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    Start(/*create=*/true);
  }

  void TearDown() override {
    art_.reset();
    runtime_.reset();
    daemon_.reset();
    fs::remove_all(dir_);
  }

  void Start(bool create) {
    auto started = puddled::Daemon::Start({.root_dir = (dir_ / "root").string()});
    ASSERT_TRUE(started.ok()) << started.status().ToString();
    daemon_ = std::move(*started);
    auto rt = puddles::Runtime::Create(
        std::make_shared<puddled::EmbeddedDaemonClient>(daemon_.get()));
    ASSERT_TRUE(rt.ok()) << rt.status().ToString();
    runtime_ = std::move(*rt);
    auto pool = create ? runtime_->CreatePool("art") : runtime_->OpenPool("art");
    ASSERT_TRUE(pool.ok()) << pool.status().ToString();
    Art::RegisterTypes();
    art_.emplace(PuddlesAdapter(*pool));
    ASSERT_TRUE(art_->Init().ok());
  }

  // Daemon restart: everything durable must survive; recovery runs on Start.
  void Reopen() {
    art_.reset();
    runtime_.reset();
    daemon_.reset();
    Start(/*create=*/false);
  }

  fs::path dir_;
  std::unique_ptr<puddled::Daemon> daemon_;
  std::unique_ptr<puddles::Runtime> runtime_;
  std::optional<Art> art_;
};

TEST_F(ArtTest, InsertLookupEraseBasics) {
  EXPECT_EQ(art_->size(), 0u);
  EXPECT_FALSE(art_->Search(1, nullptr));
  EXPECT_FALSE(art_->Erase(1).ok());

  ASSERT_TRUE(art_->Insert(42, 100).ok());
  uint64_t value = 0;
  ASSERT_TRUE(art_->Search(42, &value));
  EXPECT_EQ(value, 100u);
  EXPECT_EQ(art_->size(), 1u);

  // Update in place keeps size.
  ASSERT_TRUE(art_->Insert(42, 200).ok());
  ASSERT_TRUE(art_->Search(42, &value));
  EXPECT_EQ(value, 200u);
  EXPECT_EQ(art_->size(), 1u);

  ASSERT_TRUE(art_->Erase(42).ok());
  EXPECT_EQ(art_->size(), 0u);
  EXPECT_FALSE(art_->Search(42, nullptr));

  // The tree is reusable after going empty.
  ASSERT_TRUE(art_->Insert(7, 70).ok());
  ASSERT_TRUE(art_->Search(7, &value));
  EXPECT_EQ(value, 70u);
}

// All four promotions on the way up, all demotions (and the final collapse
// back to a bare leaf) on the way down, verified via node-population stats.
TEST_F(ArtTest, NodePromotionsAndDemotions) {
  auto count_of = [&](uint64_t n4, uint64_t n16, uint64_t n48, uint64_t n256) {
    Art::Stats stats = art_->CollectStats();
    EXPECT_EQ(stats.node4, n4);
    EXPECT_EQ(stats.node16, n16);
    EXPECT_EQ(stats.node48, n48);
    EXPECT_EQ(stats.node256, n256);
  };

  // Keys 0..N-1 share the top 7 bytes: one inner node fans out by last byte.
  ASSERT_TRUE(art_->Insert(0, 0).ok());
  count_of(0, 0, 0, 0);  // A single leaf, no inner node yet (lazy expansion).
  for (uint64_t key = 1; key < 4; ++key) {
    ASSERT_TRUE(art_->Insert(key, key).ok());
  }
  count_of(1, 0, 0, 0);
  ASSERT_TRUE(art_->Insert(4, 4).ok());  // 5th child: Node4 -> Node16.
  count_of(0, 1, 0, 0);
  for (uint64_t key = 5; key < 16; ++key) {
    ASSERT_TRUE(art_->Insert(key, key).ok());
  }
  count_of(0, 1, 0, 0);
  ASSERT_TRUE(art_->Insert(16, 16).ok());  // 17th child: Node16 -> Node48.
  count_of(0, 0, 1, 0);
  for (uint64_t key = 17; key < 48; ++key) {
    ASSERT_TRUE(art_->Insert(key, key).ok());
  }
  count_of(0, 0, 1, 0);
  ASSERT_TRUE(art_->Insert(48, 48).ok());  // 49th child: Node48 -> Node256.
  count_of(0, 0, 0, 1);
  for (uint64_t key = 49; key < 80; ++key) {
    ASSERT_TRUE(art_->Insert(key, key).ok());
  }
  EXPECT_EQ(art_->size(), 80u);

  // Every key still reachable after the promotions.
  uint64_t value = 0;
  for (uint64_t key = 0; key < 80; ++key) {
    ASSERT_TRUE(art_->Search(key, &value)) << key;
    EXPECT_EQ(value, key);
  }

  // Erase back down: demotion thresholds carry hysteresis (40 / 12 / 3).
  for (uint64_t key = 79; key >= 41; --key) {
    ASSERT_TRUE(art_->Erase(key).ok()) << key;
  }
  count_of(0, 0, 0, 1);
  ASSERT_TRUE(art_->Erase(40).ok());  // 40 children left: Node256 -> Node48.
  count_of(0, 0, 1, 0);
  for (uint64_t key = 39; key >= 13; --key) {
    ASSERT_TRUE(art_->Erase(key).ok()) << key;
  }
  ASSERT_TRUE(art_->Erase(12).ok());  // 12 left: Node48 -> Node16.
  count_of(0, 1, 0, 0);
  for (uint64_t key = 11; key >= 4; --key) {
    ASSERT_TRUE(art_->Erase(key).ok()) << key;
  }
  ASSERT_TRUE(art_->Erase(3).ok());  // 3 left: Node16 -> Node4.
  count_of(1, 0, 0, 0);
  ASSERT_TRUE(art_->Erase(2).ok());
  ASSERT_TRUE(art_->Erase(1).ok());  // 1 left: Node4 collapses into the leaf.
  count_of(0, 0, 0, 0);
  EXPECT_EQ(art_->size(), 1u);
  ASSERT_TRUE(art_->Search(0, &value));
  EXPECT_EQ(value, 0u);
}

TEST_F(ArtTest, PathCompressionSplitAndCollapse) {
  // Two keys sharing 7 bytes: one Node4 holding the whole stem as prefix.
  ASSERT_TRUE(art_->Insert(0xAA00000000000001, 1).ok());
  ASSERT_TRUE(art_->Insert(0xAA00000000000002, 2).ok());
  Art::Stats stats = art_->CollectStats();
  EXPECT_EQ(stats.node4, 1u);
  EXPECT_EQ(stats.prefix_bytes, 7u);
  EXPECT_EQ(stats.leaves, 2u);

  // A key diverging at byte 0 splits the prefix: new root keeps 0 bytes, the
  // old node keeps the 6 bytes past its (now explicit) 0xAA edge.
  ASSERT_TRUE(art_->Insert(0xAB00000000000001, 3).ok());
  stats = art_->CollectStats();
  EXPECT_EQ(stats.node4, 2u);
  EXPECT_EQ(stats.prefix_bytes, 6u);
  EXPECT_EQ(stats.leaves, 3u);
  uint64_t value = 0;
  ASSERT_TRUE(art_->Search(0xAA00000000000001, &value));
  EXPECT_EQ(value, 1u);
  ASSERT_TRUE(art_->Search(0xAB00000000000001, &value));
  EXPECT_EQ(value, 3u);
  EXPECT_FALSE(art_->Search(0xAC00000000000001, nullptr));
  // Prefix mismatch must also reject keys diverging mid-prefix.
  EXPECT_FALSE(art_->Search(0xAA00010000000001, nullptr));

  // Erasing the diverging key collapses the root back into the old node,
  // which re-absorbs (edge + remainder) = the original 7-byte prefix.
  ASSERT_TRUE(art_->Erase(0xAB00000000000001).ok());
  stats = art_->CollectStats();
  EXPECT_EQ(stats.node4, 1u);
  EXPECT_EQ(stats.prefix_bytes, 7u);
  ASSERT_TRUE(art_->Search(0xAA00000000000001, &value));
  EXPECT_EQ(value, 1u);
  ASSERT_TRUE(art_->Search(0xAA00000000000002, &value));
  EXPECT_EQ(value, 2u);
}

TEST_F(ArtTest, OrderedScansAndPrefixScans) {
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 64; ++i) {
    keys.push_back(0x1000 + i * 3);
    keys.push_back(0xBB00000000000000ULL + i);
  }
  puddles::Xoshiro256 rng(5);
  for (size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.Below(i)]);
  }
  for (uint64_t key : keys) {
    ASSERT_TRUE(art_->Insert(key, key + 1).ok());
  }
  std::sort(keys.begin(), keys.end());

  // Full ordered scan.
  std::vector<std::pair<uint64_t, uint64_t>> scanned;
  EXPECT_EQ(art_->Scan(0, 1000, &scanned), keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(scanned[i].first, keys[i]);
    EXPECT_EQ(scanned[i].second, keys[i] + 1);
  }

  // Short scan from the middle (the YCSB-E shape): starts at the first key
  // >= start and respects the count.
  scanned.clear();
  EXPECT_EQ(art_->Scan(0x1001, 10, &scanned), 10u);
  EXPECT_EQ(scanned.front().first, 0x1003u);  // First key of the stride-3 run >= 0x1001.
  for (size_t i = 1; i < scanned.size(); ++i) {
    EXPECT_LT(scanned[i - 1].first, scanned[i].first);
  }

  // Inclusive range bounds.
  scanned.clear();
  EXPECT_EQ(art_->ScanRange(0x1000, 0x1006, 100, &scanned), 3u);

  // Prefix scan: only the 0xBB stem, in order.
  scanned.clear();
  EXPECT_EQ(art_->ScanPrefix(0xBB00000000000000ULL, 1, 1000, &scanned), 64u);
  for (size_t i = 0; i < scanned.size(); ++i) {
    EXPECT_EQ(scanned[i].first, 0xBB00000000000000ULL + i);
  }
}

TEST_F(ArtTest, ContentsAndScansSurviveReopen) {
  // A population wide enough to persist every node variant.
  std::vector<uint64_t> keys;
  for (uint64_t i = 0; i < 60; ++i) {
    keys.push_back(i);  // Dense stem -> Node256.
  }
  for (uint64_t i = 0; i < 10; ++i) {
    keys.push_back(0xCC00000000000000ULL + i * 17);  // Sparse stem.
  }
  for (uint64_t key : keys) {
    ASSERT_TRUE(art_->Insert(key, key * 2).ok());
  }
  Art::Stats before = art_->CollectStats();
  EXPECT_GT(before.node256, 0u);
  std::vector<std::pair<uint64_t, uint64_t>> expected;
  ASSERT_EQ(art_->Scan(0, 1000, &expected), keys.size());

  Reopen();

  // Same shape, same contents, same order.
  Art::Stats after = art_->CollectStats();
  EXPECT_EQ(after.node4, before.node4);
  EXPECT_EQ(after.node16, before.node16);
  EXPECT_EQ(after.node48, before.node48);
  EXPECT_EQ(after.node256, before.node256);
  EXPECT_EQ(after.leaves, before.leaves);
  EXPECT_EQ(art_->size(), keys.size());
  std::vector<std::pair<uint64_t, uint64_t>> recovered;
  ASSERT_EQ(art_->Scan(0, 1000, &recovered), expected.size());
  EXPECT_EQ(recovered, expected);

  // The recovered tree is fully usable: mutate through every path again.
  uint64_t value = 0;
  ASSERT_TRUE(art_->Search(13, &value));
  EXPECT_EQ(value, 26u);
  ASSERT_TRUE(art_->Insert(0xDD00000000000001ULL, 999).ok());
  ASSERT_TRUE(art_->Erase(13).ok());
  Reopen();
  EXPECT_FALSE(art_->Search(13, nullptr));
  ASSERT_TRUE(art_->Search(0xDD00000000000001ULL, &value));
  EXPECT_EQ(value, 999u);
}

// Randomized mirror test: thousands of mixed ops checked against a std::map,
// with full-scan order compared at checkpoints.
TEST_F(ArtTest, RandomizedMirrorsStdMap) {
  std::map<uint64_t, uint64_t> mirror;
  puddles::Xoshiro256 rng(1234);
  for (int op = 0; op < 4000; ++op) {
    const uint64_t stem = rng.Below(4) * 0x0101000000000000ULL;
    const uint64_t key = stem + rng.Below(300);
    if (rng.NextDouble() < 0.65) {
      ASSERT_TRUE(art_->Insert(key, key ^ op).ok());
      mirror[key] = key ^ op;
    } else {
      puddles::Status status = art_->Erase(key);
      EXPECT_EQ(status.ok(), mirror.erase(key) == 1) << key;
    }
    if (op % 1000 == 999) {
      ASSERT_EQ(art_->size(), mirror.size());
      std::vector<std::pair<uint64_t, uint64_t>> scanned;
      art_->Scan(0, static_cast<int>(mirror.size()) + 10, &scanned);
      ASSERT_EQ(scanned.size(), mirror.size());
      size_t i = 0;
      for (const auto& [key2, value2] : mirror) {
        ASSERT_EQ(scanned[i].first, key2);
        ASSERT_EQ(scanned[i].second, value2);
        ++i;
      }
    }
  }
}

}  // namespace
}  // namespace workloads
