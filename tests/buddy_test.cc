#include "src/alloc/buddy.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/common/rng.h"

namespace puddles {
namespace {

class BuddyTest : public ::testing::Test {
 protected:
  static constexpr size_t kHeapSize = 1 << 20;  // 1 MiB.

  void SetUp() override {
    meta_.resize(BuddyAllocator::MetaSize(kHeapSize));
    heap_.resize(kHeapSize);
    ASSERT_TRUE(BuddyAllocator::Format(meta_.data(), heap_.data(), kHeapSize).ok());
    auto attached = BuddyAllocator::Attach(meta_.data(), heap_.data(), kHeapSize);
    ASSERT_TRUE(attached.ok()) << attached.status().ToString();
    buddy_ = std::move(*attached);
  }

  std::vector<uint8_t> meta_;
  std::vector<uint8_t> heap_;
  BuddyAllocator buddy_;
};

TEST_F(BuddyTest, FreshHeapFullyFree) {
  EXPECT_EQ(buddy_.free_bytes(), kHeapSize);
  EXPECT_TRUE(buddy_.Validate().ok());
}

TEST_F(BuddyTest, AllocateRoundsToPowerOfTwo) {
  auto offset = buddy_.Allocate(300);
  ASSERT_TRUE(offset.ok());
  EXPECT_EQ(buddy_.BlockSize(*offset), 512u);
  EXPECT_EQ(buddy_.free_bytes(), kHeapSize - 512);
}

TEST_F(BuddyTest, MinimumBlockIs256) {
  auto offset = buddy_.Allocate(1);
  ASSERT_TRUE(offset.ok());
  EXPECT_EQ(buddy_.BlockSize(*offset), 256u);
}

TEST_F(BuddyTest, WholeHeapAllocation) {
  auto offset = buddy_.Allocate(kHeapSize);
  ASSERT_TRUE(offset.ok());
  EXPECT_EQ(*offset, 0);
  EXPECT_EQ(buddy_.free_bytes(), 0u);
  EXPECT_FALSE(buddy_.Allocate(1).ok());
  ASSERT_TRUE(buddy_.Free(*offset).ok());
  EXPECT_EQ(buddy_.free_bytes(), kHeapSize);
}

TEST_F(BuddyTest, AllocationsAreNaturallyAligned) {
  for (size_t size : {256u, 512u, 1024u, 4096u, 65536u}) {
    auto offset = buddy_.Allocate(size);
    ASSERT_TRUE(offset.ok());
    EXPECT_EQ(static_cast<uint64_t>(*offset) % size, 0u) << "size " << size;
  }
}

TEST_F(BuddyTest, FreeCoalescesBackToOneBlock) {
  std::vector<int64_t> offsets;
  for (int i = 0; i < 16; ++i) {
    auto offset = buddy_.Allocate(4096);
    ASSERT_TRUE(offset.ok());
    offsets.push_back(*offset);
  }
  EXPECT_EQ(buddy_.free_bytes(), kHeapSize - 16 * 4096);
  // Free in an interleaved order to exercise coalescing both directions.
  for (size_t i = 0; i < offsets.size(); i += 2) {
    ASSERT_TRUE(buddy_.Free(offsets[i]).ok());
  }
  for (size_t i = 1; i < offsets.size(); i += 2) {
    ASSERT_TRUE(buddy_.Free(offsets[i]).ok());
  }
  EXPECT_EQ(buddy_.free_bytes(), kHeapSize);
  ASSERT_TRUE(buddy_.Validate().ok());
  // Whole-heap allocation must succeed again: proves full coalescing.
  EXPECT_TRUE(buddy_.Allocate(kHeapSize).ok());
}

TEST_F(BuddyTest, DoubleFreeRejected) {
  auto offset = buddy_.Allocate(256);
  ASSERT_TRUE(offset.ok());
  ASSERT_TRUE(buddy_.Free(*offset).ok());
  EXPECT_FALSE(buddy_.Free(*offset).ok());
}

TEST_F(BuddyTest, FreeOfInteriorRejected) {
  auto offset = buddy_.Allocate(1024);
  ASSERT_TRUE(offset.ok());
  EXPECT_FALSE(buddy_.Free(*offset + 256).ok());
  EXPECT_FALSE(buddy_.Free(*offset + 1).ok());
  EXPECT_FALSE(buddy_.Free(-64).ok());
  EXPECT_FALSE(buddy_.Free(static_cast<int64_t>(kHeapSize)).ok());
}

TEST_F(BuddyTest, OversizeAllocationRejected) {
  EXPECT_FALSE(buddy_.Allocate(kHeapSize + 1).ok());
  EXPECT_FALSE(buddy_.Allocate(0).ok());
}

TEST_F(BuddyTest, ForEachAllocatedSeesExactlyLiveBlocks) {
  auto a = buddy_.Allocate(256);
  auto b = buddy_.Allocate(4096);
  auto c = buddy_.Allocate(512);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_TRUE(buddy_.Free(*b).ok());

  std::map<int64_t, size_t> seen;
  buddy_.ForEachAllocated([&](int64_t offset, size_t size) { seen[offset] = size; });
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[*a], 256u);
  EXPECT_EQ(seen[*c], 512u);
}

TEST_F(BuddyTest, AttachRejectsCorruptMeta) {
  meta_[0] ^= 0xff;  // Clobber the magic.
  auto attached = BuddyAllocator::Attach(meta_.data(), heap_.data(), kHeapSize);
  EXPECT_FALSE(attached.ok());
}

TEST_F(BuddyTest, AttachRejectsWrongGeometry) {
  auto attached = BuddyAllocator::Attach(meta_.data(), heap_.data(), kHeapSize / 2);
  EXPECT_FALSE(attached.ok());
}

TEST_F(BuddyTest, LogSinkSeesMetadataWrites) {
  struct Capture {
    std::vector<std::pair<void*, size_t>> writes;
  } capture;
  LogSink sink{&capture, [](void* ctx, void* addr, size_t size) {
                 static_cast<Capture*>(ctx)->writes.emplace_back(addr, size);
               }};
  buddy_.set_log_sink(sink);
  auto offset = buddy_.Allocate(256);
  ASSERT_TRUE(offset.ok());
  EXPECT_FALSE(capture.writes.empty()) << "allocation must announce metadata writes";
  size_t before = capture.writes.size();
  ASSERT_TRUE(buddy_.Free(*offset).ok());
  EXPECT_GT(capture.writes.size(), before);
}

// Property test: a randomized allocate/free torture against a reference map,
// validating the allocator invariants throughout.
class BuddyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BuddyPropertyTest, RandomTortureKeepsInvariants) {
  constexpr size_t kHeapSize = 1 << 20;
  std::vector<uint8_t> meta(BuddyAllocator::MetaSize(kHeapSize));
  std::vector<uint8_t> heap(kHeapSize);
  ASSERT_TRUE(BuddyAllocator::Format(meta.data(), heap.data(), kHeapSize).ok());
  auto attached = BuddyAllocator::Attach(meta.data(), heap.data(), kHeapSize);
  ASSERT_TRUE(attached.ok());
  BuddyAllocator buddy = std::move(*attached);

  Xoshiro256 rng(GetParam());
  std::map<int64_t, size_t> live;
  uint64_t live_bytes = 0;

  for (int step = 0; step < 3000; ++step) {
    const bool do_alloc = live.empty() || rng.Below(100) < 60;
    if (do_alloc) {
      size_t size = 1 + rng.Below(32 * 1024);
      auto offset = buddy.Allocate(size);
      if (offset.ok()) {
        size_t block = buddy.BlockSize(*offset);
        ASSERT_GE(block, size);
        // No overlap with any live block.
        auto next = live.upper_bound(*offset);
        if (next != live.end()) {
          ASSERT_LE(*offset + static_cast<int64_t>(block), next->first);
        }
        if (next != live.begin()) {
          auto prev = std::prev(next);
          ASSERT_LE(prev->first + static_cast<int64_t>(prev->second), *offset);
        }
        live[*offset] = block;
        live_bytes += block;
      }
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.Below(live.size())));
      ASSERT_TRUE(buddy.Free(it->first).ok());
      live_bytes -= it->second;
      live.erase(it);
    }
    ASSERT_EQ(buddy.free_bytes(), kHeapSize - live_bytes) << "at step " << step;
    if (step % 500 == 0) {
      ASSERT_TRUE(buddy.Validate().ok()) << "at step " << step;
    }
  }
  ASSERT_TRUE(buddy.Validate().ok());

  // Drain and verify complete coalescing.
  for (const auto& [offset, size] : live) {
    ASSERT_TRUE(buddy.Free(offset).ok());
  }
  EXPECT_EQ(buddy.free_bytes(), kHeapSize);
  EXPECT_TRUE(buddy.Allocate(kHeapSize).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuddyPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace puddles
