#include "src/ipc/unix_socket.h"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <thread>

#include "src/ipc/wire.h"

namespace puddles {
namespace {

TEST(WireTest, RoundTripAllTypes) {
  WireWriter writer;
  writer.PutU8(7);
  writer.PutU16(1000);
  writer.PutU32(70000);
  writer.PutU64(1ULL << 40);
  Uuid id = Uuid::Generate();
  writer.PutUuid(id);
  writer.PutString("hello puddles");
  uint8_t blob[5] = {1, 2, 3, 4, 5};
  writer.PutBytes(blob, sizeof(blob));
  writer.PutStatus(NotFoundError("gone"));

  WireReader reader(writer.bytes());
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  Uuid uuid;
  std::string str;
  std::vector<uint8_t> bytes;
  Status status;
  ASSERT_TRUE(reader.GetU8(&u8).ok());
  ASSERT_TRUE(reader.GetU16(&u16).ok());
  ASSERT_TRUE(reader.GetU32(&u32).ok());
  ASSERT_TRUE(reader.GetU64(&u64).ok());
  ASSERT_TRUE(reader.GetUuid(&uuid).ok());
  ASSERT_TRUE(reader.GetString(&str).ok());
  ASSERT_TRUE(reader.GetBytes(&bytes).ok());
  ASSERT_TRUE(reader.GetStatus(&status).ok());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u16, 1000);
  EXPECT_EQ(u32, 70000u);
  EXPECT_EQ(u64, 1ULL << 40);
  EXPECT_EQ(uuid, id);
  EXPECT_EQ(str, "hello puddles");
  EXPECT_EQ(bytes, std::vector<uint8_t>({1, 2, 3, 4, 5}));
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(reader.done());
}

TEST(WireTest, TruncationDetected) {
  WireWriter writer;
  writer.PutU64(42);
  std::vector<uint8_t> short_buf(writer.bytes().begin(), writer.bytes().begin() + 4);
  WireReader reader(short_buf);
  uint64_t v;
  EXPECT_FALSE(reader.GetU64(&v).ok());
}

TEST(WireTest, MaliciousLengthRejected) {
  WireWriter writer;
  writer.PutU32(0xffffffff);  // Claims a 4 GiB string.
  WireReader reader(writer.bytes());
  std::string s;
  EXPECT_FALSE(reader.GetString(&s).ok());
}

TEST(UnixSocketTest, PairSendRecv) {
  auto pair = UnixSocket::Pair();
  ASSERT_TRUE(pair.ok());
  auto& [a, b] = *pair;

  std::vector<uint8_t> message = {10, 20, 30};
  ASSERT_TRUE(a.Send(message).ok());
  auto received = b.Recv();
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(received->bytes, message);
  EXPECT_TRUE(received->fds.empty());
}

TEST(UnixSocketTest, EmptyMessage) {
  auto pair = UnixSocket::Pair();
  ASSERT_TRUE(pair.ok());
  ASSERT_TRUE(pair->first.Send({}).ok());
  auto received = pair->second.Recv();
  ASSERT_TRUE(received.ok());
  EXPECT_TRUE(received->bytes.empty());
}

TEST(UnixSocketTest, LargeMessageFragments) {
  auto pair = UnixSocket::Pair();
  ASSERT_TRUE(pair.ok());
  std::vector<uint8_t> big(3 << 20);
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<uint8_t>(i * 31);
  }
  // Send from a thread: a 3 MiB message exceeds socket buffers, so send and
  // receive must interleave.
  std::thread sender([&] { ASSERT_TRUE(pair->first.Send(big).ok()); });
  auto received = pair->second.Recv();
  sender.join();
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(received->bytes, big);
}

TEST(UnixSocketTest, FdPassingTransfersCapability) {
  auto pair = UnixSocket::Pair();
  ASSERT_TRUE(pair.ok());

  // Create a pipe and pass its read end across the socket.
  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  ASSERT_TRUE(pair->first.Send({1}, {pipe_fds[0]}).ok());
  ::close(pipe_fds[0]);

  auto received = pair->second.Recv();
  ASSERT_TRUE(received.ok());
  ASSERT_EQ(received->fds.size(), 1u);

  // Prove the received fd is live: write into the pipe, read via received fd.
  ASSERT_EQ(::write(pipe_fds[1], "xy", 2), 2);
  char buf[2];
  EXPECT_EQ(::read(received->fds[0], buf, 2), 2);
  EXPECT_EQ(buf[0], 'x');
  ::close(received->fds[0]);
  ::close(pipe_fds[1]);
}

TEST(UnixSocketTest, PeerClosedReported) {
  auto pair = UnixSocket::Pair();
  ASSERT_TRUE(pair.ok());
  pair->first.Close();
  auto received = pair->second.Recv();
  EXPECT_EQ(received.status().code(), StatusCode::kUnavailable);
}

TEST(UnixSocketTest, ServerAcceptAndCredentials) {
  std::string path = "/tmp/puddles_ipc_test_" + std::to_string(::getpid()) + ".sock";
  auto server = UnixSocketServer::Bind(path);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  std::thread client_thread([&path] {
    auto client = UnixSocket::Connect(path);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->Send({42}).ok());
    auto reply = client->Recv();
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->bytes, std::vector<uint8_t>{43});
  });

  auto connection = server->Accept();
  ASSERT_TRUE(connection.ok());
  auto creds = connection->Credentials();
  ASSERT_TRUE(creds.ok());
  EXPECT_EQ(creds->uid, ::geteuid());
  EXPECT_EQ(creds->gid, ::getegid());
  EXPECT_EQ(creds->pid, static_cast<uint32_t>(::getpid()));

  auto request = connection->Recv();
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->bytes, std::vector<uint8_t>{42});
  ASSERT_TRUE(connection->Send({43}).ok());
  client_thread.join();
}

TEST(UnixSocketTest, ConnectToMissingPathFails) {
  EXPECT_FALSE(UnixSocket::Connect("/tmp/no_such_puddles_socket_12345").ok());
}

}  // namespace
}  // namespace puddles
