#include "src/alloc/object_heap.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <set>
#include <vector>

#include "src/common/rng.h"

namespace puddles {

struct TestNode {
  TestNode* next;
  uint64_t value;
};

struct BigRecord {
  char payload[1000];
};

namespace {

class ObjectHeapTest : public ::testing::Test {
 protected:
  static constexpr size_t kHeapSize = 1 << 20;

  void SetUp() override {
    meta_.resize(ObjectHeap::MetaSize(kHeapSize));
    heap_buf_.resize(kHeapSize);
    ASSERT_TRUE(ObjectHeap::Format(meta_.data(), heap_buf_.data(), kHeapSize).ok());
    auto attached = ObjectHeap::Attach(meta_.data(), heap_buf_.data(), kHeapSize);
    ASSERT_TRUE(attached.ok()) << attached.status().ToString();
    heap_ = std::move(*attached);
  }

  std::vector<uint8_t> meta_;
  std::vector<uint8_t> heap_buf_;
  ObjectHeap heap_;
};

TEST_F(ObjectHeapTest, TypedAllocationCarriesTypeId) {
  auto node = heap_.AllocateTyped<TestNode>();
  ASSERT_TRUE(node.ok());
  const ObjectHeader* header = heap_.HeaderOf(*node);
  ASSERT_NE(header, nullptr);
  EXPECT_EQ(header->type_id, TypeIdOf<TestNode>());
  EXPECT_EQ(header->size, sizeof(TestNode));
}

TEST_F(ObjectHeapTest, SmallObjectsGoToSlabs) {
  // Two small same-type objects should land adjacent within one slab.
  auto a = heap_.AllocateTyped<TestNode>();
  auto b = heap_.AllocateTyped<TestNode>();
  ASSERT_TRUE(a.ok() && b.ok());
  auto delta = reinterpret_cast<intptr_t>(*b) - reinterpret_cast<intptr_t>(*a);
  EXPECT_LT(std::abs(delta), static_cast<intptr_t>(kSlabBlockSize));
}

TEST_F(ObjectHeapTest, LargeObjectsGoToBuddy) {
  auto big = heap_.AllocateTyped<BigRecord>();
  ASSERT_TRUE(big.ok());
  const ObjectHeader* header = heap_.HeaderOf(*big);
  ASSERT_NE(header, nullptr);
  EXPECT_EQ(header->size, sizeof(BigRecord));
  EXPECT_TRUE(heap_.IsLiveObject(*big));
}

TEST_F(ObjectHeapTest, ArrayAllocation) {
  auto arr = heap_.AllocateTyped<TestNode>(100);
  ASSERT_TRUE(arr.ok());
  const ObjectHeader* header = heap_.HeaderOf(*arr);
  ASSERT_NE(header, nullptr);
  EXPECT_EQ(header->size, 100 * sizeof(TestNode));
  EXPECT_EQ(header->type_id, TypeIdOf<TestNode>());
}

TEST_F(ObjectHeapTest, FreeMakesObjectDead) {
  auto node = heap_.AllocateTyped<TestNode>();
  ASSERT_TRUE(node.ok());
  EXPECT_TRUE(heap_.IsLiveObject(*node));
  ASSERT_TRUE(heap_.Free(*node).ok());
  EXPECT_FALSE(heap_.IsLiveObject(*node));
  EXPECT_FALSE(heap_.Free(*node).ok()) << "double free must be rejected";
}

TEST_F(ObjectHeapTest, ZeroSizeRejected) {
  auto r = heap_.Allocate(0, kRawBytesTypeId);
  EXPECT_FALSE(r.ok());
}

TEST_F(ObjectHeapTest, ForEachObjectSeesMixedSizes) {
  auto small = heap_.AllocateTyped<TestNode>();
  auto big = heap_.AllocateTyped<BigRecord>();
  auto raw = heap_.Allocate(5000, kRawBytesTypeId);
  ASSERT_TRUE(small.ok() && big.ok() && raw.ok());

  std::map<void*, TypeId> seen;
  heap_.ForEachObject([&](void* payload, const ObjectHeader& header, size_t capacity) {
    EXPECT_GE(capacity, header.size) << "slot/block must hold the requested payload";
    seen[payload] = header.type_id;
  });
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[*small], TypeIdOf<TestNode>());
  EXPECT_EQ(seen[*big], TypeIdOf<BigRecord>());
  EXPECT_EQ(seen[static_cast<void*>(*raw)], kRawBytesTypeId);
}

TEST_F(ObjectHeapTest, ForEachSkipsFreedObjects) {
  auto a = heap_.AllocateTyped<TestNode>();
  auto b = heap_.AllocateTyped<TestNode>();
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(heap_.Free(*a).ok());
  std::set<void*> seen;
  heap_.ForEachObject(
      [&](void* payload, const ObjectHeader&, size_t) { seen.insert(payload); });
  EXPECT_EQ(seen.size(), 1u);
  EXPECT_TRUE(seen.count(*b));
}

TEST_F(ObjectHeapTest, ReattachSeesSameObjects) {
  auto node = heap_.AllocateTyped<TestNode>();
  ASSERT_TRUE(node.ok());
  (*node)->value = 77;

  // Simulate a process restart: attach fresh over the same memory.
  auto reattached = ObjectHeap::Attach(meta_.data(), heap_buf_.data(), kHeapSize);
  ASSERT_TRUE(reattached.ok());
  int count = 0;
  reattached->ForEachObject([&](void* payload, const ObjectHeader& header, size_t) {
    ++count;
    EXPECT_EQ(header.type_id, TypeIdOf<TestNode>());
    EXPECT_EQ(static_cast<TestNode*>(payload)->value, 77u);
  });
  EXPECT_EQ(count, 1);
}

TEST_F(ObjectHeapTest, HeaderOfRejectsGarbagePointers) {
  EXPECT_EQ(heap_.HeaderOf(nullptr), nullptr);
  EXPECT_EQ(heap_.HeaderOf(heap_buf_.data()), nullptr);  // Heap start, no header before it.
  int stack_var;
  EXPECT_EQ(heap_.HeaderOf(&stack_var), nullptr);
}

TEST_F(ObjectHeapTest, ExhaustionReportsOutOfMemory) {
  std::vector<void*> allocations;
  while (true) {
    auto r = heap_.Allocate(32 * 1024 - 16, kRawBytesTypeId);  // Exactly one 32 KiB block.
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kOutOfMemory);
      break;
    }
    allocations.push_back(*r);
  }
  EXPECT_GT(allocations.size(), 10u);
  for (void* p : allocations) {
    ASSERT_TRUE(heap_.Free(p).ok());
  }
  EXPECT_EQ(heap_.free_bytes(), kHeapSize);
}

class ObjectHeapPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ObjectHeapPropertyTest, TortureWithIterationCrossCheck) {
  constexpr size_t kHeapSize = 1 << 20;
  std::vector<uint8_t> meta(ObjectHeap::MetaSize(kHeapSize));
  std::vector<uint8_t> heap_buf(kHeapSize);
  ASSERT_TRUE(ObjectHeap::Format(meta.data(), heap_buf.data(), kHeapSize).ok());
  auto attached = ObjectHeap::Attach(meta.data(), heap_buf.data(), kHeapSize);
  ASSERT_TRUE(attached.ok());
  ObjectHeap heap = std::move(*attached);

  Xoshiro256 rng(GetParam());
  std::map<void*, std::pair<size_t, uint8_t>> live;  // payload -> (size, fill byte)

  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.Below(100) < 55) {
      size_t size = 1 + rng.Below(2048);
      auto r = heap.Allocate(size, kRawBytesTypeId);
      if (!r.ok()) {
        continue;
      }
      auto fill = static_cast<uint8_t>(rng.Below(255) + 1);
      std::memset(*r, fill, size);
      live[*r] = {size, fill};
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.Below(live.size())));
      // Contents must be intact right up to the free: catches any allocator
      // metadata overlapping user payloads.
      auto* bytes = static_cast<uint8_t*>(it->first);
      for (size_t i = 0; i < it->second.first; ++i) {
        ASSERT_EQ(bytes[i], it->second.second) << "payload corrupted at byte " << i;
      }
      ASSERT_TRUE(heap.Free(it->first).ok());
      live.erase(it);
    }
    if (step % 500 == 0) {
      // Iteration must see exactly the live set.
      std::set<void*> seen;
      heap.ForEachObject(
          [&](void* payload, const ObjectHeader&, size_t) { seen.insert(payload); });
      ASSERT_EQ(seen.size(), live.size()) << "step " << step;
      for (const auto& [payload, meta_info] : live) {
        ASSERT_TRUE(seen.count(payload)) << "live object missing from iteration";
      }
      ASSERT_TRUE(heap.Validate().ok());
    }
  }
  for (const auto& [payload, info] : live) {
    ASSERT_TRUE(heap.Free(payload).ok());
  }
  EXPECT_EQ(heap.free_bytes(), kHeapSize);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObjectHeapPropertyTest, ::testing::Values(101, 202, 303, 404));

}  // namespace
}  // namespace puddles
