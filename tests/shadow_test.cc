// Tests for the crash simulator: the durable image must reflect exactly the
// flushed state, and simulated eviction must only ever persist dirty lines.
#include "src/pmem/shadow.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/pmem/flush.h"

namespace pmem {
namespace {

class ShadowTest : public ::testing::Test {
 protected:
  void TearDown() override { ShadowRegistry::Instance().DetachAll(); }
};

TEST_F(ShadowTest, UnflushedStoresAreLostOnCrash) {
  alignas(64) std::vector<uint8_t> region(4096, 0xaa);
  ScopedShadow shadow(region.data(), region.size());

  region[100] = 0xbb;  // Store, never flushed.
  ShadowCrashReport report = ShadowRegistry::Instance().SimulateCrash();
  EXPECT_EQ(report.dirty_lines, 1u);
  EXPECT_EQ(region[100], 0xaa) << "unflushed store must not survive the crash";
}

TEST_F(ShadowTest, FlushedStoresSurviveCrash) {
  alignas(64) std::vector<uint8_t> region(4096, 0);
  ScopedShadow shadow(region.data(), region.size());

  region[200] = 0x42;
  Flush(&region[200], 1);
  Fence();
  ShadowRegistry::Instance().SimulateCrash();
  EXPECT_EQ(region[200], 0x42);
}

TEST_F(ShadowTest, FlushGranularityIsCacheLines) {
  alignas(64) std::vector<uint8_t> region(4096, 0);
  ScopedShadow shadow(region.data(), region.size());

  // Two stores on the same cache line; flushing one byte persists the line.
  region[0] = 1;
  region[63] = 2;
  Flush(&region[0], 1);
  Fence();
  // A store on a different line stays volatile.
  region[128] = 3;
  ShadowRegistry::Instance().SimulateCrash();
  EXPECT_EQ(region[0], 1);
  EXPECT_EQ(region[63], 2) << "same-line store persists with the flushed byte";
  EXPECT_EQ(region[128], 0) << "other-line store must be lost";
}

TEST_F(ShadowTest, CrashIsRepeatableAfterSync) {
  alignas(64) std::vector<uint8_t> region(4096, 0);
  ScopedShadow shadow(region.data(), region.size());

  region[10] = 9;
  ShadowRegistry::Instance().SimulateCrash();
  EXPECT_EQ(region[10], 0);

  // After the crash the shadow tracks the rolled-back live state, so new
  // flushed writes persist across a second crash.
  region[10] = 7;
  FlushFence(&region[10], 1);
  region[20] = 8;  // Unflushed.
  ShadowRegistry::Instance().SimulateCrash();
  EXPECT_EQ(region[10], 7);
  EXPECT_EQ(region[20], 0);
}

TEST_F(ShadowTest, EvictionPersistsSomeDirtyLines) {
  alignas(64) std::vector<uint8_t> region(64 * 100, 0);
  ScopedShadow shadow(region.data(), region.size());

  for (int line = 0; line < 100; ++line) {
    region[static_cast<size_t>(line) * 64] = 0xcc;  // 100 dirty lines, none flushed.
  }
  ShadowCrashOptions options;
  options.evict_random_lines = true;
  options.eviction_probability = 0.5;
  options.seed = 12345;
  ShadowCrashReport report = ShadowRegistry::Instance().SimulateCrash(options);
  EXPECT_EQ(report.dirty_lines, 100u);
  EXPECT_GT(report.evicted_lines, 20u);
  EXPECT_LT(report.evicted_lines, 80u);

  size_t survived = 0;
  for (int line = 0; line < 100; ++line) {
    if (region[static_cast<size_t>(line) * 64] == 0xcc) {
      ++survived;
    }
  }
  EXPECT_EQ(survived, report.evicted_lines);
}

TEST_F(ShadowTest, EvictionIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    alignas(64) std::vector<uint8_t> region(64 * 50, 0);
    ScopedShadow shadow(region.data(), region.size());
    for (int line = 0; line < 50; ++line) {
      region[static_cast<size_t>(line) * 64] = 1;
    }
    ShadowCrashOptions options;
    options.evict_random_lines = true;
    options.seed = seed;
    ShadowRegistry::Instance().SimulateCrash(options);
    std::vector<uint8_t> result(region.begin(), region.end());
    ShadowRegistry::Instance().Detach(region.data());
    return result;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST_F(ShadowTest, MultipleRegionsTrackedIndependently) {
  alignas(64) std::vector<uint8_t> a(4096, 0);
  alignas(64) std::vector<uint8_t> b(4096, 0);
  ScopedShadow sa(a.data(), a.size());
  ScopedShadow sb(b.data(), b.size());

  a[0] = 1;
  FlushFence(&a[0], 1);
  b[0] = 2;  // Unflushed.
  ShadowRegistry::Instance().SimulateCrash();
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(b[0], 0);
}

TEST_F(ShadowTest, InactiveWithoutRegions) {
  EXPECT_FALSE(ShadowRegistry::Instance().active());
  {
    std::vector<uint8_t> region(64, 0);
    ScopedShadow shadow(region.data(), region.size());
    EXPECT_TRUE(ShadowRegistry::Instance().active());
  }
  EXPECT_FALSE(ShadowRegistry::Instance().active());
}

}  // namespace
}  // namespace pmem
