#include "src/tx/log_format.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace puddles {
namespace {

class LogFormatTest : public ::testing::Test {
 protected:
  static constexpr size_t kCapacity = 64 * 1024;

  void SetUp() override {
    buffer_.resize(kCapacity);
    ASSERT_TRUE(LogRegion::Format(buffer_.data(), kCapacity).ok());
    auto log = LogRegion::Attach(buffer_.data(), kCapacity);
    ASSERT_TRUE(log.ok());
    log_ = *log;
  }

  std::vector<uint8_t> buffer_;
  LogRegion log_;
};

TEST_F(LogFormatTest, FreshLogArmedForUndo) {
  EXPECT_TRUE(log_.empty());
  EXPECT_EQ(log_.seq_range(), (std::pair<uint32_t, uint32_t>{0, 2}));
  EXPECT_EQ(log_.num_entries(), 0u);
  EXPECT_TRUE(log_.next_log().is_nil());
}

TEST_F(LogFormatTest, AppendAndIterate) {
  uint64_t value1 = 0x1111;
  uint64_t value2 = 0x2222;
  ASSERT_TRUE(log_.Append(0xA000, &value1, 8, kUndoSeq, ReplayOrder::kReverse).ok());
  ASSERT_TRUE(log_.Append(0xB000, &value2, 8, kRedoSeq, ReplayOrder::kForward).ok());
  EXPECT_EQ(log_.num_entries(), 2u);

  std::vector<LogRegion::EntryView> views;
  ASSERT_TRUE(log_.ForEachEntry([&](const LogRegion::EntryView& v) { views.push_back(v); }));
  ASSERT_EQ(views.size(), 2u);

  EXPECT_EQ(views[0].header->addr, 0xA000u);
  EXPECT_EQ(views[0].header->seq, kUndoSeq);
  EXPECT_EQ(views[0].header->order, static_cast<uint8_t>(ReplayOrder::kReverse));
  EXPECT_TRUE(views[0].checksum_ok);
  EXPECT_TRUE(views[0].valid) << "undo entry valid under range (0,2)";
  EXPECT_EQ(std::memcmp(views[0].data, &value1, 8), 0);

  EXPECT_EQ(views[1].header->seq, kRedoSeq);
  EXPECT_TRUE(views[1].checksum_ok);
  EXPECT_FALSE(views[1].valid) << "redo entry invalid under range (0,2)";
}

TEST_F(LogFormatTest, SeqRangeControlsValidity) {
  uint64_t v = 1;
  ASSERT_TRUE(log_.Append(0xA000, &v, 8, kUndoSeq, ReplayOrder::kReverse).ok());
  ASSERT_TRUE(log_.Append(0xB000, &v, 8, kRedoSeq, ReplayOrder::kForward).ok());

  auto validity = [&]() {
    std::vector<bool> valid;
    log_.ForEachEntry([&](const LogRegion::EntryView& view) { valid.push_back(view.valid); });
    return valid;
  };

  log_.SetSeqRange(0, 2);  // Stage 1: undo only.
  EXPECT_EQ(validity(), (std::vector<bool>{true, false}));
  log_.SetSeqRange(2, 4);  // Stage 2: redo only.
  EXPECT_EQ(validity(), (std::vector<bool>{false, true}));
  log_.SetSeqRange(4, 4);  // Stage 3: nothing.
  EXPECT_EQ(validity(), (std::vector<bool>{false, false}));
  log_.SetSeqRange(0, 4);  // Hypothetical: everything.
  EXPECT_EQ(validity(), (std::vector<bool>{true, true}));
}

TEST_F(LogFormatTest, ChecksumDetectsTornData) {
  std::vector<uint8_t> payload(256, 0xee);
  ASSERT_TRUE(
      log_.Append(0xC000, payload.data(), payload.size(), kUndoSeq, ReplayOrder::kReverse).ok());
  // Corrupt one data byte (as a torn write would).
  buffer_[sizeof(LogHeader) + sizeof(LogEntryHeader) + 100] ^= 0xff;
  log_.ForEachEntry([&](const LogRegion::EntryView& view) {
    EXPECT_FALSE(view.checksum_ok);
    EXPECT_FALSE(view.valid);
  });
}

TEST_F(LogFormatTest, FillToCapacityThenOutOfMemory) {
  std::vector<uint8_t> payload(1024, 0xab);
  size_t appended = 0;
  while (true) {
    auto status =
        log_.Append(0xD000, payload.data(), payload.size(), kUndoSeq, ReplayOrder::kReverse);
    if (!status.ok()) {
      EXPECT_EQ(status.code(), StatusCode::kOutOfMemory);
      break;
    }
    ++appended;
  }
  EXPECT_GT(appended, 50u);
  EXPECT_LT(log_.free_bytes(), LogRegion::EntrySpan(1024));
}

TEST_F(LogFormatTest, ResetEmptiesAndRearms) {
  uint64_t v = 7;
  ASSERT_TRUE(log_.Append(0xA000, &v, 8, kUndoSeq, ReplayOrder::kReverse).ok());
  log_.SetNextLog(Uuid::Generate());
  log_.Reset(0, 2);
  EXPECT_TRUE(log_.empty());
  EXPECT_EQ(log_.seq_range(), (std::pair<uint32_t, uint32_t>{0, 2}));
  EXPECT_TRUE(log_.next_log().is_nil());
  int count = 0;
  log_.ForEachEntry([&](const LogRegion::EntryView&) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST_F(LogFormatTest, AttachValidates) {
  EXPECT_FALSE(LogRegion::Attach(buffer_.data(), kCapacity / 2).ok());
  buffer_[0] ^= 1;
  EXPECT_FALSE(LogRegion::Attach(buffer_.data(), kCapacity).ok());
}

TEST_F(LogFormatTest, AttachSeesPersistedEntries) {
  uint64_t v = 0xfeed;
  ASSERT_TRUE(log_.Append(0xA000, &v, 8, kUndoSeq, ReplayOrder::kReverse).ok());
  auto reattached = LogRegion::Attach(buffer_.data(), kCapacity);
  ASSERT_TRUE(reattached.ok());
  EXPECT_EQ(reattached->num_entries(), 1u);
  reattached->ForEachEntry([&](const LogRegion::EntryView& view) {
    EXPECT_EQ(std::memcmp(view.data, &v, 8), 0);
  });
}

TEST_F(LogFormatTest, NextLogLinkPersists) {
  Uuid next = Uuid::Generate();
  log_.SetNextLog(next);
  auto reattached = LogRegion::Attach(buffer_.data(), kCapacity);
  ASSERT_TRUE(reattached.ok());
  EXPECT_EQ(reattached->next_log(), next);
}

TEST_F(LogFormatTest, VolatileFlagRoundTrips) {
  uint64_t v = 3;
  ASSERT_TRUE(log_.Append(reinterpret_cast<uint64_t>(&v), &v, 8, kUndoSeq,
                          ReplayOrder::kReverse, kLogEntryVolatile)
                  .ok());
  log_.ForEachEntry([&](const LogRegion::EntryView& view) {
    EXPECT_TRUE(view.header->flags & kLogEntryVolatile);
  });
}

TEST_F(LogFormatTest, EntrySpanAligns) {
  EXPECT_EQ(LogRegion::EntrySpan(0), sizeof(LogEntryHeader));
  EXPECT_EQ(LogRegion::EntrySpan(1), sizeof(LogEntryHeader) + 8);
  EXPECT_EQ(LogRegion::EntrySpan(8), sizeof(LogEntryHeader) + 8);
  EXPECT_EQ(LogRegion::EntrySpan(9), sizeof(LogEntryHeader) + 16);
}

}  // namespace
}  // namespace puddles
