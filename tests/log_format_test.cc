#include "src/tx/log_format.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/pmem/flush.h"
#include "src/pmem/shadow.h"

namespace puddles {
namespace {

class LogFormatTest : public ::testing::Test {
 protected:
  static constexpr size_t kCapacity = 64 * 1024;

  void SetUp() override {
    buffer_.resize(kCapacity);
    ASSERT_TRUE(LogRegion::Format(buffer_.data(), kCapacity).ok());
    auto log = LogRegion::Attach(buffer_.data(), kCapacity);
    ASSERT_TRUE(log.ok());
    log_ = *log;
  }

  std::vector<uint8_t> buffer_;
  LogRegion log_;
};

TEST_F(LogFormatTest, FreshLogArmedForUndo) {
  EXPECT_TRUE(log_.empty());
  EXPECT_EQ(log_.seq_range(), (std::pair<uint32_t, uint32_t>{0, 2}));
  EXPECT_EQ(log_.num_entries(), 0u);
  EXPECT_TRUE(log_.next_log().is_nil());
}

TEST_F(LogFormatTest, AppendAndIterate) {
  uint64_t value1 = 0x1111;
  uint64_t value2 = 0x2222;
  ASSERT_TRUE(log_.Append(0xA000, &value1, 8, kUndoSeq, ReplayOrder::kReverse).ok());
  ASSERT_TRUE(log_.Append(0xB000, &value2, 8, kRedoSeq, ReplayOrder::kForward).ok());
  EXPECT_EQ(log_.num_entries(), 2u);

  std::vector<LogRegion::EntryView> views;
  ASSERT_TRUE(log_.ForEachEntry([&](const LogRegion::EntryView& v) { views.push_back(v); }));
  ASSERT_EQ(views.size(), 2u);

  EXPECT_EQ(views[0].header->addr, 0xA000u);
  EXPECT_EQ(views[0].header->seq, kUndoSeq);
  EXPECT_EQ(views[0].header->order, static_cast<uint8_t>(ReplayOrder::kReverse));
  EXPECT_TRUE(views[0].checksum_ok);
  EXPECT_TRUE(views[0].valid) << "undo entry valid under range (0,2)";
  EXPECT_EQ(std::memcmp(views[0].data, &value1, 8), 0);

  EXPECT_EQ(views[1].header->seq, kRedoSeq);
  EXPECT_TRUE(views[1].checksum_ok);
  EXPECT_FALSE(views[1].valid) << "redo entry invalid under range (0,2)";
}

TEST_F(LogFormatTest, SeqRangeControlsValidity) {
  uint64_t v = 1;
  ASSERT_TRUE(log_.Append(0xA000, &v, 8, kUndoSeq, ReplayOrder::kReverse).ok());
  ASSERT_TRUE(log_.Append(0xB000, &v, 8, kRedoSeq, ReplayOrder::kForward).ok());

  auto validity = [&]() {
    std::vector<bool> valid;
    log_.ForEachEntry([&](const LogRegion::EntryView& view) { valid.push_back(view.valid); });
    return valid;
  };

  log_.SetSeqRange(0, 2);  // Stage 1: undo only.
  EXPECT_EQ(validity(), (std::vector<bool>{true, false}));
  log_.SetSeqRange(2, 4);  // Stage 2: redo only.
  EXPECT_EQ(validity(), (std::vector<bool>{false, true}));
  log_.SetSeqRange(4, 4);  // Stage 3: nothing.
  EXPECT_EQ(validity(), (std::vector<bool>{false, false}));
  log_.SetSeqRange(0, 4);  // Hypothetical: everything.
  EXPECT_EQ(validity(), (std::vector<bool>{true, true}));
}

TEST_F(LogFormatTest, ChecksumDetectsTornData) {
  std::vector<uint8_t> payload(256, 0xee);
  ASSERT_TRUE(
      log_.Append(0xC000, payload.data(), payload.size(), kUndoSeq, ReplayOrder::kReverse).ok());
  // Corrupt one data byte (as a torn write would).
  buffer_[sizeof(LogHeader) + sizeof(LogEntryHeader) + 100] ^= 0xff;
  log_.ForEachEntry([&](const LogRegion::EntryView& view) {
    EXPECT_FALSE(view.checksum_ok);
    EXPECT_FALSE(view.valid);
  });
}

TEST_F(LogFormatTest, FillToCapacityThenOutOfMemory) {
  std::vector<uint8_t> payload(1024, 0xab);
  size_t appended = 0;
  while (true) {
    auto status =
        log_.Append(0xD000, payload.data(), payload.size(), kUndoSeq, ReplayOrder::kReverse);
    if (!status.ok()) {
      EXPECT_EQ(status.code(), StatusCode::kOutOfMemory);
      break;
    }
    ++appended;
  }
  EXPECT_GT(appended, 50u);
  EXPECT_LT(log_.free_bytes(), LogRegion::EntrySpan(1024));
}

TEST_F(LogFormatTest, ResetEmptiesAndRearms) {
  uint64_t v = 7;
  ASSERT_TRUE(log_.Append(0xA000, &v, 8, kUndoSeq, ReplayOrder::kReverse).ok());
  log_.SetNextLog(Uuid::Generate());
  log_.Reset(0, 2);
  EXPECT_TRUE(log_.empty());
  EXPECT_EQ(log_.seq_range(), (std::pair<uint32_t, uint32_t>{0, 2}));
  EXPECT_TRUE(log_.next_log().is_nil());
  int count = 0;
  log_.ForEachEntry([&](const LogRegion::EntryView&) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST_F(LogFormatTest, AttachValidates) {
  EXPECT_FALSE(LogRegion::Attach(buffer_.data(), kCapacity / 2).ok());
  buffer_[0] ^= 1;
  EXPECT_FALSE(LogRegion::Attach(buffer_.data(), kCapacity).ok());
}

TEST_F(LogFormatTest, AttachSeesPersistedEntries) {
  uint64_t v = 0xfeed;
  ASSERT_TRUE(log_.Append(0xA000, &v, 8, kUndoSeq, ReplayOrder::kReverse).ok());
  auto reattached = LogRegion::Attach(buffer_.data(), kCapacity);
  ASSERT_TRUE(reattached.ok());
  EXPECT_EQ(reattached->num_entries(), 1u);
  reattached->ForEachEntry([&](const LogRegion::EntryView& view) {
    EXPECT_EQ(std::memcmp(view.data, &v, 8), 0);
  });
}

TEST_F(LogFormatTest, NextLogLinkPersists) {
  Uuid next = Uuid::Generate();
  log_.SetNextLog(next);
  auto reattached = LogRegion::Attach(buffer_.data(), kCapacity);
  ASSERT_TRUE(reattached.ok());
  EXPECT_EQ(reattached->next_log(), next);
}

TEST_F(LogFormatTest, VolatileFlagRoundTrips) {
  uint64_t v = 3;
  ASSERT_TRUE(log_.Append(reinterpret_cast<uint64_t>(&v), &v, 8, kUndoSeq,
                          ReplayOrder::kReverse, kLogEntryVolatile)
                  .ok());
  log_.ForEachEntry([&](const LogRegion::EntryView& view) {
    EXPECT_TRUE(view.header->flags & kLogEntryVolatile);
  });
}

TEST_F(LogFormatTest, EntrySpanAligns) {
  EXPECT_EQ(LogRegion::EntrySpan(0), sizeof(LogEntryHeader));
  EXPECT_EQ(LogRegion::EntrySpan(1), sizeof(LogEntryHeader) + 8);
  EXPECT_EQ(LogRegion::EntrySpan(8), sizeof(LogEntryHeader) + 8);
  EXPECT_EQ(LogRegion::EntrySpan(9), sizeof(LogEntryHeader) + 16);
}

// ---- Batched (staged) appends: torn-batch crash semantics (DESIGN.md §10).
//
// Each test stages appends without publishing, persists some subset of the
// batch's cache lines by hand (standing in for an arbitrary crash/eviction
// interleaving), simulates power failure through the ShadowHeap, and checks
// that replay-side validity degrades exactly like a torn single append:
// entries are either intact-and-valid or checksum-discarded, never applied
// torn. 48-byte payloads make every entry span exactly one 64-byte line, so
// "persist entry k" is a single-line flush.

class LogBatchTest : public LogFormatTest {
 protected:
  // 24-byte entry header + 40-byte payload = one 64-byte line per entry.
  static constexpr uint32_t kLineSizedPayload = 40;

  void TearDown() override { pmem::ShadowRegistry::Instance().DetachAll(); }

  puddles::Status StageOne(uint64_t addr, uint8_t fill, pmem::FlushBatch* batch) {
    std::vector<uint8_t> payload(kLineSizedPayload, fill);
    return log_.AppendStaged(addr, payload.data(), kLineSizedPayload, kUndoSeq,
                             ReplayOrder::kReverse, 0, batch);
  }

  uint8_t* EntryLine(int index) {
    return buffer_.data() + sizeof(LogHeader) + static_cast<size_t>(index) * 64;
  }
};

TEST_F(LogBatchTest, UnpublishedBatchInvisibleAfterCrash) {
  pmem::ScopedShadow shadow(buffer_.data(), buffer_.size());
  pmem::FlushBatch batch;
  ASSERT_TRUE(StageOne(0xA000, 0x11, &batch).ok());
  ASSERT_TRUE(StageOne(0xB000, 0x22, &batch).ok());
  EXPECT_EQ(log_.num_entries(), 2u) << "staged appends are live in the mapped view";
  // Crash with nothing published: neither FlushPending nor a fence ran.
  pmem::ShadowRegistry::Instance().SimulateCrash();
  auto recovered = LogRegion::Attach(buffer_.data(), kCapacity);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->num_entries(), 0u)
      << "old header must hide the staged batch after a pre-publication crash";
}

TEST_F(LogBatchTest, HeaderEvictedWithTornEntriesIsFullyDiscarded) {
  pmem::ScopedShadow shadow(buffer_.data(), buffer_.size());
  pmem::FlushBatch batch;
  ASSERT_TRUE(StageOne(0xA000, 0x11, &batch).ok());
  ASSERT_TRUE(StageOne(0xB000, 0x22, &batch).ok());
  // Adversarial eviction: the header line becomes durable (admitting both
  // entries) while no entry byte does.
  pmem::FlushFence(buffer_.data(), sizeof(LogHeader));
  pmem::ShadowRegistry::Instance().SimulateCrash();
  auto recovered = LogRegion::Attach(buffer_.data(), kCapacity);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->num_entries(), 2u);
  int seen = 0;
  recovered->ForEachEntry([&](const LogRegion::EntryView& view) {
    ++seen;
    EXPECT_FALSE(view.checksum_ok) << "torn entry " << seen << " must fail its checksum";
    EXPECT_FALSE(view.valid);
  });
}

TEST_F(LogBatchTest, PartiallyPersistedBatchKeepsOnlyIntactEntries) {
  pmem::ScopedShadow shadow(buffer_.data(), buffer_.size());
  pmem::FlushBatch batch;
  ASSERT_TRUE(StageOne(0xA000, 0x11, &batch).ok());
  ASSERT_TRUE(StageOne(0xB000, 0x22, &batch).ok());
  ASSERT_TRUE(StageOne(0xC000, 0x33, &batch).ok());
  // Eviction persisted the header and the FIRST entry's line only: the
  // intact prefix replays, the torn tail is discarded — and a torn entry
  // also severs framing for everything behind it (its size field is gone),
  // so discard is conservative, never partial application.
  pmem::Flush(buffer_.data(), sizeof(LogHeader));
  pmem::Flush(EntryLine(0), 64);
  pmem::Fence();
  pmem::ShadowRegistry::Instance().SimulateCrash();
  auto recovered = LogRegion::Attach(buffer_.data(), kCapacity);
  ASSERT_TRUE(recovered.ok());
  std::vector<bool> ok;
  recovered->ForEachEntry([&](const LogRegion::EntryView& view) { ok.push_back(view.valid); });
  ASSERT_GE(ok.size(), 1u);
  EXPECT_TRUE(ok[0]) << "the fully persisted entry replays";
  for (size_t i = 1; i < ok.size(); ++i) {
    EXPECT_FALSE(ok[i]) << "torn entry " << i << " (and its tail) must be discarded";
  }
}

TEST_F(LogBatchTest, PublishedBatchSurvivesCrashIntact) {
  pmem::ScopedShadow shadow(buffer_.data(), buffer_.size());
  pmem::FlushBatch batch;
  ASSERT_TRUE(StageOne(0xA000, 0x11, &batch).ok());
  ASSERT_TRUE(StageOne(0xB000, 0x22, &batch).ok());
  batch.FlushPending();  // Publication: one deduplicated pass...
  pmem::Fence();         // ...and one fence for the whole batch.
  pmem::ShadowRegistry::Instance().SimulateCrash();
  auto recovered = LogRegion::Attach(buffer_.data(), kCapacity);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->num_entries(), 2u);
  recovered->ForEachEntry([&](const LogRegion::EntryView& view) {
    EXPECT_TRUE(view.checksum_ok);
    EXPECT_TRUE(view.valid);
  });
}

TEST_F(LogFormatTest, RearmIsSingleWriteRetirement) {
  uint64_t v = 7;
  ASSERT_TRUE(log_.Append(0xA000, &v, 8, kUndoSeq, ReplayOrder::kReverse).ok());
  ASSERT_TRUE(log_.Rearm());
  EXPECT_TRUE(log_.empty());
  EXPECT_EQ(log_.seq_range(), (std::pair<uint32_t, uint32_t>{0, 2}));
  // Preconditions: refuses a non-(0,2) range or a chained log, leaving the
  // header untouched for the general Reset path.
  log_.SetSeqRange(2, 4);
  EXPECT_FALSE(log_.Rearm());
  log_.SetSeqRange(0, 2);
  log_.SetNextLog(Uuid::Generate());
  EXPECT_FALSE(log_.Rearm());
  EXPECT_FALSE(log_.next_log().is_nil());
}

TEST_F(LogFormatTest, RetireCommittedClosesAndClears) {
  uint64_t v = 7;
  ASSERT_TRUE(log_.Append(0xA000, &v, 8, kUndoSeq, ReplayOrder::kReverse).ok());
  log_.SetSeqRange(2, 4);
  ASSERT_TRUE(log_.RetireCommitted());
  EXPECT_TRUE(log_.empty());
  EXPECT_EQ(log_.seq_range(), (std::pair<uint32_t, uint32_t>{4, 4}));
  log_.SetSeqRange(0, 2);
  log_.SetNextLog(Uuid::Generate());
  EXPECT_FALSE(log_.RetireCommitted()) << "chained logs take the conservative Reset path";
}

}  // namespace
}  // namespace puddles
