// Location independence end to end (paper §4.2, §5.3): pools are exported as
// raw puddle files, imported as copies with fresh UUIDs, relocated on address
// conflict with incremental pointer rewriting — and multiple copies open
// simultaneously with native pointers, which PMDK-style systems cannot do.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>

#include "src/libpuddles/fault_router.h"
#include "src/libpuddles/libpuddles.h"
#include "src/pmem/flush.h"
#include "src/pmem/mapped_file.h"

namespace puddles {

struct RelocNode {
  RelocNode* next;
  uint64_t value;
};

struct RelocHead {
  RelocNode* head;
  RelocNode* tail;
  uint64_t count;
};

namespace {

namespace fs = std::filesystem;

void RegisterTypes() {
  static bool done = [] {
    (void)TypeRegistry::Instance().Register<RelocNode>({offsetof(RelocNode, next)});
    (void)TypeRegistry::Instance().Register<RelocHead>(&RelocHead::head,
                                                       &RelocHead::tail);
    return true;
  }();
  (void)done;
}

class RelocationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RegisterTypes();
    base_ = fs::temp_directory_path() /
            ("reloc_test_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(base_);
    fs::create_directories(base_);
    auto daemon = puddled::Daemon::Start({.root_dir = (base_ / "root").string()});
    ASSERT_TRUE(daemon.ok()) << daemon.status().ToString();
    daemon_ = std::move(*daemon);
    auto runtime =
        Runtime::Create(std::make_shared<puddled::EmbeddedDaemonClient>(daemon_.get()));
    ASSERT_TRUE(runtime.ok());
    runtime_ = std::move(*runtime);
  }

  void TearDown() override {
    runtime_.reset();
    daemon_.reset();
    fs::remove_all(base_);
  }

  // Builds a linked list of `n` nodes in a new pool and returns the pool.
  Pool* BuildListPool(const std::string& name, uint64_t n) {
    auto pool = runtime_->CreatePool(name);
    EXPECT_TRUE(pool.ok());
    Pool& p = **pool;
    EXPECT_TRUE(p.Run([&](Tx& tx) -> puddles::Status {
      ASSIGN_OR_RETURN(RelocHead * head, tx.Alloc<RelocHead>());
      head->head = nullptr;
      head->tail = nullptr;
      head->count = 0;
      return p.SetRoot(head);
    }).ok());
    for (uint64_t i = 0; i < n; ++i) {
      EXPECT_TRUE(p.Run([&](Tx& tx) -> puddles::Status {
        ASSIGN_OR_RETURN(RelocHead * head, p.Root<RelocHead>());
        ASSIGN_OR_RETURN(RelocNode * node, tx.Alloc<RelocNode>());
        node->value = i;
        node->next = nullptr;
        RETURN_IF_ERROR(tx.Log(head));
        if (head->tail == nullptr) {
          head->head = node;
        } else {
          RETURN_IF_ERROR(tx.LogField(head->tail, &RelocNode::next));
          head->tail->next = node;
        }
        head->tail = node;
        head->count++;
        return OkStatus();
      }).ok()) << i;
    }
    return &p;
  }

  static uint64_t SumList(Pool& pool) {
    RelocHead* head = *pool.Root<RelocHead>();
    uint64_t sum = 0;
    for (RelocNode* node = head->head; node != nullptr; node = node->next) {
      sum += node->value;
    }
    return sum;
  }

  fs::path base_;
  std::unique_ptr<puddled::Daemon> daemon_;
  std::unique_ptr<Runtime> runtime_;
};

TEST_F(RelocationTest, ExportProducesManifestAndFiles) {
  BuildListPool("source", 50);
  ASSERT_TRUE(runtime_->ExportPool("source", (base_ / "export").string()).ok());
  EXPECT_TRUE(fs::exists(base_ / "export" / "manifest.bin"));
  size_t puddle_files = 0;
  for (const auto& entry : fs::directory_iterator(base_ / "export")) {
    if (entry.path().extension() == ".pud") {
      ++puddle_files;
    }
  }
  EXPECT_GE(puddle_files, 2u) << "meta puddle + at least one data puddle";
}

TEST_F(RelocationTest, ImportedCopyConflictsAndRelocates) {
  Pool* source = BuildListPool("source", 100);
  const uint64_t expected = SumList(*source);

  ASSERT_TRUE(runtime_->ExportPool("source", (base_ / "export").string()).ok());

  // Importing into the same daemon: every original address is still claimed,
  // so the copy must relocate (the paper's clone-and-open-both scenario).
  auto import = runtime_->client().ImportPool((base_ / "export").string(), "copy");
  ASSERT_TRUE(import.ok()) << import.status().ToString();
  EXPECT_GT(import->members_relocated, 0u) << "copies must conflict with originals";

  auto copy = runtime_->OpenPool("copy");
  ASSERT_TRUE(copy.ok()) << copy.status().ToString();

  // Both copies are simultaneously traversable with native pointers.
  EXPECT_EQ(SumList(*source), expected);
  EXPECT_EQ(SumList(**copy), expected);

  // And they are genuinely different memory.
  RelocNode* source_head = (*source->Root<RelocHead>())->head;
  RelocNode* copy_head = (*(*copy)->Root<RelocHead>())->head;
  EXPECT_NE(source_head, copy_head);

  // Writes to the copy do not bleed into the source.
  ASSERT_TRUE((*copy)->Run([&](Tx& tx) -> puddles::Status {
    RETURN_IF_ERROR(tx.LogField(copy_head, &RelocNode::value));
    copy_head->value += 5000;
    return OkStatus();
  }).ok());
  EXPECT_EQ(SumList(**copy), expected + 5000);
  EXPECT_EQ(SumList(*source), expected);

  auto stats = runtime_->stats();
  EXPECT_GT(stats.pointers_rewritten, 0u) << "relocation must have rewritten pointers";
}

TEST_F(RelocationTest, ThreeCopiesOpenSimultaneously) {
  Pool* source = BuildListPool("source", 40);
  const uint64_t expected = SumList(*source);
  ASSERT_TRUE(runtime_->ExportPool("source", (base_ / "export").string()).ok());

  auto copy1 = runtime_->ImportPool((base_ / "export").string(), "copy1");
  auto copy2 = runtime_->ImportPool((base_ / "export").string(), "copy2");
  ASSERT_TRUE(copy1.ok());
  ASSERT_TRUE(copy2.ok());
  EXPECT_EQ(SumList(*source), expected);
  EXPECT_EQ(SumList(**copy1), expected);
  EXPECT_EQ(SumList(**copy2), expected);
}

TEST_F(RelocationTest, ImportIntoFreshSpaceNeedsNoRewrite) {
  // Exported to disk, original deleted (daemon restarted on a fresh root):
  // the old addresses are free, so the import keeps them — the "common case"
  // fast path of §4.2.
  BuildListPool("source", 30);
  ASSERT_TRUE(runtime_->ExportPool("source", (base_ / "export").string()).ok());
  runtime_.reset();
  daemon_.reset();

  auto daemon = puddled::Daemon::Start({.root_dir = (base_ / "root2").string()});
  ASSERT_TRUE(daemon.ok());
  daemon_ = std::move(*daemon);
  auto runtime =
      Runtime::Create(std::make_shared<puddled::EmbeddedDaemonClient>(daemon_.get()));
  ASSERT_TRUE(runtime.ok());
  runtime_ = std::move(*runtime);

  auto import = runtime_->client().ImportPool((base_ / "export").string(), "migrated");
  ASSERT_TRUE(import.ok());
  EXPECT_EQ(import->members_relocated, 0u) << "no conflicts in an empty space";

  auto pool = runtime_->OpenPool("migrated");
  ASSERT_TRUE(pool.ok());
  uint64_t expected = 0;
  for (uint64_t i = 0; i < 30; ++i) {
    expected += i;
  }
  EXPECT_EQ(SumList(**pool), expected);
}

TEST_F(RelocationTest, MultiPuddleListRelocatesOnDemand) {
  // A list large enough to span puddles: importing a conflicting copy forces
  // relocation; traversal then faults in and rewrites each puddle on demand
  // (the §4.2 cascade).
  constexpr uint64_t kNodes = 90000;  // 90k * 32 B slots overflows one 2 MiB puddle.
  Pool* source = BuildListPool("source", kNodes);
  ASSERT_GT(source->member_count(), 1u) << "test needs a multi-puddle pool";
  const uint64_t expected = SumList(*source);

  ASSERT_TRUE(runtime_->ExportPool("source", (base_ / "export").string()).ok());
  auto before = FaultRouter::Instance().stats();
  auto copy = runtime_->ImportPool((base_ / "export").string(), "copy");
  ASSERT_TRUE(copy.ok()) << copy.status().ToString();

  EXPECT_EQ(SumList(**copy), expected);
  auto after = FaultRouter::Instance().stats();
  EXPECT_GT(after.faults_handled, before.faults_handled)
      << "traversal must fault-map the non-root puddles on demand";
  EXPECT_EQ(SumList(*source), expected) << "original undisturbed";
}

TEST_F(RelocationTest, StaleExportedFrontierStillRewritesIdentityImports) {
  // An export taken from a puddle whose CompleteRewrite tore between its two
  // fences carries (flag clear, frontier = count) — harmless at home, but a
  // member imported WITHOUT a base conflict is armed for rewrite by the
  // identity branch of Daemon::ImportPool, and resuming from the stale
  // frontier there would skip the whole rewrite and leave its inter-member
  // pointers targeting the source pool's memory.
  constexpr uint64_t kNodes = 90000;  // Multi-puddle pool: mixed-conflict import.
  Pool* source = BuildListPool("source", kNodes);
  ASSERT_GT(source->member_count(), 1u);
  const uint64_t expected = SumList(*source);
  ASSERT_TRUE(runtime_->ExportPool("source", (base_ / "export").string()).ok());

  // To get a MIXED import (some identity, some conflicting) the freed holes
  // must not be re-captured by first-fit relocation of earlier-imported
  // members: free the meta puddle and every data member except the LAST —
  // imports claim bases in manifest order, so all identity claims land
  // before the surviving member forces a relocation.
  std::vector<Uuid> victims;  // Source members to delete, in base order.
  victims.push_back(source->info().meta_puddle);
  std::vector<Uuid> data_members;
  for (Runtime::Entry* entry : runtime_->Entries()) {  // Base-ordered.
    if (entry->info.pool_uuid == source->info().pool_uuid &&
        entry->info.kind == static_cast<uint32_t>(PuddleKind::kData)) {
      data_members.push_back(entry->info.uuid);
    }
  }
  ASSERT_GT(data_members.size(), 1u);
  victims.insert(victims.end(), data_members.begin(), data_members.end() - 1);

  // Plant the torn-completion header state in every exported data member.
  for (const auto& dirent : fs::directory_iterator(base_ / "export")) {
    if (dirent.path().extension() != ".pud") {
      continue;
    }
    auto file = pmem::PmemFile::Open(dirent.path().string());
    ASSERT_TRUE(file.ok());
    auto mapped = file->Map();
    ASSERT_TRUE(mapped.ok());
    auto puddle = Puddle::Attach(*mapped, file->size());
    ASSERT_TRUE(puddle.ok());
    if (puddle->kind() == PuddleKind::kData) {
      puddle->header()->rewrite_frontier = 1'000'000;
      pmem::FlushFence(puddle->header(), sizeof(PuddleHeader));
    }
  }

  // Reboot so the victim's range is genuinely free to claim, then delete it:
  // the import now sees one conflict-free (identity) member among conflicts.
  runtime_.reset();
  daemon_.reset();
  auto daemon = puddled::Daemon::Start({.root_dir = (base_ / "root").string()});
  ASSERT_TRUE(daemon.ok()) << daemon.status().ToString();
  daemon_ = std::move(*daemon);
  auto runtime =
      Runtime::Create(std::make_shared<puddled::EmbeddedDaemonClient>(daemon_.get()));
  ASSERT_TRUE(runtime.ok());
  runtime_ = std::move(*runtime);
  for (const Uuid& victim : victims) {
    ASSERT_TRUE(runtime_->client().DeletePuddle(victim).ok());
  }

  auto import = runtime_->client().ImportPool((base_ / "export").string(), "copy");
  ASSERT_TRUE(import.ok()) << import.status().ToString();
  EXPECT_GT(import->members_relocated, 0u);
  EXPECT_LT(import->members_relocated, import->members_imported)
      << "test needs at least one identity (conflict-free) data member";

  auto copy = runtime_->OpenPool("copy");
  ASSERT_TRUE(copy.ok()) << copy.status().ToString();
  EXPECT_EQ(SumList(**copy), expected);
  // Every recovered pointer must resolve inside the copy — a stale pointer
  // surviving the skipped rewrite would land in a source member instead.
  RelocHead* head = *(*copy)->Root<RelocHead>();
  uint64_t checked = 0;
  for (RelocNode* node = head->head; node != nullptr; node = node->next) {
    Runtime::Entry* entry =
        runtime_->FindEntryByAddr(reinterpret_cast<uintptr_t>(node));
    ASSERT_NE(entry, nullptr);
    ASSERT_EQ(entry->info.pool_uuid, (*copy)->info().pool_uuid)
        << "node " << checked << " still points into the source pool";
    ++checked;
  }
  EXPECT_EQ(checked, kNodes);
}

TEST_F(RelocationTest, RewriteStatsCountPointers) {
  // Direct unit-level check of the rewrite pass over a relocated puddle.
  Pool* source = BuildListPool("source", 64);
  ASSERT_TRUE(runtime_->ExportPool("source", (base_ / "export").string()).ok());
  auto import = runtime_->client().ImportPool((base_ / "export").string(), "copy");
  ASSERT_TRUE(import.ok());
  auto before = runtime_->stats();
  auto copy = runtime_->OpenPool("copy");
  ASSERT_TRUE(copy.ok());
  SumList(**copy);
  auto stats = runtime_->stats();
  // 64 nodes (1 pointer each; tail's next is null) + head object (2 pointers).
  EXPECT_GE(stats.pointers_rewritten - before.pointers_rewritten, 64u);
}

}  // namespace
}  // namespace puddles
