#include "src/common/checksum.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace puddles {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // Standard CRC-32C test vectors.
  EXPECT_EQ(Crc32c("", 0), 0x00000000u);
  EXPECT_EQ(Crc32c("123456789", 9), 0xe3069283u);
  // 32 zero bytes (RFC 3720 test vector).
  std::vector<uint8_t> zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8a9136aau);
  // 32 0xff bytes.
  std::vector<uint8_t> ones(32, 0xff);
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62a8ab43u);
}

TEST(Crc32cTest, IncrementalMatchesOneShot) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t one_shot = Crc32c(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t first = Crc32c(data.data(), split);
    uint32_t combined = Crc32c(data.data() + split, data.size() - split, first);
    EXPECT_EQ(combined, one_shot) << "split at " << split;
  }
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::vector<uint8_t> data(256);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 7 + 3);
  }
  const uint32_t clean = Crc32c(data.data(), data.size());
  for (size_t byte = 0; byte < data.size(); byte += 17) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_NE(Crc32c(data.data(), data.size()), clean)
          << "undetected flip at byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<uint8_t>(1u << bit);
    }
  }
}

TEST(Crc32cTest, UnalignedInputsAgree) {
  std::vector<uint8_t> buffer(300);
  for (size_t i = 0; i < buffer.size(); ++i) {
    buffer[i] = static_cast<uint8_t>(i);
  }
  // Checksumming the same bytes from differently aligned copies must agree.
  uint32_t expected = Crc32c(buffer.data() + 1, 256);
  std::vector<uint8_t> copy(buffer.begin() + 1, buffer.begin() + 257);
  EXPECT_EQ(Crc32c(copy.data(), 256), expected);
}

TEST(Fnv1a64Test, KnownVectors) {
  EXPECT_EQ(Fnv1a64("", 0), kFnv64OffsetBasis);
  EXPECT_EQ(Fnv1a64("a", 1), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a64("foobar", 6), 0x85944171f73967e8ULL);
}

TEST(Fnv1a64Test, ConstexprUsable) {
  constexpr uint64_t h = Fnv1a64("puddles", 7);
  static_assert(h != 0, "compile-time FNV must work");
  EXPECT_EQ(h, Fnv1a64(static_cast<const void*>("puddles"), 7));
}

TEST(Fnv1a64Test, DifferentStringsDiffer) {
  EXPECT_NE(Fnv1a64("node_t", 6), Fnv1a64("node_u", 6));
  EXPECT_NE(Fnv1a64("a", 1), Fnv1a64("b", 1));
}

}  // namespace
}  // namespace puddles
