// Quickstart: create a pool, build a persistent linked list in transactions,
// crash nothing, reopen, and read it back — the typed transaction-context
// programming model (DESIGN.md §9) end to end over an embedded Puddled.
//
// Run: ./quickstart [workdir]   (state persists across runs; rerun to see
// the list grow from the previous run's data.)
#include <cstdio>
#include <filesystem>

#include "src/libpuddles/libpuddles.h"

// A persistent type with pointers: register a pointer map so the system can
// relocate it (§4.2).
struct TodoItem {
  TodoItem* next;
  uint64_t id;
  char text[48];
};

struct TodoList {
  TodoItem* head;
  uint64_t count;
};

int main(int argc, char** argv) {
  std::filesystem::path workdir = argc > 1 ? argv[1] : "/tmp/puddles_quickstart";

  // 1. Pointer maps: one declarative registration per persistent type. The
  //    offsets come from the member pointers themselves — there is no
  //    hand-written offsetof list to drift when the struct changes, and a
  //    non-pointer member would fail to compile.
  PUDDLES_TYPE(TodoItem, &TodoItem::next);
  PUDDLES_TYPE(TodoList, &TodoList::head);

  // 2. Start (or reattach to) the system: daemon + runtime. The daemon runs
  //    recovery for any interrupted transactions *before* we can touch data.
  auto daemon = puddled::Daemon::Start({.root_dir = (workdir / "puddled").string()});
  if (!daemon.ok()) {
    std::fprintf(stderr, "daemon: %s\n", daemon.status().ToString().c_str());
    return 1;
  }
  auto runtime = puddles::Runtime::Create(
      std::make_shared<puddled::EmbeddedDaemonClient>(daemon->get()));

  // 3. Open or create the pool.
  auto pool_result = (*runtime)->OpenPool("todos");
  if (!pool_result.ok()) {
    pool_result = (*runtime)->CreatePool("todos");
  }
  puddles::Pool& pool = **pool_result;

  // 4. Find or create the root object. `pool.Run` hands the callback an
  //    explicit transaction context; returning OkStatus() commits, returning
  //    an error (or throwing) rolls back.
  TodoList* list = nullptr;
  if (auto root = pool.Root<TodoList>(); root.ok()) {
    list = *root;
    std::printf("reopened pool: %llu existing items\n",
                static_cast<unsigned long long>(list->count));
  } else {
    auto created = pool.Run([&](puddles::Tx& tx) -> puddles::Status {
      ASSIGN_OR_RETURN(list, tx.Alloc<TodoList>());
      list->head = nullptr;
      list->count = 0;
      return pool.SetRoot(list);
    });
    if (!created.ok()) {
      std::fprintf(stderr, "init: %s\n", created.ToString().c_str());
      return 1;
    }
    std::printf("created a fresh pool\n");
  }

  // 5. Append three items failure-atomically. Native pointers, typed
  //    logging: undo-log what you modify (tx.Log), write normally.
  for (int i = 0; i < 3; ++i) {
    auto appended = pool.Run([&](puddles::Tx& tx) -> puddles::Status {
      ASSIGN_OR_RETURN(TodoItem * item, tx.Alloc<TodoItem>());
      item->id = list->count;
      std::snprintf(item->text, sizeof(item->text), "todo #%llu",
                    static_cast<unsigned long long>(list->count));
      RETURN_IF_ERROR(tx.Log(list));
      item->next = list->head;
      list->head = item;
      list->count++;
      return puddles::OkStatus();
    });
    if (!appended.ok()) {
      std::fprintf(stderr, "append: %s\n", appended.ToString().c_str());
      return 1;
    }
  }

  // 6. Plain pointer traversal — no smart-pointer decoding, any code that
  //    understands the struct can walk this.
  std::printf("list contents (%llu items):\n",
              static_cast<unsigned long long>(list->count));
  for (TodoItem* item = list->head; item != nullptr; item = item->next) {
    std::printf("  [%llu] %s\n", static_cast<unsigned long long>(item->id), item->text);
  }
  std::printf("\nrun again to see the data persist; delete %s to reset.\n",
              workdir.c_str());
  return 0;
}
