// The Fig. 3 scenario: a database application writes an event log on PM while
// a *separate, read-only* log-reader process consumes it — both talking to
// one Puddled over the UNIX domain socket. The reader has no write capability
// (kernel-enforced O_RDONLY fd from the daemon), yet crash recovery of the
// writer's data never depends on either application (§3.3).
#include <cstdio>
#include <filesystem>

#include "src/daemon/server.h"
#include "src/libpuddles/libpuddles.h"

struct EventRecord {
  uint64_t sequence;
  char message[56];
};

struct EventLog {
  uint64_t num_events;
  EventRecord events[1];  // Allocated with capacity.
};

int main() {
  std::filesystem::path workdir = "/tmp/puddles_logreader_demo";
  std::filesystem::remove_all(workdir);
  const std::string socket_path = (workdir / "puddled.sock").string();
  std::filesystem::create_directories(workdir);

  // --- The system service (normally a standalone process: tools/puddled) ---
  auto daemon = puddled::Daemon::Start({.root_dir = (workdir / "root").string()});
  auto server = puddled::Server::Start(daemon->get(), socket_path);

  PUDDLES_TYPE(EventLog);  // Leaf type: no embedded pointers.

  // --- Writer application: connects over the socket, owns the data ---
  {
    auto client = puddled::SocketDaemonClient::Connect(socket_path);
    auto runtime = puddles::Runtime::Create(std::move(*client));
    auto pool = *(*runtime)->CreatePool("events", /*mode=*/0644);

    constexpr uint64_t kCapacity = 64;
    EventLog* log = nullptr;
    (void)pool->Run([&](puddles::Tx& tx) -> puddles::Status {
      ASSIGN_OR_RETURN(void* raw,
                       tx.AllocBytes(sizeof(EventLog) + kCapacity * sizeof(EventRecord),
                                     puddles::kRawBytesTypeId));
      log = static_cast<EventLog*>(raw);
      log->num_events = 0;
      return pool->SetRootBytes(log);
    });

    for (int i = 0; i < 5; ++i) {
      (void)pool->Run([&](puddles::Tx& tx) -> puddles::Status {
        RETURN_IF_ERROR(tx.LogRange(log, sizeof(EventLog)));
        EventRecord& record = log->events[log->num_events];
        RETURN_IF_ERROR(tx.LogRange(&record, sizeof(record)));
        record.sequence = log->num_events;
        std::snprintf(record.message, sizeof(record.message), "database event %d", i);
        log->num_events++;
        return puddles::OkStatus();
      });
    }
    std::printf("writer: appended %llu events, exiting\n",
                static_cast<unsigned long long>(log->num_events));
    // Writer process "exits" here — runtime torn down.
  }

  // --- Log reader: a different application with READ-ONLY access ---
  {
    auto client = puddled::SocketDaemonClient::Connect(socket_path);
    auto runtime = puddles::Runtime::Create(std::move(*client));
    auto pool = (*runtime)->OpenPool("events", /*writable=*/false);
    if (!pool.ok()) {
      std::fprintf(stderr, "reader open failed: %s\n", pool.status().ToString().c_str());
      return 1;
    }
    auto root = (*pool)->RootBytes();
    const auto* log = static_cast<const EventLog*>(*root);
    std::printf("reader (read-only): %llu events\n",
                static_cast<unsigned long long>(log->num_events));
    for (uint64_t i = 0; i < log->num_events; ++i) {
      std::printf("  #%llu: %s\n", static_cast<unsigned long long>(log->events[i].sequence),
                  log->events[i].message);
    }
    // Writes are rejected at the API...
    bool write_refused = !(*pool)->MallocBytes(8, puddles::kRawBytesTypeId).ok();
    std::printf("reader write attempt refused: %s\n", write_refused ? "yes" : "NO (bug!)");
  }

  server->get()->Stop();
  return 0;
}
