// Sensor-network aggregation demo (paper §5.3, Fig. 13): the headline
// location-independence use case. A home node exports a pointer-rich state
// structure; independent sensor nodes (isolated puddle spaces) import, mutate,
// and re-export it; the home node then imports every copy simultaneously —
// address conflicts are resolved by on-demand pointer rewriting — and
// aggregates in place, with zero serialization.
#include <cstdio>
#include <filesystem>

#include "src/libpuddles/libpuddles.h"

struct Reading {
  Reading* next;
  uint64_t sensor_value;
};

struct SensorState {
  Reading* readings;
  uint64_t num_readings;
};

namespace fs = std::filesystem;

namespace {

void RegisterTypes() {
  PUDDLES_TYPE(Reading, &Reading::next);
  PUDDLES_TYPE(SensorState, &SensorState::readings);
}

struct Node {
  std::unique_ptr<puddled::Daemon> daemon;
  std::unique_ptr<puddles::Runtime> runtime;

  explicit Node(const fs::path& root) {
    daemon = std::move(*puddled::Daemon::Start({.root_dir = root.string()}));
    runtime = std::move(*puddles::Runtime::Create(
        std::make_shared<puddled::EmbeddedDaemonClient>(daemon.get())));
  }
};

}  // namespace

int main(int argc, char** argv) {
  const int kNodes = argc > 1 ? std::atoi(argv[1]) : 5;
  const uint64_t kVars = 8;
  fs::path workdir = "/tmp/puddles_sensor_demo";
  fs::remove_all(workdir);
  RegisterTypes();

  // --- Home node publishes the initial state ---
  std::printf("home: building initial state (%llu variables)\n",
              static_cast<unsigned long long>(kVars));
  {
    Node home(workdir / "home");
    auto pool = *home.runtime->CreatePool("state");
    (void)pool->Run([&](puddles::Tx& tx) -> puddles::Status {
      ASSIGN_OR_RETURN(SensorState * state, tx.Alloc<SensorState>());
      state->readings = nullptr;
      state->num_readings = 0;
      for (uint64_t i = 0; i < kVars; ++i) {
        ASSIGN_OR_RETURN(Reading * reading, tx.Alloc<Reading>());
        reading->sensor_value = 0;
        reading->next = state->readings;
        state->readings = reading;
        state->num_readings++;
      }
      return pool->SetRoot(state);
    });
    (void)home.runtime->ExportPool("state", (workdir / "distribute").string());
  }

  // --- Each sensor node imports, mutates, exports (isolated spaces) ---
  for (int n = 0; n < kNodes; ++n) {
    Node sensor(workdir / ("node" + std::to_string(n)));
    auto pool = *sensor.runtime->ImportPool((workdir / "distribute").string(), "state");
    SensorState* state = *pool->Root<SensorState>();
    (void)pool->Run([&](puddles::Tx& tx) -> puddles::Status {
      for (Reading* r = state->readings; r != nullptr; r = r->next) {
        RETURN_IF_ERROR(tx.LogField(r, &Reading::sensor_value));
        r->sensor_value += static_cast<uint64_t>(n + 1);  // This node's "measurement".
      }
      return puddles::OkStatus();
    });
    (void)sensor.runtime->ExportPool("state",
                                     (workdir / ("upload" + std::to_string(n))).string());
    std::printf("node %d: measured and uploaded\n", n);
  }

  // --- Home node aggregates all copies, open simultaneously ---
  Node home(workdir / "home_agg");
  uint64_t total = 0;
  std::vector<puddles::Pool*> copies;
  for (int n = 0; n < kNodes; ++n) {
    auto pool = home.runtime->ImportPool((workdir / ("upload" + std::to_string(n))).string(),
                                         "copy" + std::to_string(n));
    if (!pool.ok()) {
      std::fprintf(stderr, "import %d failed: %s\n", n, pool.status().ToString().c_str());
      return 1;
    }
    copies.push_back(*pool);
  }
  std::printf("home: %d copies imported and mapped **simultaneously**\n", kNodes);
  for (puddles::Pool* copy : copies) {
    SensorState* state = *copy->Root<SensorState>();
    for (Reading* r = state->readings; r != nullptr; r = r->next) {
      total += r->sensor_value;  // Plain pointers; rewritten on demand.
    }
  }

  uint64_t expected = 0;
  for (int n = 1; n <= kNodes; ++n) {
    expected += static_cast<uint64_t>(n) * kVars;
  }
  auto stats = home.runtime->stats();
  std::printf("aggregate = %llu (expected %llu)  |  puddles relocated: %llu, "
              "pointers rewritten: %llu\n",
              static_cast<unsigned long long>(total),
              static_cast<unsigned long long>(expected),
              static_cast<unsigned long long>(stats.rewrites),
              static_cast<unsigned long long>(stats.pointers_rewritten));
  return total == expected ? 0 : 1;
}
