// KV-store example: the Fig. 11 workload as an application — load a keyspace
// into the Puddles-backed KV store and run a YCSB mix against it, printing
// throughput. Usage: ./kvstore_ycsb [A-G] [records] [ops]
#include <cstdio>
#include <filesystem>

#include "src/libpuddles/libpuddles.h"
#include "src/workloads/adapters.h"
#include "src/workloads/kvstore.h"
#include "src/workloads/ycsb.h"

int main(int argc, char** argv) {
  const char workload_char = argc > 1 ? argv[1][0] : 'A';
  const uint64_t records = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20000;
  const uint64_t ops = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 50000;

  std::filesystem::path workdir = "/tmp/puddles_kv_demo";
  std::filesystem::remove_all(workdir);

  auto daemon = puddled::Daemon::Start({.root_dir = (workdir / "puddled").string()});
  auto runtime = puddles::Runtime::Create(
      std::make_shared<puddled::EmbeddedDaemonClient>(daemon->get()));
  auto pool = *(*runtime)->CreatePool("kv");

  using Adapter = workloads::PuddlesAdapter;
  workloads::KvStore<Adapter>::RegisterTypes();
  workloads::KvStore<Adapter> kv{Adapter(pool)};
  if (!kv.Init().ok()) {
    return 1;
  }

  std::printf("loading %llu records...\n", static_cast<unsigned long long>(records));
  char value[workloads::kKvValueSize] = {};
  for (uint64_t i = 0; i < records; ++i) {
    std::snprintf(value, sizeof(value), "value-%llu", static_cast<unsigned long long>(i));
    (void)kv.Put(workloads::YcsbStream::KeyFor(i), value);
  }

  std::printf("running YCSB-%c, %llu ops...\n", workload_char,
              static_cast<unsigned long long>(ops));
  workloads::YcsbStream stream(static_cast<workloads::YcsbWorkload>(workload_char), records,
                               42);
  char out[workloads::kKvValueSize];
  uint64_t hits = 0;
  auto start = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < ops; ++i) {
    auto request = stream.Next();
    const std::string key = workloads::YcsbStream::KeyFor(request.key_index);
    switch (request.op) {
      case workloads::YcsbOp::kRead:
        hits += kv.Get(key, out) ? 1 : 0;
        break;
      case workloads::YcsbOp::kUpdate:
      case workloads::YcsbOp::kInsert:
        (void)kv.Put(key, value);
        break;
      case workloads::YcsbOp::kScan:
        hits += kv.Scan(key, request.scan_length) > 0 ? 1 : 0;
        break;
      case workloads::YcsbOp::kReadModifyWrite:
        if (kv.Get(key, out)) {
          out[0] ^= 1;
          (void)kv.Put(key, out);
          ++hits;
        }
        break;
    }
  }
  double seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                       .count();
  std::printf("done: %.0f ops/s (%llu key hits, store size %llu)\n",
              static_cast<double>(ops) / seconds, static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(kv.size()));
  return 0;
}
