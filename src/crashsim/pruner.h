// Crash-state equivalence-class pruning over the persistence graph
// (DESIGN.md §12).
//
// Two crash states are equivalent when recovery provably cannot distinguish
// them: every byte a post-crash read can observe is identical. The classifier
// computes, per CrashStateSpec, a signature of the *projected post-recovery
// image* restricted to recovery-relevant bytes:
//
//   1. Maintain the fence-boundary durable image for the spec's crash epoch
//      (incremental: per-line last-retired write over the trace-start
//      baseline, honoring per-thread fence retirement).
//   2. Patch in the spec's surviving in-flight lines — via the exact same
//      MaterializeInFlight walk the harness uses to build the on-disk image,
//      so model and materializer cannot diverge.
//   3. Model recovery's log replay on the patched image with the production
//      on-PM parsers (Puddle / LogSpaceView / LogRegion::ForEachEntry) and
//      the exact ReplayLogChain semantics: head region's sequence range
//      governs the chain, torn entries fail their generation-bound checksums,
//      undo entries apply newest-first then redo oldest-first.
//   4. Hash every non-excluded line of the result. Excluded lines are log
//      puddle heaps: recovery's own post-replay writes (range flips, resets)
//      land there, and no application read ever observes them afterwards —
//      the runtime only creates fresh logs after a restart.
//
// Equal signatures ⇒ byte-identical recovery-relevant images ⇒ identical
// recovery outcome, so the harness explores one representative per class.
// Anything the model cannot prove — a valid entry targeting untraced or
// log-heap bytes, a chain linking outside the traced set, cross-chain target
// overlap (replay-order dependence), an unparseable log space — degrades to a
// unique signature: the state is always explored. Pruning can only skip work,
// never verification coverage.
#ifndef SRC_CRASHSIM_PRUNER_H_
#define SRC_CRASHSIM_PRUNER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/crashsim/persistence_graph.h"
#include "src/crashsim/state_enumerator.h"
#include "src/crashsim/trace.h"

namespace crashsim {

enum class PruneMode : uint8_t {
  kNone = 0,   // Brute force: explore every enumerated state.
  kGraph = 1,  // Explore one representative per equivalence class.
};

struct ClassSignature {
  uint64_t a = 0;
  uint64_t b = 0;
  // Conservative fallback: the model could not prove equivalence bounds for
  // this state, so it never merges with anything.
  bool unique = false;

  friend bool operator==(const ClassSignature&, const ClassSignature&) = default;
  friend auto operator<=>(const ClassSignature&, const ClassSignature&) = default;
};

struct PruneStats {
  uint64_t classified = 0;
  uint64_t fallback_unique = 0;   // States given conservative unique signatures.
  uint64_t chains_modeled = 0;    // Log chains parsed + replayed in the model.
  uint64_t entries_modeled = 0;   // Valid log entries applied in the model.
};

// Classifies crash states of one trace. Specs must be presented in
// non-decreasing epoch order (EnumerateCrashStates emits them that way); the
// trace and graph must outlive the classifier.
class StateClassifier {
 public:
  static puddles::Result<std::unique_ptr<StateClassifier>> Create(
      const Trace& trace, const PersistenceGraph& graph);

  puddles::Result<ClassSignature> Classify(const CrashStateSpec& spec);

  const PruneStats& stats() const { return stats_; }

 private:
  StateClassifier(const Trace& trace, const PersistenceGraph& graph);

  void AdvanceBoundary(uint64_t epoch);
  void SnapshotLinesForWrite(uint32_t region, uint64_t offset, uint64_t size);
  void PatchWrite(uint32_t region, uint64_t offset, const uint8_t* data, size_t size);
  // Models recovery's replay of every traced log chain on image_. Returns
  // false when a conservative fallback is required.
  bool ModelReplay();
  ClassSignature SignatureFromTouched();
  void RevertTouched();

  const Trace& trace_;
  const PersistenceGraph& graph_;
  RetirementIndex retirement_;
  PruneStats stats_;

  // Boundary image for cur_epoch_ (starts at the baseline for epoch 0).
  std::vector<std::vector<uint8_t>> image_;
  uint64_t cur_epoch_ = 0;
  // Per touched line (parallel to graph_.TouchedLines()): index of the
  // timeline write currently applied to image_; -1 = baseline content.
  std::vector<int64_t> last_applied_;
  // Running signature of the boundary image over non-excluded lines
  // (commutative wrapping sums of per-line hashes, so single-line updates are
  // O(1)).
  uint64_t raw_a_ = 0;
  uint64_t raw_b_ = 0;

  // Traced log-chain topology (from baseline headers; log puddle header pages
  // are never rewritten while traced).
  std::vector<uint32_t> logspace_regions_;
  std::vector<std::pair<puddles::Uuid, uint32_t>> log_regions_;  // uuid -> region.

  // Per-spec scratch: first-touch line snapshots of boundary content.
  struct TouchedLine {
    uint32_t region;
    uint64_t offset;
    std::vector<uint8_t> saved;
  };
  std::vector<TouchedLine> touched_;
  std::vector<std::pair<uint32_t, uint64_t>> touched_keys_;  // Sorted membership.
  uint64_t unique_counter_ = 0;
};

}  // namespace crashsim

#endif  // SRC_CRASHSIM_PRUNER_H_
