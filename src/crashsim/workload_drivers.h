// Crashsim drivers for the repo's workloads: the linked list, B+-tree, and
// KV store from src/workloads (running on the full Puddles stack — daemon,
// runtime, pool, transactions) and the daemon's own PersistentHashMap
// (src/pmhash, which carries its own crash-consistency protocol).
//
// Each driver performs a deterministic seeded op sequence; op i's written
// values encode i, so distinct op-boundary states fingerprint distinctly and
// the harness membership oracle is sharp.
#ifndef SRC_CRASHSIM_WORKLOAD_DRIVERS_H_
#define SRC_CRASHSIM_WORKLOAD_DRIVERS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/crashsim/harness.h"

namespace crashsim {

struct DriverOptions {
  int ops = 24;
  uint64_t seed = 42;
  int preload = 8;  // Elements inserted before tracing starts (part of the baseline).
  // After each recovery + fingerprint, run one insert+erase probe transaction
  // to prove the recovered heap and logs are still usable, not just readable.
  bool probe_after_recovery = true;
};

// Supported names: "list", "btree", "kvstore", "pmhash".
std::unique_ptr<WorkloadDriver> MakeDriver(const std::string& name,
                                           const DriverOptions& options = {});
std::vector<std::string> DriverNames();

}  // namespace crashsim

#endif  // SRC_CRASHSIM_WORKLOAD_DRIVERS_H_
