// Crashsim drivers for the repo's workloads: the linked list, B+-tree,
// adaptive radix tree, and KV store from src/workloads (running on the full
// Puddles stack — daemon, runtime, pool, transactions; the ART driver's key
// mix walks every node promotion/demotion and prefix split inside the traced
// window, and fingerprints via the ordered scan), the daemon's own PersistentHashMap
// (src/pmhash, which carries its own crash-consistency protocol), and the
// pool import/relocation path (export → import-with-base-conflict → streaming
// pointer rewrite under the frontier/flag protocol, DESIGN.md §7).
//
// Each driver performs a deterministic seeded op sequence; op i's written
// values encode i, so distinct op-boundary states fingerprint distinctly and
// the harness membership oracle is sharp. The import driver instead mutates
// the *source* pool after exporting, so any stale (untranslated) pointer a
// recovered copy chases back into the source surfaces as a fingerprint
// mismatch rather than silently reading identical clone bytes.
#ifndef SRC_CRASHSIM_WORKLOAD_DRIVERS_H_
#define SRC_CRASHSIM_WORKLOAD_DRIVERS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/crashsim/harness.h"

namespace crashsim {

struct DriverOptions {
  // For the structure workloads: traced mutation count. For "import": the
  // node count of the exported list (the traced ops are one per imported
  // puddle; crash-state density comes from the rewrite batches within them).
  int ops = 24;
  uint64_t seed = 42;
  int preload = 8;  // Elements inserted before tracing starts (part of the baseline).
  // After each recovery + fingerprint, run one insert+erase probe transaction
  // to prove the recovered heap and logs are still usable, not just readable.
  bool probe_after_recovery = true;
  // "import" only: RewriteOptions::batch_objects for the traced rewrite.
  // Small batches persist the frontier often, widening the explored protocol
  // state space.
  uint32_t rewrite_batch_objects = 4;
};

// Supported names: "list", "btree", "art", "kvstore", "pmhash", "import",
// "mt" (three persistent worker threads stamping disjoint shard slices — the
// multi-threaded trace workload; its fingerprint validates per-thread
// invariants and normalizes, since concurrent commits have no single global
// op boundary).
std::unique_ptr<WorkloadDriver> MakeDriver(const std::string& name,
                                           const DriverOptions& options = {});
std::vector<std::string> DriverNames();

}  // namespace crashsim

#endif  // SRC_CRASHSIM_WORKLOAD_DRIVERS_H_
