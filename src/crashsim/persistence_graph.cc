#include "src/crashsim/persistence_graph.h"

#include <algorithm>
#include <cstring>
#include <map>

#include "src/common/align.h"
#include "src/puddles/format.h"

namespace crashsim {
namespace {

// Classifies one region by parsing its baseline image with the production
// puddle parser. A copy is parsed (not the live mapping): Puddle::Attach
// validates magic/version/geometry only, never base_addr, so it works on any
// byte-identical image.
RegionInfo ClassifyRegion(const std::vector<uint8_t>& baseline, size_t region_size) {
  RegionInfo info;
  if (baseline.size() < puddles::kPuddleHeaderPage || baseline.size() != region_size) {
    return info;  // kOpaque.
  }
  // Attach wants a mutable pointer but only reads during validation.
  auto attached = puddles::Puddle::Attach(const_cast<uint8_t*>(baseline.data()), region_size);
  if (!attached.ok()) {
    return info;  // kOpaque (no / foreign header — e.g. pmhash's raw file).
  }
  const puddles::PuddleHeader* header = attached->header();
  info.uuid = header->uuid;
  info.base_addr = header->base_addr;
  info.heap_offset = header->heap_offset;
  info.heap_size = header->heap_size;
  switch (header->kind) {
    case puddles::PuddleKind::kLog:
      info.role = RegionRole::kLogPuddle;
      break;
    case puddles::PuddleKind::kLogSpace:
      info.role = RegionRole::kLogSpacePuddle;
      break;
    default:
      info.role = RegionRole::kData;
      break;
  }
  return info;
}

}  // namespace

puddles::Result<PersistenceGraph> PersistenceGraph::Build(const Trace& trace) {
  if (trace.baseline.size() != trace.regions.size()) {
    return puddles::FailedPreconditionError(
        "persistence graph requires a recorded baseline (Trace::baseline)");
  }
  PersistenceGraph graph;
  graph.trace_ = &trace;
  graph.regions_.reserve(trace.regions.size());
  graph.region_sizes_.reserve(trace.regions.size());
  for (uint32_t i = 0; i < trace.regions.size(); ++i) {
    const TracedRegion& region = trace.regions[i];
    graph.regions_.push_back(ClassifyRegion(trace.baseline[i], region.size));
    graph.region_sizes_.push_back(region.size);
    const uint64_t lines =
        (region.size + puddles::kCacheLineSize - 1) / puddles::kCacheLineSize;
    graph.stats_.lines_total += lines;
    if (graph.regions_.back().role == RegionRole::kLogPuddle) {
      const RegionInfo& info = graph.regions_.back();
      graph.stats_.log_lines +=
          (info.heap_size + puddles::kCacheLineSize - 1) / puddles::kCacheLineSize;
    }
  }

  // Per-line write timelines. std::map gives the sorted (region, line) order
  // TouchedLines() promises.
  std::map<std::pair<uint32_t, uint64_t>, std::vector<LineWrite>> timelines;
  uint64_t seq = 0;
  for (uint64_t e = 0; e < trace.epochs.size(); ++e) {
    const Epoch& epoch = trace.epochs[e];
    const bool fenced = epoch.fencing_thread != Epoch::kNoFence;
    for (const FlushDelta& delta : epoch.deltas) {
      for (size_t off = 0; off < delta.bytes.size(); off += puddles::kCacheLineSize) {
        const size_t line = std::min(puddles::kCacheLineSize, delta.bytes.size() - off);
        LineWrite write;
        write.epoch = e;
        write.seq = seq++;
        write.thread = delta.thread;
        write.bytes = delta.bytes.data() + off;
        write.size = static_cast<uint32_t>(line);
        timelines[{delta.region, delta.offset + off}].push_back(write);
        ++graph.stats_.nodes;
        if (fenced) {
          ++graph.stats_.ordering_edges;
        }
      }
    }
    for (const DirtyLine& dirty : epoch.dirty_at_close) {
      LineWrite write;
      write.epoch = e;
      write.seq = seq++;
      write.dirty = true;
      write.bytes = dirty.live.data();
      write.size = static_cast<uint32_t>(dirty.live.size());
      timelines[{dirty.region, dirty.offset}].push_back(write);
      ++graph.stats_.nodes;
    }
  }
  graph.touched_lines_.reserve(timelines.size());
  graph.timelines_.reserve(timelines.size());
  for (auto& [key, timeline] : timelines) {
    graph.stats_.overwrite_edges += timeline.size() - 1;
    graph.touched_lines_.push_back(key);
    graph.timelines_.push_back(std::move(timeline));
  }
  graph.stats_.lines_touched = graph.touched_lines_.size();
  graph.stats_.lines_never_exercised = graph.stats_.lines_total - graph.stats_.lines_touched;
  return graph;
}

bool PersistenceGraph::IsLogHeapRange(uint32_t region, uint64_t offset, uint64_t size) const {
  if (region >= regions_.size() || regions_[region].role != RegionRole::kLogPuddle) {
    return false;
  }
  const RegionInfo& info = regions_[region];
  return offset < info.heap_offset + info.heap_size && offset + size > info.heap_offset;
}

const std::vector<LineWrite>* PersistenceGraph::Timeline(uint32_t region,
                                                         uint64_t line_offset) const {
  const std::pair<uint32_t, uint64_t> key{region, line_offset};
  auto it = std::lower_bound(touched_lines_.begin(), touched_lines_.end(), key);
  if (it == touched_lines_.end() || *it != key) {
    return nullptr;
  }
  return &timelines_[static_cast<size_t>(it - touched_lines_.begin())];
}

int32_t PersistenceGraph::RegionForAddr(uint64_t addr, uint32_t size) const {
  for (uint32_t i = 0; i < regions_.size(); ++i) {
    const RegionInfo& info = regions_[i];
    if (info.role == RegionRole::kOpaque || info.base_addr == 0) {
      continue;
    }
    const uint64_t span = region_sizes_[i];
    // Overflow-safe containment, same shape as RangeResolver.
    if (addr >= info.base_addr && size <= span && addr - info.base_addr <= span - size) {
      return static_cast<int32_t>(i);
    }
  }
  return -1;
}

}  // namespace crashsim
