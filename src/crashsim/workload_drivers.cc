#include "src/crashsim/workload_drivers.h"

#include <unistd.h>

#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>

#include "src/common/align.h"
#include "src/common/rng.h"
#include "src/libpuddles/libpuddles.h"
#include "src/pmem/global_space.h"
#include "src/pmem/mapped_file.h"
#include "src/pmhash/pmhash.h"
#include "src/workloads/adapters.h"
#include "src/workloads/art.h"
#include "src/workloads/btree.h"
#include "src/workloads/kvstore.h"
#include "src/workloads/list.h"

namespace crashsim {
namespace {

bool OkOrNotFound(const puddles::Status& status) {
  return status.ok() || status.code() == puddles::StatusCode::kNotFound;
}

// ---- Base for workloads running on the full Puddles stack ----
//
// Owns the daemon/runtime/pool lifecycle; subclasses own one data structure.
// The traced regions are every puddle the runtime has registered (data, pool
// meta, log space, thread log), so all persist traffic during ops lands in
// the trace.
class PoolCrashDriver : public WorkloadDriver {
 public:
  PoolCrashDriver(std::string name, const DriverOptions& options)
      : name_(std::move(name)), options_(options) {}

  std::string name() const override { return name_; }
  int num_ops() const override { return options_.ops; }

  puddles::Result<std::vector<TracedRegion>> Setup(const std::string& root) override {
    ASSIGN_OR_RETURN(auto daemon, puddled::Daemon::Start({.root_dir = root}));
    daemon_ = std::move(daemon);
    auto runtime = puddles::Runtime::Create(
        std::make_shared<puddled::EmbeddedDaemonClient>(daemon_.get()));
    if (!runtime.ok()) {
      Teardown();
      return runtime.status();
    }
    runtime_ = std::move(*runtime);
    auto pool = runtime_->CreatePool("crashsim");
    if (!pool.ok()) {
      Teardown();
      return pool.status();
    }
    pool_ = *pool;
    rng_ = puddles::Xoshiro256(options_.seed);
    puddles::Status init = InitStructure();
    if (!init.ok()) {
      Teardown();
      return init;
    }
    // Map every registered puddle now so all op-phase persists hit traced
    // regions (mapping is otherwise lazy, on first fault).
    std::vector<TracedRegion> regions;
    for (puddles::Runtime::Entry* entry : runtime_->Entries()) {
      auto mapped = runtime_->EnsureMapped(entry->info.uuid);
      if (!mapped.ok()) {
        Teardown();
        return mapped.status();
      }
    }
    for (puddles::Runtime::Entry* entry : runtime_->Entries()) {
      if (!entry->writable) {
        continue;
      }
      TracedRegion region;
      region.base = entry->info.base_addr;
      region.size = entry->info.file_size;
      region.file_path = daemon_->PuddlePath(entry->info.uuid);
      region.label = name_ + "/" + entry->info.uuid.ToString().substr(0, 8);
      regions.push_back(std::move(region));
    }
    traced_puddles_ = runtime_->Entries().size();
    return regions;
  }

  puddles::Status RunOp(int i) override {
    RETURN_IF_ERROR(DoOp(i));
    // A new puddle mid-run (pool/log growth) would persist outside the traced
    // regions and silently invalidate the enumerated images — fail loudly.
    if (runtime_->Entries().size() != traced_puddles_) {
      return puddles::FailedPreconditionError(
          "crashsim: new puddles appeared during the traced run; increase heap/log sizes");
    }
    return puddles::OkStatus();
  }

  puddles::Result<std::string> Fingerprint() override { return ComputeFingerprint(); }

  void Teardown() override {
    ReleaseStructure();
    pool_ = nullptr;
    runtime_.reset();
    daemon_.reset();
  }

  puddles::Result<std::string> RecoverAndFingerprint(const std::string& root) override {
    Teardown();
    // Reboot: run the application-independent recovery explicitly (instead of
    // Daemon::Start's implicit pass) so the replay stats are reportable.
    ASSIGN_OR_RETURN(auto daemon,
                     puddled::Daemon::Start({.root_dir = root, .run_recovery = false}));
    daemon_ = std::move(daemon);
    auto recovery = daemon_->RunRecovery();
    if (!recovery.ok()) {
      last_recovery_info_ = "recovery errored";
      Teardown();
      return recovery.status();
    }
    std::ostringstream info;
    info << "logs_scanned=" << recovery->logs_scanned << " logs_replayed="
         << recovery->logs_replayed << " entries_applied=" << recovery->entries_applied
         << " marked_invalid=" << recovery->logs_marked_invalid;
    last_recovery_info_ = info.str();
    auto finish = [&]() -> puddles::Result<std::string> {
      auto runtime = puddles::Runtime::Create(
          std::make_shared<puddled::EmbeddedDaemonClient>(daemon_.get()));
      if (!runtime.ok()) {
        return runtime.status();
      }
      runtime_ = std::move(*runtime);
      ASSIGN_OR_RETURN(pool_, runtime_->OpenPool("crashsim"));
      RETURN_IF_ERROR(AttachStructure());
      ASSIGN_OR_RETURN(std::string fingerprint, ComputeFingerprint());
      if (options_.probe_after_recovery) {
        puddles::Status probe = ProbeOp();
        if (!probe.ok()) {
          return puddles::InternalError("post-recovery probe failed: " + probe.ToString());
        }
      }
      return fingerprint;
    };
    puddles::Result<std::string> result = finish();
    Teardown();
    return result;
  }

  std::string LastRecoveryInfo() const override { return last_recovery_info_; }

 protected:
  // Creates + preloads the structure (must run at least one transaction so
  // the thread log puddle exists before tracing starts).
  virtual puddles::Status InitStructure() = 0;
  // Re-attaches to an existing structure after reopen.
  virtual puddles::Status AttachStructure() = 0;
  virtual void ReleaseStructure() = 0;
  virtual puddles::Status DoOp(int i) = 0;
  virtual puddles::Result<std::string> ComputeFingerprint() = 0;
  // One mutate-and-undo transaction over the recovered structure.
  virtual puddles::Status ProbeOp() = 0;

  std::string name_;
  DriverOptions options_;
  std::unique_ptr<puddled::Daemon> daemon_;
  std::unique_ptr<puddles::Runtime> runtime_;
  puddles::Pool* pool_ = nullptr;
  puddles::Xoshiro256 rng_{0};
  size_t traced_puddles_ = 0;
  std::string last_recovery_info_;
};

// ---- Linked list (workloads/list.h) ----
class ListCrashDriver : public PoolCrashDriver {
 public:
  using PoolCrashDriver::PoolCrashDriver;

 protected:
  using List = workloads::PersistentList<workloads::PuddlesAdapter>;

  puddles::Status InitStructure() override {
    List::RegisterTypes();
    list_.emplace(workloads::PuddlesAdapter(pool_));
    RETURN_IF_ERROR(list_->Init());
    for (int i = 0; i < options_.preload; ++i) {
      RETURN_IF_ERROR(list_->InsertTail(1'000'000 + static_cast<uint64_t>(i)));
    }
    return puddles::OkStatus();
  }

  puddles::Status AttachStructure() override {
    list_.emplace(workloads::PuddlesAdapter(pool_));
    return list_->Init();
  }

  void ReleaseStructure() override { list_.reset(); }

  puddles::Status DoOp(int i) override {
    if (list_->count() == 0 || rng_.NextDouble() < 0.7) {
      return list_->InsertTail(2'000'000 + static_cast<uint64_t>(i));
    }
    return list_->DeleteHead();
  }

  puddles::Result<std::string> ComputeFingerprint() override {
    std::ostringstream out;
    out << "n=" << list_->count();
    list_->ForEachValue([&](uint64_t value) { out << ";" << value; });
    return out.str();
  }

  puddles::Status ProbeOp() override {
    RETURN_IF_ERROR(list_->InsertTail(999'999'999));
    // The probe must leave the fingerprint unchanged only for its own check;
    // state is discarded after this call, so a tail insert suffices.
    return puddles::OkStatus();
  }

 private:
  std::optional<List> list_;
};

// ---- B+-tree (workloads/btree.h) ----
class BtreeCrashDriver : public PoolCrashDriver {
 public:
  using PoolCrashDriver::PoolCrashDriver;

 protected:
  using Tree = workloads::PersistentBTree<workloads::PuddlesAdapter>;
  static constexpr uint64_t kKeyUniverse = 48;

  puddles::Status InitStructure() override {
    Tree::RegisterTypes();
    tree_.emplace(workloads::PuddlesAdapter(pool_));
    RETURN_IF_ERROR(tree_->Init());
    // Preload with spread keys so the tree already has internal nodes and
    // op-phase inserts exercise splits.
    for (int i = 0; i < options_.preload; ++i) {
      const uint64_t key = 1 + (static_cast<uint64_t>(i) * 7) % kKeyUniverse;
      RETURN_IF_ERROR(tree_->Insert(key, 1'000'000 + static_cast<uint64_t>(i)));
    }
    return puddles::OkStatus();
  }

  puddles::Status AttachStructure() override {
    tree_.emplace(workloads::PuddlesAdapter(pool_));
    return tree_->Init();
  }

  void ReleaseStructure() override { tree_.reset(); }

  puddles::Status DoOp(int i) override {
    const uint64_t key = 1 + rng_.Below(kKeyUniverse);
    if (rng_.NextDouble() < 0.7) {
      return tree_->Insert(key, 2'000'000 + static_cast<uint64_t>(i));
    }
    puddles::Status status = tree_->Delete(key);
    return OkOrNotFound(status) ? puddles::OkStatus() : status;
  }

  puddles::Result<std::string> ComputeFingerprint() override {
    std::ostringstream out;
    out << "n=" << tree_->size();
    for (uint64_t key = 1; key <= kKeyUniverse; ++key) {
      uint64_t value = 0;
      if (tree_->Search(key, &value)) {
        out << ";" << key << "=" << value;
      }
    }
    return out.str();
  }

  puddles::Status ProbeOp() override {
    RETURN_IF_ERROR(tree_->Insert(kKeyUniverse + 1, 999'999'999));
    return tree_->Delete(kKeyUniverse + 1);
  }

 private:
  std::optional<Tree> tree_;
};

// ---- Adaptive radix tree (workloads/art.h) ----
//
// Key mix: a dense last-byte run (fans one inner node through every variant
// up to Node256 as inserts accumulate) plus sparse high-byte stems (force
// prefix splits, multi-level structure, and collapse-on-erase). Preload stops
// just short of the Node48 -> Node256 boundary so traced ops cross it, and
// the erase share drives demotions — every structural mutation lands inside
// the traced window. The fingerprint is the ordered scan, so recovery is
// checked through the range-scan path, not just point lookups.
class ArtCrashDriver : public PoolCrashDriver {
 public:
  using PoolCrashDriver::PoolCrashDriver;

 protected:
  using Art = workloads::ArtIndex<workloads::PuddlesAdapter>;
  static constexpr uint64_t kDenseUniverse = 96;
  static constexpr uint64_t kSparseStems = 4;
  static constexpr uint64_t kSparseUniverse = 8;

  uint64_t DenseKey(uint64_t i) const { return i % kDenseUniverse; }
  // Stem from the high digits, offset from the low ones, so the full
  // kSparseStems x kSparseUniverse cross product is reachable.
  uint64_t SparseKey(uint64_t i) const {
    return 0x0101000000000000ULL * (1 + (i / kSparseUniverse) % kSparseStems) +
           i % kSparseUniverse;
  }

  puddles::Status InitStructure() override {
    Art::RegisterTypes();
    art_.emplace(workloads::PuddlesAdapter(pool_));
    RETURN_IF_ERROR(art_->Init());
    for (int i = 0; i < options_.preload; ++i) {
      RETURN_IF_ERROR(
          art_->Insert(DenseKey(static_cast<uint64_t>(i)), 1'000'000 + static_cast<uint64_t>(i)));
    }
    return puddles::OkStatus();
  }

  puddles::Status AttachStructure() override {
    art_.emplace(workloads::PuddlesAdapter(pool_));
    return art_->Init();
  }

  void ReleaseStructure() override { art_.reset(); }

  puddles::Status DoOp(int i) override {
    const double dice = rng_.NextDouble();
    if (dice < 0.55 || art_->size() == 0) {
      return art_->Insert(DenseKey(rng_.Below(kDenseUniverse)),
                          2'000'000 + static_cast<uint64_t>(i));
    }
    if (dice < 0.70) {
      return art_->Insert(SparseKey(rng_.Below(kSparseStems * kSparseUniverse)),
                          3'000'000 + static_cast<uint64_t>(i));
    }
    const uint64_t victim = rng_.NextDouble() < 0.75
                                ? DenseKey(rng_.Below(kDenseUniverse))
                                : SparseKey(rng_.Below(kSparseStems * kSparseUniverse));
    puddles::Status status = art_->Erase(victim);
    return OkOrNotFound(status) ? puddles::OkStatus() : status;
  }

  puddles::Result<std::string> ComputeFingerprint() override {
    std::ostringstream out;
    out << "n=" << art_->size();
    std::vector<std::pair<uint64_t, uint64_t>> scanned;
    art_->Scan(0, static_cast<int>(art_->size()) + 16, &scanned);
    if (scanned.size() != art_->size()) {
      return puddles::DataLossError("art scan disagrees with size counter");
    }
    uint64_t previous = 0;
    bool first = true;
    for (const auto& [key, value] : scanned) {
      if (!first && key <= previous) {
        return puddles::DataLossError("art scan out of order");
      }
      first = false;
      previous = key;
      out << ";" << key << "=" << value;
    }
    return out.str();
  }

  puddles::Status ProbeOp() override {
    RETURN_IF_ERROR(art_->Insert(~uint64_t{0} - 1, 999'999'999));
    RETURN_IF_ERROR(art_->Erase(~uint64_t{0} - 1));
    // Large-object probe: Node48/Node256 come straight from the buddy
    // allocator (the insert/erase above stays on the slab path), so this
    // allocation walks the recovered buddy free list. Latent free-list damage
    // — e.g. rollback re-linking a block whose node bytes were overwritten —
    // surfaces here as an allocation error instead of going unnoticed.
    return pool_->Run([&](puddles::Tx& tx) -> puddles::Status {
      ASSIGN_OR_RETURN(auto* node, tx.Alloc<typename Art::Node48>());
      (void)node;  // Unreferenced; the probed state is discarded afterwards.
      return puddles::OkStatus();
    });
  }

 private:
  std::optional<Art> art_;
};

// ---- KV store (workloads/kvstore.h) ----
class KvstoreCrashDriver : public PoolCrashDriver {
 public:
  using PoolCrashDriver::PoolCrashDriver;

 protected:
  using Store = workloads::KvStore<workloads::PuddlesAdapter>;
  static constexpr uint64_t kKeyUniverse = 24;
  static constexpr uint64_t kBuckets = 64;

  static std::string KeyAt(uint64_t k) { return "key" + std::to_string(k); }

  static void FillValue(char (&value)[workloads::kKvValueSize], uint64_t tag) {
    std::memset(value, 0, sizeof(value));
    std::snprintf(value, sizeof(value), "v%llu", static_cast<unsigned long long>(tag));
  }

  puddles::Status InitStructure() override {
    Store::RegisterTypes();
    store_.emplace(workloads::PuddlesAdapter(pool_));
    RETURN_IF_ERROR(store_->Init(kBuckets));
    char value[workloads::kKvValueSize];
    for (int i = 0; i < options_.preload; ++i) {
      FillValue(value, 1'000'000 + static_cast<uint64_t>(i));
      RETURN_IF_ERROR(store_->Put(KeyAt(static_cast<uint64_t>(i) % kKeyUniverse), value));
    }
    return puddles::OkStatus();
  }

  puddles::Status AttachStructure() override {
    store_.emplace(workloads::PuddlesAdapter(pool_));
    return store_->Init(kBuckets);
  }

  void ReleaseStructure() override { store_.reset(); }

  puddles::Status DoOp(int i) override {
    const std::string key = KeyAt(rng_.Below(kKeyUniverse));
    if (rng_.NextDouble() < 0.7) {
      char value[workloads::kKvValueSize];
      FillValue(value, 2'000'000 + static_cast<uint64_t>(i));
      return store_->Put(key, value);
    }
    puddles::Status status = store_->Delete(key);
    return OkOrNotFound(status) ? puddles::OkStatus() : status;
  }

  puddles::Result<std::string> ComputeFingerprint() override {
    std::ostringstream out;
    out << "n=" << store_->size();
    char value[workloads::kKvValueSize];
    for (uint64_t k = 0; k < kKeyUniverse; ++k) {
      if (store_->Get(KeyAt(k), value)) {
        value[workloads::kKvValueSize - 1] = '\0';
        out << ";" << KeyAt(k) << "=" << value;
      }
    }
    return out.str();
  }

  puddles::Status ProbeOp() override {
    char value[workloads::kKvValueSize];
    FillValue(value, 999'999'999);
    RETURN_IF_ERROR(store_->Put("probe", value));
    return store_->Delete("probe");
  }

 private:
  std::optional<Store> store_;
};

// ---- Multi-threaded sliced shard ("mt") ----
//
// The first multi-threaded crash workload: kThreads persistent worker
// threads, each owning a disjoint slice of a pointer-free shard plus a
// per-thread committed-round counter, mutate concurrently through their own
// thread logs. Each RunOp is one *round*: every worker stamps its slice in
// chunk-atomic transactions (each chunk is one tx), runs one deliberately
// aborted transaction (tracing in-process rollback persists), then commits
// its round counter. Workers are spawned in InitStructure and live across all
// rounds — their thread-log puddles must exist before tracing starts, and a
// fresh thread per round would create fresh log puddles mid-trace (tripping
// the no-new-puddles guard).
//
// Because three threads commit independently, a crash can legally land
// between any per-thread progress points — no single global op boundary
// exists. The fingerprint therefore *normalizes*: it validates the per-thread
// invariants (slice = a chunk-aligned prefix of stamp s+1 over a suffix of
// stamp s; committed counter consistent with the slice) and returns a
// constant on success, so the membership oracle accepts exactly the states
// transaction recovery can legally produce and rejects everything else.
class MtSlicesCrashDriver : public PoolCrashDriver {
 public:
  using PoolCrashDriver::PoolCrashDriver;

  ~MtSlicesCrashDriver() override { StopWorkers(); }

 protected:
  static constexpr int kThreads = 3;
  static constexpr int kCellsPerThread = 8;
  static constexpr int kChunk = 4;  // Cells per chunk transaction.

  struct MtShard {
    uint64_t cells[kThreads * kCellsPerThread];
    uint64_t committed[kThreads];
    uint64_t probe_pad;  // Touched by the post-recovery probe; not fingerprinted.
  };

  puddles::Status InitStructure() override {
    RETURN_IF_ERROR(puddles::TypeRegistry::Instance().Register<MtShard>());
    RETURN_IF_ERROR(pool_->Run([&](puddles::Tx& tx) -> puddles::Status {
      ASSIGN_OR_RETURN(MtShard * shard, tx.Alloc<MtShard>());
      std::memset(shard, 0, sizeof(MtShard));
      shard_ = shard;
      return pool_->SetRoot(shard);
    }));
    StartWorkers();
    // Warm-up round: every worker runs transactions now, so every thread-log
    // puddle exists before the traced window opens.
    return RunRound(1);
  }

  puddles::Status AttachStructure() override {
    ASSIGN_OR_RETURN(shard_, pool_->Root<MtShard>());
    return puddles::OkStatus();  // Recovery-side: no workers respawned.
  }

  void ReleaseStructure() override {
    StopWorkers();
    shard_ = nullptr;
  }

  puddles::Status DoOp(int i) override { return RunRound(2 + static_cast<uint64_t>(i)); }

  puddles::Result<std::string> ComputeFingerprint() override {
    for (int t = 0; t < kThreads; ++t) {
      const uint64_t* slice = shard_->cells + t * kCellsPerThread;
      const uint64_t v_hi = slice[0];
      int split = kCellsPerThread;
      for (int c = 1; c < kCellsPerThread; ++c) {
        if (slice[c] != v_hi) {
          split = c;
          break;
        }
      }
      const uint64_t v_lo = split == kCellsPerThread ? v_hi : slice[split];
      if (split != kCellsPerThread && v_lo + 1 != v_hi) {
        return puddles::DataLossError("mt slice mixes non-adjacent round stamps");
      }
      if (split % kChunk != 0) {
        return puddles::DataLossError("mt slice split not chunk-aligned (torn chunk tx)");
      }
      for (int c = split; c < kCellsPerThread; ++c) {
        if (slice[c] != v_lo) {
          return puddles::DataLossError("mt slice is not a monotone stamp prefix");
        }
      }
      const uint64_t committed = shard_->committed[t];
      // The counter commits only after the whole slice is stamped: a mixed
      // slice pins it at v_lo; a uniform slice allows v_hi or v_hi - 1 (0 only
      // in the pre-stamp initial state).
      const bool mixed = split != kCellsPerThread;
      if (mixed ? committed != v_lo
                : (committed != v_hi && committed + 1 != v_hi)) {
        return puddles::DataLossError("mt committed-round counter disagrees with slice");
      }
    }
    return std::string("mt:consistent");
  }

  puddles::Status ProbeOp() override {
    return pool_->Run([&](puddles::Tx& tx) -> puddles::Status {
      RETURN_IF_ERROR(tx.LogRange(&shard_->probe_pad, sizeof(shard_->probe_pad)));
      shard_->probe_pad = 999'999'999;
      return puddles::OkStatus();
    });
  }

 private:
  void StartWorkers() {
    exit_ = false;
    round_gen_ = 0;
    for (int t = 0; t < kThreads; ++t) {
      worker_status_[t] = puddles::OkStatus();
      workers_.emplace_back([this, t] { WorkerMain(t); });
    }
  }

  void StopWorkers() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      exit_ = true;
    }
    cv_.notify_all();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) {
        worker.join();
      }
    }
    workers_.clear();
  }

  puddles::Status RunRound(uint64_t stamp) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      round_stamp_ = stamp;
      done_count_ = 0;
      ++round_gen_;
    }
    cv_.notify_all();
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return done_count_ == kThreads; });
    for (int t = 0; t < kThreads; ++t) {
      RETURN_IF_ERROR(worker_status_[t]);
    }
    return puddles::OkStatus();
  }

  void WorkerMain(int t) {
    uint64_t seen_gen = 0;
    while (true) {
      uint64_t stamp;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return exit_ || round_gen_ > seen_gen; });
        if (exit_) {
          return;
        }
        seen_gen = round_gen_;
        stamp = round_stamp_;
      }
      puddles::Status status = WorkerRound(t, stamp);
      {
        std::lock_guard<std::mutex> lock(mu_);
        worker_status_[t] = std::move(status);
        ++done_count_;
      }
      cv_.notify_all();
    }
  }

  puddles::Status WorkerRound(int t, uint64_t stamp) {
    uint64_t* slice = shard_->cells + t * kCellsPerThread;
    for (int chunk = 0; chunk < kCellsPerThread; chunk += kChunk) {
      RETURN_IF_ERROR(pool_->Run([&](puddles::Tx& tx) -> puddles::Status {
        RETURN_IF_ERROR(tx.LogRange(slice + chunk, kChunk * sizeof(uint64_t)));
        for (int c = 0; c < kChunk; ++c) {
          slice[chunk + c] = stamp;
        }
        return puddles::OkStatus();
      }));
    }
    // Deterministic abort: exercises undo append + in-process rollback
    // persists inside the traced window; must leave no durable change.
    puddles::Status aborted = pool_->Run([&](puddles::Tx& tx) -> puddles::Status {
      RETURN_IF_ERROR(tx.LogRange(slice, sizeof(uint64_t)));
      slice[0] = stamp + 1'000'000;
      return puddles::AbortedError("mt: deliberate abort");
    });
    if (aborted.code() != puddles::StatusCode::kAborted) {
      return aborted.ok() ? puddles::InternalError("mt: abort tx committed") : aborted;
    }
    return pool_->Run([&](puddles::Tx& tx) -> puddles::Status {
      RETURN_IF_ERROR(
          tx.LogRange(&shard_->committed[t], sizeof(shard_->committed[t])));
      shard_->committed[t] = stamp;
      return puddles::OkStatus();
    });
  }

  MtShard* shard_ = nullptr;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool exit_ = false;
  uint64_t round_gen_ = 0;
  uint64_t round_stamp_ = 0;
  int done_count_ = 0;
  puddles::Status worker_status_[kThreads];
};

// ---- Epoch-based group commit ("epoch") ----
//
// Gates the all-or-nothing recovery contract of Durability::kEpoch
// (docs/epoch.md): three persistent workers commit chunk transactions, a
// deliberate abort, and a round counter — all buffered into the open epoch —
// and each RunOp ends with Pool::Sync(). The epoch thresholds are set so high
// that Sync is the ONLY thing that closes an epoch, which pins epoch
// boundaries to op boundaries: the harness's fingerprint-membership oracle
// then demands that every crash state recovers to a whole round, across all
// three threads. A recovered prefix of an epoch — some threads' transactions
// surviving, others rolled back, or a thread's chunks split — is exactly what
// the retirement gate must make impossible, and shows up here as a
// DataLossError fingerprint.
class EpochCrashDriver : public PoolCrashDriver {
 public:
  using PoolCrashDriver::PoolCrashDriver;

  ~EpochCrashDriver() override { StopWorkers(); }

 protected:
  static constexpr int kThreads = 3;
  static constexpr int kCellsPerThread = 8;
  static constexpr int kChunk = 4;  // Cells per chunk transaction.

  struct EpochShard {
    uint64_t cells[kThreads * kCellsPerThread];
    uint64_t committed[kThreads];
    uint64_t probe_pad;  // Touched by the post-recovery probe; not fingerprinted.
  };

  puddles::Status InitStructure() override {
    RETURN_IF_ERROR(puddles::TypeRegistry::Instance().Register<EpochShard>());
    RETURN_IF_ERROR(pool_->Run([&](puddles::Tx& tx) -> puddles::Status {
      ASSIGN_OR_RETURN(EpochShard * shard, tx.Alloc<EpochShard>());
      std::memset(shard, 0, sizeof(EpochShard));
      shard_ = shard;
      return pool_->SetRoot(shard);
    }));
    // Thresholds high enough that neither the timer nor the byte/tx counts
    // ever close an epoch mid-round — only the Sync at the end of each op.
    puddles::EpochOptions options;
    options.max_epoch_age_us = 10'000'000;
    options.max_staged_bytes = 1ULL << 30;
    options.max_epoch_txs = 1ULL << 30;
    RETURN_IF_ERROR(pool_->SetDurability(puddles::Durability::kEpoch, options));
    StartWorkers();
    // Warm-up round + sync: every worker's thread-log puddle exists (and its
    // epoch port is created) before the traced window opens, and tracing
    // starts exactly at an epoch boundary.
    RETURN_IF_ERROR(RunRound(1));
    pool_->Sync();
    return puddles::OkStatus();
  }

  puddles::Status AttachStructure() override {
    ASSIGN_OR_RETURN(shard_, pool_->Root<EpochShard>());
    return puddles::OkStatus();  // Recovery-side: no workers, immediate mode.
  }

  void ReleaseStructure() override {
    StopWorkers();
    shard_ = nullptr;
  }

  puddles::Status DoOp(int i) override {
    RETURN_IF_ERROR(RunRound(2 + static_cast<uint64_t>(i)));
    pool_->Sync();  // Close + persistently retire the round's epoch.
    return puddles::OkStatus();
  }

  puddles::Result<std::string> ComputeFingerprint() override {
    // All-or-nothing across the whole epoch: every cell of every thread and
    // every committed counter must carry the same round stamp. Any mixture —
    // per-thread, per-chunk, or cells-vs-counter — is an epoch prefix that
    // recovery must never produce.
    const uint64_t v = shard_->cells[0];
    auto dump = [&] {
      std::ostringstream d;
      d << " cells=";
      for (int c = 0; c < kThreads * kCellsPerThread; ++c) {
        d << shard_->cells[c] << (c % kCellsPerThread == kCellsPerThread - 1 ? "|" : ",");
      }
      d << " committed=" << shard_->committed[0] << "," << shard_->committed[1] << ","
        << shard_->committed[2];
      return d.str();
    };
    for (int c = 0; c < kThreads * kCellsPerThread; ++c) {
      if (shard_->cells[c] != v) {
        return puddles::DataLossError("epoch: cells mix round stamps (partial epoch)" + dump());
      }
    }
    for (int t = 0; t < kThreads; ++t) {
      if (shard_->committed[t] != v) {
        return puddles::DataLossError("epoch: committed counter disagrees with cells" + dump());
      }
    }
    std::ostringstream out;
    out << "epoch:round=" << v;
    return out.str();
  }

  puddles::Status ProbeOp() override {
    return pool_->Run([&](puddles::Tx& tx) -> puddles::Status {
      RETURN_IF_ERROR(tx.LogRange(&shard_->probe_pad, sizeof(shard_->probe_pad)));
      shard_->probe_pad = 999'999'999;
      return puddles::OkStatus();
    });
  }

 private:
  void StartWorkers() {
    exit_ = false;
    round_gen_ = 0;
    for (int t = 0; t < kThreads; ++t) {
      worker_status_[t] = puddles::OkStatus();
      workers_.emplace_back([this, t] { WorkerMain(t); });
    }
  }

  void StopWorkers() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      exit_ = true;
    }
    cv_.notify_all();
    for (std::thread& worker : workers_) {
      if (worker.joinable()) {
        worker.join();
      }
    }
    workers_.clear();
  }

  puddles::Status RunRound(uint64_t stamp) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      round_stamp_ = stamp;
      done_count_ = 0;
      ++round_gen_;
    }
    cv_.notify_all();
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return done_count_ == kThreads; });
    for (int t = 0; t < kThreads; ++t) {
      RETURN_IF_ERROR(worker_status_[t]);
    }
    return puddles::OkStatus();
  }

  void WorkerMain(int t) {
    uint64_t seen_gen = 0;
    while (true) {
      uint64_t stamp;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return exit_ || round_gen_ > seen_gen; });
        if (exit_) {
          return;
        }
        seen_gen = round_gen_;
        stamp = round_stamp_;
      }
      puddles::Status status = WorkerRound(t, stamp);
      {
        std::lock_guard<std::mutex> lock(mu_);
        worker_status_[t] = std::move(status);
        ++done_count_;
      }
      cv_.notify_all();
    }
  }

  puddles::Status WorkerRound(int t, uint64_t stamp) {
    uint64_t* slice = shard_->cells + t * kCellsPerThread;
    for (int chunk = 0; chunk < kCellsPerThread; chunk += kChunk) {
      RETURN_IF_ERROR(pool_->Run([&](puddles::Tx& tx) -> puddles::Status {
        RETURN_IF_ERROR(tx.LogRange(slice + chunk, kChunk * sizeof(uint64_t)));
        for (int c = 0; c < kChunk; ++c) {
          slice[chunk + c] = stamp;
        }
        return puddles::OkStatus();
      }));
    }
    // Deliberate abort inside the epoch: its published undo entries stay in
    // the log until the epoch retires, so replay of an unretired epoch walks
    // over them too — rollback must stay idempotent.
    puddles::Status aborted = pool_->Run([&](puddles::Tx& tx) -> puddles::Status {
      RETURN_IF_ERROR(tx.LogRange(slice, sizeof(uint64_t)));
      slice[0] = stamp + 1'000'000;
      return puddles::AbortedError("epoch: deliberate abort");
    });
    if (aborted.code() != puddles::StatusCode::kAborted) {
      return aborted.ok() ? puddles::InternalError("epoch: abort tx committed") : aborted;
    }
    return pool_->Run([&](puddles::Tx& tx) -> puddles::Status {
      RETURN_IF_ERROR(
          tx.LogRange(&shard_->committed[t], sizeof(shard_->committed[t])));
      shard_->committed[t] = stamp;
      return puddles::OkStatus();
    });
  }

  EpochShard* shard_ = nullptr;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool exit_ = false;
  uint64_t round_gen_ = 0;
  uint64_t round_stamp_ = 0;
  int done_count_ = 0;
  puddles::Status worker_status_[kThreads];
};

// ---- Per-thread arena allocator with GC recovery ("allocgc") ----
//
// Drives the arena allocator through its crash-exposed windows: batched slab
// refills (directory claim + chain-head moves), the free churn on the
// lock-free local list, and full flush-backs that hand every slab to the
// shared heap — every sixth op is a FlushThreadArena, so the immediately
// following op re-claims the directory and refills, putting both the
// mid-refill and the mid-flush-back persist sequences inside the traced
// window over and over.
//
// Recovery runs the arena GC (Pool::RecoverArenas) with a differential
// oracle: the reachable set (walked through the registered pointer maps)
// must be byte-identical before and after GC — GC may only reclaim
// unreachable slots, never touch a live object — and a second GC pass must
// find nothing (idempotence). The fingerprint is the reachable signature,
// so the membership oracle also proves no committed publication was lost.
class AllocGcCrashDriver : public PoolCrashDriver {
 public:
  using PoolCrashDriver::PoolCrashDriver;

 protected:
  static constexpr int kSlots = 12;

  // 256 bytes + 16-byte header = the 272-byte slab class (14 slots per
  // slab): small slabs make refills frequent inside a short traced run.
  struct GcObj {
    uint64_t value;
    uint64_t pad[31];
  };
  // The pointer array registers as one repeat region — the roots the GC
  // walks.
  struct GcRoot {
    GcObj* slots[kSlots];
  };

  puddles::Status InitStructure() override {
    (void)puddles::TypeRegistry::Instance().Register<GcRoot>(&GcRoot::slots);
    RETURN_IF_ERROR(pool_->SetAllocMode(puddles::AllocMode::kArena,
                                        {.refill_slabs = 1, .flush_watermark = 8}));
    return pool_->Run([&](puddles::Tx& tx) -> puddles::Status {
      ASSIGN_OR_RETURN(root_, tx.Alloc<GcRoot>());
      for (auto& slot : root_->slots) {
        slot = nullptr;
      }
      return pool_->SetRoot(root_);
    });
  }

  puddles::Status AttachStructure() override {
    (void)puddles::TypeRegistry::Instance().Register<GcRoot>(&GcRoot::slots);
    ASSIGN_OR_RETURN(root_, pool_->Root<GcRoot>());
    ASSIGN_OR_RETURN(std::string before, ReachableSignature());
    ASSIGN_OR_RETURN(auto gc, pool_->RecoverArenas());
    ASSIGN_OR_RETURN(std::string after, ReachableSignature());
    if (before != after) {
      return puddles::DataLossError("allocgc: GC changed the reachable set (pre=" +
                                    before + " post=" + after + ")");
    }
    ASSIGN_OR_RETURN(auto again, pool_->RecoverArenas());
    if (again.arenas_recovered != 0) {
      return puddles::DataLossError("allocgc: arena GC is not idempotent");
    }
    return puddles::OkStatus();
  }

  void ReleaseStructure() override { root_ = nullptr; }

  puddles::Status DoOp(int i) override {
    if (i % 6 == 5) {
      // Flush-back: every slab handed to the shared heap, directory entry
      // cleared — the mid-flush crash window.
      return pool_->FlushThreadArena();
    }
    const int slot = i % kSlots;
    return pool_->Run([&](puddles::Tx& tx) -> puddles::Status {
      // Transient pair: exercises the local free list (alloc + unlogged
      // free in one transaction) without changing the reachable set.
      ASSIGN_OR_RETURN(GcObj * scratch, tx.Alloc<GcObj>());
      scratch->value = 0xA110C;
      RETURN_IF_ERROR(tx.Free(scratch));
      ASSIGN_OR_RETURN(GcObj * next, tx.Alloc<GcObj>());
      next->value = 10'000 + static_cast<uint64_t>(i);
      if (root_->slots[slot] != nullptr) {
        RETURN_IF_ERROR(tx.Free(root_->slots[slot]));
      }
      RETURN_IF_ERROR(tx.LogRange(&root_->slots[slot], sizeof(GcObj*)));
      root_->slots[slot] = next;
      return puddles::OkStatus();
    });
  }

  puddles::Result<std::string> ComputeFingerprint() override { return ReachableSignature(); }

  puddles::Status ProbeOp() override {
    return pool_->Run([&](puddles::Tx& tx) -> puddles::Status {
      ASSIGN_OR_RETURN(GcObj * probe, tx.Alloc<GcObj>());
      probe->value = 999'999'999;
      return tx.Free(probe);
    });
  }

 private:
  // Reachable-object count plus the slot values in slot order: a function of
  // the committed op prefix alone, whether the arena is live (traced run) or
  // being recovered (post-crash), so it doubles as the membership oracle.
  puddles::Result<std::string> ReachableSignature() {
    ASSIGN_OR_RETURN(auto reachable, pool_->ReachableObjects());
    std::ostringstream out;
    out << "live=" << reachable.size();
    for (int s = 0; s < kSlots; ++s) {
      out << ";" << (root_->slots[s] == nullptr ? 0 : root_->slots[s]->value);
    }
    return out.str();
  }

  GcRoot* root_ = nullptr;
};

// ---- PersistentHashMap (src/pmhash) ----
//
// No daemon, no transactions: pmhash carries its own slot-level protocol
// (publish bits, update journal, CRC scrubbing on Attach), so this driver
// verifies that protocol under the same exhaustive crash model.
class PmhashCrashDriver : public WorkloadDriver {
 public:
  explicit PmhashCrashDriver(const DriverOptions& options) : options_(options) {}

  std::string name() const override { return "pmhash"; }
  int num_ops() const override { return options_.ops; }

  puddles::Result<std::vector<TracedRegion>> Setup(const std::string& root) override {
    path_ = root + "/pmhash.pud";
    const size_t bytes = puddles::AlignUp(Map::RequiredBytes(kCapacity), size_t{4096});
    ASSIGN_OR_RETURN(auto file, pmem::PmemFile::Create(path_, bytes));
    file_ = std::move(file);
    ASSIGN_OR_RETURN(void* mem, file_.Map());
    RETURN_IF_ERROR(Map::Format(mem, file_.size(), kCapacity));
    ASSIGN_OR_RETURN(auto map, Map::Attach(mem, file_.size()));
    map_.emplace(std::move(map));
    rng_ = puddles::Xoshiro256(options_.seed);
    for (int i = 0; i < options_.preload; ++i) {
      RETURN_IF_ERROR(map_->Put(static_cast<uint64_t>(i) % kKeyUniverse,
                                1'000'000 + static_cast<uint64_t>(i)));
    }
    TracedRegion region;
    region.base = reinterpret_cast<uintptr_t>(mem);
    region.size = file_.size();
    region.file_path = path_;
    region.label = "pmhash";
    return std::vector<TracedRegion>{std::move(region)};
  }

  puddles::Status RunOp(int i) override {
    const uint64_t key = rng_.Below(kKeyUniverse);
    if (rng_.NextDouble() < 0.6) {
      return map_->Put(key, 2'000'000 + static_cast<uint64_t>(i));
    }
    puddles::Status status = map_->Erase(key);
    return OkOrNotFound(status) ? puddles::OkStatus() : status;
  }

  puddles::Result<std::string> Fingerprint() override {
    std::map<uint64_t, uint64_t> contents;
    map_->ForEach([&](const uint64_t& key, const uint64_t& value) { contents[key] = value; });
    std::ostringstream out;
    out << "n=" << contents.size();
    for (const auto& [key, value] : contents) {
      out << ";" << key << "=" << value;
    }
    return out.str();
  }

  void Teardown() override {
    map_.reset();
    file_ = pmem::PmemFile();
  }

  puddles::Result<std::string> RecoverAndFingerprint(const std::string& root) override {
    Teardown();
    path_ = root + "/pmhash.pud";
    ASSIGN_OR_RETURN(auto file, pmem::PmemFile::Open(path_));
    file_ = std::move(file);
    auto finish = [&]() -> puddles::Result<std::string> {
      ASSIGN_OR_RETURN(void* mem, file_.Map());
      // Attach IS the recovery path: journal replay + torn-slot scrubbing.
      ASSIGN_OR_RETURN(auto map, Map::Attach(mem, file_.size()));
      map_.emplace(std::move(map));
      ASSIGN_OR_RETURN(std::string fingerprint, Fingerprint());
      if (options_.probe_after_recovery) {
        RETURN_IF_ERROR(map_->Put(kKeyUniverse + 1, 999'999'999));
        RETURN_IF_ERROR(map_->Erase(kKeyUniverse + 1));
      }
      return fingerprint;
    };
    puddles::Result<std::string> result = finish();
    Teardown();
    return result;
  }

 private:
  using Map = puddles::PersistentHashMap<uint64_t, uint64_t>;
  static constexpr uint64_t kCapacity = 256;
  static constexpr uint64_t kKeyUniverse = 32;

  DriverOptions options_;
  std::string path_;
  pmem::PmemFile file_;
  std::optional<Map> map_;
  puddles::Xoshiro256 rng_{0};
};

// ---- Pool import + relocation rewrite (§4.2, DESIGN.md §7) ----
//
// Traced run: a source pool holding a linked list is exported, its values are
// then mutated (tripwire — see below), and the export is imported back into
// the same daemon, so every copied puddle conflicts with its original and is
// relocated (needs-rewrite flag, zeroed frontier). Each traced op then drives
// the streaming rewrite of one imported puddle — small batches, so the
// frontier/flag protocol persists often and the enumerator crosses every
// protocol edge. Recovery opens the copy through the stock Runtime::OpenPool
// path, whose rewrite-on-map must resume from the persisted frontier.
//
// Oracle sharpness: the copy is a byte clone, so a recovered copy that chased
// a STALE pointer back into source memory would read value-identical bytes —
// invisible to a fingerprint. Mutating the source after the export makes the
// two diverge: any untranslated pointer surviving recovery reads mutated
// source values and fails the membership check.
class ImportCrashDriver : public WorkloadDriver {
 public:
  struct ImpNode {
    ImpNode* next;
    uint64_t value;
  };
  struct ImpRoot {
    ImpNode* head;
    ImpNode* tail;
    uint64_t count;
  };

  explicit ImportCrashDriver(const DriverOptions& options) : options_(options) {}

  std::string name() const override { return "import"; }
  // One traced op per imported puddle (read by the harness after Setup).
  int num_ops() const override { return static_cast<int>(members_.size()); }

  puddles::Result<std::vector<TracedRegion>> Setup(const std::string& root) override {
    RegisterTypes();
    ASSIGN_OR_RETURN(auto daemon, puddled::Daemon::Start({.root_dir = root}));
    daemon_ = std::move(daemon);
    auto finish = [&]() -> puddles::Result<std::vector<TracedRegion>> {
      ASSIGN_OR_RETURN(auto runtime,
                       puddles::Runtime::Create(std::make_shared<puddled::EmbeddedDaemonClient>(
                           daemon_.get())));
      runtime_ = std::move(runtime);
      ASSIGN_OR_RETURN(src_pool_, runtime_->CreatePool("src"));
      RETURN_IF_ERROR(BuildList(*src_pool_, NumNodes()));

      const std::string export_dir = root + "/export";
      RETURN_IF_ERROR(runtime_->ExportPool("src", export_dir));
      // Tripwire: diverge the source from the exported bytes (see above).
      RETURN_IF_ERROR(MutateSource(*src_pool_));

      ASSIGN_OR_RETURN(puddled::ImportResult import,
                       runtime_->client().ImportPool(export_dir, "copy"));
      if (import.members_relocated == 0) {
        return puddles::InternalError(
            "import crash driver needs base conflicts; none occurred");
      }

      // Map every imported puddle at its assigned base (outside the runtime:
      // the stock rewrite-on-map path would consume the protocol before
      // tracing starts) and assemble the pool translation table. The meta
      // puddle goes first — the same order the runtime maps in — and its
      // traced op exercises the non-data CompleteRewrite fast path.
      ASSIGN_OR_RETURN(Mapped meta, MapPuddle(import.pool.meta_puddle));
      members_.push_back(meta);
      ASSIGN_OR_RETURN(puddles::PoolMetaView meta_view,
                       puddles::PoolMetaView::Attach(members_[0].view));
      for (uint32_t i = 0; i < meta_view.num_members(); ++i) {
        ASSIGN_OR_RETURN(Mapped member, MapPuddle(meta_view.member(i)));
        members_.push_back(member);
        const uint64_t old_base = meta_view.member_old_base(i);
        if (old_base != 0) {
          RETURN_IF_ERROR(
              translator_.Add(old_base, member.info.file_size, member.info.base_addr));
        }
      }
      copy_root_puddle_ = meta_view.root_puddle();
      copy_root_offset_ = meta_view.root_offset();

      std::vector<TracedRegion> regions;
      for (const Mapped& member : members_) {
        TracedRegion region;
        region.base = member.info.base_addr;
        region.size = member.info.file_size;
        region.file_path = daemon_->PuddlePath(member.info.uuid);
        region.label = "import/" + member.info.uuid.ToString().substr(0, 8);
        regions.push_back(std::move(region));
      }
      return regions;
    };
    auto result = finish();
    if (!result.ok()) {
      Teardown();
    }
    return result;
  }

  puddles::Status RunOp(int i) override {
    Mapped& member = members_[static_cast<size_t>(i)];
    puddles::RewriteOptions rewrite_options;
    rewrite_options.batch_objects = options_.rewrite_batch_objects;
    ASSIGN_OR_RETURN(puddles::RewriteStats stats,
                     puddles::RewritePuddle(member.view, translator_,
                                            puddles::TypeRegistry::Instance(),
                                            rewrite_options));
    (void)stats;
    return runtime_->client().CompleteRewrite(member.info.uuid);
  }

  puddles::Result<std::string> Fingerprint() override {
    std::ostringstream out;
    ASSIGN_OR_RETURN(ImpRoot * src_root, src_pool_->Root<ImpRoot>());
    out << "src{";
    RETURN_IF_ERROR(WalkList(src_root, /*canonical=*/false, out));
    out << "};copy{";
    RETURN_IF_ERROR(WalkCopyRaw(out));
    out << "}";
    return out.str();
  }

  void Teardown() override {
    src_pool_ = nullptr;
    runtime_.reset();
    auto& space = pmem::GlobalPuddleSpace();
    for (Mapped& member : members_) {
      if (member.mapped) {
        (void)space.UnmapToReserved(member.info.base_addr, member.info.file_size);
        (void)space.FreeRange(member.info.base_addr);
        member.mapped = false;
      }
      if (member.fd >= 0) {
        ::close(member.fd);
        member.fd = -1;
      }
    }
    daemon_.reset();
  }

  puddles::Result<std::string> RecoverAndFingerprint(const std::string& root) override {
    Teardown();
    // Reset per state: a failure before the stats are gathered must not report
    // the previous crash state's diagnostics.
    last_recovery_info_ = "recovery errored before replay stats";
    ASSIGN_OR_RETURN(auto daemon,
                     puddled::Daemon::Start({.root_dir = root, .run_recovery = false}));
    daemon_ = std::move(daemon);
    auto finish = [&]() -> puddles::Result<std::string> {
      ASSIGN_OR_RETURN(auto recovery, daemon_->RunRecovery());
      std::ostringstream info;
      info << "entries_applied=" << recovery.entries_applied
           << " marked_invalid=" << recovery.logs_marked_invalid;
      ASSIGN_OR_RETURN(auto runtime,
                       puddles::Runtime::Create(std::make_shared<puddled::EmbeddedDaemonClient>(
                           daemon_.get())));
      runtime_ = std::move(runtime);
      // The stock open path: translator from pool meta, rewrite-on-map with
      // frontier resume for every member that still carries the flag.
      ASSIGN_OR_RETURN(puddles::Pool * src, runtime_->OpenPool("src"));
      ASSIGN_OR_RETURN(puddles::Pool * copy, runtime_->OpenPool("copy"));
      auto stats = runtime_->stats();
      info << " rewrites=" << stats.rewrites
           << " pointers_rewritten=" << stats.pointers_rewritten;
      last_recovery_info_ = info.str();
      std::ostringstream out;
      ASSIGN_OR_RETURN(ImpRoot * src_root, src->Root<ImpRoot>());
      out << "src{";
      RETURN_IF_ERROR(WalkList(src_root, /*canonical=*/false, out));
      out << "};copy{";
      ASSIGN_OR_RETURN(ImpRoot * copy_root, copy->Root<ImpRoot>());
      RETURN_IF_ERROR(WalkList(copy_root, /*canonical=*/false, out));
      out << "}";
      if (options_.probe_after_recovery) {
        puddles::Status probe = ProbeAppend(*copy);
        if (!probe.ok()) {
          return puddles::InternalError("post-recovery probe failed: " + probe.ToString());
        }
      }
      return out.str();
    };
    puddles::Result<std::string> result = finish();
    Teardown();
    return result;
  }

  std::string LastRecoveryInfo() const override { return last_recovery_info_; }

 private:
  struct Mapped {
    puddled::PuddleInfo info;
    int fd = -1;
    bool mapped = false;
    puddles::Puddle view;
  };

  static constexpr uint64_t kSrcMutationDelta = 1'000'000;

  uint64_t NumNodes() const { return options_.ops < 1 ? 1 : static_cast<uint64_t>(options_.ops); }

  static void RegisterTypes() {
    (void)puddles::TypeRegistry::Instance().Register<ImpNode>(&ImpNode::next);
    (void)puddles::TypeRegistry::Instance().Register<ImpRoot>(&ImpRoot::head,
                                                              &ImpRoot::tail);
  }

  // pool.Run fits the harness exactly: drivers are called with no try/catch,
  // and a body that reports failure is rolled back, not committed.
  static puddles::Status AppendNode(puddles::Pool& pool, uint64_t value) {
    return pool.Run([&](puddles::Tx& tx) -> puddles::Status {
      ASSIGN_OR_RETURN(ImpRoot * root, pool.Root<ImpRoot>());
      ASSIGN_OR_RETURN(ImpNode * node, tx.Alloc<ImpNode>());
      node->value = value;
      node->next = nullptr;
      RETURN_IF_ERROR(tx.Log(root));
      if (root->tail == nullptr) {
        root->head = node;
      } else {
        RETURN_IF_ERROR(tx.LogField(root->tail, &ImpNode::next));
        root->tail->next = node;
      }
      root->tail = node;
      root->count++;
      return puddles::OkStatus();
    });
  }

  static puddles::Status BuildList(puddles::Pool& pool, uint64_t nodes) {
    RETURN_IF_ERROR(pool.Run([&](puddles::Tx& tx) -> puddles::Status {
      ASSIGN_OR_RETURN(ImpRoot * root, tx.Alloc<ImpRoot>());
      root->head = nullptr;
      root->tail = nullptr;
      root->count = 0;
      return pool.SetRoot(root);
    }));
    for (uint64_t i = 0; i < nodes; ++i) {
      RETURN_IF_ERROR(AppendNode(pool, i));
    }
    return puddles::OkStatus();
  }

  static puddles::Status MutateSource(puddles::Pool& pool) {
    return pool.Run([&](puddles::Tx& tx) -> puddles::Status {
      ASSIGN_OR_RETURN(ImpRoot * root, pool.Root<ImpRoot>());
      for (ImpNode* node = root->head; node != nullptr; node = node->next) {
        RETURN_IF_ERROR(tx.LogField(node, &ImpNode::value));
        node->value += kSrcMutationDelta;
      }
      return puddles::OkStatus();
    });
  }

  static puddles::Status ProbeAppend(puddles::Pool& pool) {
    return AppendNode(pool, 999'999'999);
  }

  puddles::Result<Mapped> MapPuddle(const puddles::Uuid& uuid) {
    ASSIGN_OR_RETURN(auto fetched, runtime_->client().GetPuddle(uuid, /*write=*/true));
    Mapped member;
    member.info = fetched.first;
    member.fd = fetched.second;
    auto& space = pmem::GlobalPuddleSpace();
    puddles::Status claimed = space.ClaimRange(member.info.base_addr, member.info.file_size);
    if (!claimed.ok()) {
      ::close(member.fd);
      return claimed;
    }
    puddles::Status mapped = space.MapFileAt(member.fd, member.info.base_addr,
                                             member.info.file_size, /*writable=*/true);
    if (!mapped.ok()) {
      (void)space.FreeRange(member.info.base_addr);
      ::close(member.fd);
      return mapped;
    }
    auto view = puddles::Puddle::Attach(reinterpret_cast<void*>(member.info.base_addr),
                                        member.info.file_size);
    if (!view.ok()) {
      (void)space.UnmapToReserved(member.info.base_addr, member.info.file_size);
      (void)space.FreeRange(member.info.base_addr);
      ::close(member.fd);
      return view.status();
    }
    member.view = *view;
    member.mapped = true;
    return member;
  }

  // Walks a list. With canonical=true, every pointer is first passed through
  // the translation table — the logical view of a copy whose rewrite has not
  // (fully) run yet, without ever dereferencing an old address.
  puddles::Status WalkList(const ImpRoot* root, bool canonical, std::ostringstream& out) {
    auto canon = [&](const ImpNode* node) -> const ImpNode* {
      if (!canonical) {
        return node;
      }
      uint64_t translated;
      if (translator_.Translate(reinterpret_cast<uint64_t>(node), &translated)) {
        return reinterpret_cast<const ImpNode*>(translated);
      }
      return node;
    };
    out << "n=" << root->count;
    uint64_t remaining = root->count + 16;  // Corruption guard: no cycles.
    for (const ImpNode* node = canon(root->head); node != nullptr;
         node = canon(node->next)) {
      if (remaining-- == 0) {
        return puddles::DataLossError("list walk exceeded expected length (cycle?)");
      }
      out << ";" << node->value;
    }
    return puddles::OkStatus();
  }

  // Logical contents of the imported copy read straight from its mapped
  // puddles, mid-rewrite safe (manual translation, no reliance on the
  // rewrite having run).
  puddles::Status WalkCopyRaw(std::ostringstream& out) {
    const Mapped* root_member = nullptr;
    for (const Mapped& member : members_) {
      if (member.info.uuid == copy_root_puddle_) {
        root_member = &member;
        break;
      }
    }
    if (root_member == nullptr || !root_member->mapped) {
      return puddles::InternalError("copy root puddle is not mapped");
    }
    const auto* root = reinterpret_cast<const ImpRoot*>(
        root_member->info.base_addr + root_member->view.header()->heap_offset +
        copy_root_offset_);
    return WalkList(root, /*canonical=*/true, out);
  }

  DriverOptions options_;
  std::unique_ptr<puddled::Daemon> daemon_;
  std::unique_ptr<puddles::Runtime> runtime_;
  puddles::Pool* src_pool_ = nullptr;
  puddles::Translator translator_;
  std::vector<Mapped> members_;
  puddles::Uuid copy_root_puddle_;
  uint64_t copy_root_offset_ = 0;
  std::string last_recovery_info_;
};

}  // namespace

std::unique_ptr<WorkloadDriver> MakeDriver(const std::string& name,
                                           const DriverOptions& options) {
  if (name == "list") {
    return std::make_unique<ListCrashDriver>("list", options);
  }
  if (name == "btree") {
    return std::make_unique<BtreeCrashDriver>("btree", options);
  }
  if (name == "art") {
    return std::make_unique<ArtCrashDriver>("art", options);
  }
  if (name == "kvstore") {
    return std::make_unique<KvstoreCrashDriver>("kvstore", options);
  }
  if (name == "pmhash") {
    return std::make_unique<PmhashCrashDriver>(options);
  }
  if (name == "import") {
    return std::make_unique<ImportCrashDriver>(options);
  }
  if (name == "mt") {
    return std::make_unique<MtSlicesCrashDriver>("mt", options);
  }
  if (name == "epoch") {
    return std::make_unique<EpochCrashDriver>("epoch", options);
  }
  if (name == "allocgc") {
    return std::make_unique<AllocGcCrashDriver>("allocgc", options);
  }
  return nullptr;
}

std::vector<std::string> DriverNames() {
  return {"list", "btree", "art", "kvstore", "pmhash", "import", "mt", "epoch", "allocgc"};
}

}  // namespace crashsim
