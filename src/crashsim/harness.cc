#include "src/crashsim/harness.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <utility>

namespace crashsim {
namespace {

namespace fs = std::filesystem;

puddles::Status CopyTree(const fs::path& from, const fs::path& to) {
  std::error_code ec;
  fs::remove_all(to, ec);
  fs::create_directories(to, ec);
  fs::copy(from, to, fs::copy_options::recursive | fs::copy_options::overwrite_existing, ec);
  if (ec) {
    return puddles::InternalError("copy " + from.string() + " -> " + to.string() + ": " +
                                  ec.message());
  }
  return puddles::OkStatus();
}

// Open file handles for the traced regions' backing files, for pwrite()ing
// one materialized crash image. Re-opened per state because the harness
// replaces the files when restoring the pristine snapshot.
class RegionFiles {
 public:
  explicit RegionFiles(const std::vector<TracedRegion>& regions) {
    fds_.reserve(regions.size());
    for (const TracedRegion& region : regions) {
      fds_.push_back(::open(region.file_path.c_str(), O_WRONLY));
    }
  }
  ~RegionFiles() {
    for (int fd : fds_) {
      if (fd >= 0) {
        ::close(fd);
      }
    }
  }

  puddles::Status Write(uint32_t region, uint64_t offset, const uint8_t* data, size_t size) {
    if (region >= fds_.size() || fds_[region] < 0) {
      return puddles::InternalError("crashsim: no open file for region " +
                                    std::to_string(region));
    }
    ssize_t written = ::pwrite(fds_[region], data, size, static_cast<off_t>(offset));
    if (written != static_cast<ssize_t>(size)) {
      return puddles::InternalError("crashsim: pwrite failed: errno=" + std::to_string(errno));
    }
    return puddles::OkStatus();
  }

 private:
  std::vector<int> fds_;
};

}  // namespace

std::string HarnessReport::Summary() const {
  std::ostringstream out;
  out << workload << ": " << states_enumerated << " crash states ("
      << fence_boundary_states << " fence-boundary, " << eviction_states
      << " eviction-subset";
  if (thread_mask_states != 0) {
    out << ", " << thread_mask_states << " thread-mask";
  }
  out << ") from " << epochs << " epochs over " << ops << " ops";
  if (trace_threads > 1) {
    out << " (" << trace_threads << " threads)";
  }
  out << "; " << recoveries_ok << " recovered ok, " << recovery_failures
      << " recovery failures, " << invariant_failures << " invariant failures; "
      << distinct_outcomes << " distinct recovered states; trace: " << flush_calls
      << " flushes / " << fences << " fences / " << trace_bytes << " delta bytes";
  if (graph_built) {
    out << "; prune: " << states_explored << " explored / " << states_pruned << " pruned / "
        << state_classes << " classes (" << fallback_unique << " unique-fallback)";
    if (class_mismatches != 0) {
      out << ", " << class_mismatches << " CLASS MISMATCHES";
    }
    out << "; graph: " << graph.nodes << " nodes, " << graph.ordering_edges << " ordering + "
        << graph.overwrite_edges << " overwrite edges; lines: " << graph.lines_touched
        << " touched / " << graph.lines_total << " total (" << graph.lines_never_exercised
        << " never exercised, " << graph.log_lines << " log)";
  }
  return out.str();
}

puddles::Result<HarnessReport> Harness::Run() {
  HarnessReport report;
  report.workload = driver_.name();

  const fs::path scratch =
      (options_.scratch_dir.empty() ? fs::temp_directory_path()
                                    : fs::path(options_.scratch_dir)) /
      ("crashsim_" + std::to_string(::getpid()) + "_" + driver_.name());
  const fs::path live = scratch / "live";
  const fs::path pristine = scratch / "pristine";
  std::error_code ec;
  fs::remove_all(scratch, ec);
  fs::create_directories(live, ec);
  if (ec) {
    return puddles::InternalError("crashsim: cannot create " + live.string());
  }

  // ---- Phase 1: build the baseline and trace one complete run. ----
  ASSIGN_OR_RETURN(std::vector<TracedRegion> regions, driver_.Setup(live.string()));
  // Snapshot the whole root now: this is the durable state every enumerated
  // crash image builds on (mmap MAP_SHARED keeps files current with memory).
  RETURN_IF_ERROR(CopyTree(live, pristine));

  pmem::PersistStats persist_before = pmem::ReadPersistStats();
  TraceRecorder recorder;
  recorder.Start(regions);

  std::set<std::string> legal_states;
  auto record_state = [&]() -> puddles::Status {
    ASSIGN_OR_RETURN(std::string fp, driver_.Fingerprint());
    legal_states.insert(std::move(fp));
    return puddles::OkStatus();
  };
  puddles::Status run_status = record_state();
  const int ops = driver_.num_ops();
  for (int i = 0; run_status.ok() && i < ops; ++i) {
    run_status = driver_.RunOp(i);
    if (run_status.ok()) {
      run_status = record_state();
    }
  }
  Trace trace = recorder.Stop();
  driver_.Teardown();
  if (!run_status.ok()) {
    fs::remove_all(scratch, ec);
    return run_status;
  }

  pmem::PersistStats persist_after = pmem::ReadPersistStats();
  report.ops = static_cast<uint64_t>(ops);
  report.epochs = trace.epochs.size();
  report.flush_calls = trace.flush_calls;
  report.fences = trace.fences;
  report.trace_bytes = trace.TotalDeltaBytes();
  report.trace_threads = trace.num_threads;
  report.persist.flushed_lines = persist_after.flushed_lines - persist_before.flushed_lines;
  report.persist.flush_calls = persist_after.flush_calls - persist_before.flush_calls;
  report.persist.fences = persist_after.fences - persist_before.fences;

  // ---- Phase 2: enumerate, classify, and verify crash states. ----
  std::optional<PersistenceGraph> graph;
  std::unique_ptr<StateClassifier> classifier;
  if (options_.prune == PruneMode::kGraph || options_.verify_classes) {
    ASSIGN_OR_RETURN(PersistenceGraph built, PersistenceGraph::Build(trace));
    graph.emplace(std::move(built));
    ASSIGN_OR_RETURN(classifier, StateClassifier::Create(trace, *graph));
    report.graph_built = true;
    report.graph = graph->stats();
  }

  std::vector<CrashStateSpec> specs = EnumerateCrashStates(trace, options_.enumerate);
  report.states_enumerated = specs.size();
  std::set<std::string> outcomes;
  std::set<std::pair<uint64_t, uint64_t>> seen_classes;
  // verify_classes: first observed outcome per class.
  std::map<std::pair<uint64_t, uint64_t>, std::string> class_outcome;
  for (const CrashStateSpec& spec : specs) {
    if (options_.log_each_state) {
      std::fprintf(stderr, "crashsim[%s]: exploring %s\n", report.workload.c_str(),
                   spec.ToString().c_str());
    }
    if (spec.evict) {
      ++report.eviction_states;
    } else if (spec.thread_mask != 0) {
      ++report.thread_mask_states;
    } else {
      ++report.fence_boundary_states;
    }

    ClassSignature sig;
    bool have_class = false;
    if (classifier) {
      ASSIGN_OR_RETURN(sig, classifier->Classify(spec));
      have_class = !sig.unique;
    }
    bool first_of_class = true;
    if (have_class) {
      first_of_class = seen_classes.insert({sig.a, sig.b}).second;
    }
    if (options_.prune == PruneMode::kGraph && !options_.verify_classes && !first_of_class) {
      ++report.states_pruned;
      if (options_.record_outcomes) {
        report.outcomes.push_back({spec.ToString(), sig, /*explored=*/false, /*ok=*/true, ""});
      }
      continue;
    }
    ++report.states_explored;

    puddles::Status state_status = CopyTree(pristine, live);
    if (state_status.ok()) {
      RegionFiles files(trace.regions);
      MaterializeCrashState(trace, spec, [&](uint32_t region, uint64_t offset,
                                             const uint8_t* data, size_t size) {
        if (state_status.ok()) {
          state_status = files.Write(region, offset, data, size);
        }
      });
    }

    puddles::Result<std::string> recovered =
        state_status.ok() ? driver_.RecoverAndFingerprint(live.string())
                          : puddles::Result<std::string>(state_status);
    std::string outcome_key;
    bool state_ok = false;
    if (!recovered.ok()) {
      outcome_key = "recovery-failure";
      ++report.recovery_failures;
      if (report.failures.size() < options_.max_failures_recorded) {
        report.failures.push_back(spec.ToString() + ": recovery failed: " +
                                  recovered.status().ToString() + " [" +
                                  driver_.LastRecoveryInfo() + "]");
      }
    } else if (legal_states.find(*recovered) == legal_states.end()) {
      outcome_key = "invariant-failure:" + *recovered;
      ++report.invariant_failures;
      if (report.failures.size() < options_.max_failures_recorded) {
        report.failures.push_back(spec.ToString() +
                                  ": recovered state is not at an op boundary: " + *recovered +
                                  " [" + driver_.LastRecoveryInfo() + "]");
      }
    } else {
      outcome_key = "ok:" + *recovered;
      state_ok = true;
      ++report.recoveries_ok;
      outcomes.insert(*recovered);
    }
    if (options_.verify_classes && have_class) {
      auto [it, inserted] = class_outcome.emplace(std::make_pair(sig.a, sig.b), outcome_key);
      if (!inserted && it->second != outcome_key) {
        ++report.class_mismatches;
        if (report.failures.size() < options_.max_failures_recorded) {
          report.failures.push_back(spec.ToString() + ": class outcome mismatch: \"" +
                                    outcome_key + "\" vs representative \"" + it->second +
                                    "\"");
        }
      }
    }
    if (options_.record_outcomes) {
      report.outcomes.push_back({spec.ToString(), sig, /*explored=*/true, state_ok,
                                 std::move(outcome_key)});
    }
    if (options_.stop_on_failure && !report.ok()) {
      break;
    }
  }
  report.distinct_outcomes = outcomes.size();
  if (classifier) {
    report.state_classes = seen_classes.size() + classifier->stats().fallback_unique;
    report.fallback_unique = classifier->stats().fallback_unique;
  }

  fs::remove_all(scratch, ec);
  return report;
}

}  // namespace crashsim
