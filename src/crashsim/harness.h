// Recovery oracle harness: runs a workload once under the trace recorder,
// enumerates every legal post-crash durable image within a budget, and for
// each image runs the REAL application-independent recovery path — a fresh
// Puddled scanning and replaying logs before any application maps data —
// then checks the recovered state against the workload's invariants.
//
// Oracle: each workload op is failure-atomic, so after recovery the workload
// state must equal the committed state at some op boundary. The harness
// fingerprints the structure after every op during the traced run and asserts
// membership of the recovered fingerprint in that set — the strongest
// application-level invariant available without inspecting internals.
//
// Mechanics (DESIGN.md §6): puddles are mmap'd files, so a durable image is
// materialized by restoring the daemon root directory to its trace-start
// snapshot and pwrite()ing the enumerated deltas into the puddle files. The
// "machine" (daemon + runtime) is torn down between states; every recovery
// runs against cold on-disk state, exactly like a reboot.
//
// Pruning (DESIGN.md §12): with PruneMode::kGraph the harness classifies each
// enumerated state through the persistence-graph StateClassifier and explores
// only the first state of each equivalence class — states whose
// recovery-relevant projected images are byte-identical share one verdict.
// verify_classes instead explores EVERYTHING and checks that every state in a
// class produces the same outcome (the soundness self-test).
#ifndef SRC_CRASHSIM_HARNESS_H_
#define SRC_CRASHSIM_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/crashsim/persistence_graph.h"
#include "src/crashsim/pruner.h"
#include "src/crashsim/state_enumerator.h"
#include "src/crashsim/trace.h"
#include "src/pmem/flush.h"

namespace crashsim {

// One crash-consistency workload under test. The driver owns all process
// state (daemon, runtime, pool, or raw mapped files); the harness owns
// orchestration, tracing, enumeration, and verification.
class WorkloadDriver {
 public:
  virtual ~WorkloadDriver() = default;

  virtual std::string name() const = 0;

  // Builds the initial durable state under `root` (daemon, pool, structure,
  // preload) and returns the PM regions whose persists should be traced.
  // Everything durable at return forms the crash-state baseline.
  virtual puddles::Result<std::vector<TracedRegion>> Setup(const std::string& root) = 0;

  virtual int num_ops() const = 0;

  // Runs the i-th mutation. Must be failure-atomic (one transaction, or an
  // internally crash-consistent operation).
  virtual puddles::Status RunOp(int i) = 0;

  // Canonical summary of the committed structure contents. Two states with
  // equal fingerprints must be semantically identical.
  virtual puddles::Result<std::string> Fingerprint() = 0;

  // Power failure: drops all process state with no cleanup. On-disk files are
  // left as-is (the harness overwrites them with enumerated images).
  virtual void Teardown() = 0;

  // Reboot: runs real recovery over the on-disk state under `root`, opens the
  // structure, fingerprints it, and shuts down again. Any error is a recovery
  // failure for the current crash state.
  virtual puddles::Result<std::string> RecoverAndFingerprint(const std::string& root) = 0;

  // One-line diagnostics about the most recent RecoverAndFingerprint (replay
  // stats etc.); attached to failure reports.
  virtual std::string LastRecoveryInfo() const { return {}; }
};

struct HarnessOptions {
  EnumerationOptions enumerate;
  // Scratch directory; a fresh subdirectory per run is created inside. Empty
  // uses the system temp dir.
  std::string scratch_dir;
  bool stop_on_failure = false;
  // Cap on recorded failure messages (counters are always exact).
  size_t max_failures_recorded = 16;
  // Print each spec to stderr before exploring it (debugging aid: identifies
  // the state at fault when a corrupt recovery kills the process).
  bool log_each_state = false;
  // kGraph: explore one representative per persistence-graph equivalence
  // class. Defaults to brute force (every enumerated state explored), the
  // historical behavior.
  PruneMode prune = PruneMode::kNone;
  // Soundness self-test: classify AND explore every state, asserting that all
  // states of a class produce the same outcome (HarnessReport::class_mismatches
  // counts violations). Overrides prune-skipping.
  bool verify_classes = false;
  // Record a per-state outcome row in HarnessReport::outcomes.
  bool record_outcomes = false;
};

struct HarnessReport {
  std::string workload;

  // Trace coverage.
  uint64_t ops = 0;
  uint64_t epochs = 0;
  uint64_t flush_calls = 0;
  uint64_t fences = 0;
  uint64_t trace_bytes = 0;
  uint32_t trace_threads = 1;
  pmem::PersistStats persist;  // Persist traffic of the traced run.

  // Exploration coverage.
  uint64_t states_enumerated = 0;
  uint64_t fence_boundary_states = 0;
  uint64_t eviction_states = 0;
  uint64_t thread_mask_states = 0;

  // Pruning (populated when a classifier ran: prune == kGraph or
  // verify_classes).
  uint64_t states_explored = 0;  // Recoveries actually run (== enumerated when brute force).
  uint64_t states_pruned = 0;    // Skipped as class-equivalent to an explored state.
  uint64_t state_classes = 0;    // Distinct equivalence classes (incl. unique fallbacks).
  uint64_t fallback_unique = 0;  // States the model refused to merge (always explored).
  uint64_t class_mismatches = 0;  // verify_classes: outcome disagreements within a class.
  bool graph_built = false;
  GraphStats graph;

  // Verification results.
  uint64_t recoveries_ok = 0;
  uint64_t recovery_failures = 0;   // Recovery path errored.
  uint64_t invariant_failures = 0;  // Recovered state not at an op boundary.
  uint64_t distinct_outcomes = 0;   // Distinct recovered fingerprints.
  std::vector<std::string> failures;

  // Per-state rows (HarnessOptions::record_outcomes).
  struct StateOutcome {
    std::string spec;
    ClassSignature signature;
    bool explored = false;
    bool ok = false;
    std::string outcome;  // "ok:<fp>", "recovery-failure", "invariant-failure:<fp>".
  };
  std::vector<StateOutcome> outcomes;

  bool ok() const {
    return recovery_failures == 0 && invariant_failures == 0 && class_mismatches == 0;
  }
  std::string Summary() const;
};

class Harness {
 public:
  Harness(WorkloadDriver& driver, HarnessOptions options)
      : driver_(driver), options_(std::move(options)) {}

  puddles::Result<HarnessReport> Run();

 private:
  WorkloadDriver& driver_;
  HarnessOptions options_;
};

}  // namespace crashsim

#endif  // SRC_CRASHSIM_HARNESS_H_
