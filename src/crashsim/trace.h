// Persist-trace recording for systematic crash-state enumeration.
//
// A TraceRecorder observes the persistence instruction stream (every
// pmem::Flush and pmem::Fence) over a set of registered PM regions and builds
// an epoch-delimited trace: epoch k is the interval between the (k-1)-th and
// k-th fences. Within an epoch the recorder captures
//   * flush deltas — the line-expanded byte ranges written back by Flush();
//     they are guaranteed durable once the epoch's closing fence retires, and
//     only maybe-durable before it (a write-back can complete any time after
//     the flush instruction issues), and
//   * dirty lines at the closing fence — lines stored but never flushed; on
//     real hardware the cache may evict such a line at any moment, so each is
//     independently maybe-durable.
// From a trace, the state enumerator (state_enumerator.h) generates every
// legal post-crash durable image within a budget. See DESIGN.md §5.
//
// Multi-threaded traces: every flush delta records the issuing thread and
// every epoch records which thread's fence closed it. A store fence orders
// only the *issuing* thread's preceding flushes, so a delta from thread t is
// guaranteed durable at a crash only once t itself has fenced — flushes from
// other threads that happen to fall in an earlier (globally ordered) epoch
// remain merely maybe-durable. RetirementIndex answers exactly that question;
// the enumerator uses it to generate per-thread interleaving states and the
// pruner (DESIGN.md §12) uses it to build boundary images honestly.
//
// The recorder keeps its own model of the durable image (initialized from
// live contents at Start), so it works with or without the ShadowHeap
// simulator attached. The untouched trace-start image is preserved in
// Trace::baseline — the persistence-graph analysis needs it to reconstruct
// any boundary image offline.
#ifndef SRC_CRASHSIM_TRACE_H_
#define SRC_CRASHSIM_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/pmem/flush.h"

namespace crashsim {

// One PM region under observation. `file_path` names the backing puddle file
// so the harness can materialize crash images onto disk after teardown.
struct TracedRegion {
  uintptr_t base = 0;
  size_t size = 0;
  std::string file_path;
  std::string label;
};

// A flushed, region-relative, line-expanded byte range and its content at
// flush time.
struct FlushDelta {
  uint32_t region = 0;  // Index into Trace::regions.
  uint64_t offset = 0;  // Region-relative, cache-line aligned.
  uint32_t thread = 0;  // Dense id of the issuing thread (0 = first seen).
  std::vector<uint8_t> bytes;
};

// A stored-but-unflushed cache line observed when an epoch closed, holding
// the content the cache would have written back on eviction. Dirty lines are
// found by diffing live memory against the durable model, so they carry no
// thread attribution.
struct DirtyLine {
  uint32_t region = 0;
  uint64_t offset = 0;  // Region-relative, cache-line aligned.
  std::vector<uint8_t> live;
};

// One fence-delimited interval.
struct Epoch {
  std::vector<FlushDelta> deltas;
  std::vector<DirtyLine> dirty_at_close;
  // Dense id of the thread whose fence closed this epoch; kNoFence for the
  // trailing epoch closed by TraceRecorder::Stop() (no ordering point — its
  // deltas are never guaranteed durable except in the complete-run state).
  // Defaults to thread 0 so hand-built single-threaded traces retire
  // normally.
  static constexpr int32_t kNoFence = -1;
  int32_t fencing_thread = 0;
};

struct Trace {
  std::vector<TracedRegion> regions;
  // epochs[k] is closed by the k-th observed fence; the final epoch is closed
  // by TraceRecorder::Stop() (covering stores issued after the last fence).
  std::vector<Epoch> epochs;
  // Byte image of every region at Start (the durable baseline all crash
  // states build on). Parallel to `regions`; empty for hand-built traces.
  std::vector<std::vector<uint8_t>> baseline;
  uint64_t flush_calls = 0;
  uint64_t fences = 0;
  uint32_t num_threads = 1;

  uint64_t TotalDeltaBytes() const;
};

// Answers, per crash point, whether a flush delta's durability is guaranteed.
// A delta issued by thread t in epoch e is *retired* at a crash just before
// epoch k's closing fence iff t fenced some epoch j with e <= j < k (t's own
// sfence orders all of t's earlier flushes). The complete-run crash point
// (k == epochs.size()) retires everything: the process shut down cleanly, so
// the harness treats the final live image as durable — the pre-existing
// single-threaded contract.
class RetirementIndex {
 public:
  explicit RetirementIndex(const Trace& trace);

  bool Retired(uint32_t thread, uint64_t delta_epoch, uint64_t crash_epoch) const;

  // True iff some delta in epochs [0, crash_epoch) is NOT retired at
  // crash_epoch (only possible in multi-threaded traces).
  bool AnyUnretired(const Trace& trace, uint64_t crash_epoch) const;

 private:
  uint64_t num_epochs_ = 0;
  // fence_epochs_[t] = sorted epochs whose closing fence thread t issued.
  std::vector<std::vector<uint64_t>> fence_epochs_;
};

// Records the persist trace of the calling process. At most one recorder may
// be active at a time (it installs itself as the process persist observer).
// Thread-safe: flushes/fences from any thread are serialized into one trace,
// with per-thread attribution (dense ids in first-seen order).
class TraceRecorder : public pmem::PersistObserver {
 public:
  TraceRecorder() = default;
  ~TraceRecorder() override;

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Begins recording. The live contents of `regions` form the epoch-0 durable
  // baseline (everything before Start is assumed durable).
  void Start(std::vector<TracedRegion> regions);

  // Closes the trailing epoch (final dirty scan), uninstalls the observer,
  // and returns the trace.
  Trace Stop();

  bool active() const;

  // pmem::PersistObserver:
  void OnFlushRange(const void* addr, size_t size) override;
  void OnFence() override;

 private:
  void CloseEpochLocked(int32_t fencing_thread);
  uint32_t ThreadIdLocked();

  mutable std::mutex mu_;
  bool active_ = false;
  Trace trace_;
  Epoch open_;
  std::unordered_map<std::thread::id, uint32_t> thread_ids_;
  // Per-region durable-image model, advanced by flush deltas; diffed against
  // live memory at each fence to find dirty (evictable) lines.
  std::vector<std::vector<uint8_t>> durable_;
};

}  // namespace crashsim

#endif  // SRC_CRASHSIM_TRACE_H_
