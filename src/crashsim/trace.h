// Persist-trace recording for systematic crash-state enumeration.
//
// A TraceRecorder observes the persistence instruction stream (every
// pmem::Flush and pmem::Fence) over a set of registered PM regions and builds
// an epoch-delimited trace: epoch k is the interval between the (k-1)-th and
// k-th fences. Within an epoch the recorder captures
//   * flush deltas — the line-expanded byte ranges written back by Flush();
//     they are guaranteed durable once the epoch's closing fence retires, and
//     only maybe-durable before it (a write-back can complete any time after
//     the flush instruction issues), and
//   * dirty lines at the closing fence — lines stored but never flushed; on
//     real hardware the cache may evict such a line at any moment, so each is
//     independently maybe-durable.
// From a trace, the state enumerator (state_enumerator.h) generates every
// legal post-crash durable image within a budget. See DESIGN.md §5.
//
// The recorder keeps its own model of the durable image (initialized from
// live contents at Start), so it works with or without the ShadowHeap
// simulator attached.
#ifndef SRC_CRASHSIM_TRACE_H_
#define SRC_CRASHSIM_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/pmem/flush.h"

namespace crashsim {

// One PM region under observation. `file_path` names the backing puddle file
// so the harness can materialize crash images onto disk after teardown.
struct TracedRegion {
  uintptr_t base = 0;
  size_t size = 0;
  std::string file_path;
  std::string label;
};

// A flushed, region-relative, line-expanded byte range and its content at
// flush time.
struct FlushDelta {
  uint32_t region = 0;  // Index into Trace::regions.
  uint64_t offset = 0;  // Region-relative, cache-line aligned.
  std::vector<uint8_t> bytes;
};

// A stored-but-unflushed cache line observed when an epoch closed, holding
// the content the cache would have written back on eviction.
struct DirtyLine {
  uint32_t region = 0;
  uint64_t offset = 0;  // Region-relative, cache-line aligned.
  std::vector<uint8_t> live;
};

// One fence-delimited interval.
struct Epoch {
  std::vector<FlushDelta> deltas;
  std::vector<DirtyLine> dirty_at_close;
};

struct Trace {
  std::vector<TracedRegion> regions;
  // epochs[k] is closed by the k-th observed fence; the final epoch is closed
  // by TraceRecorder::Stop() (covering stores issued after the last fence).
  std::vector<Epoch> epochs;
  uint64_t flush_calls = 0;
  uint64_t fences = 0;

  uint64_t TotalDeltaBytes() const;
};

// Records the persist trace of the calling process. At most one recorder may
// be active at a time (it installs itself as the process persist observer).
// Thread-safe: flushes/fences from any thread are serialized into one trace.
class TraceRecorder : public pmem::PersistObserver {
 public:
  TraceRecorder() = default;
  ~TraceRecorder() override;

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Begins recording. The live contents of `regions` form the epoch-0 durable
  // baseline (everything before Start is assumed durable).
  void Start(std::vector<TracedRegion> regions);

  // Closes the trailing epoch (final dirty scan), uninstalls the observer,
  // and returns the trace.
  Trace Stop();

  bool active() const;

  // pmem::PersistObserver:
  void OnFlushRange(const void* addr, size_t size) override;
  void OnFence() override;

 private:
  void CloseEpochLocked();

  mutable std::mutex mu_;
  bool active_ = false;
  Trace trace_;
  Epoch open_;
  // Per-region durable-image model, advanced by flush deltas; diffed against
  // live memory at each fence to find dirty (evictable) lines.
  std::vector<std::vector<uint8_t>> durable_;
};

}  // namespace crashsim

#endif  // SRC_CRASHSIM_TRACE_H_
