// Persistence dependency graph over a recorded persist trace (DESIGN.md §12).
//
// Nodes are cacheline-granular store groups: every line-sized slice of a
// flush delta and every fence-time dirty line is one write event on its
// (region, line) cell. Edges are the constraints that relate them:
//   * ordering edges — each flushed group is ordered before its epoch's
//     closing fence (the only hardware-guaranteed ordering),
//   * overwrite edges — successive writes to the same line, where the later
//     write supersedes the earlier one in any state where both persist.
// The graph also classifies each traced region by parsing its trace-start
// baseline image with the production on-PM parsers (PuddleHeader kinds): data
// and pool-metadata puddles, log puddles, log-space directories, or opaque
// raw regions (pmhash). Log-puddle *heap* lines are the recovery-dead set the
// pruner (pruner.h) excludes from state signatures: after recovery the
// runtime only ever creates fresh logs, so no post-crash read observes them
// (the §12 soundness argument).
//
// Building the graph requires Trace::baseline (recorded traces have it;
// hand-built test traces may not).
#ifndef SRC_CRASHSIM_PERSISTENCE_GRAPH_H_
#define SRC_CRASHSIM_PERSISTENCE_GRAPH_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/common/uuid.h"
#include "src/crashsim/trace.h"

namespace crashsim {

enum class RegionRole : uint8_t {
  kData = 0,      // Data / pool-metadata puddle: every line is signature-relevant.
  kLogPuddle = 1,      // Crash-consistency log: heap lines are recovery-dead.
  kLogSpacePuddle = 2,  // Log directory: read (never written) by recovery.
  kOpaque = 3,    // No puddle header (raw region, e.g. pmhash): all relevant.
};

struct RegionInfo {
  RegionRole role = RegionRole::kOpaque;
  puddles::Uuid uuid;       // Nil for opaque regions.
  uint64_t base_addr = 0;   // PuddleHeader::base_addr (0 for opaque).
  uint64_t heap_offset = 0;
  uint64_t heap_size = 0;
};

// One write event on a (region, line) cell, in trace order. `bytes` points
// into the backing Trace (which must outlive the graph).
struct LineWrite {
  uint64_t epoch = 0;
  // Global issue order within the trace (dense, across epochs); dirty lines
  // order after every flush of their epoch.
  uint64_t seq = 0;
  uint32_t thread = 0;
  bool dirty = false;  // Fence-time dirty capture, not a flush.
  const uint8_t* bytes = nullptr;
  uint32_t size = 0;  // <= kCacheLineSize (short only at a region tail).
};

struct GraphStats {
  uint64_t nodes = 0;            // Store groups (line-granular write events).
  uint64_t ordering_edges = 0;   // Flushed group -> its governing fence.
  uint64_t overwrite_edges = 0;  // Same-line successive-write pairs.
  uint64_t lines_total = 0;
  uint64_t lines_touched = 0;
  uint64_t lines_never_exercised = 0;
  uint64_t log_lines = 0;  // Lines inside log-puddle heaps (signature-excluded).
};

class PersistenceGraph {
 public:
  // Requires trace.baseline (parallel to trace.regions). The trace must
  // outlive the graph.
  static puddles::Result<PersistenceGraph> Build(const Trace& trace);

  const std::vector<RegionInfo>& regions() const { return regions_; }
  const GraphStats& stats() const { return stats_; }

  // True iff the byte range [offset, offset+size) intersects a log puddle's
  // heap (a recovery-dead, signature-excluded span).
  bool IsLogHeapRange(uint32_t region, uint64_t offset, uint64_t size) const;

  // Per-line write timelines, keyed by (region, line_offset). Timelines are
  // sorted by seq.
  const std::vector<LineWrite>* Timeline(uint32_t region, uint64_t line_offset) const;

  // Every (region, line_offset) cell with at least one write, sorted.
  const std::vector<std::pair<uint32_t, uint64_t>>& TouchedLines() const {
    return touched_lines_;
  }

  // Traced region whose [base_addr, base_addr + size) span contains
  // [addr, addr+size), or -1. Only meaningful for puddle-backed regions
  // (opaque regions have no global address).
  int32_t RegionForAddr(uint64_t addr, uint32_t size) const;

 private:
  PersistenceGraph() = default;

  const Trace* trace_ = nullptr;
  std::vector<RegionInfo> regions_;
  std::vector<uint64_t> region_sizes_;
  GraphStats stats_;
  // timelines_[i] belongs to touched_lines_[i].
  std::vector<std::pair<uint32_t, uint64_t>> touched_lines_;
  std::vector<std::vector<LineWrite>> timelines_;
};

}  // namespace crashsim

#endif  // SRC_CRASHSIM_PERSISTENCE_GRAPH_H_
