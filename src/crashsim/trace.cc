#include "src/crashsim/trace.h"

#include <algorithm>
#include <cstring>

#include "src/common/align.h"

namespace crashsim {

uint64_t Trace::TotalDeltaBytes() const {
  uint64_t total = 0;
  for (const Epoch& epoch : epochs) {
    for (const FlushDelta& delta : epoch.deltas) {
      total += delta.bytes.size();
    }
  }
  return total;
}

RetirementIndex::RetirementIndex(const Trace& trace) : num_epochs_(trace.epochs.size()) {
  fence_epochs_.resize(trace.num_threads);
  for (uint64_t e = 0; e < trace.epochs.size(); ++e) {
    const int32_t t = trace.epochs[e].fencing_thread;
    if (t >= 0 && static_cast<uint32_t>(t) < fence_epochs_.size()) {
      fence_epochs_[static_cast<uint32_t>(t)].push_back(e);  // Already in order.
    }
  }
}

bool RetirementIndex::Retired(uint32_t thread, uint64_t delta_epoch,
                              uint64_t crash_epoch) const {
  if (crash_epoch >= num_epochs_) {
    return true;  // Complete run: clean shutdown, everything durable.
  }
  if (thread >= fence_epochs_.size()) {
    return false;
  }
  // Retired iff `thread` fenced some epoch in [delta_epoch, crash_epoch).
  const std::vector<uint64_t>& fences = fence_epochs_[thread];
  auto it = std::lower_bound(fences.begin(), fences.end(), delta_epoch);
  return it != fences.end() && *it < crash_epoch;
}

bool RetirementIndex::AnyUnretired(const Trace& trace, uint64_t crash_epoch) const {
  const uint64_t closed = std::min<uint64_t>(crash_epoch, trace.epochs.size());
  for (uint64_t e = 0; e < closed; ++e) {
    for (const FlushDelta& delta : trace.epochs[e].deltas) {
      if (!Retired(delta.thread, e, crash_epoch)) {
        return true;
      }
    }
  }
  return false;
}

TraceRecorder::~TraceRecorder() {
  if (active()) {
    (void)Stop();
  }
}

void TraceRecorder::Start(std::vector<TracedRegion> regions) {
  std::lock_guard<std::mutex> lock(mu_);
  trace_ = Trace{};
  trace_.regions = std::move(regions);
  open_ = Epoch{};
  thread_ids_.clear();
  durable_.clear();
  durable_.reserve(trace_.regions.size());
  trace_.baseline.reserve(trace_.regions.size());
  for (const TracedRegion& region : trace_.regions) {
    const uint8_t* live = reinterpret_cast<const uint8_t*>(region.base);
    durable_.emplace_back(live, live + region.size);
    trace_.baseline.emplace_back(live, live + region.size);
  }
  active_ = true;
  pmem::SetPersistObserver(this);
}

Trace TraceRecorder::Stop() {
  pmem::SetPersistObserver(nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  if (active_) {
    CloseEpochLocked(Epoch::kNoFence);
    active_ = false;
  }
  durable_.clear();
  trace_.num_threads = std::max<uint32_t>(1, static_cast<uint32_t>(thread_ids_.size()));
  return std::move(trace_);
}

bool TraceRecorder::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

uint32_t TraceRecorder::ThreadIdLocked() {
  const auto [it, inserted] =
      thread_ids_.emplace(std::this_thread::get_id(), static_cast<uint32_t>(thread_ids_.size()));
  (void)inserted;
  return it->second;
}

void TraceRecorder::OnFlushRange(const void* addr, size_t size) {
  const uintptr_t flush_lo = reinterpret_cast<uintptr_t>(addr);
  const uintptr_t flush_hi = flush_lo + size;
  std::lock_guard<std::mutex> lock(mu_);
  if (!active_) {
    return;
  }
  ++trace_.flush_calls;
  const uint32_t thread = ThreadIdLocked();
  for (uint32_t i = 0; i < trace_.regions.size(); ++i) {
    const TracedRegion& region = trace_.regions[i];
    // Expand to whole region-relative cache lines (the write-back unit), the
    // same granularity the ShadowHeap uses.
    const puddles::LineSpan span =
        puddles::ClampToRegionLines(region.base, region.size, flush_lo, flush_hi);
    if (span.length == 0) {
      continue;
    }
    FlushDelta delta;
    delta.region = i;
    delta.offset = span.offset;
    delta.thread = thread;
    const uint8_t* live = reinterpret_cast<const uint8_t*>(region.base + span.offset);
    delta.bytes.assign(live, live + span.length);
    // The flushed lines are now (pending-)durable: fold them into the model so
    // the fence-time dirty scan reports only never-flushed lines.
    std::memcpy(durable_[i].data() + span.offset, delta.bytes.data(), delta.bytes.size());
    open_.deltas.push_back(std::move(delta));
  }
}

void TraceRecorder::OnFence() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!active_) {
    return;
  }
  ++trace_.fences;
  CloseEpochLocked(static_cast<int32_t>(ThreadIdLocked()));
}

void TraceRecorder::CloseEpochLocked(int32_t fencing_thread) {
  for (uint32_t i = 0; i < trace_.regions.size(); ++i) {
    const TracedRegion& region = trace_.regions[i];
    const uint8_t* live = reinterpret_cast<const uint8_t*>(region.base);
    const uint8_t* durable = durable_[i].data();
    for (size_t offset = 0; offset < region.size; offset += puddles::kCacheLineSize) {
      const size_t line = std::min(puddles::kCacheLineSize, region.size - offset);
      if (std::memcmp(live + offset, durable + offset, line) == 0) {
        continue;
      }
      DirtyLine dirty;
      dirty.region = i;
      dirty.offset = offset;
      dirty.live.assign(live + offset, live + offset + line);
      open_.dirty_at_close.push_back(std::move(dirty));
    }
  }
  open_.fencing_thread = fencing_thread;
  trace_.epochs.push_back(std::move(open_));
  open_ = Epoch{};
}

}  // namespace crashsim
