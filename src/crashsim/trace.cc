#include "src/crashsim/trace.h"

#include <algorithm>
#include <cstring>

#include "src/common/align.h"

namespace crashsim {

uint64_t Trace::TotalDeltaBytes() const {
  uint64_t total = 0;
  for (const Epoch& epoch : epochs) {
    for (const FlushDelta& delta : epoch.deltas) {
      total += delta.bytes.size();
    }
  }
  return total;
}

TraceRecorder::~TraceRecorder() {
  if (active()) {
    (void)Stop();
  }
}

void TraceRecorder::Start(std::vector<TracedRegion> regions) {
  std::lock_guard<std::mutex> lock(mu_);
  trace_ = Trace{};
  trace_.regions = std::move(regions);
  open_ = Epoch{};
  durable_.clear();
  durable_.reserve(trace_.regions.size());
  for (const TracedRegion& region : trace_.regions) {
    const uint8_t* live = reinterpret_cast<const uint8_t*>(region.base);
    durable_.emplace_back(live, live + region.size);
  }
  active_ = true;
  pmem::SetPersistObserver(this);
}

Trace TraceRecorder::Stop() {
  pmem::SetPersistObserver(nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  if (active_) {
    CloseEpochLocked();
    active_ = false;
  }
  durable_.clear();
  return std::move(trace_);
}

bool TraceRecorder::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

void TraceRecorder::OnFlushRange(const void* addr, size_t size) {
  const uintptr_t flush_lo = reinterpret_cast<uintptr_t>(addr);
  const uintptr_t flush_hi = flush_lo + size;
  std::lock_guard<std::mutex> lock(mu_);
  if (!active_) {
    return;
  }
  ++trace_.flush_calls;
  for (uint32_t i = 0; i < trace_.regions.size(); ++i) {
    const TracedRegion& region = trace_.regions[i];
    // Expand to whole region-relative cache lines (the write-back unit), the
    // same granularity the ShadowHeap uses.
    const puddles::LineSpan span =
        puddles::ClampToRegionLines(region.base, region.size, flush_lo, flush_hi);
    if (span.length == 0) {
      continue;
    }
    FlushDelta delta;
    delta.region = i;
    delta.offset = span.offset;
    const uint8_t* live = reinterpret_cast<const uint8_t*>(region.base + span.offset);
    delta.bytes.assign(live, live + span.length);
    // The flushed lines are now (pending-)durable: fold them into the model so
    // the fence-time dirty scan reports only never-flushed lines.
    std::memcpy(durable_[i].data() + span.offset, delta.bytes.data(), delta.bytes.size());
    open_.deltas.push_back(std::move(delta));
  }
}

void TraceRecorder::OnFence() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!active_) {
    return;
  }
  ++trace_.fences;
  CloseEpochLocked();
}

void TraceRecorder::CloseEpochLocked() {
  for (uint32_t i = 0; i < trace_.regions.size(); ++i) {
    const TracedRegion& region = trace_.regions[i];
    const uint8_t* live = reinterpret_cast<const uint8_t*>(region.base);
    const uint8_t* durable = durable_[i].data();
    for (size_t offset = 0; offset < region.size; offset += puddles::kCacheLineSize) {
      const size_t line = std::min(puddles::kCacheLineSize, region.size - offset);
      if (std::memcmp(live + offset, durable + offset, line) == 0) {
        continue;
      }
      DirtyLine dirty;
      dirty.region = i;
      dirty.offset = offset;
      dirty.live.assign(live + offset, live + offset + line);
      open_.dirty_at_close.push_back(std::move(dirty));
    }
  }
  trace_.epochs.push_back(std::move(open_));
  open_ = Epoch{};
}

}  // namespace crashsim
