#include "src/crashsim/pruner.h"

#include <algorithm>
#include <cstring>

#include "src/common/align.h"
#include "src/common/checksum.h"
#include "src/puddles/format.h"
#include "src/tx/log_format.h"
#include "src/tx/log_space.h"

namespace crashsim {
namespace {

uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Two independent 64-bit hashes of one line's content, keyed by its cell so
// equal bytes at different cells never cancel. Signatures are commutative
// wrapping sums of these, making single-line adjustment O(1).
struct LineHash {
  uint64_t a;
  uint64_t b;
};

LineHash HashLine(uint32_t region, uint64_t offset, const uint8_t* data, size_t size) {
  const uint64_t key = Mix((uint64_t{region} + 1) * 0x9e3779b97f4a7c15ULL ^ offset);
  const uint64_t h = puddles::Fnv1a64(data, size);
  const uint32_t c = puddles::Crc32c(data, size, static_cast<uint32_t>(key));
  LineHash out;
  out.a = Mix(h ^ key);
  out.b = Mix((h * 0x94d049bb133111ebULL) ^ ((uint64_t{c} << 32) | c) ^ ~key);
  return out;
}

}  // namespace

StateClassifier::StateClassifier(const Trace& trace, const PersistenceGraph& graph)
    : trace_(trace), graph_(graph), retirement_(trace) {}

puddles::Result<std::unique_ptr<StateClassifier>> StateClassifier::Create(
    const Trace& trace, const PersistenceGraph& graph) {
  if (trace.baseline.size() != trace.regions.size()) {
    return puddles::FailedPreconditionError("state classifier requires Trace::baseline");
  }
  std::unique_ptr<StateClassifier> classifier(new StateClassifier(trace, graph));
  classifier->image_ = trace.baseline;
  classifier->last_applied_.assign(graph.TouchedLines().size(), -1);
  for (uint32_t i = 0; i < graph.regions().size(); ++i) {
    const RegionInfo& info = graph.regions()[i];
    if (info.role == RegionRole::kLogPuddle) {
      classifier->log_regions_.emplace_back(info.uuid, i);
    } else if (info.role == RegionRole::kLogSpacePuddle) {
      classifier->logspace_regions_.push_back(i);
    }
    const uint64_t size = trace.regions[i].size;
    for (uint64_t offset = 0; offset < size; offset += puddles::kCacheLineSize) {
      const size_t line = std::min<uint64_t>(puddles::kCacheLineSize, size - offset);
      if (graph.IsLogHeapRange(i, offset, line)) {
        continue;
      }
      const LineHash h = HashLine(i, offset, classifier->image_[i].data() + offset, line);
      classifier->raw_a_ += h.a;
      classifier->raw_b_ += h.b;
    }
  }
  return classifier;
}

void StateClassifier::AdvanceBoundary(uint64_t epoch) {
  if (epoch == cur_epoch_) {
    return;
  }
  const auto& lines = graph_.TouchedLines();
  for (size_t i = 0; i < lines.size(); ++i) {
    const auto [region, offset] = lines[i];
    const std::vector<LineWrite>& timeline = *graph_.Timeline(region, offset);
    // The retired set only grows with the crash epoch, so the last retired
    // write can only move forward; scan newest-first down to the current one.
    for (int64_t j = static_cast<int64_t>(timeline.size()) - 1; j > last_applied_[i]; --j) {
      const LineWrite& write = timeline[static_cast<size_t>(j)];
      if (write.dirty || !retirement_.Retired(write.thread, write.epoch, epoch)) {
        continue;
      }
      const bool excluded = graph_.IsLogHeapRange(region, offset, write.size);
      uint8_t* cell = image_[region].data() + offset;
      if (!excluded) {
        const LineHash old_hash = HashLine(region, offset, cell, write.size);
        raw_a_ -= old_hash.a;
        raw_b_ -= old_hash.b;
      }
      std::memcpy(cell, write.bytes, write.size);
      if (!excluded) {
        const LineHash new_hash = HashLine(region, offset, cell, write.size);
        raw_a_ += new_hash.a;
        raw_b_ += new_hash.b;
      }
      last_applied_[i] = j;
      break;
    }
  }
  cur_epoch_ = epoch;
}

void StateClassifier::SnapshotLinesForWrite(uint32_t region, uint64_t offset, uint64_t size) {
  const uint64_t region_size = trace_.regions[region].size;
  uint64_t line_start = (offset / puddles::kCacheLineSize) * puddles::kCacheLineSize;
  for (; line_start < offset + size; line_start += puddles::kCacheLineSize) {
    const std::pair<uint32_t, uint64_t> key{region, line_start};
    auto it = std::lower_bound(touched_keys_.begin(), touched_keys_.end(), key);
    if (it != touched_keys_.end() && *it == key) {
      continue;  // Already snapshotted for this spec.
    }
    touched_keys_.insert(it, key);
    const size_t line = std::min<uint64_t>(puddles::kCacheLineSize, region_size - line_start);
    TouchedLine touched;
    touched.region = region;
    touched.offset = line_start;
    const uint8_t* cell = image_[region].data() + line_start;
    touched.saved.assign(cell, cell + line);
    touched_.push_back(std::move(touched));
  }
}

void StateClassifier::PatchWrite(uint32_t region, uint64_t offset, const uint8_t* data,
                                 size_t size) {
  if (size == 0) {
    return;
  }
  SnapshotLinesForWrite(region, offset, size);
  std::memcpy(image_[region].data() + offset, data, size);
}

bool StateClassifier::ModelReplay() {
  struct Target {
    uint32_t region;
    uint64_t offset;
    uint32_t size;
  };
  std::vector<Target> prior_targets;  // Applied by earlier chains.

  for (uint32_t ls_region : logspace_regions_) {
    auto ls_puddle =
        puddles::Puddle::Attach(image_[ls_region].data(), trace_.regions[ls_region].size);
    if (!ls_puddle.ok()) {
      return false;  // Cannot enumerate chains for this state.
    }
    auto view = puddles::LogSpaceView::Attach(*ls_puddle);
    if (!view.ok()) {
      return false;
    }
    for (uint32_t entry = 0; entry < view->num_entries(); ++entry) {
      const puddles::Uuid head = view->entry(entry);
      if (head.is_nil()) {
        continue;  // Recovery's puddle lookup fails; the chain is skipped.
      }
      // Walk the chain. Any link leaving the traced set is a conservative
      // fallback (the content of an untraced log varies nothing, but its
      // existence and linkage cannot be checked).
      std::vector<puddles::LogRegion> chain;
      bool chain_ok = true;
      puddles::Uuid cur = head;
      while (!cur.is_nil()) {
        int32_t region = -1;
        for (const auto& [uuid, idx] : log_regions_) {
          if (uuid == cur) {
            region = static_cast<int32_t>(idx);
            break;
          }
        }
        if (region < 0) {
          return false;  // Untraced (or dangling) chain link.
        }
        if (chain.size() > log_regions_.size()) {
          return false;  // Cycle.
        }
        auto puddle = puddles::Puddle::Attach(image_[static_cast<uint32_t>(region)].data(),
                                              trace_.regions[static_cast<uint32_t>(region)].size);
        if (!puddle.ok()) {
          chain_ok = false;  // Recovery skips the whole chain; so do we.
          break;
        }
        auto log = puddles::LogRegion::Attach(puddle->heap(), puddle->heap_size());
        if (!log.ok()) {
          chain_ok = false;
          break;
        }
        chain.push_back(*log);
        cur = log->next_log();
      }
      if (!chain_ok || chain.empty()) {
        continue;
      }

      // Mirror recovery's epoch gate (docs/epoch.md): a chain tagged at or
      // below the log space's retirement record is reset without replay. If
      // the classifier did not model this, it would merge crash states that
      // real recovery treats differently (replayed vs. gated).
      const uint64_t tag = chain.front().epoch_tag();
      if (tag != 0 && tag <= view->retired_epoch()) {
        continue;
      }
      ++stats_.chains_modeled;

      // Mirror ReplayLogChain: the head's sequence range governs the chain;
      // valid non-volatile entries split into undo (newest-first) and redo
      // (oldest-first) rolls; a truncated region keeps its parsed prefix and
      // ends the chain walk.
      const auto [seq_lo, seq_hi] = chain.front().seq_range();
      struct Pending {
        uint64_t addr;
        const uint8_t* data;
        uint32_t size;
      };
      std::vector<Pending> reverse_entries;
      std::vector<Pending> forward_entries;
      for (const puddles::LogRegion& log : chain) {
        const bool intact = log.ForEachEntry([&](const puddles::LogRegion::EntryView& view) {
          if (!view.checksum_ok) {
            return;
          }
          if (!(view.header->seq > seq_lo && view.header->seq < seq_hi)) {
            return;
          }
          if ((view.header->flags & puddles::kLogEntryVolatile) != 0) {
            return;
          }
          Pending pending{view.header->addr, view.data, view.header->size};
          if (static_cast<puddles::ReplayOrder>(view.header->order) ==
              puddles::ReplayOrder::kReverse) {
            reverse_entries.push_back(pending);
          } else {
            forward_entries.push_back(pending);
          }
        });
        if (!intact) {
          break;
        }
      }

      std::vector<Target> chain_targets;
      auto apply_entry = [&](const Pending& pending) -> bool {
        const int32_t region = graph_.RegionForAddr(pending.addr, pending.size);
        if (region < 0) {
          return false;  // Outside the traced set: unresolvable or untracked.
        }
        if (graph_.regions()[region].role != RegionRole::kData) {
          // Targets log or log-space bytes: either signature-excluded or able
          // to perturb a later chain's parse order-dependently.
          return false;
        }
        const uint64_t offset = pending.addr - graph_.regions()[region].base_addr;
        PatchWrite(static_cast<uint32_t>(region), offset, pending.data, pending.size);
        chain_targets.push_back(
            {static_cast<uint32_t>(region), offset, pending.size});
        ++stats_.entries_modeled;
        return true;
      };
      for (size_t i = reverse_entries.size(); i-- > 0;) {
        if (!apply_entry(reverse_entries[i])) {
          return false;
        }
      }
      for (const Pending& pending : forward_entries) {
        if (!apply_entry(pending)) {
          return false;
        }
      }

      // Replay order *across* chains is the daemon's registry order, which
      // the model does not reproduce — overlapping targets from different
      // chains are therefore order-dependent and fall back.
      for (const Target& t : chain_targets) {
        for (const Target& p : prior_targets) {
          if (t.region == p.region && t.offset < p.offset + p.size &&
              p.offset < t.offset + t.size) {
            return false;
          }
        }
      }
      prior_targets.insert(prior_targets.end(), chain_targets.begin(), chain_targets.end());
    }
  }
  return true;
}

ClassSignature StateClassifier::SignatureFromTouched() {
  ClassSignature sig;
  sig.a = raw_a_;
  sig.b = raw_b_;
  for (const TouchedLine& touched : touched_) {
    if (graph_.IsLogHeapRange(touched.region, touched.offset, touched.saved.size())) {
      continue;
    }
    const LineHash old_hash =
        HashLine(touched.region, touched.offset, touched.saved.data(), touched.saved.size());
    const LineHash new_hash = HashLine(touched.region, touched.offset,
                                       image_[touched.region].data() + touched.offset,
                                       touched.saved.size());
    sig.a += new_hash.a - old_hash.a;
    sig.b += new_hash.b - old_hash.b;
  }
  return sig;
}

void StateClassifier::RevertTouched() {
  for (const TouchedLine& touched : touched_) {
    std::memcpy(image_[touched.region].data() + touched.offset, touched.saved.data(),
                touched.saved.size());
  }
  touched_.clear();
  touched_keys_.clear();
}

puddles::Result<ClassSignature> StateClassifier::Classify(const CrashStateSpec& spec) {
  if (spec.epoch < cur_epoch_) {
    return puddles::InternalError("state classifier requires non-decreasing epoch order");
  }
  AdvanceBoundary(spec.epoch);
  MaterializeInFlight(trace_, spec, retirement_,
                      [this](uint32_t region, uint64_t offset, const uint8_t* data,
                             size_t size) { PatchWrite(region, offset, data, size); });
  ++stats_.classified;
  ClassSignature sig;
  if (ModelReplay()) {
    sig = SignatureFromTouched();
  } else {
    ++stats_.fallback_unique;
    sig.unique = true;
    sig.a = ++unique_counter_;
    sig.b = ~sig.a;
  }
  RevertTouched();
  return sig;
}

}  // namespace crashsim
