// Crash-state enumeration: from a persist trace, generate the legal
// post-crash durable images, bounded by a budget.
//
// The crash model (DESIGN.md §5, after the faulty-PM model of Ben-David et
// al. and Pathfinder-style systematic testing): power may fail just before
// any fence retires. At that point
//   * every flush from an earlier, fence-closed epoch is durable,
//   * each flush issued inside the open epoch is independently maybe-durable
//     (write-back may have completed before the failure), at cache-line
//     granularity, and
//   * each stored-but-unflushed dirty line is independently maybe-durable
//     (the cache may have evicted it).
// A CrashStateSpec names one member of this space: a crash epoch plus an
// optional seeded subset of the maybe-durable lines. Enumeration emits, per
// epoch, the strictest state (nothing in flight survives) and a configurable
// number of seeded eviction subsets, then down-samples deterministically to
// the state budget.
#ifndef SRC_CRASHSIM_STATE_ENUMERATOR_H_
#define SRC_CRASHSIM_STATE_ENUMERATOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/crashsim/trace.h"

namespace crashsim {

struct EnumerationOptions {
  // Hard cap on generated states (deterministic stride down-sampling).
  uint64_t max_states = 512;
  // Seeded random eviction subsets generated per epoch with in-flight lines.
  // Batched commit persistence (DESIGN.md §10) collapsed the fence count, so
  // each epoch is a wider window with more in-flight lines; five subsets per
  // epoch keeps the explored-state budget (and scenario diversity per
  // window) at least where it was under fence-per-append.
  uint32_t eviction_subsets_per_epoch = 5;
  // Probability that a maybe-durable line is included in a subset.
  double eviction_probability = 0.5;
  uint64_t seed = 1;
};

struct CrashStateSpec {
  // Crash point: the closing fence of trace.epochs[epoch] has NOT retired;
  // epochs [0, epoch) are fully durable. epoch == trace.epochs.size() is the
  // complete run (everything durable) — recovery must be a no-op.
  uint64_t epoch = 0;
  // If true, a seeded subset of the open epoch's in-flight flushes and dirty
  // lines is additionally durable.
  bool evict = false;
  uint64_t eviction_seed = 0;
  double eviction_probability = 0.5;

  std::string ToString() const;
};

std::vector<CrashStateSpec> EnumerateCrashStates(const Trace& trace,
                                                 const EnumerationOptions& options);

// Emits the durable image of `spec` as writes on top of the trace-start
// baseline. Deterministic for a given (trace, spec).
using ApplyFn =
    std::function<void(uint32_t region, uint64_t offset, const uint8_t* data, size_t size)>;
void MaterializeCrashState(const Trace& trace, const CrashStateSpec& spec, const ApplyFn& apply);

}  // namespace crashsim

#endif  // SRC_CRASHSIM_STATE_ENUMERATOR_H_
