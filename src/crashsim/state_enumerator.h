// Crash-state enumeration: from a persist trace, generate the legal
// post-crash durable images, bounded by a budget.
//
// The crash model (DESIGN.md §5, after the faulty-PM model of Ben-David et
// al. and Pathfinder-style systematic testing): power may fail just before
// any fence retires. At that point
//   * every flush from an earlier, fence-closed epoch whose issuing thread
//     has since fenced is durable (a store fence orders only the issuing
//     thread's flushes — in single-threaded traces this is simply "every
//     closed epoch"),
//   * every other already-issued flush — the open epoch's, plus any
//     un-retired flush from a thread that has not fenced again — is
//     independently maybe-durable at cache-line granularity, and
//   * each stored-but-unflushed dirty line is independently maybe-durable
//     (the cache may have evicted it).
// A CrashStateSpec names one member of this space: a crash epoch plus either
// a seeded subset of the maybe-durable lines or, for multi-threaded traces, a
// thread mask selecting whole threads whose un-retired write-backs survive
// (representative interleaving selection at epoch boundaries). Enumeration
// emits, per epoch, the strictest state (nothing in flight survives), the
// thread-mask states, and a configurable number of seeded eviction subsets,
// then down-samples deterministically to the state budget.
#ifndef SRC_CRASHSIM_STATE_ENUMERATOR_H_
#define SRC_CRASHSIM_STATE_ENUMERATOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/crashsim/trace.h"

namespace crashsim {

struct EnumerationOptions {
  // Hard cap on generated states (deterministic stride down-sampling).
  uint64_t max_states = 512;
  // Seeded random eviction subsets generated per epoch with in-flight lines.
  // Batched commit persistence (DESIGN.md §10) collapsed the fence count, so
  // each epoch is a wider window with more in-flight lines; five subsets per
  // epoch keeps the explored-state budget (and scenario diversity per
  // window) at least where it was under fence-per-append.
  uint32_t eviction_subsets_per_epoch = 5;
  // Probability that a maybe-durable line is included in a subset.
  double eviction_probability = 0.5;
  uint64_t seed = 1;
  // Multi-threaded traces: emit thread-mask states (all non-empty masks when
  // few threads are in flight, singletons + the full mask otherwise). No
  // effect on single-threaded traces.
  bool thread_interleavings = true;
};

struct CrashStateSpec {
  // Crash point: the closing fence of trace.epochs[epoch] has NOT retired;
  // all *retired* flushes from epochs [0, epoch) are durable (single-threaded
  // traces: every closed epoch in full). epoch == trace.epochs.size() is the
  // complete run (everything durable) — recovery must be a no-op.
  uint64_t epoch = 0;
  // If true, a seeded subset of the maybe-durable lines (un-retired earlier
  // flushes, the open epoch's in-flight flushes, and dirty lines) is
  // additionally durable.
  bool evict = false;
  uint64_t eviction_seed = 0;
  double eviction_probability = 0.5;
  // For non-evict states: bitmask of threads whose maybe-durable write-backs
  // (un-retired earlier flushes + open-epoch flushes) additionally survive,
  // as a unit. 0 = the strict fence-boundary state. Ignored when evict is
  // set (the seeded subset already spans all threads' in-flight lines).
  uint64_t thread_mask = 0;

  std::string ToString() const;
};

std::vector<CrashStateSpec> EnumerateCrashStates(const Trace& trace,
                                                 const EnumerationOptions& options);

// Emits the durable image of `spec` as writes on top of the trace-start
// baseline. Deterministic for a given (trace, spec).
using ApplyFn =
    std::function<void(uint32_t region, uint64_t offset, const uint8_t* data, size_t size)>;
void MaterializeCrashState(const Trace& trace, const CrashStateSpec& spec, const ApplyFn& apply);

// The non-guaranteed part of MaterializeCrashState: emits only the writes
// whose durability is NOT implied by the crash epoch — chosen un-retired
// flushes, chosen open-epoch flushes, and chosen dirty lines — in the same
// deterministic order (and with the same seeded-RNG draw sequence)
// MaterializeCrashState uses. The persistence-graph pruner applies these as a
// patch on top of an incrementally maintained boundary image; keeping one
// shared walk guarantees the model and the materializer can never diverge.
void MaterializeInFlight(const Trace& trace, const CrashStateSpec& spec,
                         const RetirementIndex& retirement, const ApplyFn& apply);

}  // namespace crashsim

#endif  // SRC_CRASHSIM_STATE_ENUMERATOR_H_
