#include "src/crashsim/state_enumerator.h"

#include <algorithm>
#include <cstdio>
#include <set>

#include "src/common/align.h"
#include "src/common/rng.h"

namespace crashsim {
namespace {

// Splits `seed` per (epoch, subset) so every spec's eviction choices are
// independent and reproducible in isolation.
uint64_t DeriveSeed(uint64_t seed, uint64_t epoch, uint32_t subset) {
  uint64_t z = seed ^ (epoch * 0x9e3779b97f4a7c15ULL) ^ (uint64_t{subset} << 32);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Threads with maybe-durable write-backs at a crash just before epoch
// `crash_epoch`'s closing fence: issuers of un-retired earlier flushes plus
// issuers of the open epoch's flushes.
std::set<uint32_t> ThreadsInFlight(const Trace& trace, const RetirementIndex& retirement,
                                   uint64_t crash_epoch) {
  std::set<uint32_t> threads;
  for (uint64_t e = 0; e < crash_epoch; ++e) {
    for (const FlushDelta& delta : trace.epochs[e].deltas) {
      if (!retirement.Retired(delta.thread, e, crash_epoch)) {
        threads.insert(delta.thread);
      }
    }
  }
  for (const FlushDelta& delta : trace.epochs[crash_epoch].deltas) {
    threads.insert(delta.thread);
  }
  return threads;
}

}  // namespace

std::string CrashStateSpec::ToString() const {
  std::string s = "epoch=" + std::to_string(epoch);
  if (evict) {
    s += " evict(seed=" + std::to_string(eviction_seed) +
         ",p=" + std::to_string(eviction_probability) + ")";
  } else if (thread_mask != 0) {
    s += " thread-mask=0x";
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%llx", static_cast<unsigned long long>(thread_mask));
    s += buf;
  } else {
    s += " fence-boundary";
  }
  return s;
}

std::vector<CrashStateSpec> EnumerateCrashStates(const Trace& trace,
                                                 const EnumerationOptions& options) {
  std::vector<CrashStateSpec> specs;
  const RetirementIndex retirement(trace);
  for (uint64_t epoch = 0; epoch <= trace.epochs.size(); ++epoch) {
    CrashStateSpec boundary;
    boundary.epoch = epoch;
    specs.push_back(boundary);
    if (epoch == trace.epochs.size()) {
      break;  // Complete run: nothing in flight to evict.
    }
    const Epoch& open = trace.epochs[epoch];
    const bool any_unretired = retirement.AnyUnretired(trace, epoch);
    if (open.deltas.empty() && open.dirty_at_close.empty() && !any_unretired) {
      continue;
    }
    // Representative interleaving selection at this epoch boundary: each
    // thread's maybe-durable write-backs survive or vanish as a unit. Small
    // in-flight sets get every non-empty mask; larger ones get singletons plus
    // the all-threads mask (seeded eviction subsets cover the mixed cases).
    if (options.thread_interleavings && trace.num_threads > 1) {
      const std::set<uint32_t> threads = ThreadsInFlight(trace, retirement, epoch);
      std::vector<uint64_t> masks;
      if (threads.size() <= 3) {
        const std::vector<uint32_t> list(threads.begin(), threads.end());
        for (uint64_t bits = 1; bits < (uint64_t{1} << list.size()); ++bits) {
          uint64_t mask = 0;
          for (size_t i = 0; i < list.size(); ++i) {
            if (bits & (uint64_t{1} << i)) {
              mask |= uint64_t{1} << list[i];
            }
          }
          masks.push_back(mask);
        }
      } else {
        uint64_t full = 0;
        for (uint32_t t : threads) {
          masks.push_back(uint64_t{1} << t);
          full |= uint64_t{1} << t;
        }
        masks.push_back(full);
      }
      for (uint64_t mask : masks) {
        CrashStateSpec spec;
        spec.epoch = epoch;
        spec.thread_mask = mask;
        specs.push_back(spec);
      }
    }
    for (uint32_t subset = 0; subset < options.eviction_subsets_per_epoch; ++subset) {
      CrashStateSpec spec;
      spec.epoch = epoch;
      spec.evict = true;
      spec.eviction_seed = DeriveSeed(options.seed, epoch, subset);
      spec.eviction_probability = options.eviction_probability;
      specs.push_back(spec);
    }
  }
  if (options.max_states != 0 && specs.size() > options.max_states) {
    // Deterministic stride sampling: keep coverage spread across the run (and
    // the specs in non-decreasing epoch order, which the pruner relies on).
    // The final spec (the complete-run image, where recovery must be a no-op)
    // is always retained.
    std::vector<CrashStateSpec> sampled;
    sampled.reserve(options.max_states);
    for (uint64_t i = 0; i + 1 < options.max_states; ++i) {
      sampled.push_back(specs[i * specs.size() / options.max_states]);
    }
    sampled.push_back(specs.back());
    specs = std::move(sampled);
  }
  return specs;
}

void MaterializeCrashState(const Trace& trace, const CrashStateSpec& spec, const ApplyFn& apply) {
  const RetirementIndex retirement(trace);
  const uint64_t closed = std::min<uint64_t>(spec.epoch, trace.epochs.size());
  for (uint64_t e = 0; e < closed; ++e) {
    for (const FlushDelta& delta : trace.epochs[e].deltas) {
      if (retirement.Retired(delta.thread, e, spec.epoch)) {
        apply(delta.region, delta.offset, delta.bytes.data(), delta.bytes.size());
      }
    }
  }
  MaterializeInFlight(trace, spec, retirement, apply);
}

void MaterializeInFlight(const Trace& trace, const CrashStateSpec& spec,
                         const RetirementIndex& retirement, const ApplyFn& apply) {
  if (spec.epoch >= trace.epochs.size()) {
    return;  // Complete run: everything was retired; nothing is in flight.
  }
  const uint64_t closed = spec.epoch;
  const Epoch& open = trace.epochs[spec.epoch];
  if (spec.evict) {
    // Each maybe-durable line survives independently. Un-retired earlier
    // flushes are drawn first (epoch order — in single-threaded traces there
    // are none, keeping the seeded draw sequence identical to the historical
    // one), then the open epoch's flushes in issue order line by line (a line
    // flushed twice can surface either write-back), then dirty lines, whose
    // fence-time content is applied last and wins when both were chosen,
    // modeling the later eviction.
    puddles::Xoshiro256 rng(spec.eviction_seed);
    for (uint64_t e = 0; e < closed; ++e) {
      for (const FlushDelta& delta : trace.epochs[e].deltas) {
        if (retirement.Retired(delta.thread, e, spec.epoch)) {
          continue;
        }
        for (size_t off = 0; off < delta.bytes.size(); off += puddles::kCacheLineSize) {
          const size_t line = std::min(puddles::kCacheLineSize, delta.bytes.size() - off);
          if (rng.NextDouble() < spec.eviction_probability) {
            apply(delta.region, delta.offset + off, delta.bytes.data() + off, line);
          }
        }
      }
    }
    for (const FlushDelta& delta : open.deltas) {
      for (size_t off = 0; off < delta.bytes.size(); off += puddles::kCacheLineSize) {
        const size_t line = std::min(puddles::kCacheLineSize, delta.bytes.size() - off);
        if (rng.NextDouble() < spec.eviction_probability) {
          apply(delta.region, delta.offset + off, delta.bytes.data() + off, line);
        }
      }
    }
    for (const DirtyLine& dirty : open.dirty_at_close) {
      if (rng.NextDouble() < spec.eviction_probability) {
        apply(dirty.region, dirty.offset, dirty.live.data(), dirty.live.size());
      }
    }
    return;
  }
  if (spec.thread_mask == 0) {
    return;  // Strict fence-boundary state.
  }
  // Thread-mask state: the selected threads' maybe-durable write-backs all
  // complete (in issue order); everyone else's vanish. Dirty lines carry no
  // thread attribution and are excluded — seeded eviction subsets cover them.
  for (uint64_t e = 0; e < closed; ++e) {
    for (const FlushDelta& delta : trace.epochs[e].deltas) {
      if (retirement.Retired(delta.thread, e, spec.epoch)) {
        continue;
      }
      if (delta.thread < 64 && (spec.thread_mask & (uint64_t{1} << delta.thread))) {
        apply(delta.region, delta.offset, delta.bytes.data(), delta.bytes.size());
      }
    }
  }
  for (const FlushDelta& delta : open.deltas) {
    if (delta.thread < 64 && (spec.thread_mask & (uint64_t{1} << delta.thread))) {
      apply(delta.region, delta.offset, delta.bytes.data(), delta.bytes.size());
    }
  }
}

}  // namespace crashsim
