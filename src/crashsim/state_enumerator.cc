#include "src/crashsim/state_enumerator.h"

#include <algorithm>

#include "src/common/align.h"
#include "src/common/rng.h"

namespace crashsim {
namespace {

// Splits `seed` per (epoch, subset) so every spec's eviction choices are
// independent and reproducible in isolation.
uint64_t DeriveSeed(uint64_t seed, uint64_t epoch, uint32_t subset) {
  uint64_t z = seed ^ (epoch * 0x9e3779b97f4a7c15ULL) ^ (uint64_t{subset} << 32);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::string CrashStateSpec::ToString() const {
  std::string s = "epoch=" + std::to_string(epoch);
  if (evict) {
    s += " evict(seed=" + std::to_string(eviction_seed) +
         ",p=" + std::to_string(eviction_probability) + ")";
  } else {
    s += " fence-boundary";
  }
  return s;
}

std::vector<CrashStateSpec> EnumerateCrashStates(const Trace& trace,
                                                 const EnumerationOptions& options) {
  std::vector<CrashStateSpec> specs;
  for (uint64_t epoch = 0; epoch <= trace.epochs.size(); ++epoch) {
    CrashStateSpec boundary;
    boundary.epoch = epoch;
    specs.push_back(boundary);
    if (epoch == trace.epochs.size()) {
      break;  // Complete run: nothing in flight to evict.
    }
    const Epoch& open = trace.epochs[epoch];
    if (open.deltas.empty() && open.dirty_at_close.empty()) {
      continue;
    }
    for (uint32_t subset = 0; subset < options.eviction_subsets_per_epoch; ++subset) {
      CrashStateSpec spec;
      spec.epoch = epoch;
      spec.evict = true;
      spec.eviction_seed = DeriveSeed(options.seed, epoch, subset);
      spec.eviction_probability = options.eviction_probability;
      specs.push_back(spec);
    }
  }
  if (options.max_states != 0 && specs.size() > options.max_states) {
    // Deterministic stride sampling: keep coverage spread across the run. The
    // final spec (the complete-run image, where recovery must be a no-op) is
    // always retained.
    std::vector<CrashStateSpec> sampled;
    sampled.reserve(options.max_states);
    for (uint64_t i = 0; i + 1 < options.max_states; ++i) {
      sampled.push_back(specs[i * specs.size() / options.max_states]);
    }
    sampled.push_back(specs.back());
    specs = std::move(sampled);
  }
  return specs;
}

void MaterializeCrashState(const Trace& trace, const CrashStateSpec& spec, const ApplyFn& apply) {
  const uint64_t closed = std::min<uint64_t>(spec.epoch, trace.epochs.size());
  for (uint64_t e = 0; e < closed; ++e) {
    for (const FlushDelta& delta : trace.epochs[e].deltas) {
      apply(delta.region, delta.offset, delta.bytes.data(), delta.bytes.size());
    }
  }
  if (!spec.evict || spec.epoch >= trace.epochs.size()) {
    return;
  }
  // Open epoch: each in-flight flushed line and each dirty line survives
  // independently. Deltas are walked in issue order, line by line, so a line
  // flushed twice in the epoch can surface either write-back; dirty-line
  // content (captured at the closing fence) is applied last and wins when
  // both were chosen, modeling the later eviction.
  puddles::Xoshiro256 rng(spec.eviction_seed);
  const Epoch& open = trace.epochs[spec.epoch];
  for (const FlushDelta& delta : open.deltas) {
    for (size_t off = 0; off < delta.bytes.size(); off += puddles::kCacheLineSize) {
      const size_t line = std::min(puddles::kCacheLineSize, delta.bytes.size() - off);
      if (rng.NextDouble() < spec.eviction_probability) {
        apply(delta.region, delta.offset + off, delta.bytes.data() + off, line);
      }
    }
  }
  for (const DirtyLine& dirty : open.dirty_at_close) {
    if (rng.NextDouble() < spec.eviction_probability) {
      apply(dirty.region, dirty.offset, dirty.live.data(), dirty.live.size());
    }
  }
}

}  // namespace crashsim
