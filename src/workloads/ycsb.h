// YCSB workload generator (Cooper et al., SoCC'10) for the Fig. 11 KV
// evaluation. Implements the standard core workloads A–F plus the paper's G:
//
//   A  50% read / 50% update          zipfian
//   B  95% read /  5% update          zipfian
//   C 100% read                       zipfian
//   D  95% read /  5% insert          latest
//   E  95% scan /  5% insert          zipfian
//   F  50% read / 50% read-modify-write  zipfian
//   G   5% read / 95% update          zipfian   (write-dominant; the standard
//      suite defines no G — this matches the paper's relative bar heights,
//      see DESIGN.md §4)
#ifndef SRC_WORKLOADS_YCSB_H_
#define SRC_WORKLOADS_YCSB_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>

#include "src/common/rng.h"

namespace workloads {

// Standard YCSB zipfian generator (Gray et al.'s algorithm): skewed item
// popularity with constant 0.99.
class ZipfianGenerator {
 public:
  explicit ZipfianGenerator(uint64_t items, double theta = 0.99)
      : items_(items), theta_(theta) {
    zetan_ = Zeta(items_);
    zeta2_ = Zeta(2);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1 - std::pow(2.0 / static_cast<double>(items_), 1 - theta_)) /
           (1 - zeta2_ / zetan_);
  }

  uint64_t Next(puddles::Xoshiro256& rng) const {
    const double u = rng.NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) {
      return 0;
    }
    if (uz < 1.0 + std::pow(0.5, theta_)) {
      return 1;
    }
    return static_cast<uint64_t>(static_cast<double>(items_) *
                                 std::pow(eta_ * u - eta_ + 1, alpha_));
  }

 private:
  double Zeta(uint64_t n) const {
    double sum = 0;
    for (uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta_);
    }
    return sum;
  }

  uint64_t items_;
  double theta_;
  double zetan_, zeta2_, alpha_, eta_;
};

enum class YcsbOp { kRead, kUpdate, kInsert, kScan, kReadModifyWrite };

enum class YcsbWorkload : char { kA = 'A', kB = 'B', kC = 'C', kD = 'D', kE = 'E', kF = 'F', kG = 'G' };

struct YcsbRequest {
  YcsbOp op;
  uint64_t key_index;
  int scan_length;
};

// Generates the operation stream for one workload over `record_count` loaded
// records. Inserts extend the key space ("latest" distribution reads near the
// insertion frontier, as in workload D).
class YcsbStream {
 public:
  YcsbStream(YcsbWorkload workload, uint64_t record_count, uint64_t seed)
      : workload_(workload),
        record_count_(record_count),
        insert_cursor_(record_count),
        zipf_(record_count),
        rng_(seed) {}

  YcsbRequest Next() {
    YcsbRequest request{};
    const uint64_t dice = rng_.Below(100);
    switch (workload_) {
      case YcsbWorkload::kA:
        request.op = dice < 50 ? YcsbOp::kRead : YcsbOp::kUpdate;
        request.key_index = ZipfKey();
        break;
      case YcsbWorkload::kB:
        request.op = dice < 95 ? YcsbOp::kRead : YcsbOp::kUpdate;
        request.key_index = ZipfKey();
        break;
      case YcsbWorkload::kC:
        request.op = YcsbOp::kRead;
        request.key_index = ZipfKey();
        break;
      case YcsbWorkload::kD:
        if (dice < 95) {
          request.op = YcsbOp::kRead;
          request.key_index = LatestKey();
        } else {
          request.op = YcsbOp::kInsert;
          request.key_index = insert_cursor_++;
        }
        break;
      case YcsbWorkload::kE:
        if (dice < 95) {
          request.op = YcsbOp::kScan;
          request.key_index = ZipfKey();
          request.scan_length = static_cast<int>(1 + rng_.Below(100));
        } else {
          request.op = YcsbOp::kInsert;
          request.key_index = insert_cursor_++;
        }
        break;
      case YcsbWorkload::kF:
        request.op = dice < 50 ? YcsbOp::kRead : YcsbOp::kReadModifyWrite;
        request.key_index = ZipfKey();
        break;
      case YcsbWorkload::kG:
        request.op = dice < 5 ? YcsbOp::kRead : YcsbOp::kUpdate;
        request.key_index = ZipfKey();
        break;
    }
    return request;
  }

  static std::string KeyFor(uint64_t index) {
    char buf[kKvKeyMaxChars];
    std::snprintf(buf, sizeof(buf), "user%016llu", static_cast<unsigned long long>(index));
    return buf;
  }

 private:
  static constexpr size_t kKvKeyMaxChars = 24;

  uint64_t ZipfKey() { return zipf_.Next(rng_) % record_count_; }

  // "Latest" distribution: skewed towards recently inserted keys.
  uint64_t LatestKey() {
    uint64_t offset = zipf_.Next(rng_) % record_count_;
    return (insert_cursor_ - 1) - offset % insert_cursor_;
  }

  YcsbWorkload workload_;
  uint64_t record_count_;
  uint64_t insert_cursor_;
  ZipfianGenerator zipf_;
  puddles::Xoshiro256 rng_;
};

}  // namespace workloads

#endif  // SRC_WORKLOADS_YCSB_H_
