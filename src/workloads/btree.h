// Order-8 B+-tree workload (paper Fig. 10): 8-byte keys and values, insert /
// delete / search, one implementation instantiated per PM library.
//
// Data lives only in leaves; internal nodes hold routing separators. Deletion
// removes the entry from its leaf without rebalancing (underflowed or empty
// leaves are permitted; separators remain valid split points), which keeps
// deletes strictly leaf-local — a common simplification in PM benchmarks,
// documented in DESIGN.md. All libraries run the identical code.
#ifndef SRC_WORKLOADS_BTREE_H_
#define SRC_WORKLOADS_BTREE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace workloads {

inline constexpr int kBTreeOrder = 8;  // Max children per node (paper: order 8).
inline constexpr int kBTreeMaxKeys = kBTreeOrder - 1;

template <typename Adapter>
class PersistentBTree {
 public:
  struct Node;
  using NodeHandle = typename Adapter::template Handle<Node>;
  using Ctx = typename Adapter::TxCtx;

  struct Node {
    NodeHandle children[kBTreeOrder];  // Internal nodes only.
    uint64_t keys[kBTreeMaxKeys];      // Leaf: stored keys; internal: separators.
    uint64_t values[kBTreeMaxKeys];    // Leaf only.
    uint16_t num_keys;
    uint16_t is_leaf;
    uint32_t reserved;
  };

  struct Root {
    NodeHandle root;
    uint64_t size;
  };

  static void RegisterTypes() {
    // The child array registers as a repeat region with its extent deduced
    // from the member type — the eight hand-counted offset entries this
    // used to take cannot drift now.
    Adapter::template RegisterType<Node>(&Node::children);
    Adapter::template RegisterType<Root>(&Root::root);
  }

  explicit PersistentBTree(Adapter adapter) : adapter_(adapter) {}

  puddles::Status Init() {
    using RootHandle = typename Adapter::template Handle<Root>;
    RootHandle existing = adapter_.template Root<Root>();
    if (!(existing == Adapter::template Null<Root>())) {
      root_ = adapter_.Get(existing);
      return puddles::OkStatus();
    }
    RETURN_IF_ERROR(adapter_.TxRun([&](Ctx& tx) -> puddles::Status {
      ASSIGN_OR_RETURN(RootHandle allocated, tx.template Alloc<Root>());
      Root* root = adapter_.Get(allocated);
      root->root = Adapter::template Null<Node>();
      root->size = 0;
      return adapter_.SetRoot(allocated);
    }));
    root_ = adapter_.Get(adapter_.template Root<Root>());
    return puddles::OkStatus();
  }

  // Fig. 10 "Search": pointer-chasing descent, read-only.
  bool Search(uint64_t key, uint64_t* value_out) const {
    NodeHandle cursor = root_->root;
    while (!IsNull(cursor)) {
      const Node* node = adapter_.Get(cursor);
      if (node->is_leaf) {
        for (int i = 0; i < node->num_keys; ++i) {
          if (node->keys[i] == key) {
            if (value_out != nullptr) {
              *value_out = node->values[i];
            }
            return true;
          }
        }
        return false;
      }
      cursor = node->children[RouteIndex(node, key)];
    }
    return false;
  }

  puddles::Status Insert(uint64_t key, uint64_t value) {
    return adapter_.TxRun(
        [&](Ctx& tx) -> puddles::Status { return InsertInTx(tx, key, value); });
  }

  puddles::Status Delete(uint64_t key) {
    return adapter_.TxRun([&](Ctx& tx) -> puddles::Status { return DeleteInTx(tx, key); });
  }

  uint64_t size() const { return root_->size; }

  // Depth-first sum of all leaf values (the Fig. 1 DF-traversal microbench).
  uint64_t SumDepthFirst() const { return SumSubtree(root_->root); }

  // Ordered range scan (YCSB-E): appends up to `count` (key, value) pairs
  // with key >= start_key in ascending order. Returns the number appended.
  // Leaves carry no sibling links, so the scan is an in-order descent pruned
  // by the routing separators.
  size_t Scan(uint64_t start_key, int count,
              std::vector<std::pair<uint64_t, uint64_t>>* out) const {
    if (count <= 0) {
      return 0;
    }
    const size_t before = out->size();
    size_t remaining = static_cast<size_t>(count);
    CollectGE(root_->root, start_key, &remaining, out);
    return out->size() - before;
  }

 private:
  static bool IsNull(const NodeHandle& handle) {
    return handle == Adapter::template Null<Node>();
  }

  // Child index for `key` in an internal node: first separator > key wins.
  static int RouteIndex(const Node* node, uint64_t key) {
    int i = 0;
    while (i < node->num_keys && key >= node->keys[i]) {
      ++i;
    }
    return i;
  }

  puddles::Result<NodeHandle> NewNode(Ctx& tx, bool leaf) {
    ASSIGN_OR_RETURN(NodeHandle handle, tx.template Alloc<Node>());
    Node* node = adapter_.Get(handle);
    node->num_keys = 0;
    node->is_leaf = leaf ? 1 : 0;
    node->reserved = 0;
    for (auto& child : node->children) {
      child = Adapter::template Null<Node>();
    }
    return handle;
  }

  // Splits full child `index` of `parent` (caller logged the parent).
  puddles::Status SplitChild(Ctx& tx, Node* parent, int index) {
    NodeHandle left_handle = parent->children[index];
    Node* left = adapter_.Get(left_handle);
    ASSIGN_OR_RETURN(NodeHandle right_handle, NewNode(tx, left->is_leaf != 0));
    Node* right = adapter_.Get(right_handle);
    RETURN_IF_ERROR(tx.Log(left));

    constexpr int kMid = kBTreeMaxKeys / 2;  // 3 for order 8.
    uint64_t separator;
    if (left->is_leaf) {
      // B+-tree leaf split: right keeps [kMid, end); separator = its first key.
      right->num_keys = static_cast<uint16_t>(kBTreeMaxKeys - kMid);
      for (int i = 0; i < right->num_keys; ++i) {
        right->keys[i] = left->keys[kMid + i];
        right->values[i] = left->values[kMid + i];
      }
      left->num_keys = kMid;
      separator = right->keys[0];
    } else {
      // Internal split: the median separator moves up.
      separator = left->keys[kMid];
      right->num_keys = static_cast<uint16_t>(kBTreeMaxKeys - kMid - 1);
      for (int i = 0; i < right->num_keys; ++i) {
        right->keys[i] = left->keys[kMid + 1 + i];
      }
      for (int i = 0; i <= right->num_keys; ++i) {
        right->children[i] = left->children[kMid + 1 + i];
      }
      left->num_keys = kMid;
    }

    for (int i = parent->num_keys; i > index; --i) {
      parent->keys[i] = parent->keys[i - 1];
      parent->children[i + 1] = parent->children[i];
    }
    parent->keys[index] = separator;
    parent->children[index + 1] = right_handle;
    parent->num_keys++;
    return puddles::OkStatus();
  }

  puddles::Status InsertInTx(Ctx& tx, uint64_t key, uint64_t value) {
    RETURN_IF_ERROR(tx.Log(root_));
    if (IsNull(root_->root)) {
      ASSIGN_OR_RETURN(NodeHandle leaf, NewNode(tx, true));
      Node* node = adapter_.Get(leaf);
      node->keys[0] = key;
      node->values[0] = value;
      node->num_keys = 1;
      root_->root = leaf;
      root_->size = 1;
      return puddles::OkStatus();
    }

    if (adapter_.Get(root_->root)->num_keys == kBTreeMaxKeys) {
      ASSIGN_OR_RETURN(NodeHandle new_root_handle, NewNode(tx, false));
      Node* new_root = adapter_.Get(new_root_handle);
      new_root->children[0] = root_->root;
      RETURN_IF_ERROR(SplitChild(tx, new_root, 0));
      root_->root = new_root_handle;
    }

    NodeHandle cursor = root_->root;
    while (true) {
      Node* node = adapter_.Get(cursor);
      if (node->is_leaf) {
        RETURN_IF_ERROR(tx.Log(node));
        int i = 0;
        while (i < node->num_keys && key > node->keys[i]) {
          ++i;
        }
        if (i < node->num_keys && node->keys[i] == key) {
          node->values[i] = value;  // Update in place.
          return puddles::OkStatus();
        }
        for (int j = node->num_keys; j > i; --j) {
          node->keys[j] = node->keys[j - 1];
          node->values[j] = node->values[j - 1];
        }
        node->keys[i] = key;
        node->values[i] = value;
        node->num_keys++;
        root_->size++;
        return puddles::OkStatus();
      }
      int i = RouteIndex(node, key);
      if (adapter_.Get(node->children[i])->num_keys == kBTreeMaxKeys) {
        RETURN_IF_ERROR(tx.Log(node));
        RETURN_IF_ERROR(SplitChild(tx, node, i));
        if (key >= node->keys[i]) {
          ++i;
        }
      }
      cursor = node->children[i];
    }
  }

  puddles::Status DeleteInTx(Ctx& tx, uint64_t key) {
    NodeHandle cursor = root_->root;
    while (!IsNull(cursor)) {
      Node* node = adapter_.Get(cursor);
      if (node->is_leaf) {
        for (int i = 0; i < node->num_keys; ++i) {
          if (node->keys[i] == key) {
            RETURN_IF_ERROR(tx.Log(node));
            for (int j = i; j + 1 < node->num_keys; ++j) {
              node->keys[j] = node->keys[j + 1];
              node->values[j] = node->values[j + 1];
            }
            node->num_keys--;
            RETURN_IF_ERROR(tx.Log(root_));
            root_->size--;
            return puddles::OkStatus();
          }
        }
        return puddles::NotFoundError("key not in tree");
      }
      cursor = node->children[RouteIndex(node, key)];
    }
    return puddles::NotFoundError("key not in tree");
  }

  void CollectGE(NodeHandle handle, uint64_t start_key, size_t* remaining,
                 std::vector<std::pair<uint64_t, uint64_t>>* out) const {
    if (IsNull(handle) || *remaining == 0) {
      return;
    }
    const Node* node = adapter_.Get(handle);
    if (node->is_leaf) {
      for (int i = 0; i < node->num_keys && *remaining != 0; ++i) {
        if (node->keys[i] >= start_key) {
          out->emplace_back(node->keys[i], node->values[i]);
          --*remaining;
        }
      }
      return;
    }
    for (int i = RouteIndex(node, start_key); i <= node->num_keys && *remaining != 0;
         ++i) {
      CollectGE(node->children[i], start_key, remaining, out);
    }
  }

  uint64_t SumSubtree(NodeHandle handle) const {
    if (IsNull(handle)) {
      return 0;
    }
    const Node* node = adapter_.Get(handle);
    uint64_t sum = 0;
    if (node->is_leaf) {
      for (int i = 0; i < node->num_keys; ++i) {
        sum += node->values[i];
      }
      return sum;
    }
    for (int i = 0; i <= node->num_keys; ++i) {
      sum += SumSubtree(node->children[i]);
    }
    return sum;
  }

  Adapter adapter_;
  Root* root_ = nullptr;
};

}  // namespace workloads

#endif  // SRC_WORKLOADS_BTREE_H_
