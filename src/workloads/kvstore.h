// KV store workload (paper Fig. 11): PMDK-simplekv-style hash map —
// fixed bucket array, chained entries, fixed-size string keys and values —
// driven by the YCSB generator. "uses fewer pointers per request by making
// extensive use of hash map and vectors" (paper §5.2), so the fat-pointer
// penalty is smaller here than in the list/tree workloads.
#ifndef SRC_WORKLOADS_KVSTORE_H_
#define SRC_WORKLOADS_KVSTORE_H_

#include <cstdint>
#include <cstring>
#include <string_view>

#include "src/common/checksum.h"
#include "src/common/status.h"

namespace workloads {

inline constexpr size_t kKvKeyMax = 24;
inline constexpr size_t kKvValueSize = 64;

template <typename Adapter>
class KvStore {
 public:
  struct Entry;
  using EntryHandle = typename Adapter::template Handle<Entry>;
  using Ctx = typename Adapter::TxCtx;

  struct Entry {
    EntryHandle next;
    uint64_t key_hash;
    char key[kKvKeyMax];
    char value[kKvValueSize];
  };

  struct BucketArray {
    EntryHandle slots[1];  // Variable length (allocated num_buckets slots).
  };
  using BucketArrayHandle = typename Adapter::template Handle<BucketArray>;

  struct Table {
    BucketArrayHandle buckets;
    uint64_t num_buckets;
    uint64_t size;
  };

  static void RegisterTypes() {
    Adapter::template RegisterType<Entry>(&Entry::next);
    // Bucket arrays are arrays-of-handles; the one-slot element registers as
    // a (single-slot) repeat region so relocation strides correctly across
    // the allocated num_buckets elements.
    Adapter::template RegisterType<BucketArray>(&BucketArray::slots);
    Adapter::template RegisterType<Table>(&Table::buckets);
  }

  explicit KvStore(Adapter adapter) : adapter_(adapter) {}

  puddles::Status Init(uint64_t num_buckets = 1 << 16) {
    using TableHandle = typename Adapter::template Handle<Table>;
    TableHandle existing = adapter_.template Root<Table>();
    if (!(existing == Adapter::template Null<Table>())) {
      table_ = adapter_.Get(existing);
      buckets_ = adapter_.Get(table_->buckets);
      return puddles::OkStatus();
    }
    RETURN_IF_ERROR(adapter_.TxRun([&](Ctx& tx) -> puddles::Status {
      ASSIGN_OR_RETURN(TableHandle table, tx.template Alloc<Table>());
      ASSIGN_OR_RETURN(BucketArrayHandle buckets,
                       tx.template Alloc<BucketArray>(num_buckets));
      Table* t = adapter_.Get(table);
      t->buckets = buckets;
      t->num_buckets = num_buckets;
      t->size = 0;
      BucketArray* b = adapter_.Get(buckets);
      for (uint64_t i = 0; i < num_buckets; ++i) {
        b->slots[i] = Adapter::template Null<Entry>();
      }
      return adapter_.SetRoot(table);
    }));
    table_ = adapter_.Get(adapter_.template Root<Table>());
    buckets_ = adapter_.Get(table_->buckets);
    return puddles::OkStatus();
  }

  // Insert-or-update (YCSB INSERT and UPDATE both land here).
  puddles::Status Put(std::string_view key, const char* value) {
    const uint64_t hash = puddles::Fnv1a64(key.data(), key.size());
    const uint64_t bucket = hash % table_->num_buckets;
    return adapter_.TxRun([&](Ctx& tx) -> puddles::Status {
      // Update in place if present.
      for (EntryHandle cursor = buckets_->slots[bucket]; !IsNull(cursor);) {
        Entry* entry = adapter_.Get(cursor);
        if (entry->key_hash == hash && key == entry->key) {
          RETURN_IF_ERROR(tx.LogRange(entry->value, kKvValueSize));
          std::memcpy(entry->value, value, kKvValueSize);
          return puddles::OkStatus();
        }
        cursor = entry->next;
      }
      // Insert at the bucket head.
      ASSIGN_OR_RETURN(EntryHandle allocated, tx.template Alloc<Entry>());
      Entry* entry = adapter_.Get(allocated);
      entry->key_hash = hash;
      std::memset(entry->key, 0, kKvKeyMax);
      std::memcpy(entry->key, key.data(), std::min(key.size(), kKvKeyMax - 1));
      std::memcpy(entry->value, value, kKvValueSize);
      RETURN_IF_ERROR(tx.LogRange(&buckets_->slots[bucket], sizeof(EntryHandle)));
      entry->next = buckets_->slots[bucket];
      buckets_->slots[bucket] = allocated;
      RETURN_IF_ERROR(tx.LogField(table_, &Table::size));
      table_->size++;
      return puddles::OkStatus();
    });
  }

  bool Get(std::string_view key, char* value_out) const {
    const uint64_t hash = puddles::Fnv1a64(key.data(), key.size());
    for (EntryHandle cursor = buckets_->slots[hash % table_->num_buckets]; !IsNull(cursor);) {
      const Entry* entry = adapter_.Get(cursor);
      if (entry->key_hash == hash && key == entry->key) {
        if (value_out != nullptr) {
          std::memcpy(value_out, entry->value, kKvValueSize);
        }
        return true;
      }
      cursor = entry->next;
    }
    return false;
  }

  puddles::Status Delete(std::string_view key) {
    const uint64_t hash = puddles::Fnv1a64(key.data(), key.size());
    const uint64_t bucket = hash % table_->num_buckets;
    return adapter_.TxRun([&](Ctx& tx) -> puddles::Status {
      EntryHandle* link = &buckets_->slots[bucket];
      for (EntryHandle cursor = *link; !IsNull(cursor);) {
        Entry* entry = adapter_.Get(cursor);
        if (entry->key_hash == hash && key == entry->key) {
          RETURN_IF_ERROR(tx.LogRange(link, sizeof(EntryHandle)));
          *link = entry->next;
          RETURN_IF_ERROR(tx.LogField(table_, &Table::size));
          table_->size--;
          return tx.Free(cursor);
        }
        link = &entry->next;
        cursor = entry->next;
      }
      return puddles::NotFoundError("key absent");
    });
  }

  // YCSB SCAN: read up to `count` entries starting at the key's bucket
  // (hash maps have no order; PMDK's simplekv benchmarks scan this way).
  uint64_t Scan(std::string_view start_key, int count) const {
    const uint64_t hash = puddles::Fnv1a64(start_key.data(), start_key.size());
    uint64_t bucket = hash % table_->num_buckets;
    uint64_t touched = 0;
    int remaining = count;
    while (remaining > 0 && bucket < table_->num_buckets) {
      for (EntryHandle cursor = buckets_->slots[bucket];
           !IsNull(cursor) && remaining > 0;) {
        const Entry* entry = adapter_.Get(cursor);
        touched += entry->value[0];
        --remaining;
        cursor = entry->next;
      }
      ++bucket;
    }
    return touched;
  }

  uint64_t size() const { return table_->size; }

 private:
  static bool IsNull(const EntryHandle& handle) {
    return handle == Adapter::template Null<Entry>();
  }

  Adapter adapter_;
  Table* table_ = nullptr;
  BucketArray* buckets_ = nullptr;
};

}  // namespace workloads

#endif  // SRC_WORKLOADS_KVSTORE_H_
