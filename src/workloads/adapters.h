// Library adapters: one uniform surface over Puddles and the four baseline
// PM libraries, so each workload (list, B-tree, KV store) is written once and
// instantiated per library — guaranteeing the Figs. 9–11 comparisons measure
// the libraries, not five different data-structure implementations.
//
// Adapter concept:
//   template <typename T> using Handle     — stored pointer representation
//   T* Get(Handle<T>)                      — translate to a native pointer
//   Handle<T> Null()                       — null handle
//   Result<Handle<T>> Alloc<T>(count)      — typed allocation
//   Status Free(Handle<T>)
//   Status Log(T* p) / LogRange(p, n)      — undo-log before modify
//   Status TxRun(fn)                       — run fn failure-atomically
//   Handle<T> Root<T>() / SetRoot(Handle)  — root object
//   static void RegisterType<T>(offsets)   — pointer map (Puddles only)
//   static void RegisterTypeArray<T>(offsets, array_offset, array_count)
//                                          — pointer map with a homogeneous
//                                            pointer-array region (wide nodes)
//   static Handle<To> HandleCast<To>(Handle<From>) — reinterpret a handle
//       (for variant node types sharing a common header, e.g. the ART)
#ifndef SRC_WORKLOADS_ADAPTERS_H_
#define SRC_WORKLOADS_ADAPTERS_H_

#include <initializer_list>

#include "src/baselines/atlas/atlas.h"
#include "src/baselines/fatptr/fatptr.h"
#include "src/baselines/gopmem/gopmem.h"
#include "src/baselines/romulus/romulus.h"
#include "src/libpuddles/libpuddles.h"

namespace workloads {

// ---- Puddles (native pointers, system-supported recovery) ----
class PuddlesAdapter {
 public:
  static constexpr const char* kName = "Libpuddles";

  template <typename T>
  using Handle = T*;

  explicit PuddlesAdapter(puddles::Pool* pool) : pool_(pool) {}

  template <typename T>
  T* Get(T* handle) const {
    return handle;
  }
  template <typename T>
  static T* Null() {
    return nullptr;
  }

  template <typename T>
  puddles::Result<T*> Alloc(size_t count = 1) {
    return pool_->Malloc<T>(count);
  }
  template <typename T>
  puddles::Status Free(T* handle) {
    return pool_->Free(handle);
  }

  template <typename T>
  puddles::Status Log(T* p) {
    return puddles::Transaction::Current()->AddUndo(p, sizeof(T));
  }
  puddles::Status LogRange(void* p, size_t n) {
    return puddles::Transaction::Current()->AddUndo(p, n);
  }

  template <typename Fn>
  puddles::Status TxRun(Fn&& fn) {
    ASSIGN_OR_RETURN(puddles::Transaction * tx, pool_->BeginTx());
    fn();
    return tx->Commit();
  }

  template <typename T>
  T* Root() {
    auto root = pool_->Root<T>();
    return root.ok() ? *root : nullptr;
  }
  template <typename T>
  puddles::Status SetRoot(T* handle) {
    return pool_->SetRoot(handle);
  }

  template <typename T>
  static void RegisterType(std::initializer_list<size_t> offsets) {
    (void)puddles::TypeRegistry::Instance().Register<T>(offsets);
  }
  template <typename T>
  static void RegisterTypeArray(std::initializer_list<size_t> offsets, size_t array_offset,
                                size_t array_count) {
    (void)puddles::TypeRegistry::Instance().RegisterWithArray<T>(offsets, array_offset,
                                                                 array_count);
  }

  template <typename To, typename From>
  static To* HandleCast(From* handle) {
    return reinterpret_cast<To*>(handle);
  }

 private:
  puddles::Pool* pool_;
};

// ---- PMDK-like (fat pointers) ----
class FatPtrAdapter {
 public:
  static constexpr const char* kName = "PMDK";

  template <typename T>
  using Handle = fatptr::FatPtr<T>;

  explicit FatPtrAdapter(fatptr::FatPool* pool) : pool_(pool) {}

  template <typename T>
  T* Get(fatptr::FatPtr<T> handle) const {
    return handle.get();  // The translated dereference of Fig. 1.
  }
  template <typename T>
  static fatptr::FatPtr<T> Null() {
    return fatptr::FatPtr<T>::Null();
  }

  template <typename T>
  puddles::Result<fatptr::FatPtr<T>> Alloc(size_t count = 1) {
    return pool_->Alloc<T>(count);
  }
  template <typename T>
  puddles::Status Free(fatptr::FatPtr<T> handle) {
    return pool_->Free(handle);
  }

  template <typename T>
  puddles::Status Log(T* p) {
    return pool_->TxAddRange(p, sizeof(T));
  }
  puddles::Status LogRange(void* p, size_t n) { return pool_->TxAddRange(p, n); }

  template <typename Fn>
  puddles::Status TxRun(Fn&& fn) {
    return pool_->TxRun(std::forward<Fn>(fn));
  }

  template <typename T>
  fatptr::FatPtr<T> Root() {
    return pool_->Root<T>();
  }
  template <typename T>
  puddles::Status SetRoot(fatptr::FatPtr<T> handle) {
    pool_->SetRoot(handle);
    return puddles::OkStatus();
  }

  template <typename T>
  static void RegisterType(std::initializer_list<size_t>) {}
  template <typename T>
  static void RegisterTypeArray(std::initializer_list<size_t>, size_t, size_t) {}

  template <typename To, typename From>
  static fatptr::FatPtr<To> HandleCast(fatptr::FatPtr<From> handle) {
    return fatptr::FatPtr<To>{handle.pool_id, handle.offset};
  }

 private:
  fatptr::FatPool* pool_;
};

// ---- Generic native-pointer adapter over Romulus / Atlas / go-pmem ----
template <typename PoolT, const char* Name>
class NativeAdapter {
 public:
  static constexpr const char* kName = Name;

  template <typename T>
  using Handle = T*;

  explicit NativeAdapter(PoolT* pool) : pool_(pool) {}

  template <typename T>
  T* Get(T* handle) const {
    return handle;
  }
  template <typename T>
  static T* Null() {
    return nullptr;
  }

  template <typename T>
  puddles::Result<T*> Alloc(size_t count = 1) {
    return pool_->template Alloc<T>(count);
  }
  template <typename T>
  puddles::Status Free(T* handle) {
    return pool_->Free(handle);
  }

  template <typename T>
  puddles::Status Log(T* p) {
    return pool_->TxAddRange(p, sizeof(T));
  }
  puddles::Status LogRange(void* p, size_t n) { return pool_->TxAddRange(p, n); }

  template <typename Fn>
  puddles::Status TxRun(Fn&& fn) {
    return pool_->TxRun(std::forward<Fn>(fn));
  }

  template <typename T>
  T* Root() {
    return pool_->template Root<T>();
  }
  template <typename T>
  puddles::Status SetRoot(T* handle) {
    pool_->SetRoot(handle);
    return puddles::OkStatus();
  }

  template <typename T>
  static void RegisterType(std::initializer_list<size_t>) {}
  template <typename T>
  static void RegisterTypeArray(std::initializer_list<size_t>, size_t, size_t) {}

  template <typename To, typename From>
  static To* HandleCast(From* handle) {
    return reinterpret_cast<To*>(handle);
  }

 private:
  PoolT* pool_;
};

inline constexpr char kRomulusName[] = "Romulus";
inline constexpr char kAtlasName[] = "Atlas";
inline constexpr char kGoPmemName[] = "go-pmem";

using RomulusAdapter = NativeAdapter<romulus::RomulusPool, kRomulusName>;
using AtlasAdapter = NativeAdapter<atlaspm::AtlasPool, kAtlasName>;
using GoPmemAdapter = NativeAdapter<gopmem::GoPmemPool, kGoPmemName>;

}  // namespace workloads

#endif  // SRC_WORKLOADS_ADAPTERS_H_
