// Library adapters: one uniform surface over Puddles and the four baseline
// PM libraries, so each workload (list, B-tree, KV store, ART) is written
// once and instantiated per library — guaranteeing the Figs. 9–11
// comparisons measure the libraries, not five different data-structure
// implementations.
//
// Adapter concept (typed transaction-context API, DESIGN.md §9):
//   template <typename T> using Handle     — stored pointer representation
//   T* Get(Handle<T>)                      — translate to a native pointer
//   Handle<T> Null()                       — null handle
//   using TxCtx = ...                      — typed transaction context
//   Status TxRun(fn)                       — fn: Status(TxCtx&); commit iff
//                                            the body returns OK, roll back
//                                            otherwise
//   ctx.Log(T* p) / ctx.LogRange(p, n)     — undo-log before modify
//   ctx.LogField(p, &T::member)            — undo-log one member
//   ctx.Set(ptr, value)                    — redo-logged deferred store
//   Result<Handle<T>> ctx.Alloc<T>(count)  — typed allocation in this tx
//   Status ctx.Free(Handle<T>)             — deferred-to-commit free
//   Handle<T> Root<T>() / SetRoot(Handle)  — root object
//   static void RegisterType<T>(&T::m...)  — pointer map from member
//       pointers (Puddles only; array members become repeat regions with
//       the extent deduced from the member type — no hand-written offsets)
//   static Handle<To> HandleCast<To>(Handle<From>) — reinterpret a handle
//       (for variant node types sharing a common header, e.g. the ART)
//
// There is deliberately no way to log or allocate without a TxCtx: the
// "undo-log outside a transaction" crash of the old thread-local surface is
// unrepresentable.
#ifndef SRC_WORKLOADS_ADAPTERS_H_
#define SRC_WORKLOADS_ADAPTERS_H_

#include <utility>

#include "src/baselines/atlas/atlas.h"
#include "src/baselines/fatptr/fatptr.h"
#include "src/baselines/gopmem/gopmem.h"
#include "src/baselines/romulus/romulus.h"
#include "src/libpuddles/libpuddles.h"

namespace workloads {

// ---- Puddles (native pointers, system-supported recovery) ----
class PuddlesAdapter {
 public:
  static constexpr const char* kName = "Libpuddles";

  template <typename T>
  using Handle = T*;

  // The real typed context: pool.Run hands the callback a puddles::Tx.
  using TxCtx = puddles::Tx;

  explicit PuddlesAdapter(puddles::Pool* pool) : pool_(pool) {}

  template <typename T>
  T* Get(T* handle) const {
    return handle;
  }
  template <typename T>
  static T* Null() {
    return nullptr;
  }

  template <typename Fn>
  puddles::Status TxRun(Fn&& fn) {
    return pool_->Run(std::forward<Fn>(fn));
  }

  template <typename T>
  T* Root() {
    auto root = pool_->Root<T>();
    return root.ok() ? *root : nullptr;
  }
  template <typename T>
  puddles::Status SetRoot(T* handle) {
    return pool_->SetRoot(handle);
  }

  template <typename T, typename... M>
  static void RegisterType(M T::*... fields) {
    (void)puddles::TypeRegistry::Instance().Register<T>(fields...);
  }

  template <typename To, typename From>
  static To* HandleCast(From* handle) {
    return reinterpret_cast<To*>(handle);
  }

 private:
  puddles::Pool* pool_;
};

// Shared typed context over the baseline pools (fatptr/Romulus/Atlas/
// go-pmem): the same call surface as puddles::Tx, implemented with each
// library's TxAddRange/Alloc/Free. `Set` is emulated as undo-log + in-place
// store — the baselines have no redo log, and their commit publishes
// in-place stores anyway, so the semantics at commit/abort match.
template <typename PoolT>
class BaselineTxCtx {
 public:
  explicit BaselineTxCtx(PoolT* pool) : pool_(pool) {}

  BaselineTxCtx(const BaselineTxCtx&) = delete;
  BaselineTxCtx& operator=(const BaselineTxCtx&) = delete;

  template <typename T>
  puddles::Status Log(T* p) {
    return pool_->TxAddRange(p, sizeof(T));
  }
  puddles::Status LogRange(void* p, size_t n) { return pool_->TxAddRange(p, n); }
  template <typename T, typename M>
  puddles::Status LogField(T* p, M T::*field) {
    return pool_->TxAddRange(&(p->*field), sizeof(M));
  }
  template <typename T>
  puddles::Status Set(T* dst, const T& value) {
    RETURN_IF_ERROR(pool_->TxAddRange(dst, sizeof(T)));
    *dst = value;
    return puddles::OkStatus();
  }

  template <typename T>
  auto Alloc(size_t count = 1) {
    return pool_->template Alloc<T>(count);
  }
  template <typename Handle>
  puddles::Status Free(Handle handle) {
    return pool_->Free(handle);
  }

 private:
  PoolT* pool_;
};

// Shared begin/body/abort-or-commit driver for the baseline adapters (the
// Puddles adapter delegates to pool.Run instead): commit iff the body
// returns OK, abort otherwise.
template <typename PoolT, typename Fn>
puddles::Status RunBaselineTx(PoolT* pool, Fn&& fn) {
  BaselineTxCtx<PoolT> ctx(pool);
  RETURN_IF_ERROR(pool->TxBegin());
  puddles::Status body = fn(ctx);
  if (!body.ok()) {
    (void)pool->TxAbort();
    return body;
  }
  return pool->TxCommit();
}

// ---- PMDK-like (fat pointers) ----
class FatPtrAdapter {
 public:
  static constexpr const char* kName = "PMDK";

  template <typename T>
  using Handle = fatptr::FatPtr<T>;

  using TxCtx = BaselineTxCtx<fatptr::FatPool>;

  explicit FatPtrAdapter(fatptr::FatPool* pool) : pool_(pool) {}

  template <typename T>
  T* Get(fatptr::FatPtr<T> handle) const {
    return handle.get();  // The translated dereference of Fig. 1.
  }
  template <typename T>
  static fatptr::FatPtr<T> Null() {
    return fatptr::FatPtr<T>::Null();
  }

  template <typename Fn>
  puddles::Status TxRun(Fn&& fn) {
    return RunBaselineTx(pool_, std::forward<Fn>(fn));
  }

  template <typename T>
  fatptr::FatPtr<T> Root() {
    return pool_->Root<T>();
  }
  template <typename T>
  puddles::Status SetRoot(fatptr::FatPtr<T> handle) {
    pool_->SetRoot(handle);
    return puddles::OkStatus();
  }

  template <typename T, typename... M>
  static void RegisterType(M T::*...) {}

  template <typename To, typename From>
  static fatptr::FatPtr<To> HandleCast(fatptr::FatPtr<From> handle) {
    return fatptr::FatPtr<To>{handle.pool_id, handle.offset};
  }

 private:
  fatptr::FatPool* pool_;
};

// ---- Generic native-pointer adapter over Romulus / Atlas / go-pmem ----
template <typename PoolT, const char* Name>
class NativeAdapter {
 public:
  static constexpr const char* kName = Name;

  template <typename T>
  using Handle = T*;

  using TxCtx = BaselineTxCtx<PoolT>;

  explicit NativeAdapter(PoolT* pool) : pool_(pool) {}

  template <typename T>
  T* Get(T* handle) const {
    return handle;
  }
  template <typename T>
  static T* Null() {
    return nullptr;
  }

  template <typename Fn>
  puddles::Status TxRun(Fn&& fn) {
    return RunBaselineTx(pool_, std::forward<Fn>(fn));
  }

  template <typename T>
  T* Root() {
    return pool_->template Root<T>();
  }
  template <typename T>
  puddles::Status SetRoot(T* handle) {
    pool_->SetRoot(handle);
    return puddles::OkStatus();
  }

  template <typename T, typename... M>
  static void RegisterType(M T::*...) {}

  template <typename To, typename From>
  static To* HandleCast(From* handle) {
    return reinterpret_cast<To*>(handle);
  }

 private:
  PoolT* pool_;
};

inline constexpr char kRomulusName[] = "Romulus";
inline constexpr char kAtlasName[] = "Atlas";
inline constexpr char kGoPmemName[] = "go-pmem";

using RomulusAdapter = NativeAdapter<romulus::RomulusPool, kRomulusName>;
using AtlasAdapter = NativeAdapter<atlaspm::AtlasPool, kAtlasName>;
using GoPmemAdapter = NativeAdapter<gopmem::GoPmemPool, kGoPmemName>;

}  // namespace workloads

#endif  // SRC_WORKLOADS_ADAPTERS_H_
