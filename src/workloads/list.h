// Singly linked list workload (paper Fig. 9): insert a new tail node, delete
// the head node, and sum the values of all nodes, each failure-atomic.
#ifndef SRC_WORKLOADS_LIST_H_
#define SRC_WORKLOADS_LIST_H_

#include <cstdint>

#include "src/common/status.h"

namespace workloads {

template <typename Adapter>
class PersistentList {
 public:
  struct Node;
  using NodeHandle = typename Adapter::template Handle<Node>;
  using Ctx = typename Adapter::TxCtx;

  struct Node {
    NodeHandle next;
    uint64_t value;
  };

  struct Head {
    NodeHandle head;
    NodeHandle tail;
    uint64_t count;
  };

  static void RegisterTypes() {
    Adapter::template RegisterType<Node>(&Node::next);
    Adapter::template RegisterType<Head>(&Head::head, &Head::tail);
  }

  using HeadHandle = typename Adapter::template Handle<Head>;

  explicit PersistentList(Adapter adapter) : adapter_(adapter) {}

  // Creates (or reopens) the list head as the pool root.
  puddles::Status Init() {
    HeadHandle existing = adapter_.template Root<Head>();
    if (!(existing == Adapter::template Null<Head>())) {
      head_ = adapter_.Get(existing);
      return puddles::OkStatus();
    }
    RETURN_IF_ERROR(adapter_.TxRun([&](Ctx& tx) -> puddles::Status {
      ASSIGN_OR_RETURN(HeadHandle allocated, tx.template Alloc<Head>());
      Head* head = adapter_.Get(allocated);
      head->head = Adapter::template Null<Node>();
      head->tail = Adapter::template Null<Node>();
      head->count = 0;
      return adapter_.SetRoot(allocated);
    }));
    head_ = adapter_.Get(adapter_.template Root<Head>());
    return puddles::OkStatus();
  }

  // Fig. 9 "Insert": append a new tail node.
  puddles::Status InsertTail(uint64_t value) {
    return adapter_.TxRun([&](Ctx& tx) -> puddles::Status {
      ASSIGN_OR_RETURN(NodeHandle handle, tx.template Alloc<Node>());
      Node* node = adapter_.Get(handle);
      node->value = value;
      node->next = Adapter::template Null<Node>();
      RETURN_IF_ERROR(tx.Log(head_));
      if (IsNull(head_->tail)) {
        head_->head = handle;
      } else {
        Node* tail = adapter_.Get(head_->tail);
        RETURN_IF_ERROR(tx.LogField(tail, &Node::next));
        tail->next = handle;
      }
      head_->tail = handle;
      head_->count++;
      return puddles::OkStatus();
    });
  }

  // Fig. 9 "Delete": remove the head node.
  puddles::Status DeleteHead() {
    if (IsNull(head_->head)) {
      return puddles::FailedPreconditionError("list empty");
    }
    return adapter_.TxRun([&](Ctx& tx) -> puddles::Status {
      NodeHandle victim = head_->head;
      Node* node = adapter_.Get(victim);
      RETURN_IF_ERROR(tx.Log(head_));
      head_->head = node->next;
      if (IsNull(head_->head)) {
        head_->tail = Adapter::template Null<Node>();
      }
      head_->count--;
      return tx.Free(victim);
    });
  }

  // Fig. 9 "Traversal": sum every node's value. Pure pointer chasing — where
  // native pointers beat fat pointers by the paper's 13.4×.
  uint64_t Sum() const {
    uint64_t sum = 0;
    for (NodeHandle cursor = head_->head; !IsNull(cursor);) {
      Node* node = adapter_.Get(cursor);
      sum += node->value;
      cursor = node->next;
    }
    return sum;
  }

  uint64_t count() const { return head_->count; }

  // Visits every node's value head-to-tail (crashsim fingerprints need the
  // exact sequence, not just the Sum() aggregate).
  template <typename Fn>
  void ForEachValue(Fn&& fn) const {
    for (NodeHandle cursor = head_->head; !IsNull(cursor);) {
      Node* node = adapter_.Get(cursor);
      fn(node->value);
      cursor = node->next;
    }
  }

 private:
  static bool IsNull(const NodeHandle& handle) {
    return handle == Adapter::template Null<Node>();
  }

  Adapter adapter_;
  Head* head_ = nullptr;
};

}  // namespace workloads

#endif  // SRC_WORKLOADS_LIST_H_
