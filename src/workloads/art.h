// Transactional persistent adaptive radix tree (Leis et al., ICDE'13) over
// the library-adapter surface: the repo's first ordered index with
// variable-sized nodes and range scans.
//
// Keys are 8-byte integers compared in big-endian byte order, so radix order
// equals numeric order. Four inner-node variants (Node4/16/48/256) grow and
// shrink as fan-out changes, and single-child paths are collapsed into the
// child's inline prefix (path compression). Leaves hold the full key, so
// lookups never reconstruct keys from the path and lazy expansion is safe.
//
// Allocation spread is deliberate: leaves, Node4 and Node16 fit the slab
// classes; Node48 (~660 B) and Node256 (~2 KiB) go to the buddy allocator —
// one index exercises both halves of the object heap. Node48/Node256 child
// arrays exceed the pointer map's kMaxPtrFields, so they register as
// PtrMapRecord repeat regions (array-member registration) and stay
// relocatable.
//
// Crash protocol: every mutation runs inside one transaction. Structural
// changes (leaf split, prefix split, node promotion/demotion, path collapse)
// build the replacement node in fresh allocations — which need no undo data —
// and publish it with a single undo-logged store of the parent's child slot
// (or the root handle). In-place mutations (sorted insert into a non-full
// node, child removal) undo-log the touched ranges first. Scans are
// read-only: they add no ordering points at all (cf. MOD) — recovery
// correctness never depends on scan-side fences.
#ifndef SRC_WORKLOADS_ART_H_
#define SRC_WORKLOADS_ART_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace workloads {

inline constexpr uint32_t kArtKeyBytes = 8;
// A compressed prefix never exceeds 7 bytes for 8-byte keys (an inner node
// always leaves at least one decision byte below it).
inline constexpr uint32_t kArtMaxPrefixLen = 8;

enum ArtNodeType : uint16_t {
  kArtNode4 = 1,
  kArtNode16 = 2,
  kArtNode48 = 3,
  kArtNode256 = 4,
  kArtLeaf = 5,
};

template <typename Adapter>
class ArtIndex {
 public:
  // Common header, first member of every node variant (type tag at offset 0
  // lets a child handle be resolved before its variant is known).
  struct NodeBase {
    uint16_t type;
    uint16_t num_children;
    uint16_t prefix_len;
    uint8_t prefix[kArtMaxPrefixLen];
    uint8_t reserved[2];
  };
  static_assert(sizeof(NodeBase) == 16, "node header must stay 16 bytes");

  using NodeHandle = typename Adapter::template Handle<NodeBase>;
  using Ctx = typename Adapter::TxCtx;

  struct Node4 {
    NodeBase base;
    uint8_t keys[4];  // Sorted; parallel to children.
    uint8_t pad[4];
    NodeHandle children[4];
  };
  struct Node16 {
    NodeBase base;
    uint8_t keys[16];  // Sorted; parallel to children.
    NodeHandle children[16];
  };
  struct Node48 {
    NodeBase base;
    uint8_t child_index[256];  // Key byte -> slot in children; 0xFF = empty.
    NodeHandle children[48];
  };
  struct Node256 {
    NodeBase base;
    NodeHandle children[256];  // Indexed directly by key byte.
  };
  struct Leaf {
    NodeBase base;
    uint64_t key;
    uint64_t value;
  };
  struct Root {
    NodeHandle root;
    uint64_t size;
  };

  static constexpr uint8_t kEmptySlot = 0xFF;

  static void RegisterTypes() {
    Adapter::template RegisterType<Root>(&Root::root);
    Adapter::template RegisterType<Leaf>();
    // Every variant's child array is a homogeneous pointer run, so they all
    // register as repeat regions (counts deduced from the array extents) —
    // for Node48/Node256 the explicit-field form is impossible anyway
    // (fan-out past kMaxPtrFields).
    Adapter::template RegisterType<Node4>(&Node4::children);
    Adapter::template RegisterType<Node16>(&Node16::children);
    Adapter::template RegisterType<Node48>(&Node48::children);
    Adapter::template RegisterType<Node256>(&Node256::children);
  }

  explicit ArtIndex(Adapter adapter) : adapter_(adapter) {}

  puddles::Status Init() {
    using RootHandle = typename Adapter::template Handle<Root>;
    RootHandle existing = adapter_.template Root<Root>();
    if (!(existing == Adapter::template Null<Root>())) {
      root_ = adapter_.Get(existing);
      return puddles::OkStatus();
    }
    RETURN_IF_ERROR(adapter_.TxRun([&](Ctx& tx) -> puddles::Status {
      ASSIGN_OR_RETURN(RootHandle allocated, tx.template Alloc<Root>());
      Root* root = adapter_.Get(allocated);
      root->root = NullNode();
      root->size = 0;
      return adapter_.SetRoot(allocated);
    }));
    root_ = adapter_.Get(adapter_.template Root<Root>());
    return puddles::OkStatus();
  }

  bool Search(uint64_t key, uint64_t* value_out) const {
    NodeHandle cursor = root_->root;
    uint32_t depth = 0;
    while (!IsNull(cursor)) {
      const NodeBase* node = adapter_.Get(cursor);
      if (node->type == kArtLeaf) {
        const Leaf* leaf = reinterpret_cast<const Leaf*>(node);
        if (leaf->key != key) {
          return false;
        }
        if (value_out != nullptr) {
          *value_out = leaf->value;
        }
        return true;
      }
      if (PrefixMismatch(node, key, depth) < node->prefix_len) {
        return false;
      }
      depth += node->prefix_len;
      const NodeHandle* slot = FindChild(node, KeyByte(key, depth));
      if (slot == nullptr) {
        return false;
      }
      cursor = *slot;
      ++depth;
    }
    return false;
  }

  puddles::Status Insert(uint64_t key, uint64_t value) {
    return adapter_.TxRun(
        [&](Ctx& tx) -> puddles::Status { return InsertInTx(tx, key, value); });
  }

  puddles::Status Erase(uint64_t key) {
    return adapter_.TxRun([&](Ctx& tx) -> puddles::Status { return EraseInTx(tx, key); });
  }

  uint64_t size() const { return root_->size; }

  // Ordered range scan: appends up to `count` (key, value) pairs with
  // key >= start_key, in ascending key order. Returns the number appended.
  size_t Scan(uint64_t start_key, int count,
              std::vector<std::pair<uint64_t, uint64_t>>* out) const {
    return ScanRange(start_key, ~uint64_t{0}, count, out);
  }

  // All keys sharing the top `prefix_bytes` bytes of `prefix_key`, in order.
  size_t ScanPrefix(uint64_t prefix_key, uint32_t prefix_bytes, int count,
                    std::vector<std::pair<uint64_t, uint64_t>>* out) const {
    if (prefix_bytes == 0 || prefix_bytes > kArtKeyBytes) {
      return ScanRange(0, ~uint64_t{0}, count, out);
    }
    const uint64_t mask = SuffixMask(prefix_bytes);
    const uint64_t lo = prefix_key & ~mask;
    return ScanRange(lo, lo | mask, count, out);
  }

  size_t ScanRange(uint64_t lo, uint64_t hi, int count,
                   std::vector<std::pair<uint64_t, uint64_t>>* out) const {
    if (count <= 0 || lo > hi) {
      return 0;
    }
    const size_t before = out->size();
    size_t remaining = static_cast<size_t>(count);
    CollectRange(root_->root, 0, 0, lo, hi, &remaining, out);
    return out->size() - before;
  }

  // Debug/test introspection: node population and shape of the tree.
  struct Stats {
    uint64_t node4 = 0;
    uint64_t node16 = 0;
    uint64_t node48 = 0;
    uint64_t node256 = 0;
    uint64_t leaves = 0;
    uint64_t prefix_bytes = 0;  // Total path-compressed bytes.
    uint32_t max_depth = 0;     // Key bytes consumed on the deepest path.
  };
  Stats CollectStats() const {
    Stats stats;
    CollectStatsFrom(root_->root, 0, &stats);
    return stats;
  }

 private:
  static bool IsNull(const NodeHandle& handle) {
    return handle == Adapter::template Null<NodeBase>();
  }
  static NodeHandle NullNode() { return Adapter::template Null<NodeBase>(); }

  static uint8_t KeyByte(uint64_t key, uint32_t depth) {
    return static_cast<uint8_t>(key >> (56 - 8 * depth));
  }

  // Bits below the top `fixed_bytes` bytes.
  static uint64_t SuffixMask(uint32_t fixed_bytes) {
    return fixed_bytes >= kArtKeyBytes ? 0 : (~uint64_t{0} >> (8 * fixed_bytes));
  }

  // First index in [0, prefix_len) where the node's prefix disagrees with
  // `key` at byte position depth+i; prefix_len when fully matched.
  static uint32_t PrefixMismatch(const NodeBase* node, uint64_t key, uint32_t depth) {
    for (uint32_t i = 0; i < node->prefix_len; ++i) {
      if (node->prefix[i] != KeyByte(key, depth + i)) {
        return i;
      }
    }
    return node->prefix_len;
  }

  static void InitBase(NodeBase* base, uint16_t type, const uint8_t* prefix,
                       uint32_t prefix_len) {
    base->type = type;
    base->num_children = 0;
    base->prefix_len = static_cast<uint16_t>(prefix_len);
    std::memset(base->prefix, 0, sizeof(base->prefix));
    if (prefix_len != 0) {
      std::memcpy(base->prefix, prefix, prefix_len);
    }
    std::memset(base->reserved, 0, sizeof(base->reserved));
  }

  puddles::Result<NodeHandle> NewLeaf(Ctx& tx, uint64_t key, uint64_t value) {
    ASSIGN_OR_RETURN(auto handle, tx.template Alloc<Leaf>());
    Leaf* leaf = adapter_.Get(handle);
    InitBase(&leaf->base, kArtLeaf, nullptr, 0);
    leaf->key = key;
    leaf->value = value;
    return Adapter::template HandleCast<NodeBase>(handle);
  }

  puddles::Result<NodeHandle> NewNode4(Ctx& tx, const uint8_t* prefix, uint32_t prefix_len) {
    ASSIGN_OR_RETURN(auto handle, tx.template Alloc<Node4>());
    Node4* node = adapter_.Get(handle);
    InitBase(&node->base, kArtNode4, prefix, prefix_len);
    std::memset(node->keys, 0, sizeof(node->keys));
    std::memset(node->pad, 0, sizeof(node->pad));
    for (auto& child : node->children) {
      child = NullNode();
    }
    return Adapter::template HandleCast<NodeBase>(handle);
  }

  NodeBase* Base(NodeHandle handle) const { return adapter_.Get(handle); }

  // Frees a node already unlinked from the tree. A failure here can only
  // leak the node — never un-publish it — so it must not turn a completed
  // mutation into an error after tree state was modified.
  void FreeDetached(Ctx& tx, NodeHandle handle) { (void)tx.Free(handle); }

  // Slot holding the child for `byte`, or nullptr. Non-const twin below.
  const NodeHandle* FindChild(const NodeBase* node, uint8_t byte) const {
    switch (node->type) {
      case kArtNode4: {
        const Node4* n = reinterpret_cast<const Node4*>(node);
        for (uint16_t i = 0; i < node->num_children; ++i) {
          if (n->keys[i] == byte) {
            return &n->children[i];
          }
        }
        return nullptr;
      }
      case kArtNode16: {
        const Node16* n = reinterpret_cast<const Node16*>(node);
        for (uint16_t i = 0; i < node->num_children; ++i) {
          if (n->keys[i] == byte) {
            return &n->children[i];
          }
        }
        return nullptr;
      }
      case kArtNode48: {
        const Node48* n = reinterpret_cast<const Node48*>(node);
        if (n->child_index[byte] == kEmptySlot) {
          return nullptr;
        }
        return &n->children[n->child_index[byte]];
      }
      case kArtNode256: {
        const Node256* n = reinterpret_cast<const Node256*>(node);
        return IsNull(n->children[byte]) ? nullptr : &n->children[byte];
      }
      default:
        return nullptr;
    }
  }
  NodeHandle* FindChild(NodeBase* node, uint8_t byte) {
    return const_cast<NodeHandle*>(
        FindChild(static_cast<const NodeBase*>(node), byte));
  }

  // Publishes `child` as the replacement for the edge `byte` under `parent`
  // (or as the new root when parent is null) with one undo-logged store.
  puddles::Status ReplaceChild(Ctx& tx, NodeHandle parent, uint8_t byte, NodeHandle child) {
    if (IsNull(parent)) {
      RETURN_IF_ERROR(tx.LogField(root_, &Root::root));
      root_->root = child;
      return puddles::OkStatus();
    }
    NodeBase* node = Base(parent);
    NodeHandle* slot = FindChild(node, byte);
    if (slot == nullptr) {
      return puddles::InternalError("art: parent slot vanished during replace");
    }
    RETURN_IF_ERROR(tx.LogRange(slot, sizeof(NodeHandle)));
    *slot = child;
    return puddles::OkStatus();
  }

  // Sorted insert into a Node4/Node16 key/child pair (caller logged `node`
  // or owns it fresh).
  template <typename NodeT>
  static void InsertSorted(NodeT* node, uint8_t byte, NodeHandle child) {
    int pos = 0;
    while (pos < node->base.num_children && node->keys[pos] < byte) {
      ++pos;
    }
    for (int i = node->base.num_children; i > pos; --i) {
      node->keys[i] = node->keys[i - 1];
      node->children[i] = node->children[i - 1];
    }
    node->keys[pos] = byte;
    node->children[pos] = child;
    node->base.num_children++;
  }

  // Adds `child` under edge `byte`, promoting the node to the next variant
  // when full (4 -> 16 -> 48 -> 256). The promoted copy is fresh; the old
  // node is published out via the parent slot and freed.
  puddles::Status AddChild(Ctx& tx, NodeHandle node_handle, NodeHandle parent,
                           uint8_t parent_byte, uint8_t byte, NodeHandle child) {
    NodeBase* node = Base(node_handle);
    switch (node->type) {
      case kArtNode4: {
        Node4* n = reinterpret_cast<Node4*>(node);
        if (node->num_children < 4) {
          RETURN_IF_ERROR(tx.Log(n));
          InsertSorted(n, byte, child);
          return puddles::OkStatus();
        }
        ASSIGN_OR_RETURN(auto grown, tx.template Alloc<Node16>());
        Node16* g = adapter_.Get(grown);
        InitBase(&g->base, kArtNode16, node->prefix, node->prefix_len);
        std::memset(g->keys, 0, sizeof(g->keys));
        for (auto& c : g->children) {
          c = NullNode();
        }
        for (uint16_t i = 0; i < 4; ++i) {
          g->keys[i] = n->keys[i];
          g->children[i] = n->children[i];
        }
        g->base.num_children = 4;
        InsertSorted(g, byte, child);
        RETURN_IF_ERROR(ReplaceChild(tx, parent, parent_byte,
                                     Adapter::template HandleCast<NodeBase>(grown)));
        FreeDetached(tx, node_handle);
        return puddles::OkStatus();
      }
      case kArtNode16: {
        Node16* n = reinterpret_cast<Node16*>(node);
        if (node->num_children < 16) {
          RETURN_IF_ERROR(tx.Log(n));
          InsertSorted(n, byte, child);
          return puddles::OkStatus();
        }
        ASSIGN_OR_RETURN(auto grown, tx.template Alloc<Node48>());
        Node48* g = adapter_.Get(grown);
        InitBase(&g->base, kArtNode48, node->prefix, node->prefix_len);
        std::memset(g->child_index, kEmptySlot, sizeof(g->child_index));
        for (auto& c : g->children) {
          c = NullNode();
        }
        for (uint16_t i = 0; i < 16; ++i) {
          g->child_index[n->keys[i]] = static_cast<uint8_t>(i);
          g->children[i] = n->children[i];
        }
        g->child_index[byte] = 16;
        g->children[16] = child;
        g->base.num_children = 17;
        RETURN_IF_ERROR(ReplaceChild(tx, parent, parent_byte,
                                     Adapter::template HandleCast<NodeBase>(grown)));
        FreeDetached(tx, node_handle);
        return puddles::OkStatus();
      }
      case kArtNode48: {
        Node48* n = reinterpret_cast<Node48*>(node);
        if (node->num_children < 48) {
          RETURN_IF_ERROR(tx.LogRange(&n->base, sizeof(NodeBase)));
          RETURN_IF_ERROR(tx.LogRange(&n->child_index[byte], 1));
          RETURN_IF_ERROR(tx.LogRange(&n->children[node->num_children], sizeof(NodeHandle)));
          n->children[node->num_children] = child;
          n->child_index[byte] = static_cast<uint8_t>(node->num_children);
          n->base.num_children++;
          return puddles::OkStatus();
        }
        ASSIGN_OR_RETURN(auto grown, tx.template Alloc<Node256>());
        Node256* g = adapter_.Get(grown);
        InitBase(&g->base, kArtNode256, node->prefix, node->prefix_len);
        for (auto& c : g->children) {
          c = NullNode();
        }
        for (int b = 0; b < 256; ++b) {
          if (n->child_index[b] != kEmptySlot) {
            g->children[b] = n->children[n->child_index[b]];
          }
        }
        g->children[byte] = child;
        g->base.num_children = 49;
        RETURN_IF_ERROR(ReplaceChild(tx, parent, parent_byte,
                                     Adapter::template HandleCast<NodeBase>(grown)));
        FreeDetached(tx, node_handle);
        return puddles::OkStatus();
      }
      case kArtNode256: {
        Node256* n = reinterpret_cast<Node256*>(node);
        RETURN_IF_ERROR(tx.LogRange(&n->base, sizeof(NodeBase)));
        RETURN_IF_ERROR(tx.LogRange(&n->children[byte], sizeof(NodeHandle)));
        n->children[byte] = child;
        n->base.num_children++;
        return puddles::OkStatus();
      }
      default:
        return puddles::InternalError("art: add child on a leaf");
    }
  }

  puddles::Status InsertInTx(Ctx& tx, uint64_t key, uint64_t value) {
    if (IsNull(root_->root)) {
      ASSIGN_OR_RETURN(NodeHandle leaf, NewLeaf(tx, key, value));
      RETURN_IF_ERROR(tx.Log(root_));
      root_->root = leaf;
      root_->size = 1;
      return puddles::OkStatus();
    }

    NodeHandle parent = NullNode();
    uint8_t parent_byte = 0;
    NodeHandle cursor = root_->root;
    uint32_t depth = 0;
    while (true) {
      NodeBase* node = Base(cursor);
      if (node->type == kArtLeaf) {
        Leaf* leaf = reinterpret_cast<Leaf*>(node);
        if (leaf->key == key) {
          RETURN_IF_ERROR(tx.LogField(leaf, &Leaf::value));
          leaf->value = value;
          return puddles::OkStatus();
        }
        // Lazy-expansion split: a Node4 carrying the keys' common prefix
        // from `depth`, with the old and new leaves below it.
        uint32_t common = 0;
        while (KeyByte(leaf->key, depth + common) == KeyByte(key, depth + common)) {
          ++common;
        }
        uint8_t prefix[kArtMaxPrefixLen] = {};
        for (uint32_t i = 0; i < common; ++i) {
          prefix[i] = KeyByte(key, depth + i);
        }
        ASSIGN_OR_RETURN(NodeHandle split, NewNode4(tx, prefix, common));
        ASSIGN_OR_RETURN(NodeHandle new_leaf, NewLeaf(tx, key, value));
        Node4* s = reinterpret_cast<Node4*>(Base(split));
        InsertSorted(s, KeyByte(leaf->key, depth + common), cursor);
        InsertSorted(s, KeyByte(key, depth + common), new_leaf);
        RETURN_IF_ERROR(ReplaceChild(tx, parent, parent_byte, split));
        RETURN_IF_ERROR(tx.LogField(root_, &Root::size));
        root_->size++;
        return puddles::OkStatus();
      }

      const uint32_t mismatch = PrefixMismatch(node, key, depth);
      if (mismatch < node->prefix_len) {
        // Prefix split: new Node4 keeps the matched part; the old node keeps
        // the remainder past the diverging byte (which becomes its edge).
        // Publish before shrinking the old node's prefix: every step that
        // can fail (allocation, slot lookup) runs before the first in-place
        // mutation, so an error never commits a half-split.
        ASSIGN_OR_RETURN(NodeHandle split, NewNode4(tx, node->prefix, mismatch));
        ASSIGN_OR_RETURN(NodeHandle new_leaf, NewLeaf(tx, key, value));
        const uint8_t edge = node->prefix[mismatch];
        Node4* s = reinterpret_cast<Node4*>(Base(split));
        InsertSorted(s, edge, cursor);
        InsertSorted(s, KeyByte(key, depth + mismatch), new_leaf);
        RETURN_IF_ERROR(ReplaceChild(tx, parent, parent_byte, split));
        RETURN_IF_ERROR(tx.LogRange(node, sizeof(NodeBase)));
        const uint32_t remainder = node->prefix_len - mismatch - 1;
        std::memmove(node->prefix, node->prefix + mismatch + 1, remainder);
        std::memset(node->prefix + remainder, 0, kArtMaxPrefixLen - remainder);
        node->prefix_len = static_cast<uint16_t>(remainder);
        RETURN_IF_ERROR(tx.LogField(root_, &Root::size));
        root_->size++;
        return puddles::OkStatus();
      }

      depth += node->prefix_len;
      const uint8_t byte = KeyByte(key, depth);
      NodeHandle* slot = FindChild(node, byte);
      if (slot != nullptr) {
        parent = cursor;
        parent_byte = byte;
        cursor = *slot;
        ++depth;
        continue;
      }
      ASSIGN_OR_RETURN(NodeHandle new_leaf, NewLeaf(tx, key, value));
      RETURN_IF_ERROR(AddChild(tx, cursor, parent, parent_byte, byte, new_leaf));
      RETURN_IF_ERROR(tx.LogField(root_, &Root::size));
      root_->size++;
      return puddles::OkStatus();
    }
  }

  // Demotion fill helpers: copy the (post-removal) source into a target the
  // caller allocated *before* mutating the source, so an allocation failure
  // can never strand a half-removed node.
  void FillDemoted(Node4* d, const Node16* n) {
    InitBase(&d->base, kArtNode4, n->base.prefix, n->base.prefix_len);
    std::memset(d->keys, 0, sizeof(d->keys));
    std::memset(d->pad, 0, sizeof(d->pad));
    for (auto& c : d->children) {
      c = NullNode();
    }
    for (uint16_t i = 0; i < n->base.num_children; ++i) {
      d->keys[i] = n->keys[i];
      d->children[i] = n->children[i];
    }
    d->base.num_children = n->base.num_children;
  }

  void FillDemoted(Node16* d, const Node48* n) {
    InitBase(&d->base, kArtNode16, n->base.prefix, n->base.prefix_len);
    std::memset(d->keys, 0, sizeof(d->keys));
    for (auto& c : d->children) {
      c = NullNode();
    }
    uint16_t out = 0;
    for (int b = 0; b < 256; ++b) {
      if (n->child_index[b] != kEmptySlot) {
        d->keys[out] = static_cast<uint8_t>(b);
        d->children[out] = n->children[n->child_index[b]];
        ++out;
      }
    }
    d->base.num_children = out;
  }

  void FillDemoted(Node48* d, const Node256* n) {
    InitBase(&d->base, kArtNode48, n->base.prefix, n->base.prefix_len);
    std::memset(d->child_index, kEmptySlot, sizeof(d->child_index));
    for (auto& c : d->children) {
      c = NullNode();
    }
    uint16_t out = 0;
    for (int b = 0; b < 256; ++b) {
      if (!IsNull(n->children[b])) {
        d->child_index[b] = static_cast<uint8_t>(out);
        d->children[out] = n->children[b];
        ++out;
      }
    }
    d->base.num_children = out;
  }

  // Collapses a single-child Node4 into its child: a leaf is hoisted as-is;
  // an inner child absorbs (node prefix + edge byte) at the front of its own
  // prefix. Publishes the survivor under `parent` and frees the node.
  puddles::Status CollapseNode4(Ctx& tx, NodeHandle node_handle, NodeHandle parent,
                                uint8_t parent_byte) {
    Node4* n = reinterpret_cast<Node4*>(Base(node_handle));
    const uint8_t edge = n->keys[0];
    NodeHandle survivor = n->children[0];
    NodeBase* child = Base(survivor);
    if (child->type != kArtLeaf) {
      const uint32_t shift = n->base.prefix_len + 1;
      if (child->prefix_len + shift > kArtMaxPrefixLen) {
        return puddles::InternalError("art: merged prefix exceeds the key length");
      }
      RETURN_IF_ERROR(tx.LogRange(child, sizeof(NodeBase)));
      std::memmove(child->prefix + shift, child->prefix, child->prefix_len);
      std::memcpy(child->prefix, n->base.prefix, n->base.prefix_len);
      child->prefix[n->base.prefix_len] = edge;
      child->prefix_len = static_cast<uint16_t>(child->prefix_len + shift);
    }
    RETURN_IF_ERROR(ReplaceChild(tx, parent, parent_byte, survivor));
    FreeDetached(tx, node_handle);
    return puddles::OkStatus();
  }

  // Removes the child under `byte`, demoting when occupancy drops well below
  // the next smaller variant (hysteresis) and collapsing single-child Node4s.
  puddles::Status RemoveChild(Ctx& tx, NodeHandle node_handle, NodeHandle parent,
                              uint8_t parent_byte, uint8_t byte) {
    NodeBase* node = Base(node_handle);
    switch (node->type) {
      case kArtNode4: {
        Node4* n = reinterpret_cast<Node4*>(node);
        int pos = 0;
        while (pos < node->num_children && n->keys[pos] != byte) {
          ++pos;
        }
        if (pos == node->num_children) {
          return puddles::InternalError("art: removed edge missing from Node4");
        }
        RETURN_IF_ERROR(tx.Log(n));
        for (int i = pos; i + 1 < node->num_children; ++i) {
          n->keys[i] = n->keys[i + 1];
          n->children[i] = n->children[i + 1];
        }
        node->num_children--;
        if (node->num_children == 1) {
          return CollapseNode4(tx, node_handle, parent, parent_byte);
        }
        return puddles::OkStatus();
      }
      case kArtNode16: {
        Node16* n = reinterpret_cast<Node16*>(node);
        int pos = 0;
        while (pos < node->num_children && n->keys[pos] != byte) {
          ++pos;
        }
        if (pos == node->num_children) {
          return puddles::InternalError("art: removed edge missing from Node16");
        }
        const bool demote = node->num_children == 4;  // 3 after removal.
        typename Adapter::template Handle<Node4> shrunk{};
        if (demote) {
          ASSIGN_OR_RETURN(shrunk, tx.template Alloc<Node4>());
        }
        RETURN_IF_ERROR(tx.Log(n));
        for (int i = pos; i + 1 < node->num_children; ++i) {
          n->keys[i] = n->keys[i + 1];
          n->children[i] = n->children[i + 1];
        }
        node->num_children--;
        if (demote) {
          FillDemoted(adapter_.Get(shrunk), n);
          RETURN_IF_ERROR(ReplaceChild(tx, parent, parent_byte,
                                       Adapter::template HandleCast<NodeBase>(shrunk)));
          FreeDetached(tx, node_handle);
        }
        return puddles::OkStatus();
      }
      case kArtNode48: {
        Node48* n = reinterpret_cast<Node48*>(node);
        if (n->child_index[byte] == kEmptySlot) {
          return puddles::InternalError("art: removed edge missing from Node48");
        }
        const bool demote = node->num_children == 13;  // 12 after removal.
        typename Adapter::template Handle<Node16> shrunk{};
        if (demote) {
          ASSIGN_OR_RETURN(shrunk, tx.template Alloc<Node16>());
        }
        RETURN_IF_ERROR(tx.Log(n));
        const uint8_t slot = n->child_index[byte];
        const uint8_t last = static_cast<uint8_t>(node->num_children - 1);
        if (slot != last) {
          // Keep slots dense: move the last slot into the hole.
          n->children[slot] = n->children[last];
          for (int b = 0; b < 256; ++b) {
            if (n->child_index[b] == last) {
              n->child_index[b] = slot;
              break;
            }
          }
        }
        n->children[last] = NullNode();
        n->child_index[byte] = kEmptySlot;
        node->num_children--;
        if (demote) {
          FillDemoted(adapter_.Get(shrunk), n);
          RETURN_IF_ERROR(ReplaceChild(tx, parent, parent_byte,
                                       Adapter::template HandleCast<NodeBase>(shrunk)));
          FreeDetached(tx, node_handle);
        }
        return puddles::OkStatus();
      }
      case kArtNode256: {
        Node256* n = reinterpret_cast<Node256*>(node);
        const bool demote = node->num_children == 41;  // 40 after removal.
        typename Adapter::template Handle<Node48> shrunk{};
        if (demote) {
          ASSIGN_OR_RETURN(shrunk, tx.template Alloc<Node48>());
        }
        RETURN_IF_ERROR(tx.LogRange(&n->base, sizeof(NodeBase)));
        RETURN_IF_ERROR(tx.LogRange(&n->children[byte], sizeof(NodeHandle)));
        n->children[byte] = NullNode();
        node->num_children--;
        if (demote) {
          FillDemoted(adapter_.Get(shrunk), n);
          RETURN_IF_ERROR(ReplaceChild(tx, parent, parent_byte,
                                       Adapter::template HandleCast<NodeBase>(shrunk)));
          FreeDetached(tx, node_handle);
        }
        return puddles::OkStatus();
      }
      default:
        return puddles::InternalError("art: remove child on a leaf");
    }
  }

  puddles::Status EraseInTx(Ctx& tx, uint64_t key) {
    NodeHandle grand = NullNode();
    uint8_t grand_byte = 0;
    NodeHandle parent = NullNode();
    uint8_t parent_byte = 0;
    NodeHandle cursor = root_->root;
    uint32_t depth = 0;
    while (!IsNull(cursor)) {
      NodeBase* node = Base(cursor);
      if (node->type == kArtLeaf) {
        Leaf* leaf = reinterpret_cast<Leaf*>(node);
        if (leaf->key != key) {
          return puddles::NotFoundError("key not in tree");
        }
        if (IsNull(parent)) {
          RETURN_IF_ERROR(tx.Log(root_));
          root_->root = NullNode();
          root_->size--;
          FreeDetached(tx, cursor);
          return puddles::OkStatus();
        }
        RETURN_IF_ERROR(RemoveChild(tx, parent, grand, grand_byte, parent_byte));
        RETURN_IF_ERROR(tx.LogField(root_, &Root::size));
        root_->size--;
        FreeDetached(tx, cursor);
        return puddles::OkStatus();
      }
      if (PrefixMismatch(node, key, depth) < node->prefix_len) {
        return puddles::NotFoundError("key not in tree");
      }
      depth += node->prefix_len;
      const uint8_t byte = KeyByte(key, depth);
      NodeHandle* slot = FindChild(node, byte);
      if (slot == nullptr) {
        return puddles::NotFoundError("key not in tree");
      }
      grand = parent;
      grand_byte = parent_byte;
      parent = cursor;
      parent_byte = byte;
      cursor = *slot;
      ++depth;
    }
    return puddles::NotFoundError("key not in tree");
  }

  // In-order collection of [lo, hi], pruning subtrees by their key bounds.
  // `acc` carries the key bytes fixed so far (top `depth` bytes).
  void CollectRange(NodeHandle handle, uint32_t depth, uint64_t acc, uint64_t lo,
                    uint64_t hi, size_t* remaining,
                    std::vector<std::pair<uint64_t, uint64_t>>* out) const {
    if (IsNull(handle) || *remaining == 0) {
      return;
    }
    const NodeBase* node = adapter_.Get(handle);
    if (node->type == kArtLeaf) {
      const Leaf* leaf = reinterpret_cast<const Leaf*>(node);
      if (leaf->key >= lo && leaf->key <= hi) {
        out->emplace_back(leaf->key, leaf->value);
        --*remaining;
      }
      return;
    }
    for (uint32_t i = 0; i < node->prefix_len; ++i) {
      acc |= static_cast<uint64_t>(node->prefix[i]) << (56 - 8 * depth);
      ++depth;
    }
    if (acc > hi || (acc | SuffixMask(depth)) < lo) {
      return;  // Subtree bounds miss the range.
    }
    auto visit = [&](uint8_t byte, NodeHandle child) {
      if (*remaining == 0) {
        return;
      }
      const uint64_t child_acc = acc | (static_cast<uint64_t>(byte) << (56 - 8 * depth));
      if (child_acc > hi || (child_acc | SuffixMask(depth + 1)) < lo) {
        return;
      }
      CollectRange(child, depth + 1, child_acc, lo, hi, remaining, out);
    };
    switch (node->type) {
      case kArtNode4: {
        const Node4* n = reinterpret_cast<const Node4*>(node);
        for (uint16_t i = 0; i < node->num_children; ++i) {
          visit(n->keys[i], n->children[i]);
        }
        break;
      }
      case kArtNode16: {
        const Node16* n = reinterpret_cast<const Node16*>(node);
        for (uint16_t i = 0; i < node->num_children; ++i) {
          visit(n->keys[i], n->children[i]);
        }
        break;
      }
      case kArtNode48: {
        const Node48* n = reinterpret_cast<const Node48*>(node);
        for (int b = 0; b < 256; ++b) {
          if (n->child_index[b] != kEmptySlot) {
            visit(static_cast<uint8_t>(b), n->children[n->child_index[b]]);
          }
        }
        break;
      }
      case kArtNode256: {
        const Node256* n = reinterpret_cast<const Node256*>(node);
        for (int b = 0; b < 256; ++b) {
          if (!IsNull(n->children[b])) {
            visit(static_cast<uint8_t>(b), n->children[b]);
          }
        }
        break;
      }
      default:
        break;
    }
  }

  void CollectStatsFrom(NodeHandle handle, uint32_t depth, Stats* stats) const {
    if (IsNull(handle)) {
      return;
    }
    const NodeBase* node = adapter_.Get(handle);
    if (node->type == kArtLeaf) {
      stats->leaves++;
      stats->max_depth = std::max(stats->max_depth, depth);
      return;
    }
    stats->prefix_bytes += node->prefix_len;
    const uint32_t below = depth + node->prefix_len + 1;
    auto recurse = [&](NodeHandle child) { CollectStatsFrom(child, below, stats); };
    switch (node->type) {
      case kArtNode4: {
        stats->node4++;
        const Node4* n = reinterpret_cast<const Node4*>(node);
        for (uint16_t i = 0; i < node->num_children; ++i) {
          recurse(n->children[i]);
        }
        break;
      }
      case kArtNode16: {
        stats->node16++;
        const Node16* n = reinterpret_cast<const Node16*>(node);
        for (uint16_t i = 0; i < node->num_children; ++i) {
          recurse(n->children[i]);
        }
        break;
      }
      case kArtNode48: {
        stats->node48++;
        const Node48* n = reinterpret_cast<const Node48*>(node);
        for (int b = 0; b < 256; ++b) {
          if (n->child_index[b] != kEmptySlot) {
            recurse(n->children[n->child_index[b]]);
          }
        }
        break;
      }
      case kArtNode256: {
        stats->node256++;
        const Node256* n = reinterpret_cast<const Node256*>(node);
        for (int b = 0; b < 256; ++b) {
          if (!IsNull(n->children[b])) {
            recurse(n->children[b]);
          }
        }
        break;
      }
      default:
        break;
    }
  }

  Adapter adapter_;
  Root* root_ = nullptr;
};

}  // namespace workloads

#endif  // SRC_WORKLOADS_ART_H_
