#include "src/common/log.h"

#include <cstdarg>
#include <cstdlib>

namespace puddles {
namespace {

LogLevel ReadLevelFromEnv() {
  const char* env = std::getenv("PUDDLES_LOG_LEVEL");
  if (env == nullptr) {
    return LogLevel::kError;
  }
  int value = std::atoi(env);
  if (value < 0) {
    value = 0;
  }
  if (value > 4) {
    value = 4;
  }
  return static_cast<LogLevel>(value);
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

LogLevel DiagLogLevel() {
  static const LogLevel level = ReadLevelFromEnv();
  return level;
}

bool DiagLogEnabled(LogLevel level) {
  return static_cast<int>(level) <= static_cast<int>(DiagLogLevel());
}

void DiagLogWrite(LogLevel level, const char* file, int line, const char* format, ...) {
  // Strip leading directories for compactness.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  std::fprintf(stderr, "[puddles %s %s:%d] ", LevelTag(level), base, line);
  va_list args;
  va_start(args, format);
  std::vfprintf(stderr, format, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace puddles
