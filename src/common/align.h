// Alignment and size arithmetic shared by allocators, log layout, and the PM
// substrate.
#ifndef SRC_COMMON_ALIGN_H_
#define SRC_COMMON_ALIGN_H_

#include <cstddef>
#include <cstdint>

namespace puddles {

inline constexpr size_t kCacheLineSize = 64;
inline constexpr size_t kPageSize = 4096;

constexpr bool IsPowerOfTwo(uint64_t value) { return value != 0 && (value & (value - 1)) == 0; }

constexpr uint64_t AlignUp(uint64_t value, uint64_t alignment) {
  return (value + alignment - 1) & ~(alignment - 1);
}

constexpr uint64_t AlignDown(uint64_t value, uint64_t alignment) {
  return value & ~(alignment - 1);
}

constexpr bool IsAligned(uint64_t value, uint64_t alignment) {
  return (value & (alignment - 1)) == 0;
}

inline bool IsAligned(const void* ptr, uint64_t alignment) {
  return IsAligned(reinterpret_cast<uintptr_t>(ptr), alignment);
}

// Index of the highest set bit; Log2Floor(1) == 0. Undefined for 0.
constexpr int Log2Floor(uint64_t value) { return 63 - __builtin_clzll(value); }

constexpr int Log2Ceil(uint64_t value) {
  return IsPowerOfTwo(value) ? Log2Floor(value) : Log2Floor(value) + 1;
}

constexpr uint64_t NextPowerOfTwo(uint64_t value) {
  return IsPowerOfTwo(value) ? value : 1ULL << (Log2Floor(value) + 1);
}

// Intersects the absolute byte range [lo, hi) with the region
// [region_start, region_start + region_size) and expands the overlap to whole
// region-relative cache lines. Returns {offset, length} within the region;
// length 0 means no overlap. The ShadowHeap flush/crash walks and the
// crashsim trace recorder all use this, and MUST agree on what "one line"
// means (DESIGN.md §2) — that is why the logic lives here, once.
struct LineSpan {
  size_t offset = 0;
  size_t length = 0;
};

inline LineSpan ClampToRegionLines(uintptr_t region_start, size_t region_size, uintptr_t lo,
                                   uintptr_t hi) {
  const uintptr_t region_end = region_start + region_size;
  const uintptr_t clamped_lo = lo > region_start ? lo : region_start;
  const uintptr_t clamped_hi = hi < region_end ? hi : region_end;
  if (clamped_lo >= clamped_hi) {
    return {};
  }
  const size_t off_lo = AlignDown(clamped_lo - region_start, kCacheLineSize);
  size_t off_hi = AlignUp(clamped_hi - region_start, kCacheLineSize);
  if (off_hi > region_size) {
    off_hi = region_size;
  }
  return {off_lo, off_hi - off_lo};
}

}  // namespace puddles

#endif  // SRC_COMMON_ALIGN_H_
