// Alignment and size arithmetic shared by allocators, log layout, and the PM
// substrate.
#ifndef SRC_COMMON_ALIGN_H_
#define SRC_COMMON_ALIGN_H_

#include <cstddef>
#include <cstdint>

namespace puddles {

inline constexpr size_t kCacheLineSize = 64;
inline constexpr size_t kPageSize = 4096;

constexpr bool IsPowerOfTwo(uint64_t value) { return value != 0 && (value & (value - 1)) == 0; }

constexpr uint64_t AlignUp(uint64_t value, uint64_t alignment) {
  return (value + alignment - 1) & ~(alignment - 1);
}

constexpr uint64_t AlignDown(uint64_t value, uint64_t alignment) {
  return value & ~(alignment - 1);
}

constexpr bool IsAligned(uint64_t value, uint64_t alignment) {
  return (value & (alignment - 1)) == 0;
}

inline bool IsAligned(const void* ptr, uint64_t alignment) {
  return IsAligned(reinterpret_cast<uintptr_t>(ptr), alignment);
}

// Index of the highest set bit; Log2Floor(1) == 0. Undefined for 0.
constexpr int Log2Floor(uint64_t value) { return 63 - __builtin_clzll(value); }

constexpr int Log2Ceil(uint64_t value) {
  return IsPowerOfTwo(value) ? Log2Floor(value) : Log2Floor(value) + 1;
}

constexpr uint64_t NextPowerOfTwo(uint64_t value) {
  return IsPowerOfTwo(value) ? value : 1ULL << (Log2Floor(value) + 1);
}

}  // namespace puddles

#endif  // SRC_COMMON_ALIGN_H_
