// Checksums used by the log format (paper Fig. 6: "the checksum, like in PMDK,
// allows the recovery code to identify and skip any entry that only partially
// persisted because of a crash") and by the persistent hashmap.
#ifndef SRC_COMMON_CHECKSUM_H_
#define SRC_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace puddles {

// CRC-32C (Castagnoli). Software slice-by-8 implementation; `seed` allows
// incremental computation over discontiguous buffers.
uint32_t Crc32c(const void* data, size_t size, uint32_t seed = 0);

// 64-bit FNV-1a. Used for type identifiers and hash table mixing.
constexpr uint64_t kFnv64OffsetBasis = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnv64Prime = 0x100000001b3ULL;

constexpr uint64_t Fnv1a64(const char* data, size_t size, uint64_t seed = kFnv64OffsetBasis) {
  uint64_t hash = seed;
  for (size_t i = 0; i < size; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= kFnv64Prime;
  }
  return hash;
}

uint64_t Fnv1a64(const void* data, size_t size);

}  // namespace puddles

#endif  // SRC_COMMON_CHECKSUM_H_
