// Seeded-bug injection hooks for crashsim differential testing.
//
// Each flag re-opens one real, historically fixed crash-consistency hole so
// tests can assert that brute-force exploration AND pruned exploration both
// catch it (equal bug-finding power at fewer explored states). Every flag
// defaults to off and must never be set outside tests: with all flags false
// the guarded code compiles to the fixed behavior, and the branches sit on
// cold paths (one per log append / allocation), so production cost is a
// predictable never-taken branch.
//
// Inline atomics rather than a registry: the hooks must be togglable from a
// test without linking extra machinery, and reads may happen concurrently
// with a test thread flipping them (relaxed is enough — tests set flags only
// while the workload is quiescent).
#ifndef SRC_COMMON_BUG_HOOKS_H_
#define SRC_COMMON_BUG_HOOKS_H_

#include <atomic>

namespace puddles {
namespace bug_hooks {

// Re-opens the torn-append hole: entry checksums are computed with a constant
// generation instead of the log's current generation. A slot's stale
// previous-incarnation content can then masquerade as a fresh append after a
// crash, replaying garbage into user data.
inline std::atomic<bool> torn_append_unbound_checksum{false};

// Re-opens the free-list-elision hole: BuddyAllocator::Allocate skips the
// protective undo capture of the returned block's FreeNode bytes. If the
// transaction aborts (or crashes before commit), rollback re-links the block
// into the free list but the caller's stores over the node survive — the
// free list now chains through caller data.
inline std::atomic<bool> buddy_skip_protective_capture{false};

}  // namespace bug_hooks
}  // namespace puddles

#endif  // SRC_COMMON_BUG_HOOKS_H_
