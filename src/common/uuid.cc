#include "src/common/uuid.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <random>

namespace puddles {
namespace {

// Process-wide generator state. Seeded lazily from std::random_device and the
// address of a local (ASLR entropy); subsequent draws are splitmix64 steps,
// which is plenty for identifier uniqueness.
std::atomic<uint64_t> g_uuid_state{0};

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t NextRandom64() {
  uint64_t state = g_uuid_state.load(std::memory_order_relaxed);
  if (state == 0) {
    std::random_device rd;
    uint64_t seed = (static_cast<uint64_t>(rd()) << 32) ^ rd();
    seed ^= reinterpret_cast<uintptr_t>(&state);
    g_uuid_state.compare_exchange_strong(state, seed | 1, std::memory_order_relaxed);
    state = g_uuid_state.load(std::memory_order_relaxed);
  }
  uint64_t next;
  uint64_t value;
  do {
    next = state;
    value = SplitMix64(next);
  } while (!g_uuid_state.compare_exchange_weak(state, next, std::memory_order_relaxed));
  return value;
}

int HexNibble(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

}  // namespace

Uuid Uuid::Generate() {
  Uuid id;
  id.hi = NextRandom64();
  id.lo = NextRandom64();
  // Stamp RFC 4122 version (4) and variant (10xx) bits so the rendering is a
  // well-formed v4 UUID.
  id.hi = (id.hi & ~0xf000ULL) | 0x4000ULL;
  id.lo = (id.lo & ~(0xc0ULL << 56)) | (0x80ULL << 56);
  return id;
}

std::string Uuid::ToString() const {
  // Layout: hi = time_low(32) time_mid(16) time_hi_and_version(16),
  //         lo = clock_seq(16) node(48), matching the textual 8-4-4-4-12 split.
  char buf[37];
  std::snprintf(buf, sizeof(buf), "%08x-%04x-%04x-%04x-%012llx",
                static_cast<uint32_t>(hi >> 32), static_cast<uint32_t>((hi >> 16) & 0xffff),
                static_cast<uint32_t>(hi & 0xffff), static_cast<uint32_t>(lo >> 48),
                static_cast<unsigned long long>(lo & 0xffffffffffffULL));
  return std::string(buf, 36);
}

std::optional<Uuid> Uuid::Parse(std::string_view text) {
  if (text.size() != 36 || text[8] != '-' || text[13] != '-' || text[18] != '-' ||
      text[23] != '-') {
    return std::nullopt;
  }
  uint64_t words[2] = {0, 0};
  int nibbles = 0;
  for (char c : text) {
    if (c == '-') {
      continue;
    }
    int v = HexNibble(c);
    if (v < 0) {
      return std::nullopt;
    }
    words[nibbles / 16] = (words[nibbles / 16] << 4) | static_cast<uint64_t>(v);
    ++nibbles;
  }
  if (nibbles != 32) {
    return std::nullopt;
  }
  return Uuid{words[0], words[1]};
}

}  // namespace puddles
