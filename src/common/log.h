// Minimal leveled diagnostic logging. Controlled by the PUDDLES_LOG_LEVEL
// environment variable (0=off, 1=error, 2=warn, 3=info, 4=debug; default 1).
// This is *diagnostic* logging for humans — the persistence logs live in
// src/tx/.
#ifndef SRC_COMMON_LOG_H_
#define SRC_COMMON_LOG_H_

#include <cstdio>

namespace puddles {

enum class LogLevel : int { kOff = 0, kError = 1, kWarn = 2, kInfo = 3, kDebug = 4 };

// Current threshold, read once from the environment.
LogLevel DiagLogLevel();

bool DiagLogEnabled(LogLevel level);

void DiagLogWrite(LogLevel level, const char* file, int line, const char* format, ...)
    __attribute__((format(printf, 4, 5)));

#define PUD_LOG(level, ...)                                                     \
  do {                                                                          \
    if (::puddles::DiagLogEnabled(level)) {                                     \
      ::puddles::DiagLogWrite(level, __FILE__, __LINE__, __VA_ARGS__);          \
    }                                                                           \
  } while (0)

#define PUD_LOG_ERROR(...) PUD_LOG(::puddles::LogLevel::kError, __VA_ARGS__)
#define PUD_LOG_WARN(...) PUD_LOG(::puddles::LogLevel::kWarn, __VA_ARGS__)
#define PUD_LOG_INFO(...) PUD_LOG(::puddles::LogLevel::kInfo, __VA_ARGS__)
#define PUD_LOG_DEBUG(...) PUD_LOG(::puddles::LogLevel::kDebug, __VA_ARGS__)

}  // namespace puddles

#endif  // SRC_COMMON_LOG_H_
