// Compile-time type names and 64-bit type identifiers.
//
// Paper §4.2: "every allocation in Puddles is associated with a type ID,
// stored as a 64-bit identifier in the allocator's metadata ... Every class or
// struct with a unique name corresponds to a unique type in Puddles." The
// paper derives IDs from the Itanium-ABI typeid; we derive them from the type
// name embedded in __PRETTY_FUNCTION__, which is equally stable across
// gcc/clang and additionally available at compile time (constexpr), so IDs can
// be baked into allocation fast paths.
#ifndef SRC_COMMON_TYPE_NAME_H_
#define SRC_COMMON_TYPE_NAME_H_

#include <cstdint>
#include <string_view>

#include "src/common/checksum.h"

// Probe type used to calibrate the __PRETTY_FUNCTION__ decoration. It lives at
// global scope because gcc renders types from the calibrating function's own
// namespace unqualified, which would skew the measured prefix length.
struct PuddlesTypeNameProbe;

namespace puddles {

using TypeId = uint64_t;

constexpr TypeId kInvalidTypeId = 0;
// Raw, untyped allocations (e.g. byte buffers) use this well-known ID; the
// relocation engine knows they contain no pointers.
constexpr TypeId kRawBytesTypeId = 1;

namespace internal {

template <typename T>
constexpr std::string_view RawTypeName() {
#if defined(__clang__) || defined(__GNUC__)
  return __PRETTY_FUNCTION__;
#else
#error "unsupported compiler: TypeName requires gcc or clang"
#endif
}

// Computes the prefix/suffix decoration lengths once, using the global probe
// type whose rendered name we know exactly.
constexpr std::string_view kProbeName = "PuddlesTypeNameProbe";

constexpr size_t TypeNamePrefixLength() {
  return RawTypeName<::PuddlesTypeNameProbe>().find(kProbeName);
}

constexpr size_t TypeNameSuffixLength() {
  return RawTypeName<::PuddlesTypeNameProbe>().size() - TypeNamePrefixLength() -
         kProbeName.size();
}

}  // namespace internal

// The fully qualified name of T, e.g. "puddles::LogHeader".
template <typename T>
constexpr std::string_view TypeName() {
  constexpr std::string_view raw = internal::RawTypeName<T>();
  constexpr size_t prefix = internal::TypeNamePrefixLength();
  constexpr size_t suffix = internal::TypeNameSuffixLength();
  return raw.substr(prefix, raw.size() - prefix - suffix);
}

// 64-bit FNV-1a hash of the fully qualified type name. Stable across
// translation units and across gcc/clang builds of the same source.
template <typename T>
constexpr TypeId TypeIdOf() {
  constexpr std::string_view name = TypeName<T>();
  constexpr TypeId id = Fnv1a64(name.data(), name.size());
  // IDs 0 and 1 are reserved sentinels; a real type hashing onto them would be
  // astronomically unlucky, but remap deterministically just in case.
  return (id == kInvalidTypeId || id == kRawBytesTypeId) ? id + 2 : id;
}

}  // namespace puddles

#endif  // SRC_COMMON_TYPE_NAME_H_
