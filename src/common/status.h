// Lightweight Status / Result error-handling types used across the Puddles
// codebase. Modeled on absl::Status but self-contained: fallible APIs return
// Status (or Result<T>), and exceptions are reserved for unwinding user
// transaction bodies on abort.
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace puddles {

enum class StatusCode : int32_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kPermissionDenied = 4,
  kOutOfMemory = 5,
  kFailedPrecondition = 6,
  kInternal = 7,
  kUnavailable = 8,
  kDataLoss = 9,
  kIoError = 10,
  kAborted = 11,
  kOutOfRange = 12,
  kUnimplemented = 13,
};

std::string_view StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy on the success path (no allocation
// when OK). Error states carry a code and a human-readable message.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK.
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk && "error Status must carry a non-OK code");
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Renders "CODE: message" for diagnostics.
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status OkStatus() { return Status(); }

Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status PermissionDeniedError(std::string message);
Status OutOfMemoryError(std::string message);
Status FailedPreconditionError(std::string message);
Status InternalError(std::string message);
Status UnavailableError(std::string message);
Status DataLossError(std::string message);
Status IoError(std::string message);
Status AbortedError(std::string message);
Status OutOfRangeError(std::string message);
Status UnimplementedError(std::string message);

// Builds an IoError that appends strerror(errno_value).
Status ErrnoError(std::string_view prefix, int errno_value);

// A value-or-error container. `Result<T> r = ...; if (!r.ok()) return r.status();`
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : value_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(value_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status ok_status;
    if (ok()) {
      return ok_status;
    }
    return std::get<Status>(value_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(value_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> value_;
};

// Propagates errors: `RETURN_IF_ERROR(DoThing());`
#define RETURN_IF_ERROR(expr)                  \
  do {                                         \
    ::puddles::Status _st = (expr);            \
    if (!_st.ok()) {                           \
      return _st;                              \
    }                                          \
  } while (0)

#define PUDDLES_CONCAT_INNER_(a, b) a##b
#define PUDDLES_CONCAT_(a, b) PUDDLES_CONCAT_INNER_(a, b)

// Unwraps a Result<T> into `lhs`, returning the error on failure:
//   ASSIGN_OR_RETURN(auto fd, OpenFile(path));
#define ASSIGN_OR_RETURN(lhs, expr)                                  \
  auto PUDDLES_CONCAT_(_result_, __LINE__) = (expr);                 \
  if (!PUDDLES_CONCAT_(_result_, __LINE__).ok()) {                   \
    return PUDDLES_CONCAT_(_result_, __LINE__).status();             \
  }                                                                  \
  lhs = std::move(PUDDLES_CONCAT_(_result_, __LINE__)).value()

}  // namespace puddles

#endif  // SRC_COMMON_STATUS_H_
