// 128-bit universally unique identifiers. Every puddle, pool, and log space in
// the system is identified by one (paper §4.3). Random UUIDs are v4-style,
// generated from a per-process seeded xorshift stream mixed with entropy from
// std::random_device.
#ifndef SRC_COMMON_UUID_H_
#define SRC_COMMON_UUID_H_

#include <cstdint>
#include <cstring>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace puddles {

struct Uuid {
  uint64_t hi = 0;
  uint64_t lo = 0;

  static Uuid Nil() { return Uuid{}; }

  // Generates a fresh random (version 4) UUID.
  static Uuid Generate();

  // Parses the canonical 8-4-4-4-12 hex form. Returns nullopt on malformed input.
  static std::optional<Uuid> Parse(std::string_view text);

  bool is_nil() const { return hi == 0 && lo == 0; }

  // Canonical lowercase 8-4-4-4-12 rendering.
  std::string ToString() const;

  friend bool operator==(const Uuid& a, const Uuid& b) = default;
  friend auto operator<=>(const Uuid& a, const Uuid& b) = default;
};

static_assert(sizeof(Uuid) == 16, "Uuid must be exactly 128 bits for on-PM layouts");

struct UuidHash {
  size_t operator()(const Uuid& id) const {
    // hi/lo are already uniformly random for generated UUIDs; fold them.
    return static_cast<size_t>(id.hi ^ (id.lo * 0x9e3779b97f4a7c15ULL));
  }
};

}  // namespace puddles

#endif  // SRC_COMMON_UUID_H_
