#include "src/common/checksum.h"

#include <array>

namespace puddles {
namespace {

// Slice-by-8 CRC-32C tables, generated once at static-init time.
struct Crc32cTables {
  uint32_t table[8][256];

  Crc32cTables() {
    constexpr uint32_t kPoly = 0x82f63b78;  // Reflected Castagnoli polynomial.
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      table[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (int slice = 1; slice < 8; ++slice) {
        table[slice][i] = (table[slice - 1][i] >> 8) ^ table[0][table[slice - 1][i] & 0xff];
      }
    }
  }
};

const Crc32cTables& Tables() {
  static const Crc32cTables tables;
  return tables;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t size, uint32_t seed) {
  const auto& t = Tables().table;
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  while (size >= 8) {
    uint32_t lo = crc ^ (static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
                         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24);
    crc = t[7][lo & 0xff] ^ t[6][(lo >> 8) & 0xff] ^ t[5][(lo >> 16) & 0xff] ^
          t[4][(lo >> 24) & 0xff] ^ t[3][p[4]] ^ t[2][p[5]] ^ t[1][p[6]] ^ t[0][p[7]];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xff];
  }
  return ~crc;
}

uint64_t Fnv1a64(const void* data, size_t size) {
  return Fnv1a64(static_cast<const char*>(data), size);
}

}  // namespace puddles
