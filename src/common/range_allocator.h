// Pure-bookkeeping interval allocator over [base, base+size). Puddled uses one
// to hand out non-overlapping base addresses in the global puddle space; it
// never touches memory itself (contrast pmem::AddressReservation, which owns
// the local PROT_NONE mapping).
#ifndef SRC_COMMON_RANGE_ALLOCATOR_H_
#define SRC_COMMON_RANGE_ALLOCATOR_H_

#include <cstdint>
#include <map>

#include "src/common/align.h"
#include "src/common/status.h"

namespace puddles {

class RangeAllocator {
 public:
  RangeAllocator() = default;
  RangeAllocator(uint64_t base, uint64_t size) : base_(base), size_(size) {}

  uint64_t base() const { return base_; }
  uint64_t size() const { return size_; }

  // First-fit allocation of a page-aligned range.
  puddles::Result<uint64_t> Allocate(uint64_t size) {
    size = AlignUp(size, kPageSize);
    uint64_t cursor = base_;
    for (const auto& [start, len] : claimed_) {
      if (start - cursor >= size) {
        claimed_[cursor] = size;
        return cursor;
      }
      cursor = start + len;
    }
    if (base_ + size_ - cursor >= size) {
      claimed_[cursor] = size;
      return cursor;
    }
    return OutOfMemoryError("address range exhausted");
  }

  puddles::Status Claim(uint64_t addr, uint64_t size) {
    size = AlignUp(size, kPageSize);
    if (addr < base_ || addr + size > base_ + size_) {
      return OutOfRangeError("claim outside managed range");
    }
    if (!IsFree(addr, size)) {
      return AlreadyExistsError("range already claimed");
    }
    claimed_[addr] = size;
    return OkStatus();
  }

  bool IsFree(uint64_t addr, uint64_t size) const {
    if (addr < base_ || addr + size > base_ + size_) {
      return false;
    }
    auto it = claimed_.upper_bound(addr);
    if (it != claimed_.begin()) {
      auto prev = std::prev(it);
      if (prev->first + prev->second > addr) {
        return false;
      }
    }
    return it == claimed_.end() || it->first >= addr + size;
  }

  puddles::Status Free(uint64_t addr) {
    auto it = claimed_.find(addr);
    if (it == claimed_.end()) {
      return NotFoundError("range not claimed");
    }
    claimed_.erase(it);
    return OkStatus();
  }

  // The claimed range containing `addr`, if any: returns {start, size}.
  puddles::Result<std::pair<uint64_t, uint64_t>> Containing(uint64_t addr) const {
    auto it = claimed_.upper_bound(addr);
    if (it == claimed_.begin()) {
      return NotFoundError("no range contains address");
    }
    auto prev = std::prev(it);
    if (addr >= prev->first + prev->second) {
      return NotFoundError("no range contains address");
    }
    return std::make_pair(prev->first, prev->second);
  }

  size_t count() const { return claimed_.size(); }

 private:
  uint64_t base_ = 0;
  uint64_t size_ = 0;
  std::map<uint64_t, uint64_t> claimed_;
};

}  // namespace puddles

#endif  // SRC_COMMON_RANGE_ALLOCATOR_H_
