// Deterministic, fast pseudo-random generators for workloads and tests.
// Workload generators (YCSB, crash-point sampling) must be reproducible from a
// seed, so they use these rather than std::random_device-backed engines.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

namespace puddles {

// xoshiro256**-style generator: tiny state, passes BigCrush, and satisfies
// UniformRandomBitGenerator so it can drive <random> distributions.
class Xoshiro256 {
 public:
  using result_type = uint64_t;

  explicit Xoshiro256(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 expansion of the seed into the four state words.
    uint64_t s = seed;
    for (auto& word : state_) {
      s += 0x9e3779b97f4a7c15ULL;
      uint64_t z = s;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  uint64_t operator()() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). Uses the widening-multiply trick (Lemire).
  uint64_t Below(uint64_t bound) {
    return static_cast<uint64_t>((static_cast<__uint128_t>((*this)()) * bound) >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace puddles

#endif  // SRC_COMMON_RNG_H_
