#include "src/ipc/epoll.h"

#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

namespace puddles {

EpollSet::~EpollSet() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

EpollSet::EpollSet(EpollSet&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

EpollSet& EpollSet::operator=(EpollSet&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

puddles::Result<EpollSet> EpollSet::Create() {
  int fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (fd < 0) {
    return ErrnoError("epoll_create1", errno);
  }
  EpollSet set;
  set.fd_ = fd;
  return set;
}

puddles::Status EpollSet::Add(int fd, uint32_t events, uint64_t tag) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = tag;
  if (::epoll_ctl(fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return ErrnoError("epoll_ctl(ADD)", errno);
  }
  return OkStatus();
}

puddles::Status EpollSet::Mod(int fd, uint32_t events, uint64_t tag) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = tag;
  if (::epoll_ctl(fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return ErrnoError("epoll_ctl(MOD)", errno);
  }
  return OkStatus();
}

puddles::Status EpollSet::Del(int fd) {
  if (::epoll_ctl(fd_, EPOLL_CTL_DEL, fd, nullptr) != 0) {
    return ErrnoError("epoll_ctl(DEL)", errno);
  }
  return OkStatus();
}

puddles::Result<int> EpollSet::Wait(epoll_event* events, int max_events, int timeout_ms) {
  int n = ::epoll_wait(fd_, events, max_events, timeout_ms);
  if (n < 0) {
    if (errno == EINTR) {
      return 0;
    }
    return ErrnoError("epoll_wait", errno);
  }
  return n;
}

EventFd::~EventFd() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

EventFd::EventFd(EventFd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

EventFd& EventFd::operator=(EventFd&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

puddles::Result<EventFd> EventFd::Create() {
  int fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (fd < 0) {
    return ErrnoError("eventfd", errno);
  }
  EventFd efd;
  efd.fd_ = fd;
  return efd;
}

void EventFd::Signal() {
  uint64_t one = 1;
  // EAGAIN means the counter is already saturated — the wakeup is pending
  // either way, so any failure here is ignorable by design.
  [[maybe_unused]] ssize_t n = ::write(fd_, &one, sizeof(one));
}

void EventFd::Drain() {
  uint64_t value;
  [[maybe_unused]] ssize_t n = ::read(fd_, &value, sizeof(value));
}

}  // namespace puddles
