#include "src/ipc/unix_socket.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace puddles {
namespace {

constexpr size_t kMaxFdsPerMessage = 16;

puddles::Status FillAddr(const std::string& path, sockaddr_un* addr) {
  if (path.size() + 1 > sizeof(addr->sun_path)) {
    return InvalidArgumentError("socket path too long");
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return OkStatus();
}

// Reads exactly `size` bytes (no fds expected on continuation reads).
puddles::Status ReadExact(int fd, uint8_t* out, size_t size, std::vector<int>* fds) {
  size_t done = 0;
  while (done < size) {
    msghdr msg{};
    iovec iov{out + done, size - done};
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    alignas(cmsghdr) char control[CMSG_SPACE(sizeof(int) * kMaxFdsPerMessage)];
    msg.msg_control = control;
    msg.msg_controllen = sizeof(control);

    ssize_t n = ::recvmsg(fd, &msg, MSG_CMSG_CLOEXEC);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoError("recvmsg", errno);
    }
    if (n == 0) {
      return UnavailableError("peer closed connection");
    }
    if (fds != nullptr) {
      for (cmsghdr* cmsg = CMSG_FIRSTHDR(&msg); cmsg != nullptr;
           cmsg = CMSG_NXTHDR(&msg, cmsg)) {
        if (cmsg->cmsg_level == SOL_SOCKET && cmsg->cmsg_type == SCM_RIGHTS) {
          size_t count = (cmsg->cmsg_len - CMSG_LEN(0)) / sizeof(int);
          const int* received = reinterpret_cast<const int*>(CMSG_DATA(cmsg));
          for (size_t i = 0; i < count; ++i) {
            fds->push_back(received[i]);
          }
        }
      }
    }
    done += static_cast<size_t>(n);
  }
  return OkStatus();
}

puddles::Status SetFdNonBlocking(int fd, bool enable) {
  int flags = ::fcntl(fd, F_GETFL);
  if (flags < 0) {
    return ErrnoError("fcntl(F_GETFL)", errno);
  }
  int wanted = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (wanted != flags && ::fcntl(fd, F_SETFL, wanted) != 0) {
    return ErrnoError("fcntl(F_SETFL)", errno);
  }
  return OkStatus();
}

}  // namespace

UnixSocket::~UnixSocket() { Close(); }

UnixSocket::UnixSocket(UnixSocket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

UnixSocket& UnixSocket::operator=(UnixSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void UnixSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

puddles::Result<UnixSocket> UnixSocket::Connect(const std::string& path) {
  sockaddr_un addr;
  RETURN_IF_ERROR(FillAddr(path, &addr));
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return ErrnoError("socket", errno);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int saved = errno;
    ::close(fd);
    return ErrnoError("connect " + path, saved);
  }
  return UnixSocket(fd);
}

puddles::Result<std::pair<UnixSocket, UnixSocket>> UnixSocket::Pair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0, fds) != 0) {
    return ErrnoError("socketpair", errno);
  }
  return std::make_pair(UnixSocket(fds[0]), UnixSocket(fds[1]));
}

puddles::Status UnixSocket::Send(const std::vector<uint8_t>& bytes,
                                 const std::vector<int>& fds) {
  if (!valid()) {
    return FailedPreconditionError("socket closed");
  }
  if (fds.size() > kMaxFdsPerMessage) {
    return InvalidArgumentError("too many fds in one message");
  }
  uint32_t length = static_cast<uint32_t>(bytes.size());
  uint8_t header[4];
  std::memcpy(header, &length, 4);

  msghdr msg{};
  iovec iov[2] = {{header, 4},
                  {const_cast<uint8_t*>(bytes.data()), bytes.size()}};
  msg.msg_iov = iov;
  msg.msg_iovlen = bytes.empty() ? 1 : 2;

  alignas(cmsghdr) char control[CMSG_SPACE(sizeof(int) * kMaxFdsPerMessage)];
  if (!fds.empty()) {
    std::memset(control, 0, sizeof(control));
    msg.msg_control = control;
    msg.msg_controllen = CMSG_SPACE(sizeof(int) * fds.size());
    cmsghdr* cmsg = CMSG_FIRSTHDR(&msg);
    cmsg->cmsg_level = SOL_SOCKET;
    cmsg->cmsg_type = SCM_RIGHTS;
    cmsg->cmsg_len = CMSG_LEN(sizeof(int) * fds.size());
    std::memcpy(CMSG_DATA(cmsg), fds.data(), sizeof(int) * fds.size());
  }

  size_t total = 4 + bytes.size();
  size_t sent = 0;
  while (sent < total) {
    ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return ErrnoError("sendmsg", errno);
    }
    sent += static_cast<size_t>(n);
    if (sent >= total) {
      break;
    }
    // Advance the iov past what was consumed; fds were attached to the first
    // fragment only.
    msg.msg_control = nullptr;
    msg.msg_controllen = 0;
    size_t remaining = sent;
    int iov_index = 0;
    iovec new_iov[2];
    size_t new_count = 0;
    size_t offsets[2] = {4, bytes.size()};
    const uint8_t* bases[2] = {header, bytes.data()};
    for (; iov_index < 2; ++iov_index) {
      if (remaining >= offsets[iov_index]) {
        remaining -= offsets[iov_index];
        continue;
      }
      new_iov[new_count].iov_base =
          const_cast<uint8_t*>(bases[iov_index]) + remaining;
      new_iov[new_count].iov_len = offsets[iov_index] - remaining;
      remaining = 0;
      ++new_count;
    }
    msg.msg_iov = new_iov;
    msg.msg_iovlen = new_count;
  }
  return OkStatus();
}

puddles::Result<IpcMessage> UnixSocket::Recv() {
  if (!valid()) {
    return FailedPreconditionError("socket closed");
  }
  IpcMessage message;
  uint8_t header[4];
  RETURN_IF_ERROR(ReadExact(fd_, header, 4, &message.fds));
  uint32_t length;
  std::memcpy(&length, header, 4);
  if (length > (64u << 20)) {
    return DataLossError("implausible message length");
  }
  message.bytes.resize(length);
  if (length > 0) {
    RETURN_IF_ERROR(ReadExact(fd_, message.bytes.data(), length, &message.fds));
  }
  return message;
}

puddles::Status UnixSocket::SetNonBlocking(bool enable) {
  if (!valid()) {
    return FailedPreconditionError("socket closed");
  }
  return SetFdNonBlocking(fd_, enable);
}

puddles::Result<IoProgress> UnixSocket::RecvSome(uint8_t* buf, size_t len,
                                                 std::vector<int>* fds) {
  if (!valid()) {
    return FailedPreconditionError("socket closed");
  }
  while (true) {
    msghdr msg{};
    iovec iov{buf, len};
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    alignas(cmsghdr) char control[CMSG_SPACE(sizeof(int) * kMaxFdsPerMessage)];
    msg.msg_control = control;
    msg.msg_controllen = sizeof(control);

    ssize_t n = ::recvmsg(fd_, &msg, MSG_CMSG_CLOEXEC);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        IoProgress progress;
        progress.would_block = true;
        return progress;
      }
      return ErrnoError("recvmsg", errno);
    }
    if (fds != nullptr) {
      for (cmsghdr* cmsg = CMSG_FIRSTHDR(&msg); cmsg != nullptr;
           cmsg = CMSG_NXTHDR(&msg, cmsg)) {
        if (cmsg->cmsg_level == SOL_SOCKET && cmsg->cmsg_type == SCM_RIGHTS) {
          size_t count = (cmsg->cmsg_len - CMSG_LEN(0)) / sizeof(int);
          const int* received = reinterpret_cast<const int*>(CMSG_DATA(cmsg));
          for (size_t i = 0; i < count; ++i) {
            fds->push_back(received[i]);
          }
        }
      }
    }
    IoProgress progress;
    if (n == 0) {
      progress.eof = true;
    } else {
      progress.bytes = static_cast<size_t>(n);
    }
    return progress;
  }
}

puddles::Result<IoProgress> UnixSocket::SendSome(const uint8_t* buf, size_t len,
                                                 const std::vector<int>& fds) {
  if (!valid()) {
    return FailedPreconditionError("socket closed");
  }
  if (fds.size() > kMaxFdsPerMessage) {
    return InvalidArgumentError("too many fds in one message");
  }
  msghdr msg{};
  iovec iov{const_cast<uint8_t*>(buf), len};
  msg.msg_iov = &iov;
  msg.msg_iovlen = 1;
  alignas(cmsghdr) char control[CMSG_SPACE(sizeof(int) * kMaxFdsPerMessage)];
  if (!fds.empty()) {
    std::memset(control, 0, sizeof(control));
    msg.msg_control = control;
    msg.msg_controllen = CMSG_SPACE(sizeof(int) * fds.size());
    cmsghdr* cmsg = CMSG_FIRSTHDR(&msg);
    cmsg->cmsg_level = SOL_SOCKET;
    cmsg->cmsg_type = SCM_RIGHTS;
    cmsg->cmsg_len = CMSG_LEN(sizeof(int) * fds.size());
    std::memcpy(CMSG_DATA(cmsg), fds.data(), sizeof(int) * fds.size());
  }
  while (true) {
    ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        IoProgress progress;
        progress.would_block = true;
        return progress;
      }
      return ErrnoError("sendmsg", errno);
    }
    IoProgress progress;
    progress.bytes = static_cast<size_t>(n);
    return progress;
  }
}

puddles::Result<IoProgress> UnixSocket::SendSomeV(const struct iovec* iov, int iovcnt) {
  if (!valid()) {
    return FailedPreconditionError("socket closed");
  }
  msghdr msg{};
  msg.msg_iov = const_cast<struct iovec*>(iov);
  msg.msg_iovlen = static_cast<size_t>(iovcnt);
  while (true) {
    ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        IoProgress progress;
        progress.would_block = true;
        return progress;
      }
      return ErrnoError("sendmsg", errno);
    }
    IoProgress progress;
    progress.bytes = static_cast<size_t>(n);
    return progress;
  }
}

puddles::Result<PeerCredentials> UnixSocket::Credentials() const {
  ucred cred{};
  socklen_t len = sizeof(cred);
  if (::getsockopt(fd_, SOL_SOCKET, SO_PEERCRED, &cred, &len) != 0) {
    return ErrnoError("getsockopt(SO_PEERCRED)", errno);
  }
  PeerCredentials out;
  out.pid = static_cast<uint32_t>(cred.pid);
  out.uid = cred.uid;
  out.gid = cred.gid;
  return out;
}

UnixSocketServer::~UnixSocketServer() { Close(); }

UnixSocketServer::UnixSocketServer(UnixSocketServer&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), path_(std::move(other.path_)) {}

UnixSocketServer& UnixSocketServer::operator=(UnixSocketServer&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
  }
  return *this;
}

void UnixSocketServer::Shutdown() {
  if (fd_ >= 0) {
    // shutdown() unblocks a concurrent accept() (plain close() does not) and
    // leaves fd_ untouched, so a racing Accept() can never run on a recycled
    // fd number.
    ::shutdown(fd_, SHUT_RDWR);
  }
}

void UnixSocketServer::Close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    ::unlink(path_.c_str());
    fd_ = -1;
  }
}

puddles::Result<UnixSocketServer> UnixSocketServer::Bind(const std::string& path) {
  sockaddr_un addr;
  RETURN_IF_ERROR(FillAddr(path, &addr));
  ::unlink(path.c_str());
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return ErrnoError("socket", errno);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int saved = errno;
    ::close(fd);
    return ErrnoError("bind " + path, saved);
  }
  if (::listen(fd, 64) != 0) {
    int saved = errno;
    ::close(fd);
    return ErrnoError("listen " + path, saved);
  }
  UnixSocketServer server;
  server.fd_ = fd;
  server.path_ = path;
  return server;
}

puddles::Result<UnixSocket> UnixSocketServer::Accept() {
  int err = 0;
  UnixSocket socket = TryAccept(&err, /*nonblocking_socket=*/false);
  if (!socket.valid()) {
    return ErrnoError("accept", err);
  }
  return socket;
}

UnixSocket UnixSocketServer::TryAccept(int* err, bool nonblocking_socket) {
  *err = 0;
  const int flags = SOCK_CLOEXEC | (nonblocking_socket ? SOCK_NONBLOCK : 0);
  while (true) {
    int fd = ::accept4(fd_, nullptr, nullptr, flags);
    if (fd >= 0) {
      return UnixSocket(fd);
    }
    if (errno == EINTR) {
      continue;
    }
    *err = errno;
    return UnixSocket();
  }
}

puddles::Status UnixSocketServer::SetNonBlocking(bool enable) {
  if (!valid()) {
    return FailedPreconditionError("listener closed");
  }
  return SetFdNonBlocking(fd_, enable);
}

}  // namespace puddles
