// UNIX-domain stream sockets with SCM_RIGHTS descriptor passing.
//
// Paper §4.3/§4.6: applications talk to Puddled over a UNIX domain socket;
// approved puddle requests are answered with a file descriptor sent via
// sendmsg(2), which "serves as a capability, letting the application access
// the underlying puddle without any direct access to the underlying file."
// Caller identity for access control comes from SO_PEERCRED.
//
// Message framing: 4-byte little-endian length, then the payload. Any file
// descriptors ride in the ancillary data of the first fragment.
#ifndef SRC_IPC_UNIX_SOCKET_H_
#define SRC_IPC_UNIX_SOCKET_H_

#include <sys/uio.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace puddles {

struct PeerCredentials {
  uint32_t pid = 0;
  uint32_t uid = 0;
  uint32_t gid = 0;
};

struct IpcMessage {
  std::vector<uint8_t> bytes;
  std::vector<int> fds;  // Ownership transfers to the receiver.
};

// Outcome of one nonblocking I/O attempt (RecvSome/SendSome). Exactly one of
// {bytes > 0, would_block, eof} describes what happened; errors surface as a
// non-OK Status instead.
struct IoProgress {
  size_t bytes = 0;
  bool would_block = false;
  bool eof = false;  // Read side only: orderly shutdown by the peer.
};

class UnixSocket {
 public:
  UnixSocket() = default;
  explicit UnixSocket(int fd) : fd_(fd) {}
  ~UnixSocket();

  UnixSocket(UnixSocket&& other) noexcept;
  UnixSocket& operator=(UnixSocket&& other) noexcept;
  UnixSocket(const UnixSocket&) = delete;
  UnixSocket& operator=(const UnixSocket&) = delete;

  static puddles::Result<UnixSocket> Connect(const std::string& path);

  // Connected socket pair (for in-process tests of the wire protocol).
  static puddles::Result<std::pair<UnixSocket, UnixSocket>> Pair();

  puddles::Status Send(const std::vector<uint8_t>& bytes, const std::vector<int>& fds = {});
  puddles::Result<IpcMessage> Recv();

  // ---- Nonblocking I/O (event-driven server path) ----

  puddles::Status SetNonBlocking(bool enable);

  // One recvmsg: reads up to `len` bytes into `buf`, appending any SCM_RIGHTS
  // descriptors to *fds (ownership passes to the caller). EINTR is retried.
  puddles::Result<IoProgress> RecvSome(uint8_t* buf, size_t len, std::vector<int>* fds);

  // One sendmsg of buf[0..len) with `fds` attached to this fragment. Callers
  // streaming a frame across several calls must attach fds only until the
  // first call that reports bytes > 0 — the kernel delivers them with the
  // first byte, and re-sending would duplicate them into the peer.
  puddles::Result<IoProgress> SendSome(const uint8_t* buf, size_t len,
                                       const std::vector<int>& fds = {});

  // Vectored SendSome without ancillary data: one sendmsg over `iovcnt`
  // buffers, so a backlog of small frames costs one syscall instead of one
  // each (the event server's response-flush hot path).
  puddles::Result<IoProgress> SendSomeV(const struct iovec* iov, int iovcnt);

  puddles::Result<PeerCredentials> Credentials() const;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

 private:
  int fd_ = -1;
};

class UnixSocketServer {
 public:
  UnixSocketServer() = default;
  ~UnixSocketServer();

  UnixSocketServer(UnixSocketServer&& other) noexcept;
  UnixSocketServer& operator=(UnixSocketServer&& other) noexcept;
  UnixSocketServer(const UnixSocketServer&) = delete;
  UnixSocketServer& operator=(const UnixSocketServer&) = delete;

  // Binds and listens; removes a stale socket file first.
  static puddles::Result<UnixSocketServer> Bind(const std::string& path);

  puddles::Result<UnixSocket> Accept();

  // Accept variant that reports the failing errno so callers can classify
  // transient failures (EMFILE, ECONNABORTED, descriptor pressure) from
  // fatal ones instead of giving up on the listening socket. EINTR is
  // retried internally. On success *err is 0; on failure the returned socket
  // is invalid and *err holds the errno (EAGAIN when the listener is
  // nonblocking and no connection is pending). `nonblocking_socket` accepts
  // the connection with O_NONBLOCK already set (event-loop connections).
  UnixSocket TryAccept(int* err, bool nonblocking_socket);

  // Makes Accept()/TryAccept() nonblocking on the listener itself.
  puddles::Status SetNonBlocking(bool enable);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  const std::string& path() const { return path_; }

  // Unblocks a concurrent Accept() without invalidating the fd: safe to call
  // while another thread is inside Accept(). Close() is not — it recycles the
  // fd number, so it must only run after the accepting thread has exited
  // (Shutdown first, join, then Close).
  void Shutdown();
  void Close();

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace puddles

#endif  // SRC_IPC_UNIX_SOCKET_H_
