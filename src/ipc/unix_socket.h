// UNIX-domain stream sockets with SCM_RIGHTS descriptor passing.
//
// Paper §4.3/§4.6: applications talk to Puddled over a UNIX domain socket;
// approved puddle requests are answered with a file descriptor sent via
// sendmsg(2), which "serves as a capability, letting the application access
// the underlying puddle without any direct access to the underlying file."
// Caller identity for access control comes from SO_PEERCRED.
//
// Message framing: 4-byte little-endian length, then the payload. Any file
// descriptors ride in the ancillary data of the first fragment.
#ifndef SRC_IPC_UNIX_SOCKET_H_
#define SRC_IPC_UNIX_SOCKET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace puddles {

struct PeerCredentials {
  uint32_t pid = 0;
  uint32_t uid = 0;
  uint32_t gid = 0;
};

struct IpcMessage {
  std::vector<uint8_t> bytes;
  std::vector<int> fds;  // Ownership transfers to the receiver.
};

class UnixSocket {
 public:
  UnixSocket() = default;
  explicit UnixSocket(int fd) : fd_(fd) {}
  ~UnixSocket();

  UnixSocket(UnixSocket&& other) noexcept;
  UnixSocket& operator=(UnixSocket&& other) noexcept;
  UnixSocket(const UnixSocket&) = delete;
  UnixSocket& operator=(const UnixSocket&) = delete;

  static puddles::Result<UnixSocket> Connect(const std::string& path);

  // Connected socket pair (for in-process tests of the wire protocol).
  static puddles::Result<std::pair<UnixSocket, UnixSocket>> Pair();

  puddles::Status Send(const std::vector<uint8_t>& bytes, const std::vector<int>& fds = {});
  puddles::Result<IpcMessage> Recv();

  puddles::Result<PeerCredentials> Credentials() const;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

 private:
  int fd_ = -1;
};

class UnixSocketServer {
 public:
  UnixSocketServer() = default;
  ~UnixSocketServer();

  UnixSocketServer(UnixSocketServer&& other) noexcept;
  UnixSocketServer& operator=(UnixSocketServer&& other) noexcept;
  UnixSocketServer(const UnixSocketServer&) = delete;
  UnixSocketServer& operator=(const UnixSocketServer&) = delete;

  // Binds and listens; removes a stale socket file first.
  static puddles::Result<UnixSocketServer> Bind(const std::string& path);

  puddles::Result<UnixSocket> Accept();

  bool valid() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  // Unblocks a concurrent Accept() without invalidating the fd: safe to call
  // while another thread is inside Accept(). Close() is not — it recycles the
  // fd number, so it must only run after the accepting thread has exited
  // (Shutdown first, join, then Close).
  void Shutdown();
  void Close();

 private:
  int fd_ = -1;
  std::string path_;
};

}  // namespace puddles

#endif  // SRC_IPC_UNIX_SOCKET_H_
