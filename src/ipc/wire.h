// Bounds-checked binary serialization for the daemon protocol. Little-endian,
// no alignment requirements, explicit lengths — a deliberately boring format.
#ifndef SRC_IPC_WIRE_H_
#define SRC_IPC_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/common/uuid.h"

namespace puddles {

class WireWriter {
 public:
  void PutU8(uint8_t v) { Append(&v, 1); }
  void PutU16(uint16_t v) { Append(&v, 2); }
  void PutU32(uint32_t v) { Append(&v, 4); }
  void PutU64(uint64_t v) { Append(&v, 8); }
  void PutUuid(const Uuid& id) {
    PutU64(id.hi);
    PutU64(id.lo);
  }
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    Append(s.data(), s.size());
  }
  void PutBytes(const void* data, size_t size) {
    PutU32(static_cast<uint32_t>(size));
    Append(data, size);
  }
  void PutStatus(const puddles::Status& status) {
    PutU32(static_cast<uint32_t>(status.code()));
    PutString(status.message());
  }

  const std::vector<uint8_t>& bytes() const { return buffer_; }
  std::vector<uint8_t> Take() { return std::move(buffer_); }

 private:
  void Append(const void* data, size_t size) {
    const auto* p = static_cast<const uint8_t*>(data);
    buffer_.insert(buffer_.end(), p, p + size);
  }

  std::vector<uint8_t> buffer_;
};

class WireReader {
 public:
  explicit WireReader(const std::vector<uint8_t>& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  puddles::Status GetU8(uint8_t* out) { return Read(out, 1); }
  puddles::Status GetU16(uint16_t* out) { return Read(out, 2); }
  puddles::Status GetU32(uint32_t* out) { return Read(out, 4); }
  puddles::Status GetU64(uint64_t* out) { return Read(out, 8); }
  puddles::Status GetUuid(Uuid* out) {
    RETURN_IF_ERROR(GetU64(&out->hi));
    return GetU64(&out->lo);
  }
  puddles::Status GetString(std::string* out) {
    uint32_t size = 0;
    RETURN_IF_ERROR(GetU32(&size));
    if (size > remaining()) {
      return DataLossError("wire: string length exceeds buffer");
    }
    out->assign(reinterpret_cast<const char*>(data_ + pos_), size);
    pos_ += size;
    return OkStatus();
  }
  puddles::Status GetBytes(std::vector<uint8_t>* out) {
    uint32_t size = 0;
    RETURN_IF_ERROR(GetU32(&size));
    if (size > remaining()) {
      return DataLossError("wire: byte length exceeds buffer");
    }
    out->assign(data_ + pos_, data_ + pos_ + size);
    pos_ += size;
    return OkStatus();
  }
  puddles::Status GetStatus(puddles::Status* out) {
    uint32_t code = 0;
    std::string message;
    RETURN_IF_ERROR(GetU32(&code));
    RETURN_IF_ERROR(GetString(&message));
    if (code == 0) {
      *out = OkStatus();
    } else {
      *out = puddles::Status(static_cast<StatusCode>(code), std::move(message));
    }
    return OkStatus();
  }

  size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }

 private:
  puddles::Status Read(void* out, size_t size) {
    if (remaining() < size) {
      return DataLossError("wire: truncated message");
    }
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
    return OkStatus();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace puddles

#endif  // SRC_IPC_WIRE_H_
