// Thin RAII wrappers over epoll(7) and eventfd(2) for the event-driven
// socket server (src/daemon/server.cc). Level-triggered only: the server's
// per-connection state machines re-check readiness on every wakeup, so
// edge-triggered semantics would buy nothing and cost correctness hazards.
#ifndef SRC_IPC_EPOLL_H_
#define SRC_IPC_EPOLL_H_

#include <sys/epoll.h>

#include <cstdint>

#include "src/common/status.h"

namespace puddles {

class EpollSet {
 public:
  EpollSet() = default;
  ~EpollSet();

  EpollSet(EpollSet&& other) noexcept;
  EpollSet& operator=(EpollSet&& other) noexcept;
  EpollSet(const EpollSet&) = delete;
  EpollSet& operator=(const EpollSet&) = delete;

  static puddles::Result<EpollSet> Create();

  // `tag` comes back in epoll_event::data.u64; the server uses connection ids
  // rather than fds so a recycled fd number can never alias a dead peer.
  puddles::Status Add(int fd, uint32_t events, uint64_t tag);
  puddles::Status Mod(int fd, uint32_t events, uint64_t tag);
  puddles::Status Del(int fd);

  // Blocks up to `timeout_ms` (-1 = indefinitely). Returns the number of
  // ready events written to `events`; EINTR reports 0 ready events.
  puddles::Result<int> Wait(epoll_event* events, int max_events, int timeout_ms);

  bool valid() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
};

// Cross-thread wakeup channel: Signal() (any thread) makes the fd readable
// until the owning loop calls Drain(). Plain (non-semaphore) eventfd, so any
// number of signals coalesce into one wakeup.
class EventFd {
 public:
  EventFd() = default;
  ~EventFd();

  EventFd(EventFd&& other) noexcept;
  EventFd& operator=(EventFd&& other) noexcept;
  EventFd(const EventFd&) = delete;
  EventFd& operator=(const EventFd&) = delete;

  static puddles::Result<EventFd> Create();

  void Signal();
  void Drain();

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

}  // namespace puddles

#endif  // SRC_IPC_EPOLL_H_
