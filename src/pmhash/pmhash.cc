#include "src/pmhash/pmhash.h"

namespace puddles {
namespace pmhash_internal {

void (*g_after_fence_hook)() = nullptr;

}  // namespace pmhash_internal
}  // namespace puddles
