// Crash-consistent open-addressing hash table on persistent memory.
//
// Puddled keeps its metadata — the puddle registry, pool directory, pointer
// maps (§4.2: "Puddled stores the pointer maps in a simple persistent memory
// hashmap along with its other metadata"), and log-space registrations — in
// instances of this map.
//
// Crash safety without a general transaction system:
//   * Insert: write key/value/crc, flush, fence, then publish with the state
//     byte, flush, fence. A crash before publication loses the insert
//     atomically.
//   * Update: journaled. The new slot image is written to a single-slot
//     journal in the header, made valid, copied into place, then retired. A
//     crash replays or discards the journal on Attach.
//   * Erase: single state-byte store (atomic).
//   * Torn slots (possible only under adversarial cache eviction) are fenced
//     off by the per-slot CRC and demoted to tombstones on Attach, which
//     keeps probe chains intact.
//
// Keys and values must be trivially copyable. Capacity is fixed at Format
// time (a power of two); the daemon sizes its tables generously.
#ifndef SRC_PMHASH_PMHASH_H_
#define SRC_PMHASH_PMHASH_H_

#include <cstdint>
#include <cstring>
#include <functional>
#include <type_traits>

#include "src/common/align.h"
#include "src/common/checksum.h"
#include "src/common/status.h"
#include "src/pmem/flush.h"

namespace puddles {

namespace pmhash_internal {
// Test-only: invoked after every internal fence so crash-injection tests can
// abort mid-operation. Null in production.
extern void (*g_after_fence_hook)();
inline void AfterFence() {
  if (g_after_fence_hook != nullptr) {
    g_after_fence_hook();
  }
}
}  // namespace pmhash_internal

template <typename K, typename V, typename HashFn = std::hash<K>,
          typename EqFn = std::equal_to<K>>
class PersistentHashMap {
  static_assert(std::is_trivially_copyable_v<K>, "keys must be trivially copyable");
  static_assert(std::is_trivially_copyable_v<V>, "values must be trivially copyable");

 public:
  // "PDMAP02D": v2 added Header::slot_size so a value-layout change (e.g.
  // PtrMapRecord growing its repeat region) is an explicit format error at
  // Attach, not a misleading capacity failure. v1 files are rejected.
  static constexpr uint64_t kMagic = 0x50444d4150303244ULL;  // "PDMAP02D"

  static constexpr size_t RequiredBytes(uint64_t capacity) {
    return sizeof(Header) + capacity * sizeof(Slot);
  }

  static puddles::Status Format(void* mem, size_t bytes, uint64_t capacity) {
    if (!IsPowerOfTwo(capacity)) {
      return InvalidArgumentError("pmhash capacity must be a power of two");
    }
    if (bytes < RequiredBytes(capacity)) {
      return InvalidArgumentError("pmhash buffer too small for capacity");
    }
    auto* header = static_cast<Header*>(mem);
    std::memset(mem, 0, RequiredBytes(capacity));
    header->magic = kMagic;
    header->capacity = capacity;
    header->slot_size = sizeof(Slot);
    header->journal.valid = 0;
    pmem::FlushFence(mem, RequiredBytes(capacity));
    return OkStatus();
  }

  // Attaches to a formatted region, replaying the update journal if a crash
  // interrupted a Put, and demoting torn slots to tombstones.
  static puddles::Result<PersistentHashMap> Attach(void* mem, size_t bytes) {
    auto* header = static_cast<Header*>(mem);
    if (header->magic != kMagic) {
      return DataLossError("pmhash: bad magic (or pre-v2 table; reformat)");
    }
    if (header->slot_size != sizeof(Slot)) {
      return DataLossError("pmhash: slot size mismatch — key/value layout changed");
    }
    if (bytes < RequiredBytes(header->capacity)) {
      return DataLossError("pmhash: buffer smaller than recorded capacity");
    }
    PersistentHashMap map(header);
    map.RecoverJournal();
    map.ScrubAndCount();
    return map;
  }

  // Inserts or updates. Fails with kOutOfMemory when the table is beyond its
  // safe load factor.
  puddles::Status Put(const K& key, const V& value) {
    uint64_t index;
    bool found = Locate(key, &index);
    if (found) {
      // Journaled in-place update.
      Slot image;
      image.state = kUsed;
      image.key = key;
      image.value = value;
      image.crc = SlotCrc(image);
      Journal* journal = &header_->journal;
      journal->slot_index = index;
      std::memcpy(journal->image, &image, sizeof(Slot));
      pmem::FlushFence(journal, sizeof(Journal));
      pmhash_internal::AfterFence();
      journal->valid = 1;
      pmem::FlushFence(&journal->valid, sizeof(journal->valid));
      pmhash_internal::AfterFence();
      std::memcpy(&slots()[index], &image, sizeof(Slot));
      pmem::FlushFence(&slots()[index], sizeof(Slot));
      pmhash_internal::AfterFence();
      journal->valid = 0;
      pmem::FlushFence(&journal->valid, sizeof(journal->valid));
      pmhash_internal::AfterFence();
      return OkStatus();
    }
    if ((size_ + 1) * 10 > header_->capacity * 9) {
      return OutOfMemoryError("pmhash: table full");
    }
    // `index` is the first free (empty or tombstone) slot on the probe path.
    Slot* slot = &slots()[index];
    slot->key = key;
    slot->value = value;
    slot->crc = SlotCrcOf(key, value);
    pmem::FlushFence(slot, sizeof(Slot));
    pmhash_internal::AfterFence();
    slot->state = kUsed;  // Publication point.
    pmem::FlushFence(&slot->state, sizeof(slot->state));
    pmhash_internal::AfterFence();
    ++size_;
    return OkStatus();
  }

  puddles::Result<V> Get(const K& key) const {
    uint64_t index;
    if (!Locate(key, &index)) {
      return NotFoundError("pmhash: key not found");
    }
    return slots()[index].value;
  }

  bool Contains(const K& key) const {
    uint64_t index;
    return Locate(key, &index);
  }

  puddles::Status Erase(const K& key) {
    uint64_t index;
    if (!Locate(key, &index)) {
      return NotFoundError("pmhash: key not found");
    }
    slots()[index].state = kTombstone;  // Single-byte store: atomic.
    pmem::FlushFence(&slots()[index].state, sizeof(uint8_t));
    pmhash_internal::AfterFence();
    --size_;
    return OkStatus();
  }

  void ForEach(const std::function<void(const K&, const V&)>& fn) const {
    for (uint64_t i = 0; i < header_->capacity; ++i) {
      const Slot& slot = slots()[i];
      if (slot.state == kUsed) {
        fn(slot.key, slot.value);
      }
    }
  }

  uint64_t size() const { return size_; }
  uint64_t capacity() const { return header_->capacity; }

 private:
  enum SlotState : uint8_t { kEmpty = 0, kUsed = 1, kTombstone = 2 };

  struct Slot {
    uint8_t state;
    K key;
    V value;
    uint32_t crc;
  };

  struct Journal {
    uint64_t slot_index;
    uint32_t valid;
    uint32_t reserved;
    alignas(8) uint8_t image[sizeof(Slot)];
  };

  struct Header {
    uint64_t magic;
    uint64_t capacity;
    uint64_t slot_size;  // sizeof(Slot); layout drift is detected at Attach.
    Journal journal;
  };

  explicit PersistentHashMap(Header* header) : header_(header) {}

  Slot* slots() const { return reinterpret_cast<Slot*>(header_ + 1); }

  static uint32_t SlotCrcOf(const K& key, const V& value) {
    uint32_t crc = Crc32c(&key, sizeof(K));
    return Crc32c(&value, sizeof(V), crc);
  }
  static uint32_t SlotCrc(const Slot& slot) { return SlotCrcOf(slot.key, slot.value); }

  // Finds `key`. Returns true with its index, or false with the index of the
  // first insertable slot along the probe path (capacity if none).
  bool Locate(const K& key, uint64_t* index) const {
    const uint64_t mask = header_->capacity - 1;
    uint64_t i = HashFn{}(key)&mask;
    uint64_t first_free = header_->capacity;
    for (uint64_t probes = 0; probes < header_->capacity; ++probes, i = (i + 1) & mask) {
      const Slot& slot = slots()[i];
      if (slot.state == kEmpty) {
        *index = first_free != header_->capacity ? first_free : i;
        return false;
      }
      if (slot.state == kTombstone) {
        if (first_free == header_->capacity) {
          first_free = i;
        }
        continue;
      }
      if (EqFn{}(slot.key, key)) {
        *index = i;
        return true;
      }
    }
    *index = first_free;
    return false;
  }

  void RecoverJournal() {
    Journal* journal = &header_->journal;
    if (journal->valid != 0 && journal->slot_index < header_->capacity) {
      std::memcpy(&slots()[journal->slot_index], journal->image, sizeof(Slot));
      pmem::FlushFence(&slots()[journal->slot_index], sizeof(Slot));
      journal->valid = 0;
      pmem::FlushFence(&journal->valid, sizeof(journal->valid));
    }
  }

  void ScrubAndCount() {
    size_ = 0;
    for (uint64_t i = 0; i < header_->capacity; ++i) {
      Slot& slot = slots()[i];
      if (slot.state != kUsed) {
        continue;
      }
      if (SlotCrc(slot) != slot.crc) {
        // Torn publication (state byte persisted ahead of the payload under
        // simulated eviction). Demote to tombstone so probe chains through
        // this slot stay valid.
        slot.state = kTombstone;
        pmem::FlushFence(&slot.state, sizeof(uint8_t));
        continue;
      }
      ++size_;
    }
  }

  Header* header_ = nullptr;
  uint64_t size_ = 0;  // Volatile; recomputed on Attach.
};

}  // namespace puddles

#endif  // SRC_PMHASH_PMHASH_H_
