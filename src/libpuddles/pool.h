// Pools: named collections of puddles with a malloc/free interface and a
// designated root object (paper §3.1, §4.4).
//
// "Pools in the Puddle system are named collections of persistent memory and
// act as the programmer's interface to allocate and deallocate objects on PM
// ... Pools automatically acquire new memory for object allocation and
// logging and free any unused memory to the system."
#ifndef SRC_LIBPUDDLES_POOL_H_
#define SRC_LIBPUDDLES_POOL_H_

#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/type_name.h"
#include "src/daemon/types.h"
#include "src/libpuddles/relocation.h"
#include "src/puddles/pool_meta.h"
#include "src/tx/transaction.h"

namespace puddles {

class Runtime;

class Pool {
 public:
  const std::string& name() const { return name_; }
  const puddled::PoolInfo& info() const { return info_; }
  bool writable() const { return writable_; }
  const Translator& translator() const { return translator_; }

  // ---- Allocation (§4.5) ----
  //
  // "pool's malloc() API takes as input the object's type in addition to its
  // size. Allocations using this API can be serviced from any puddle in the
  // pool with enough free space."
  puddles::Result<void*> MallocBytes(size_t size, TypeId type_id);

  template <typename T>
  puddles::Result<T*> Malloc(size_t count = 1) {
    ASSIGN_OR_RETURN(void* raw, MallocBytes(sizeof(T) * count, TypeIdOf<T>()));
    return static_cast<T*>(raw);
  }

  // Frees an object allocated from this pool. Inside a transaction the free
  // is deferred to commit (no reuse within the transaction, so rollback can
  // never resurrect recycled bytes).
  puddles::Status Free(void* payload);

  // ---- Root object ----
  puddles::Result<void*> RootBytes();
  puddles::Status SetRootBytes(void* payload);

  template <typename T>
  puddles::Result<T*> Root() {
    ASSIGN_OR_RETURN(void* raw, RootBytes());
    return static_cast<T*>(raw);
  }
  template <typename T>
  puddles::Status SetRoot(T* payload) {
    return SetRootBytes(payload);
  }

  // ---- Transactions ----
  // Starts (or nests into) the calling thread's transaction using its cached
  // log puddle. Used by the TX_BEGIN macro.
  puddles::Result<Transaction*> BeginTx();

  // Number of member data puddles (diagnostics / tests).
  uint32_t member_count() const { return meta_.num_members(); }

 private:
  friend class Runtime;

  Pool(Runtime* runtime, puddled::PoolInfo info, bool writable)
      : runtime_(runtime), info_(info), name_(info.name), writable_(writable) {}

  // Grows the pool by one data puddle.
  puddles::Status AddDataPuddle();

  Runtime* runtime_;
  puddled::PoolInfo info_;
  std::string name_;
  bool writable_;

  PoolMetaView meta_;
  Translator translator_;

  std::mutex alloc_mu_;
  std::vector<Uuid> data_members_;
  size_t alloc_cursor_ = 0;
};

}  // namespace puddles

#endif  // SRC_LIBPUDDLES_POOL_H_
