// Pools: named collections of puddles with a malloc/free interface, a
// designated root object (paper §3.1, §4.4), and the typed transaction
// entry point `Pool::Run` (DESIGN.md §9).
//
// "Pools in the Puddle system are named collections of persistent memory and
// act as the programmer's interface to allocate and deallocate objects on PM
// ... Pools automatically acquire new memory for object allocation and
// logging and free any unused memory to the system."
#ifndef SRC_LIBPUDDLES_POOL_H_
#define SRC_LIBPUDDLES_POOL_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/alloc/arena.h"
#include "src/common/status.h"
#include "src/common/type_name.h"
#include "src/daemon/types.h"
#include "src/epoch/epoch_sys.h"
#include "src/libpuddles/relocation.h"
#include "src/puddles/pool_meta.h"
#include "src/tx/transaction.h"

namespace puddles {

class Runtime;
class Tx;

// When a committed transaction's effects become durable (docs/epoch.md).
enum class Durability {
  // Every commit is durable before Run returns: stage-1 write-back + fence
  // on the committing thread, log retired per transaction. The default.
  kImmediate,
  // Commits are buffered into the open epoch; the background advancer makes
  // whole epochs durable with one fence, amortized across threads. A commit
  // is durable once its epoch retires — within EpochOptions::max_epoch_age_us,
  // on Pool::Sync(), or with RunOptions::sync. Recovery is all-or-nothing per
  // epoch: a crash mid-epoch rolls back every transaction in it.
  kEpoch,
};

// How small-object allocations are served (docs/alloc.md).
enum class AllocMode {
  // Every allocation runs under the pool's allocation mutex with fully
  // undo-logged slab/buddy metadata. The default; matches pre-arena behavior.
  kGlobalLock,
  // Transactional small allocations (and their frees) go through the calling
  // thread's slab arena: lock-free, no undo entries, no persistence calls on
  // the hot path (CI-gated by tools/check_alloc_discipline.sh). Refill,
  // spill, and flush-back remain fully logged slow paths. Large allocations
  // and non-transactional calls still use the global path.
  kArena,
};

// Per-Run knobs (the plain Run(fn) overload uses the defaults).
struct RunOptions {
  // Under Durability::kEpoch: block after a successful commit until the
  // transaction's epoch is persistently retired (sync-on-demand). No effect
  // in immediate mode, where every commit is already durable.
  bool sync = false;
};

class Pool {
 public:
  const std::string& name() const { return name_; }
  const puddled::PoolInfo& info() const { return info_; }
  bool writable() const { return writable_; }
  const Translator& translator() const { return translator_; }

  // ---- Allocation (§4.5) ----
  //
  // "pool's malloc() API takes as input the object's type in addition to its
  // size. Allocations using this API can be serviced from any puddle in the
  // pool with enough free space."
  //
  // The explicit-context form: `tx` is the transaction the allocation joins
  // (allocator-metadata mutations become undo entries; fresh contents are
  // flushed at commit stage 1), or nullptr for a non-transactional
  // allocation (persisted immediately; not crash-atomic, as in PMDK).
  puddles::Result<void*> MallocBytes(size_t size, TypeId type_id, Transaction* tx);

  // Legacy implicit-context form: joins the thread's open TX_BEGIN
  // transaction if any (via the src/tx legacy bridge). Prefer tx.Alloc<T>().
  puddles::Result<void*> MallocBytes(size_t size, TypeId type_id);

  template <typename T>
  puddles::Result<T*> Malloc(size_t count = 1) {
    ASSIGN_OR_RETURN(void* raw, MallocBytes(sizeof(T) * count, TypeIdOf<T>()));
    return static_cast<T*>(raw);
  }

  // Frees an object allocated from this pool. Inside a transaction the free
  // is deferred to commit (no reuse within the transaction, so rollback can
  // never resurrect recycled bytes). Explicit-context and legacy
  // implicit-context forms, as with MallocBytes.
  puddles::Status Free(void* payload, Transaction* tx);
  puddles::Status Free(void* payload);

  // ---- Root object ----
  puddles::Result<void*> RootBytes();
  puddles::Status SetRootBytes(void* payload);

  template <typename T>
  puddles::Result<T*> Root() {
    ASSIGN_OR_RETURN(void* raw, RootBytes());
    return static_cast<T*>(raw);
  }
  template <typename T>
  puddles::Status SetRoot(T* payload) {
    return SetRootBytes(payload);
  }

  // ---- Transactions ----
  //
  // Runs `fn` failure-atomically with an explicit typed context:
  //
  //   puddles::Status s = pool.Run([&](puddles::Tx& tx) -> puddles::Status {
  //     RETURN_IF_ERROR(tx.Log(head));
  //     head->count++;
  //     return puddles::OkStatus();
  //   });
  //
  // Commit/abort is decided by the callback's return value: OK commits
  // (Fig. 7 hybrid stages), non-OK aborts via the undo log and that status is
  // returned. An exception escaping `fn` aborts and rethrows. Run does not
  // nest — a Run (or open legacy transaction) already on this thread returns
  // FailedPrecondition, keeping every ordering point visible at exactly one
  // level (cf. MOD's explicit ordering points).
  template <typename Fn>
  puddles::Status Run(Fn&& fn);

  // As above, with per-Run knobs: `Run({.sync = true}, fn)` blocks until the
  // commit is persistently durable even under Durability::kEpoch.
  template <typename Fn>
  puddles::Status Run(const RunOptions& options, Fn&& fn);

  // ---- Durability mode (docs/epoch.md) ----
  //
  // Switches how this pool's transactions become durable. kEpoch starts the
  // runtime's epoch system on first use (the first caller's options win
  // process-wide). Not thread-safe against concurrent Runs on this pool —
  // switch during quiescent setup/teardown; transactions begun after the
  // switch see the new mode, and the first immediate-mode transaction on a
  // thread with buffered epoch state waits that state out (quiesce).
  puddles::Status SetDurability(Durability mode, const EpochOptions& options = {});
  Durability durability() const { return durability_; }

  // Blocks until every epoch-mode transaction committed before this call is
  // persistently durable. No-op in immediate mode.
  void Sync();

  // Starts (or flat-nests into) the calling thread's transaction using its
  // cached log puddle. The legacy TX_BEGIN entry point; Run builds on it.
  puddles::Result<Transaction*> BeginTx();

  // ---- Per-thread slab arenas (docs/alloc.md, DESIGN.md §14) ----

  // Switches the small-object allocation mode. Enabling kArena installs the
  // pool's ArenaManager; switching back to kGlobalLock flushes the calling
  // thread's arenas plus all orphans (other live threads must flush their
  // own — switch during quiescent phases). Idempotent. The switch itself is
  // safe against concurrent allocators (the mode and manager pointer are
  // atomics; in-flight operations finish under whichever mode they sampled),
  // but the flush-back semantics above still require quiescence.
  puddles::Status SetAllocMode(AllocMode mode, const ArenaOptions& options = {});
  AllocMode alloc_mode() const {
    return alloc_mode_.load(std::memory_order_acquire);
  }

  // Flushes every arena owned by the calling thread back to the shared heap
  // in its own transaction: persistent occupancy written from the shadow
  // bitmaps, directory entries released. Under epoch durability it Syncs
  // first so every pending free has matured. Must be called outside any
  // open transaction.
  puddles::Status FlushThreadArena();

  // Adopts all orphaned arenas (exited threads) into the caller, then
  // flushes. The clean-shutdown companion of RecoverArenas.
  puddles::Status FlushAllArenas();

  struct ArenaRecoveryReport {
    size_t arenas_recovered = 0;  // Directory entries released.
    size_t slabs_scanned = 0;
    size_t slots_reclaimed = 0;   // Leaked in-flight blocks GC'd.
    size_t objects_live = 0;      // Reachable set size.
  };

  // Post-crash arena GC: computes the reachable object set from the pool
  // root through the registered pointer maps, then rebuilds every active
  // directory entry's slabs from it — live slots keep their objects, leaked
  // in-flight slots are reclaimed — and returns the slabs to the global
  // allocator. Transactional per directory entry, so it is idempotent across
  // a crash during recovery itself. Fails if any thread of this process
  // still holds live arena state (recovery is offline-only).
  puddles::Result<ArenaRecoveryReport> RecoverArenas();

  // Payload addresses of every object reachable from the pool root via the
  // type registry's pointer maps, sorted. The GC's view of liveness, exposed
  // for tests and the crashsim differential oracle.
  puddles::Result<std::vector<const void*>> ReachableObjects();

  // Number of member data puddles (diagnostics / tests).
  uint32_t member_count() const { return meta_.num_members(); }

 private:
  friend class Runtime;
  friend class Tx;

  Pool(Runtime* runtime, puddled::PoolInfo info, bool writable)
      : runtime_(runtime), info_(info), name_(info.name), writable_(writable) {}

  // Grows the pool by one data puddle.
  puddles::Status AddDataPuddle();

  // ---- Arena plumbing (pool.cc; see docs/alloc.md for the contracts) ----
  // Fast path: serves a small transactional allocation from the thread's
  // arena. Returns kUnavailable when the arena cannot serve even after a
  // refill (caller falls back to the global path).
  puddles::Result<void*> ArenaMalloc(size_t size, TypeId type_id, Transaction* tx);
  // Slow path: acquires slabs for `class_index` under alloc_mu_, fully
  // logged into `tx`, after draining remote/pending/orphan housekeeping.
  puddles::Status ArenaRefill(int class_index, Transaction* tx);
  puddles::Result<int> AcquireIntoPuddle(ThreadArena* ta, const Uuid& uuid,
                                         int class_index, Transaction* tx);
  // Returns whole-empty slabs beyond the retention floor to the shared heap.
  puddles::Status SpillExcess(Transaction* tx);
  // Publishes a free of an arena-owned object once its transaction can no
  // longer roll back (post-commit hook, or immediately outside transactions).
  void PublishArenaFree(void* payload);
  puddles::Status DrainArenaQueuesLocked(ThreadArena* ta, Transaction* tx);
  puddles::Status FreeGlobalLocked(const Uuid& uuid, void* payload);
  puddles::Status RecoverArenaSlot(const Uuid& uuid, size_t slot,
                                   const std::vector<const void*>& reachable,
                                   ArenaRecoveryReport* report);
  void HookArenaTx(Transaction* tx, ThreadArena* ta);
  // Epoch gate for slot reuse: pending frees mature once their epoch has
  // persistently retired (everything matures when no epoch system runs).
  uint64_t RetiredEpochForReuse() const;
  uint64_t CurrentEpochTag() const;

  // True iff [addr, addr+size) lies inside a puddle this runtime has mapped
  // (any pool — cross-pool transactions are legal, §3.6). The typed Tx uses
  // this to reject DRAM/stack pointers at the logging call instead of
  // letting them corrupt recovery.
  bool CoversPmRange(const void* addr, size_t size) const;

  Runtime* runtime_;
  puddled::PoolInfo info_;
  std::string name_;
  bool writable_;
  Durability durability_ = Durability::kImmediate;

  PoolMetaView meta_;
  Translator translator_;

  std::mutex alloc_mu_;
  std::vector<Uuid> data_members_;
  size_t alloc_cursor_ = 0;

  // Read lock-free on every MallocBytes/Free; written by SetAllocMode, so it
  // must be atomic even though mode switches are rare.
  std::atomic<AllocMode> alloc_mode_{AllocMode::kGlobalLock};
  ArenaOptions arena_options_;
  // Installed on first SetAllocMode(kArena); kept (for flush/adopt/free
  // routing) even after switching back. shared_ptr so exiting threads can
  // hand their arenas to the orphan list without racing pool teardown.
  // Written only under alloc_mu_; the hot paths read through arena_mgr_
  // (write-once atomic mirror) so they never race the install.
  std::shared_ptr<ArenaManager> arenas_;
  std::atomic<ArenaManager*> arena_mgr_{nullptr};

  ArenaManager* arena_manager() const {
    return arena_mgr_.load(std::memory_order_acquire);
  }
};

// The typed transaction context handed to Pool::Run callbacks — the only way
// to log, allocate, or free inside a transaction under the redesigned API.
// Every operation returns Status/Result (nothing throws), and every
// operation re-checks liveness: a Tx copied out of its Run (or used after
// its transaction committed) fails with FailedPrecondition instead of
// touching freed state, even if the thread has since begun an unrelated
// transaction (epoch check). Tx is a small value handle — copying it is
// cheap and safe; a default-constructed Tx is dead.
class Tx {
 public:
  Tx() = default;  // Dead handle: every operation returns FailedPrecondition.

  // Undo-logs the whole object before in-place modification.
  template <typename T>
  puddles::Status Log(T* object) {
    return LogRange(object, sizeof(T));
  }

  // Undo-logs an explicit byte range.
  puddles::Status LogRange(void* addr, size_t size) {
    RETURN_IF_ERROR(CheckUsable(addr, size));
    return tx_->AddUndo(addr, size);
  }

  // Undo-logs a single member — `tx.LogField(node, &Node::next)` — the
  // typed, drift-proof replacement for TX_ADD_RANGE(&node->next, 8).
  template <typename T, typename M>
  puddles::Status LogField(T* object, M T::*field) {
    return LogRange(&(object->*field), sizeof(M));
  }

  // Redo-logs `*dst = value`: dst keeps its old bytes until commit stage 2.
  template <typename T>
  puddles::Status Set(T* dst, const T& value) {
    RETURN_IF_ERROR(CheckUsable(dst, sizeof(T)));
    return tx_->RedoSet(dst, value);
  }

  // Undo-logs a volatile (DRAM) range: restored on abort, ignored by
  // post-crash recovery. The one deliberate escape from the PM-range check —
  // but not from the null/empty validation.
  puddles::Status LogVolatile(void* addr, size_t size) {
    RETURN_IF_ERROR(CheckLive());
    if (addr == nullptr || size == 0) {
      return InvalidArgumentError("Tx: null/empty range");
    }
    return tx_->AddVolatileUndo(addr, size);
  }

  // Typed allocation joining this transaction: metadata undo-logged, fresh
  // contents flushed at commit stage 1, rolled back wholesale on abort.
  template <typename T>
  puddles::Result<T*> Alloc(size_t count = 1) {
    ASSIGN_OR_RETURN(void* raw, AllocBytes(sizeof(T) * count, TypeIdOf<T>()));
    return static_cast<T*>(raw);
  }

  puddles::Result<void*> AllocBytes(size_t size, TypeId type_id) {
    RETURN_IF_ERROR(CheckLive());
    return pool_->MallocBytes(size, type_id, tx_);
  }

  // Frees `payload` at commit (deferred; see Pool::Free). After Free, further
  // Log/Set calls overlapping the object are rejected — the freed-object
  // misuse the old macro API could not detect. The typed form knows the
  // object's extent; FreeBytes tracks at least the first byte.
  template <typename T>
  puddles::Status Free(T* payload) {
    return FreeSized(payload, sizeof(T));
  }

  puddles::Status FreeBytes(void* payload) { return FreeSized(payload, 1); }

  puddles::Status FreeSized(void* payload, size_t size) {
    RETURN_IF_ERROR(CheckLive());
    RETURN_IF_ERROR(pool_->Free(payload, tx_));
    tx_->NoteFreedRange(payload, size);
    return puddles::OkStatus();
  }

  // The pool this context was opened on (allocation target; logging may
  // still reach any mapped puddle — transactions are not pool-local, §3.6).
  Pool& pool() const { return *pool_; }

  bool alive() const {
    return tx_ != nullptr && tx_->active() && tx_->epoch() == epoch_;
  }

 private:
  friend class Pool;

  Tx(Pool* pool, Transaction* tx) : pool_(pool), tx_(tx), epoch_(tx->epoch()) {}

  puddles::Status CheckLive() const {
    if (!alive()) {
      return FailedPreconditionError(
          "Tx used outside its pool.Run scope (stale or completed transaction context)");
    }
    return puddles::OkStatus();
  }

  puddles::Status CheckUsable(const void* addr, size_t size) const {
    RETURN_IF_ERROR(CheckLive());
    if (addr == nullptr || size == 0) {
      return InvalidArgumentError("Tx: null/empty range");
    }
    if (!pool_->CoversPmRange(addr, size)) {
      return InvalidArgumentError(
          "Tx: address is not in mapped puddle space (DRAM pointer? unmapped pool?)");
    }
    if (tx_->IntersectsFreedRange(addr, size)) {
      return FailedPreconditionError("Tx: object was freed earlier in this transaction");
    }
    return puddles::OkStatus();
  }

  Pool* pool_ = nullptr;
  Transaction* tx_ = nullptr;
  uint64_t epoch_ = 0;
};

template <typename Fn>
puddles::Status Pool::Run(Fn&& fn) {
  static_assert(std::is_invocable_r_v<puddles::Status, Fn, Tx&>,
                "pool.Run callback must be invocable as Status(puddles::Tx&) — "
                "return OkStatus() to commit, any error to roll back");
  ASSIGN_OR_RETURN(Transaction * raw, BeginTx());
  if (raw->depth() > 1) {
    // BeginTx flat-nested into an already-open transaction; pop the level we
    // just pushed and refuse. (Commit at depth > 1 only decrements.)
    (void)raw->Commit();
    return FailedPreconditionError(
        "pool.Run does not nest: a transaction is already open on this thread");
  }
  Tx tx(this, raw);
  puddles::Status body = puddles::OkStatus();
  try {
    body = fn(tx);
  } catch (...) {
    (void)raw->Abort();  // Abort-on-unwind, as with the legacy macros.
    throw;
  }
  if (!body.ok()) {
    (void)raw->Abort();
    return body;
  }
  puddles::Status committed = raw->Commit();
  if (!committed.ok()) {
    (void)raw->Abort();
  }
  return committed;
}

template <typename Fn>
puddles::Status Pool::Run(const RunOptions& options, Fn&& fn) {
  puddles::Status status = Run(std::forward<Fn>(fn));
  if (status.ok() && options.sync && durability_ == Durability::kEpoch) {
    Sync();
  }
  return status;
}

}  // namespace puddles

#endif  // SRC_LIBPUDDLES_POOL_H_
