#include "src/libpuddles/type_registry.h"

#include <cstring>

namespace puddles {

TypeRegistry& TypeRegistry::Instance() {
  static TypeRegistry* registry = new TypeRegistry();
  return *registry;
}

namespace {

// Structural validation shared by every ingest path (typed registration,
// offset lists, daemon merge): a malformed record must be rejected here, not
// discovered later as an out-of-bounds read during relocation.
puddles::Status ValidateRecord(const puddled::PtrMapRecord& record) {
  if (record.object_size == 0) {
    return InvalidArgumentError("pointer map: object_size must be non-zero");
  }
  if (record.num_fields > puddled::kMaxPtrFields) {
    return InvalidArgumentError("pointer map: too many pointer fields");
  }
  const uint64_t capacity = record.object_size / sizeof(void*);
  if (record.num_fields + static_cast<uint64_t>(record.repeat_count) > capacity) {
    return InvalidArgumentError(
        "pointer map: field arity exceeds what sizeof(T) can hold");
  }
  for (uint32_t i = 0; i < record.num_fields; ++i) {
    if (record.field_offsets[i] + sizeof(void*) > record.object_size) {
      return InvalidArgumentError("pointer map: field offset outside object");
    }
  }
  if (record.repeat_count != 0 &&
      record.repeat_offset + static_cast<uint64_t>(record.repeat_count) * sizeof(void*) >
          record.object_size) {
    return InvalidArgumentError("pointer map: pointer-array region outside object");
  }
  return OkStatus();
}

}  // namespace

puddles::Status TypeRegistry::Add(const puddled::PtrMapRecord& record) {
  RETURN_IF_ERROR(ValidateRecord(record));
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = maps_.emplace(record.type_id, record);
  if (!inserted && std::memcmp(&it->second, &record, sizeof(record)) != 0) {
    return AlreadyExistsError("conflicting pointer map for type");
  }
  return OkStatus();
}

puddles::Result<puddled::PtrMapRecord> TypeRegistry::Lookup(TypeId type_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = maps_.find(type_id);
  if (it == maps_.end()) {
    return NotFoundError("no pointer map registered for type");
  }
  return it->second;
}

bool TypeRegistry::Contains(TypeId type_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return maps_.find(type_id) != maps_.end();
}

std::vector<puddled::PtrMapRecord> TypeRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<puddled::PtrMapRecord> out;
  out.reserve(maps_.size());
  for (const auto& [id, record] : maps_) {
    out.push_back(record);
  }
  return out;
}

}  // namespace puddles
