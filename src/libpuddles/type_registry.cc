#include "src/libpuddles/type_registry.h"

#include <cstring>

namespace puddles {

TypeRegistry& TypeRegistry::Instance() {
  static TypeRegistry* registry = new TypeRegistry();
  return *registry;
}

puddles::Status TypeRegistry::Add(const puddled::PtrMapRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = maps_.emplace(record.type_id, record);
  if (!inserted && std::memcmp(&it->second, &record, sizeof(record)) != 0) {
    return AlreadyExistsError("conflicting pointer map for type");
  }
  return OkStatus();
}

puddles::Result<puddled::PtrMapRecord> TypeRegistry::Lookup(TypeId type_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = maps_.find(type_id);
  if (it == maps_.end()) {
    return NotFoundError("no pointer map registered for type");
  }
  return it->second;
}

bool TypeRegistry::Contains(TypeId type_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return maps_.find(type_id) != maps_.end();
}

std::vector<puddled::PtrMapRecord> TypeRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<puddled::PtrMapRecord> out;
  out.reserve(maps_.size());
  for (const auto& [id, record] : maps_) {
    out.push_back(record);
  }
  return out;
}

}  // namespace puddles
