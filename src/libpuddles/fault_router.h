// SIGSEGV-driven on-demand puddle mapping (paper §4.2).
//
// "If the application dereferences any pointer that points to an unmapped
// puddle, it generates a page fault. Libpuddles intercepts this page fault
// ... and maps the faulting puddle to the application's address space."
//
// The paper uses userfaultfd; unprivileged userfaultfd is disabled in this
// environment (DESIGN.md §1), so we intercept SIGSEGV over the PROT_NONE
// global reservation instead — observably identical: touch unmapped puddle →
// fault → map (+ rewrite) → resume.
//
// Signal-safety: the handler itself does almost nothing. It publishes the
// fault address to a mailbox, wakes a helper thread through a pipe (write(2)
// is async-signal-safe), and spins on an atomic until the helper reports
// completion. The helper thread runs full-fat C++ — registry lookups, RPCs,
// mmap, pointer rewriting — outside signal context. Faults the router does
// not own are re-raised with the default disposition so genuine segfaults
// still crash loudly.
#ifndef SRC_LIBPUDDLES_FAULT_ROUTER_H_
#define SRC_LIBPUDDLES_FAULT_ROUTER_H_

#include <atomic>
#include <csignal>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace puddles {

class FaultRouter {
 public:
  static FaultRouter& Instance();

  // Installs the SIGSEGV handler and starts the helper thread (idempotent).
  void Install();

  // Registers a resolver (one per Runtime). Resolvers run on the helper
  // thread; returning true means the address is now mapped and the faulting
  // access may retry.
  using Resolver = std::function<bool(uintptr_t)>;
  uint64_t AddResolver(Resolver resolver);
  void RemoveResolver(uint64_t id);

  struct Stats {
    uint64_t faults_handled = 0;
    uint64_t faults_unresolved = 0;
  };
  Stats stats() const;

 private:
  FaultRouter() = default;

  static void SignalHandler(int signo, siginfo_t* info, void* context);
  void HelperLoop();
  bool Dispatch(uintptr_t addr);

  // Mailbox protocol: 0 idle → 1 posted → (2 ok | 3 failed) → 0.
  std::atomic<int> mailbox_state_{0};
  std::atomic<uintptr_t> mailbox_addr_{0};
  int wake_pipe_[2] = {-1, -1};

  std::thread helper_;
  std::atomic<uint64_t> helper_tid_{0};
  std::atomic<bool> installed_{false};
  struct sigaction old_action_ = {};

  std::mutex resolvers_mu_;
  std::vector<std::pair<uint64_t, Resolver>> resolvers_;
  uint64_t next_resolver_id_ = 1;

  std::atomic<uint64_t> faults_handled_{0};
  std::atomic<uint64_t> faults_unresolved_{0};
};

}  // namespace puddles

#endif  // SRC_LIBPUDDLES_FAULT_ROUTER_H_
