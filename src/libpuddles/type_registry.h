// Per-process registry of pointer maps (paper §4.2).
//
// "Puddles solve this problem by requiring the application to register
// pointer maps with Puddled for each persistent type used by the application.
// These pointer maps are simply a list, where each element contains the
// offset of a pointer within the object."
//
// Types register once per process (usually at static-init or startup); the
// Runtime uploads the registry to Puddled when pools are created or opened,
// so the daemon can export maps alongside pools and relocation can find every
// pointer.
//
// The declarative surface (DESIGN.md §9) derives offsets from member
// pointers, so maps cannot drift from the struct they describe:
//
//   PUDDLES_TYPE(Node, &Node::next, &Node::prev);   // scalar pointer fields
//   PUDDLES_TYPE(Node16, &Node16::children);        // pointer array ⇒ repeat
//                                                   // region, extent deduced
//
// A non-pointer member is a compile error; array extents come from the
// member's type, never a hand-typed count. The initializer_list-of-offsets
// overloads remain as the wire-level escape hatch (daemon Merge, tests).
#ifndef SRC_LIBPUDDLES_TYPE_REGISTRY_H_
#define SRC_LIBPUDDLES_TYPE_REGISTRY_H_

#include <cstddef>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/type_name.h"
#include "src/daemon/types.h"

namespace puddles {

// Byte offset of a member designated by pointer-to-member, the declarative
// replacement for offsetof() in pointer maps. (Materializes the offset from
// suitably aligned storage; valid for the standard-layout types the registry
// requires.)
template <typename T, typename M>
size_t MemberOffset(M T::*field) {
  alignas(T) static const unsigned char storage[sizeof(T)] = {};
  const T* object = reinterpret_cast<const T*>(storage);
  return static_cast<size_t>(
      reinterpret_cast<const unsigned char*>(std::addressof(object->*field)) - storage);
}

// One normalized pointer-map field: a scalar pointer member
// (repeat_count == 0) or a homogeneous pointer-array member.
struct PtrFieldSpec {
  size_t offset = 0;
  size_t repeat_count = 0;
};

class TypeRegistry {
 public:
  static TypeRegistry& Instance();

  // ---- Declarative registration (preferred) ----
  //
  // Register<T>(&T::a, &T::b, ...): each argument is a pointer-to-member of
  // T. Plain members must be native pointers (compile-checked); a member of
  // array-of-pointer type becomes the record's repeat region with the array
  // extent as its count. Register<T>() with no fields declares a leaf.
  template <typename T, typename... M>
  puddles::Status Register(M T::*... fields) {
    static_assert(std::is_standard_layout_v<T>,
                  "persistent types must be standard-layout for pointer maps");
    return RegisterSpecs<T>({NormalizeField<T>(fields)...});
  }

  // ---- Offset-list registration (wire-level escape hatch) ----
  //
  // Registers T with the byte offsets of its pointer fields. Offsets come
  // from offsetof(); every field must hold a native pointer into puddle
  // space (or null). Re-registration with identical content is a no-op.
  // Prefer the member-pointer overload above: hand-written offsets drift.
  template <typename T>
  puddles::Status Register(std::initializer_list<size_t> pointer_offsets) {
    return RegisterWithArray<T>(pointer_offsets, 0, 0);
  }

  // Like Register, plus a homogeneous pointer-array region: `array_count`
  // consecutive pointer slots starting at byte `array_offset`. This is how
  // wide nodes whose fan-out exceeds kMaxPtrFields (ART Node48/Node256) stay
  // relocatable without bloating every record to the widest fan-out.
  template <typename T>
  puddles::Status RegisterWithArray(std::initializer_list<size_t> pointer_offsets,
                                    size_t array_offset, size_t array_count) {
    static_assert(std::is_standard_layout_v<T>,
                  "persistent types must be standard-layout for offsetof maps");
    puddled::PtrMapRecord record{};
    record.type_id = TypeIdOf<T>();
    record.object_size = sizeof(T);
    record.num_fields = 0;
    for (size_t offset : pointer_offsets) {
      if (record.num_fields >= puddled::kMaxPtrFields) {
        return InvalidArgumentError("too many pointer fields for one type");
      }
      if (offset + sizeof(void*) > sizeof(T)) {
        return InvalidArgumentError("pointer field offset outside object");
      }
      record.field_offsets[record.num_fields++] = static_cast<uint32_t>(offset);
    }
    if (array_count != 0) {
      if (array_offset + array_count * sizeof(void*) > sizeof(T)) {
        return InvalidArgumentError("pointer-array region outside object");
      }
      record.repeat_offset = static_cast<uint32_t>(array_offset);
      record.repeat_count = static_cast<uint32_t>(array_count);
    }
    return Add(record);
  }

  // A leaf type: no pointers. Registering leaves is optional but lets
  // relocation distinguish "no pointers" from "unknown type".
  template <typename T>
  puddles::Status RegisterLeaf() {
    puddled::PtrMapRecord record{};
    record.type_id = TypeIdOf<T>();
    record.object_size = sizeof(T);
    record.num_fields = 0;
    return Add(record);
  }

  // Validates the record (field/repeat bounds vs object_size, kMaxPtrFields,
  // arity vs sizeof) and inserts it. Registering a conflicting map for an
  // already-registered type is AlreadyExists; an identical map is a no-op.
  puddles::Status Add(const puddled::PtrMapRecord& record);
  puddles::Result<puddled::PtrMapRecord> Lookup(TypeId type_id) const;
  bool Contains(TypeId type_id) const;

  std::vector<puddled::PtrMapRecord> Snapshot() const;

  // Merges records fetched from the daemon (e.g. after import).
  puddles::Status Merge(const puddled::PtrMapRecord& record) { return Add(record); }

 private:
  TypeRegistry() = default;

  // Normalizes one member designator: scalar pointer member or
  // array-of-pointer member (⇒ repeat region with the deduced extent).
  template <typename T, typename M>
  static PtrFieldSpec NormalizeField(M T::*field) {
    if constexpr (std::is_array_v<M>) {
      static_assert(std::is_pointer_v<std::remove_extent_t<M>>,
                    "pointer-map array fields must be arrays of native pointers");
      return PtrFieldSpec{MemberOffset(field), std::extent_v<M>};
    } else {
      static_assert(std::is_pointer_v<M>,
                    "pointer-map fields must be native pointers (did you pass a "
                    "non-pointer member to PUDDLES_TYPE / Register<T>?)");
      return PtrFieldSpec{MemberOffset(field), 0};
    }
  }

  template <typename T>
  puddles::Status RegisterSpecs(std::initializer_list<PtrFieldSpec> specs) {
    puddled::PtrMapRecord record{};
    record.type_id = TypeIdOf<T>();
    record.object_size = sizeof(T);
    record.num_fields = 0;
    for (const PtrFieldSpec& spec : specs) {
      if (spec.repeat_count != 0) {
        if (record.repeat_count != 0) {
          return InvalidArgumentError("a pointer map holds at most one pointer-array region");
        }
        record.repeat_offset = static_cast<uint32_t>(spec.offset);
        record.repeat_count = static_cast<uint32_t>(spec.repeat_count);
        continue;
      }
      if (record.num_fields >= puddled::kMaxPtrFields) {
        return InvalidArgumentError("too many pointer fields for one type");
      }
      record.field_offsets[record.num_fields++] = static_cast<uint32_t>(spec.offset);
    }
    return Add(record);
  }

  mutable std::mutex mu_;
  std::unordered_map<TypeId, puddled::PtrMapRecord> maps_;
};

}  // namespace puddles

// Declarative pointer-map registration for application code:
//
//   PUDDLES_TYPE(TodoItem, &TodoItem::next);
//   PUDDLES_TYPE(Node256, &Node256::children);  // array ⇒ repeat region
//   PUDDLES_TYPE(Blob);                         // leaf: no pointers
//
// Every field is a pointer-to-member: offsets are derived, arity and bounds
// are validated against sizeof(T), and a non-pointer member fails to
// compile. Registration errors (e.g. conflicting re-registration) are
// swallowed here — use TypeRegistry::Instance().Register<T>(...) directly
// when the Status matters.
#define PUDDLES_TYPE(T, ...) \
  (void)::puddles::TypeRegistry::Instance().Register<T>(__VA_ARGS__)

#endif  // SRC_LIBPUDDLES_TYPE_REGISTRY_H_
