// Per-process registry of pointer maps (paper §4.2).
//
// "Puddles solve this problem by requiring the application to register
// pointer maps with Puddled for each persistent type used by the application.
// These pointer maps are simply a list, where each element contains the
// offset of a pointer within the object."
//
// Types register once per process (usually at static-init or startup); the
// Runtime uploads the registry to Puddled when pools are created or opened,
// so the daemon can export maps alongside pools and relocation can find every
// pointer.
#ifndef SRC_LIBPUDDLES_TYPE_REGISTRY_H_
#define SRC_LIBPUDDLES_TYPE_REGISTRY_H_

#include <cstddef>
#include <initializer_list>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/type_name.h"
#include "src/daemon/types.h"

namespace puddles {

class TypeRegistry {
 public:
  static TypeRegistry& Instance();

  // Registers T with the byte offsets of its pointer fields. Offsets come
  // from offsetof(); every field must hold a native pointer into puddle
  // space (or null). Re-registration with identical content is a no-op.
  template <typename T>
  puddles::Status Register(std::initializer_list<size_t> pointer_offsets) {
    return RegisterWithArray<T>(pointer_offsets, 0, 0);
  }

  // Like Register, plus a homogeneous pointer-array region: `array_count`
  // consecutive pointer slots starting at byte `array_offset`. This is how
  // wide nodes whose fan-out exceeds kMaxPtrFields (ART Node48/Node256) stay
  // relocatable without bloating every record to the widest fan-out.
  template <typename T>
  puddles::Status RegisterWithArray(std::initializer_list<size_t> pointer_offsets,
                                    size_t array_offset, size_t array_count) {
    static_assert(std::is_standard_layout_v<T>,
                  "persistent types must be standard-layout for offsetof maps");
    puddled::PtrMapRecord record{};
    record.type_id = TypeIdOf<T>();
    record.object_size = sizeof(T);
    record.num_fields = 0;
    for (size_t offset : pointer_offsets) {
      if (record.num_fields >= puddled::kMaxPtrFields) {
        return InvalidArgumentError("too many pointer fields for one type");
      }
      if (offset + sizeof(void*) > sizeof(T)) {
        return InvalidArgumentError("pointer field offset outside object");
      }
      record.field_offsets[record.num_fields++] = static_cast<uint32_t>(offset);
    }
    if (array_count != 0) {
      if (array_offset + array_count * sizeof(void*) > sizeof(T)) {
        return InvalidArgumentError("pointer-array region outside object");
      }
      record.repeat_offset = static_cast<uint32_t>(array_offset);
      record.repeat_count = static_cast<uint32_t>(array_count);
    }
    return Add(record);
  }

  // A leaf type: no pointers. Registering leaves is optional but lets
  // relocation distinguish "no pointers" from "unknown type".
  template <typename T>
  puddles::Status RegisterLeaf() {
    puddled::PtrMapRecord record{};
    record.type_id = TypeIdOf<T>();
    record.object_size = sizeof(T);
    record.num_fields = 0;
    return Add(record);
  }

  puddles::Status Add(const puddled::PtrMapRecord& record);
  puddles::Result<puddled::PtrMapRecord> Lookup(TypeId type_id) const;
  bool Contains(TypeId type_id) const;

  std::vector<puddled::PtrMapRecord> Snapshot() const;

  // Merges records fetched from the daemon (e.g. after import).
  puddles::Status Merge(const puddled::PtrMapRecord& record) { return Add(record); }

 private:
  TypeRegistry() = default;

  mutable std::mutex mu_;
  std::unordered_map<TypeId, puddled::PtrMapRecord> maps_;
};

}  // namespace puddles

#endif  // SRC_LIBPUDDLES_TYPE_REGISTRY_H_
