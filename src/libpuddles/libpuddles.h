// Umbrella header for the Puddles client library: include this to use pools,
// typed transaction contexts (pool.Run + puddles::Tx), declarative pointer
// maps (PUDDLES_TYPE), typed allocation, relocation-aware mapping, and the
// deprecated legacy macros (TX_BEGIN/TX_ADD/TX_REDO_SET/TX_END).
#ifndef SRC_LIBPUDDLES_LIBPUDDLES_H_
#define SRC_LIBPUDDLES_LIBPUDDLES_H_

#include "src/daemon/client.h"
#include "src/libpuddles/pool.h"
#include "src/libpuddles/runtime.h"
#include "src/libpuddles/type_registry.h"
#include "src/tx/tx.h"

#endif  // SRC_LIBPUDDLES_LIBPUDDLES_H_
