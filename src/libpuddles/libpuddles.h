// Umbrella header for the Puddles client library: include this to use pools,
// transactions (TX_BEGIN/TX_ADD/TX_REDO_SET/TX_END), typed allocation, and
// relocation-aware mapping.
#ifndef SRC_LIBPUDDLES_LIBPUDDLES_H_
#define SRC_LIBPUDDLES_LIBPUDDLES_H_

#include "src/daemon/client.h"
#include "src/libpuddles/pool.h"
#include "src/libpuddles/runtime.h"
#include "src/libpuddles/type_registry.h"
#include "src/tx/tx.h"

#endif  // SRC_LIBPUDDLES_LIBPUDDLES_H_
