#include "src/libpuddles/runtime.h"

#include <unistd.h>

#include <atomic>
#include <unordered_map>

#include "src/common/log.h"
#include "src/libpuddles/fault_router.h"
#include "src/libpuddles/pool.h"
#include "src/pmem/global_space.h"

namespace puddles {
namespace {
// One cached log per (runtime, thread), keyed by Runtime::generation_ so a
// new Runtime at a recycled address can never alias stale thread state.
// Values are Runtime::ThreadLog* (private nested type, hence void* here).
thread_local std::unordered_map<uint64_t, void*> tls_logs;
}  // namespace

puddles::Result<std::unique_ptr<Runtime>> Runtime::Create(
    std::shared_ptr<puddled::DaemonClient> client) {
  if (!pmem::GlobalPuddleSpace().reserved()) {
    return UnavailableError("global puddle space reservation failed");
  }
  static std::atomic<uint64_t> next_generation{1};
  std::unique_ptr<Runtime> runtime(new Runtime(std::move(client)));
  runtime->generation_ = next_generation.fetch_add(1);
  Runtime* raw = runtime.get();
  runtime->resolver_id_ =
      FaultRouter::Instance().AddResolver([raw](uintptr_t addr) { return raw->HandleFault(addr); });
  return runtime;
}

Runtime::~Runtime() {
  FaultRouter::Instance().RemoveResolver(resolver_id_);
  // Stop the epoch advancer first: its final close/drain writes into mapped
  // log and log-space puddles, which are unmapped just below.
  epoch_sys_.reset();
  std::lock_guard<std::mutex> lock(mu_);
  auto& space = pmem::GlobalPuddleSpace();
  for (auto& [base, entry] : entries_by_base_) {
    if (entry->mapped) {
      (void)space.UnmapToReserved(entry->info.base_addr, entry->info.file_size);
    }
    (void)space.FreeRange(entry->info.base_addr);
    if (entry->fd >= 0) {
      ::close(entry->fd);
    }
  }
}

puddles::Result<Runtime::Entry*> Runtime::RegisterPuddle(const puddled::PuddleInfo& info,
                                                         int fd, bool writable,
                                                         const Translator* translator) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = entries_by_uuid_.find(info.uuid); it != entries_by_uuid_.end()) {
    ::close(fd);
    return it->second;
  }
  auto& space = pmem::GlobalPuddleSpace();
  puddles::Status claimed = space.ClaimRange(info.base_addr, info.file_size);
  if (!claimed.ok()) {
    ::close(fd);
    return AlreadyExistsError(
        "puddle address range conflicts with a mapped puddle — import a copy instead "
        "(puddle " +
        info.uuid.ToString() + ")");
  }
  auto entry = std::make_unique<Entry>();
  entry->info = info;
  entry->fd = fd;
  entry->writable = writable;
  entry->translator = translator;
  Entry* raw = entry.get();
  entries_by_base_[info.base_addr] = std::move(entry);
  entries_by_uuid_[info.uuid] = raw;
  ++stats_.puddles_registered;
  return raw;
}

puddles::Result<Runtime::Entry*> Runtime::FetchAndRegister(const Uuid& uuid, bool writable,
                                                           const Translator* translator) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto it = entries_by_uuid_.find(uuid); it != entries_by_uuid_.end()) {
      return it->second;
    }
  }
  ASSIGN_OR_RETURN(auto fetched, client_->GetPuddle(uuid, writable));
  return RegisterPuddle(fetched.first, fetched.second, writable, translator);
}

puddles::Status Runtime::MapEntryLocked(Entry* entry) {
  if (entry->mapped) {
    return OkStatus();
  }
  auto& space = pmem::GlobalPuddleSpace();
  RETURN_IF_ERROR(space.MapFileAt(entry->fd, entry->info.base_addr, entry->info.file_size,
                                  entry->writable));
  auto view = Puddle::Attach(reinterpret_cast<void*>(entry->info.base_addr),
                             entry->info.file_size);
  if (!view.ok()) {
    (void)space.UnmapToReserved(entry->info.base_addr, entry->info.file_size);
    return view.status();
  }
  entry->view = *view;
  entry->mapped = true;
  ++stats_.puddles_mapped;

  // Incremental relocation (§4.2): translate this puddle's pointers before
  // the application can see them.
  if (entry->view.needs_rewrite()) {
    if (!entry->writable) {
      return FailedPreconditionError("puddle needs pointer rewrite but is mapped read-only");
    }
    Translator identity;
    const Translator* translator =
        entry->translator != nullptr ? entry->translator : &identity;
    auto rewrite = RewritePuddle(entry->view, *translator, TypeRegistry::Instance());
    RETURN_IF_ERROR(rewrite.status());
    ++stats_.rewrites;
    stats_.pointers_rewritten += rewrite->pointers_rewritten;
    // Tell the daemon this puddle is clean (frees the frontier hold).
    (void)client_->CompleteRewrite(entry->info.uuid);
  }
  return OkStatus();
}

puddles::Result<Runtime::Entry*> Runtime::EnsureMapped(const Uuid& uuid) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_by_uuid_.find(uuid);
  if (it == entries_by_uuid_.end()) {
    return NotFoundError("puddle not registered with this runtime");
  }
  RETURN_IF_ERROR(MapEntryLocked(it->second));
  return it->second;
}

Runtime::Entry* Runtime::FindEntryByAddr(uintptr_t addr) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_by_base_.upper_bound(addr);
  if (it == entries_by_base_.begin()) {
    return nullptr;
  }
  --it;
  Entry* entry = it->second.get();
  if (addr >= entry->info.base_addr + entry->info.file_size) {
    return nullptr;
  }
  return entry;
}

Runtime::Entry* Runtime::FindEntryByUuid(const Uuid& uuid) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_by_uuid_.find(uuid);
  return it == entries_by_uuid_.end() ? nullptr : it->second;
}

std::vector<Runtime::Entry*> Runtime::Entries() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry*> entries;
  entries.reserve(entries_by_base_.size());
  for (auto& [base, entry] : entries_by_base_) {
    entries.push_back(entry.get());
  }
  return entries;
}

bool Runtime::HandleFault(uintptr_t addr) {
  Entry* entry = FindEntryByAddr(addr);
  if (entry != nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    if (entry->mapped) {
      return false;  // Mapped but still faulting: a real protection error.
    }
    return MapEntryLocked(entry).ok();
  }
  // Unknown address inside puddle space: possibly a cross-pool pointer into a
  // puddle we never fetched. Ask the daemon who owns it.
  auto info = client_->FindPuddleByAddr(addr);
  if (!info.ok()) {
    return false;
  }
  auto fetched = client_->GetPuddle(info->uuid, /*write=*/true);
  if (!fetched.ok()) {
    return false;
  }
  auto registered = RegisterPuddle(fetched->first, fetched->second, /*writable=*/true, nullptr);
  if (!registered.ok()) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  return MapEntryLocked(*registered).ok();
}

puddles::Status Runtime::UploadPointerMaps() {
  for (const puddled::PtrMapRecord& record : TypeRegistry::Instance().Snapshot()) {
    RETURN_IF_ERROR(client_->RegisterPtrMap(record));
  }
  return OkStatus();
}

// ---------------------------------------------------------------------------
// Pools
// ---------------------------------------------------------------------------

puddles::Result<Pool*> Runtime::CreatePool(const std::string& name, uint32_t mode) {
  ASSIGN_OR_RETURN(puddled::PoolInfo info, client_->CreatePool(name, mode));
  return FinishOpenPool(info, /*writable=*/true);
}

puddles::Result<Pool*> Runtime::OpenPool(const std::string& name, bool writable) {
  ASSIGN_OR_RETURN(puddled::PoolInfo info, client_->OpenPool(name));
  return FinishOpenPool(info, writable);
}

puddles::Result<Pool*> Runtime::FinishOpenPool(const puddled::PoolInfo& info, bool writable) {
  RETURN_IF_ERROR(UploadPointerMaps());

  std::unique_ptr<Pool> pool(new Pool(this, info, writable));

  // Map the pool metadata eagerly.
  ASSIGN_OR_RETURN(Entry * meta_entry, FetchAndRegister(info.meta_puddle, writable, nullptr));
  ASSIGN_OR_RETURN(Entry * mapped_meta, EnsureMapped(info.meta_puddle));
  ASSIGN_OR_RETURN(pool->meta_, PoolMetaView::Attach(mapped_meta->view));
  (void)meta_entry;

  // Register all members (lazily mapped) and assemble the pool's relocation
  // translation table from the pool meta's persistent old-base array.
  const uint32_t members = pool->meta_.num_members();
  struct Pending {
    puddled::PuddleInfo info;
    int fd;
  };
  std::vector<Pending> pending;
  for (uint32_t i = 0; i < members; ++i) {
    const Uuid member = pool->meta_.member(i);
    pool->data_members_.push_back(member);
    ASSIGN_OR_RETURN(auto fetched, client_->GetPuddle(member, writable));
    pending.push_back({fetched.first, fetched.second});
    const uint64_t old_base = pool->meta_.member_old_base(i);
    if (old_base != 0) {
      RETURN_IF_ERROR(
          pool->translator_.Add(old_base, fetched.first.file_size, fetched.first.base_addr));
    }
  }
  for (Pending& p : pending) {
    RETURN_IF_ERROR(RegisterPuddle(p.info, p.fd, writable, &pool->translator_).status());
  }

  // "Puddles support relocation on import by first mapping the root puddle."
  if (pool->meta_.has_root()) {
    RETURN_IF_ERROR(EnsureMapped(pool->meta_.root_puddle()).status());
  }

  Pool* raw = pool.get();
  std::lock_guard<std::mutex> lock(mu_);
  pools_.push_back(std::move(pool));
  return raw;
}

puddles::Status Runtime::ExportPool(const std::string& name, const std::string& dest_dir) {
  return client_->ExportPool(name, dest_dir);
}

puddles::Result<Pool*> Runtime::ImportPool(const std::string& src_dir,
                                           const std::string& new_name) {
  ASSIGN_OR_RETURN(puddled::ImportResult result, client_->ImportPool(src_dir, new_name));
  return OpenPool(result.pool.name);
}

// ---------------------------------------------------------------------------
// Per-thread transaction logs (§4.1)
// ---------------------------------------------------------------------------

puddles::Status Runtime::EnsureLogSpace() {
  if (log_space_entry_ != nullptr) {
    return OkStatus();
  }
  ASSIGN_OR_RETURN(auto created, client_->CreatePuddle(PuddleKind::kLogSpace, 1 << 20));
  auto [info, fd] = created;
  ASSIGN_OR_RETURN(Entry * entry, RegisterPuddle(info, fd, /*writable=*/true, nullptr));
  {
    std::lock_guard<std::mutex> lock(mu_);
    RETURN_IF_ERROR(MapEntryLocked(entry));
  }
  RETURN_IF_ERROR(LogSpaceView::Format(entry->view));
  ASSIGN_OR_RETURN(log_space_, LogSpaceView::Attach(entry->view));
  // Registration makes the daemon responsible for recovery from now on.
  RETURN_IF_ERROR(client_->RegisterLogSpace(info.uuid));
  log_space_entry_ = entry;
  return OkStatus();
}

puddles::Result<Runtime::ThreadLog*> Runtime::ThreadLogForThisThread() {
  // "Every thread caches the log puddle used on the first transaction of
  // that thread and reuses it."
  if (ThreadLog* cached = FindThreadLogForThisThread(); cached != nullptr) {
    return cached;
  }

  {
    std::lock_guard<std::mutex> lock(thread_logs_mu_);
    RETURN_IF_ERROR(EnsureLogSpace());
  }

  ASSIGN_OR_RETURN(auto created, client_->CreatePuddle(PuddleKind::kLog, kDefaultLogHeapSize));
  auto [info, fd] = created;
  ASSIGN_OR_RETURN(Entry * entry, RegisterPuddle(info, fd, /*writable=*/true, nullptr));
  {
    std::lock_guard<std::mutex> lock(mu_);
    RETURN_IF_ERROR(MapEntryLocked(entry));
  }
  RETURN_IF_ERROR(LogRegion::Format(entry->view.heap(), entry->view.heap_size()));
  ASSIGN_OR_RETURN(LogRegion region,
                   LogRegion::Attach(entry->view.heap(), entry->view.heap_size()));

  auto state = std::make_unique<ThreadLog>();
  state->entry = entry;
  state->region = region;
  ThreadLog* raw = state.get();
  {
    std::lock_guard<std::mutex> lock(thread_logs_mu_);
    RETURN_IF_ERROR(log_space_.AddLog(info.uuid));
    thread_logs_.push_back(std::move(state));
  }
  tls_logs[generation_] = raw;
  return raw;
}

Runtime::ThreadLog* Runtime::FindThreadLogForThisThread() {
  auto it = tls_logs.find(generation_);
  return it == tls_logs.end() ? nullptr : static_cast<ThreadLog*>(it->second);
}

puddles::Result<TxTarget*> Runtime::ThreadTxTarget() {
  ASSIGN_OR_RETURN(ThreadLog * state, ThreadLogForThisThread());
  if (state->cached_target.log != nullptr) {
    return &state->cached_target;
  }
  TxTarget target;
  target.log = &state->region;
  target.grow = [this, state]() -> puddles::Result<std::pair<LogRegion*, Uuid>> {
    // Reuse a spare grown log if available; otherwise allocate a fresh log
    // puddle from the daemon (Fig. 5 chaining).
    for (auto& [entry, region] : state->spares) {
      if (region != nullptr) {
        LogRegion* raw = region.release();
        return std::make_pair(raw, entry->info.uuid);
      }
    }
    ASSIGN_OR_RETURN(auto created, client_->CreatePuddle(PuddleKind::kLog, kDefaultLogHeapSize));
    auto [info, fd] = created;
    ASSIGN_OR_RETURN(Entry * entry, RegisterPuddle(info, fd, /*writable=*/true, nullptr));
    {
      std::lock_guard<std::mutex> lock(mu_);
      RETURN_IF_ERROR(MapEntryLocked(entry));
    }
    RETURN_IF_ERROR(LogRegion::Format(entry->view.heap(), entry->view.heap_size()));
    auto region = LogRegion::Attach(entry->view.heap(), entry->view.heap_size());
    RETURN_IF_ERROR(region.status());
    state->spares.emplace_back(entry, nullptr);
    return std::make_pair(new LogRegion(*region), info.uuid);
  };
  target.release = [state](LogRegion* region) {
    region->Reset(0, 2);
    for (auto& [entry, slot] : state->spares) {
      if (slot == nullptr && entry->view.heap() == region->base()) {
        slot.reset(region);
        return;
      }
    }
    delete region;
  };
  state->cached_target = std::move(target);
  return &state->cached_target;
}

// ---------------------------------------------------------------------------
// Epoch-based group commit (docs/epoch.md)
// ---------------------------------------------------------------------------

puddles::Status Runtime::EnsureEpochSys(const EpochOptions& options) {
  std::lock_guard<std::mutex> lock(thread_logs_mu_);
  if (epoch_sys_ != nullptr) {
    return OkStatus();  // Already running; the first caller's options win.
  }
  // The retirement record lives on the log space header.
  RETURN_IF_ERROR(EnsureLogSpace());
  auto sys = std::make_unique<EpochSys>(
      options, [this](uint64_t epoch) { log_space_.SetRetiredEpoch(epoch); });
  RETURN_IF_ERROR(sys->Start());
  epoch_sys_ = std::move(sys);
  return OkStatus();
}

puddles::Result<EpochPort*> Runtime::EpochPortForThisThread() {
  {
    std::lock_guard<std::mutex> lock(thread_logs_mu_);
    if (epoch_sys_ == nullptr) {
      return FailedPreconditionError(
          "epoch durability not enabled (call Pool::SetDurability first)");
    }
  }
  // Build the cached target first: the port's release hook reuses its spare
  // bookkeeping, and epoch-mode Begin needs the target anyway.
  ASSIGN_OR_RETURN(TxTarget * target, ThreadTxTarget());
  ThreadLog* state = FindThreadLogForThisThread();
  if (state->port == nullptr) {
    // Continuation regions of a retired epoch go back through the same
    // persistent Reset + spare-return path grown logs always use.
    state->port = epoch_sys_->CreatePort(target->release);
  }
  return state->port.get();
}

EpochPort* Runtime::ExistingEpochPortForThisThread() {
  ThreadLog* state = FindThreadLogForThisThread();
  return state == nullptr ? nullptr : state->port.get();
}

void Runtime::Sync() {
  EpochSys* sys;
  {
    std::lock_guard<std::mutex> lock(thread_logs_mu_);
    sys = epoch_sys_.get();
  }
  if (sys != nullptr) {
    sys->Sync();
  }
}

Runtime::Stats Runtime::stats() {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace puddles
