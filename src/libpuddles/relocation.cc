#include "src/libpuddles/relocation.h"

#include <cstring>

#include "src/pmem/flush.h"

namespace puddles {

puddles::Result<RewriteStats> RewritePuddle(Puddle& puddle, const Translator& translator,
                                            const TypeRegistry& registry) {
  RewriteStats stats;
  if (puddle.kind() != PuddleKind::kData) {
    // Non-data puddles (logs, pool meta) hold no heap pointers by format.
    puddle.CompleteRewrite();
    return stats;
  }
  if (translator.empty()) {
    puddle.CompleteRewrite();
    return stats;
  }

  ASSIGN_OR_RETURN(ObjectHeap heap, puddle.object_heap());

  heap.ForEachObject([&](void* payload, const ObjectHeader& header) {
    ++stats.objects_visited;
    if (header.type_id == kRawBytesTypeId) {
      return;  // Raw byte buffers carry no pointers by contract.
    }
    auto map = registry.Lookup(header.type_id);
    if (!map.ok()) {
      ++stats.objects_without_map;
      return;
    }
    if (map->num_fields == 0 || map->object_size == 0) {
      return;
    }
    // Arrays of T stride by sizeof(T).
    const uint32_t count = header.size / map->object_size;
    auto* bytes = static_cast<uint8_t*>(payload);
    for (uint32_t element = 0; element < count; ++element) {
      for (uint32_t field = 0; field < map->num_fields; ++field) {
        auto* slot = reinterpret_cast<uint64_t*>(
            bytes + static_cast<size_t>(element) * map->object_size +
            map->field_offsets[field]);
        ++stats.pointers_visited;
        const uint64_t value = *slot;
        if (value == 0) {
          continue;
        }
        uint64_t translated;
        if (translator.Translate(value, &translated)) {
          *slot = translated;
          ++stats.pointers_rewritten;
        }
      }
    }
  });

  // Persist the rewritten heap, then clear the rewrite obligation. Crashing
  // before the flag clears re-runs the (idempotent) rewrite.
  pmem::FlushFence(puddle.heap(), puddle.heap_size());
  puddle.CompleteRewrite();
  return stats;
}

}  // namespace puddles
