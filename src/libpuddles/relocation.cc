#include "src/libpuddles/relocation.h"

#include <algorithm>
#include <cstring>

#include "src/common/align.h"
#include "src/pmem/flush.h"

namespace puddles {

puddles::Result<RewriteStats> RewritePuddle(Puddle& puddle, const Translator& translator,
                                            const TypeRegistry& registry,
                                            const RewriteOptions& options) {
  RewriteStats stats;
  if (puddle.kind() != PuddleKind::kData) {
    // Non-data puddles (logs, pool meta) hold no heap pointers by format.
    puddle.CompleteRewrite();
    return stats;
  }
  if (translator.empty()) {
    puddle.CompleteRewrite();
    return stats;
  }

  ASSIGN_OR_RETURN(ObjectHeap heap, puddle.object_heap());

  const uint32_t batch = options.batch_objects == 0 ? 1 : options.batch_objects;
  const uint64_t resume_from = puddle.rewrite_frontier();
  uint64_t index = 0;  // Walk index of the current object.
  uint64_t durable_frontier = resume_from;
  bool dirty_since_fence = false;  // Unfenced flushes outstanding.
  // One-line write-combining buffer: a dirtied line is flushed only once we
  // move past it (flushing before the line's last store would leave that
  // store dirty-but-unflushed at the batch fence). The walk is address-
  // ordered, so revisits of a pending line are the common adjacent-slot case.
  uintptr_t pending_line = 0;
  bool has_pending_line = false;

  auto flush_line = [&](uintptr_t line) {
    pmem::Flush(reinterpret_cast<const void*>(line), kCacheLineSize);
    dirty_since_fence = true;
    ++stats.lines_flushed;
  };
  auto note_dirty = [&](const void* slot) {
    const uintptr_t line = AlignDown(reinterpret_cast<uintptr_t>(slot), kCacheLineSize);
    if (has_pending_line && line == pending_line) {
      return;
    }
    if (has_pending_line) {
      flush_line(pending_line);
    }
    pending_line = line;
    has_pending_line = true;
  };

  // Fences the open batch (if it dirtied anything) and persists the frontier
  // at `next_index`: afterwards, every object below next_index is durably
  // translated and will never be revisited.
  auto persist_progress = [&](uint64_t next_index) {
    if (next_index <= durable_frontier) {
      return;  // No new progress (or resuming past the walk's end).
    }
    if (has_pending_line) {
      flush_line(pending_line);
      has_pending_line = false;
    }
    if (dirty_since_fence) {
      pmem::Fence();
      dirty_since_fence = false;
    }
    puddle.AdvanceRewriteFrontier(next_index);
    durable_frontier = next_index;
    ++stats.frontier_advances;
  };

  heap.ForEachObject([&](void* payload, const ObjectHeader& header, size_t capacity) {
    const uint64_t my_index = index++;
    if (my_index < resume_from) {
      ++stats.objects_skipped_resume;
      return;
    }
    ++stats.objects_visited;
    auto translate_object = [&]() {
      if (header.type_id == kRawBytesTypeId) {
        return;  // Raw byte buffers carry no pointers by contract.
      }
      auto map = registry.Lookup(header.type_id);
      if (!map.ok()) {
        ++stats.objects_without_map;
        return;
      }
      if ((map->num_fields == 0 && map->repeat_count == 0) || map->object_size == 0) {
        return;
      }
      auto translate_slot = [&](uint64_t* slot) {
        ++stats.pointers_visited;
        const uint64_t value = *slot;
        if (value == 0) {
          return;
        }
        uint64_t translated;
        if (!translator.Translate(value, &translated)) {
          return;
        }
        *slot = translated;
        ++stats.pointers_rewritten;
        note_dirty(slot);
      };
      // Arrays of T stride by sizeof(T). Bound the walk by the container's
      // real capacity as well as the recorded size: a corrupt or inflated
      // header.size must not send the walk into allocator slack or a
      // neighboring slot, where garbage bytes that happen to fall in a moved
      // old range would get "translated".
      const uint64_t extent = std::min<uint64_t>(header.size, capacity);
      const uint64_t count = extent / map->object_size;
      auto* bytes = static_cast<uint8_t*>(payload);
      for (uint64_t element = 0; element < count; ++element) {
        uint8_t* element_bytes = bytes + static_cast<size_t>(element) * map->object_size;
        for (uint32_t field = 0; field < map->num_fields; ++field) {
          if (map->field_offsets[field] + sizeof(uint64_t) > map->object_size) {
            continue;  // Corrupt map: field would read past its element.
          }
          translate_slot(
              reinterpret_cast<uint64_t*>(element_bytes + map->field_offsets[field]));
        }
        // Homogeneous pointer-array region (wide nodes past kMaxPtrFields).
        if (map->repeat_count != 0 &&
            map->repeat_offset +
                    static_cast<uint64_t>(map->repeat_count) * sizeof(uint64_t) <=
                map->object_size) {
          for (uint32_t r = 0; r < map->repeat_count; ++r) {
            translate_slot(reinterpret_cast<uint64_t*>(element_bytes + map->repeat_offset +
                                                       r * sizeof(uint64_t)));
          }
        }
      }
    };
    translate_object();
    if (index - durable_frontier >= batch) {
      persist_progress(index);
    }
  });

  // Persist the final frontier before clearing the rewrite obligation: a
  // crash between the two leaves (flag set, frontier = object count), and the
  // re-run skips every object — byte-stable even if a new base coincidentally
  // lands inside another member's old range.
  persist_progress(index);
  puddle.CompleteRewrite();
  return stats;
}

}  // namespace puddles
