#include "src/libpuddles/pool.h"

#include "src/libpuddles/runtime.h"
#include "src/pmem/flush.h"
#include "src/pmem/global_space.h"
#include "src/stats/stats.h"
#include "src/stats/trace_ring.h"

namespace puddles {
namespace {

// Connects allocator metadata writes to the given transaction's undo log
// (Fig. 8: "This new node is automatically undo-logged by the allocator").
// The transaction is threaded explicitly — the allocator never consults
// thread-local state.
LogSink TxSink(Transaction* tx) {
  if (tx == nullptr) {
    return {};
  }
  return LogSink{tx,
                 [](void* ctx, void* addr, size_t size) {
                   (void)static_cast<Transaction*>(ctx)->AddUndoDeferred(addr, size);
                 },
                 [](void* ctx) { static_cast<Transaction*>(ctx)->PublishStaged(); },
                 [](void* ctx, void* addr, size_t size) {
                   static_cast<Transaction*>(ctx)->NoteFreshRange(addr, size);
                 }};
}

}  // namespace

puddles::Status Pool::AddDataPuddle() {
  PUDDLES_TRACE_SPAN("pool_grow");
  PUDDLES_COUNT(kPoolGrow);
  ASSIGN_OR_RETURN(auto created,
                   runtime_->client().CreatePuddle(PuddleKind::kData, kDefaultHeapSize,
                                                   info_.pool_uuid));
  auto [info, fd] = created;
  ASSIGN_OR_RETURN(Runtime::Entry * entry,
                   runtime_->RegisterPuddle(info, fd, /*writable=*/true, &translator_));
  RETURN_IF_ERROR(runtime_->EnsureMapped(info.uuid).status());
  (void)entry;
  RETURN_IF_ERROR(meta_.AddMember(info.uuid));
  data_members_.push_back(info.uuid);
  return OkStatus();
}

bool Pool::CoversPmRange(const void* addr, size_t size) const {
  // Lock-free bounds check against the global puddle-space reservation
  // (§3.4): rejects the real misuse — DRAM/stack/heap pointers entering the
  // persistent log — without taking the runtime mutex on every tx.Log. A
  // still-unmapped (lazily faulted) puddle inside the reservation is a legal
  // target, so a per-entry map lookup would also be wrong, not just slow.
  const uint64_t base = pmem::ConfiguredSpaceBase();
  const uint64_t space = pmem::ConfiguredSpaceSize();
  const uint64_t start = reinterpret_cast<uint64_t>(addr);
  // Overflow-safe: `start + size` could wrap for adversarial sizes (the
  // Translator::Add hardening of PR 2 guards the same way).
  return start >= base && size <= space && start - base <= space - size;
}

puddles::Result<void*> Pool::MallocBytes(size_t size, TypeId type_id) {
  // Legacy implicit-context path: join the thread's open TX_BEGIN
  // transaction, if any, through the src/tx bridge.
  return MallocBytes(size, type_id, tx_internal::ImplicitTransaction());
}

puddles::Result<void*> Pool::MallocBytes(size_t size, TypeId type_id, Transaction* tx) {
  if (!writable_) {
    return FailedPreconditionError("pool opened read-only");
  }
  std::lock_guard<std::mutex> lock(alloc_mu_);
  LogSink sink = TxSink(tx);

  for (size_t attempt = 0; attempt <= data_members_.size(); ++attempt) {
    if (alloc_cursor_ >= data_members_.size()) {
      RETURN_IF_ERROR(AddDataPuddle());
      alloc_cursor_ = data_members_.size() - 1;
    }
    ASSIGN_OR_RETURN(Runtime::Entry * entry,
                     runtime_->EnsureMapped(data_members_[alloc_cursor_]));
    ASSIGN_OR_RETURN(ObjectHeap heap, entry->view.object_heap(sink));
    auto allocated = heap.Allocate(size, type_id);
    if (allocated.ok()) {
      if (tx == nullptr) {
        // Outside a transaction: persist the metadata state now. (Non-TX
        // allocations are not crash-atomic — same contract as PMDK.)
        pmem::FlushFence(reinterpret_cast<uint8_t*>(entry->view.header()) +
                             entry->view.header()->meta_offset,
                         entry->view.header()->meta_size);
      }
      // Inside a transaction the allocator already announced the fresh block
      // through the sink (NoteFresh), so the caller's stores into it are
      // flushed at commit stage 1 — no extra bookkeeping here.
      return *allocated;
    }
    if (allocated.status().code() != StatusCode::kOutOfMemory) {
      return allocated.status();
    }
    ++alloc_cursor_;  // This puddle is full; move on ("serviced from any
                      // puddle in the pool with enough free space").
  }
  return OutOfMemoryError("pool exhausted");
}

puddles::Status Pool::Free(void* payload) {
  return Free(payload, tx_internal::ImplicitTransaction());
}

puddles::Status Pool::Free(void* payload, Transaction* tx) {
  if (!writable_) {
    return FailedPreconditionError("pool opened read-only");
  }
  Runtime::Entry* entry = runtime_->FindEntryByAddr(reinterpret_cast<uintptr_t>(payload));
  if (entry == nullptr || !entry->mapped) {
    return InvalidArgumentError("pointer does not belong to a mapped puddle");
  }
  const Uuid uuid = entry->info.uuid;

  if (tx != nullptr) {
    // Deferred to commit: freed blocks must not be reused within this
    // transaction (rollback safety), and the allocator mutations become part
    // of the transaction's undo log.
    Runtime* runtime = runtime_;
    tx->DeferFree([runtime, uuid, payload, tx]() -> puddles::Status {
      ASSIGN_OR_RETURN(Runtime::Entry * e, runtime->EnsureMapped(uuid));
      ASSIGN_OR_RETURN(ObjectHeap heap, e->view.object_heap(TxSink(tx)));
      return heap.Free(payload);
    });
    return OkStatus();
  }

  std::lock_guard<std::mutex> lock(alloc_mu_);
  ASSIGN_OR_RETURN(ObjectHeap heap, entry->view.object_heap());
  RETURN_IF_ERROR(heap.Free(payload));
  pmem::FlushFence(reinterpret_cast<uint8_t*>(entry->view.header()) +
                       entry->view.header()->meta_offset,
                   entry->view.header()->meta_size);
  // Allocation may resume from this puddle.
  for (size_t i = 0; i < data_members_.size(); ++i) {
    if (data_members_[i] == uuid && i < alloc_cursor_) {
      alloc_cursor_ = i;
      break;
    }
  }
  return OkStatus();
}

puddles::Result<void*> Pool::RootBytes() {
  if (!meta_.has_root()) {
    return NotFoundError("pool has no root object");
  }
  ASSIGN_OR_RETURN(Runtime::Entry * entry, runtime_->EnsureMapped(meta_.root_puddle()));
  // "the object allocator always allocates the first object at a fixed
  // offset ... Libpuddles can return its address using a simple base and
  // offset calculation."
  return reinterpret_cast<void*>(entry->info.base_addr + entry->view.header()->heap_offset +
                                 meta_.root_offset());
}

puddles::Status Pool::SetRootBytes(void* payload) {
  Runtime::Entry* entry = runtime_->FindEntryByAddr(reinterpret_cast<uintptr_t>(payload));
  if (entry == nullptr || !entry->mapped) {
    return InvalidArgumentError("root must live in a mapped puddle");
  }
  const uint64_t heap_addr = entry->info.base_addr + entry->view.header()->heap_offset;
  const uint64_t offset = reinterpret_cast<uint64_t>(payload) - heap_addr;
  if (offset >= entry->view.heap_size()) {
    return InvalidArgumentError("root pointer outside puddle heap");
  }
  meta_.SetRoot(entry->info.uuid, offset);
  return OkStatus();
}

puddles::Status Pool::SetDurability(Durability mode, const EpochOptions& options) {
  if (mode == Durability::kEpoch) {
    if (!writable_) {
      return FailedPreconditionError("read-only pool cannot enable epoch durability");
    }
    RETURN_IF_ERROR(runtime_->EnsureEpochSys(options));
  }
  durability_ = mode;
  return OkStatus();
}

void Pool::Sync() { runtime_->Sync(); }

puddles::Result<Transaction*> Pool::BeginTx() {
  if (!writable_) {
    return FailedPreconditionError("read-only pool cannot start transactions");
  }
  ASSIGN_OR_RETURN(TxTarget * target, runtime_->ThreadTxTarget());
  // The durability mode is latched at the *outermost* begin; a flat-nested
  // BeginTx must not disturb the target of the transaction already running
  // (and must never quiesce a log its own open transaction occupies).
  if (tx_internal::ImplicitTransaction() == nullptr) {
    if (durability_ == Durability::kEpoch) {
      ASSIGN_OR_RETURN(target->epoch, runtime_->EpochPortForThisThread());
    } else if (target->epoch != nullptr) {
      // Back to immediate mode on a thread that ran epoch transactions: the
      // log may still hold un-retired epoch entries — wait them out and
      // re-arm before an immediate transaction takes the log over.
      EpochPort* port = runtime_->ExistingEpochPortForThisThread();
      if (port != nullptr) {
        RETURN_IF_ERROR(port->Quiesce(target->log));
      }
      target->epoch = nullptr;
    }
  }
  return Transaction::BeginWith(target);
}

}  // namespace puddles
