#include "src/libpuddles/pool.h"

#include <algorithm>
#include <cstring>
#include <unordered_set>

#include "src/libpuddles/runtime.h"
#include "src/libpuddles/type_registry.h"
#include "src/pmem/flush.h"
#include "src/pmem/global_space.h"
#include "src/stats/stats.h"
#include "src/stats/trace_ring.h"

namespace puddles {
namespace {

// Connects allocator metadata writes to the given transaction's undo log
// (Fig. 8: "This new node is automatically undo-logged by the allocator").
// The transaction is threaded explicitly — the allocator never consults
// thread-local state.
LogSink TxSink(Transaction* tx) {
  if (tx == nullptr) {
    return {};
  }
  return LogSink{tx,
                 [](void* ctx, void* addr, size_t size) {
                   (void)static_cast<Transaction*>(ctx)->AddUndoDeferred(addr, size);
                 },
                 [](void* ctx) { static_cast<Transaction*>(ctx)->PublishStaged(); },
                 [](void* ctx, void* addr, size_t size) {
                   static_cast<Transaction*>(ctx)->NoteFreshRange(addr, size);
                 }};
}

}  // namespace

puddles::Status Pool::AddDataPuddle() {
  PUDDLES_TRACE_SPAN("pool_grow");
  PUDDLES_COUNT(kPoolGrow);
  ASSIGN_OR_RETURN(auto created,
                   runtime_->client().CreatePuddle(PuddleKind::kData, kDefaultHeapSize,
                                                   info_.pool_uuid));
  auto [info, fd] = created;
  ASSIGN_OR_RETURN(Runtime::Entry * entry,
                   runtime_->RegisterPuddle(info, fd, /*writable=*/true, &translator_));
  RETURN_IF_ERROR(runtime_->EnsureMapped(info.uuid).status());
  (void)entry;
  RETURN_IF_ERROR(meta_.AddMember(info.uuid));
  data_members_.push_back(info.uuid);
  return OkStatus();
}

bool Pool::CoversPmRange(const void* addr, size_t size) const {
  // Lock-free bounds check against the global puddle-space reservation
  // (§3.4): rejects the real misuse — DRAM/stack/heap pointers entering the
  // persistent log — without taking the runtime mutex on every tx.Log. A
  // still-unmapped (lazily faulted) puddle inside the reservation is a legal
  // target, so a per-entry map lookup would also be wrong, not just slow.
  const uint64_t base = pmem::ConfiguredSpaceBase();
  const uint64_t space = pmem::ConfiguredSpaceSize();
  const uint64_t start = reinterpret_cast<uint64_t>(addr);
  // Overflow-safe: `start + size` could wrap for adversarial sizes (the
  // Translator::Add hardening of PR 2 guards the same way).
  return start >= base && size <= space && start - base <= space - size;
}

puddles::Result<void*> Pool::MallocBytes(size_t size, TypeId type_id) {
  // Legacy implicit-context path: join the thread's open TX_BEGIN
  // transaction, if any, through the src/tx bridge.
  return MallocBytes(size, type_id, tx_internal::ImplicitTransaction());
}

puddles::Result<void*> Pool::MallocBytes(size_t size, TypeId type_id, Transaction* tx) {
  if (!writable_) {
    return FailedPreconditionError("pool opened read-only");
  }
  if (tx != nullptr && alloc_mode() == AllocMode::kArena && size > 0 &&
      size + sizeof(ObjectHeader) <= kMaxSlabSlot) {
    auto served = ArenaMalloc(size, type_id, tx);
    if (served.ok() || served.status().code() != StatusCode::kUnavailable) {
      return served;
    }
    // Unavailable means the arena cannot serve even after refill (directory
    // slots or slab space exhausted) — the global path below still can.
  }
  std::lock_guard<std::mutex> lock(alloc_mu_);
  LogSink sink = TxSink(tx);

  for (size_t attempt = 0; attempt <= data_members_.size(); ++attempt) {
    if (alloc_cursor_ >= data_members_.size()) {
      RETURN_IF_ERROR(AddDataPuddle());
      alloc_cursor_ = data_members_.size() - 1;
    }
    ASSIGN_OR_RETURN(Runtime::Entry * entry,
                     runtime_->EnsureMapped(data_members_[alloc_cursor_]));
    ASSIGN_OR_RETURN(ObjectHeap heap, entry->view.object_heap(sink));
    auto allocated = heap.Allocate(size, type_id);
    if (allocated.ok()) {
      if (tx == nullptr) {
        // Outside a transaction: persist the metadata state now. (Non-TX
        // allocations are not crash-atomic — same contract as PMDK.)
        pmem::FlushFence(reinterpret_cast<uint8_t*>(entry->view.header()) +
                             entry->view.header()->meta_offset,
                         entry->view.header()->meta_size);
      }
      // Inside a transaction the allocator already announced the fresh block
      // through the sink (NoteFresh), so the caller's stores into it are
      // flushed at commit stage 1 — no extra bookkeeping here.
      return *allocated;
    }
    if (allocated.status().code() != StatusCode::kOutOfMemory) {
      return allocated.status();
    }
    ++alloc_cursor_;  // This puddle is full; move on ("serviced from any
                      // puddle in the pool with enough free space").
  }
  return OutOfMemoryError("pool exhausted");
}

puddles::Status Pool::Free(void* payload) {
  return Free(payload, tx_internal::ImplicitTransaction());
}

puddles::Status Pool::Free(void* payload, Transaction* tx) {
  if (!writable_) {
    return FailedPreconditionError("pool opened read-only");
  }
  Runtime::Entry* entry = runtime_->FindEntryByAddr(reinterpret_cast<uintptr_t>(payload));
  if (entry == nullptr || !entry->mapped) {
    return InvalidArgumentError("pointer does not belong to a mapped puddle");
  }
  const Uuid uuid = entry->info.uuid;

  ArenaManager* arenas = arena_manager();
  if (arenas != nullptr) {
    // FAST PATH: same-thread frees resolve against the calling thread's own
    // arenas without any lock — only the owner mutates its arenas while it is
    // alive (spill, flush, and adoption all run on the owner; orphan handoff
    // happens only after thread exit), so the probe races with nothing.
    const void* header_addr =
        static_cast<const uint8_t*>(payload) - sizeof(ObjectHeader);
    bool arena_owned = arenas->Local()->OwnsLocally(header_addr);
    if (!arena_owned) {
      // Cross-thread or stale: fall back to the tagged-slab check under the
      // allocation lock.
      std::lock_guard<std::mutex> lock(alloc_mu_);
      ASSIGN_OR_RETURN(ObjectHeap heap, entry->view.object_heap());
      arena_owned = heap.ArenaTagOf(payload) != 0;
    }
    if (arena_owned &&
        reinterpret_cast<const ObjectHeader*>(header_addr)->magic != kObjectMagic) {
      // Dead slot: its magic was cleared when the earlier free was applied.
      // Same contract as the global path (ObjectHeap::Free), which rejects a
      // duplicate free instead of silently corrupting whatever reuses the
      // slot.
      return FailedPreconditionError("free: arena object is not allocated (double free?)");
    }
    if (arena_owned) {
      // Arena frees are unlogged by design (docs/alloc.md): the slab's
      // persistent bitmap is stale, liveness is decided by reachability, so
      // there is no metadata to undo-log. The volatile free-list push must
      // still wait until the transaction can no longer roll back — hence the
      // post-commit publication (which re-checks ownership; the slab may be
      // flushed to the global heap in between).
      if (tx != nullptr) {
        tx->DeferPostCommit([this, payload]() { PublishArenaFree(payload); });
        return OkStatus();
      }
      PublishArenaFree(payload);
      return OkStatus();
    }
  }

  if (tx != nullptr) {
    // Deferred to commit: freed blocks must not be reused within this
    // transaction (rollback safety), and the allocator mutations become part
    // of the transaction's undo log.
    Pool* pool = this;
    tx->DeferFree([pool, uuid, payload, tx]() -> puddles::Status {
      ASSIGN_OR_RETURN(Runtime::Entry * e, pool->runtime_->EnsureMapped(uuid));
      std::lock_guard<std::mutex> lock(pool->alloc_mu_);
      ASSIGN_OR_RETURN(ObjectHeap heap, e->view.object_heap(TxSink(tx)));
      if (pool->arenas_ != nullptr && heap.ArenaTagOf(payload) != 0) {
        // The slab was adopted into an arena between Free() and commit:
        // route through the arena publication once this commit succeeds.
        tx->DeferPostCommit([pool, payload]() { pool->PublishArenaFree(payload); });
        return puddles::OkStatus();
      }
      return heap.Free(payload);
    });
    return OkStatus();
  }

  std::lock_guard<std::mutex> lock(alloc_mu_);
  return FreeGlobalLocked(uuid, payload);
}

puddles::Status Pool::FreeGlobalLocked(const Uuid& uuid, void* payload) {
  ASSIGN_OR_RETURN(Runtime::Entry * entry, runtime_->EnsureMapped(uuid));
  ASSIGN_OR_RETURN(ObjectHeap heap, entry->view.object_heap());
  RETURN_IF_ERROR(heap.Free(payload));
  pmem::FlushFence(reinterpret_cast<uint8_t*>(entry->view.header()) +
                       entry->view.header()->meta_offset,
                   entry->view.header()->meta_size);
  // Allocation may resume from this puddle.
  for (size_t i = 0; i < data_members_.size(); ++i) {
    if (data_members_[i] == uuid && i < alloc_cursor_) {
      alloc_cursor_ = i;
      break;
    }
  }
  return OkStatus();
}

puddles::Result<void*> Pool::RootBytes() {
  if (!meta_.has_root()) {
    return NotFoundError("pool has no root object");
  }
  ASSIGN_OR_RETURN(Runtime::Entry * entry, runtime_->EnsureMapped(meta_.root_puddle()));
  // "the object allocator always allocates the first object at a fixed
  // offset ... Libpuddles can return its address using a simple base and
  // offset calculation."
  return reinterpret_cast<void*>(entry->info.base_addr + entry->view.header()->heap_offset +
                                 meta_.root_offset());
}

puddles::Status Pool::SetRootBytes(void* payload) {
  Runtime::Entry* entry = runtime_->FindEntryByAddr(reinterpret_cast<uintptr_t>(payload));
  if (entry == nullptr || !entry->mapped) {
    return InvalidArgumentError("root must live in a mapped puddle");
  }
  const uint64_t heap_addr = entry->info.base_addr + entry->view.header()->heap_offset;
  const uint64_t offset = reinterpret_cast<uint64_t>(payload) - heap_addr;
  if (offset >= entry->view.heap_size()) {
    return InvalidArgumentError("root pointer outside puddle heap");
  }
  meta_.SetRoot(entry->info.uuid, offset);
  return OkStatus();
}

puddles::Status Pool::SetDurability(Durability mode, const EpochOptions& options) {
  if (mode == Durability::kEpoch) {
    if (!writable_) {
      return FailedPreconditionError("read-only pool cannot enable epoch durability");
    }
    RETURN_IF_ERROR(runtime_->EnsureEpochSys(options));
  }
  durability_ = mode;
  return OkStatus();
}

void Pool::Sync() { runtime_->Sync(); }

puddles::Result<Transaction*> Pool::BeginTx() {
  if (!writable_) {
    return FailedPreconditionError("read-only pool cannot start transactions");
  }
  ASSIGN_OR_RETURN(TxTarget * target, runtime_->ThreadTxTarget());
  // The durability mode is latched at the *outermost* begin; a flat-nested
  // BeginTx must not disturb the target of the transaction already running
  // (and must never quiesce a log its own open transaction occupies).
  if (tx_internal::ImplicitTransaction() == nullptr) {
    if (durability_ == Durability::kEpoch) {
      ASSIGN_OR_RETURN(target->epoch, runtime_->EpochPortForThisThread());
    } else if (target->epoch != nullptr) {
      // Back to immediate mode on a thread that ran epoch transactions: the
      // log may still hold un-retired epoch entries — wait them out and
      // re-arm before an immediate transaction takes the log over.
      EpochPort* port = runtime_->ExistingEpochPortForThisThread();
      if (port != nullptr) {
        RETURN_IF_ERROR(port->Quiesce(target->log));
      }
      target->epoch = nullptr;
    }
  }
  return Transaction::BeginWith(target);
}

// ---- Per-thread slab arenas (docs/alloc.md, DESIGN.md §14) ----

puddles::Status Pool::SetAllocMode(AllocMode mode, const ArenaOptions& options) {
  if (mode == AllocMode::kArena) {
    if (!writable_) {
      return FailedPreconditionError("read-only pool cannot enable arena allocation");
    }
    {
      // The manager installs exactly once, under the allocation lock; hot
      // paths observe it through the arena_mgr_ atomic, never the shared_ptr.
      std::lock_guard<std::mutex> lock(alloc_mu_);
      arena_options_ = options;
      if (arenas_ == nullptr) {
        arenas_ = std::make_shared<ArenaManager>(options);
        arena_mgr_.store(arenas_.get(), std::memory_order_release);
      }
    }
    alloc_mode_.store(AllocMode::kArena, std::memory_order_release);
    return OkStatus();
  }
  alloc_mode_.store(AllocMode::kGlobalLock, std::memory_order_release);
  if (arena_manager() != nullptr) {
    return FlushAllArenas();
  }
  return OkStatus();
}

uint64_t Pool::RetiredEpochForReuse() const {
  EpochSys* es = runtime_->epoch_sys();
  // With no epoch system every free is durable at commit: all tags mature.
  return es == nullptr ? ~0ULL : es->retired_epoch();
}

uint64_t Pool::CurrentEpochTag() const {
  if (durability_ != Durability::kEpoch) {
    return 0;  // Immediate-mode commits are durable; the slot is reusable now.
  }
  EpochSys* es = runtime_->epoch_sys();
  // The freeing transaction committed into some epoch <= the current one (the
  // hook runs post-commit), so the current epoch is a conservative maturity
  // bound: reuse waits at most one extra epoch, never too little.
  return es == nullptr ? 0 : es->current_epoch();
}

void Pool::HookArenaTx(Transaction* tx, ThreadArena* ta) {
  tx->DeferPostCommit([ta]() { ta->OnTxCommitted(); });
  tx->DeferOnAbort([ta]() { ta->OnTxAborted(); });
}

// FAST PATH (tools/check_alloc_discipline.sh): no lock, no persistence call,
// no undo append. The slot is fresh to this transaction — commit stage 1
// flushes its contents, abort restores the shadow state via the arena hooks —
// so the header stores below are plain stores.
puddles::Result<void*> Pool::ArenaMalloc(size_t size, TypeId type_id, Transaction* tx) {
  const size_t total = size + sizeof(ObjectHeader);
  const int class_index = SlabAllocator::ClassForSize(total);
  ThreadArena* ta = arena_manager()->Local();
  if (ta->NoteTxUse(tx)) {
    HookArenaTx(tx, ta);
  }
  ThreadArena::AllocResult res;
  if (!ta->TryAllocate(class_index, &res)) {
    RETURN_IF_ERROR(ArenaRefill(class_index, tx));
    if (!ta->TryAllocate(class_index, &res)) {
      return UnavailableError("arena has no free slot after refill");
    }
  }
  ta->RecordPop(res.pa, res.slab, res.slot);
  tx->NoteFreshRange(res.addr, total);
  auto* header = static_cast<ObjectHeader*>(res.addr);
  header->magic = kObjectMagic;
  header->size = static_cast<uint32_t>(size);
  header->type_id = type_id;
  PUDDLES_COUNT_N(kAllocBytes, total);
  if (ta->spill_hint()) {
    RETURN_IF_ERROR(SpillExcess(tx));
  }
  return static_cast<void*>(header + 1);
}

puddles::Status Pool::ArenaRefill(int class_index, Transaction* tx) {
  std::lock_guard<std::mutex> lock(alloc_mu_);
  ThreadArena* ta = arenas_->Local();
  arenas_->AdoptOrphansInto(ta);
  RETURN_IF_ERROR(DrainArenaQueuesLocked(ta, tx));
  if (ta->HasFreeSlot(class_index)) {
    return OkStatus();  // Housekeeping alone replenished the class.
  }
  int acquired = 0;
  for (size_t i = 0; i < data_members_.size() && acquired == 0; ++i) {
    ASSIGN_OR_RETURN(acquired, AcquireIntoPuddle(ta, data_members_[i], class_index, tx));
  }
  if (acquired == 0) {
    RETURN_IF_ERROR(AddDataPuddle());
    ASSIGN_OR_RETURN(acquired,
                     AcquireIntoPuddle(ta, data_members_.back(), class_index, tx));
  }
  if (acquired == 0) {
    return UnavailableError("no arena capacity (directory or heap exhausted)");
  }
  return OkStatus();
}

puddles::Result<int> Pool::AcquireIntoPuddle(ThreadArena* ta, const Uuid& uuid,
                                             int class_index, Transaction* tx) {
  ASSIGN_OR_RETURN(Runtime::Entry * entry, runtime_->EnsureMapped(uuid));
  LogSink sink = TxSink(tx);
  ASSIGN_OR_RETURN(ObjectHeap heap, entry->view.object_heap(sink));
  ArenaDirectory* dir = heap.arena_directory();
  PuddleArena* pa = ta->FindPuddleArena(uuid);
  if (pa == nullptr) {
    int slot = -1;
    for (size_t i = 0; i < kMaxArenaSlots; ++i) {
      if (dir->entries[i].active == 0) {
        slot = static_cast<int>(i);
        break;
      }
    }
    if (slot < 0) {
      return 0;  // Directory full in this puddle; the caller tries the next.
    }
    // Logged claim (active 0→1, empty chain): abort rolls the entry back and
    // the dir-claim record marks the volatile arena dead to match.
    ArenaDirEntry* claim = &dir->entries[slot];
    sink.WillWrite(claim, sizeof(*claim));
    sink.Publish();
    claim->active = 1;
    claim->slab_head = -1;
    pa = ta->AddPuddleArena(uuid, static_cast<uint8_t*>(heap.heap_base()),
                            heap.heap_size(), slot);
    // Stamp the claim generation before any free of this claim can be
    // published (we still hold alloc_mu_): queued records from an earlier
    // claim of the same (uuid, tag) now mismatch instead of resolving
    // against this claim's slabs.
    pa->claim_gen = arenas_->RegisterClaim(uuid, pa->tag());
    ta->RecordDirClaim(pa);
  }
  SlabAllocator slab_alloc = heap.slab_view();
  ArenaDirEntry* de = &dir->entries[pa->dir_slot];
  int acquired = 0;
  for (int n = 0; n < arena_options_.refill_slabs; ++n) {
    const int64_t prev_head = pa->chain_head;
    uint64_t bitmap[2] = {0, 0};
    uint16_t used = 0;
    ASSIGN_OR_RETURN(int64_t offset,
                     slab_alloc.AdoptPartialForArena(class_index, pa->tag(), prev_head));
    if (offset >= 0) {
      const auto* adopted = reinterpret_cast<const SlabHeader*>(pa->heap_base + offset);
      bitmap[0] = adopted->bitmap[0];
      bitmap[1] = adopted->bitmap[1];
      used = adopted->used;
    } else {
      auto carved = slab_alloc.CarveArenaSlab(class_index, pa->tag(), prev_head);
      if (!carved.ok()) {
        if (carved.status().code() == StatusCode::kOutOfMemory) {
          break;
        }
        return carved.status();
      }
      offset = *carved;
      // Zero every slot's object-magic word (plain stores inside the fresh
      // block, flushed at commit): recycled heap bytes could alias the magic
      // and surface ghost objects to the enumerate-all arena-slab walk.
      const auto* carved_hdr = reinterpret_cast<const SlabHeader*>(pa->heap_base + offset);
      for (uint16_t s = 0; s < carved_hdr->num_slots; ++s) {
        *reinterpret_cast<uint32_t*>(pa->heap_base + offset +
                                     static_cast<int64_t>(sizeof(SlabHeader)) +
                                     static_cast<int64_t>(s) *
                                         static_cast<int64_t>(kSlabSlotSizes[class_index])) = 0;
      }
    }
    // The directory entry's chain head moves to the new slab (its arena_next
    // already points at the previous head) — logged, so abort restores it.
    sink.WillWrite(&de->slab_head, sizeof(de->slab_head));
    sink.Publish();
    de->slab_head = offset;
    pa->chain_head = offset;
    const auto* hdr = reinterpret_cast<const SlabHeader*>(pa->heap_base + offset);
    ta->AddSlab(pa, offset, class_index, hdr->num_slots, bitmap, used, prev_head);
    ++acquired;
  }
  return acquired;
}

puddles::Status Pool::DrainArenaQueuesLocked(ThreadArena* ta, Transaction* tx) {
  const uint64_t retired = RetiredEpochForReuse();
  ta->DrainPendingFrees(retired);
  std::vector<ArenaManager::RemoteFree> unowned = arenas_->DrainRemoteInto(ta);
  for (const auto& rf : unowned) {
    if (rf.epoch != 0 && rf.epoch > retired) {
      // The freeing epoch is not durable yet; keep it queued verbatim
      // (generation preserved — ownership resolves at the next mature drain).
      arenas_->Requeue(rf);
      continue;
    }
    ASSIGN_OR_RETURN(Runtime::Entry * entry, runtime_->EnsureMapped(rf.uuid));
    ASSIGN_OR_RETURN(ObjectHeap heap, entry->view.object_heap());
    void* payload =
        static_cast<uint8_t*>(heap.AtOffset(rf.slot_offset)) + sizeof(ObjectHeader);
    const uint16_t tag = heap.ArenaTagOf(payload);
    if (tag != 0) {
      // Another live thread owns the slab now (adopted after a flush);
      // requeue under the current tag and its current claim generation.
      arenas_->PushRemoteFree(rf.uuid, tag, rf.slot_offset, rf.epoch);
      continue;
    }
    if (heap.HeaderOf(payload) == nullptr) {
      continue;  // The flush-back's occupancy write already freed it.
    }
    if (tx == nullptr) {
      RETURN_IF_ERROR(FreeGlobalLocked(rf.uuid, payload));
      continue;
    }
    // The slab went global between free and drain. The record itself is a
    // committed free — the object is garbage — but applying it with a logged
    // heap.Free joins the CALLER's still-open transaction, so it must obey
    // the same rules as Pool::Free: defer to commit head (the freed block
    // must not be reused within this transaction, rollback safety), and
    // because an abort rolls the free back after the queue record is gone,
    // requeue the record on abort so the slot cannot leak.
    auto consumed = std::make_shared<bool>(false);
    Pool* pool = this;
    tx->DeferFree([pool, rf, tx, consumed]() -> puddles::Status {
      ASSIGN_OR_RETURN(Runtime::Entry * e, pool->runtime_->EnsureMapped(rf.uuid));
      std::lock_guard<std::mutex> lock(pool->alloc_mu_);
      ASSIGN_OR_RETURN(ObjectHeap h, e->view.object_heap(TxSink(tx)));
      void* p =
          static_cast<uint8_t*>(h.AtOffset(rf.slot_offset)) + sizeof(ObjectHeader);
      const uint16_t now_tag = h.ArenaTagOf(p);
      if (now_tag != 0) {
        // Re-adopted between drain and commit: back to the owner's queue.
        pool->arenas_->PushRemoteFree(rf.uuid, now_tag, rf.slot_offset, rf.epoch);
        *consumed = true;
        return puddles::OkStatus();
      }
      if (h.HeaderOf(p) == nullptr) {
        *consumed = true;  // Freed by another path meanwhile; nothing to do.
        return puddles::OkStatus();
      }
      return h.Free(p);
    });
    tx->DeferOnAbort([arenas = arenas_, rf, consumed]() {
      if (!*consumed) {
        arenas->Requeue(rf);
      }
    });
  }
  return OkStatus();
}

namespace {

// Unlinks `target` from its arena chain with a logged predecessor (or
// directory-head) write. The caller updates the volatile chain mirror.
puddles::Status UnlinkArenaSlab(const ObjectHeap& heap, LogSink& sink,
                                ArenaDirEntry* de, PuddleArena* pa, int64_t target) {
  auto* base = static_cast<uint8_t*>(heap.heap_base());
  auto* target_hdr = reinterpret_cast<SlabHeader*>(base + target);
  const int64_t next = target_hdr->arena_next;
  if (pa->chain_head == target) {
    sink.WillWrite(&de->slab_head, sizeof(de->slab_head));
    sink.Publish();
    de->slab_head = next;
    pa->chain_head = next;
    return OkStatus();
  }
  int64_t cur = pa->chain_head;
  while (cur >= 0) {
    auto* hdr = reinterpret_cast<SlabHeader*>(base + cur);
    if (hdr->arena_next == target) {
      sink.WillWrite(&hdr->arena_next, sizeof(hdr->arena_next));
      sink.Publish();
      hdr->arena_next = next;
      return OkStatus();
    }
    cur = hdr->arena_next;
  }
  return DataLossError("arena slab missing from its directory chain");
}

}  // namespace

puddles::Status Pool::SpillExcess(Transaction* tx) {
  std::lock_guard<std::mutex> lock(alloc_mu_);
  ThreadArena* ta = arenas_->Local();
  ta->clear_spill_hint();
  ta->DrainPendingFrees(RetiredEpochForReuse());
  LogSink sink = TxSink(tx);
  const size_t floor = static_cast<size_t>(arena_options_.refill_slabs);
  for (PuddleArena* pa : ta->LivePuddleArenas()) {
    size_t live_slabs = 0;
    for (const auto& slab : pa->slabs) {
      if (!slab.retired) {
        ++live_slabs;
      }
    }
    if (live_slabs <= floor) {
      continue;
    }
    ASSIGN_OR_RETURN(Runtime::Entry * entry, runtime_->EnsureMapped(pa->uuid));
    ASSIGN_OR_RETURN(ObjectHeap heap, entry->view.object_heap(sink));
    ArenaDirEntry* de = &heap.arena_directory()->entries[pa->dir_slot];
    // Only whole-empty slabs spill: they return to the buddy with no
    // occupancy to reconcile, keeping the spill window in crashsim small.
    for (auto& slab : pa->slabs) {
      if (live_slabs <= floor) {
        break;
      }
      if (slab.retired || slab.used != 0) {
        continue;
      }
      const int64_t prev_head = pa->chain_head;
      RETURN_IF_ERROR(UnlinkArenaSlab(heap, sink, de, pa, slab.offset));
      // The unlink is staged in the caller's transaction now, but the
      // buddy release must NOT run here: SpillExcess is called from the
      // arena hot path with the caller's transaction still open, and a
      // block returned to the buddy before commit could be re-allocated by
      // another thread (or this transaction's own refill) — an abort would
      // then undo-restore the slab over the new owner. Deferring to commit
      // head restores the same rule the global free path states: freed
      // blocks are not reused within the freeing transaction.
      const Uuid slab_uuid = pa->uuid;
      const int64_t slab_offset = slab.offset;
      Pool* pool = this;
      tx->DeferFree([pool, slab_uuid, slab_offset, tx]() -> puddles::Status {
        ASSIGN_OR_RETURN(Runtime::Entry * e, pool->runtime_->EnsureMapped(slab_uuid));
        std::lock_guard<std::mutex> lock(pool->alloc_mu_);
        ASSIGN_OR_RETURN(ObjectHeap h, e->view.object_heap(TxSink(tx)));
        const uint64_t empty[2] = {0, 0};
        return h.slab_view().ReleaseArenaSlab(slab_offset, empty, 0);
      });
      ta->RecordSpill(pa, &slab, prev_head);
      PUDDLES_COUNT(kArenaFlushSlabs);
      --live_slabs;
    }
  }
  return OkStatus();
}

void Pool::PublishArenaFree(void* payload) {
  ArenaManager* arenas = arena_manager();
  if (arenas != nullptr) {
    // FAST PATH: if the slot still lives in one of THIS thread's slabs, the
    // release is a volatile free-list push — no lock, no heap view, no
    // persistence. Lock-free by ownership (see ThreadArena::TryLocalFree);
    // the object size must be read before the release clears its magic.
    uint8_t* header_addr = static_cast<uint8_t*>(payload) - sizeof(ObjectHeader);
    const uint32_t size = reinterpret_cast<const ObjectHeader*>(header_addr)->size;
    if (arenas->Local()->TryLocalFree(header_addr, CurrentEpochTag())) {
      PUDDLES_COUNT_N(kFreeBytes, sizeof(ObjectHeader) + size);
      return;
    }
  }
  Runtime::Entry* entry = runtime_->FindEntryByAddr(reinterpret_cast<uintptr_t>(payload));
  if (entry == nullptr || !entry->mapped || arenas == nullptr) {
    return;  // Unmapped since the free was issued; recovery GC reclaims it.
  }
  const Uuid uuid = entry->info.uuid;
  std::lock_guard<std::mutex> lock(alloc_mu_);
  auto heap_or = entry->view.object_heap();
  if (!heap_or.ok()) {
    return;
  }
  if (heap_or->ArenaTagOf(payload) == 0) {
    // The slab was flushed to the global heap between free and publication:
    // ordinary logged free. Failure means it is already gone — inert.
    (void)FreeGlobalLocked(uuid, payload);
    return;
  }
  const ObjectHeader* hdr = heap_or->HeaderOf(payload);
  if (hdr == nullptr) {
    return;  // Already freed (duplicate publication).
  }
  PUDDLES_COUNT_N(kFreeBytes, sizeof(ObjectHeader) + hdr->size);
  const uint64_t epoch = CurrentEpochTag();
  const int64_t slot_offset = heap_or->OffsetOf(hdr);
  // Re-read the tag under the lock — flush/adopt transitions settle here —
  // and bind the free to the tag's current claim generation, so it can never
  // be applied through a later claim that recycles the same (uuid, tag).
  const uint16_t tag = heap_or->ArenaTagOf(payload);
  ThreadArena* ta = arenas->Local();
  if (!ta->AcceptRemoteFree(uuid, tag, arenas->ClaimGenOf(uuid, tag), slot_offset,
                            epoch)) {
    arenas->PushRemoteFree(uuid, tag, slot_offset, epoch);
  }
  ta->DrainPendingFrees(RetiredEpochForReuse());
}

puddles::Status Pool::FlushThreadArena() {
  ArenaManager* arenas = arena_manager();
  if (arenas == nullptr) {
    return OkStatus();
  }
  if (durability_ == Durability::kEpoch) {
    Sync();  // Retire every open epoch so all pending frees mature below.
  }
  ThreadArena* ta = arenas->Local();
  std::vector<PuddleArena*> flushed;
  puddles::Status status = Run([&](Tx& txh) -> puddles::Status {
    Transaction* tx = txh.tx_;
    LogSink sink = TxSink(tx);
    std::lock_guard<std::mutex> lock(alloc_mu_);
    RETURN_IF_ERROR(DrainArenaQueuesLocked(ta, tx));
    for (PuddleArena* pa : ta->LivePuddleArenas()) {
      ASSIGN_OR_RETURN(Runtime::Entry * entry, runtime_->EnsureMapped(pa->uuid));
      ASSIGN_OR_RETURN(ObjectHeap heap, entry->view.object_heap(sink));
      SlabAllocator slab_alloc = heap.slab_view();
      for (auto& slab : pa->slabs) {
        if (slab.retired) {
          continue;
        }
        // The logged occupancy write makes the shadow bitmap authoritative
        // persistently; free slots' cleared magic words need no extra logging
        // because global slabs are enumerated by bitmap, never by magic.
        RETURN_IF_ERROR(slab_alloc.ReleaseArenaSlab(slab.offset, slab.shadow, slab.used));
        PUDDLES_COUNT(kArenaFlushSlabs);
      }
      ArenaDirEntry* de = &heap.arena_directory()->entries[pa->dir_slot];
      sink.WillWrite(de, sizeof(*de));
      sink.Publish();
      de->active = 0;
      de->slab_head = -1;
      flushed.push_back(pa);
    }
    return puddles::OkStatus();
  });
  if (!status.ok()) {
    return status;
  }
  // Volatile teardown strictly after commit success: on failure the rollback
  // restored the persistent side and the untouched volatile state still
  // matches it.
  for (PuddleArena* pa : flushed) {
    ta->DropPuddleArena(pa);
  }
  return OkStatus();
}

puddles::Status Pool::FlushAllArenas() {
  ArenaManager* arenas = arena_manager();
  if (arenas == nullptr) {
    return OkStatus();
  }
  arenas->AdoptOrphansInto(arenas->Local());
  return FlushThreadArena();
}

puddles::Result<std::vector<const void*>> Pool::ReachableObjects() {
  std::vector<const void*> out;
  if (!meta_.has_root()) {
    return out;
  }
  ASSIGN_OR_RETURN(void* root, RootBytes());
  std::vector<const void*> stack;
  std::unordered_set<const void*> seen;
  stack.push_back(root);
  while (!stack.empty()) {
    const void* payload = stack.back();
    stack.pop_back();
    if (payload == nullptr || !seen.insert(payload).second) {
      continue;
    }
    Runtime::Entry* entry =
        runtime_->FindEntryByAddr(reinterpret_cast<uintptr_t>(payload));
    if (entry == nullptr || !entry->mapped) {
      continue;
    }
    ASSIGN_OR_RETURN(ObjectHeap heap, entry->view.object_heap());
    const ObjectHeader* header = heap.HeaderOf(payload);
    if (header == nullptr) {
      continue;  // Dangling edge (freed target); not reachable.
    }
    out.push_back(payload);
    if (header->type_id == kRawBytesTypeId) {
      continue;  // Raw byte buffers carry no pointers by contract.
    }
    auto map = TypeRegistry::Instance().Lookup(header->type_id);
    if (!map.ok() || map->object_size == 0 ||
        (map->num_fields == 0 && map->repeat_count == 0)) {
      continue;
    }
    // Arrays of T stride by sizeof(T); same bounded walk as relocation.
    const uint64_t count = header->size / map->object_size;
    const auto* bytes = static_cast<const uint8_t*>(payload);
    for (uint64_t element = 0; element < count; ++element) {
      const uint8_t* element_bytes = bytes + element * map->object_size;
      for (uint32_t field = 0; field < map->num_fields; ++field) {
        if (map->field_offsets[field] + sizeof(uint64_t) > map->object_size) {
          continue;
        }
        uint64_t target;
        std::memcpy(&target, element_bytes + map->field_offsets[field], sizeof(target));
        if (target != 0) {
          stack.push_back(reinterpret_cast<const void*>(target));
        }
      }
      if (map->repeat_count != 0 &&
          map->repeat_offset +
                  static_cast<uint64_t>(map->repeat_count) * sizeof(uint64_t) <=
              map->object_size) {
        for (uint32_t r = 0; r < map->repeat_count; ++r) {
          uint64_t target;
          std::memcpy(&target, element_bytes + map->repeat_offset + r * sizeof(uint64_t),
                      sizeof(target));
          if (target != 0) {
            stack.push_back(reinterpret_cast<const void*>(target));
          }
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

puddles::Result<Pool::ArenaRecoveryReport> Pool::RecoverArenas() {
  if (!writable_) {
    return FailedPreconditionError("read-only pool cannot recover arenas");
  }
  ArenaManager* arenas = arena_manager();
  if (arenas != nullptr &&
      (arenas->HasOtherLiveArenas(nullptr) || arenas->orphan_count() > 0)) {
    return FailedPreconditionError(
        "arena recovery is offline-only: flush live arenas first (FlushAllArenas)");
  }
  ArenaRecoveryReport report;
  ASSIGN_OR_RETURN(std::vector<const void*> reachable, ReachableObjects());
  report.objects_live = reachable.size();
  for (const Uuid& uuid : data_members_) {
    ASSIGN_OR_RETURN(Runtime::Entry * entry, runtime_->EnsureMapped(uuid));
    for (size_t slot = 0; slot < kMaxArenaSlots; ++slot) {
      {
        ASSIGN_OR_RETURN(ObjectHeap peek, entry->view.object_heap());
        if (peek.arena_directory()->entries[slot].active == 0) {
          continue;
        }
      }
      RETURN_IF_ERROR(RecoverArenaSlot(uuid, slot, reachable, &report));
      ++report.arenas_recovered;
    }
  }
  return report;
}

// One directory entry per transaction: a crash during recovery rolls the
// half-recovered entry back, so re-running RecoverArenas is idempotent.
puddles::Status Pool::RecoverArenaSlot(const Uuid& uuid, size_t slot,
                                       const std::vector<const void*>& reachable,
                                       ArenaRecoveryReport* report) {
  return Run([&](Tx& txh) -> puddles::Status {
    Transaction* tx = txh.tx_;
    LogSink sink = TxSink(tx);
    ASSIGN_OR_RETURN(Runtime::Entry * entry, runtime_->EnsureMapped(uuid));
    ASSIGN_OR_RETURN(ObjectHeap heap, entry->view.object_heap(sink));
    SlabAllocator slab_alloc = heap.slab_view();
    ArenaDirEntry* de = &heap.arena_directory()->entries[slot];
    int64_t cur = de->slab_head;
    while (cur >= 0) {
      auto* hdr = reinterpret_cast<SlabHeader*>(heap.AtOffset(cur));
      if (hdr->magic != kSlabMagic ||
          hdr->arena_slot != static_cast<uint16_t>(slot + 1)) {
        return DataLossError("arena chain reaches a non-arena slab");
      }
      const int64_t next = hdr->arena_next;
      const size_t slot_size = kSlabSlotSizes[hdr->class_index];
      uint64_t bitmap[2] = {0, 0};
      uint16_t used = 0;
      for (uint16_t s = 0; s < hdr->num_slots; ++s) {
        auto* obj = reinterpret_cast<ObjectHeader*>(
            heap.AtOffset(cur + static_cast<int64_t>(sizeof(SlabHeader)) +
                          static_cast<int64_t>(s) * static_cast<int64_t>(slot_size)));
        if (obj->magic != kObjectMagic) {
          continue;  // Never allocated, or freed with the clear persisted.
        }
        const void* payload = static_cast<const void*>(obj + 1);
        if (std::binary_search(reachable.begin(), reachable.end(), payload)) {
          bitmap[s / 64] |= 1ULL << (s % 64);
          ++used;
          continue;
        }
        // Leaked in-flight slot: allocated but never published (crash before
        // its transaction's fresh flush), or freed with an unpersisted magic
        // clear, or plain garbage aliasing the magic. Reclaim with a logged
        // clear so a crash during GC replays to a consistent image.
        sink.WillWrite(&obj->magic, sizeof(obj->magic));
        sink.Publish();
        obj->magic = 0;
        ++report->slots_reclaimed;
        PUDDLES_COUNT(kArenaGcReclaimed);
      }
      RETURN_IF_ERROR(slab_alloc.ReleaseArenaSlab(cur, bitmap, used));
      ++report->slabs_scanned;
      PUDDLES_COUNT(kArenaGcSlabs);
      cur = next;
    }
    sink.WillWrite(de, sizeof(*de));
    sink.Publish();
    de->active = 0;
    de->slab_head = -1;
    return puddles::OkStatus();
  });
}

}  // namespace puddles
