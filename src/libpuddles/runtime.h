// Libpuddles runtime: the per-process client of Puddled (paper §3.2).
//
// Owns the puddle mapping table over the global address-space reservation,
// wires faults to on-demand mapping + incremental pointer rewriting, manages
// pools, uploads pointer maps, and hands out per-thread transaction logs.
#ifndef SRC_LIBPUDDLES_RUNTIME_H_
#define SRC_LIBPUDDLES_RUNTIME_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/daemon/client.h"
#include "src/epoch/epoch_sys.h"
#include "src/libpuddles/relocation.h"
#include "src/libpuddles/type_registry.h"
#include "src/puddles/format.h"
#include "src/tx/epoch_port.h"
#include "src/tx/log_format.h"
#include "src/tx/log_space.h"
#include "src/tx/transaction.h"

namespace puddles {

class Pool;

inline constexpr size_t kDefaultLogHeapSize = 256 * 1024;

class Runtime {
 public:
  struct Stats {
    uint64_t puddles_registered = 0;
    uint64_t puddles_mapped = 0;
    uint64_t rewrites = 0;
    uint64_t pointers_rewritten = 0;
  };

  // One registered puddle: reserved address range + capability fd; mapping
  // and rewriting happen on first touch (or eagerly via EnsureMapped).
  struct Entry {
    puddled::PuddleInfo info;
    int fd = -1;
    bool writable = true;
    bool mapped = false;
    Puddle view;                        // Valid when mapped.
    const Translator* translator = nullptr;  // Pool translation table; may be null.
  };

  static puddles::Result<std::unique_ptr<Runtime>> Create(
      std::shared_ptr<puddled::DaemonClient> client);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  puddled::DaemonClient& client() { return *client_; }

  // ---- Pools ----
  puddles::Result<Pool*> CreatePool(const std::string& name, uint32_t mode = 0600);
  puddles::Result<Pool*> OpenPool(const std::string& name, bool writable = true);
  puddles::Status ExportPool(const std::string& name, const std::string& dest_dir);
  // Imports an exported pool directory under a new name and opens it.
  puddles::Result<Pool*> ImportPool(const std::string& src_dir, const std::string& new_name);

  // ---- Puddle mapping ----
  puddles::Result<Entry*> RegisterPuddle(const puddled::PuddleInfo& info, int fd, bool writable,
                                         const Translator* translator);
  puddles::Result<Entry*> FetchAndRegister(const Uuid& uuid, bool writable,
                                           const Translator* translator);
  puddles::Result<Entry*> EnsureMapped(const Uuid& uuid);
  Entry* FindEntryByAddr(uintptr_t addr);
  Entry* FindEntryByUuid(const Uuid& uuid);

  // All registered puddle entries (crashsim uses this to discover the PM
  // regions to trace). Pointers stay valid for the runtime's lifetime.
  std::vector<Entry*> Entries();

  // Fault resolver (runs on the fault helper thread).
  bool HandleFault(uintptr_t addr);

  // ---- Transactions ----
  // The thread's cached transaction log (§4.1), created and registered on
  // first use. The returned target is owned by the runtime and stable for
  // the thread's lifetime (the allocation-free fast path under pool.Run and
  // the legacy TX_BEGIN shim alike).
  puddles::Result<TxTarget*> ThreadTxTarget();

  // ---- Epoch-based group commit (docs/epoch.md) ----
  // Starts the process-wide epoch system (idempotent; the first call's
  // options win). Requires the log space, which it creates on demand.
  puddles::Status EnsureEpochSys(const EpochOptions& options);
  // This thread's port into the epoch system, created on first use.
  // Fails unless EnsureEpochSys ran.
  puddles::Result<EpochPort*> EpochPortForThisThread();
  // The port if this thread already created one, else nullptr (used by the
  // immediate-mode Begin path to quiesce leftover epoch state).
  EpochPort* ExistingEpochPortForThisThread();
  // Blocks until every epoch-mode transaction begun before this call is
  // persistently retired. No-op when the epoch system is not running.
  void Sync();
  EpochSys* epoch_sys() { return epoch_sys_.get(); }

  Stats stats();

  // Uploads the process type registry to the daemon (done automatically on
  // pool create/open; callable again after late registrations).
  puddles::Status UploadPointerMaps();

 private:
  explicit Runtime(std::shared_ptr<puddled::DaemonClient> client)
      : client_(std::move(client)) {}

  // Monotonic, never recycled: thread-local log caches key on this so a new
  // Runtime at a recycled heap address can never alias stale thread state.
  uint64_t generation_ = 0;

  puddles::Status MapEntryLocked(Entry* entry);
  puddles::Result<Pool*> FinishOpenPool(const puddled::PoolInfo& info, bool writable);
  puddles::Status EnsureLogSpace();

  // Per-thread transaction log state (one log puddle per thread, cached).
  struct ThreadLog {
    Entry* entry = nullptr;
    LogRegion region;
    std::vector<std::pair<Entry*, std::unique_ptr<LogRegion>>> spares;  // Grown logs.
    TxTarget cached_target;  // Built once; Pool::BeginTx must stay allocation-free.
    std::unique_ptr<EpochPort> port;  // Epoch-mode port; created on first use.
  };
  puddles::Result<ThreadLog*> ThreadLogForThisThread();
  ThreadLog* FindThreadLogForThisThread();

  std::shared_ptr<puddled::DaemonClient> client_;
  uint64_t resolver_id_ = 0;

  std::mutex mu_;
  std::map<uint64_t, std::unique_ptr<Entry>> entries_by_base_;
  std::map<Uuid, Entry*> entries_by_uuid_;
  std::vector<std::unique_ptr<Pool>> pools_;

  // Log space (one per runtime/process).
  Entry* log_space_entry_ = nullptr;
  LogSpaceView log_space_;

  std::mutex thread_logs_mu_;
  std::vector<std::unique_ptr<ThreadLog>> thread_logs_;

  // Epoch system (created by EnsureEpochSys; stopped before unmap in ~Runtime
  // — the advancer's final drain writes into mapped log/log-space puddles).
  std::unique_ptr<EpochSys> epoch_sys_;

  Stats stats_;
};

}  // namespace puddles

#endif  // SRC_LIBPUDDLES_RUNTIME_H_
