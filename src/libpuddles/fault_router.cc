#include "src/libpuddles/fault_router.h"

#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>

#include "src/common/log.h"
#include "src/pmem/global_space.h"

namespace puddles {
namespace {

uint64_t CurrentTid() { return static_cast<uint64_t>(::syscall(SYS_gettid)); }

inline void CpuRelax() {
#if defined(__x86_64__)
  asm volatile("pause");
#endif
}

}  // namespace

FaultRouter& FaultRouter::Instance() {
  static FaultRouter* router = new FaultRouter();
  return *router;
}

void FaultRouter::Install() {
  if (installed_.exchange(true)) {
    return;
  }
  if (::pipe(wake_pipe_) != 0) {
    PUD_LOG_ERROR("fault router: pipe failed (%d)", errno);
    installed_.store(false);
    return;
  }
  helper_ = std::thread([this] {
    helper_tid_.store(CurrentTid(), std::memory_order_release);
    HelperLoop();
  });
  helper_.detach();  // Process-lifetime service.

  struct sigaction action = {};
  action.sa_sigaction = &FaultRouter::SignalHandler;
  action.sa_flags = SA_SIGINFO;
  sigemptyset(&action.sa_mask);
  ::sigaction(SIGSEGV, &action, &old_action_);
}

uint64_t FaultRouter::AddResolver(Resolver resolver) {
  Install();
  std::lock_guard<std::mutex> lock(resolvers_mu_);
  uint64_t id = next_resolver_id_++;
  resolvers_.emplace_back(id, std::move(resolver));
  return id;
}

void FaultRouter::RemoveResolver(uint64_t id) {
  std::lock_guard<std::mutex> lock(resolvers_mu_);
  for (size_t i = 0; i < resolvers_.size(); ++i) {
    if (resolvers_[i].first == id) {
      resolvers_.erase(resolvers_.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

FaultRouter::Stats FaultRouter::stats() const {
  Stats stats;
  stats.faults_handled = faults_handled_.load(std::memory_order_relaxed);
  stats.faults_unresolved = faults_unresolved_.load(std::memory_order_relaxed);
  return stats;
}

void FaultRouter::HelperLoop() {
  while (true) {
    char byte;
    ssize_t n = ::read(wake_pipe_[0], &byte, 1);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      return;
    }
    uintptr_t addr = mailbox_addr_.load(std::memory_order_acquire);
    bool handled = Dispatch(addr);
    if (handled) {
      faults_handled_.fetch_add(1, std::memory_order_relaxed);
    } else {
      faults_unresolved_.fetch_add(1, std::memory_order_relaxed);
    }
    mailbox_state_.store(handled ? 2 : 3, std::memory_order_release);
  }
}

bool FaultRouter::Dispatch(uintptr_t addr) {
  std::lock_guard<std::mutex> lock(resolvers_mu_);
  for (auto& [id, resolver] : resolvers_) {
    if (resolver(addr)) {
      return true;
    }
  }
  return false;
}

void FaultRouter::SignalHandler(int signo, siginfo_t* info, void* context) {
  FaultRouter& router = Instance();
  const uintptr_t addr = reinterpret_cast<uintptr_t>(info->si_addr);

  bool ours = pmem::GlobalPuddleSpace().reserved() && pmem::GlobalPuddleSpace().Contains(addr);
  // The helper thread must never wait on itself.
  if (ours && CurrentTid() == router.helper_tid_.load(std::memory_order_acquire)) {
    ours = false;
  }

  if (ours) {
    // Acquire the mailbox (serializes concurrent faulting threads).
    int expected = 0;
    while (!router.mailbox_state_.compare_exchange_weak(expected, 1,
                                                        std::memory_order_acq_rel)) {
      expected = 0;
      CpuRelax();
    }
    router.mailbox_addr_.store(addr, std::memory_order_release);
    char byte = 1;
    ssize_t ignored = ::write(router.wake_pipe_[1], &byte, 1);
    (void)ignored;
    // Wait for the helper's verdict.
    int state;
    do {
      CpuRelax();
      state = router.mailbox_state_.load(std::memory_order_acquire);
    } while (state == 1);
    router.mailbox_state_.store(0, std::memory_order_release);
    if (state == 2) {
      return;  // Mapped: retry the faulting access.
    }
    // Unresolvable: fall through to the default disposition.
  }

  // Not our fault (or unrecoverable): restore the previous handler and
  // re-raise so the process crashes with an honest SIGSEGV.
  ::sigaction(SIGSEGV, &router.old_action_, nullptr);
  ::raise(SIGSEGV);
}

}  // namespace puddles
