// Pointer translation for relocated puddles (paper §4.2).
//
// A Translator holds the pool's old-range → new-base mapping (one entry per
// moved member) as a sorted interval table: Add keeps entries ordered by
// old_lo (rejecting overlaps and wraparound), Translate binary-searches the
// table and short-circuits through a one-entry MRU range cache — O(log E)
// per pointer, amortized ~O(1) on pointer-locality-heavy heaps, versus the
// O(E) linear scan kept as TranslateLinear for differential testing.
//
// RewritePuddle streams the rewrite: it walks the live objects in address
// order via the allocator metadata, rewrites every pointer field that falls
// inside a moved old range, flushes only the cache lines it dirtied, and —
// every batch_objects objects — fences and persists a rewrite frontier in the
// puddle header. A crash mid-rewrite resumes from the frontier instead of
// re-walking (and re-flushing) the entire heap.
//
// Idempotence under crashes: objects below the persisted frontier are never
// revisited, so they cannot be double-translated even if a new base happens
// to land inside another member's old range. Objects at or above the frontier
// may have individual slots durable from the open batch; re-translating those
// relies on new ranges being allocated from free address space (they match no
// old range). The needs-rewrite flag clears (flushed) only after the final
// frontier is durable.
#ifndef SRC_LIBPUDDLES_RELOCATION_H_
#define SRC_LIBPUDDLES_RELOCATION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/libpuddles/type_registry.h"
#include "src/puddles/format.h"

namespace puddles {

struct TranslationEntry {
  uint64_t old_lo;  // Old file-base range [old_lo, old_hi).
  uint64_t old_hi;
  int64_t delta;  // new_base - old_base.
};

class Translator {
 public:
  // Registers a moved range. Rejects zero-size and address-wrapping ranges
  // and any overlap (including duplicates) with a previously added range —
  // an overlapping table would make translation order-dependent, and a
  // wrapped [old_lo, old_hi) would swallow almost the whole address space
  // (same hardening as RangeResolver::Resolve, §4.6).
  puddles::Status Add(uint64_t old_base, uint64_t size, uint64_t new_base) {
    if (size == 0) {
      return InvalidArgumentError("translator: zero-size range");
    }
    if (old_base + size < old_base) {
      return InvalidArgumentError("translator: old range wraps the address space");
    }
    if (old_base == new_base) {
      return OkStatus();  // Identity: nothing to translate.
    }
    // Sorted insert; neighbors are the only possible overlaps.
    size_t pos = LowerBound(old_base);
    if (pos > 0 && entries_[pos - 1].old_hi > old_base) {
      return AlreadyExistsError("translator: overlapping old ranges");
    }
    if (pos < entries_.size() && entries_[pos].old_lo < old_base + size) {
      return AlreadyExistsError("translator: overlapping old ranges");
    }
    entries_.insert(entries_.begin() + pos,
                    {old_base, old_base + size,
                     static_cast<int64_t>(new_base) - static_cast<int64_t>(old_base)});
    mru_ = 0;
    return OkStatus();
  }

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  // Translates `addr` if it falls in a moved old range; returns false if the
  // address is not covered (already-new or foreign pointers pass through).
  // Not safe for concurrent callers (the MRU cache is unsynchronized); the
  // runtime always translates under its mapping lock.
  bool Translate(uint64_t addr, uint64_t* out) const {
    if (entries_.empty()) {
      return false;
    }
    const TranslationEntry& cached = entries_[mru_];
    if (addr >= cached.old_lo && addr < cached.old_hi) {
      *out = static_cast<uint64_t>(static_cast<int64_t>(addr) + cached.delta);
      return true;
    }
    size_t pos = LowerBound(addr + 1);  // First entry with old_lo > addr.
    if (pos == 0) {
      return false;
    }
    const TranslationEntry& entry = entries_[pos - 1];
    if (addr >= entry.old_hi) {
      return false;
    }
    mru_ = pos - 1;
    *out = static_cast<uint64_t>(static_cast<int64_t>(addr) + entry.delta);
    return true;
  }

  // Reference O(E) implementation, kept for differential tests and the
  // before/after benchmark in bench_reloc_primitives.
  bool TranslateLinear(uint64_t addr, uint64_t* out) const {
    for (const TranslationEntry& entry : entries_) {
      if (addr >= entry.old_lo && addr < entry.old_hi) {
        *out = static_cast<uint64_t>(static_cast<int64_t>(addr) + entry.delta);
        return true;
      }
    }
    return false;
  }

 private:
  // Index of the first entry with old_lo >= key.
  size_t LowerBound(uint64_t key) const {
    size_t lo = 0, hi = entries_.size();
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      if (entries_[mid].old_lo < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  std::vector<TranslationEntry> entries_;  // Sorted by old_lo, non-overlapping.
  mutable size_t mru_ = 0;                 // Last-hit entry index.
};

struct RewriteOptions {
  // Objects per persistence batch: after this many visited objects the
  // dirtied lines are fenced and the header frontier advances. Smaller
  // batches bound post-crash re-work (and widen crashsim's explored state
  // space) at the cost of more fences.
  uint32_t batch_objects = 64;
};

struct RewriteStats {
  uint64_t objects_visited = 0;
  uint64_t objects_skipped_resume = 0;  // Below the persisted frontier.
  uint64_t pointers_visited = 0;
  uint64_t pointers_rewritten = 0;
  uint64_t objects_without_map = 0;
  uint64_t lines_flushed = 0;      // Dirtied cache lines streamed out.
  uint64_t frontier_advances = 0;  // Persisted batch boundaries.
};

// Rewrites all pointers in `puddle`'s heap (which must be mapped writable and
// attached), resuming from the persisted frontier after a crash. Marks the
// puddle clean (CompleteRewrite) on success. The type registry supplies
// pointer maps; unknown types are assumed pointer-free (counted in stats so
// callers can warn).
puddles::Result<RewriteStats> RewritePuddle(Puddle& puddle, const Translator& translator,
                                            const TypeRegistry& registry,
                                            const RewriteOptions& options = {});

}  // namespace puddles

#endif  // SRC_LIBPUDDLES_RELOCATION_H_
