// Pointer translation for relocated puddles (paper §4.2).
//
// A Translator holds the pool's old-range → new-base mapping (one entry per
// moved member). RewritePuddle walks every live object in a puddle's heap via
// the allocator metadata, looks up each object's pointer map by its type ID,
// and rewrites every pointer value that falls inside a moved old range.
//
// Idempotence under crashes: new bases are allocated from free address space,
// so a pointer already rewritten into a new range matches no old range and a
// re-run after a crash only translates the remaining stale pointers. The
// needs-rewrite flag is cleared (flushed) only after the whole heap has been
// rewritten and flushed.
#ifndef SRC_LIBPUDDLES_RELOCATION_H_
#define SRC_LIBPUDDLES_RELOCATION_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/status.h"
#include "src/libpuddles/type_registry.h"
#include "src/puddles/format.h"

namespace puddles {

struct TranslationEntry {
  uint64_t old_lo;  // Old file-base range [old_lo, old_hi).
  uint64_t old_hi;
  int64_t delta;  // new_base - old_base.
};

class Translator {
 public:
  void Add(uint64_t old_base, uint64_t size, uint64_t new_base) {
    if (old_base == new_base) {
      return;  // Identity: nothing to translate.
    }
    entries_.push_back({old_base, old_base + size,
                        static_cast<int64_t>(new_base) - static_cast<int64_t>(old_base)});
  }

  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  // Translates `addr` if it falls in a moved old range; returns false if the
  // address is not covered (already-new or foreign pointers pass through).
  bool Translate(uint64_t addr, uint64_t* out) const {
    for (const TranslationEntry& entry : entries_) {
      if (addr >= entry.old_lo && addr < entry.old_hi) {
        *out = static_cast<uint64_t>(static_cast<int64_t>(addr) + entry.delta);
        return true;
      }
    }
    return false;
  }

 private:
  std::vector<TranslationEntry> entries_;
};

struct RewriteStats {
  uint64_t objects_visited = 0;
  uint64_t pointers_visited = 0;
  uint64_t pointers_rewritten = 0;
  uint64_t objects_without_map = 0;
};

// Rewrites all pointers in `puddle`'s heap (which must be mapped writable and
// attached). Marks the puddle clean (CompleteRewrite) on success. The type
// registry supplies pointer maps; unknown types are assumed pointer-free
// (counted in stats so callers can warn).
puddles::Result<RewriteStats> RewritePuddle(Puddle& puddle, const Translator& translator,
                                            const TypeRegistry& registry);

}  // namespace puddles

#endif  // SRC_LIBPUDDLES_RELOCATION_H_
