// Shared single-file PM pool used by the baseline libraries (fatptr/PMDK-like,
// Atlas-like, go-pmem-like, Romulus). Layout:
//
//   | Header page | log region | ObjectHeap metadata | heap ( | back heap ) |
//
// The baselines deliberately reuse this repo's allocator and log machinery so
// that measured differences between libraries come from what the paper
// analyzes — pointer representation and logging discipline — not from
// incidental allocator quality (DESIGN.md §4).
#ifndef SRC_BASELINES_COMMON_PMLIB_BASE_H_
#define SRC_BASELINES_COMMON_PMLIB_BASE_H_

#include <cstdint>
#include <string>

#include "src/alloc/object_heap.h"
#include "src/common/align.h"
#include "src/pmem/flush.h"
#include "src/common/status.h"
#include "src/common/uuid.h"
#include "src/pmem/mapped_file.h"
#include "src/tx/log_format.h"

namespace baselines {

using puddles::ObjectHeap;
using puddles::Uuid;

inline constexpr uint64_t kPmPoolMagic = 0x4c4f4f504d505342ULL;  // "BSPMPOOL"

struct PmPoolHeader {
  uint64_t magic;
  Uuid uuid;
  uint64_t heap_size;
  uint64_t log_offset;
  uint64_t log_size;
  uint64_t meta_offset;
  uint64_t heap_offset;
  uint64_t back_offset;  // Romulus twin copy; 0 if absent.
  uint64_t root_offset;  // Heap offset of the root object payload; 0 = none.
  uint32_t state;        // Library-specific recovery state word.
  uint32_t reserved;
};

// A mapped single-file pool with a log region and a typed heap.
class PmPoolFile {
 public:
  static constexpr size_t kLogSize = 1 << 20;

  static size_t FileSizeFor(size_t heap_size, bool twin) {
    return puddles::AlignUp(sizeof(PmPoolHeader), puddles::kPageSize) + kLogSize +
           puddles::AlignUp(ObjectHeap::MetaSize(heap_size), puddles::kPageSize) +
           heap_size * (twin ? 2 : 1);
  }

  static puddles::Result<PmPoolFile> Create(const std::string& path, size_t heap_size,
                                            bool twin) {
    PmPoolFile pool;
    ASSIGN_OR_RETURN(pool.file_, pmem::PmemFile::Create(path, FileSizeFor(heap_size, twin)));
    ASSIGN_OR_RETURN(void* base, pool.file_.Map());
    auto* header = static_cast<PmPoolHeader*>(base);
    header->magic = kPmPoolMagic;
    header->uuid = Uuid::Generate();
    header->heap_size = heap_size;
    header->log_offset = puddles::AlignUp(sizeof(PmPoolHeader), puddles::kPageSize);
    header->log_size = kLogSize;
    header->meta_offset = header->log_offset + kLogSize;
    header->heap_offset =
        header->meta_offset + puddles::AlignUp(ObjectHeap::MetaSize(heap_size), puddles::kPageSize);
    header->back_offset = twin ? header->heap_offset + heap_size : 0;
    header->root_offset = 0;
    header->state = 0;
    RETURN_IF_ERROR(puddles::LogRegion::Format(pool.At(header->log_offset), kLogSize));
    RETURN_IF_ERROR(
        ObjectHeap::Format(pool.At(header->meta_offset), pool.At(header->heap_offset),
                           heap_size));
    pmem::FlushFence(header, sizeof(PmPoolHeader));
    return pool;
  }

  static puddles::Result<PmPoolFile> Open(const std::string& path) {
    PmPoolFile pool;
    ASSIGN_OR_RETURN(pool.file_, pmem::PmemFile::Open(path));
    ASSIGN_OR_RETURN(void* base, pool.file_.Map());
    auto* header = static_cast<PmPoolHeader*>(base);
    if (header->magic != kPmPoolMagic) {
      return puddles::DataLossError("not a baseline PM pool");
    }
    return pool;
  }

  PmPoolHeader* header() const { return static_cast<PmPoolHeader*>(file_.data()); }
  uint8_t* At(uint64_t offset) const { return static_cast<uint8_t*>(file_.data()) + offset; }
  uint8_t* heap() const { return At(header()->heap_offset); }
  uint8_t* back() const { return At(header()->back_offset); }
  size_t heap_size() const { return header()->heap_size; }
  const Uuid& uuid() const { return header()->uuid; }

  puddles::Result<puddles::LogRegion> log() const {
    return puddles::LogRegion::Attach(At(header()->log_offset), header()->log_size);
  }

  puddles::Result<ObjectHeap> object_heap(puddles::LogSink sink = {}) const {
    return ObjectHeap::Attach(At(header()->meta_offset), heap(), heap_size(), sink);
  }

  void SetRootOffset(uint64_t offset) {
    header()->root_offset = offset;
    pmem::FlushFence(&header()->root_offset, sizeof(uint64_t));
  }
  uint64_t root_offset() const { return header()->root_offset; }

  void SetState(uint32_t state) {
    header()->state = state;
    pmem::FlushFence(&header()->state, sizeof(uint32_t));
  }
  uint32_t state() const { return header()->state; }

 private:
  pmem::PmemFile file_;
};

}  // namespace baselines

#endif  // SRC_BASELINES_COMMON_PMLIB_BASE_H_
