// Atlas-like baseline (Chakrabarti, Boehm, Bhandari, OOPSLA'14): native
// pointers, eager undo logging.
//
// Cost model reproduced for Fig. 11: Atlas persists each undo entry *before*
// the corresponding store (log append + flush + fence per logged range, with
// no batching at commit), which is why it trails PMDK/Puddles on write-heavy
// YCSB mixes. Lock-delimited failure-atomic sections are modeled as explicit
// TxBegin/TxCommit around the critical section.
#ifndef SRC_BASELINES_ATLAS_ATLAS_H_
#define SRC_BASELINES_ATLAS_ATLAS_H_

#include <string>
#include <vector>

#include "src/baselines/common/pmlib_base.h"
#include "src/common/type_name.h"
#include "src/tx/replay.h"

namespace atlaspm {

using baselines::PmPoolFile;
using puddles::TypeIdOf;

class AtlasPool {
 public:
  template <typename T>
  using Ptr = T*;

  static puddles::Result<AtlasPool> Create(const std::string& path, size_t heap_size) {
    AtlasPool pool;
    ASSIGN_OR_RETURN(pool.pool_, PmPoolFile::Create(path, heap_size, /*twin=*/false));
    ASSIGN_OR_RETURN(pool.log_, pool.pool_.log());
    return pool;
  }

  static puddles::Result<AtlasPool> Open(const std::string& path) {
    AtlasPool pool;
    ASSIGN_OR_RETURN(pool.pool_, PmPoolFile::Open(path));
    ASSIGN_OR_RETURN(pool.log_, pool.pool_.log());
    RETURN_IF_ERROR(pool.Recover());
    return pool;
  }

  puddles::Status TxBegin() {
    ++tx_depth_;
    return puddles::OkStatus();
  }

  // Eager undo: the entry is durable (flushed + fenced by LogRegion::Append)
  // before this returns; an extra fence models Atlas's per-store ordering.
  puddles::Status TxAddRange(const void* addr, size_t size) {
    RETURN_IF_ERROR(log_.Append(reinterpret_cast<uint64_t>(addr), addr,
                                static_cast<uint32_t>(size), puddles::kUndoSeq,
                                puddles::ReplayOrder::kReverse));
    pmem::Fence();
    undo_.emplace_back(addr, size);
    return puddles::OkStatus();
  }
  template <typename T>
  puddles::Status TxAdd(T* ptr) {
    return TxAddRange(ptr, sizeof(T));
  }

  puddles::Status TxCommit() {
    if (--tx_depth_ > 0) {
      return puddles::OkStatus();
    }
    // Atlas flushes each modified location synchronously at section end.
    for (const auto& [addr, size] : undo_) {
      pmem::FlushFence(addr, size);
    }
    log_.Reset(0, 2);
    undo_.clear();
    return puddles::OkStatus();
  }

  puddles::Status TxAbort() {
    tx_depth_ = 0;
    puddles::RangeResolver resolver(reinterpret_cast<uint64_t>(pool_.heap()),
                                    pool_.heap_size());
    RETURN_IF_ERROR(puddles::ReplayLogChain({log_}, resolver).status());
    log_.Reset(0, 2);
    undo_.clear();
    return puddles::OkStatus();
  }

  template <typename Fn>
  puddles::Status TxRun(Fn&& fn) {
    RETURN_IF_ERROR(TxBegin());
    fn();
    return TxCommit();
  }

  template <typename T>
  puddles::Result<T*> Alloc(size_t count = 1) {
    ASSIGN_OR_RETURN(void* payload, AllocBytes(sizeof(T) * count, TypeIdOf<T>()));
    return static_cast<T*>(payload);
  }
  puddles::Result<void*> AllocBytes(size_t size, puddles::TypeId type_id) {
    puddles::LogSink sink;
    if (tx_depth_ > 0) {
      sink = puddles::LogSink{this, [](void* ctx, void* addr, size_t len) {
                                (void)static_cast<AtlasPool*>(ctx)->TxAddRange(addr, len);
                              }};
    }
    ASSIGN_OR_RETURN(baselines::ObjectHeap heap, pool_.object_heap(sink));
    ASSIGN_OR_RETURN(void* payload, heap.Allocate(size, type_id));
    if (tx_depth_ == 0) {
      pmem::FlushFence(pool_.At(pool_.header()->meta_offset),
                       pool_.header()->heap_offset - pool_.header()->meta_offset);
    }
    return payload;
  }
  puddles::Status Free(void* payload) {
    puddles::LogSink sink;
    if (tx_depth_ > 0) {
      sink = puddles::LogSink{this, [](void* ctx, void* addr, size_t len) {
                                (void)static_cast<AtlasPool*>(ctx)->TxAddRange(addr, len);
                              }};
    }
    ASSIGN_OR_RETURN(baselines::ObjectHeap heap, pool_.object_heap(sink));
    return heap.Free(payload);
  }

  template <typename T>
  T* Root() const {
    uint64_t offset = pool_.root_offset();
    return offset == 0 ? nullptr : reinterpret_cast<T*>(pool_.heap() + offset);
  }
  template <typename T>
  void SetRoot(T* payload) {
    pool_.SetRootOffset(reinterpret_cast<uint8_t*>(payload) - pool_.heap());
  }

  uint8_t* heap() const { return pool_.heap(); }

 private:
  AtlasPool() = default;

  puddles::Status Recover() {
    puddles::RangeResolver resolver(reinterpret_cast<uint64_t>(pool_.heap()),
                                    pool_.heap_size());
    RETURN_IF_ERROR(puddles::ReplayLogChain({log_}, resolver).status());
    log_.Reset(0, 2);
    return puddles::OkStatus();
  }

  PmPoolFile pool_;
  puddles::LogRegion log_;
  int tx_depth_ = 0;
  std::vector<std::pair<const void*, size_t>> undo_;
};

}  // namespace atlaspm

#endif  // SRC_BASELINES_ATLAS_ATLAS_H_
