#include "src/baselines/fatptr/fatptr.h"

namespace fatptr {

uint8_t* g_pool_bases[1024] = {};

PoolDirectory& PoolDirectory::Instance() {
  static PoolDirectory* directory = new PoolDirectory();
  return *directory;
}

puddles::Result<uint32_t> PoolDirectory::RegisterPool(const puddles::Uuid& uuid,
                                                      uint8_t* heap_base) {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t free_slot = 0;
  for (uint32_t i = 1; i < kMaxPools; ++i) {
    if (g_pool_bases[i] != nullptr && uuids_[i] == uuid) {
      // "PMDK thus prevents users from opening multiple copies of a pool by
      // checking if the UUID of the pool was already registered" (§2.3).
      return puddles::AlreadyExistsError("pool UUID already open: " + uuid.ToString());
    }
    if (g_pool_bases[i] == nullptr && free_slot == 0) {
      free_slot = i;
    }
  }
  if (free_slot == 0) {
    return puddles::OutOfMemoryError("pool directory full");
  }
  g_pool_bases[free_slot] = heap_base;
  uuids_[free_slot] = uuid;
  return free_slot;
}

void PoolDirectory::UnregisterPool(uint32_t pool_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (pool_id > 0 && pool_id < kMaxPools) {
    g_pool_bases[pool_id] = nullptr;
    uuids_[pool_id] = puddles::Uuid::Nil();
  }
}

puddles::Result<FatPool> FatPool::Create(const std::string& path, size_t heap_size) {
  FatPool pool;
  ASSIGN_OR_RETURN(pool.pool_, PmPoolFile::Create(path, heap_size, /*twin=*/false));
  ASSIGN_OR_RETURN(pool.log_, pool.pool_.log());
  ASSIGN_OR_RETURN(uint32_t id, PoolDirectory::Instance().RegisterPool(pool.pool_.uuid(),
                                                                       pool.pool_.heap()));
  pool.pool_id_ = id;
  return pool;
}

puddles::Result<FatPool> FatPool::Open(const std::string& path) {
  FatPool pool;
  ASSIGN_OR_RETURN(pool.pool_, PmPoolFile::Open(path));
  ASSIGN_OR_RETURN(pool.log_, pool.pool_.log());
  ASSIGN_OR_RETURN(uint32_t id, PoolDirectory::Instance().RegisterPool(pool.pool_.uuid(),
                                                                       pool.pool_.heap()));
  pool.pool_id_ = id;
  // PMDK-style recovery: happens only here, driven by the application
  // re-opening the pool — the §2.1 brittleness Puddles removes.
  puddles::Status recovered = pool.Recover();
  if (!recovered.ok()) {
    PoolDirectory::Instance().UnregisterPool(id);
    return recovered;
  }
  return pool;
}

FatPool::~FatPool() {
  if (pool_id_ != 0) {
    PoolDirectory::Instance().UnregisterPool(static_cast<uint32_t>(pool_id_));
  }
}

puddles::Status FatPool::Recover() {
  if (log_.empty()) {
    return puddles::OkStatus();
  }
  puddles::RangeResolver resolver(reinterpret_cast<uint64_t>(pool_.heap()),
                                  pool_.heap_size());
  auto stats = puddles::ReplayLogChain({log_}, resolver);
  RETURN_IF_ERROR(stats.status());
  log_.Reset(0, 2);
  return puddles::OkStatus();
}

puddles::Status FatPool::TxBegin() {
  if (tx_depth_ > 0) {
    ++tx_depth_;  // Flat nesting, PMDK semantics.
    return puddles::OkStatus();
  }
  tx_depth_ = 1;
  tx_undo_.clear();
  return puddles::OkStatus();
}

puddles::Status FatPool::TxAddRange(const void* addr, size_t size) {
  if (tx_depth_ == 0) {
    return puddles::FailedPreconditionError("no open transaction");
  }
  RETURN_IF_ERROR(log_.Append(reinterpret_cast<uint64_t>(addr), addr,
                              static_cast<uint32_t>(size), puddles::kUndoSeq,
                              puddles::ReplayOrder::kReverse));
  tx_undo_.emplace_back(addr, size);
  return puddles::OkStatus();
}

puddles::Result<uint64_t> FatPool::AllocBytes(size_t size, puddles::TypeId type_id) {
  puddles::LogSink sink;
  if (tx_depth_ > 0) {
    sink = puddles::LogSink{this, [](void* ctx, void* addr, size_t len) {
                              (void)static_cast<FatPool*>(ctx)->TxAddRange(addr, len);
                            }};
  }
  ASSIGN_OR_RETURN(ObjectHeap heap, pool_.object_heap(sink));
  ASSIGN_OR_RETURN(void* payload, heap.Allocate(size, type_id));
  if (tx_depth_ == 0) {
    pmem::FlushFence(pool_.At(pool_.header()->meta_offset),
                     pool_.header()->heap_offset - pool_.header()->meta_offset);
  }
  return static_cast<uint64_t>(static_cast<uint8_t*>(payload) - pool_.heap());
}

puddles::Status FatPool::FreeBytes(uint64_t offset) {
  puddles::LogSink sink;
  if (tx_depth_ > 0) {
    sink = puddles::LogSink{this, [](void* ctx, void* addr, size_t len) {
                              (void)static_cast<FatPool*>(ctx)->TxAddRange(addr, len);
                            }};
  }
  ASSIGN_OR_RETURN(ObjectHeap heap, pool_.object_heap(sink));
  return heap.Free(pool_.heap() + offset);
}

puddles::Status FatPool::TxCommit() {
  if (tx_depth_ == 0) {
    return puddles::FailedPreconditionError("no open transaction");
  }
  if (--tx_depth_ > 0) {
    return puddles::OkStatus();
  }
  // Stage 1: make all undo-logged locations durable; then drop the log.
  for (const auto& [addr, size] : tx_undo_) {
    pmem::Flush(addr, size);
  }
  pmem::Fence();
  log_.Reset(0, 2);
  tx_undo_.clear();
  return puddles::OkStatus();
}

puddles::Status FatPool::TxAbort() {
  if (tx_depth_ == 0) {
    return puddles::FailedPreconditionError("no open transaction");
  }
  tx_depth_ = 0;
  puddles::RangeResolver resolver(reinterpret_cast<uint64_t>(pool_.heap()),
                                  pool_.heap_size());
  auto stats = puddles::ReplayLogChain({log_}, resolver);
  RETURN_IF_ERROR(stats.status());
  log_.Reset(0, 2);
  tx_undo_.clear();
  return puddles::OkStatus();
}

}  // namespace fatptr
