// PMDK-like baseline: 128-bit fat pointers {pool id, offset} with
// translation on every dereference (paper §2.2, Fig. 1, Fig. 4b).
//
// Reproduced PMDK behaviours:
//   * PMEMoid-style pointers: dereference = pool-table lookup + base + offset,
//     paying the extra loads and halved cache locality the paper measures.
//   * Duplicate-UUID open refusal ("PMDK thus prevents users from opening
//     multiple copies of a pool", §2.3) — the restriction the sensor workload
//     (Fig. 14) runs into.
//   * Hybrid logging: user data undo-logged (pmemobj_tx_add_range), allocator
//     metadata redo-logged at commit (PMDK PR #2716).
//   * No cross-pool pointers; recovery only on next open by the application.
#ifndef SRC_BASELINES_FATPTR_FATPTR_H_
#define SRC_BASELINES_FATPTR_FATPTR_H_

#include <cstdint>
#include <mutex>
#include <utility>
#include <string>
#include <vector>

#include "src/baselines/common/pmlib_base.h"
#include "src/common/type_name.h"
#include "src/tx/replay.h"

namespace fatptr {

using baselines::ObjectHeap;
using baselines::PmPoolFile;
using puddles::TypeIdOf;

// Raw base table consulted on every dereference (two dependent loads plus an
// add — the same fast path PMDK's pool-id translation compiles to).
extern uint8_t* g_pool_bases[1024];

// Process-wide pool directory: fat-pointer deref resolves pool_id → base
// through this table (open addressing, like PMDK's cached pool lookup).
class PoolDirectory {
 public:
  static PoolDirectory& Instance();

  // Returns a dense pool id, or error if this UUID is already open.
  puddles::Result<uint32_t> RegisterPool(const puddles::Uuid& uuid, uint8_t* heap_base);
  void UnregisterPool(uint32_t pool_id);

  uint8_t* BaseOf(uint32_t pool_id) const {
    // The translation the paper charges to every dereference.
    return g_pool_bases[pool_id];
  }

 private:
  PoolDirectory() = default;
  static constexpr size_t kMaxPools = 1024;

  mutable std::mutex mu_;
  std::vector<puddles::Uuid> uuids_ = std::vector<puddles::Uuid>(kMaxPools);
};

// The 128-bit fat pointer (PMEMoid analog).
template <typename T>
struct FatPtr {
  uint64_t pool_id = 0;  // 0 = null (pool ids start at 1).
  uint64_t offset = 0;

  bool is_null() const { return pool_id == 0; }
  static FatPtr Null() { return {}; }

  // D_RW / D_RO: the translated native pointer (table load + add).
  T* get() const {
    if (pool_id == 0) {
      return nullptr;
    }
    return reinterpret_cast<T*>(g_pool_bases[pool_id] + offset);
  }
  T* operator->() const { return get(); }
  T& operator*() const { return *get(); }

  friend bool operator==(const FatPtr& a, const FatPtr& b) = default;
};
static_assert(sizeof(FatPtr<int>) == 16, "fat pointers are 128-bit (paper §2.2)");

// A PMDK-like pool with transactions.
class FatPool {
 public:
  template <typename T>
  using Ptr = FatPtr<T>;

  static puddles::Result<FatPool> Create(const std::string& path, size_t heap_size);
  // Refuses to open the same UUID twice (the §2.3 restriction). Runs
  // application-driven recovery (log replay) first, PMDK-style.
  static puddles::Result<FatPool> Open(const std::string& path);

  ~FatPool();
  FatPool(FatPool&& other) noexcept
      : pool_(std::move(other.pool_)),
        pool_id_(std::exchange(other.pool_id_, 0)),
        log_(other.log_),
        tx_depth_(other.tx_depth_),
        tx_undo_(std::move(other.tx_undo_)) {}
  FatPool& operator=(FatPool&& other) noexcept {
    if (this != &other) {
      if (pool_id_ != 0) {
        PoolDirectory::Instance().UnregisterPool(static_cast<uint32_t>(pool_id_));
      }
      pool_ = std::move(other.pool_);
      pool_id_ = std::exchange(other.pool_id_, 0);
      log_ = other.log_;
      tx_depth_ = other.tx_depth_;
      tx_undo_ = std::move(other.tx_undo_);
    }
    return *this;
  }

  // ---- Transactions (undo for user data, redo for allocator) ----
  puddles::Status TxBegin();
  puddles::Status TxCommit();
  puddles::Status TxAbort();

  // pmemobj_tx_add_range analog.
  puddles::Status TxAddRange(const void* addr, size_t size);
  template <typename T>
  puddles::Status TxAdd(const FatPtr<T>& ptr) {
    return TxAddRange(ptr.get(), sizeof(T));
  }

  // ---- Allocation (TX_NEW / TX_ALLOC analogs) ----
  template <typename T>
  puddles::Result<FatPtr<T>> Alloc(size_t count = 1) {
    ASSIGN_OR_RETURN(uint64_t offset, AllocBytes(sizeof(T) * count, TypeIdOf<T>()));
    return FatPtr<T>{pool_id_, offset};
  }
  puddles::Result<uint64_t> AllocBytes(size_t size, puddles::TypeId type_id);
  puddles::Status FreeBytes(uint64_t offset);
  template <typename T>
  puddles::Status Free(const FatPtr<T>& ptr) {
    return FreeBytes(ptr.offset);
  }

  // ---- Root ----
  template <typename T>
  FatPtr<T> Root() const {
    uint64_t offset = pool_.root_offset();
    return offset == 0 ? FatPtr<T>::Null() : FatPtr<T>{pool_id_, offset};
  }
  template <typename T>
  void SetRoot(const FatPtr<T>& ptr) {
    pool_.SetRootOffset(ptr.offset);
  }

  uint32_t pool_id() const { return static_cast<uint32_t>(pool_id_); }
  uint8_t* heap_base() const { return pool_.heap(); }
  const puddles::Uuid& uuid() const { return pool_.uuid(); }

  // Runs the template `fn` failure-atomically.
  template <typename Fn>
  puddles::Status TxRun(Fn&& fn) {
    RETURN_IF_ERROR(TxBegin());
    fn();
    return TxCommit();
  }

 private:
  FatPool() = default;
  puddles::Status Recover();

  PmPoolFile pool_;
  uint64_t pool_id_ = 0;
  puddles::LogRegion log_;
  int tx_depth_ = 0;
  // Undo entries of the open transaction (addr/size pairs for stage-1 flush).
  std::vector<std::pair<const void*, size_t>> tx_undo_;
};

}  // namespace fatptr

#endif  // SRC_BASELINES_FATPTR_FATPTR_H_
