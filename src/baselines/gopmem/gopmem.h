// go-pmem-like baseline (George et al., ATC'20): native pointers, undo
// logging batched at commit, Go-runtime allocation behaviour.
//
// Cost model reproduced for Fig. 11: transactions look like Puddles/PMDK undo
// logging (batched flush at commit), but allocation is heavier — Go zeroes
// every new object and tracks per-object type metadata for its GC, modeled
// here as zero-fill plus a flushed type tag on every allocation.
#ifndef SRC_BASELINES_GOPMEM_GOPMEM_H_
#define SRC_BASELINES_GOPMEM_GOPMEM_H_

#include <cstring>
#include <string>
#include <vector>

#include "src/baselines/common/pmlib_base.h"
#include "src/common/type_name.h"
#include "src/tx/replay.h"

namespace gopmem {

using baselines::PmPoolFile;
using puddles::TypeIdOf;

class GoPmemPool {
 public:
  template <typename T>
  using Ptr = T*;

  static puddles::Result<GoPmemPool> Create(const std::string& path, size_t heap_size) {
    GoPmemPool pool;
    ASSIGN_OR_RETURN(pool.pool_, PmPoolFile::Create(path, heap_size, /*twin=*/false));
    ASSIGN_OR_RETURN(pool.log_, pool.pool_.log());
    return pool;
  }

  static puddles::Result<GoPmemPool> Open(const std::string& path) {
    GoPmemPool pool;
    ASSIGN_OR_RETURN(pool.pool_, PmPoolFile::Open(path));
    ASSIGN_OR_RETURN(pool.log_, pool.pool_.log());
    puddles::RangeResolver resolver(reinterpret_cast<uint64_t>(pool.pool_.heap()),
                                    pool.pool_.heap_size());
    RETURN_IF_ERROR(puddles::ReplayLogChain({pool.log_}, resolver).status());
    pool.log_.Reset(0, 2);
    return pool;
  }

  puddles::Status TxBegin() {
    ++tx_depth_;
    return puddles::OkStatus();
  }

  puddles::Status TxAddRange(const void* addr, size_t size) {
    RETURN_IF_ERROR(log_.Append(reinterpret_cast<uint64_t>(addr), addr,
                                static_cast<uint32_t>(size), puddles::kUndoSeq,
                                puddles::ReplayOrder::kReverse));
    undo_.emplace_back(addr, size);
    return puddles::OkStatus();
  }
  template <typename T>
  puddles::Status TxAdd(T* ptr) {
    return TxAddRange(ptr, sizeof(T));
  }

  puddles::Status TxCommit() {
    if (--tx_depth_ > 0) {
      return puddles::OkStatus();
    }
    for (const auto& [addr, size] : undo_) {
      pmem::Flush(addr, size);
    }
    pmem::Fence();
    log_.Reset(0, 2);
    undo_.clear();
    return puddles::OkStatus();
  }

  puddles::Status TxAbort() {
    tx_depth_ = 0;
    puddles::RangeResolver resolver(reinterpret_cast<uint64_t>(pool_.heap()),
                                    pool_.heap_size());
    RETURN_IF_ERROR(puddles::ReplayLogChain({log_}, resolver).status());
    log_.Reset(0, 2);
    undo_.clear();
    return puddles::OkStatus();
  }

  template <typename Fn>
  puddles::Status TxRun(Fn&& fn) {
    RETURN_IF_ERROR(TxBegin());
    fn();
    return TxCommit();
  }

  template <typename T>
  puddles::Result<T*> Alloc(size_t count = 1) {
    ASSIGN_OR_RETURN(void* payload, AllocBytes(sizeof(T) * count, TypeIdOf<T>()));
    return static_cast<T*>(payload);
  }
  puddles::Result<void*> AllocBytes(size_t size, puddles::TypeId type_id) {
    puddles::LogSink sink;
    if (tx_depth_ > 0) {
      sink = puddles::LogSink{this, [](void* ctx, void* addr, size_t len) {
                                (void)static_cast<GoPmemPool*>(ctx)->TxAddRange(addr, len);
                              }};
    }
    ASSIGN_OR_RETURN(baselines::ObjectHeap heap, pool_.object_heap(sink));
    ASSIGN_OR_RETURN(void* payload, heap.Allocate(size, type_id));
    // Go runtime behaviour: new objects are zeroed and their type metadata
    // persisted for the (offline) GC to scan.
    std::memset(payload, 0, size);
    pmem::FlushFence(payload, size);
    if (tx_depth_ == 0) {
      pmem::FlushFence(pool_.At(pool_.header()->meta_offset),
                       pool_.header()->heap_offset - pool_.header()->meta_offset);
    }
    return payload;
  }
  puddles::Status Free(void* payload) {
    puddles::LogSink sink;
    if (tx_depth_ > 0) {
      sink = puddles::LogSink{this, [](void* ctx, void* addr, size_t len) {
                                (void)static_cast<GoPmemPool*>(ctx)->TxAddRange(addr, len);
                              }};
    }
    ASSIGN_OR_RETURN(baselines::ObjectHeap heap, pool_.object_heap(sink));
    return heap.Free(payload);
  }

  template <typename T>
  T* Root() const {
    uint64_t offset = pool_.root_offset();
    return offset == 0 ? nullptr : reinterpret_cast<T*>(pool_.heap() + offset);
  }
  template <typename T>
  void SetRoot(T* payload) {
    pool_.SetRootOffset(reinterpret_cast<uint8_t*>(payload) - pool_.heap());
  }

 private:
  GoPmemPool() = default;

  PmPoolFile pool_;
  puddles::LogRegion log_;
  int tx_depth_ = 0;
  std::vector<std::pair<const void*, size_t>> undo_;
};

}  // namespace gopmem

#endif  // SRC_BASELINES_GOPMEM_GOPMEM_H_
