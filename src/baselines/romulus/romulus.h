// Romulus-like baseline (Correia, Felber, Ramalhete, SPAA'18): twin-copy
// persistence with a volatile modification log.
//
// Cost structure the paper compares against (§5.2): transactions write the
// *main* region in place and only note dirty ranges in DRAM — no per-store PM
// logging — then commit flushes the dirty main ranges and mirrors them into
// the *back* region. Write-heavy workloads pay 2× PM data writes but zero log
// writes, which is why Romulus leads PMDK/Puddles on YCSB A/F.
//
// Recovery: a persistent 3-state word. MUTATING at crash ⇒ main may be torn,
// copy back→main. COPYING at crash ⇒ main is consistent, copy main→back.
#ifndef SRC_BASELINES_ROMULUS_ROMULUS_H_
#define SRC_BASELINES_ROMULUS_ROMULUS_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/baselines/common/pmlib_base.h"
#include "src/common/type_name.h"

namespace romulus {

using baselines::PmPoolFile;
using puddles::TypeIdOf;

class RomulusPool {
 public:
  template <typename T>
  using Ptr = T*;  // Native pointers.

  enum State : uint32_t { kIdle = 0, kMutating = 1, kCopying = 2 };

  static puddles::Result<RomulusPool> Create(const std::string& path, size_t heap_size) {
    RomulusPool pool;
    ASSIGN_OR_RETURN(pool.pool_, PmPoolFile::Create(path, heap_size, /*twin=*/true));
    // Initialize back as a copy of (freshly formatted) main.
    std::memcpy(pool.pool_.back(), pool.pool_.heap(), heap_size);
    pmem::FlushFence(pool.pool_.back(), heap_size);
    return pool;
  }

  static puddles::Result<RomulusPool> Open(const std::string& path) {
    RomulusPool pool;
    ASSIGN_OR_RETURN(pool.pool_, PmPoolFile::Open(path));
    RETURN_IF_ERROR(pool.Recover());
    return pool;
  }

  puddles::Status TxBegin() {
    if (tx_depth_++ > 0) {
      return puddles::OkStatus();
    }
    dirty_.clear();
    pool_.SetState(kMutating);  // One persistent store+fence per tx.
    return puddles::OkStatus();
  }

  // Note a range about to be modified — volatile only (the Romulus edge).
  puddles::Status TxAddRange(const void* addr, size_t size) {
    dirty_.emplace_back(reinterpret_cast<const uint8_t*>(addr) - pool_.heap(), size);
    return puddles::OkStatus();
  }
  template <typename T>
  puddles::Status TxAdd(T* ptr) {
    return TxAddRange(ptr, sizeof(T));
  }

  puddles::Status TxCommit() {
    if (--tx_depth_ > 0) {
      return puddles::OkStatus();
    }
    // Flush modified main ranges, then mirror them into back.
    for (const auto& [offset, size] : dirty_) {
      pmem::Flush(pool_.heap() + offset, size);
    }
    pmem::Fence();
    pool_.SetState(kCopying);
    for (const auto& [offset, size] : dirty_) {
      std::memcpy(pool_.back() + offset, pool_.heap() + offset, size);
      pmem::Flush(pool_.back() + offset, size);
    }
    pmem::Fence();
    pool_.SetState(kIdle);
    dirty_.clear();
    return puddles::OkStatus();
  }

  puddles::Status TxAbort() {
    // Restore modified ranges from back (the consistent twin).
    for (const auto& [offset, size] : dirty_) {
      std::memcpy(pool_.heap() + offset, pool_.back() + offset, size);
      pmem::Flush(pool_.heap() + offset, size);
    }
    pmem::Fence();
    pool_.SetState(kIdle);
    dirty_.clear();
    tx_depth_ = 0;
    return puddles::OkStatus();
  }

  template <typename Fn>
  puddles::Status TxRun(Fn&& fn) {
    RETURN_IF_ERROR(TxBegin());
    fn();
    return TxCommit();
  }

  // Allocation: metadata changes are covered by the twin copy, so the
  // allocator needs no logging — but its metadata writes must be mirrored.
  // TxAddRange-ing the metadata region keeps the twin consistent.
  template <typename T>
  puddles::Result<T*> Alloc(size_t count = 1) {
    ASSIGN_OR_RETURN(void* payload, AllocBytes(sizeof(T) * count, TypeIdOf<T>()));
    return static_cast<T*>(payload);
  }
  puddles::Result<void*> AllocBytes(size_t size, puddles::TypeId type_id) {
    puddles::LogSink sink{this, [](void* ctx, void* addr, size_t len) {
                            (void)static_cast<RomulusPool*>(ctx)->TxAddRange(addr, len);
                          }};
    const bool own_tx = tx_depth_ == 0;
    if (own_tx) {
      RETURN_IF_ERROR(TxBegin());
    }
    ASSIGN_OR_RETURN(baselines::ObjectHeap heap, pool_.object_heap(sink));
    auto result = heap.Allocate(size, type_id);
    if (own_tx) {
      RETURN_IF_ERROR(TxCommit());
    }
    RETURN_IF_ERROR(result.status());
    return *result;
  }
  puddles::Status Free(void* payload) {
    puddles::LogSink sink{this, [](void* ctx, void* addr, size_t len) {
                            (void)static_cast<RomulusPool*>(ctx)->TxAddRange(addr, len);
                          }};
    const bool own_tx = tx_depth_ == 0;
    if (own_tx) {
      RETURN_IF_ERROR(TxBegin());
    }
    ASSIGN_OR_RETURN(baselines::ObjectHeap heap, pool_.object_heap(sink));
    RETURN_IF_ERROR(heap.Free(payload));
    return own_tx ? TxCommit() : puddles::OkStatus();
  }

  template <typename T>
  T* Root() const {
    uint64_t offset = pool_.root_offset();
    return offset == 0 ? nullptr : reinterpret_cast<T*>(pool_.heap() + offset);
  }
  template <typename T>
  void SetRoot(T* payload) {
    const uint64_t offset = reinterpret_cast<uint8_t*>(payload) - pool_.heap();
    pool_.SetRootOffset(offset);
    // Mirror the header field area too (root lives in the header, outside
    // the twin; a direct flush suffices since the store is a single word).
  }

  uint8_t* heap() const { return pool_.heap(); }
  size_t heap_size() const { return pool_.heap_size(); }

 private:
  RomulusPool() = default;

  puddles::Status Recover() {
    switch (pool_.state()) {
      case kIdle:
        return puddles::OkStatus();
      case kMutating:
        // Main may be torn: restore it wholesale from back.
        std::memcpy(pool_.heap(), pool_.back(), pool_.heap_size());
        pmem::FlushFence(pool_.heap(), pool_.heap_size());
        break;
      case kCopying:
        // Main is consistent: finish mirroring into back.
        std::memcpy(pool_.back(), pool_.heap(), pool_.heap_size());
        pmem::FlushFence(pool_.back(), pool_.heap_size());
        break;
      default:
        return puddles::DataLossError("romulus: unknown recovery state");
    }
    pool_.SetState(kIdle);
    return puddles::OkStatus();
  }

  PmPoolFile pool_;
  int tx_depth_ = 0;
  std::vector<std::pair<uint64_t, size_t>> dirty_;  // DRAM-only log.
};

}  // namespace romulus

#endif  // SRC_BASELINES_ROMULUS_ROMULUS_H_
